// Powerbudget: a power-capped rack. The operator has a hard budget per
// server (the paper's motivating constraint — e.g. the DoE's 20 MW
// exascale envelope) and wants to know two things:
//
//  1. how much quality each budget level sustains at peak traffic, and
//  2. how the user-facing QGE knob converts tolerated quality loss into
//     energy savings under a fixed budget.
//
// go run ./examples/powerbudget
package main

import (
	"fmt"
	"log"

	"goodenough"
)

func main() {
	base := goodenough.DefaultConfig()
	base.DurationSec = 30
	base.ArrivalRate = 180 // peak traffic, slightly past the capacity knee
	base.Scheduler = "ge"

	fmt.Println("-- budget sweep at rate 180 req/s, QGE = 0.9 (paper Fig. 10) --")
	fmt.Println("budget   quality   energy      avg speed")
	for _, budget := range []float64{80, 160, 320, 480} {
		cfg := base
		cfg.PowerBudget = budget
		res, err := goodenough.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4.0f W   %.3f    %8.0f J   %.2f GHz\n",
			budget, res.Quality, res.Energy, res.AvgSpeed)
	}

	fmt.Println()
	fmt.Println("-- QGE sweep at 320 W: tolerated loss vs energy --")
	fmt.Println("QGE     quality   energy      cut jobs")
	for _, qge := range []float64{1.0, 0.95, 0.9, 0.85, 0.8} {
		cfg := base
		cfg.QGE = qge
		res, err := goodenough.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.2f    %.3f    %8.0f J   %d\n",
			qge, res.Quality, res.Energy, res.CutJobs)
	}
	fmt.Println("\nLower QGE -> more tail-cutting -> less energy; the knee of the")
	fmt.Println("concave quality function makes the first few percent cheap.")
}
