// Discretedvfs: real processors expose a handful of P-states, not a
// continuum. This example runs GE on the frequency ladder of a typical
// server part (14 steps, 0.8–3.4 GHz, non-uniform like real cpufreq
// tables) and compares it with the idealized continuous model the theory
// assumes (paper Fig. 12).
//
//	go run ./examples/discretedvfs
package main

import (
	"fmt"
	"log"

	"goodenough"
)

// xeonLadder mimics a real cpufreq table: dense steps in the efficient
// mid-range, sparser at the top.
var xeonLadder = []float64{
	0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4, 2.6, 2.8, 3.0, 3.2, 3.4,
}

func main() {
	base := goodenough.DefaultConfig()
	base.DurationSec = 30
	base.Scheduler = "ge"

	fmt.Println("rate    continuous Q / E         discrete Q / E         ΔQ      ΔE")
	for _, rate := range []float64{100, 130, 154, 180, 210, 240} {
		cfg := base
		cfg.ArrivalRate = rate

		cont, err := goodenough.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.DiscreteSpeeds = xeonLadder
		disc, err := goodenough.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4.0f    %.3f / %8.0f J     %.3f / %8.0f J    %+.3f  %+6.1f%%\n",
			rate, cont.Quality, cont.Energy, disc.Quality, disc.Energy,
			disc.Quality-cont.Quality, (disc.Energy/cont.Energy-1)*100)
	}
	fmt.Println("\nDiscrete DVFS rounds the chosen speed to a P-state: tiny quality")
	fmt.Println("shifts, marginal energy differences — the GE policy is robust to")
	fmt.Println("real frequency tables.")
}
