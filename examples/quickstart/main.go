// Quickstart: run the Good Enough scheduler on the paper's default setup
// and compare it against Best Effort in a dozen lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"goodenough"
)

func main() {
	cfg := goodenough.DefaultConfig()
	cfg.DurationSec = 60 // one simulated minute is plenty for a demo

	cfg.Scheduler = "ge"
	ge, err := goodenough.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg.Scheduler = "be"
	be, err := goodenough.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Good Enough:  quality %.3f, energy %8.0f J, %.0f%% of time in AES mode\n",
		ge.Quality, ge.Energy, ge.AESFraction*100)
	fmt.Printf("Best Effort:  quality %.3f, energy %8.0f J\n", be.Quality, be.Energy)
	fmt.Printf("GE saves %.1f%% energy while holding the %.0f%% quality target.\n",
		(1-ge.Energy/be.Energy)*100, cfg.QGE*100)
}
