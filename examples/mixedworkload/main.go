// Mixedworkload: the paper's future-work scenario — "other big-data
// applications". A server handles a 3:1 mixture of interactive search
// requests (small demands, 150 ms windows) and analytics queries (heavy
// Pareto-2 demands up to 4000 units, relaxed 0.5–2 s windows). Because the
// quality function saturates at 1000 units, the analytics tails are almost
// free to cut — GE harvests them first, preserving interactive quality.
//
//	go run ./examples/mixedworkload
package main

import (
	"fmt"
	"log"

	"goodenough"
)

func main() {
	cfg := goodenough.DefaultConfig()
	cfg.DurationSec = 30
	cfg.DemandMax = 4000 // quality saturates at the largest class demand
	cfg.Mix = []goodenough.WorkloadClass{
		{
			Name: "interactive", Weight: 3,
			ParetoAlpha: 3, DemandMin: 130, DemandMax: 1000,
			WindowMS: 150,
		},
		{
			Name: "analytics", Weight: 1,
			ParetoAlpha: 2, DemandMin: 500, DemandMax: 4000,
			RandomWindow: true, WindowMinMS: 500, WindowMaxMS: 2000,
		},
	}

	fmt.Println("rate   GE quality / energy       BE quality / energy      saving")
	for _, rate := range []float64{60, 90, 120, 150} {
		cfg.ArrivalRate = rate

		cfg.Scheduler = "ge"
		ge, err := goodenough.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Scheduler = "be"
		be, err := goodenough.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4.0f   %.3f / %9.0f J      %.3f / %9.0f J     %5.1f%%\n",
			rate, ge.Quality, ge.Energy, be.Quality, be.Energy,
			(1-ge.Energy/be.Energy)*100)
	}
	fmt.Println("\nThe mixture's heavy analytics tails saturate the quality curve,")
	fmt.Println("so GE cuts them aggressively — larger savings than the pure")
	fmt.Println("web-search workload at the same quality target.")
}
