// Websearch: the paper's motivating scenario. A web-search frontend serves
// requests whose partial results are still useful (a results page with 90%
// of the best hits is indistinguishable to most users). Traffic follows a
// diurnal pattern; this example walks a day's hourly arrival rates and
// shows how GE's energy tracks the load while BE burns power polishing
// quality nobody asked for.
//
//	go run ./examples/websearch
package main

import (
	"fmt"
	"log"

	"goodenough"
)

// hourlyRates sketches a diurnal traffic curve (req/s per hour of day).
var hourlyRates = []float64{
	60, 50, 45, 40, 40, 55, // 00:00 - 05:00  night trough
	80, 110, 140, 160, 165, 170, // 06:00 - 11:00  morning ramp
	165, 160, 160, 155, 150, 150, // 12:00 - 17:00  afternoon plateau
	160, 170, 150, 120, 90, 70, // 18:00 - 23:00  evening peak and fall
}

func main() {
	base := goodenough.DefaultConfig()
	base.DurationSec = 30 // simulate 30 s of each hour's steady state
	base.QGE = 0.9

	fmt.Println("hour  rate   GE quality  GE energy   BE energy   saving")
	totalGE, totalBE := 0.0, 0.0
	for hour, rate := range hourlyRates {
		cfg := base
		cfg.ArrivalRate = rate
		cfg.Seed = uint64(1000 + hour) // different traffic each hour

		cfg.Scheduler = "ge"
		ge, err := goodenough.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Scheduler = "be"
		be, err := goodenough.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		totalGE += ge.Energy
		totalBE += be.Energy
		fmt.Printf("%02d:00 %4.0f   %.3f       %7.0f J   %7.0f J   %5.1f%%\n",
			hour, rate, ge.Quality, ge.Energy, be.Energy,
			(1-ge.Energy/be.Energy)*100)
	}
	fmt.Printf("\nwhole day: GE %.0f J vs BE %.0f J — %.1f%% saved at QGE=%.0f%%\n",
		totalGE, totalBE, (1-totalGE/totalBE)*100, base.QGE*100)
}
