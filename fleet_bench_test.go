// BenchmarkFleet* measures the fleet hot path — N machines on sharded event
// heaps behind the global dispatcher — as events/sec over a complete run,
// with and without machine chaos, and at 100/1000-machine scale.
// scripts/bench_baseline.sh records them into BENCH_BASELINE.json and
// `make bench-check` gates regressions.
package goodenough

import (
	"testing"

	"goodenough/internal/cluster"
)

// fleetBenchConfig is the common benchmark fleet: 4 machines at the
// per-machine critical load for a short horizon.
func fleetBenchConfig() FleetConfig {
	fc := DefaultFleetConfig()
	fc.DurationSec = 5
	return fc
}

// fleetRun executes one fleet run and returns events delivered, so
// events/sec aggregates across b.N runs.
func fleetRun(b *testing.B, fc FleetConfig) int64 {
	b.Helper()
	ccfg, err := fc.lower()
	if err != nil {
		b.Fatal(err)
	}
	fleet, err := cluster.New(ccfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := fleet.Run(); err != nil {
		b.Fatal(err)
	}
	return fleet.EventsProcessed()
}

// BenchmarkFleetDispatch runs a fault-free 4-machine fleet under p2c: the
// pure dispatch + shared-clock overhead on top of the single-machine path.
func BenchmarkFleetDispatch(b *testing.B) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		events += fleetRun(b, fleetBenchConfig())
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkFleetChaos layers a crash, a partition, and a degradation onto
// the same fleet: the fault-handling path (orphan wipe, re-dispatch,
// pending-queue drain) is on the measured path.
func BenchmarkFleetChaos(b *testing.B) {
	fc := fleetBenchConfig()
	fc.MachineFaults = []MachineFaultSpec{
		{AtSec: 1, Kind: "crash", Machine: 1, DurationSec: 2},
		{AtSec: 2, Kind: "partition", Machine: 2, DurationSec: 1.5},
		{AtSec: 2.5, Kind: "slow", Machine: 3, DurationSec: 2, Factor: 0.5},
	}
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		events += fleetRun(b, fc)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// fleetScaleConfig is the scaling benchmark fleet: N machines at the
// per-machine critical load, partitioned into N/8 shards — the layout the
// sharded engine is designed around. On a single-CPU runner the shards
// still win (smaller per-shard heaps shrink every sift); on multicore they
// additionally execute in parallel between barriers.
func fleetScaleConfig(machines int, duration float64) FleetConfig {
	fc := DefaultFleetConfig()
	fc.Machines = machines
	fc.ArrivalRate = 154 * float64(machines)
	fc.DurationSec = duration
	fc.Shards = machines / 8
	return fc
}

// BenchmarkFleetScale100 is the 100-machine scaling gate: the per-event
// cost must stay flat as the fleet grows, which is exactly what the old
// advance-every-machine-per-event sync scan broke. Gated by
// `make bench-check` against the committed baseline.
func BenchmarkFleetScale100(b *testing.B) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		events += fleetRun(b, fleetScaleConfig(100, 5))
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkFleetScale1000 pushes to 1000 machines — past the point where
// the O(N·events) scan made runs infeasible.
func BenchmarkFleetScale1000(b *testing.B) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		events += fleetRun(b, fleetScaleConfig(1000, 1))
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}
