package goodenough

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"goodenough/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the observability golden files")

// goldenCfg is a small seeded run exercising every event family: a GE run
// at the knee on four cores with a mid-run core failure and a budget cap,
// so the golden files cover arrivals, assignment, cutting, mode and
// distribution switches, exec segments, requeues, and fault markers.
func goldenCfg() Config {
	cfg := DefaultConfig()
	cfg.Scheduler = "ge"
	cfg.Cores = 4
	cfg.PowerBudget = 80
	cfg.ArrivalRate = 60
	cfg.DurationSec = 3
	cfg.Seed = 7
	cfg.Faults = []FaultSpec{
		{AtSec: 1, Kind: "core-fail", Core: 2, DurationSec: 1},
		{AtSec: 1.5, Kind: "budget-cap", Watts: 40, DurationSec: 0.5},
	}
	return cfg
}

func runGolden(t *testing.T) (events, trace, report, decisions []byte) {
	t.Helper()
	var ev, tr, rep, dec bytes.Buffer
	if _, err := RunWithOptions(goldenCfg(), RunOptions{
		Events: &ev, Trace: &tr, Report: &rep, Decisions: &dec,
	}); err != nil {
		t.Fatal(err)
	}
	return ev.Bytes(), tr.Bytes(), rep.Bytes(), dec.Bytes()
}

// TestGoldenExports pins the exporters' byte-exact output for a seeded run.
// The simulator is deterministic, and the exporters avoid maps and
// locale/width-dependent formatting on the wire path, so any diff here
// means either a real behavior change or a broken determinism guarantee.
// Regenerate deliberately with: go test -run TestGoldenExports -update .
func TestGoldenExports(t *testing.T) {
	events, trace, report, decisions := runGolden(t)
	golden := map[string][]byte{
		filepath.Join("testdata", "golden_run.events.jsonl"):    events,
		filepath.Join("testdata", "golden_run.trace.json"):      trace,
		filepath.Join("testdata", "golden_run.report.txt"):      report,
		filepath.Join("testdata", "golden_run.decisions.jsonl"): decisions,
	}
	if *updateGolden {
		for path, got := range golden {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Log("golden files rewritten")
		return
	}
	for path, got := range golden {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to generate)", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: output diverged from golden (%d vs %d bytes); "+
				"inspect with a diff, then -update if intended",
				path, len(got), len(want))
		}
	}
}

// TestGoldenRunDeterminism re-runs the golden configuration and demands
// byte-identical exports, independent of what the checked-in goldens say.
func TestGoldenRunDeterminism(t *testing.T) {
	e1, t1, r1, d1 := runGolden(t)
	e2, t2, r2, d2 := runGolden(t)
	if !bytes.Equal(e1, e2) {
		t.Error("JSONL export differs between identical runs")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("Chrome trace differs between identical runs")
	}
	if !bytes.Equal(r1, r2) {
		t.Error("run report differs between identical runs")
	}
	if !bytes.Equal(d1, d2) {
		t.Error("decision JSONL differs between identical runs")
	}
}

// TestRunWithOptionsObserver exercises the custom-observer hook and checks
// that attaching one does not perturb the simulation result.
func TestRunWithOptionsObserver(t *testing.T) {
	cfg := goldenCfg()
	var execs, faults int
	res, err := RunWithOptions(cfg, RunOptions{Observer: obs.Func(func(e obs.Event) {
		switch e.Type {
		case obs.EventExec:
			execs++
		case obs.EventCoreFail, obs.EventBudgetCap:
			faults++
		}
	})})
	if err != nil {
		t.Fatal(err)
	}
	if execs == 0 {
		t.Error("no exec segments observed")
	}
	if faults != 2 {
		t.Errorf("observed %d fault events, want 2", faults)
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality != plain.Quality || res.Energy != plain.Energy {
		t.Error("attaching an observer perturbed the simulation")
	}
}

// BenchmarkRunNilObserver and BenchmarkRunCollector bound the cost of the
// observability layer on a whole run: the first is the default zero-sink
// path, the second attaches the metrics collector.
func benchCfg() Config {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.PowerBudget = 80
	cfg.ArrivalRate = 60
	cfg.DurationSec = 2
	return cfg
}

func BenchmarkRunNilObserver(b *testing.B) {
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunCollector(b *testing.B) {
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		col := obs.NewCollector()
		if _, err := RunWithOptions(cfg, RunOptions{Observer: col}); err != nil {
			b.Fatal(err)
		}
	}
}
