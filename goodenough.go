// Package goodenough is a from-scratch reproduction of "When Good Enough
// Is Better: Energy-Aware Scheduling for Multicore Servers" (Hui, Du, Liu,
// Sun, He, Bader — IPDPSW 2017).
//
// It provides the Good Enough (GE) energy-aware scheduling algorithm for
// approximate interactive services on multicore DVFS servers, every
// baseline the paper compares against, and a discrete-event simulator to
// run them on. A single call drives a full simulation:
//
//	cfg := goodenough.DefaultConfig()
//	cfg.Scheduler = "ge"
//	cfg.ArrivalRate = 154
//	res, err := goodenough.Run(cfg)
//	// res.Quality ≈ 0.9, res.Energy in joules, res.AESFraction, ...
//
// Scheduler names accepted by Config.Scheduler:
//
//	ge        Good Enough (LF cutting + compensation + hybrid ES/WF)
//	oq        Over-Qualified (target QGE+0.02, no compensation)
//	be        Best Effort (no cutting, always Water-Filling)
//	ge-nocomp GE without the compensation policy
//	ge-es     GE pinned to Equal-Sharing power distribution
//	ge-wf     GE pinned to Water-Filling power distribution
//	be-p      Best Effort under a reduced power budget (set BEPBudget)
//	be-s      Best Effort under a per-core speed cap (set BESCap)
//	fcfs fdfs ljf sjf   classic single-job baselines
//
// Beyond the paper's fault-free setting, the simulator injects machine
// faults and degrades gracefully: Config.Faults lists deterministic fault
// windows (core failures, facility power caps, stuck DVFS), and
// Config.FaultMTBFSec/FaultMTTRSec draw a reproducible random failure
// schedule instead. Result then reports CoreFailures, RequeuedJobs,
// DroppedJobs, and the time-weighted SurvivingCapacity.
//
// The experiment harness reproducing every figure of the paper lives in
// cmd/gesweep; the per-figure benchmarks live in bench_test.go.
package goodenough

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"goodenough/internal/core"
	"goodenough/internal/dist"
	"goodenough/internal/faults"
	"goodenough/internal/metrics"
	"goodenough/internal/obs"
	"goodenough/internal/power"
	"goodenough/internal/quality"
	"goodenough/internal/sched"
	"goodenough/internal/stats"
	"goodenough/internal/workload"
)

// Config is the user-facing knob set: machine, workload, and scheduler.
type Config struct {
	// Scheduler selects the policy (see the package comment for names).
	Scheduler string

	// --- Machine (paper §IV-B defaults) ---

	// Cores is the number of DVFS cores (16).
	Cores int
	// PowerBudget is the total dynamic power budget H in watts (320).
	PowerBudget float64
	// PowerAlpha and PowerBeta parameterize the per-core dynamic power
	// P = a·s^β with s in GHz (a=5, β=2).
	PowerAlpha float64
	PowerBeta  float64
	// DiscreteSpeeds, when non-empty, restricts cores to these speeds
	// (GHz) — the discrete DVFS model of §IV-A5. Empty means continuous.
	DiscreteSpeeds []float64
	// CoreGroups, when non-empty, builds a heterogeneous (big.LITTLE)
	// machine: the groups are expanded in order and their counts override
	// Cores. Not combinable with DiscreteSpeeds.
	CoreGroups []CoreGroup

	// --- Quality model ---

	// QGE is the user-specified good-enough quality (0.9).
	QGE float64
	// QualityC is the concavity multiplier of Eq. 1 (0.003).
	QualityC float64
	// QualityFamily selects the quality-function family: "exp" (Eq. 1,
	// default), "log", "pow", or "linear". QualityC parameterizes each:
	// the exponential multiplier, the logarithmic k, or the power-law
	// gamma (clamped to (0,1]); "linear" ignores it.
	QualityFamily string

	// --- Workload ---

	// ArrivalRate is the Poisson request rate λ in req/s.
	ArrivalRate float64
	// ParetoAlpha, DemandMin, DemandMax parameterize the bounded Pareto
	// service demands in processing units (3, 130, 1000).
	ParetoAlpha float64
	DemandMin   float64
	DemandMax   float64
	// WindowMS is the response window in milliseconds (150). When
	// RandomWindow is set, windows are uniform in [WindowMinMS,
	// WindowMaxMS] (150–500) instead.
	WindowMS     float64
	RandomWindow bool
	WindowMinMS  float64
	WindowMaxMS  float64
	// DurationSec is the simulated arrival span in seconds (600).
	DurationSec float64
	// Seed fixes the workload streams for reproducibility.
	Seed uint64
	// Bursty, when set, replaces the homogeneous Poisson arrivals with a
	// two-phase Markov-modulated process (flash-crowd traffic): BurstHigh/
	// BurstLow req/s phases lasting on average BurstMeanHighSec/
	// BurstMeanLowSec. ArrivalRate is then ignored.
	Bursty           bool
	BurstHigh        float64
	BurstLow         float64
	BurstMeanHighSec float64
	BurstMeanLowSec  float64

	// --- Scheduler plumbing ---

	// QuantumMS is the quantum trigger period in milliseconds (500).
	QuantumMS float64
	// CounterTrigger is the waiting-queue length trigger (8).
	CounterTrigger int
	// CriticalLoad is the req/s threshold between Equal-Sharing and
	// Water-Filling in the hybrid distribution (154).
	CriticalLoad float64

	// Mix, when non-empty, replaces the single demand distribution with a
	// weighted mixture of request classes (e.g. an interactive tier plus
	// an analytics tier). The single-class Pareto/window fields above are
	// then ignored. The quality function still saturates at DemandMax, so
	// set DemandMax to the largest class Xmax.
	Mix []WorkloadClass

	// --- Baseline-specific ---

	// BEPBudget is the reduced budget used by the "be-p" scheduler.
	BEPBudget float64
	// BESCap is the per-core speed cap (GHz) used by "be-s".
	BESCap float64

	// --- Fault injection ---

	// Faults lists deterministic fault windows to inject (core failures,
	// facility-level power caps, stuck DVFS). See FaultSpec.
	Faults []FaultSpec
	// FaultMTBFSec and FaultMTTRSec, when both positive, generate a
	// reproducible random failure schedule instead: each core fails and
	// recovers as an independent renewal process with exponential
	// up-times (mean FaultMTBFSec) and down-times (mean FaultMTTRSec),
	// seeded from Seed over DurationSec. Ignored when Faults is set.
	FaultMTBFSec float64
	FaultMTTRSec float64
}

// FaultSpec describes one injected fault window (Config.Faults).
type FaultSpec struct {
	// AtSec is the onset time in seconds.
	AtSec float64
	// Kind selects the fault: "core-fail" (or "fail"), "budget-cap" (or
	// "cap"), "speed-stuck" (or "stuck").
	Kind string
	// Core is the target core index for core-fail and speed-stuck.
	Core int
	// DurationSec, when positive, recovers the fault at AtSec+DurationSec;
	// zero makes it permanent.
	DurationSec float64
	// Watts is the capped total budget for budget-cap.
	Watts float64
	// SpeedGHz is the wedged core speed for speed-stuck.
	SpeedGHz float64
}

// CoreGroup describes one cluster of identical cores in a heterogeneous
// machine (Config.CoreGroups).
type CoreGroup struct {
	// Count is the number of cores in the cluster.
	Count int
	// PowerAlpha and PowerBeta parameterize the cluster's power curve
	// P = a·s^β.
	PowerAlpha float64
	PowerBeta  float64
	// MaxSpeedGHz optionally caps the cluster's speed (0 = power-limited
	// only).
	MaxSpeedGHz float64
}

// WorkloadClass is one component of a mixed workload (Config.Mix).
type WorkloadClass struct {
	// Name labels the class in reports.
	Name string
	// Weight is the relative arrival share.
	Weight float64
	// ParetoAlpha, DemandMin, DemandMax parameterize the class demands.
	ParetoAlpha float64
	DemandMin   float64
	DemandMax   float64
	// WindowMS is the class response window; RandomWindow selects uniform
	// [WindowMinMS, WindowMaxMS] instead.
	WindowMS     float64
	RandomWindow bool
	WindowMinMS  float64
	WindowMaxMS  float64
}

// DefaultConfig returns the paper's §IV-B setup with the GE scheduler at
// the critical arrival rate.
func DefaultConfig() Config {
	return Config{
		Scheduler:      "ge",
		Cores:          16,
		PowerBudget:    320,
		PowerAlpha:     5,
		PowerBeta:      2,
		QGE:            0.9,
		QualityC:       0.003,
		ArrivalRate:    154,
		ParetoAlpha:    3,
		DemandMin:      130,
		DemandMax:      1000,
		WindowMS:       150,
		WindowMinMS:    150,
		WindowMaxMS:    500,
		DurationSec:    600,
		Seed:           2017,
		QuantumMS:      500,
		CounterTrigger: 8,
		CriticalLoad:   154,
	}
}

// Result reports what one simulation achieved.
type Result struct {
	// Scheduler is the policy that ran.
	Scheduler string
	// Quality is the achieved average quality Σf(c)/Σf(p) over all jobs.
	Quality float64
	// Energy is the total dynamic energy in joules.
	Energy float64
	// AESFraction is the share of time spent in the Aggressive Energy
	// Saving mode (GE family only).
	AESFraction float64
	// AvgSpeed and SpeedVariance are busy-time-weighted core-speed moments.
	AvgSpeed      float64
	SpeedVariance float64
	// Jobs, Completed, Expired, CutJobs count request outcomes.
	Jobs      int
	Completed int64
	Expired   int64
	CutJobs   int64
	// ModeSwitches counts AES↔BQ transitions.
	ModeSwitches int64
	// SimTime is the simulated span in seconds.
	SimTime float64
	// MeanResponse and P95Response summarize completed jobs' response
	// times in seconds (finish − release).
	MeanResponse float64
	P95Response  float64
	// AESEnergy and BQEnergy split Energy by the execution mode active
	// while it was consumed (GE family; always-BQ policies put everything
	// in BQEnergy).
	AESEnergy float64
	BQEnergy  float64
	// CoreFailures counts injected core-failure events that took effect.
	CoreFailures int64
	// RequeuedJobs counts jobs orphaned by a core failure and re-bound to
	// a surviving core (the one audited no-migration exception).
	RequeuedJobs int64
	// DroppedJobs counts waiting jobs shed by the degradation admission
	// control while the machine was below full capacity.
	DroppedJobs int64
	// SurvivingCapacity is the time-weighted fraction of core capacity
	// that stayed healthy over the run (1 on a fault-free run).
	SurvivingCapacity float64
	// Cancelled reports that the run was interrupted by its context
	// (RunContext, RunTraceContext, or RunOptions.Context) before all
	// arrivals drained. Every other field then describes the partial run
	// up to the interruption point.
	Cancelled bool
	// CancelReason says why a cancelled run stopped: "context canceled"
	// for an explicit cancellation, "context deadline exceeded" for a
	// deadline. Empty when Cancelled is false.
	CancelReason string
}

// Schedulers lists the accepted Config.Scheduler names.
func Schedulers() []string {
	names := make([]string, 0, len(schedulerMakers))
	for name := range schedulerMakers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

type makerArgs struct {
	qge       float64
	bepBudget float64
	besCap    float64
}

var schedulerMakers = map[string]func(a makerArgs) sched.Policy{
	"ge":        func(a makerArgs) sched.Policy { return core.NewGE(a.qge) },
	"oq":        func(a makerArgs) sched.Policy { return core.NewOQ(a.qge) },
	"be":        func(a makerArgs) sched.Policy { return core.NewBE() },
	"ge-nocomp": func(a makerArgs) sched.Policy { return core.NewNoComp(a.qge) },
	"ge-es":     func(a makerArgs) sched.Policy { return core.NewFixedDist(a.qge, dist.PolicyES) },
	"ge-wf":     func(a makerArgs) sched.Policy { return core.NewFixedDist(a.qge, dist.PolicyWF) },
	"be-p":      func(a makerArgs) sched.Policy { return core.NewBEP(a.bepBudget) },
	"be-s":      func(a makerArgs) sched.Policy { return core.NewBES(a.besCap) },
	"fcfs":      func(a makerArgs) sched.Policy { return sched.NewFCFS() },
	"fdfs":      func(a makerArgs) sched.Policy { return sched.NewFDFS() },
	"ljf":       func(a makerArgs) sched.Policy { return sched.NewLJF() },
	"sjf":       func(a makerArgs) sched.Policy { return sched.NewSJF() },
}

// Run executes one simulation described by cfg.
func Run(cfg Config) (Result, error) {
	scfg, spec, policy, err := lower(cfg)
	if err != nil {
		return Result{}, err
	}
	runner, err := sched.NewRunner(scfg, policy, spec)
	if err != nil {
		return Result{}, err
	}
	return finish(runner)
}

// RunContext is Run bounded by ctx: cancelling the context or passing its
// deadline interrupts the simulation within a bounded number of events and
// returns the *partial* Result with Cancelled set and CancelReason filled —
// not an error — so online callers always get the metrics accumulated up to
// the interruption. Configuration problems still surface as errors.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	return RunWithOptions(cfg, RunOptions{Context: ctx})
}

// RunTrace executes one simulation over a recorded workload trace (JSON,
// as produced by ExportTrace or cmd/getrace) instead of a synthetic
// stream. The workload fields of cfg (ArrivalRate, demand distribution,
// windows, duration, seed) are ignored; machine and scheduler fields apply.
func RunTrace(cfg Config, traceJSON io.Reader) (Result, error) {
	return RunTraceWithOptions(cfg, traceJSON, RunOptions{})
}

// RunTraceContext is RunTrace bounded by ctx, with the same partial-Result
// cancellation semantics as RunContext.
func RunTraceContext(ctx context.Context, cfg Config, traceJSON io.Reader) (Result, error) {
	return RunTraceWithOptions(cfg, traceJSON, RunOptions{Context: ctx})
}

// Replication summarizes repeated runs of the same configuration under
// different seeds — the reproduction's answer to "is this one lucky
// stream?". Fields aggregate per-seed Results.
type Replication struct {
	// Runs is the number of seeds simulated.
	Runs int
	// QualityMean/Std and EnergyMean/Std aggregate across seeds.
	QualityMean float64
	QualityStd  float64
	EnergyMean  float64
	EnergyStd   float64
	// QualityMin/Max and EnergyMin/Max are the extremes observed.
	QualityMin float64
	QualityMax float64
	EnergyMin  float64
	EnergyMax  float64
	// Results holds the individual runs in seed order.
	Results []Result
}

// RunSeeds executes cfg once per seed and aggregates the results. The
// cfg.Seed field is overridden by each entry. Replications run in parallel
// across up to GOMAXPROCS workers; see RunSeedsContext for the guarantees.
func RunSeeds(cfg Config, seeds []uint64) (Replication, error) {
	return RunSeedsContext(context.Background(), cfg, seeds)
}

// RunSeedsContext is RunSeeds bounded by ctx. Replications are spread over
// min(GOMAXPROCS, len(seeds)) workers, but each seed's simulation is
// independent and internally deterministic, and results are reported in
// seed order regardless of completion order — the Replication is identical
// to a sequential run. If any replication fails, the remaining ones are
// cancelled and the first error in seed order is returned (never a partial
// Replication). Cancelling ctx instead yields a full-length Replication
// whose unfinished entries carry partial Results with Cancelled set.
func RunSeedsContext(ctx context.Context, cfg Config, seeds []uint64) (Replication, error) {
	if len(seeds) == 0 {
		return Replication{}, fmt.Errorf("goodenough: RunSeeds needs at least one seed")
	}
	results := make([]Result, len(seeds))
	errs := make([]error, len(seeds))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(seeds) {
		workers = len(seeds)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(seeds) {
					return
				}
				c := cfg
				c.Seed = seeds[i]
				res, err := RunContext(runCtx, c)
				if err != nil {
					errs[i] = err
					cancel() // stop the remaining replications promptly
					continue // keep draining indices so Wait returns
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return Replication{}, fmt.Errorf("goodenough: seed %d: %w", seeds[i], err)
		}
	}
	rep := Replication{Runs: len(seeds), Results: results}
	var q, e stats.Running
	for _, res := range results {
		q.Add(res.Quality)
		e.Add(res.Energy)
	}
	rep.QualityMean, rep.QualityStd = q.Mean(), q.Std()
	rep.EnergyMean, rep.EnergyStd = e.Mean(), e.Std()
	rep.QualityMin, rep.QualityMax = q.Min(), q.Max()
	rep.EnergyMin, rep.EnergyMax = e.Min(), e.Max()
	return rep, nil
}

// RunWithTimeline is Run plus a recorded time series: quality, power draw,
// queued load, and execution mode are sampled at scheduling events (thinned
// to one sample per intervalSec) and written as CSV to w after the run.
func RunWithTimeline(cfg Config, intervalSec float64, w io.Writer) (Result, error) {
	return RunWithOptions(cfg, RunOptions{Timeline: w, TimelineInterval: intervalSec})
}

// RunOptions attaches observability sinks to one simulation. The zero
// value is equivalent to Run: nothing is recorded and the scheduling path
// stays allocation-free.
type RunOptions struct {
	// Timeline, when non-nil, receives the sampled time series as CSV
	// after the run (quality, power, load, mode, per-core speeds, energy),
	// thinned to one sample per TimelineInterval seconds (0 keeps every
	// sample). See RunWithTimeline.
	Timeline         io.Writer
	TimelineInterval float64
	// Events, when non-nil, receives the full structured event stream as
	// JSON Lines — one object per event, grep/jq-friendly.
	Events io.Writer
	// Trace, when non-nil, receives the run in Chrome trace-event format:
	// open it in Perfetto (ui.perfetto.dev) or chrome://tracing to see one
	// track per core with job execution spans, speed counters, and fault
	// markers.
	Trace io.Writer
	// Report, when non-nil, receives a plain-text run report after the
	// run: event counters, latency histograms, and a per-core
	// utilization/energy table.
	Report io.Writer
	// Observer, when non-nil, additionally receives every structured
	// event (custom sinks; see internal/obs for the event taxonomy).
	Observer obs.Observer
	// Decisions, when non-nil, receives the structured decision stream as
	// JSON Lines — one record per admission, shed, mode switch, DVFS
	// replan, and fleet (re)dispatch, carrying the inputs each choice was
	// made on. Deterministic byte-for-byte for a seeded run.
	Decisions io.Writer
	// Spans, when non-nil, wraps the run and each scheduler invocation in
	// wall-clock trace spans on this bus, parented under SpanParent (pass
	// the zero SpanContext to root a fresh trace). This is how a serving
	// tier stitches the scheduler into a request's causal tree.
	Spans      *obs.SpanBus
	SpanParent obs.SpanContext
	// Context, when non-nil, bounds the run: cancelling it or passing its
	// deadline interrupts the simulation mid-flight and the run returns a
	// partial Result with Cancelled set instead of an error. Attached
	// sinks are still flushed, so a cancelled run's events and timeline
	// remain usable up to the interruption point.
	Context context.Context
}

// RunWithOptions is Run with observability sinks attached.
func RunWithOptions(cfg Config, opts RunOptions) (Result, error) {
	scfg, spec, policy, err := lower(cfg)
	if err != nil {
		return Result{}, err
	}
	runner, err := sched.NewRunner(scfg, policy, spec)
	if err != nil {
		return Result{}, err
	}
	return finishWithOptions(runner, scfg.Cores, opts)
}

// RunTraceWithOptions is RunTrace with observability sinks attached.
func RunTraceWithOptions(cfg Config, traceJSON io.Reader, opts RunOptions) (Result, error) {
	scfg, policy, err := cfg.compile()
	if err != nil {
		return Result{}, err
	}
	tr, err := workload.ReadTrace(traceJSON)
	if err != nil {
		return Result{}, err
	}
	src, err := workload.NewReplayer(tr)
	if err != nil {
		return Result{}, err
	}
	runner, err := sched.NewRunnerFromSource(scfg, policy, src)
	if err != nil {
		return Result{}, err
	}
	return finishWithOptions(runner, scfg.Cores, opts)
}

// finishWithOptions wires the requested sinks into the runner, executes the
// simulation, and flushes each sink in a deterministic order.
func finishWithOptions(runner *sched.Runner, cores int, opts RunOptions) (Result, error) {
	if opts.Context != nil {
		runner.SetContext(opts.Context)
		if opts.Spans == nil {
			// A serving tier hands its span bus down through the request
			// context (obs.ContextWithSpan), since the injectable Run
			// signature predates tracing.
			if bus, parent, ok := obs.SpanFromContext(opts.Context); ok {
				opts.Spans, opts.SpanParent = bus, parent
			}
		}
	}
	if opts.Spans != nil {
		runner.SetSpans(opts.Spans, opts.SpanParent)
	}
	var tl *metrics.Timeline
	if opts.Timeline != nil {
		tl = metrics.NewTimeline(opts.TimelineInterval)
		runner.SetTimeline(tl)
	}
	var sinks []obs.Observer
	var events *obs.JSONL
	if opts.Events != nil {
		events = obs.NewJSONL(opts.Events)
		sinks = append(sinks, events)
	}
	var tracer *obs.Tracer
	if opts.Trace != nil {
		tracer = obs.NewTracer(opts.Trace, cores)
		sinks = append(sinks, tracer)
	}
	var col *obs.Collector
	if opts.Report != nil {
		col = obs.NewCollector()
		sinks = append(sinks, col)
	}
	sinks = append(sinks, opts.Observer)
	if o := obs.Multi(sinks...); o != nil {
		runner.SetObserver(o)
	}
	var decisions *obs.DecisionLog
	var dsinks []obs.DecisionSink
	if opts.Decisions != nil {
		decisions = obs.NewDecisionLog(opts.Decisions)
		dsinks = append(dsinks, decisions)
	}
	if col != nil {
		dsinks = append(dsinks, col)
	}
	if ds := obs.DecisionSinks(dsinks...); ds != nil {
		runner.SetDecisionSink(ds)
	}
	res, err := finish(runner)
	if err != nil {
		return Result{}, err
	}
	if tl != nil {
		if err := tl.WriteCSV(opts.Timeline); err != nil {
			return Result{}, err
		}
	}
	if events != nil {
		if err := events.Flush(); err != nil {
			return Result{}, err
		}
	}
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			return Result{}, err
		}
	}
	if decisions != nil {
		if err := decisions.Flush(); err != nil {
			return Result{}, err
		}
	}
	if col != nil {
		if err := col.WriteReport(opts.Report); err != nil {
			return Result{}, err
		}
	}
	return res, nil
}

// ExportTrace generates the synthetic workload described by cfg and writes
// it as a JSON trace, so the exact request stream can be archived, shared,
// and replayed with RunTrace.
func ExportTrace(cfg Config, w io.Writer) error {
	_, spec, _, err := lower(cfg)
	if err != nil {
		return err
	}
	jobs := workload.NewGenerator(spec).All()
	tr := workload.Record(jobs, &spec, "exported by goodenough.ExportTrace")
	return tr.Write(w)
}

func finish(runner *sched.Runner) (Result, error) {
	res, err := runner.Run()
	if err != nil {
		return Result{}, err
	}
	return Result{
		Scheduler:     res.Scheduler,
		Quality:       res.Quality,
		Energy:        res.Energy,
		AESFraction:   res.AESFraction,
		AvgSpeed:      res.AvgSpeed,
		SpeedVariance: res.SpeedVariance,
		Jobs:          res.Jobs,
		Completed:     res.Completed,
		Expired:       res.Expired,
		CutJobs:       res.CutJobs,
		ModeSwitches:  res.ModeSwitches,
		SimTime:       res.SimTime,
		MeanResponse:  res.MeanResponse,
		P95Response:   res.P95Response,
		AESEnergy:     res.AESEnergy,
		BQEnergy:      res.BQEnergy,

		CoreFailures:      res.CoreFailures,
		RequeuedJobs:      res.RequeuedJobs,
		DroppedJobs:       res.DroppedJobs,
		SurvivingCapacity: res.SurvivingCapacity,

		Cancelled:    res.Cancelled,
		CancelReason: res.CancelReason,
	}, nil
}

// qualityFor instantiates the configured quality-function family.
func qualityFor(cfg Config) (quality.Function, error) {
	xmax := cfg.DemandMax
	switch cfg.QualityFamily {
	case "", "exp":
		return quality.NewExponential(cfg.QualityC, xmax), nil
	case "log":
		return quality.NewLogarithmic(cfg.QualityC, xmax), nil
	case "pow":
		gamma := cfg.QualityC
		if gamma > 1 {
			gamma = 1
		}
		return quality.NewPowerLaw(gamma, xmax), nil
	case "linear":
		return quality.NewLinear(xmax), nil
	default:
		return nil, fmt.Errorf("goodenough: unknown quality family %q (exp|log|pow|linear)",
			cfg.QualityFamily)
	}
}

// Validate checks every user-facing Config field — scheduler name,
// machine, quality model, fault schedule, and workload stream — without
// running the simulation. It is the single consolidated validation gate:
// every Run* variant performs exactly these checks (once) before running,
// so a config that passes Validate will not fail at admission time. The
// RunTrace* variants skip the workload-stream checks, since the trace
// supplies the jobs.
func (c Config) Validate() error {
	if _, _, err := c.compile(); err != nil {
		return err
	}
	return c.workloadSpec().Validate()
}

// workloadSpec builds the internal synthetic-workload description. The
// result is validated by Spec.Validate, not here.
func (c Config) workloadSpec() workload.Spec {
	spec := workload.Spec{
		ArrivalRate:  c.ArrivalRate,
		ParetoAlpha:  c.ParetoAlpha,
		Xmin:         c.DemandMin,
		Xmax:         c.DemandMax,
		Window:       c.WindowMS / 1000,
		RandomWindow: c.RandomWindow,
		WindowMin:    c.WindowMinMS / 1000,
		WindowMax:    c.WindowMaxMS / 1000,
		Duration:     c.DurationSec,
		Seed:         c.Seed,
	}
	if c.Bursty {
		spec.Burst = &workload.Burst{
			HighRate: c.BurstHigh, LowRate: c.BurstLow,
			MeanHigh: c.BurstMeanHighSec, MeanLow: c.BurstMeanLowSec,
		}
	}
	for _, m := range c.Mix {
		spec.Classes = append(spec.Classes, workload.Class{
			Name: m.Name, Weight: m.Weight,
			ParetoAlpha: m.ParetoAlpha, Xmin: m.DemandMin, Xmax: m.DemandMax,
			Window: m.WindowMS / 1000, RandomWindow: m.RandomWindow,
			WindowMin: m.WindowMinMS / 1000, WindowMax: m.WindowMaxMS / 1000,
		})
	}
	return spec
}

// lower converts the public Config into the internal configuration triple
// for a synthetic-workload run.
func lower(cfg Config) (sched.Config, workload.Spec, sched.Policy, error) {
	scfg, policy, err := cfg.compile()
	if err != nil {
		return sched.Config{}, workload.Spec{}, nil, err
	}
	spec := cfg.workloadSpec()
	if err := spec.Validate(); err != nil {
		return sched.Config{}, workload.Spec{}, nil, err
	}
	return scfg, spec, policy, nil
}

// compile validates the machine/scheduler/quality/fault fields and builds
// the internal sched.Config and policy. Together with Spec.Validate (the
// workload half, invoked from lower and Validate) this is the only place
// Config fields are checked — every Run* entry point funnels through it
// exactly once.
func (cfg Config) compile() (sched.Config, sched.Policy, error) {
	mk, ok := schedulerMakers[cfg.Scheduler]
	if !ok {
		return sched.Config{}, nil,
			fmt.Errorf("goodenough: unknown scheduler %q (valid: %v)", cfg.Scheduler, Schedulers())
	}
	if cfg.Scheduler == "be-p" && cfg.BEPBudget <= 0 {
		return sched.Config{}, nil,
			fmt.Errorf("goodenough: scheduler be-p requires BEPBudget > 0")
	}
	if cfg.Scheduler == "be-s" && cfg.BESCap <= 0 {
		return sched.Config{}, nil,
			fmt.Errorf("goodenough: scheduler be-s requires BESCap > 0")
	}
	if cfg.QualityC <= 0 || cfg.DemandMax <= 0 {
		return sched.Config{}, nil,
			fmt.Errorf("goodenough: QualityC and DemandMax must be positive")
	}
	qf, err := qualityFor(cfg)
	if err != nil {
		return sched.Config{}, nil, err
	}

	cores := cfg.Cores
	var perCore []power.Model
	if len(cfg.CoreGroups) > 0 {
		cores = 0
		for _, g := range cfg.CoreGroups {
			if g.Count <= 0 {
				return sched.Config{}, nil,
					fmt.Errorf("goodenough: core group count must be positive, got %d", g.Count)
			}
			m := power.Model{A: g.PowerAlpha, Beta: g.PowerBeta, MaxSpeed: g.MaxSpeedGHz}
			for i := 0; i < g.Count; i++ {
				perCore = append(perCore, m)
			}
			cores += g.Count
		}
	}
	scfg := sched.Config{
		Cores:          cores,
		PowerBudget:    cfg.PowerBudget,
		Model:          power.Model{A: cfg.PowerAlpha, Beta: cfg.PowerBeta},
		PerCoreModels:  perCore,
		Quality:        qf,
		QGE:            cfg.QGE,
		CriticalLoad:   cfg.CriticalLoad,
		QuantumSec:     cfg.QuantumMS / 1000,
		CounterTrigger: cfg.CounterTrigger,
		RateWindow:     2,
	}
	if len(cfg.DiscreteSpeeds) > 0 {
		ladder, err := power.NewLadder(cfg.DiscreteSpeeds)
		if err != nil {
			return sched.Config{}, nil, err
		}
		scfg.Ladder = ladder
	}
	switch {
	case len(cfg.Faults) > 0:
		specs := make([]faults.Spec, len(cfg.Faults))
		for i, f := range cfg.Faults {
			kind, err := faults.ParseKind(f.Kind)
			if err != nil {
				return sched.Config{}, nil,
					fmt.Errorf("goodenough: fault %d: %w", i, err)
			}
			specs[i] = faults.Spec{
				At: f.AtSec, Kind: kind, Core: f.Core,
				Duration: f.DurationSec, Watts: f.Watts, Speed: f.SpeedGHz,
			}
		}
		fs, err := faults.New(specs, cores)
		if err != nil {
			return sched.Config{}, nil, fmt.Errorf("goodenough: %w", err)
		}
		scfg.Faults = fs
	case cfg.FaultMTBFSec > 0 || cfg.FaultMTTRSec > 0:
		if cfg.DurationSec <= 0 {
			return sched.Config{}, nil,
				fmt.Errorf("goodenough: the MTBF/MTTR fault generator needs DurationSec > 0")
		}
		fs, err := faults.Generate(cfg.Seed, cores, cfg.DurationSec,
			cfg.FaultMTBFSec, cfg.FaultMTTRSec)
		if err != nil {
			return sched.Config{}, nil, fmt.Errorf("goodenough: %w", err)
		}
		scfg.Faults = fs
	}
	if err := scfg.Validate(); err != nil {
		return sched.Config{}, nil, err
	}

	policy := mk(makerArgs{qge: cfg.QGE, bepBudget: cfg.BEPBudget, besCap: cfg.BESCap})
	return scfg, policy, nil
}
