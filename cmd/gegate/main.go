// Command gegate fronts a pool of geserve replicas with health-checked
// load balancing, per-replica circuit breakers, hedged requests, and a
// global retry budget — the tier that keeps answering when individual
// replicas stall or die:
//
//	gegate -addr :8370 -replicas http://127.0.0.1:8377,http://127.0.0.1:8378,http://127.0.0.1:8379
//
// Clients speak the same protocol as to a single geserve:
//
//	curl -X POST localhost:8370/v1/run -d '{"DurationSec": 2}'
//	curl localhost:8370/replicaz   # live per-replica breaker/probe/load table
//	curl localhost:8370/metricz    # hedge + breaker + per-replica counters
//
// Every response carries X-GE-Replica (which backend answered),
// X-GE-Attempts, and X-GE-Hedged when a tail hedge won — cmd/geload
// aggregates these into a per-replica attribution report. SIGTERM/SIGINT
// shuts down gracefully: the listener drains in-flight requests, probe
// loops stop, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"goodenough/internal/gateway"
	"goodenough/internal/obs"
	"goodenough/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8370", "listen address")
		replicas     = flag.String("replicas", "", "comma-separated geserve base URLs (required)")
		probeEvery   = flag.Duration("probe-interval", 500*time.Millisecond, "active /readyz probe period")
		probeTimeout = flag.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
		brFailures   = flag.Int("breaker-failures", 3, "consecutive failures that open a replica's breaker")
		brOpenFor    = flag.Duration("breaker-open", 2*time.Second, "open-state duration before a half-open trial")
		noHedge      = flag.Bool("no-hedge", false, "disable tail-latency hedging")
		qualityAware = flag.Bool("quality-aware", false, "prefer replicas by governor signals (brownout state, then headroom) before raw load")
		hedgeQ       = flag.Float64("hedge-quantile", 0.95, "latency quantile that sets the hedge delay")
		hedgeMin     = flag.Duration("hedge-min", 50*time.Millisecond, "hedge delay floor (also the cold-start delay)")
		hedgeMax     = flag.Duration("hedge-max", 2*time.Second, "hedge delay ceiling")
		maxAttempts  = flag.Int("max-attempts", 3, "upstream attempts per request, hedges included")
		budgetRatio  = flag.Float64("retry-budget", 0.2, "retry/hedge tokens earned per client request")
		budgetBurst  = flag.Float64("retry-burst", 16, "retry budget bucket size")
		timeout      = flag.Duration("timeout", 90*time.Second, "end-to-end deadline per client request")
		shutdownGr   = flag.Duration("shutdown-grace", 15*time.Second, "drain deadline on SIGTERM")
		spanLog      = flag.String("span-log", "", "trace proxied requests + attempts to this JSONL file (empty = tracing off)")
		rampSteps    = flag.Int("rejoin-ramp-steps", 3, "slow-start steps a rejoining replica climbs before full weight")
		rampStep     = flag.Duration("rejoin-ramp-step", 500*time.Millisecond, "duration of each rejoin slow-start step")
		noSlowStart  = flag.Bool("no-slow-start", false, "send rejoining replicas full traffic immediately")
	)
	flag.Parse()

	var spans *obs.SpanBus
	if *spanLog != "" {
		f, err := os.Create(*spanLog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gegate:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink := obs.NewSpanLog(f)
		defer sink.Flush()
		spans = obs.NewSpanBus(sink)
	}

	if *replicas == "" {
		fmt.Fprintln(os.Stderr, "gegate: -replicas is required (comma-separated geserve URLs)")
		os.Exit(1)
	}
	var pool []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			pool = append(pool, r)
		}
	}

	gw, err := gateway.New(gateway.Config{
		Replicas:         pool,
		ProbeInterval:    *probeEvery,
		ProbeTimeout:     *probeTimeout,
		BreakerFailures:  *brFailures,
		BreakerOpenFor:   *brOpenFor,
		DisableHedging:   *noHedge,
		QualityAware:     *qualityAware,
		HedgeQuantile:    *hedgeQ,
		HedgeMinDelay:    *hedgeMin,
		HedgeMaxDelay:    *hedgeMax,
		MaxAttempts:      *maxAttempts,
		RetryBudgetRatio: *budgetRatio,
		RetryBudgetBurst: *budgetBurst,
		RequestTimeout:   *timeout,
		RejoinRampSteps:  *rampSteps,
		RejoinRampStep:   *rampStep,
		DisableSlowStart: *noSlowStart,
		Spans:            spans,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gegate:", err)
		os.Exit(1)
	}
	gw.Start()
	defer gw.Close()

	hs := server.NewHTTPServer(*addr, gw.Handler(), 0, 0)
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "gegate: listening on %s, %d replicas\n", *addr, len(pool))
		errCh <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "gegate:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	fmt.Fprintln(os.Stderr, "gegate: shutting down...")
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownGr)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "gegate: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "gegate: drained cleanly")
}
