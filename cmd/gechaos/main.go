// Command gechaos is a deterministic chaos proxy for geserve fleets: put
// it between gegate and a replica and it injects latency, jitter,
// connection resets, black-holes, and 5xx bursts on a seeded schedule, so
// failover behavior is reproducible instead of anecdotal:
//
//	# replica stalls completely 2s in, for 5s:
//	gechaos -listen 127.0.0.1:9001 -target 127.0.0.1:8377 \
//	    -spec '[{"at":2,"kind":"blackhole","duration":5}]'
//
//	# seeded MTBF/MTTR outage process, 60s horizon:
//	gechaos -listen 127.0.0.1:9001 -target 127.0.0.1:8377 \
//	    -seed 7 -horizon 60 -mtbf 10 -mttr 3 -kind blackhole
//
// The -spec JSON mirrors internal/faults' schedule shape: objects with
// "at", "kind", "duration" (0 = permanent), plus per-kind payloads
// ("delay"/"jitter" seconds for latency, "code" for http-error). Kinds:
// latency, blackhole, reset, http-error. A @path reads the JSON from a
// file. SIGTERM/SIGINT severs all connections and exits 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"goodenough/internal/chaos"
)

// jsonSpec is the wire form of chaos.Spec with a string kind.
type jsonSpec struct {
	At       float64 `json:"at"`
	Kind     string  `json:"kind"`
	Duration float64 `json:"duration"`
	Delay    float64 `json:"delay"`
	Jitter   float64 `json:"jitter"`
	Code     int     `json:"code"`
}

func parseSpecs(arg string) ([]chaos.Spec, error) {
	raw := []byte(arg)
	if strings.HasPrefix(arg, "@") {
		b, err := os.ReadFile(arg[1:])
		if err != nil {
			return nil, err
		}
		raw = b
	}
	var js []jsonSpec
	if err := json.Unmarshal(raw, &js); err != nil {
		return nil, fmt.Errorf("parsing -spec: %w", err)
	}
	specs := make([]chaos.Spec, 0, len(js))
	for _, j := range js {
		kind, err := chaos.ParseKind(j.Kind)
		if err != nil {
			return nil, err
		}
		specs = append(specs, chaos.Spec{
			At: j.At, Kind: kind, Duration: j.Duration,
			Delay: j.Delay, Jitter: j.Jitter, Code: j.Code,
		})
	}
	return specs, nil
}

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:9001", "address to accept gateway traffic on")
		target  = flag.String("target", "", "replica address to forward to (required)")
		spec    = flag.String("spec", "", "JSON schedule (inline or @file); empty uses the generator flags")
		seed    = flag.Uint64("seed", 1, "generator seed")
		horizon = flag.Float64("horizon", 0, "generator horizon in seconds (0 disables the generator)")
		mtbf    = flag.Float64("mtbf", 10, "generator mean time between outages (s)")
		mttr    = flag.Float64("mttr", 2, "generator mean outage duration (s)")
		kindStr = flag.String("kind", "blackhole", "generator fault kind")
		delay   = flag.Float64("delay", 0.2, "generator latency delay (s, kind=latency)")
		jitter  = flag.Float64("jitter", 0.05, "generator latency jitter (s, kind=latency)")
		quiet   = flag.Bool("quiet", false, "suppress per-injection log lines")
	)
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "gechaos: -target is required")
		os.Exit(1)
	}

	var sched *chaos.Schedule
	var err error
	switch {
	case *spec != "":
		var specs []chaos.Spec
		if specs, err = parseSpecs(*spec); err == nil {
			sched, err = chaos.New(specs)
		}
	case *horizon > 0:
		var kind chaos.Kind
		if kind, err = chaos.ParseKind(*kindStr); err == nil {
			sched, err = chaos.Generate(*seed, *horizon, *mtbf, *mttr, kind, *delay, *jitter)
		}
	default:
		sched, err = chaos.New(nil) // transparent proxy
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gechaos:", err)
		os.Exit(1)
	}

	p, err := chaos.NewProxy(*listen, *target, sched, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gechaos:", err)
		os.Exit(1)
	}
	if !*quiet {
		p.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	fmt.Fprintf(os.Stderr, "gechaos: %s -> %s schedule=%s\n", p.Addr(), *target, sched)
	p.Start()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "gechaos: shutting down")
	_ = p.Close()
}
