package main

import (
	"testing"
	"time"
)

// TestRetryAfterHint: the generator honors sane Retry-After hints and
// clamps everything else — absent, garbage, negative, or absurd values can
// never park a worker past -max-backoff, and a zero or negative hint
// ("retry immediately" from a server that is actively shedding) is floored
// at one second so clients cannot be talked into a stampede.
func TestRetryAfterHint(t *testing.T) {
	const ceiling = 5 * time.Second
	cases := []struct {
		name    string
		header  string
		want    time.Duration
		clamped bool
	}{
		{"absent", "", 0, false},
		{"sane", "2", 2 * time.Second, false},
		{"zero", "0", time.Second, true},
		{"at ceiling", "5", 5 * time.Second, false},
		{"absurd", "86400", ceiling, true},
		{"negative", "-3", time.Second, true},
		{"garbage", "soon", ceiling, true},
		{"http date", "Wed, 21 Oct 2015 07:28:00 GMT", ceiling, true},
		{"float", "1.5", ceiling, true},
	}
	for _, c := range cases {
		got, clamped := retryAfterHint(c.header, ceiling)
		if got != c.want || clamped != c.clamped {
			t.Errorf("%s: retryAfterHint(%q) = (%v, %v), want (%v, %v)",
				c.name, c.header, got, clamped, c.want, c.clamped)
		}
	}
}

func TestQuantile(t *testing.T) {
	if q := quantile(nil, 0.99); q != 0 {
		t.Fatalf("quantile of empty = %v", q)
	}
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(xs, 0.5); q != 5 {
		t.Fatalf("p50 = %v, want 5", q)
	}
	if q := quantile(xs, 1.0); q != 10 {
		t.Fatalf("p100 = %v, want 10", q)
	}
}

// TestNextFire: the open-loop schedule spaces requests at the base
// interval until the ramp offset, then doubles the rate by halving the
// spacing — and stays flat when no ramp is configured.
func TestNextFire(t *testing.T) {
	const interval = 100 * time.Millisecond

	// Flat: every step is the base interval.
	fire := time.Duration(0)
	for i := 1; i <= 5; i++ {
		fire = nextFire(fire, interval, 0)
		if want := time.Duration(i) * interval; fire != want {
			t.Fatalf("flat fire %d = %v, want %v", i, fire, want)
		}
	}

	// Ramp at 300ms: fires at 100, 200, 300, then 350, 400, 450...
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		300 * time.Millisecond,
		350 * time.Millisecond,
		400 * time.Millisecond,
		450 * time.Millisecond,
	}
	fire = 0
	for i, w := range want {
		fire = nextFire(fire, interval, 300*time.Millisecond)
		if fire != w {
			t.Fatalf("ramped fire %d = %v, want %v", i, fire, w)
		}
	}

	// A ramp offset between fires takes effect at the first fire past it.
	fire = nextFire(250*time.Millisecond, interval, 300*time.Millisecond)
	if fire != 350*time.Millisecond {
		t.Fatalf("fire after 250ms = %v, want 350ms (ramp not yet reached)", fire)
	}
	fire = nextFire(fire, interval, 300*time.Millisecond)
	if fire != 400*time.Millisecond {
		t.Fatalf("fire after 350ms = %v, want 400ms (doubled regime)", fire)
	}
}
