// Command geload drives a running geserve instance with closed- or
// open-loop traffic and reports latency and shed-rate — the tool that makes
// overload behavior demonstrable:
//
//	geload -url http://localhost:8377 -mode closed -concurrency 8 -requests 100
//	geload -url http://localhost:8377 -mode open -rate 20 -requests 200
//
// Closed-loop mode keeps -concurrency requests outstanding (each worker
// waits for its response before sending the next) — the classic saturation
// probe. Open-loop mode fires requests at a fixed -rate regardless of
// completions, which is how real overload arrives.
//
// Shed (429) and draining (503) responses are retried with jittered
// exponential backoff that honors the server's Retry-After hint — but never
// verbatim: unparseable or absurd hints are clamped to -max-backoff and
// counted, so a misbehaving (or chaos-injected) server cannot park the
// generator. The final report shows the admitted/shed/error split, the shed
// rate, and the latency distribution of admitted requests (mean/p50/p95/p99).
//
// When pointed at gegate instead of a single geserve, responses carry
// X-GE-Replica / X-GE-Hedged attribution headers; geload aggregates them
// into a per-replica breakdown and a hedge-won count, making failover
// visible from the client side.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"goodenough/internal/obs"
)

type options struct {
	url         string
	mode        string
	concurrency int
	rate        float64
	requests    int
	retries     int
	backoff     time.Duration
	maxBackoff  time.Duration
	timeout     time.Duration
	seed        int64
	csv         bool
	ramp        time.Duration // open-loop: offset at which the rate doubles (0 = flat)

	body  []byte
	spans *obs.SpanBus // nil = tracing off
}

// tally accumulates outcomes across workers.
type tally struct {
	mu        sync.Mutex
	latencies []float64 // seconds, successful attempts only
	qualities []float64 // achieved quality per ok response (X-GE-Quality or body)
	ok        int
	cancelled int            // 200s whose result was a partial (Cancelled) run
	shed      int            // exhausted retries on 429/503
	errors    int            // 4xx/5xx config or server errors, connection failures
	clamped   int            // Retry-After hints rejected or capped to -max-backoff
	noHint    int            // 429 sheds missing a parseable positive Retry-After
	hedged    int            // 200s answered by a winning gateway hedge (X-GE-Hedged)
	replicas  map[string]int // ok responses per X-GE-Replica
	attempts  int64
	retried   int64
}

func (t *tally) success(d time.Duration, q float64, cancelled bool, replica string, hedged bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ok++
	t.latencies = append(t.latencies, d.Seconds())
	t.qualities = append(t.qualities, q)
	if cancelled {
		t.cancelled++
	}
	if hedged {
		t.hedged++
	}
	if replica != "" {
		if t.replicas == nil {
			t.replicas = map[string]int{}
		}
		t.replicas[replica]++
	}
}

func (t *tally) addShed()    { t.mu.Lock(); t.shed++; t.mu.Unlock() }
func (t *tally) addErr()     { t.mu.Lock(); t.errors++; t.mu.Unlock() }
func (t *tally) addClamped() { t.mu.Lock(); t.clamped++; t.mu.Unlock() }
func (t *tally) addNoHint()  { t.mu.Lock(); t.noHint++; t.mu.Unlock() }

// quantile returns the q-th quantile of sorted xs.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// retryAfterHint extracts the server's backoff hint without trusting it
// verbatim: absent means no hint; unparseable values are clamped to the
// ceiling, zero or negative ones are floored at one second (a server that
// says "retry immediately" while shedding is lying), and above-ceiling
// values are capped — all reported as clamped so a buggy or malicious
// header cannot park or stampede the generator.
func retryAfterHint(header string, ceiling time.Duration) (d time.Duration, clamped bool) {
	if header == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(header)
	if err != nil {
		return ceiling, true
	}
	if secs <= 0 {
		floor := time.Second
		if floor > ceiling {
			floor = ceiling
		}
		return floor, true
	}
	d = time.Duration(secs) * time.Second
	if d > ceiling {
		return ceiling, true
	}
	return d, false
}

// oneRequest submits one run, retrying shed responses with jittered
// exponential backoff. rng is per-worker, so jitter is reproducible under
// -seed without lock contention.
// nextFire returns the offset (from the start of the run) of the open-loop
// request after the one at prev. The base rate spaces requests interval
// apart; from the ramp offset onward the rate doubles, so the spacing
// halves. A fire landing exactly on the boundary already belongs to the
// doubled regime. ramp <= 0 keeps the rate flat.
func nextFire(prev, interval, ramp time.Duration) time.Duration {
	step := interval
	if ramp > 0 && prev >= ramp {
		step = interval / 2
	}
	return prev + step
}

func oneRequest(client *http.Client, opt *options, t *tally, rng *rand.Rand) {
	// One client span covers the whole logical request, shed retries
	// included; each attempt carries the trace so gegate and geserve spans
	// join it. Nil bus = all no-ops.
	span := opt.spans.Start("client./v1/run", obs.SpanClient, obs.SpanContext{})
	defer opt.spans.Finish(span)
	backoff := opt.backoff
	for attempt := 0; ; attempt++ {
		atomic.AddInt64(&t.attempts, 1)
		start := time.Now()
		req, rerr := http.NewRequest(http.MethodPost, opt.url+"/v1/run", bytes.NewReader(opt.body))
		if rerr != nil {
			span.SetNote("error")
			t.addErr()
			return
		}
		req.Header.Set("Content-Type", "application/json")
		span.Context().Inject(req.Header)
		resp, err := client.Do(req)
		if err != nil {
			// Connection-level failure: retry like a shed, the server may
			// be briefly unreachable mid-drain.
			if attempt >= opt.retries {
				span.SetNote("error")
				t.addErr()
				return
			}
		} else {
			elapsed := time.Since(start)
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				var rr struct {
					Result struct {
						Cancelled bool
						Quality   float64
					}
				}
				_ = json.Unmarshal(body, &rr)
				hedged := resp.Header.Get("X-GE-Hedged") != ""
				// Achieved quality: the governor's X-GE-Quality header when the
				// replica is governed, the simulation's own batch quality
				// otherwise — either way 1.0 means nothing was given up.
				q := rr.Result.Quality
				if v := resp.Header.Get("X-GE-Quality"); v != "" {
					if f, perr := strconv.ParseFloat(v, 64); perr == nil && f >= 0 && f <= 1 {
						q = f
					}
				}
				span.SetValue(elapsed.Seconds())
				span.SetAux(float64(attempt + 1))
				span.SetFlag(hedged)
				t.success(elapsed, q, rr.Result.Cancelled,
					resp.Header.Get("X-GE-Replica"), hedged)
				return
			case resp.StatusCode == http.StatusTooManyRequests ||
				resp.StatusCode == http.StatusServiceUnavailable:
				if resp.StatusCode == http.StatusTooManyRequests {
					if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr != nil || secs < 1 {
						// A shed without a usable backoff hint leaves clients
						// guessing; the brownout smoke gate requires zero.
						t.addNoHint()
					}
				}
				if attempt >= opt.retries {
					span.SetNote("shed")
					t.addShed()
					return
				}
				ra, clamped := retryAfterHint(resp.Header.Get("Retry-After"), opt.maxBackoff)
				if clamped {
					t.addClamped()
				}
				if ra > backoff {
					backoff = ra
				}
			default:
				// 400 config errors and 500 panics are not retryable.
				fmt.Fprintf(os.Stderr, "geload: %s: %s\n", resp.Status, bytes.TrimSpace(body))
				span.SetNote("error")
				t.addErr()
				return
			}
		}
		atomic.AddInt64(&t.retried, 1)
		// Full jitter on the current backoff, then exponential growth.
		sleep := time.Duration(rng.Int63n(int64(backoff) + 1))
		time.Sleep(sleep)
		backoff *= 2
		if backoff > opt.maxBackoff {
			backoff = opt.maxBackoff
		}
	}
}

func main() {
	var opt options
	var runDuration = flag.Float64("run-duration", 1, "DurationSec of each submitted simulation")
	var simRate = flag.Float64("sim-rate", 154, "ArrivalRate of each submitted simulation")
	var scheduler = flag.String("scheduler", "ge", "scheduler of each submitted simulation")
	var cores = flag.Int("cores", 16, "cores of each submitted simulation")
	flag.StringVar(&opt.url, "url", "http://127.0.0.1:8377", "geserve base URL")
	flag.StringVar(&opt.mode, "mode", "closed", "closed (fixed concurrency) or open (fixed arrival rate)")
	flag.IntVar(&opt.concurrency, "concurrency", 8, "closed-loop outstanding requests")
	flag.Float64Var(&opt.rate, "rate", 10, "open-loop offered request rate (req/s)")
	flag.IntVar(&opt.requests, "requests", 50, "total requests to offer")
	flag.IntVar(&opt.retries, "retries", 4, "max retries per shed request")
	flag.DurationVar(&opt.backoff, "backoff", 200*time.Millisecond, "initial retry backoff")
	flag.DurationVar(&opt.maxBackoff, "max-backoff", 5*time.Second, "retry backoff ceiling")
	flag.DurationVar(&opt.timeout, "timeout", 2*time.Minute, "per-attempt HTTP timeout")
	flag.Int64Var(&opt.seed, "seed", 1, "jitter RNG seed")
	flag.DurationVar(&opt.ramp, "ramp", 0, "open-loop step load: double the offered rate this long into the run (0 = flat)")
	flag.BoolVar(&opt.csv, "csv", false, "emit a single CSV row instead of text")
	var spanLog = flag.String("span-log", "", "originate a trace per request and log client spans to this JSONL file")
	flag.Parse()

	if opt.requests <= 0 {
		fmt.Fprintln(os.Stderr, "geload: -requests must be positive")
		os.Exit(1)
	}
	if *spanLog != "" {
		f, err := os.Create(*spanLog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "geload:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink := obs.NewSpanLog(f)
		defer sink.Flush()
		opt.spans = obs.NewSpanBus(sink)
	}
	body, err := json.Marshal(map[string]any{
		"Scheduler":   *scheduler,
		"ArrivalRate": *simRate,
		"DurationSec": *runDuration,
		"Cores":       *cores,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "geload:", err)
		os.Exit(1)
	}
	opt.body = body

	client := &http.Client{Timeout: opt.timeout}
	var t tally
	start := time.Now()
	var wg sync.WaitGroup
	switch opt.mode {
	case "closed":
		var next int64
		for w := 0; w < opt.concurrency; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(opt.seed + int64(id)))
				for {
					if int(atomic.AddInt64(&next, 1)) > opt.requests {
						return
					}
					oneRequest(client, &opt, &t, rng)
				}
			}(w)
		}
	case "open":
		if opt.rate <= 0 {
			fmt.Fprintln(os.Stderr, "geload: open-loop mode needs -rate > 0")
			os.Exit(1)
		}
		// Absolute-offset scheduling instead of a ticker: each fire time is
		// computed from the start of the run, so slow request launches never
		// skew the offered rate, and the -ramp step (rate doubling) lands at
		// its exact offset.
		interval := time.Duration(float64(time.Second) / opt.rate)
		fire := time.Duration(0)
		for i := 0; i < opt.requests; i++ {
			fire = nextFire(fire, interval, opt.ramp)
			if d := time.Until(start.Add(fire)); d > 0 {
				time.Sleep(d)
			}
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(opt.seed + int64(id)))
				oneRequest(client, &opt, &t, rng)
			}(i)
		}
	default:
		fmt.Fprintf(os.Stderr, "geload: unknown -mode %q (closed|open)\n", opt.mode)
		os.Exit(1)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Float64s(t.latencies)
	sort.Float64s(t.qualities)
	shedRate := float64(t.shed) / float64(opt.requests)
	mean := 0.0
	for _, v := range t.latencies {
		mean += v
	}
	if len(t.latencies) > 0 {
		mean /= float64(len(t.latencies))
	}
	qMean := 0.0
	for _, v := range t.qualities {
		qMean += v
	}
	if len(t.qualities) > 0 {
		qMean /= float64(len(t.qualities))
	}
	// p99 of achieved quality is taken from the low end: the 1% of
	// responses that gave up the most, the number the brownout gate bounds.
	qP50 := quantile(t.qualities, 0.50)
	qLow := quantile(t.qualities, 0.01)
	if opt.csv {
		fmt.Println("mode,offered,ok,cancelled,shed,errors,clamped,no_hint,hedged,attempts,retries,shed_rate,elapsed_s,throughput_rps,lat_mean_ms,lat_p50_ms,lat_p95_ms,lat_p99_ms,q_mean,q_p50,q_p99_low")
		fmt.Printf("%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%.2f,%.2f,%.1f,%.1f,%.1f,%.1f,%.4f,%.4f,%.4f\n",
			opt.mode, opt.requests, t.ok, t.cancelled, t.shed, t.errors,
			t.clamped, t.noHint, t.hedged,
			t.attempts, t.retried, shedRate, elapsed.Seconds(),
			float64(t.ok)/elapsed.Seconds(),
			mean*1000, quantile(t.latencies, 0.50)*1000,
			quantile(t.latencies, 0.95)*1000, quantile(t.latencies, 0.99)*1000,
			qMean, qP50, qLow)
		return
	}
	fmt.Printf("mode             %s\n", opt.mode)
	fmt.Printf("offered          %d requests in %.1fs\n", opt.requests, elapsed.Seconds())
	fmt.Printf("admitted ok      %d (%d returned partial/cancelled results)\n", t.ok, t.cancelled)
	fmt.Printf("shed             %d (rate %.3f, after %d retries)\n", t.shed, shedRate, t.retried)
	fmt.Printf("errors           %d\n", t.errors)
	fmt.Printf("clamped hints    %d (Retry-After rejected or capped at %s)\n", t.clamped, opt.maxBackoff)
	fmt.Printf("hintless sheds   %d (429s without a parseable positive Retry-After)\n", t.noHint)
	fmt.Printf("attempts         %d\n", t.attempts)
	fmt.Printf("throughput       %.2f ok/s\n", float64(t.ok)/elapsed.Seconds())
	fmt.Printf("latency (ok)     mean %.1f ms, p50 %.1f ms, p95 %.1f ms, p99 %.1f ms\n",
		mean*1000, quantile(t.latencies, 0.50)*1000,
		quantile(t.latencies, 0.95)*1000, quantile(t.latencies, 0.99)*1000)
	fmt.Printf("quality (ok)     mean %.4f, p50 %.4f, worst-1%% %.4f\n", qMean, qP50, qLow)
	if len(t.replicas) > 0 {
		fmt.Printf("hedge wins       %d\n", t.hedged)
		names := make([]string, 0, len(t.replicas))
		for name := range t.replicas {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-14s %d ok (%.1f%%)\n", name, t.replicas[name],
				100*float64(t.replicas[name])/float64(t.ok))
		}
	}
}
