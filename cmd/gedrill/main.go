// Command gedrill runs a process-level crash-recovery drill against a real
// geserve fleet behind gegate: it boots the processes, drives seeded
// traffic, SIGKILLs / pauses / rolling-restarts replicas on a
// deterministic schedule, and audits the invariants a resilient tier must
// hold — zero acknowledged-then-lost requests, bounded rejoin, goodput
// recovery, and the quality floor.
//
//	gedrill -seed 7 -replicas 3 -rate 40 -duration 12s -json report.json
//
// With no -geserve / -gegate paths, gedrill builds both binaries from the
// enclosing module into a temp dir first (requires the go toolchain). The
// process exits 0 when every invariant held and 1 otherwise, printing the
// audit either way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"goodenough/internal/drill"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "fault-schedule and trace-ID seed")
		replicas = flag.Int("replicas", 3, "geserve fleet size")
		rate     = flag.Float64("rate", 40, "offered open-loop request rate (req/s)")
		duration = flag.Duration("duration", 12*time.Second, "traffic horizon")
		governed = flag.Bool("governed", true, "run replicas under the GE overload governor")
		geserve  = flag.String("geserve", "", "geserve binary (empty = go build ./cmd/geserve)")
		gegate   = flag.String("gegate", "", "gegate binary (empty = go build ./cmd/gegate)")
		workdir  = flag.String("workdir", "", "journal/log directory (empty = temp dir, kept on failure)")
		rejoin   = flag.Duration("rejoin-bound", 5*time.Second, "max allowed relaunch -> back-in-rotation time")
		goodput  = flag.Float64("goodput-frac", 0.95, "recovery-window goodput floor as a fraction of baseline")
		quality  = flag.Float64("quality-floor", 0, "mean-quality floor for acked requests (0 = default: 0.85 when governed)")
		jsonOut  = flag.String("json", "", "write the full report as JSON to this file")
		quiet    = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	geservePath, gegatePath := *geserve, *gegate
	if geservePath == "" || gegatePath == "" {
		bindir, err := os.MkdirTemp("", "gedrill-bin-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(bindir)
		logf("gedrill: building geserve + gegate into %s", bindir)
		if geservePath == "" {
			geservePath = filepath.Join(bindir, "geserve")
			if err := goBuild(geservePath, "./cmd/geserve"); err != nil {
				fatal(err)
			}
		}
		if gegatePath == "" {
			gegatePath = filepath.Join(bindir, "gegate")
			if err := goBuild(gegatePath, "./cmd/gegate"); err != nil {
				fatal(err)
			}
		}
	}

	workDir := *workdir
	if workDir == "" {
		dir, err := os.MkdirTemp("", "gedrill-*")
		if err != nil {
			fatal(err)
		}
		workDir = dir
	}

	report, err := drill.Run(drill.Config{
		Seed:         *seed,
		Replicas:     *replicas,
		Rate:         *rate,
		Duration:     *duration,
		Governed:     *governed,
		GeservePath:  geservePath,
		GegatePath:   gegatePath,
		WorkDir:      workDir,
		RejoinBound:  *rejoin,
		GoodputFrac:  *goodput,
		QualityFloor: *quality,
		Logf:         logf,
	})
	if err != nil {
		fatal(err)
	}

	if *jsonOut != "" {
		data, _ := json.MarshalIndent(report, "", "  ")
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("gedrill seed=%d requests=%d acked=%d shed=%d errors=%d\n",
		report.Seed, report.Requests, report.Acked, report.Shed, report.Errors)
	fmt.Printf("  acked-lost=%d orphans=%d (budget %d) slowstart-enters=%d\n",
		len(report.AckedLost), len(report.Orphans), report.OrphanBudget, report.SlowStartEnters)
	fmt.Printf("  goodput baseline=%.1f rps recovered=%.1f rps rejoin-max=%v quality-mean=%.3f\n",
		report.BaselineGoodput, report.RecoveredGoodput,
		report.RejoinMax.Round(time.Millisecond), report.QualityMean)
	if report.Pass {
		fmt.Println("PASS: all invariants held")
		if *workdir == "" {
			os.RemoveAll(workDir)
		}
		return
	}
	for _, f := range report.Failures {
		fmt.Println("FAIL:", f)
	}
	fmt.Fprintf(os.Stderr, "gedrill: artifacts kept in %s\n", workDir)
	os.Exit(1)
}

func goBuild(out, pkg string) error {
	cmd := exec.Command("go", "build", "-o", out, pkg)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	return cmd.Run()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gedrill:", err)
	os.Exit(1)
}
