// Command gesweep regenerates every figure of the paper's evaluation
// section. Each figure is written as tidy CSV plus an aligned text table
// (and optionally an ASCII chart) under the output directory, and the
// headline GE-vs-BE energy saving is printed at the end.
//
//	gesweep                         # all figures, paper-scale (600 s runs)
//	gesweep -duration 60            # 10x faster, same shapes
//	gesweep -figures fig1,fig3      # a subset
//	gesweep -out results -ascii
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"goodenough/internal/experiments"
	"goodenough/internal/plot"
)

func main() {
	var (
		out      = flag.String("out", "results", "output directory")
		duration = flag.Float64("duration", 600, "simulated seconds per sweep point")
		seed     = flag.Uint64("seed", 2017, "workload RNG seed")
		figures  = flag.String("figures", "all", "comma-separated subset: fig1,fig2,...,fig12")
		ascii    = flag.Bool("ascii", false, "also print ASCII charts to stdout")
		workers  = flag.Int("workers", 0, "sweep parallelism (0 = GOMAXPROCS)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gesweep:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gesweep:", err)
			}
			f.Close()
		}()
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	s := experiments.DefaultSettings()
	s.Duration = *duration
	s.Seed = *seed
	s.Workers = *workers

	want := map[string]bool{}
	if *figures == "all" {
		for i := 1; i <= 12; i++ {
			want[fmt.Sprintf("fig%d", i)] = true
		}
	} else {
		for _, f := range strings.Split(*figures, ",") {
			want[strings.TrimSpace(strings.ToLower(f))] = true
		}
	}

	emit := func(name string, fig plot.Figure) {
		path := filepath.Join(*out, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := fig.WriteCSV(f); err != nil {
			fatal(err)
		}
		f.Close()
		tpath := filepath.Join(*out, name+".txt")
		tf, err := os.Create(tpath)
		if err != nil {
			fatal(err)
		}
		if err := fig.WriteTable(tf); err != nil {
			fatal(err)
		}
		tf.Close()
		fmt.Printf("wrote %s (+.txt)\n", path)
		if *ascii {
			if err := fig.WriteASCII(os.Stdout, 72, 18); err != nil {
				fatal(err)
			}
		}
	}

	type pair func() (plot.Figure, plot.Figure, error)
	runPair := func(id, aName, bName string, fn pair) {
		if !want[id] {
			return
		}
		start := time.Now()
		a, b, err := fn()
		if err != nil {
			fatal(err)
		}
		emit(aName, a)
		emit(bName, b)
		fmt.Printf("%s done in %v\n", id, time.Since(start).Round(time.Millisecond))
		if id == "fig3" {
			if saving, at, err := experiments.HeadlineSaving(b); err == nil {
				fmt.Printf("headline: GE saves %.1f%% energy vs BE at rate %g (paper: up to 23.9%%)\n",
					saving*100, at)
			}
		}
	}

	if want["fig1"] {
		start := time.Now()
		fig, err := experiments.Fig1(s)
		if err != nil {
			fatal(err)
		}
		emit("fig1_aes_fraction", fig)
		fmt.Printf("fig1 done in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if want["fig2"] {
		fig, res := experiments.Fig2(s.Base.QGE)
		emit("fig2_job_cutting", fig)
		fmt.Printf("fig2: cut %d jobs, removed %.0f units, batch quality %.4f\n",
			res.Cut, res.WorkRemoved, res.Quality)
	}
	runPair("fig3", "fig3a_quality", "fig3b_energy", func() (plot.Figure, plot.Figure, error) { return experiments.Fig3(s) })
	runPair("fig4", "fig4a_quality", "fig4b_energy", func() (plot.Figure, plot.Figure, error) { return experiments.Fig4(s) })
	runPair("fig5", "fig5a_quality", "fig5b_energy", func() (plot.Figure, plot.Figure, error) { return experiments.Fig5(s) })
	runPair("fig6", "fig6a_avg_speed", "fig6b_speed_variance", func() (plot.Figure, plot.Figure, error) { return experiments.Fig6(s) })
	runPair("fig7", "fig7a_quality", "fig7b_energy", func() (plot.Figure, plot.Figure, error) { return experiments.Fig7(s) })
	runPair("fig8", "fig8a_quality", "fig8b_energy", func() (plot.Figure, plot.Figure, error) { return experiments.Fig8(s) })
	runPair("fig9", "fig9a_quality", "fig9b_quality_functions", func() (plot.Figure, plot.Figure, error) {
		s9 := s
		s9.Rates = fig9Rates()
		return experiments.Fig9(s9)
	})
	runPair("fig10", "fig10a_quality", "fig10b_energy", func() (plot.Figure, plot.Figure, error) { return experiments.Fig10(s) })
	runPair("fig11", "fig11a_quality", "fig11b_energy", func() (plot.Figure, plot.Figure, error) {
		s11 := s
		s11.Rates = []float64{154} // fixed rate; x axis is the core count
		return experiments.Fig11(s11)
	})
	runPair("fig12", "fig12a_quality", "fig12b_energy", func() (plot.Figure, plot.Figure, error) { return experiments.Fig12(s) })

	// Ablations beyond the paper's figures (DESIGN.md §7): request with
	// -figures ablations (or individually: abl-assign, abl-hybrid,
	// abl-monitor, abl-static).
	if want["ablations"] {
		for _, id := range []string{"abl-assign", "abl-hybrid", "abl-monitor", "abl-static", "ext-latency", "ext-manycore", "ext-biglittle"} {
			want[id] = true
		}
	}
	runPair("abl-assign", "abl_assign_quality", "abl_assign_energy",
		func() (plot.Figure, plot.Figure, error) { return experiments.AblationAssignment(s) })
	runPair("abl-hybrid", "abl_hybrid_quality", "abl_hybrid_energy",
		func() (plot.Figure, plot.Figure, error) { return experiments.AblationHybrid(s) })
	runPair("abl-monitor", "abl_monitor_quality", "abl_monitor_switches",
		func() (plot.Figure, plot.Figure, error) { return experiments.AblationMonitorWindow(s, 5) })
	runPair("ext-latency", "ext_latency_mean", "ext_latency_p95",
		func() (plot.Figure, plot.Figure, error) { return experiments.ExtLatency(s) })
	runPair("ext-biglittle", "ext_biglittle_quality", "ext_biglittle_energy",
		func() (plot.Figure, plot.Figure, error) { return experiments.ExtBigLittle(s) })
	runPair("ext-manycore", "ext_manycore_quality", "ext_manycore_energy",
		func() (plot.Figure, plot.Figure, error) {
			sm := s
			sm.Rates = []float64{154}
			return experiments.ExtManyCore(sm)
		})
	if want["abl-static"] {
		sStatic := s
		sStatic.Rates = []float64{154}
		fig, err := experiments.AblationStaticPower(sStatic, 10)
		if err != nil {
			fatal(err)
		}
		emit("abl_static_energy", fig)
	}
}

// fig9Rates is the paper's Fig. 9 x axis (180–240 req/s).
func fig9Rates() []float64 {
	rates := make([]float64, 0, 7)
	for r := 180.0; r <= 240; r += 10 {
		rates = append(rates, r)
	}
	return rates
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gesweep:", err)
	os.Exit(1)
}
