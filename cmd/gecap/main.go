// Command gecap is a capacity-planning calculator built on the closed-form
// analysis in internal/analytic: given a machine (cores, budget, power
// curve), a workload shape, and a quality target, it prints the raw and
// post-cutting capacities, the population cut level, and utilization at a
// rate of interest — the numbers an operator needs before trusting a
// quality target to production.
//
//	gecap                          # the paper's defaults
//	gecap -cores 32 -budget 640 -qge 0.85 -rate 300
package main

import (
	"flag"
	"fmt"
	"os"

	"goodenough/internal/analytic"
	"goodenough/internal/power"
	"goodenough/internal/quality"
	"goodenough/internal/workload"
)

func main() {
	var (
		cores  = flag.Int("cores", 16, "number of DVFS cores")
		budget = flag.Float64("budget", 320, "total dynamic power budget (W)")
		pa     = flag.Float64("power-a", 5, "power model scale a in P = a*s^b")
		pb     = flag.Float64("power-b", 2, "power model exponent b")
		qge    = flag.Float64("qge", 0.9, "good-enough quality target")
		qc     = flag.Float64("quality-c", 0.003, "quality concavity c")
		alpha  = flag.Float64("pareto-alpha", 3, "demand Pareto index")
		xmin   = flag.Float64("demand-min", 130, "demand lower bound (units)")
		xmax   = flag.Float64("demand-max", 1000, "demand upper bound (units)")
		rate   = flag.Float64("rate", 154, "arrival rate of interest (req/s)")
	)
	flag.Parse()

	model := power.Model{A: *pa, Beta: *pb}
	spec := workload.DefaultSpec(*rate, 1)
	spec.ParetoAlpha, spec.Xmin, spec.Xmax = *alpha, *xmin, *xmax
	f := quality.NewExponential(*qc, *xmax)

	cap, err := analytic.Capacity(model, *cores, *budget, spec)
	if err != nil {
		fatal(err)
	}
	level, kept, err := analytic.CutKeepFraction(f, spec, *qge)
	if err != nil {
		fatal(err)
	}
	eff, err := analytic.EffectiveCapacity(model, *cores, *budget, spec, f, *qge)
	if err != nil {
		fatal(err)
	}
	util, err := analytic.Utilization(model, *cores, *budget, spec, *rate)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("machine            %d cores, %.0f W, P = %g*s^%g\n", *cores, *budget, *pa, *pb)
	fmt.Printf("mean demand        %.1f units (bounded Pareto %.1f, %.0f..%.0f)\n",
		spec.MeanDemand(), *alpha, *xmin, *xmax)
	fmt.Printf("raw capacity       %.1f req/s (full-quality service)\n", cap)
	fmt.Printf("cut level @ %.2f   %.1f units (keeps %.1f%% of the work)\n", *qge, level, kept*100)
	fmt.Printf("GE capacity        %.1f req/s (after cutting to QGE=%.2f)\n", eff, *qge)
	fmt.Printf("at %.0f req/s       %.1f%% of raw, %.1f%% of GE capacity\n",
		*rate, util*100, *rate/eff*100)
	switch {
	case *rate > eff:
		fmt.Println("verdict            OVERLOADED even with cutting: quality will sag below QGE")
	case *rate > cap:
		fmt.Println("verdict            above raw capacity; GE holds QGE only by cutting tails")
	default:
		fmt.Println("verdict            within raw capacity; GE cutting converts headroom to energy savings")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gecap:", err)
	os.Exit(1)
}
