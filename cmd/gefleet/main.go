// Command gefleet runs a fleet simulation: N machines — each a full
// scheduler/DVFS/power stack — behind a global dispatcher, under optional
// machine-level chaos, all on one deterministic clock:
//
//	gefleet -machines 8 -dispatch p2c -rate 1200
//	gefleet -machines 4 -dispatch least-loaded -scheduler be
//	gefleet -list
//
// Machine chaos (crashes, partitions, degraded machines):
//
//	# machine 1 crashes at t=5s for 10s; machine 3 runs at half budget:
//	gefleet -machines 4 -chaos '[{"at":5,"kind":"crash","machine":1,"duration":10},
//	                             {"at":8,"kind":"slow","machine":3,"duration":20,"factor":0.5}]'
//
//	# seeded MTBF/MTTR crash/recover process across the fleet:
//	gefleet -machines 10 -machine-mtbf 30 -machine-mttr 5
//
//	# committed chaos scenarios live in testdata/ (see -chaos @file):
//	gefleet -machines 10 -chaos @testdata/fleet_chaos.json -compare
//
// The -compare mode runs every dispatch policy on the identical workload
// and fault schedule — the policy shoot-out: per-policy energy, quality,
// p99 latency, lost work, and re-dispatch counts side by side, with the
// omniscient "ideal" row as the routing-regret yardstick.
//
// The event heaps are sharded for scale (-shards; 0 picks an automatic
// count, 1 forces sequential). Every shard count produces byte-identical
// output — it is an execution knob, never a simulation knob.
//
// Observability mirrors gesim: -events (JSONL), -trace (Perfetto), -report.
// Fleet exports remap core events to globally unique IDs machine*cores+core
// and add machine health tracks. -report also prints the decision summary
// (dispatches, re-dispatches, sheds) and a per-machine routing table;
// combined with -compare it shows how each policy spread the load.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"goodenough"
)

// jsonMachineFault is the wire form of a machine fault window.
type jsonMachineFault struct {
	At       float64 `json:"at"`
	Kind     string  `json:"kind"`
	Machine  int     `json:"machine"`
	Duration float64 `json:"duration"`
	Factor   float64 `json:"factor"`
}

func parseChaos(arg string) ([]goodenough.MachineFaultSpec, error) {
	raw := []byte(arg)
	if strings.HasPrefix(arg, "@") {
		b, err := os.ReadFile(arg[1:])
		if err != nil {
			return nil, err
		}
		raw = b
	}
	var js []jsonMachineFault
	if err := json.Unmarshal(raw, &js); err != nil {
		return nil, fmt.Errorf("parsing -chaos: %w", err)
	}
	specs := make([]goodenough.MachineFaultSpec, 0, len(js))
	for _, j := range js {
		specs = append(specs, goodenough.MachineFaultSpec{
			AtSec: j.At, Kind: j.Kind, Machine: j.Machine,
			DurationSec: j.Duration, Factor: j.Factor,
		})
	}
	return specs, nil
}

// compareAll runs every dispatch policy on the same workload and fault
// schedule and prints one row per policy. With report set, each row is
// followed by the per-machine decision summary — how that policy actually
// spread (and fault re-routed) the load.
func compareAll(fc goodenough.FleetConfig, report bool) {
	fmt.Printf("%-13s %8s %12s %9s %9s %7s %8s %10s %6s %6s\n",
		"dispatch", "quality", "energy(J)", "p99(ms)", "completed", "expired", "redisp", "lostwork", "drop", "lost")
	exit := 0
	for _, name := range goodenough.DispatchPolicies() {
		c := fc
		c.Dispatch = name
		res, err := goodenough.RunFleet(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gefleet: %s: %v\n", name, err)
			exit = 1
			continue
		}
		fmt.Printf("%-13s %8.4f %12.1f %9.2f %9d %7d %8d %10.1f %6d %6d\n",
			res.Dispatch, res.Quality, res.Energy, res.P99Response*1000,
			res.Completed, res.Expired, res.Redispatches, res.LostWork,
			res.Dropped, res.LostForever)
		if report {
			for i, m := range res.PerMachine {
				fmt.Printf("  machine %-4d dispatches=%-7d redispatches=%-5d completed=%-7d expired=%d\n",
					i, m.Dispatches, m.Redispatches, m.Completed, m.Expired)
			}
		}
		if res.LostForever != 0 {
			fmt.Fprintf(os.Stderr, "gefleet: %s: %d jobs lost forever\n", name, res.LostForever)
			exit = 1
		}
	}
	os.Exit(exit)
}

// printShardLayout shows how the run was partitioned across event-heap
// shards and how much event traffic each shard carried — the load-balance
// check for the sharded engine.
func printShardLayout(res goodenough.FleetResult) {
	fmt.Printf("shards           %d\n", res.Shards)
	for i, ev := range res.ShardEvents {
		machines := 0
		if i < len(res.ShardMachines) {
			machines = res.ShardMachines[i]
		}
		fmt.Printf("  shard %-4d %3d machines %12d events\n", i, machines, ev)
	}
}

func main() {
	var (
		list        = flag.Bool("list", false, "list dispatch policies and schedulers, then exit")
		machines    = flag.Int("machines", 4, "fleet size N")
		dispatch    = flag.String("dispatch", "p2c", "dispatch policy (rr|least-loaded|p2c|ideal)")
		choicesK    = flag.Int("choices-k", 2, "sample size k for the p2c dispatcher")
		scheduler   = flag.String("scheduler", "ge", "per-machine scheduling policy")
		rate        = flag.Float64("rate", 0, "fleet-wide Poisson arrival rate (req/s; 0 = 154 per machine)")
		duration    = flag.Float64("duration", 60, "simulated seconds of arrivals")
		cores       = flag.Int("cores", 16, "DVFS cores per machine")
		budget      = flag.Float64("budget", 320, "per-machine dynamic power budget (W)")
		qge         = flag.Float64("qge", 0.9, "good-enough quality target")
		seed        = flag.Uint64("seed", 2017, "workload and chaos RNG seed")
		redispLimit = flag.Int("redispatch-limit", 0, "max re-dispatches per job (0 = default 3)")
		chaos       = flag.String("chaos", "", "machine fault schedule JSON (inline or @file)")
		mtbf        = flag.Float64("machine-mtbf", 0, "mean time between machine crashes (s, 0 = off)")
		mttr        = flag.Float64("machine-mttr", 0, "mean machine repair time for -machine-mtbf (s)")
		shards      = flag.Int("shards", 0, "event-heap shards (0 = auto: min(GOMAXPROCS, machines/8); 1 = sequential); results are byte-identical for every value")

		compare   = flag.Bool("compare", false, "run every dispatch policy and print a comparison table")
		csv       = flag.Bool("csv", false, "emit a single CSV row instead of text")
		eventsOut = flag.String("events", "", "write the structured event stream as JSON Lines to this file")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event file (open in Perfetto) to this file")
		report    = flag.Bool("report", false, "print a plain-text observability report after the run")
	)
	flag.Parse()

	if *list {
		fmt.Println("dispatch policies:", strings.Join(goodenough.DispatchPolicies(), " "))
		fmt.Println("schedulers:", strings.Join(goodenough.Schedulers(), " "))
		return
	}

	fc := goodenough.DefaultFleetConfig()
	fc.Machines = *machines
	fc.Dispatch = *dispatch
	fc.ChoicesK = *choicesK
	fc.Scheduler = *scheduler
	fc.DurationSec = *duration
	fc.Cores = *cores
	fc.PowerBudget = *budget
	fc.QGE = *qge
	fc.Seed = *seed
	fc.RedispatchLimit = *redispLimit
	fc.MachineMTBFSec = *mtbf
	fc.MachineMTTRSec = *mttr
	fc.Shards = *shards
	if *rate > 0 {
		fc.ArrivalRate = *rate
	} else {
		fc.ArrivalRate = 154 * float64(*machines)
	}
	if *chaos != "" {
		specs, err := parseChaos(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gefleet:", err)
			os.Exit(1)
		}
		fc.MachineFaults = specs
	}

	if *compare {
		compareAll(fc, *report)
		return
	}

	var opts goodenough.RunOptions
	var outFiles []*os.File
	open := func(path string) *os.File {
		f, ferr := os.Create(path)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "gefleet:", ferr)
			os.Exit(1)
		}
		outFiles = append(outFiles, f)
		return f
	}
	if *eventsOut != "" {
		opts.Events = open(*eventsOut)
	}
	if *traceOut != "" {
		opts.Trace = open(*traceOut)
	}
	var reportBuf bytes.Buffer
	if *report {
		opts.Report = &reportBuf
	}

	res, err := goodenough.RunFleetWithOptions(fc, opts)
	for _, f := range outFiles {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gefleet:", err)
		os.Exit(1)
	}

	if *csv {
		fmt.Printf("dispatch,scheduler,machines,rate,quality,energy_j,aes_fraction,p99_ms,jobs,completed,expired,dropped,lost_forever,crashes,partitions,degrades,redispatches,lost_work,pending_expired,availability,sim_time_s\n")
		fmt.Printf("%s,%s,%d,%g,%.6f,%.2f,%.4f,%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.2f,%d,%.6f,%.2f\n",
			res.Dispatch, res.Scheduler, res.Machines, fc.ArrivalRate,
			res.Quality, res.Energy, res.AESFraction, res.P99Response*1000,
			res.Jobs, res.Completed, res.Expired, res.Dropped, res.LostForever,
			res.Crashes, res.Partitions, res.Degrades, res.Redispatches,
			res.LostWork, res.PendingExpired, res.Availability, res.SimTime)
		if *report {
			printShardLayout(res)
		}
		reportBuf.WriteTo(os.Stdout)
		if res.LostForever != 0 {
			os.Exit(1)
		}
		return
	}

	fmt.Printf("dispatch         %s (scheduler %s, %d machines x %d cores)\n",
		res.Dispatch, res.Scheduler, res.Machines, fc.Cores)
	fmt.Printf("arrival rate     %g req/s fleet-wide over %g s (%d jobs)\n",
		fc.ArrivalRate, *duration, res.Jobs)
	fmt.Printf("service quality  %.4f (target %.2f)\n", res.Quality, *qge)
	fmt.Printf("energy           %.1f J (AES %.1f + BQ %.1f)\n",
		res.Energy, res.AESEnergy, res.BQEnergy)
	fmt.Printf("response         mean %.1f ms, p95 %.1f ms, p99 %.1f ms\n",
		res.MeanResponse*1000, res.P95Response*1000, res.P99Response*1000)
	fmt.Printf("AES fraction     %.3f\n", res.AESFraction)
	fmt.Printf("completed        %d\n", res.Completed)
	fmt.Printf("expired          %d\n", res.Expired)
	fmt.Printf("dropped          %d (re-dispatch limit)\n", res.Dropped)
	fmt.Printf("lost forever     %d\n", res.LostForever)
	if res.Crashes > 0 || res.Partitions > 0 || res.Degrades > 0 || *report {
		if res.Crashes > 0 || res.Partitions > 0 || res.Degrades > 0 {
			fmt.Printf("machine faults   %d crashes, %d partitions, %d degrades\n",
				res.Crashes, res.Partitions, res.Degrades)
			fmt.Printf("re-dispatches    %d (lost work %.1f units)\n",
				res.Redispatches, res.LostWork)
			fmt.Printf("pending expired  %d\n", res.PendingExpired)
			fmt.Printf("availability     %.4f\n", res.Availability)
		}
		fmt.Printf("%-8s %12s %9s %10s %9s %8s %9s %8s %7s\n",
			"machine", "energy(J)", "quality", "completed", "expired", "crashes", "down(s)", "disp", "redisp")
		for i, m := range res.PerMachine {
			fmt.Printf("%-8d %12.1f %9.4f %10d %9d %8d %9.2f %8d %7d\n",
				i, m.Energy, m.Quality, m.Completed, m.Expired, m.Crashes, m.DownTime,
				m.Dispatches, m.Redispatches)
		}
	}
	if *report {
		fmt.Println()
		printShardLayout(res)
		reportBuf.WriteTo(os.Stdout)
	}
	if res.LostForever != 0 {
		fmt.Fprintf(os.Stderr, "gefleet: %d jobs lost forever\n", res.LostForever)
		os.Exit(1)
	}
}
