// Command getrace exports and replays workload traces, so the exact same
// request stream can be archived, shared, or swapped for a real trace.
//
//	getrace export -rate 154 -duration 60 -o trace.json
//	getrace replay -scheduler ge trace.json
//	getrace replay -scheduler be trace.json     # same stream, other policy
package main

import (
	"flag"
	"fmt"
	"os"

	"goodenough"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "export":
		export(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  getrace export [-rate R] [-duration S] [-seed N] [-random-window] [-o FILE]
  getrace replay [-scheduler NAME] [-cores N] [-budget W] [-qge Q]
                 [-trace FILE] [-events FILE] FILE`)
	os.Exit(2)
}

func export(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	rate := fs.Float64("rate", 154, "Poisson arrival rate (req/s)")
	duration := fs.Float64("duration", 60, "arrival span (seconds)")
	seed := fs.Uint64("seed", 2017, "RNG seed")
	randomWin := fs.Bool("random-window", false, "uniform 150-500 ms windows")
	out := fs.String("o", "-", "output file (default stdout)")
	fs.Parse(args)

	cfg := goodenough.DefaultConfig()
	cfg.ArrivalRate = *rate
	cfg.DurationSec = *duration
	cfg.Seed = *seed
	cfg.RandomWindow = *randomWin

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := goodenough.ExportTrace(cfg, w); err != nil {
		fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	scheduler := fs.String("scheduler", "ge", "scheduling policy")
	cores := fs.Int("cores", 16, "number of cores")
	budget := fs.Float64("budget", 320, "power budget (W)")
	qge := fs.Float64("qge", 0.9, "good-enough quality target")
	bepBudget := fs.Float64("bep-budget", 0, "budget for be-p")
	besCap := fs.Float64("bes-cap", 0, "speed cap for be-s")
	traceOut := fs.String("trace", "", "write a Chrome trace-event file (open in Perfetto)")
	eventsOut := fs.String("events", "", "write the structured event stream as JSON Lines")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	cfg := goodenough.DefaultConfig()
	cfg.Scheduler = *scheduler
	cfg.Cores = *cores
	cfg.PowerBudget = *budget
	cfg.QGE = *qge
	cfg.BEPBudget = *bepBudget
	cfg.BESCap = *besCap

	var opts goodenough.RunOptions
	var outFiles []*os.File
	open := func(path string) *os.File {
		of, oerr := os.Create(path)
		if oerr != nil {
			fatal(oerr)
		}
		outFiles = append(outFiles, of)
		return of
	}
	if *traceOut != "" {
		opts.Trace = open(*traceOut)
	}
	if *eventsOut != "" {
		opts.Events = open(*eventsOut)
	}

	res, err := goodenough.RunTraceWithOptions(cfg, f, opts)
	for _, of := range outFiles {
		of.Close()
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scheduler %s: %d jobs, quality %.4f, energy %.1f J, AES %.3f\n",
		res.Scheduler, res.Jobs, res.Quality, res.Energy, res.AESFraction)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "getrace:", err)
	os.Exit(1)
}
