// Command gebench turns `go test -bench` output into a machine-readable
// JSON baseline and gates candidate runs against a committed one.
//
// Parse mode (default) reads benchmark text on stdin and writes JSON:
//
//	go test -run '^$' -bench . -benchmem -count 5 ./... | gebench > bench.json
//
// Multiple -count samples of the same benchmark are folded to the BEST
// observation (minimum ns/op and allocs/op, maximum events/sec): the gate
// asks "can the code still run this fast", so scheduler noise should never
// manufacture a regression.
//
// Check mode compares a candidate against a baseline:
//
//	gebench -check -baseline BENCH_BASELINE.json -candidate bench.json
//
// It exits nonzero if any benchmark present in both files regresses: ns/op
// above baseline×(1+tolerance), or allocs/op above the baseline at all (the
// kernel's 0 allocs/op is an exact contract, not a statistic). Benchmarks
// present on only one side are reported but never fail the gate, so adding
// or retiring a benchmark does not break CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's folded measurements.
type Result struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// File is the on-disk JSON shape. Previous carries the pre-optimization
// numbers forward so the history of the hot path stays in the repo.
type File struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
	Previous   map[string]Result `json:"previous,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// stripProcs removes the -N GOMAXPROCS suffix go test appends to names.
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parse folds benchmark text into best-observation results.
func parse(r *bufio.Scanner) (map[string]Result, error) {
	out := make(map[string]Result)
	seen := make(map[string]bool)
	for r.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(r.Text()))
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(stripProcs(m[1]), "Benchmark")
		fields := strings.Fields(m[2])
		res := Result{}
		ok := false
		for i := 1; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch fields[i] {
			case "ns/op":
				res.NsPerOp = v
				ok = true
			case "allocs/op":
				res.AllocsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "events/sec":
				res.EventsPerSec = v
			}
		}
		if !ok {
			continue
		}
		if prev, dup := out[name]; dup && seen[name] {
			if prev.NsPerOp < res.NsPerOp {
				res.NsPerOp = prev.NsPerOp
			}
			if prev.AllocsPerOp < res.AllocsPerOp {
				res.AllocsPerOp = prev.AllocsPerOp
			}
			if prev.BytesPerOp < res.BytesPerOp {
				res.BytesPerOp = prev.BytesPerOp
			}
			if prev.EventsPerSec > res.EventsPerSec {
				res.EventsPerSec = prev.EventsPerSec
			}
		}
		out[name] = res
		seen[name] = true
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on input")
	}
	return out, nil
}

func load(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if f.Benchmarks == nil {
		// Accept a bare {name: result} map too.
		if err := json.Unmarshal(data, &f.Benchmarks); err != nil {
			return f, fmt.Errorf("%s: no \"benchmarks\" key and not a bare map: %w", path, err)
		}
	}
	return f, nil
}

func check(baselinePath, candidatePath string, tolerance float64) int {
	base, err := load(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gebench:", err)
		return 2
	}
	cand, err := load(candidatePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gebench:", err)
		return 2
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failures := 0
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cand.Benchmarks[name]
		if !ok {
			fmt.Printf("SKIP  %-28s not in candidate\n", name)
			continue
		}
		status := "ok   "
		var why []string
		if limit := b.NsPerOp * (1 + tolerance); c.NsPerOp > limit {
			why = append(why, fmt.Sprintf("ns/op %.4g > %.4g (baseline %.4g +%d%%)",
				c.NsPerOp, limit, b.NsPerOp, int(tolerance*100)))
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			why = append(why, fmt.Sprintf("allocs/op %g > baseline %g", c.AllocsPerOp, b.AllocsPerOp))
		}
		if len(why) > 0 {
			status = "FAIL "
			failures++
		}
		fmt.Printf("%s %-28s ns/op %10.4g (base %10.4g)  allocs %4g (base %4g)",
			status, name, c.NsPerOp, b.NsPerOp, c.AllocsPerOp, b.AllocsPerOp)
		if c.EventsPerSec > 0 {
			fmt.Printf("  %.3g events/sec", c.EventsPerSec)
		}
		fmt.Println()
		for _, w := range why {
			fmt.Printf("      %s\n", w)
		}
	}
	for name := range cand.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("NEW   %-28s not in baseline (not gated)\n", name)
		}
	}
	if failures > 0 {
		fmt.Printf("gebench: %d benchmark(s) regressed beyond tolerance\n", failures)
		return 1
	}
	fmt.Println("gebench: all benchmarks within tolerance")
	return 0
}

func main() {
	doCheck := flag.Bool("check", false, "gate a candidate JSON against a baseline JSON")
	baseline := flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON (check mode)")
	candidate := flag.String("candidate", "", "candidate JSON (check mode)")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional ns/op growth (check mode)")
	note := flag.String("note", "", "free-form note embedded in the emitted JSON (parse mode)")
	mergePrev := flag.String("merge-previous", "",
		"carry the \"previous\" section of this JSON file into the output (parse mode)")
	flag.Parse()

	if *doCheck {
		if *candidate == "" {
			fmt.Fprintln(os.Stderr, "gebench: -check needs -candidate")
			os.Exit(2)
		}
		os.Exit(check(*baseline, *candidate, *tolerance))
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	results, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gebench:", err)
		os.Exit(2)
	}
	out := File{Note: *note, Benchmarks: results}
	if *mergePrev != "" {
		prev, err := load(*mergePrev)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gebench:", err)
			os.Exit(2)
		}
		out.Previous = prev.Previous
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "gebench:", err)
		os.Exit(2)
	}
}
