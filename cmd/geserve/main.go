// Command geserve runs the goodenough simulator as a long-lived HTTP/JSON
// service with admission control, load shedding, and graceful drain:
//
//	geserve -addr :8377 -concurrency 4 -queue 8 -timeout 30s
//
// Submit work with any HTTP client; bodies are goodenough.Config overlays
// on DefaultConfig:
//
//	curl -X POST localhost:8377/v1/run   -d '{"DurationSec": 5, "ArrivalRate": 200}'
//	curl -X POST localhost:8377/v1/sweep -d '{"config":{"DurationSec":2},"rates":[100,154,200]}'
//	curl localhost:8377/healthz
//	curl localhost:8377/metricz
//
// When every worker is busy and the admission queue is full, requests are
// shed with 429 and a Retry-After hint (cmd/geload honors it). SIGTERM or
// SIGINT starts a graceful drain: admission stops (readyz flips to 503),
// in-flight runs get -drain-timeout to finish, stragglers are cancelled and
// still answer with their partial results, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"goodenough/internal/governor"
	"goodenough/internal/obs"
	"goodenough/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8377", "listen address")
		concurrency  = flag.Int("concurrency", 0, "max simultaneous runs (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "admission queue depth beyond running (0 = 2×concurrency)")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request run deadline")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "grace for in-flight runs on shutdown")
		retryAfter   = flag.Duration("retry-after", time.Second, "backoff hint attached to shed (429) responses")
		maxBody      = flag.Int64("max-body", 8<<20, "request body cap in bytes")
		maxSweep     = flag.Int("max-sweep", 64, "max points one sweep request may fan out to")
		spanLog      = flag.String("span-log", "", "trace request + scheduler spans to this JSONL file (empty = tracing off)")
		journalPath  = flag.String("journal", "", "crash-safe request journal (JSONL, appended across restarts; empty = off)")

		govern      = flag.Bool("governor", false, "run the live GE overload governor (brownout degradation + power-budget enforcement)")
		govBudget   = flag.Float64("governor-budget", 0, "governor work-rate budget in work-units/sec (0 = worker count)")
		govQuantum  = flag.Duration("governor-quantum", 100*time.Millisecond, "governor control period")
		govQGE      = flag.Float64("governor-qge", 0.9, "good-enough batch quality target Q_GE")
		govCritical = flag.Float64("governor-critical", 0.85, "critical-load fraction where metering switches ES -> WF")
		govNominal  = flag.Duration("governor-nominal", time.Second, "seed estimate of full-quality seconds per request")
		govWindow   = flag.Duration("governor-window", 5*time.Second, "rate-estimator window / backlog drain horizon")
		decisionLog = flag.String("decision-log", "", "record governor admit/cut/compensate/shed decisions to this JSONL file")
	)
	flag.Parse()

	var spans *obs.SpanBus
	if *spanLog != "" {
		f, err := os.Create(*spanLog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "geserve:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink := obs.NewSpanLog(f)
		defer sink.Flush()
		spans = obs.NewSpanBus(sink)
	}

	var decisions obs.DecisionSink
	if *decisionLog != "" {
		f, err := os.Create(*decisionLog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "geserve:", err)
			os.Exit(1)
		}
		defer f.Close()
		dlog := obs.NewDecisionLog(f)
		defer dlog.Flush()
		// The governor emits from the admission path and the control loop
		// concurrently; the log itself is single-writer.
		decisions = obs.NewSyncDecision(dlog)
	}

	var gov *governor.Governor
	if *govern {
		budget := *govBudget
		if budget <= 0 {
			// Default the work-rate budget to the worker count: one running
			// request consumes one work-unit/sec, so a full pool is load 1.0.
			budget = float64(*concurrency)
			if budget <= 0 {
				budget = float64(runtime.GOMAXPROCS(0))
			}
		}
		var err error
		gov, err = governor.New(governor.Config{
			Budget:        budget,
			Quantum:       *govQuantum,
			CriticalLoad:  *govCritical,
			QGE:           *govQGE,
			NominalDemand: *govNominal,
			RateWindow:    *govWindow,
			Decisions:     decisions,
			Spans:         spans,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "geserve:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "geserve: governor on (budget=%.3g Q_GE=%.3g quantum=%s)\n",
			budget, *govQGE, *govQuantum)
	}

	var journal *server.Journal
	if *journalPath != "" {
		var err error
		journal, err = server.OpenJournal(*journalPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "geserve:", err)
			os.Exit(1)
		}
		defer journal.Close()
		rec := journal.Recovery()
		fmt.Fprintf(os.Stderr, "geserve: journal %s incarnation=%d prior=%d corrupt=%d orphans=%d\n",
			*journalPath, rec.Incarnation, rec.PriorRecords, rec.Corrupt, len(rec.Orphans))
		for _, o := range rec.Orphans {
			fmt.Fprintf(os.Stderr, "geserve: orphaned request %s (%s) from incarnation %d — accepted, never finished\n",
				o.ID, o.Path, o.Inc)
		}
	}

	srv := server.New(server.Config{
		MaxConcurrent:  *concurrency,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		DrainTimeout:   *drainTimeout,
		RetryAfter:     *retryAfter,
		MaxBodyBytes:   *maxBody,
		MaxSweepPoints: *maxSweep,
		Spans:          spans,
		Governor:       gov,
		Journal:        journal,
	})
	hs := server.NewHTTPServer(*addr, srv.Handler(), 0, 0)

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "geserve: listening on %s\n", *addr)
		errCh <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		// Listener died before any signal: that is a startup failure.
		fmt.Fprintln(os.Stderr, "geserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	fmt.Fprintln(os.Stderr, "geserve: draining (new requests rejected)...")
	// Give the drain its configured grace plus slack for response writes;
	// the bound guarantees the process cannot hang on shutdown.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "geserve: drain:", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "geserve: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "geserve: drained cleanly")
}
