// Command gesim runs a single scheduling simulation and prints its
// metrics. It is the quickest way to poke at the reproduction:
//
//	gesim -scheduler ge -rate 154
//	gesim -scheduler be -rate 154 -duration 600
//	gesim -scheduler ge -rate 200 -budget 480 -cores 32
//	gesim -scheduler be-p -rate 150 -bep-budget 240
//	gesim -scheduler ge -rate 150 -discrete
//	gesim -list
//
// Fault injection (graceful-degradation experiments):
//
//	gesim -scheduler ge -rate 180 -kill-cores 1,4,9,14 -kill-at 5 -kill-for 10
//	gesim -scheduler ge -rate 180 -cap-watts 160 -cap-at 10 -cap-for 20
//	gesim -scheduler ge -rate 180 -stuck-core 3 -stuck-speed 1.2 -stuck-at 5
//	gesim -scheduler ge -rate 150 -fault-mtbf 60 -fault-mttr 10
//
// Observability (structured events, traces, reports, profiles):
//
//	gesim -scheduler ge -rate 154 -events run.jsonl -trace run.trace.json
//	gesim -scheduler ge -rate 154 -report -decisions run.decisions.jsonl
//	gesim -scheduler ge -rate 300 -duration 600 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The -trace output loads in Perfetto (ui.perfetto.dev) or chrome://tracing
// with one track per core; -events emits one JSON object per scheduler
// event for jq/grep analysis; -decisions logs one JSON object per
// admission, shed, mode switch, and DVFS replan with the inputs the
// choice was made on.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"goodenough"
)

// compareAll runs every registered scheduler on the same workload and
// prints one row per policy.
func compareAll(cfg goodenough.Config) {
	fmt.Printf("%-10s %8s %12s %6s %9s %9s %8s\n",
		"scheduler", "quality", "energy(J)", "AES", "completed", "expired", "cut")
	for _, name := range goodenough.Schedulers() {
		c := cfg
		c.Scheduler = name
		res, err := goodenough.Run(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gesim: %s: %v\n", name, err)
			continue
		}
		fmt.Printf("%-10s %8.4f %12.1f %6.3f %9d %9d %8d\n",
			name, res.Quality, res.Energy, res.AESFraction,
			res.Completed, res.Expired, res.CutJobs)
	}
}

func main() {
	var (
		list       = flag.Bool("list", false, "list available schedulers and exit")
		scheduler  = flag.String("scheduler", "ge", "scheduling policy")
		rate       = flag.Float64("rate", 154, "Poisson arrival rate (req/s)")
		duration   = flag.Float64("duration", 60, "simulated seconds of arrivals")
		cores      = flag.Int("cores", 16, "number of DVFS cores")
		budget     = flag.Float64("budget", 320, "total dynamic power budget (W)")
		qge        = flag.Float64("qge", 0.9, "good-enough quality target")
		qualityC   = flag.Float64("quality-c", 0.003, "quality-function concavity c")
		seed       = flag.Uint64("seed", 2017, "workload RNG seed")
		randomWin  = flag.Bool("random-window", false, "uniform 150-500 ms response windows")
		discrete   = flag.Bool("discrete", false, "discrete DVFS (0.2 GHz steps to 3.2 GHz)")
		bepBudget  = flag.Float64("bep-budget", 0, "reduced budget for scheduler be-p (W)")
		besCap     = flag.Float64("bes-cap", 0, "speed cap for scheduler be-s (GHz)")
		killCores  = flag.String("kill-cores", "", "comma-separated core indices to fail")
		killAt     = flag.Float64("kill-at", 5, "failure onset time for -kill-cores (s)")
		killFor    = flag.Float64("kill-for", 0, "failure duration for -kill-cores (s, 0 = permanent)")
		capWatts   = flag.Float64("cap-watts", 0, "facility power cap to inject (W, 0 = none)")
		capAt      = flag.Float64("cap-at", 5, "cap onset time (s)")
		capFor     = flag.Float64("cap-for", 0, "cap duration (s, 0 = permanent)")
		stuckCore  = flag.Int("stuck-core", -1, "core whose DVFS wedges (-1 = none)")
		stuckSpeed = flag.Float64("stuck-speed", 0, "wedged speed for -stuck-core (GHz)")
		stuckAt    = flag.Float64("stuck-at", 5, "stuck-DVFS onset time (s)")
		stuckFor   = flag.Float64("stuck-for", 0, "stuck-DVFS duration (s, 0 = permanent)")
		faultMTBF  = flag.Float64("fault-mtbf", 0, "mean time between core failures (s, 0 = off)")
		faultMTTR  = flag.Float64("fault-mttr", 0, "mean time to repair for -fault-mtbf (s)")

		csv      = flag.Bool("csv", false, "emit a single CSV row instead of text")
		timeline = flag.String("timeline", "", "write a quality/power/mode time series CSV to this file")
		compare  = flag.Bool("compare", false, "run every scheduler on this workload and print a comparison table")

		traceOut     = flag.String("trace", "", "write a Chrome trace-event file (open in Perfetto) to this file")
		eventsOut    = flag.String("events", "", "write the structured event stream as JSON Lines to this file")
		decisionsOut = flag.String("decisions", "", "write the decision stream (admit/shed/mode-switch/replan) as JSON Lines to this file")
		report       = flag.Bool("report", false, "print a plain-text observability report after the run")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gesim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "gesim:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gesim:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gesim:", err)
			}
			f.Close()
		}()
	}

	if *list {
		fmt.Println(strings.Join(goodenough.Schedulers(), "\n"))
		return
	}

	cfg := goodenough.DefaultConfig()
	cfg.Scheduler = *scheduler
	cfg.ArrivalRate = *rate
	cfg.DurationSec = *duration
	cfg.Cores = *cores
	cfg.PowerBudget = *budget
	cfg.QGE = *qge
	cfg.QualityC = *qualityC
	cfg.Seed = *seed
	cfg.RandomWindow = *randomWin
	cfg.BEPBudget = *bepBudget
	cfg.BESCap = *besCap
	if cfg.BEPBudget == 0 {
		cfg.BEPBudget = cfg.PowerBudget * 0.75 // sensible default for -compare
	}
	if cfg.BESCap == 0 {
		cfg.BESCap = 1.8
	}
	if *discrete {
		for s := 0.2; s <= 3.2001; s += 0.2 {
			cfg.DiscreteSpeeds = append(cfg.DiscreteSpeeds, s)
		}
	}

	if *killCores != "" {
		for _, tok := range strings.Split(*killCores, ",") {
			idx, cerr := strconv.Atoi(strings.TrimSpace(tok))
			if cerr != nil {
				fmt.Fprintf(os.Stderr, "gesim: bad -kill-cores entry %q: %v\n", tok, cerr)
				os.Exit(1)
			}
			cfg.Faults = append(cfg.Faults, goodenough.FaultSpec{
				AtSec: *killAt, Kind: "core-fail", Core: idx, DurationSec: *killFor,
			})
		}
	}
	if *capWatts < 0 {
		fmt.Fprintf(os.Stderr, "gesim: -cap-watts must be positive, got %v\n", *capWatts)
		os.Exit(1)
	}
	if *capWatts > 0 {
		cfg.Faults = append(cfg.Faults, goodenough.FaultSpec{
			AtSec: *capAt, Kind: "budget-cap", Watts: *capWatts, DurationSec: *capFor,
		})
	}
	if *stuckCore >= 0 {
		cfg.Faults = append(cfg.Faults, goodenough.FaultSpec{
			AtSec: *stuckAt, Kind: "speed-stuck", Core: *stuckCore,
			SpeedGHz: *stuckSpeed, DurationSec: *stuckFor,
		})
	}
	cfg.FaultMTBFSec = *faultMTBF
	cfg.FaultMTTRSec = *faultMTTR

	if *compare {
		compareAll(cfg)
		return
	}

	var opts goodenough.RunOptions
	var outFiles []*os.File
	open := func(path string) *os.File {
		f, ferr := os.Create(path)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "gesim:", ferr)
			os.Exit(1)
		}
		outFiles = append(outFiles, f)
		return f
	}
	if *timeline != "" {
		opts.Timeline = open(*timeline)
		opts.TimelineInterval = 0.5
	}
	if *eventsOut != "" {
		opts.Events = open(*eventsOut)
	}
	if *decisionsOut != "" {
		opts.Decisions = open(*decisionsOut)
	}
	if *traceOut != "" {
		opts.Trace = open(*traceOut)
	}
	var reportBuf bytes.Buffer
	if *report {
		opts.Report = &reportBuf
	}

	res, err := goodenough.RunWithOptions(cfg, opts)
	for _, f := range outFiles {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gesim:", err)
		os.Exit(1)
	}

	if *csv {
		fmt.Printf("scheduler,rate,quality,energy_j,aes_fraction,avg_speed_ghz,speed_variance,jobs,completed,expired,cut_jobs,mode_switches,sim_time_s,core_failures,requeued,dropped,surviving_capacity\n")
		fmt.Printf("%s,%g,%.6f,%.2f,%.4f,%.4f,%.4f,%d,%d,%d,%d,%d,%.2f,%d,%d,%d,%.6f\n",
			res.Scheduler, *rate, res.Quality, res.Energy, res.AESFraction,
			res.AvgSpeed, res.SpeedVariance, res.Jobs, res.Completed,
			res.Expired, res.CutJobs, res.ModeSwitches, res.SimTime,
			res.CoreFailures, res.RequeuedJobs, res.DroppedJobs, res.SurvivingCapacity)
		reportBuf.WriteTo(os.Stdout)
		return
	}

	fmt.Printf("scheduler        %s\n", res.Scheduler)
	fmt.Printf("arrival rate     %g req/s over %g s (%d jobs)\n", *rate, *duration, res.Jobs)
	fmt.Printf("service quality  %.4f (target %.2f)\n", res.Quality, *qge)
	fmt.Printf("energy           %.1f J (AES %.1f + BQ %.1f)\n",
		res.Energy, res.AESEnergy, res.BQEnergy)
	fmt.Printf("response         mean %.1f ms, p95 %.1f ms\n",
		res.MeanResponse*1000, res.P95Response*1000)
	fmt.Printf("AES fraction     %.3f\n", res.AESFraction)
	fmt.Printf("avg core speed   %.3f GHz (variance %.4f)\n", res.AvgSpeed, res.SpeedVariance)
	fmt.Printf("completed        %d\n", res.Completed)
	fmt.Printf("expired          %d\n", res.Expired)
	fmt.Printf("cut jobs         %d\n", res.CutJobs)
	fmt.Printf("mode switches    %d\n", res.ModeSwitches)
	if res.CoreFailures > 0 || res.RequeuedJobs > 0 || res.DroppedJobs > 0 ||
		res.SurvivingCapacity < 1 {
		fmt.Printf("core failures    %d\n", res.CoreFailures)
		fmt.Printf("requeued jobs    %d\n", res.RequeuedJobs)
		fmt.Printf("dropped jobs     %d\n", res.DroppedJobs)
		fmt.Printf("surviving cap.   %.4f\n", res.SurvivingCapacity)
	}
	if *report {
		fmt.Println()
		reportBuf.WriteTo(os.Stdout)
	}
}
