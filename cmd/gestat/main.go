// Command gestat is the live fleet dashboard: a top-like poller for the
// serving tier's observability endpoints, plus an offline span-log merger
// that turns per-process JSONL span logs into one Perfetto trace.
//
// Live mode polls each target's /timeseriez (ring-buffer samples behind
// geserve and gegate), /metricz?format=plain, and — on gateways —
// /replicaz, then redraws a compact dashboard once per interval:
//
//	gestat -targets http://127.0.0.1:8370,http://127.0.0.1:8377
//	gestat -targets http://127.0.0.1:8377 -interval 2s -n 10 -plain
//
// Each series renders as a sparkline over the sampler's retained window
// with its latest value; -plain suppresses the ANSI screen clear so output
// appends (for logs and CI), and -n bounds the number of refreshes.
//
// Merge mode stitches span logs written by geload/gegate/geserve -span-log
// into a single Chrome trace-event file whose flow arrows connect each
// request's client, gateway, attempt, server, and scheduler spans:
//
//	gestat -spans client.jsonl,gate.jsonl,serve.jsonl -trace trace.json
//
// Open the output in Perfetto (ui.perfetto.dev) or chrome://tracing; one
// request = one connected tree across processes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"goodenough/internal/obs"
)

// timeseries mirrors the /timeseriez JSON document.
type timeseries struct {
	IntervalMS int64 `json:"interval_ms"`
	Series     map[string]struct {
		T []int64   `json:"t"`
		V []float64 `json:"v"`
	} `json:"series"`
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders vs as block characters scaled to the series' own range,
// keeping at most width trailing samples.
func sparkline(vs []float64, width int) string {
	if len(vs) > width {
		vs = vs[len(vs)-width:]
	}
	if len(vs) == 0 {
		return ""
	}
	lo, hi := vs[0], vs[0]
	for _, v := range vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vs {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// get fetches one URL with a short timeout; "" on any failure (a dashboard
// must keep drawing when a target is down).
func get(client *http.Client, url string) string {
	resp, err := client.Get(url)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return ""
	}
	return string(b)
}

// renderTarget draws one target's panel.
func renderTarget(w io.Writer, client *http.Client, base string) {
	fmt.Fprintf(w, "── %s ──\n", base)
	raw := get(client, base+"/timeseriez")
	if raw == "" {
		fmt.Fprintln(w, "  unreachable")
		return
	}
	var ts timeseries
	if err := json.Unmarshal([]byte(raw), &ts); err != nil {
		fmt.Fprintf(w, "  bad /timeseriez: %v\n", err)
		return
	}
	names := make([]string, 0, len(ts.Series))
	for name := range ts.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := ts.Series[name]
		last := 0.0
		if len(s.V) > 0 {
			last = s.V[len(s.V)-1]
		}
		fmt.Fprintf(w, "  %-26s %10g  %s\n", name, last, sparkline(s.V, 40))
	}
	// Gateways also expose the live replica table; relay it verbatim.
	if rz := get(client, base+"/replicaz"); rz != "" && strings.Contains(rz, "breaker=") {
		for _, line := range strings.Split(strings.TrimRight(rz, "\n"), "\n") {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
}

// mergeSpans reads every span log and writes one Chrome trace.
func mergeSpans(paths []string, out string) error {
	var all []obs.Span
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		spans, err := obs.ReadSpans(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		all = append(all, spans...)
	}
	if len(all) == 0 {
		return fmt.Errorf("no spans found in %s", strings.Join(paths, ", "))
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := obs.WriteSpanTrace(f, all); err != nil {
		f.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "gestat: wrote %d spans to %s\n", len(all), out)
	return f.Close()
}

func main() {
	var (
		targets  = flag.String("targets", "http://127.0.0.1:8377", "comma-separated geserve/gegate base URLs to poll")
		interval = flag.Duration("interval", time.Second, "poll and redraw period")
		n        = flag.Int("n", 0, "number of refreshes before exiting (0 = forever)")
		plain    = flag.Bool("plain", false, "append panels instead of clearing the screen (logs, CI)")
		spansIn  = flag.String("spans", "", "comma-separated span-log JSONL files to merge (with -trace)")
		traceOut = flag.String("trace", "", "write the merged Chrome trace to this file (with -spans)")
	)
	flag.Parse()

	if (*spansIn == "") != (*traceOut == "") {
		fmt.Fprintln(os.Stderr, "gestat: -spans and -trace must be used together")
		os.Exit(1)
	}
	if *spansIn != "" {
		var paths []string
		for _, p := range strings.Split(*spansIn, ",") {
			if p = strings.TrimSpace(p); p != "" {
				paths = append(paths, p)
			}
		}
		if err := mergeSpans(paths, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "gestat:", err)
			os.Exit(1)
		}
		return
	}

	var bases []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			bases = append(bases, strings.TrimRight(t, "/"))
		}
	}
	if len(bases) == 0 {
		fmt.Fprintln(os.Stderr, "gestat: -targets is empty")
		os.Exit(1)
	}

	client := &http.Client{Timeout: *interval}
	for tick := 0; *n <= 0 || tick < *n; tick++ {
		if tick > 0 {
			time.Sleep(*interval)
		}
		if !*plain {
			fmt.Print("\x1b[2J\x1b[H")
		}
		fmt.Printf("gestat  %s  (every %s)\n", time.Now().Format("15:04:05"), *interval)
		for _, base := range bases {
			renderTarget(os.Stdout, client, base)
		}
	}
}
