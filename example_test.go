package goodenough_test

import (
	"fmt"

	"goodenough"
)

// ExampleRun simulates the paper's default web-search server under the GE
// scheduler for one minute of traffic at the critical load.
func ExampleRun() {
	cfg := goodenough.DefaultConfig()
	cfg.DurationSec = 60
	cfg.ArrivalRate = 154
	res, err := goodenough.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("quality within target band: %v\n", res.Quality > 0.88 && res.Quality < 0.92)
	fmt.Printf("all jobs accounted: %v\n", int64(res.Jobs) == res.Completed+res.Expired)
	// Output:
	// quality within target band: true
	// all jobs accounted: true
}

// ExampleRun_comparison contrasts Good Enough with Best Effort on the same
// workload: same request stream, ~90% quality, materially less energy.
func ExampleRun_comparison() {
	cfg := goodenough.DefaultConfig()
	cfg.DurationSec = 30
	cfg.ArrivalRate = 130

	cfg.Scheduler = "ge"
	ge, _ := goodenough.Run(cfg)
	cfg.Scheduler = "be"
	be, _ := goodenough.Run(cfg)

	fmt.Printf("GE cheaper than BE: %v\n", ge.Energy < be.Energy)
	fmt.Printf("BE quality higher: %v\n", be.Quality > ge.Quality)
	// Output:
	// GE cheaper than BE: true
	// BE quality higher: true
}

// ExampleSchedulers lists every available policy.
func ExampleSchedulers() {
	for _, name := range goodenough.Schedulers() {
		fmt.Println(name)
	}
	// Output:
	// be
	// be-p
	// be-s
	// fcfs
	// fdfs
	// ge
	// ge-es
	// ge-nocomp
	// ge-wf
	// ljf
	// oq
	// sjf
}
