# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race vet bench bench-baseline bench-check smoke chaos-smoke fleet-smoke obs-smoke brownout-smoke drill-smoke sweep sweep-fast fuzz cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full test suite under the race detector (what CI runs).
race:
	$(GO) test -race ./...

# End-to-end serving smoke: boot geserve, load it, SIGTERM, require exit 0.
smoke:
	sh scripts/serve_smoke.sh

# Fleet failover smoke: 3 replicas behind gegate, gechaos black-holes one
# mid-run, geload must see zero failures and the gateway nonzero hedge wins.
chaos-smoke:
	sh scripts/chaos_smoke.sh

# Observability smoke: traced load through gegate + geserve with -span-log
# everywhere; span logs must merge into one causal tree per request, and
# /metricz (Prometheus) + /timeseriez + gestat must all answer.
obs-smoke:
	sh scripts/obs_smoke.sh

# Fleet-simulation smoke: the committed 10-machine chaos scenario through
# gefleet under every dispatch policy — zero lost-forever jobs, byte-stable
# reruns.
fleet-smoke:
	sh scripts/fleet_smoke.sh

# Live-GE brownout smoke: governed replicas at 2x capacity must degrade
# (quality >= Q_GE - 0.05, zero failures) and a starved replica must shed
# with drain-derived Retry-After hints.
brownout-smoke:
	sh scripts/brownout_smoke.sh

# Crash-recovery drill smoke: gedrill SIGKILLs and pauses real replicas on
# a seeded schedule; zero acked-then-lost requests, bounded rejoin through
# the slow-start ramp, goodput recovery, quality floor.
drill-smoke:
	sh scripts/drill_smoke.sh

# One benchmark iteration per paper figure + ablations (fast, shape-level).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Refresh the committed hot-path baseline (BENCH_BASELINE.json) in place,
# preserving its "previous" (pre-optimization) section.
bench-baseline:
	sh scripts/bench_baseline.sh

# Re-measure into bench_candidate.json and gate against the committed
# baseline: >15% ns/op growth or any allocs/op above baseline fails.
bench-check:
	OUT=bench_candidate.json sh scripts/bench_baseline.sh
	$(GO) run ./cmd/gebench -check -baseline BENCH_BASELINE.json -candidate bench_candidate.json

# Regenerate every figure at paper scale (600 s per sweep point).
sweep:
	$(GO) run ./cmd/gesweep -duration 600 -out results
	$(GO) run ./cmd/gesweep -duration 600 -out results -figures ablations

# Same figures at 1/10 scale for a quick look.
sweep-fast:
	$(GO) run ./cmd/gesweep -duration 60 -out results-fast

fuzz:
	$(GO) test -fuzz FuzzLongestFirst -fuzztime 30s ./internal/cut/
	$(GO) test -fuzz FuzzWaterFill -fuzztime 30s ./internal/dist/
	$(GO) test -fuzz FuzzReadTrace -fuzztime 30s ./internal/workload/
	$(GO) test -fuzz FuzzGenerate -fuzztime 30s ./internal/faults/
	$(GO) test -fuzz FuzzGenerateCluster -fuzztime 30s ./internal/faults/
	$(GO) test -fuzz FuzzCompareShed -fuzztime 30s ./internal/sched/
	$(GO) test -fuzz FuzzPlanMonotone -fuzztime 30s ./internal/governor/

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out bench_candidate.json
	rm -rf results-fast
