package goodenough

import (
	"context"
	"strings"
	"testing"
	"time"
)

// --- Context cancellation through the public API ---

func TestRunContextCancelReturnsPartial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationSec = 1e6 // only cancellation can end this run
	cfg.ArrivalRate = 200
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(25 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RunContext(ctx, cfg)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cancelled run must not error, got %v", err)
	}
	if !res.Cancelled || res.CancelReason != context.Canceled.Error() {
		t.Fatalf("got Cancelled=%v reason=%q", res.Cancelled, res.CancelReason)
	}
	// Acceptance bound: the run must stop within the cancellation latency
	// plus generous slack, never anywhere near the 1e6 s workload.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if res.Jobs == 0 || res.SimTime <= 0 {
		t.Fatalf("partial result lost accounting: %+v", res)
	}
}

func TestRunContextDeadline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationSec = 1e6
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res, err := RunContext(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled || res.CancelReason != context.DeadlineExceeded.Error() {
		t.Fatalf("got Cancelled=%v reason=%q", res.Cancelled, res.CancelReason)
	}
}

func TestRunContextUncancelledMatchesRun(t *testing.T) {
	cfg := quickCfg("ge", 154)
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if viaCtx != plain {
		t.Fatalf("RunContext diverged from Run:\n%+v\n%+v", viaCtx, plain)
	}
}

func TestRunTraceContextCancel(t *testing.T) {
	cfg := quickCfg("ge", 154)
	cfg.DurationSec = 120
	var trace strings.Builder
	if err := ExportTrace(cfg, &trace); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-cancelled: the replay must stop immediately
	res, err := RunTraceContext(ctx, cfg, strings.NewReader(trace.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Fatal("trace replay ignored its context")
	}
}

// --- RunSeeds parallelization ---

func TestRunSeedsParallelMatchesSequential(t *testing.T) {
	cfg := quickCfg("ge", 154)
	seeds := []uint64{1, 2, 3, 4, 5}
	rep, err := RunSeeds(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != len(seeds) || len(rep.Results) != len(seeds) {
		t.Fatalf("replication shape wrong: %d/%d", rep.Runs, len(rep.Results))
	}
	// Parallel execution must be invisible: result i is exactly the
	// sequential Run of seed i.
	for i, seed := range seeds {
		c := cfg
		c.Seed = seed
		want, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Results[i] != want {
			t.Fatalf("seed %d (index %d) diverged under parallel RunSeeds:\n%+v\n%+v",
				seed, i, rep.Results[i], want)
		}
	}
}

func TestRunSeedsPropagatesFirstError(t *testing.T) {
	cfg := quickCfg("ge", 154)
	cfg.Scheduler = "no-such-policy"
	rep, err := RunSeeds(cfg, []uint64{1, 2, 3})
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	if !strings.Contains(err.Error(), "seed 1") {
		t.Fatalf("error %q does not identify the first failing seed", err)
	}
	if rep.Runs != 0 || rep.Results != nil {
		t.Fatalf("failed RunSeeds leaked partial state: %+v", rep)
	}
}

func TestRunSeedsContextCancelled(t *testing.T) {
	cfg := quickCfg("ge", 154)
	cfg.DurationSec = 1e6
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(25 * time.Millisecond)
		cancel()
	}()
	rep, err := RunSeedsContext(ctx, cfg, []uint64{1, 2})
	if err != nil {
		t.Fatalf("cancelled RunSeeds must not error, got %v", err)
	}
	for i, res := range rep.Results {
		if !res.Cancelled {
			t.Fatalf("result %d not flagged Cancelled after ctx cancel", i)
		}
	}
}

// --- Consolidated Config.Validate: one case per invalid field ---

func TestConfigValidateTable(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string // substring of the expected error
	}{
		{"unknown scheduler", func(c *Config) { c.Scheduler = "nope" }, "unknown scheduler"},
		{"be-p without budget", func(c *Config) { c.Scheduler = "be-p"; c.BEPBudget = 0 }, "BEPBudget"},
		{"be-s without cap", func(c *Config) { c.Scheduler = "be-s"; c.BESCap = 0 }, "BESCap"},
		{"zero cores", func(c *Config) { c.Cores = 0 }, "cores"},
		{"negative power budget", func(c *Config) { c.PowerBudget = -1 }, "power budget"},
		{"bad power model", func(c *Config) { c.PowerAlpha = -5 }, ""},
		{"zero quality c", func(c *Config) { c.QualityC = 0 }, "QualityC"},
		{"negative demand max", func(c *Config) { c.DemandMax = -1 }, "must be positive"},
		{"unknown quality family", func(c *Config) { c.QualityFamily = "bogus" }, "quality family"},
		{"qge above one", func(c *Config) { c.QGE = 1.5 }, "QGE"},
		{"zero quantum", func(c *Config) { c.QuantumMS = 0 }, "quantum"},
		{"zero counter trigger", func(c *Config) { c.CounterTrigger = 0 }, "counter trigger"},
		{"empty core group", func(c *Config) {
			c.CoreGroups = []CoreGroup{{Count: 0, PowerAlpha: 5, PowerBeta: 2}}
		}, "core group"},
		{"bad discrete ladder", func(c *Config) { c.DiscreteSpeeds = []float64{-1} }, ""},
		{"zero arrival rate", func(c *Config) { c.ArrivalRate = 0 }, "arrival rate"},
		{"zero pareto alpha", func(c *Config) { c.ParetoAlpha = 0 }, "Pareto"},
		{"demand min above max", func(c *Config) { c.DemandMin = 2000 }, "Pareto"},
		{"zero window", func(c *Config) { c.WindowMS = 0 }, "window"},
		{"bad random window", func(c *Config) { c.RandomWindow = true; c.WindowMinMS = 0 }, "window"},
		{"zero duration", func(c *Config) { c.DurationSec = 0 }, "duration"},
		{"bad burst", func(c *Config) { c.Bursty = true }, "burst"},
		{"bad mix class", func(c *Config) {
			c.Mix = []WorkloadClass{{Name: "x", Weight: 0}}
		}, "weight"},
		{"bad fault kind", func(c *Config) {
			c.Faults = []FaultSpec{{AtSec: 1, Kind: "melted"}}
		}, "fault"},
		{"mtbf without mttr", func(c *Config) { c.FaultMTBFSec = 60 }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestConfigValidateAcceptsDefaults(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	// Every Run variant funnels through the same checks, so a validated
	// config must run.
	cfg := quickCfg("ge", 154)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestValidateMatchesRun pins the consolidation property: Run accepts a
// config iff Validate does (checked over the table's mutations).
func TestValidateMatchesRun(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.Scheduler = "nope" },
		func(c *Config) { c.QualityC = 0 },
		func(c *Config) { c.ArrivalRate = -3 },
		func(c *Config) {},
	}
	for i, mut := range muts {
		cfg := quickCfg("ge", 100)
		mut(&cfg)
		vErr := cfg.Validate()
		_, rErr := Run(cfg)
		if (vErr == nil) != (rErr == nil) {
			t.Fatalf("mutation %d: Validate err=%v but Run err=%v", i, vErr, rErr)
		}
	}
}
