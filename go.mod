module goodenough

go 1.22
