package goodenough

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

// shardedChaosRun executes the committed golden chaos scenario at the given
// shard count and dispatch policy, capturing the full event and decision
// streams.
func shardedChaosRun(t *testing.T, shards int, dispatch string) ([]byte, []byte, FleetResult) {
	t.Helper()
	fc := chaosFleetConfig(t)
	fc.Dispatch = dispatch
	fc.Shards = shards
	var events, decisions bytes.Buffer
	res, err := RunFleetWithOptions(fc, RunOptions{Events: &events, Decisions: &decisions})
	if err != nil {
		t.Fatal(err)
	}
	return events.Bytes(), decisions.Bytes(), res
}

// stripShardLayout zeroes the execution-layout fields so FleetResults can be
// compared across shard counts.
func stripShardLayout(r FleetResult) FleetResult {
	r.Shards = 0
	r.ShardEvents = nil
	r.ShardMachines = nil
	return r
}

// TestFleetShardMatrix is the determinism matrix from the sharding work:
// K ∈ {1, 2, 4, 7} shards over the golden 10-machine chaos scenario must
// produce byte-identical event JSONL, byte-identical decision JSONL, and an
// identical FleetResult (up to the layout-reporting fields). The shard
// count is an execution knob, never a simulation knob.
func TestFleetShardMatrix(t *testing.T) {
	seqEvents, seqDecisions, seqRes := shardedChaosRun(t, 1, "p2c")
	if len(seqEvents) == 0 || len(seqDecisions) == 0 {
		t.Fatal("sequential run produced empty streams; the comparison is vacuous")
	}
	if seqRes.Shards != 1 || len(seqRes.ShardEvents) != 1 {
		t.Fatalf("sequential layout = %d shards (%v), want 1", seqRes.Shards, seqRes.ShardEvents)
	}
	for _, k := range []int{2, 4, 7} {
		events, decisions, res := shardedChaosRun(t, k, "p2c")
		if !bytes.Equal(seqEvents, events) {
			t.Errorf("K=%d: event JSONL diverges from sequential (%d vs %d bytes)",
				k, len(events), len(seqEvents))
		}
		if !bytes.Equal(seqDecisions, decisions) {
			t.Errorf("K=%d: decision JSONL diverges from sequential (%d vs %d bytes)",
				k, len(decisions), len(seqDecisions))
		}
		if !reflect.DeepEqual(stripShardLayout(seqRes), stripShardLayout(res)) {
			t.Errorf("K=%d: results diverge:\nseq:     %+v\nsharded: %+v", k, seqRes, res)
		}
		if res.Shards != k {
			t.Errorf("K=%d: result reports %d shards", k, res.Shards)
		}
		machines := 0
		for _, m := range res.ShardMachines {
			machines += m
		}
		if machines != res.Machines {
			t.Errorf("K=%d: ShardMachines sums to %d, want %d", k, machines, res.Machines)
		}
	}

	// The ideal dispatcher reads the cached capacity view (degraded budgets
	// included); prove its routing is also layout-independent.
	idealSeq, _, idealSeqRes := shardedChaosRun(t, 1, "ideal")
	idealSharded, _, idealShardedRes := shardedChaosRun(t, 4, "ideal")
	if !bytes.Equal(idealSeq, idealSharded) {
		t.Error("ideal dispatch: event JSONL diverges between K=1 and K=4")
	}
	if !reflect.DeepEqual(stripShardLayout(idealSeqRes), stripShardLayout(idealShardedRes)) {
		t.Errorf("ideal dispatch: results diverge:\nseq:     %+v\nsharded: %+v",
			idealSeqRes, idealShardedRes)
	}
}

// TestFleetShardRaceHammer drives several sharded chaos fleets concurrently.
// Its value is under -race (the CI fleet-smoke job): shard workers must
// never share mutable state across shard boundaries or with another fleet
// instance.
func TestFleetShardRaceHammer(t *testing.T) {
	fc := chaosFleetConfig(t)
	fc.DurationSec = 12
	fc.Shards = 7
	// Keep only the fault windows that open inside the shortened horizon.
	kept := fc.MachineFaults[:0]
	for _, mf := range fc.MachineFaults {
		if mf.AtSec < fc.DurationSec {
			kept = append(kept, mf)
		}
	}
	fc.MachineFaults = kept
	var wg sync.WaitGroup
	results := make([]FleetResult, 4)
	errs := make([]error, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunFleet(fc)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if results[i].LostForever != 0 {
			t.Fatalf("run %d: %d jobs lost forever", i, results[i].LostForever)
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("run %d diverged from run 0:\n%+v\n%+v", i, results[i], results[0])
		}
	}
}
