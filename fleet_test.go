package goodenough

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	"goodenough/internal/obs"
)

// chaosFleetConfig loads the committed golden chaos scenario: a 10-machine
// fleet where machines crash (twice for machine 1), partition, and degrade
// mid-run, all recovering before the horizon.
func chaosFleetConfig(t testing.TB) FleetConfig {
	t.Helper()
	raw, err := os.ReadFile("testdata/fleet_chaos.json")
	if err != nil {
		t.Fatal(err)
	}
	var wire []struct {
		At       float64 `json:"at"`
		Kind     string  `json:"kind"`
		Machine  int     `json:"machine"`
		Duration float64 `json:"duration"`
		Factor   float64 `json:"factor"`
	}
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	fc := DefaultFleetConfig()
	fc.Machines = 10
	fc.DurationSec = 30
	fc.ArrivalRate = 154 * float64(fc.Machines)
	for _, w := range wire {
		fc.MachineFaults = append(fc.MachineFaults, MachineFaultSpec{
			AtSec: w.At, Kind: w.Kind, Machine: w.Machine,
			DurationSec: w.Duration, Factor: w.Factor,
		})
	}
	return fc
}

// TestFleetChaosGoldenScenario is the acceptance scenario: under the
// committed chaos schedule, every health-aware dispatch policy finishes with
// zero lost-forever jobs, full accounting, and bounded quality loss against
// the identical fault-free run.
func TestFleetChaosGoldenScenario(t *testing.T) {
	clean := chaosFleetConfig(t)
	clean.MachineFaults = nil
	base, err := RunFleet(clean)
	if err != nil {
		t.Fatal(err)
	}
	if base.Quality <= 0 {
		t.Fatalf("fault-free baseline quality = %v", base.Quality)
	}
	for _, policy := range DispatchPolicies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			fc := chaosFleetConfig(t)
			fc.Dispatch = policy
			res, err := RunFleet(fc)
			if err != nil {
				t.Fatal(err)
			}
			if res.LostForever != 0 {
				t.Fatalf("%d jobs lost forever", res.LostForever)
			}
			if int64(res.Jobs) != res.Completed+res.Expired+res.Dropped {
				t.Fatalf("accounting: %d jobs != %d completed + %d expired + %d dropped",
					res.Jobs, res.Completed, res.Expired, res.Dropped)
			}
			if res.Crashes != 4 || res.Partitions != 1 || res.Degrades != 2 {
				t.Fatalf("faults applied = %d crashes, %d partitions, %d degrades; want 4/1/2",
					res.Crashes, res.Partitions, res.Degrades)
			}
			if res.Redispatches == 0 {
				t.Fatal("no re-dispatches despite crashing loaded machines")
			}
			if res.LostWork <= 0 {
				t.Fatal("crashes wiped no in-flight work")
			}
			if res.Availability <= 0 || res.Availability >= 1 {
				t.Fatalf("availability = %v, want in (0,1) with machines down part of the run", res.Availability)
			}
			// Bounded quality loss: chaos may cost quality, but the fleet
			// must stay within 0.05 of the fault-free run.
			if res.Quality < base.Quality-0.05 {
				t.Fatalf("quality %v fell more than 0.05 below fault-free %v", res.Quality, base.Quality)
			}
		})
	}
}

// TestFleetDeterminism runs the same chaotic fleet twice with the same
// seed — concurrently, the way RunSeeds executes replications — and
// requires byte-identical event streams and identical results: no hidden
// shared state between fleet instances. The config is deliberately small
// (the full event stream is captured twice) but exercises every machine
// fault kind.
func TestFleetDeterminism(t *testing.T) {
	fc := DefaultFleetConfig()
	fc.DurationSec = 8
	fc.MachineFaults = []MachineFaultSpec{
		{AtSec: 2, Kind: "crash", Machine: 1, DurationSec: 3},
		{AtSec: 3, Kind: "partition", Machine: 2, DurationSec: 2},
		{AtSec: 4, Kind: "slow", Machine: 3, DurationSec: 3, Factor: 0.5},
	}
	var (
		results [2]FleetResult
		events  [2][]byte
		errs    [2]error
		wg      sync.WaitGroup
	)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			results[i], errs[i] = RunFleetWithOptions(fc, RunOptions{Events: &buf})
			events[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	r1, e1 := results[0], events[0]
	r2, e2 := results[1], events[1]
	if !bytes.Equal(e1, e2) {
		i := 0
		for i < len(e1) && i < len(e2) && e1[i] == e2[i] {
			i++
		}
		t.Fatalf("event streams diverge at byte %d of %d/%d", i, len(e1), len(e2))
	}
	s1, s2 := fmt.Sprintf("%+v", r1), fmt.Sprintf("%+v", r2)
	if s1 != s2 {
		t.Fatalf("identical seed + fault schedule diverged:\n%s\n%s", s1, s2)
	}
	if len(e1) == 0 {
		t.Fatal("no events recorded")
	}
}

// TestFleetCrashMidQuantumRedispatch is the regression test for crash
// recovery accounting: a single crash mid-quantum wipes in-flight progress,
// and every displaced job is re-dispatched exactly once — never duplicated,
// never leaked.
func TestFleetCrashMidQuantumRedispatch(t *testing.T) {
	fc := DefaultFleetConfig()
	fc.Machines = 3
	fc.DurationSec = 10
	fc.ArrivalRate = 154 * 3
	// Offset from the quantum grid so the crash lands mid-quantum with
	// partial progress on every busy core.
	fc.MachineFaults = []MachineFaultSpec{
		{AtSec: 2.5037, Kind: "crash", Machine: 1, DurationSec: 3},
	}

	redispatched := map[int]int{}
	var downAt float64
	sink := obs.Func(func(e obs.Event) {
		switch e.Type {
		case obs.EventRedispatch:
			redispatched[e.Job]++
		case obs.EventMachineDown:
			downAt = e.Time
		}
	})
	res, err := RunFleetWithOptions(fc, RunOptions{Observer: sink})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", res.Crashes)
	}
	if downAt != 2.5037 {
		t.Fatalf("machine-down at %v, want 2.5037", downAt)
	}
	if res.LostWork <= 0 {
		t.Fatal("mid-quantum crash wiped no in-flight progress")
	}
	if len(redispatched) == 0 {
		t.Fatal("no displaced jobs re-dispatched")
	}
	for job, n := range redispatched {
		if n != 1 {
			t.Fatalf("job %d re-dispatched %d times, want exactly once", job, n)
		}
	}
	if int64(len(redispatched)) != res.Redispatches {
		t.Fatalf("redispatch events cover %d jobs but result counts %d",
			len(redispatched), res.Redispatches)
	}
	if res.LostForever != 0 {
		t.Fatalf("%d jobs lost forever", res.LostForever)
	}
	if res.Dropped != 0 {
		t.Fatalf("%d jobs hit the re-dispatch limit after a single crash", res.Dropped)
	}
}

// TestFleetConfigValidation exercises the field-level rejection paths:
// overlapping windows, out-of-horizon onsets, bad factors, per-core faults
// at fleet scale, and unknown dispatch policies.
func TestFleetConfigValidation(t *testing.T) {
	base := DefaultFleetConfig()
	base.DurationSec = 10
	cases := []struct {
		name   string
		mutate func(*FleetConfig)
	}{
		{"overlapping windows", func(fc *FleetConfig) {
			fc.MachineFaults = []MachineFaultSpec{
				{AtSec: 1, Kind: "crash", Machine: 0, DurationSec: 5},
				{AtSec: 3, Kind: "partition", Machine: 0, DurationSec: 5},
			}
		}},
		{"onset beyond horizon", func(fc *FleetConfig) {
			fc.MachineFaults = []MachineFaultSpec{
				{AtSec: 11, Kind: "crash", Machine: 0, DurationSec: 1},
			}
		}},
		{"machine out of range", func(fc *FleetConfig) {
			fc.MachineFaults = []MachineFaultSpec{
				{AtSec: 1, Kind: "crash", Machine: 99, DurationSec: 1},
			}
		}},
		{"slow factor out of range", func(fc *FleetConfig) {
			fc.MachineFaults = []MachineFaultSpec{
				{AtSec: 1, Kind: "slow", Machine: 0, DurationSec: 1, Factor: 1.5},
			}
		}},
		{"unknown fault kind", func(fc *FleetConfig) {
			fc.MachineFaults = []MachineFaultSpec{
				{AtSec: 1, Kind: "meteor", Machine: 0, DurationSec: 1},
			}
		}},
		{"per-core faults at fleet scale", func(fc *FleetConfig) {
			fc.Faults = []FaultSpec{{AtSec: 1, Kind: "core-fail", Core: 0}}
		}},
		{"unknown dispatch policy", func(fc *FleetConfig) {
			fc.Dispatch = "oracle"
		}},
		{"no machines", func(fc *FleetConfig) {
			fc.Machines = 0
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fc := base
			tc.mutate(&fc)
			if err := fc.Validate(); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("default fleet config rejected: %v", err)
	}
}

// TestFleetPartitionStrandsNoJobs checks that a machine partitioned from the
// dispatcher keeps serving its queue and that routing steers around it.
func TestFleetPartitionStrandsNoJobs(t *testing.T) {
	fc := DefaultFleetConfig()
	fc.Machines = 3
	fc.DurationSec = 10
	fc.ArrivalRate = 154 * 3
	fc.MachineFaults = []MachineFaultSpec{
		{AtSec: 2, Kind: "partition", Machine: 0, DurationSec: 4},
	}
	res, err := RunFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 1 {
		t.Fatalf("partitions = %d, want 1", res.Partitions)
	}
	if res.Crashes != 0 || res.LostWork != 0 {
		t.Fatalf("partition lost work: crashes=%d lostwork=%v", res.Crashes, res.LostWork)
	}
	if res.LostForever != 0 {
		t.Fatalf("%d jobs lost forever", res.LostForever)
	}
	// A partition is not a crash: availability is unaffected.
	if res.Availability != 1 {
		t.Fatalf("availability = %v, want 1 (partitioned machines still serve)", res.Availability)
	}
}
