package yds_test

import (
	"fmt"

	"goodenough/internal/job"
	"goodenough/internal/power"
	"goodenough/internal/yds"
)

// ExamplePlanCommonRelease computes the minimal-energy speed schedule for
// two jobs available now: a tight one (400 units due in 100 ms) and a
// relaxed one (100 units due in 400 ms). YDS runs the tight job fast, then
// drops to a crawl for the relaxed one — spending 4x the power for only a
// quarter of the time.
func ExamplePlanCommonRelease() {
	jobs := []*job.Job{
		job.New(1, 0, 0.100, 400),
		job.New(2, 0, 0.400, 100),
	}
	plan := yds.PlanCommonRelease(0, jobs, 0)
	for _, a := range plan {
		fmt.Printf("J%d: %.3f GHz on [%.2f, %.2f]\n", a.Job.ID, a.Speed, a.Start, a.End)
	}
	fmt.Printf("energy: %.2f J\n", yds.PlanEnergy(power.Default(), plan))
	// Output:
	// J1: 4.000 GHz on [0.00, 0.10]
	// J2: 0.333 GHz on [0.10, 0.40]
	// energy: 8.17 J
}

// ExampleGroupsGeneral runs the textbook YDS critical-interval algorithm on
// staggered releases: a background job spanning two seconds plus a spike in
// the middle. The spike forms its own fast critical group.
func ExampleGroupsGeneral() {
	jobs := []*job.Job{
		job.New(1, 0, 2, 1800),
		job.New(2, 0.9, 1.1, 400),
	}
	for _, g := range yds.GroupsGeneral(jobs) {
		fmt.Printf("jobs %v at %.0f GHz\n", g.JobIDs, g.Speed)
	}
	// Output:
	// jobs [2] at 2 GHz
	// jobs [1] at 1 GHz
}
