package yds

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"goodenough/internal/job"
	"goodenough/internal/power"
	"goodenough/internal/rng"
)

func mkJob(id int, release, deadline, demand float64) *job.Job {
	return job.New(id, release, deadline, demand)
}

func TestPeakSpeedEmpty(t *testing.T) {
	if PeakSpeed(0, nil) != 0 {
		t.Fatal("peak speed of empty set should be 0")
	}
}

func TestPeakSpeedSingle(t *testing.T) {
	// 300 units due in 150 ms → 2000 units/s → 2 GHz.
	j := mkJob(1, 0, 0.150, 300)
	if got := PeakSpeed(0, []*job.Job{j}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("peak speed = %v GHz, want 2", got)
	}
}

func TestPeakSpeedPrefix(t *testing.T) {
	// Two jobs: 100 units by 0.1 s, then 300 more by 0.4 s.
	// Prefix intensities: 1000 u/s and 400/0.4 = 1000 u/s → 1 GHz.
	jobs := []*job.Job{mkJob(1, 0, 0.1, 100), mkJob(2, 0, 0.4, 300)}
	if got := PeakSpeed(0, jobs); math.Abs(got-1) > 1e-9 {
		t.Fatalf("peak speed = %v GHz, want 1", got)
	}
	// Make the first job dominant: 300 by 0.1 → 3 GHz.
	jobs[0] = mkJob(1, 0, 0.1, 300)
	if got := PeakSpeed(0, jobs); math.Abs(got-3) > 1e-9 {
		t.Fatalf("peak speed = %v GHz, want 3", got)
	}
}

func TestPeakSpeedExpired(t *testing.T) {
	j := mkJob(1, 0, 0.1, 100)
	if !math.IsInf(PeakSpeed(0.2, []*job.Job{j}), 1) {
		t.Fatal("expired job with work should give infinite peak speed")
	}
}

func TestPlanTwoJobsClosedForm(t *testing.T) {
	// Case 1: first job is the bottleneck.
	// w1=400 by d1=0.1 (4 GHz), w2=100 by d2=0.4.
	// YDS: job1 at 4 GHz on [0, 0.1], job2 at 100/(0.3·1000)=0.333 GHz.
	jobs := []*job.Job{mkJob(1, 0, 0.1, 400), mkJob(2, 0, 0.4, 100)}
	plan := PlanCommonRelease(0, jobs, 0)
	if len(plan) != 2 {
		t.Fatalf("plan length = %d", len(plan))
	}
	if math.Abs(plan[0].Speed-4) > 1e-9 {
		t.Fatalf("job1 speed = %v, want 4", plan[0].Speed)
	}
	if math.Abs(plan[1].Speed-100.0/300) > 1e-9 {
		t.Fatalf("job2 speed = %v, want %v", plan[1].Speed, 100.0/300)
	}
	if math.Abs(plan[1].Start-0.1) > 1e-9 || math.Abs(plan[1].End-0.4) > 1e-9 {
		t.Fatalf("job2 window = [%v, %v], want [0.1, 0.4]", plan[1].Start, plan[1].End)
	}

	// Case 2: pooled: w1=100 by 0.1, w2=700 by 0.4 → both at
	// (100+700)/0.4 = 2000 u/s = 2 GHz.
	jobs = []*job.Job{mkJob(1, 0, 0.1, 100), mkJob(2, 0, 0.4, 700)}
	plan = PlanCommonRelease(0, jobs, 0)
	for _, a := range plan {
		if math.Abs(a.Speed-2) > 1e-9 {
			t.Fatalf("pooled speed = %v, want 2", a.Speed)
		}
	}
	if !Feasible(plan, 1e-9) {
		t.Fatal("pooled plan infeasible")
	}
}

func TestPlanFeasibleAndOrdered(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(8)
		jobs := make([]*job.Job, n)
		for i := range jobs {
			d := 0.05 + r.Float64()*0.5
			jobs[i] = mkJob(i, 0, d, 130+r.Float64()*870)
		}
		plan := PlanCommonRelease(0, jobs, 0)
		if len(plan) != n {
			t.Fatalf("trial %d: plan covers %d of %d jobs", trial, len(plan), n)
		}
		if !Feasible(plan, 1e-6) {
			t.Fatalf("trial %d: uncapped YDS plan infeasible", trial)
		}
		// Windows must be contiguous and non-overlapping in EDF order.
		for i := 1; i < len(plan); i++ {
			if plan[i].Start < plan[i-1].End-1e-9 {
				t.Fatalf("trial %d: overlapping windows", trial)
			}
			if plan[i].Job.Deadline < plan[i-1].Job.Deadline {
				t.Fatalf("trial %d: not EDF ordered", trial)
			}
		}
		// Group speeds must be non-increasing (YDS common-release shape).
		for i := 1; i < len(plan); i++ {
			if plan[i].Speed > plan[i-1].Speed+1e-9 {
				t.Fatalf("trial %d: speeds increased over time: %v then %v",
					trial, plan[i-1].Speed, plan[i].Speed)
			}
		}
	}
}

func TestPlanFirstGroupMatchesPeakSpeed(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(6)
		jobs := make([]*job.Job, n)
		for i := range jobs {
			jobs[i] = mkJob(i, 0, 0.05+r.Float64()*0.4, 130+r.Float64()*870)
		}
		plan := PlanCommonRelease(0, jobs, 0)
		peak := PeakSpeed(0, jobs)
		if math.Abs(plan[0].Speed-peak) > 1e-6 {
			t.Fatalf("trial %d: first group speed %v != peak %v", trial, plan[0].Speed, peak)
		}
	}
}

func TestPlanOptimalityAgainstJitteredFeasiblePlans(t *testing.T) {
	// YDS is optimal over all feasible schedules; any feasible alternative
	// must cost at least as much. Scaling every YDS speed up by >= 1 stays
	// feasible, so those alternatives bound the optimum from above.
	m := power.Default()
	r := rng.New(3)
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(5)
		jobs := make([]*job.Job, n)
		for i := range jobs {
			jobs[i] = mkJob(i, 0, 0.05+r.Float64()*0.4, 130+r.Float64()*870)
		}
		plan := PlanCommonRelease(0, jobs, 0)
		opt := PlanEnergy(m, plan)
		for k := 0; k < 10; k++ {
			alt := make([]Assignment, len(plan))
			tcur := 0.0
			for i, a := range plan {
				sp := a.Speed * (1 + r.Float64())
				dur := 0.0
				if sp > 0 {
					dur = a.Job.Remaining() / power.Rate(sp)
				}
				alt[i] = Assignment{Job: a.Job, Speed: sp, Start: tcur, End: tcur + dur}
				tcur += dur
			}
			if !Feasible(alt, 1e-9) {
				t.Fatalf("trial %d: sped-up plan lost feasibility", trial)
			}
			if e := PlanEnergy(m, alt); e < opt-1e-6 {
				t.Fatalf("trial %d: alternative beat YDS: %v < %v", trial, e, opt)
			}
		}
	}
}

func TestPlanRespectsCap(t *testing.T) {
	jobs := []*job.Job{mkJob(1, 0, 0.1, 400), mkJob(2, 0, 0.4, 100)}
	plan := PlanCommonRelease(0, jobs, 1.5)
	for _, a := range plan {
		if a.Speed > 1.5+1e-12 {
			t.Fatalf("cap violated: %v", a.Speed)
		}
	}
	// 400 units at 1.5 GHz takes 0.267 s > 0.1 s deadline: plan overruns,
	// which the machine converts into quality loss.
	if Feasible(plan, 1e-9) {
		t.Fatal("capped plan should be infeasible for this instance")
	}
}

func TestPlanZeroWork(t *testing.T) {
	j := mkJob(1, 0, 0.1, 100)
	j.Advance(100)
	plan := PlanCommonRelease(0, []*job.Job{j}, 0)
	if len(plan) != 1 || plan[0].Speed != 0 || plan[0].Start != plan[0].End {
		t.Fatalf("zero-work plan = %+v", plan)
	}
}

func TestPlanExpiredJob(t *testing.T) {
	// A job whose deadline passed still gets an assignment (the machine
	// finalizes it); the plan must not crash or stall.
	jobs := []*job.Job{mkJob(1, 0, 0.1, 100), mkJob(2, 0, 0.5, 200)}
	plan := PlanCommonRelease(0.2, jobs, 2)
	if len(plan) != 2 {
		t.Fatalf("plan length = %d, want 2", len(plan))
	}
	for _, a := range plan {
		if a.Speed > 2+1e-12 {
			t.Fatalf("cap violated for expired-job plan: %v", a.Speed)
		}
	}
}

func TestPlanEmpty(t *testing.T) {
	if PlanCommonRelease(0, nil, 0) != nil {
		t.Fatal("empty plan should be nil")
	}
}

func TestPlanEnergyKnownValue(t *testing.T) {
	// One job: 300 units in 150 ms → 2 GHz → 20 W → 3 J over 0.15 s.
	m := power.Default()
	plan := PlanCommonRelease(0, []*job.Job{mkJob(1, 0, 0.150, 300)}, 0)
	if got := PlanEnergy(m, plan); math.Abs(got-3) > 1e-9 {
		t.Fatalf("energy = %v J, want 3", got)
	}
}

func TestGroupsGeneralCommonReleaseMatchesPlan(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(6)
		jobs := make([]*job.Job, n)
		for i := range jobs {
			jobs[i] = mkJob(i, 0, 0.05+r.Float64()*0.4, 130+r.Float64()*870)
		}
		plan := PlanCommonRelease(0, jobs, 0)
		groups := GroupsGeneral(jobs)
		// Per-job speeds must agree between the two algorithms.
		bySpeed := map[int]float64{}
		for _, g := range groups {
			for _, id := range g.JobIDs {
				bySpeed[id] = g.Speed
			}
		}
		for _, a := range plan {
			if math.Abs(bySpeed[a.Job.ID]-a.Speed) > 1e-6 {
				t.Fatalf("trial %d: job %d speed %v (general) vs %v (common)",
					trial, a.Job.ID, bySpeed[a.Job.ID], a.Speed)
			}
		}
		// And so must total energy.
		m := power.Default()
		if d := math.Abs(GroupsEnergy(m, jobs, groups) - PlanEnergy(m, plan)); d > 1e-6 {
			t.Fatalf("trial %d: energy mismatch %v", trial, d)
		}
	}
}

func TestGroupsGeneralStaggeredReleases(t *testing.T) {
	// Two disjoint unit-time windows each holding 1000 units → both jobs
	// at 1 GHz in separate critical intervals.
	jobs := []*job.Job{mkJob(1, 0, 1, 1000), mkJob(2, 1, 2, 1000)}
	groups := GroupsGeneral(jobs)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	for _, g := range groups {
		if math.Abs(g.Speed-1) > 1e-9 {
			t.Fatalf("group speed = %v, want 1", g.Speed)
		}
	}
}

func TestGroupsGeneralOverlap(t *testing.T) {
	// Classic YDS example: a heavy job spanning [0,2] and a spike in [0.9,1.1].
	// The spike interval [0.9,1.1] has intensity 400/0.2 = 2000 u/s = 2 GHz;
	// after compression the heavy job has 1.8 s for 1800 units → 1 GHz.
	jobs := []*job.Job{mkJob(1, 0, 2, 1800), mkJob(2, 0.9, 1.1, 400)}
	groups := GroupsGeneral(jobs)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if math.Abs(groups[0].Speed-2) > 1e-9 || groups[0].JobIDs[0] != 2 {
		t.Fatalf("first group = %+v, want spike at 2 GHz", groups[0])
	}
	if math.Abs(groups[1].Speed-1) > 1e-9 {
		t.Fatalf("second group speed = %v, want 1", groups[1].Speed)
	}
}

func TestGroupsGeneralExtractionOrderFastestFirst(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(5)
		jobs := make([]*job.Job, n)
		for i := range jobs {
			rel := r.Float64() * 0.5
			jobs[i] = mkJob(i, rel, rel+0.05+r.Float64()*0.4, 130+r.Float64()*870)
		}
		groups := GroupsGeneral(jobs)
		speeds := make([]float64, len(groups))
		for i, g := range groups {
			speeds[i] = g.Speed
		}
		if !sort.IsSorted(sort.Reverse(sort.Float64Slice(speeds))) {
			t.Fatalf("trial %d: group speeds not non-increasing: %v", trial, speeds)
		}
		// Every job appears exactly once.
		seen := map[int]bool{}
		for _, g := range groups {
			for _, id := range g.JobIDs {
				if seen[id] {
					t.Fatalf("trial %d: job %d in two groups", trial, id)
				}
				seen[id] = true
			}
		}
		if len(seen) != n {
			t.Fatalf("trial %d: %d of %d jobs grouped", trial, len(seen), n)
		}
	}
}

func TestGroupsGeneralSkipsFinishedJobs(t *testing.T) {
	j := mkJob(1, 0, 1, 100)
	j.Advance(100)
	if groups := GroupsGeneral([]*job.Job{j}); len(groups) != 0 {
		t.Fatalf("finished job produced groups: %+v", groups)
	}
}

// Property: adding work never lowers the peak speed.
func TestPeakSpeedMonotoneProperty(t *testing.T) {
	prop := func(w1, w2, extra uint16) bool {
		j1 := mkJob(1, 0, 0.15, float64(w1%1000)+1)
		j2 := mkJob(2, 0, 0.30, float64(w2%1000)+1)
		base := PeakSpeed(0, []*job.Job{j1, j2})
		j2b := mkJob(2, 0, 0.30, float64(w2%1000)+1+float64(extra%500))
		grown := PeakSpeed(0, []*job.Job{j1, j2b})
		return grown >= base-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: total planned work equals total remaining work (nothing lost or
// invented by the planner).
func TestPlanConservesWorkProperty(t *testing.T) {
	r := rng.New(7)
	prop := func(seed uint16) bool {
		n := 1 + int(seed%6)
		jobs := make([]*job.Job, n)
		total := 0.0
		for i := range jobs {
			jobs[i] = mkJob(i, 0, 0.05+r.Float64()*0.4, 130+r.Float64()*870)
			total += jobs[i].Remaining()
		}
		plan := PlanCommonRelease(0, jobs, 0)
		planned := 0.0
		for _, a := range plan {
			planned += power.Rate(a.Speed) * (a.End - a.Start)
		}
		return math.Abs(planned-total) < 1e-6*math.Max(total, 1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPlanCommonRelease(b *testing.B) {
	r := rng.New(1)
	jobs := make([]*job.Job, 32)
	for i := range jobs {
		jobs[i] = mkJob(i, 0, 0.05+r.Float64()*0.4, 130+r.Float64()*870)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PlanCommonRelease(0, jobs, 0)
	}
}

func BenchmarkGroupsGeneral(b *testing.B) {
	r := rng.New(1)
	jobs := make([]*job.Job, 16)
	for i := range jobs {
		rel := r.Float64() * 0.5
		jobs[i] = mkJob(i, rel, rel+0.05+r.Float64()*0.4, 130+r.Float64()*870)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GroupsGeneral(jobs)
	}
}
