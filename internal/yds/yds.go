// Package yds implements the Energy-OPT speed-scaling algorithm of
// Yao, Demers and Shenker (FOCS'95), which the paper uses as the final,
// per-core stage of every schedule: given the jobs bound to a core and
// their deadlines, compute the speed profile that finishes the (possibly
// cut) work with minimal energy under a convex power curve.
//
// Two variants are provided:
//
//   - PlanCommonRelease: all jobs are available now (the situation at every
//     scheduling event — whatever is queued on the core has already
//     arrived). With a common release the optimal profile has a closed
//     recursive form: repeatedly run the maximum-intensity prefix at its
//     intensity, then recurse after that prefix's last deadline. Speeds are
//     non-increasing over time.
//
//   - GroupsGeneral: the textbook critical-interval algorithm for arbitrary
//     release times, provided for library completeness and used by tests as
//     a cross-check.
//
// Speeds are expressed in GHz using the paper's conversion of 1 GHz =
// 1000 processing units per second.
package yds

import (
	"math"

	"goodenough/internal/job"
	"goodenough/internal/power"
)

// Assignment gives one job its planned constant execution speed. Start and
// End describe the planned contiguous execution window (EDF order); under a
// speed cap the window may extend past the job's deadline, in which case
// the machine model will drop the unfinished tail at the deadline.
type Assignment struct {
	Job   *job.Job
	Speed float64 // GHz
	Start float64 // seconds
	End   float64 // seconds
}

// PeakSpeed returns the minimal uniform speed (GHz) that completes every
// job's remaining target work by its deadline, i.e. the maximum prefix
// intensity over the EDF order. It is the YDS critical speed for a common
// release and also the per-core power demand used by Water-Filling.
// Jobs whose deadlines have already passed contribute +Inf.
func PeakSpeed(now float64, jobs []*job.Job) float64 {
	if len(jobs) == 0 {
		return 0
	}
	sorted := append([]*job.Job(nil), jobs...)
	job.SortEDF(sorted)
	return PeakSpeedEDF(now, sorted)
}

// PeakSpeedEDF is PeakSpeed for jobs already in EDF order (job.SortEDF).
// It allocates nothing, so schedulers that keep an EDF-sorted scratch can
// query peak demand on every trigger for free. The caller's ordering
// contract matters: an unsorted slice gives a wrong (not merely different)
// peak.
func PeakSpeedEDF(now float64, jobs []*job.Job) float64 {
	peak := 0.0
	cum := 0.0
	for _, j := range jobs {
		cum += j.Remaining()
		if cum <= 0 {
			continue
		}
		window := j.Deadline - now
		if window <= 0 {
			return math.Inf(1)
		}
		if s := power.SpeedForRate(cum / window); s > peak {
			peak = s
		}
	}
	return peak
}

// PlanCommonRelease computes the minimal-energy execution plan for jobs all
// available at time now, optionally capped at speedCap GHz (0 = uncapped).
//
// The returned assignments are in EDF execution order with contiguous
// windows. Without a cap the plan is exactly the YDS optimum and finishes
// every job by its deadline. With a cap, groups whose YDS speed exceeds the
// cap run at the cap; their windows may overrun deadlines and the surplus
// work is lost at execution time (this is the controlled quality loss the
// scheduler accounts for via Quality-OPT).
//
// Jobs with no remaining work receive a zero-length assignment at speed 0.
func PlanCommonRelease(now float64, jobs []*job.Job, speedCap float64) []Assignment {
	if len(jobs) == 0 {
		return nil
	}
	sorted := append([]*job.Job(nil), jobs...)
	job.SortEDF(sorted)
	return AppendPlanCommonRelease(make([]Assignment, 0, len(sorted)), now, sorted, speedCap)
}

// AppendPlanCommonRelease is PlanCommonRelease for jobs already in EDF
// order, appending the assignments to dst (which may be a reused scratch
// slice with length 0) and returning the extended slice. The input order is
// read, never mutated. This is the allocation-free form the scheduler hot
// path uses.
func AppendPlanCommonRelease(dst []Assignment, now float64, sorted []*job.Job, speedCap float64) []Assignment {
	if len(sorted) == 0 {
		return dst
	}
	plan := dst
	t := now
	i := 0
	for i < len(sorted) {
		// Find the maximum-intensity prefix starting at i.
		bestK := i
		bestIntensity := -1.0 // units per second
		infinite := false
		cum := 0.0
		for k := i; k < len(sorted); k++ {
			cum += sorted[k].Remaining()
			window := sorted[k].Deadline - t
			if window <= 0 {
				if cum > 0 {
					// Work due in the past: intensity unbounded; the
					// group is hopeless past this point and runs at cap.
					bestK = k
					infinite = true
					// Keep extending only over other already-expired jobs.
					break
				}
				bestK = k
				continue
			}
			if intensity := cum / window; intensity > bestIntensity {
				bestIntensity = intensity
				bestK = k
			}
		}

		var speed float64
		switch {
		case infinite:
			speed = speedCap
			if speed <= 0 {
				// No cap given: run at the peak finite intensity of the
				// remaining jobs, or 1 GHz as a floor, just to drain.
				speed = math.Max(1, bestIntensity/power.UnitsPerGHz)
			}
		case bestIntensity <= 0:
			speed = 0
		default:
			speed = bestIntensity / power.UnitsPerGHz
			if speedCap > 0 && speed > speedCap {
				speed = speedCap
			}
		}

		// Lay the group's jobs out sequentially at the group speed.
		for k := i; k <= bestK; k++ {
			j := sorted[k]
			dur := 0.0
			if speed > 0 {
				dur = j.Remaining() / power.Rate(speed)
			}
			plan = append(plan, Assignment{Job: j, Speed: speed, Start: t, End: t + dur})
			t += dur
		}
		// Without a cap the group finishes exactly at its last deadline;
		// floating point may leave t marginally short, and later groups
		// were sized assuming the deadline boundary.
		if !infinite && speedCap <= 0 && bestK < len(sorted) {
			if d := sorted[bestK].Deadline; t < d {
				t = d
			}
		}
		i = bestK + 1
	}
	return plan
}

// PlanEnergy returns the dynamic energy (joules) the plan would consume if
// executed exactly as laid out, under the given power model.
func PlanEnergy(m power.Model, plan []Assignment) float64 {
	e := 0.0
	for _, a := range plan {
		e += m.Energy(a.Speed, a.End-a.Start)
	}
	return e
}

// Feasible reports whether the plan finishes every job's remaining target
// by its deadline (within tol seconds).
func Feasible(plan []Assignment, tol float64) bool {
	for _, a := range plan {
		if a.Job.Remaining() > 0 && a.End > a.Job.Deadline+tol {
			return false
		}
	}
	return true
}

// Group is one critical group of the general YDS algorithm: the listed
// jobs execute at Speed (GHz) in the optimal schedule.
type Group struct {
	JobIDs []int
	Speed  float64
}

// GroupsGeneral runs the textbook YDS critical-interval algorithm for jobs
// with arbitrary release times and deadlines, returning each job's optimal
// speed group in extraction order (fastest first). The remaining jobs' time
// axis is compressed after every extraction, as in the original algorithm.
//
// The returned speeds define the minimal-energy preemptive EDF schedule;
// total energy is Σ_j w_j/1000 · A·s_j^{β−1}.
func GroupsGeneral(jobs []*job.Job) []Group {
	type item struct {
		id   int
		r, d float64
		w    float64
	}
	items := make([]item, 0, len(jobs))
	for _, j := range jobs {
		if j.Remaining() <= 0 {
			continue
		}
		items = append(items, item{id: j.ID, r: j.Release, d: j.Deadline, w: j.Remaining()})
	}
	var groups []Group
	for len(items) > 0 {
		// Candidate interval endpoints are the releases and deadlines.
		bestG := -1.0
		var bestT1, bestT2 float64
		for _, a := range items {
			for _, b := range items {
				t1, t2 := a.r, b.d
				if t2 <= t1 {
					continue
				}
				w := 0.0
				for _, it := range items {
					if it.r >= t1 && it.d <= t2 {
						w += it.w
					}
				}
				if g := w / (t2 - t1); g > bestG {
					bestG, bestT1, bestT2 = g, t1, t2
				}
			}
		}
		if bestG <= 0 {
			// Remaining jobs have no positive-length windows; group them
			// at speed 0 (they cannot be processed).
			g := Group{Speed: 0}
			for _, it := range items {
				g.JobIDs = append(g.JobIDs, it.id)
			}
			groups = append(groups, g)
			break
		}
		g := Group{Speed: bestG / power.UnitsPerGHz}
		var rest []item
		for _, it := range items {
			if it.r >= bestT1 && it.d <= bestT2 {
				g.JobIDs = append(g.JobIDs, it.id)
				continue
			}
			// Compress the critical interval out of the timeline.
			shift := bestT2 - bestT1
			if it.r > bestT2 {
				it.r -= shift
			} else if it.r > bestT1 {
				it.r = bestT1
			}
			if it.d > bestT2 {
				it.d -= shift
			} else if it.d > bestT1 {
				it.d = bestT1
			}
			rest = append(rest, it)
		}
		groups = append(groups, g)
		items = rest
	}
	return groups
}

// GroupsEnergy computes the total energy of a general YDS grouping under
// the given power model.
func GroupsEnergy(m power.Model, jobs []*job.Job, groups []Group) float64 {
	byID := make(map[int]*job.Job, len(jobs))
	for _, j := range jobs {
		byID[j.ID] = j
	}
	e := 0.0
	for _, g := range groups {
		if g.Speed <= 0 {
			continue
		}
		for _, id := range g.JobIDs {
			j := byID[id]
			dur := j.Remaining() / power.Rate(g.Speed)
			e += m.Energy(g.Speed, dur)
		}
	}
	return e
}
