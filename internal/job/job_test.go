package job

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDefaults(t *testing.T) {
	j := New(7, 1.0, 1.15, 500)
	if j.ID != 7 || j.Release != 1.0 || j.Deadline != 1.15 || j.Demand != 500 {
		t.Fatalf("constructor lost fields: %v", j)
	}
	if j.Target != 500 {
		t.Fatalf("target should start at demand, got %v", j.Target)
	}
	if j.Core != -1 || j.State != StateWaiting {
		t.Fatalf("job should start waiting and unassigned: %v", j)
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	if err := New(1, 2, 1, 100).Validate(); err == nil {
		t.Error("deadline before release accepted")
	}
	bad := New(1, 0, 1, 100)
	bad.Demand = -5
	if err := bad.Validate(); err == nil {
		t.Error("negative demand accepted")
	}
}

func TestRemaining(t *testing.T) {
	j := New(1, 0, 0.15, 400)
	if j.Remaining() != 400 {
		t.Fatalf("fresh remaining = %v", j.Remaining())
	}
	j.Advance(150)
	if j.Remaining() != 250 {
		t.Fatalf("remaining after 150 = %v", j.Remaining())
	}
	j.SetTarget(200)
	if j.Remaining() != 50 {
		t.Fatalf("remaining after cut to 200 = %v", j.Remaining())
	}
	if j.RemainingFull() != 250 {
		t.Fatalf("remaining full = %v, want 250", j.RemainingFull())
	}
}

func TestSetTargetClamps(t *testing.T) {
	j := New(1, 0, 0.15, 400)
	j.Advance(100)
	j.SetTarget(50) // below processed → clamps up
	if j.Target != 100 {
		t.Fatalf("target below processed should clamp to processed, got %v", j.Target)
	}
	j.SetTarget(900) // above demand → clamps down
	if j.Target != 400 {
		t.Fatalf("target above demand should clamp to demand, got %v", j.Target)
	}
}

func TestCutCount(t *testing.T) {
	j := New(1, 0, 0.15, 400)
	j.SetTarget(300)
	j.SetTarget(200)
	j.SetTarget(250) // raise, not a cut
	if j.CutCount != 2 {
		t.Fatalf("cut count = %d, want 2", j.CutCount)
	}
}

func TestRestoreTarget(t *testing.T) {
	j := New(1, 0, 0.15, 400)
	j.SetTarget(100)
	j.RestoreTarget()
	if j.Target != 400 {
		t.Fatalf("restore target = %v, want 400", j.Target)
	}
}

func TestAdvanceClamps(t *testing.T) {
	j := New(1, 0, 0.15, 400)
	if got := j.Advance(-5); got != 0 {
		t.Fatalf("negative advance applied %v", got)
	}
	if got := j.Advance(350); got != 350 {
		t.Fatalf("advance applied %v, want 350", got)
	}
	if got := j.Advance(100); got != 50 {
		t.Fatalf("overshoot advance applied %v, want 50", got)
	}
	if j.Processed != 400 {
		t.Fatalf("processed = %v, want 400", j.Processed)
	}
}

func TestDone(t *testing.T) {
	j := New(1, 0, 0.15, 400)
	j.SetTarget(200)
	if j.Done() {
		t.Fatal("fresh cut job should not be done")
	}
	j.Advance(200)
	if !j.Done() {
		t.Fatal("job at target should be done")
	}
	if j.Expired(0.1) {
		t.Fatal("job should not be expired before deadline")
	}
	if !j.Expired(0.15) {
		t.Fatal("job should be expired at deadline")
	}
}

func TestWindow(t *testing.T) {
	j := New(1, 0, 0.15, 400)
	if math.Abs(j.Window(0.05)-0.10) > 1e-12 {
		t.Fatalf("window = %v", j.Window(0.05))
	}
	if j.Window(0.2) != 0 {
		t.Fatalf("past-deadline window = %v, want 0", j.Window(0.2))
	}
}

func mk(id int, release, deadline, demand float64) *Job {
	return New(id, release, deadline, demand)
}

func TestSortEDF(t *testing.T) {
	jobs := []*Job{
		mk(3, 0.2, 0.40, 100),
		mk(1, 0.0, 0.15, 100),
		mk(2, 0.1, 0.15, 100), // same deadline, later release
		mk(4, 0.3, 0.35, 100),
	}
	SortEDF(jobs)
	order := []int{1, 2, 4, 3}
	for i, want := range order {
		if jobs[i].ID != want {
			t.Fatalf("EDF order = %v at %d, want %v", jobs[i].ID, i, order)
		}
	}
}

func TestSortByRelease(t *testing.T) {
	jobs := []*Job{mk(2, 0.2, 1, 1), mk(1, 0.1, 2, 1), mk(3, 0.2, 0.5, 1)}
	SortByRelease(jobs)
	if jobs[0].ID != 1 || jobs[1].ID != 2 || jobs[2].ID != 3 {
		t.Fatalf("release order wrong: %v %v %v", jobs[0].ID, jobs[1].ID, jobs[2].ID)
	}
}

func TestSortByDemand(t *testing.T) {
	jobs := []*Job{mk(1, 0, 1, 300), mk(2, 0, 1, 900), mk(3, 0, 1, 130)}
	SortByDemandDesc(jobs)
	if jobs[0].Demand != 900 || jobs[2].Demand != 130 {
		t.Fatal("LJF order wrong")
	}
	SortByDemandAsc(jobs)
	if jobs[0].Demand != 130 || jobs[2].Demand != 900 {
		t.Fatal("SJF order wrong")
	}
}

func TestSortStability(t *testing.T) {
	jobs := []*Job{mk(5, 0, 1, 100), mk(2, 0, 1, 100), mk(9, 0, 1, 100)}
	SortByDemandDesc(jobs)
	if jobs[0].ID != 2 || jobs[1].ID != 5 || jobs[2].ID != 9 {
		t.Fatal("equal-demand ties should break by ID")
	}
}

func TestTotals(t *testing.T) {
	a := mk(1, 0, 1, 300)
	a.Advance(100)
	b := mk(2, 0, 1, 500)
	b.SetTarget(200)
	jobs := []*Job{a, b}
	if got := TotalRemaining(jobs); got != 200+200 {
		t.Fatalf("TotalRemaining = %v, want 400", got)
	}
	if got := TotalRemainingFull(jobs); got != 200+500 {
		t.Fatalf("TotalRemainingFull = %v, want 700", got)
	}
}

func TestFIFO(t *testing.T) {
	var q FIFO
	if q.Len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	for i := 1; i <= 3; i++ {
		q.Push(mk(i, float64(i), float64(i)+1, 100))
	}
	if q.Len() != 3 {
		t.Fatalf("queue len = %d", q.Len())
	}
	got := q.Drain()
	if len(got) != 3 || got[0].ID != 1 || got[2].ID != 3 {
		t.Fatalf("drain order wrong: %v", got)
	}
	if q.Len() != 0 {
		t.Fatal("drain did not empty queue")
	}
}

func TestFIFOPopWhere(t *testing.T) {
	var q FIFO
	for i := 1; i <= 4; i++ {
		q.Push(mk(i, 0, 1, float64(i*100)))
	}
	j := q.PopWhere(func(j *Job) bool { return j.Demand == 300 })
	if j == nil || j.ID != 3 {
		t.Fatalf("PopWhere returned %v", j)
	}
	if q.Len() != 3 {
		t.Fatalf("queue len after pop = %d", q.Len())
	}
	if q.PopWhere(func(j *Job) bool { return false }) != nil {
		t.Fatal("PopWhere should return nil when nothing matches")
	}
}

func TestFIFOPopBest(t *testing.T) {
	var q FIFO
	if q.PopBest(func(j *Job) float64 { return 0 }) != nil {
		t.Fatal("PopBest on empty queue should return nil")
	}
	q.Push(mk(1, 0, 0.5, 300))
	q.Push(mk(2, 0, 0.2, 500))
	q.Push(mk(3, 0, 0.2, 100))
	// Earliest deadline: job 2 queued before job 3 with equal deadline.
	j := q.PopBest(func(j *Job) float64 { return j.Deadline })
	if j.ID != 2 {
		t.Fatalf("PopBest earliest-deadline = J%d, want J2 (stable tie)", j.ID)
	}
	// Smallest demand among the rest: job 3.
	j = q.PopBest(func(j *Job) float64 { return j.Demand })
	if j.ID != 3 {
		t.Fatalf("PopBest smallest-demand = J%d, want J3", j.ID)
	}
	if q.Len() != 1 {
		t.Fatalf("queue len = %d, want 1", q.Len())
	}
}

// Property: Advance never pushes Processed beyond Demand and always returns
// the applied delta.
func TestAdvanceInvariantProperty(t *testing.T) {
	prop := func(steps []uint16) bool {
		j := New(1, 0, 1, 1000)
		total := 0.0
		for _, s := range steps {
			total += j.Advance(float64(s) / 10)
		}
		return j.Processed <= j.Demand+1e-9 && math.Abs(total-j.Processed) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: SetTarget keeps the invariant Processed <= Target <= Demand.
func TestTargetInvariantProperty(t *testing.T) {
	prop := func(adv, tgt uint16) bool {
		j := New(1, 0, 1, 1000)
		j.Advance(float64(adv % 1001))
		j.SetTarget(float64(tgt % 2000))
		return j.Target >= j.Processed && j.Target <= j.Demand
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	if StateWaiting.String() != "waiting" ||
		StateAssigned.String() != "assigned" ||
		StateFinalized.String() != "finalized" {
		t.Fatal("state strings wrong")
	}
	if State(42).String() != "state(42)" {
		t.Fatal("unknown state string wrong")
	}
}

func TestStringFormat(t *testing.T) {
	j := New(3, 0.5, 0.65, 400)
	s := j.String()
	for _, want := range []string{"J3", "0.500", "0.650", "400", "waiting"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestPeek(t *testing.T) {
	var q FIFO
	if q.Peek() != nil {
		t.Fatal("empty peek should be nil")
	}
	q.Push(mk(1, 0, 1, 100))
	q.Push(mk(2, 0, 1, 100))
	peeked := q.Peek()
	if len(peeked) != 2 || peeked[0].ID != 1 {
		t.Fatalf("peek = %v", peeked)
	}
	if q.Len() != 2 {
		t.Fatal("peek must not consume")
	}
}

func TestSortTieBreakers(t *testing.T) {
	// EDF with equal deadlines AND equal releases breaks by ID.
	jobs := []*Job{mk(9, 0, 1, 100), mk(2, 0, 1, 100)}
	SortEDF(jobs)
	if jobs[0].ID != 2 {
		t.Fatal("EDF ID tie-break wrong")
	}
	// SortByRelease equal releases break by ID.
	jobs = []*Job{mk(9, 0.5, 1, 100), mk(2, 0.5, 1, 100)}
	SortByRelease(jobs)
	if jobs[0].ID != 2 {
		t.Fatal("release ID tie-break wrong")
	}
	// SortByDemandAsc equal demands break by ID.
	jobs = []*Job{mk(9, 0, 1, 100), mk(2, 0, 1, 100)}
	SortByDemandAsc(jobs)
	if jobs[0].ID != 2 {
		t.Fatal("SJF ID tie-break wrong")
	}
}

func TestRemainingNeverNegative(t *testing.T) {
	j := New(1, 0, 1, 100)
	j.Advance(100)
	j.Target = 40 // force below processed, bypassing SetTarget
	if j.Remaining() != 0 {
		t.Fatalf("Remaining = %v, want clamp to 0", j.Remaining())
	}
	j.Processed = 150 // force above demand
	if j.RemainingFull() != 0 {
		t.Fatalf("RemainingFull = %v, want clamp to 0", j.RemainingFull())
	}
}
