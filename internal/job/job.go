// Package job defines the service-request model shared by every scheduler.
//
// A job J_j has a release (start) time s_j, a deadline d_j, and a processing
// demand p_j in processing units. Jobs may be partially processed; the
// volume processed by the deadline determines the perceived quality. Once a
// job is assigned to a core it never migrates (paper §II-B).
package job

import (
	"fmt"
	"slices"
)

// State tracks a job's position in its lifecycle.
type State int

const (
	// StateWaiting means the job has arrived but is not yet assigned to a
	// core.
	StateWaiting State = iota
	// StateAssigned means the job sits in a core's local queue or is
	// executing.
	StateAssigned
	// StateFinalized means the job's outcome is decided: it either
	// completed its (possibly cut) target or hit its deadline.
	StateFinalized
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateWaiting:
		return "waiting"
	case StateAssigned:
		return "assigned"
	case StateFinalized:
		return "finalized"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Job is a single service request. Fields are exported for the scheduler
// packages; treat Processed/Target/State as owned by the simulation.
type Job struct {
	// ID is a unique, monotonically increasing identifier (arrival order).
	ID int
	// Release is the arrival time s_j in seconds.
	Release float64
	// Deadline is d_j in seconds; work after the deadline is worthless.
	Deadline float64
	// Demand is the full processing demand p_j in processing units.
	Demand float64

	// Target is the volume the scheduler currently intends to process
	// (c_j after cutting). It starts equal to Demand and only ever moves
	// within [Processed, Demand].
	Target float64
	// Processed is the volume completed so far.
	Processed float64
	// Core is the index of the core the job is bound to, or -1 while
	// waiting.
	Core int
	// State is the lifecycle state.
	State State
	// CutCount records how many times a cutting pass reduced this job's
	// target (diagnostics).
	CutCount int
	// Requeues counts how many times the job was orphaned by a core
	// failure and returned to the waiting queue. It is the audit trail for
	// the one permitted exception to the no-migration rule: a job may be
	// re-bound to a new core only after a failure orphaned it, and the
	// invariant checker verifies every re-binding against this counter.
	Requeues int
	// Finish is the simulation time at which the job was finalized
	// (completed or expired); meaningful only once State is
	// StateFinalized. The response time is Finish − Release.
	Finish float64
}

// New constructs a waiting job with the given identity and shape. The
// target starts at the full demand (no cut).
func New(id int, release, deadline, demand float64) *Job {
	return &Job{
		ID:       id,
		Release:  release,
		Deadline: deadline,
		Demand:   demand,
		Target:   demand,
		Core:     -1,
		State:    StateWaiting,
	}
}

// Validate reports whether the job is well-formed.
func (j *Job) Validate() error {
	if j.Demand < 0 {
		return fmt.Errorf("job %d: negative demand %v", j.ID, j.Demand)
	}
	if j.Deadline < j.Release {
		return fmt.Errorf("job %d: deadline %v before release %v", j.ID, j.Deadline, j.Release)
	}
	return nil
}

// Remaining returns the work still needed to reach the current target.
// It is never negative.
func (j *Job) Remaining() float64 {
	r := j.Target - j.Processed
	if r < 0 {
		return 0
	}
	return r
}

// RemainingFull returns the work still needed to process the entire
// original demand (used when BQ mode removes the cut).
func (j *Job) RemainingFull() float64 {
	r := j.Demand - j.Processed
	if r < 0 {
		return 0
	}
	return r
}

// SetTarget moves the cutting target, clamped to [Processed, Demand].
// It records a cut when the target decreases.
func (j *Job) SetTarget(t float64) {
	if t > j.Demand {
		t = j.Demand
	}
	if t < j.Processed {
		t = j.Processed
	}
	if t < j.Target {
		j.CutCount++
	}
	j.Target = t
}

// RestoreTarget resets the target to the full demand (BQ mode).
func (j *Job) RestoreTarget() { j.Target = j.Demand }

// Advance records dw units of completed work, clamped so Processed never
// exceeds Demand. It returns the amount actually applied.
func (j *Job) Advance(dw float64) float64 {
	if dw <= 0 {
		return 0
	}
	room := j.Demand - j.Processed
	if dw > room {
		dw = room
	}
	j.Processed += dw
	return dw
}

// Done reports whether the job has reached its current target.
func (j *Job) Done() bool { return j.Processed >= j.Target-1e-9 }

// Expired reports whether the job's deadline has passed at time t.
func (j *Job) Expired(t float64) bool { return t >= j.Deadline }

// Window returns the time remaining until the deadline at time t (>= 0).
func (j *Job) Window(t float64) float64 {
	w := j.Deadline - t
	if w < 0 {
		return 0
	}
	return w
}

// String implements fmt.Stringer for debugging.
func (j *Job) String() string {
	return fmt.Sprintf("J%d[r=%.3f d=%.3f p=%.0f tgt=%.0f done=%.0f %s]",
		j.ID, j.Release, j.Deadline, j.Demand, j.Target, j.Processed, j.State)
}

// The comparators below are total orders (unique IDs break every tie), so
// a stable sort and an unstable one agree; SortStableFunc is used because
// it sorts in place with a static comparator — no closure or interface
// allocations, unlike sort.SliceStable.

// CompareEDF orders by deadline, breaking ties by release then ID.
func CompareEDF(a, b *Job) int {
	switch {
	case a.Deadline < b.Deadline:
		return -1
	case a.Deadline > b.Deadline:
		return 1
	case a.Release < b.Release:
		return -1
	case a.Release > b.Release:
		return 1
	default:
		return a.ID - b.ID
	}
}

// SortEDF orders jobs by deadline, breaking ties by release then ID. This
// is the execution order on every core (paper: EDF, non-preemptive).
func SortEDF(jobs []*Job) {
	slices.SortStableFunc(jobs, CompareEDF)
}

// SortByRelease orders jobs by arrival (FCFS order).
func SortByRelease(jobs []*Job) {
	slices.SortStableFunc(jobs, func(a, b *Job) int {
		switch {
		case a.Release < b.Release:
			return -1
		case a.Release > b.Release:
			return 1
		default:
			return a.ID - b.ID
		}
	})
}

// SortByDemandDesc orders jobs longest-first (LJF order and the LF cutting
// order).
func SortByDemandDesc(jobs []*Job) {
	slices.SortStableFunc(jobs, func(a, b *Job) int {
		switch {
		case a.Demand > b.Demand:
			return -1
		case a.Demand < b.Demand:
			return 1
		default:
			return a.ID - b.ID
		}
	})
}

// SortByDemandAsc orders jobs shortest-first (SJF order).
func SortByDemandAsc(jobs []*Job) {
	slices.SortStableFunc(jobs, func(a, b *Job) int {
		switch {
		case a.Demand < b.Demand:
			return -1
		case a.Demand > b.Demand:
			return 1
		default:
			return a.ID - b.ID
		}
	})
}

// TotalRemaining sums Remaining over the jobs.
func TotalRemaining(jobs []*Job) float64 {
	sum := 0.0
	for _, j := range jobs {
		sum += j.Remaining()
	}
	return sum
}

// TotalRemainingFull sums RemainingFull over the jobs.
func TotalRemainingFull(jobs []*Job) float64 {
	sum := 0.0
	for _, j := range jobs {
		sum += j.RemainingFull()
	}
	return sum
}

// FIFO is a simple waiting queue preserving arrival order.
type FIFO struct {
	jobs []*Job
}

// Push appends a job to the queue.
func (q *FIFO) Push(j *Job) { q.jobs = append(q.jobs, j) }

// Len returns the number of queued jobs.
func (q *FIFO) Len() int { return len(q.jobs) }

// Drain removes and returns all queued jobs in arrival order. The queue
// gives up its backing array; callers on a hot path should prefer
// AppendDrain, which keeps it.
func (q *FIFO) Drain() []*Job {
	out := q.jobs
	q.jobs = nil
	return out
}

// AppendDrain appends every queued job to dst in arrival order, empties the
// queue, and returns the extended slice. Unlike Drain, the queue keeps its
// backing array, so alternating AppendDrain/Push cycles stop allocating
// once both slices reach their high-water marks.
func (q *FIFO) AppendDrain(dst []*Job) []*Job {
	dst = append(dst, q.jobs...)
	for i := range q.jobs {
		q.jobs[i] = nil
	}
	q.jobs = q.jobs[:0]
	return dst
}

// Peek returns the queued jobs without removing them. The caller must not
// mutate the returned slice.
func (q *FIFO) Peek() []*Job { return q.jobs }

// PopWhere removes and returns the first job satisfying pred, or nil.
func (q *FIFO) PopWhere(pred func(*Job) bool) *Job {
	for i, j := range q.jobs {
		if pred(j) {
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			return j
		}
	}
	return nil
}

// PopJob removes and returns the given job if it is queued, or nil. It is
// PopWhere specialized to pointer identity so hot callers need no closure.
func (q *FIFO) PopJob(target *Job) *Job {
	for i, j := range q.jobs {
		if j == target {
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			return j
		}
	}
	return nil
}

// PopExpired removes and returns the first job whose deadline has passed at
// time t, or nil. It is PopWhere specialized for the runner's expiry sweep,
// which runs on every delivered event and must not allocate.
func (q *FIFO) PopExpired(t float64) *Job {
	for i, j := range q.jobs {
		if j.Expired(t) {
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			return j
		}
	}
	return nil
}

// PopBest removes and returns the job minimizing key, or nil if empty.
// Ties resolve to the earliest-queued job.
func (q *FIFO) PopBest(key func(*Job) float64) *Job {
	if len(q.jobs) == 0 {
		return nil
	}
	best := 0
	bestKey := key(q.jobs[0])
	for i := 1; i < len(q.jobs); i++ {
		if k := key(q.jobs[i]); k < bestKey {
			best, bestKey = i, k
		}
	}
	j := q.jobs[best]
	q.jobs = append(q.jobs[:best], q.jobs[best+1:]...)
	return j
}
