package cut_test

import (
	"fmt"

	"goodenough/internal/cut"
	"goodenough/internal/job"
	"goodenough/internal/quality"
)

// ExampleLongestFirst reproduces the paper's Figure 2: four jobs of
// decreasing length are cut longest-first until the batch quality is
// exactly the 0.9 target. The two longest jobs land on a shared level;
// the shorter two keep their full demands.
func ExampleLongestFirst() {
	f := quality.NewExponential(0.003, 1000)
	jobs := []*job.Job{
		job.New(1, 0, 0.150, 1000),
		job.New(2, 0, 0.150, 700),
		job.New(3, 0, 0.150, 400),
		job.New(4, 0, 0.150, 200),
	}
	res := cut.LongestFirst(jobs, f, 0.9)
	for _, j := range jobs {
		fmt.Printf("J%d: demand %4.0f -> target %5.1f\n", j.ID, j.Demand, j.Target)
	}
	fmt.Printf("batch quality %.4f, work removed %.0f units\n", res.Quality, res.WorkRemoved)
	// Output:
	// J1: demand 1000 -> target 482.7
	// J2: demand  700 -> target 482.7
	// J3: demand  400 -> target 400.0
	// J4: demand  200 -> target 200.0
	// batch quality 0.9000, work removed 735 units
}
