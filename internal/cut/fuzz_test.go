package cut

import (
	"math"
	"testing"

	"goodenough/internal/job"
	"goodenough/internal/quality"
)

// FuzzLongestFirst drives the cutting algorithm with arbitrary demand
// multisets, progress states, and targets: it must never panic, never
// break the Processed <= Target <= Demand invariant, never produce NaNs,
// and always land at or above the requested quality.
func FuzzLongestFirst(f *testing.F) {
	f.Add(uint16(900), []byte{100, 200, 50})
	f.Add(uint16(0), []byte{1})
	f.Add(uint16(1000), []byte{255, 255, 255, 255})
	f.Add(uint16(500), []byte{})
	f.Add(uint16(999), []byte{0, 0, 7})
	f.Fuzz(func(t *testing.T, qRaw uint16, raw []byte) {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		qge := float64(qRaw%1001) / 1000 // 0 .. 1
		fn := quality.NewExponential(0.003, 1000)
		jobs := make([]*job.Job, 0, len(raw))
		for i, b := range raw {
			demand := float64(b) * 4 // 0 .. 1020
			j := job.New(i, 0, 0.15, demand)
			// Partial progress derived from the same byte.
			j.Advance(demand * float64(b%5) / 8)
			jobs = append(jobs, j)
		}
		res := LongestFirst(jobs, fn, qge)
		if math.IsNaN(res.Quality) || math.IsNaN(res.WorkRemoved) {
			t.Fatalf("NaN result: %+v", res)
		}
		if res.WorkRemoved < -1e-9 {
			t.Fatalf("negative work removed: %v", res.WorkRemoved)
		}
		if res.Quality < -1e-9 || res.Quality > 1+1e-9 {
			t.Fatalf("quality out of range: %v", res.Quality)
		}
		floorBound := 0.0
		for _, j := range jobs {
			if j.Target < j.Processed-1e-9 || j.Target > j.Demand+1e-9 {
				t.Fatalf("invariant broken: %+v", j)
			}
			floorBound += fn.Value(j.Processed)
		}
		// Quality must reach qge unless floors force it higher is fine;
		// below qge is only possible when... it never is: floors only
		// raise quality. Check with tolerance.
		if len(jobs) > 0 && res.Quality < qge-1e-6 {
			// Zero-demand batches report quality 1 and are exempt.
			total := 0.0
			for _, j := range jobs {
				total += j.Demand
			}
			if total > 0 {
				t.Fatalf("quality %v below target %v", res.Quality, qge)
			}
		}
	})
}
