// Package cut implements the paper's Longest-First (LF) job-cutting policy
// — the heart of the AES (Aggressive Energy Saving) mode.
//
// Given a batch of jobs and a target quality Q_GE, the policy repeatedly
// trims the longest job(s) down to the next-longest level, recomputing the
// batch quality Q = Σf(target_j)/Σf(demand_j) after every level, until Q
// would drop to (or below) Q_GE. The final level is then solved exactly:
// the uncut jobs keep their full quality F_U, and each of the |C| cut jobs
// is given the volume c with
//
//	f(c) = (Q_GE · (F_U + F_C) − F_U) / |C|
//
// found by inverting the concave quality function (binary search in the
// general case; the exponential family has a closed form). Because f is
// concave, cutting the *tails of the longest jobs first* sacrifices the
// least quality per unit of work removed.
package cut

import (
	"slices"

	"goodenough/internal/job"
	"goodenough/internal/quality"
)

// Result summarizes a cutting pass.
type Result struct {
	// Cut is the number of jobs whose target was reduced.
	Cut int
	// WorkRemoved is the total volume trimmed, in processing units.
	WorkRemoved float64
	// Quality is the batch quality implied by the new targets,
	// Σf(target)/Σf(demand).
	Quality float64
}

// Cutter owns the scratch buffers for LF cutting so a scheduler invoking it
// every trigger allocates nothing in steady state. Each job's f(demand) is
// evaluated exactly once per pass into fvals — the batch denominator
// Σf(p_j), the level-walk terms, and the uncut tail all reuse the memoized
// values bit-for-bit, cutting the number of exp() evaluations roughly 3×.
// A Cutter is not goroutine-safe; give each scheduler its own (the zero
// value is ready to use).
type Cutter struct {
	demands []float64
	fvals   []float64
	order   []int
}

// LongestFirst applies LF cutting in place: each job's Target is lowered so
// the batch quality lands on qge (within the resolution of the quality
// function's inverse). Jobs' Processed volumes act as floors — work already
// done cannot be un-done, so a job whose processed volume exceeds its
// computed cut level simply keeps its processed volume as the target
// (paper §III-B: a running job is treated as a new job with its original
// demand; if the calculated demand is smaller than what remains, it is cut
// accordingly, otherwise it continues).
//
// qge >= 1 restores every target to the full demand and cuts nothing.
// An empty batch returns a perfect-quality result.
func (c *Cutter) LongestFirst(jobs []*job.Job, f quality.Function, qge float64) Result {
	if len(jobs) == 0 {
		return Result{Quality: 1}
	}
	if qge >= 1 {
		for _, j := range jobs {
			j.RestoreTarget()
		}
		return Result{Quality: 1}
	}
	if qge < 0 {
		qge = 0
	}

	// Cutting reasons about the ORIGINAL demands (a running job is
	// re-considered as new); floors are applied at the end.
	n := len(jobs)
	c.demands = c.demands[:0]
	c.fvals = c.fvals[:0]
	c.order = c.order[:0]
	fullQ := 0.0 // Σ f(p_j)
	for i, j := range jobs {
		c.demands = append(c.demands, j.Demand)
		v := f.Value(j.Demand)
		c.fvals = append(c.fvals, v)
		c.order = append(c.order, i)
		fullQ += v
	}
	demands, fvals, order := c.demands, c.fvals, c.order
	if fullQ == 0 {
		// Nothing has any quality mass; leave targets alone.
		return Result{Quality: 1}
	}
	// Stable sort so demand ties keep input order — LF's tie-break is part
	// of the deterministic contract.
	slices.SortStableFunc(order, func(a, b int) int {
		switch {
		case demands[a] > demands[b]:
			return -1
		case demands[a] < demands[b]:
			return 1
		default:
			return 0
		}
	})

	// level[k] walks the distinct demand values from the top. After the
	// cutting loop, jobs 0..cutCount-1 (in `order`) are cut to `level`,
	// the rest keep their demands.
	targetSum := qge * fullQ // Σ f(target) we must retain

	// Iteratively lower the longest group to the next-longest demand.
	// curQ tracks Σ f(target) under the hypothetical cut. The level is
	// always some job's demand (or 0), so f(level)/f(next) come from the
	// memoized fvals instead of fresh evaluations.
	cutCount := 0
	level := demands[order[0]]
	fLevel := fvals[order[0]]
	curQ := fullQ
	for cutCount < n {
		// Extend the cut group over all jobs tied at the current level.
		for cutCount < n && demands[order[cutCount]] >= level-1e-12 {
			cutCount++
		}
		next, fNext := 0.0, 0.0
		if cutCount < n {
			next = demands[order[cutCount]]
			fNext = fvals[order[cutCount]]
		} else {
			fNext = f.Value(0)
		}
		// Quality if the group drops to `next`.
		hypo := curQ + float64(cutCount)*(fNext-fLevel)
		if hypo <= targetSum || cutCount == n {
			break
		}
		curQ = hypo
		level = next
		fLevel = fNext
	}

	// Solve the exact level for the cut group:
	// cutCount jobs at f(c) each, plus the quality of the uncut tail,
	// must equal targetSum.
	uncutQ := 0.0
	for i := cutCount; i < n; i++ {
		uncutQ += fvals[order[i]]
	}
	perJobQ := (targetSum - uncutQ) / float64(cutCount)
	var exact float64
	switch {
	case perJobQ <= 0:
		exact = 0
	default:
		exact = f.Inverse(perJobQ)
	}

	// Apply targets with processed-volume floors.
	res := Result{}
	achieved := 0.0
	for rank, idx := range order {
		j := jobs[idx]
		want := j.Demand
		if rank < cutCount {
			want = exact
		}
		old := j.Target
		j.RestoreTarget()
		j.SetTarget(want) // clamps to [Processed, Demand]
		if j.Target < j.Demand-1e-12 {
			res.Cut++
		}
		if j.Target < old {
			res.WorkRemoved += old - j.Target
		}
		if j.Target == j.Demand {
			achieved += fvals[idx] // memoized, identical to f.Value(Target)
		} else {
			achieved += f.Value(j.Target)
		}
	}
	res.Quality = achieved / fullQ
	return res
}

// LongestFirst is the stand-alone form for callers without a reusable
// Cutter; it allocates fresh scratch per call.
func LongestFirst(jobs []*job.Job, f quality.Function, qge float64) Result {
	var c Cutter
	return c.LongestFirst(jobs, f, qge)
}

// Restore removes every cut: all targets return to the full demands (the
// BQ / Best-Quality mode).
func Restore(jobs []*job.Job) {
	for _, j := range jobs {
		j.RestoreTarget()
	}
}

// BatchQuality returns Σf(Target)/Σf(Demand) for the jobs — the quality the
// current targets would achieve if fully executed.
func BatchQuality(jobs []*job.Job, f quality.Function) float64 {
	num, den := 0.0, 0.0
	for _, j := range jobs {
		if j.Demand <= 0 {
			continue
		}
		num += f.Value(j.Target)
		den += f.Value(j.Demand)
	}
	if den == 0 {
		return 1
	}
	return num / den
}
