package cut

import (
	"math"
	"testing"
	"testing/quick"

	"goodenough/internal/job"
	"goodenough/internal/quality"
	"goodenough/internal/rng"
)

func paperF() quality.Function { return quality.NewExponential(0.003, 1000) }

func mkBatch(demands ...float64) []*job.Job {
	jobs := make([]*job.Job, len(demands))
	for i, d := range demands {
		jobs[i] = job.New(i, 0, 0.150, d)
	}
	return jobs
}

func TestEmptyBatch(t *testing.T) {
	res := LongestFirst(nil, paperF(), 0.9)
	if res.Quality != 1 || res.Cut != 0 {
		t.Fatalf("empty batch result = %+v", res)
	}
}

func TestQGEOneRestores(t *testing.T) {
	jobs := mkBatch(400, 800)
	jobs[0].SetTarget(100)
	res := LongestFirst(jobs, paperF(), 1.0)
	if res.Cut != 0 || res.Quality != 1 {
		t.Fatalf("qge=1 result = %+v", res)
	}
	for _, j := range jobs {
		if j.Target != j.Demand {
			t.Fatalf("qge=1 should restore full targets: %v", j)
		}
	}
}

func TestHitsTargetQualityExactly(t *testing.T) {
	f := paperF()
	for _, qge := range []float64{0.8, 0.9, 0.95, 0.99} {
		jobs := mkBatch(130, 200, 350, 500, 750, 1000)
		res := LongestFirst(jobs, f, qge)
		if math.Abs(res.Quality-qge) > 1e-6 {
			t.Fatalf("qge=%v: achieved %v", qge, res.Quality)
		}
		if got := BatchQuality(jobs, f); math.Abs(got-qge) > 1e-6 {
			t.Fatalf("qge=%v: BatchQuality says %v", qge, got)
		}
	}
}

func TestLongestCutFirst(t *testing.T) {
	// Fig. 2 shape: four jobs, cutting starts from the longest.
	f := paperF()
	jobs := mkBatch(1000, 700, 400, 200)
	LongestFirst(jobs, f, 0.9)
	// All cut jobs land at the same level; shorter jobs keep full demand
	// unless the level dips below them.
	levels := make([]float64, len(jobs))
	for i, j := range jobs {
		levels[i] = j.Target
	}
	// The longest job must be cut at least as much (relatively) as any
	// shorter one; in particular its target cannot exceed another job's
	// target + its extra demand.
	if levels[0] > 1000-1e-9 {
		t.Fatal("longest job was not cut at qge=0.9")
	}
	if levels[3] < 200-1e-9 {
		// The shortest should survive a mild 0.9 cut.
		t.Fatalf("shortest job cut unexpectedly: %v", levels[3])
	}
	// Cut jobs share one level.
	var cutLevels []float64
	for i, j := range jobs {
		if j.Target < j.Demand-1e-9 {
			cutLevels = append(cutLevels, levels[i])
		}
	}
	for i := 1; i < len(cutLevels); i++ {
		if math.Abs(cutLevels[i]-cutLevels[0]) > 1e-6 {
			t.Fatalf("cut jobs at different levels: %v", cutLevels)
		}
	}
}

func TestEqualDemandsCutTogether(t *testing.T) {
	f := paperF()
	jobs := mkBatch(600, 600, 600)
	res := LongestFirst(jobs, f, 0.9)
	if res.Cut != 3 {
		t.Fatalf("equal jobs: cut %d of 3", res.Cut)
	}
	for _, j := range jobs {
		if math.Abs(j.Target-jobs[0].Target) > 1e-9 {
			t.Fatal("equal jobs cut to different levels")
		}
	}
	if math.Abs(res.Quality-0.9) > 1e-6 {
		t.Fatalf("quality = %v", res.Quality)
	}
}

func TestSingleJob(t *testing.T) {
	f := paperF()
	jobs := mkBatch(800)
	res := LongestFirst(jobs, f, 0.9)
	want := f.Inverse(0.9 * f.Value(800))
	if math.Abs(jobs[0].Target-want) > 1e-6 {
		t.Fatalf("single job target = %v, want %v", jobs[0].Target, want)
	}
	if math.Abs(res.Quality-0.9) > 1e-6 {
		t.Fatalf("quality = %v", res.Quality)
	}
}

func TestConcavitySavesWork(t *testing.T) {
	// At qge=0.9 with the paper's f, the work removed should be much more
	// than 10% of the total — that asymmetry is the whole point.
	f := paperF()
	jobs := mkBatch(1000, 900, 800, 700, 600, 500)
	total := job.TotalRemaining(jobs)
	res := LongestFirst(jobs, f, 0.9)
	if res.WorkRemoved < 0.15*total {
		t.Fatalf("only %v of %v work removed at qge=0.9; concavity should buy more",
			res.WorkRemoved, total)
	}
}

func TestProcessedFloor(t *testing.T) {
	f := paperF()
	jobs := mkBatch(1000, 400)
	jobs[0].Advance(950) // almost done: cannot cut below 950
	LongestFirst(jobs, f, 0.5)
	if jobs[0].Target < 950 {
		t.Fatalf("cut below processed volume: %v", jobs[0].Target)
	}
}

func TestRunningJobContinuesWhenRemainingSmaller(t *testing.T) {
	// Paper: if the calculated demand is smaller than the remaining
	// demand, cut; otherwise continue with the remaining demand.
	f := paperF()
	jobs := mkBatch(1000, 1000)
	jobs[0].Advance(300)
	LongestFirst(jobs, f, 0.9)
	// Both jobs' targets computed from original demand; job 0's floor is
	// 300 which is below the cut level, so both share the same level.
	if math.Abs(jobs[0].Target-jobs[1].Target) > 1e-6 {
		t.Fatalf("levels differ: %v vs %v", jobs[0].Target, jobs[1].Target)
	}
}

func TestVeryLowQGECutsToFloor(t *testing.T) {
	f := paperF()
	jobs := mkBatch(500, 300)
	res := LongestFirst(jobs, f, 0.0)
	for _, j := range jobs {
		if j.Target > 1e-9 {
			t.Fatalf("qge=0 should cut to zero, got %v", j.Target)
		}
	}
	if res.Quality > 1e-9 {
		t.Fatalf("qge=0 quality = %v", res.Quality)
	}
}

func TestNegativeQGETreatedAsZero(t *testing.T) {
	jobs := mkBatch(500)
	res := LongestFirst(jobs, paperF(), -3)
	if res.Quality > 1e-9 {
		t.Fatalf("negative qge quality = %v", res.Quality)
	}
}

func TestZeroDemandBatch(t *testing.T) {
	jobs := mkBatch(0, 0)
	res := LongestFirst(jobs, paperF(), 0.9)
	if res.Quality != 1 {
		t.Fatalf("zero-demand batch quality = %v", res.Quality)
	}
}

func TestRestore(t *testing.T) {
	jobs := mkBatch(500, 800)
	LongestFirst(jobs, paperF(), 0.7)
	Restore(jobs)
	for _, j := range jobs {
		if j.Target != j.Demand {
			t.Fatalf("restore failed: %v", j)
		}
	}
}

func TestBatchQualityEdge(t *testing.T) {
	if BatchQuality(nil, paperF()) != 1 {
		t.Fatal("empty BatchQuality should be 1")
	}
}

func TestIdempotent(t *testing.T) {
	// Re-cutting an already-cut batch at the same qge must not change the
	// result (the pass restores targets before recomputing).
	f := paperF()
	jobs := mkBatch(130, 200, 350, 500, 750, 1000)
	LongestFirst(jobs, f, 0.9)
	first := make([]float64, len(jobs))
	for i, j := range jobs {
		first[i] = j.Target
	}
	LongestFirst(jobs, f, 0.9)
	for i, j := range jobs {
		if math.Abs(j.Target-first[i]) > 1e-9 {
			t.Fatalf("second pass moved job %d: %v -> %v", i, first[i], j.Target)
		}
	}
}

// Property: the achieved quality is always >= qge (within tolerance) unless
// processed floors force it higher, and never exceeds 1.
func TestQualityTargetProperty(t *testing.T) {
	f := paperF()
	r := rng.New(1)
	prop := func(qRaw uint8, nRaw uint8) bool {
		qge := 0.05 + float64(qRaw%90)/100 // 0.05 .. 0.94
		n := 1 + int(nRaw%10)
		jobs := make([]*job.Job, n)
		for i := range jobs {
			jobs[i] = job.New(i, 0, 0.15, 130+r.Float64()*870)
		}
		res := LongestFirst(jobs, f, qge)
		return res.Quality >= qge-1e-6 && res.Quality <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: invariants Processed <= Target <= Demand always hold after a
// cutting pass, even with partial progress.
func TestTargetInvariantProperty(t *testing.T) {
	f := paperF()
	r := rng.New(2)
	prop := func(qRaw uint8) bool {
		qge := float64(qRaw%101) / 100
		jobs := make([]*job.Job, 5)
		for i := range jobs {
			jobs[i] = job.New(i, 0, 0.15, 130+r.Float64()*870)
			jobs[i].Advance(r.Float64() * jobs[i].Demand)
		}
		LongestFirst(jobs, f, qge)
		for _, j := range jobs {
			if j.Target < j.Processed-1e-9 || j.Target > j.Demand+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: LF removes at least as much work as any-other-job-first removal
// achieving the same quality would — approximated by checking LF's removed
// work against a proportional cut achieving the same quality.
func TestLFBeatsProportionalCut(t *testing.T) {
	f := paperF()
	r := rng.New(3)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(8)
		demands := make([]float64, n)
		jobs := make([]*job.Job, n)
		for i := range jobs {
			demands[i] = 130 + r.Float64()*870
			jobs[i] = job.New(i, 0, 0.15, demands[i])
		}
		res := LongestFirst(jobs, f, 0.9)

		// Proportional cut: scale all jobs by the factor that achieves
		// quality exactly 0.9 (found by bisection).
		den := 0.0
		for _, d := range demands {
			den += f.Value(d)
		}
		lo, hi := 0.0, 1.0
		for iter := 0; iter < 60; iter++ {
			mid := (lo + hi) / 2
			num := 0.0
			for _, d := range demands {
				num += f.Value(mid * d)
			}
			if num/den < 0.9 {
				lo = mid
			} else {
				hi = mid
			}
		}
		propRemoved := 0.0
		for _, d := range demands {
			propRemoved += d * (1 - hi)
		}
		if res.WorkRemoved < propRemoved-1e-6 {
			t.Fatalf("trial %d: LF removed %v, proportional removed %v — LF should win",
				trial, res.WorkRemoved, propRemoved)
		}
	}
}

func BenchmarkLongestFirst(b *testing.B) {
	f := paperF()
	r := rng.New(1)
	base := make([]float64, 64)
	for i := range base {
		base[i] = 130 + r.Float64()*870
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs := make([]*job.Job, len(base))
		for k, d := range base {
			jobs[k] = job.New(k, 0, 0.15, d)
		}
		LongestFirst(jobs, f, 0.9)
	}
}
