// Package analytic provides closed-form and quadrature-based predictions
// that cross-validate the simulator:
//
//   - Capacity: the maximum sustainable request rate of an m-core server
//     under a power budget H. Because the power curve P = a·s^β is convex,
//     total throughput is maximized by running all cores at the same speed
//     s = (H/(a·m))^{1/β}, so capacity = m·rate(s)/E[D].
//
//   - CutKeepFraction: the population-level effect of LF cutting — the
//     common level L at which cutting every job above L to L yields batch
//     quality exactly Q_GE in expectation, and the fraction of total work
//     that survives. GE's effective capacity is Capacity divided by that
//     fraction, which predicts where the quality knee moves relative to
//     Best Effort (DESIGN.md §3's 167 → ~190 req/s discussion).
//
// The bounded Pareto expectations are evaluated by Simpson quadrature over
// the density p(x) = α·L^α·x^{−α−1} / (1 − (L/H)^α) on [xmin, xmax].
package analytic

import (
	"fmt"
	"math"

	"goodenough/internal/job"
	"goodenough/internal/power"
	"goodenough/internal/quality"
	"goodenough/internal/rng"
	"goodenough/internal/workload"
	"goodenough/internal/yds"
)

// Capacity returns the maximum sustainable arrival rate (requests/second)
// for the given machine and workload: equal core speeds maximize total
// throughput under a convex power curve.
func Capacity(m power.Model, cores int, budget float64, spec workload.Spec) (float64, error) {
	if cores <= 0 || budget <= 0 {
		return 0, fmt.Errorf("analytic: need positive cores and budget")
	}
	if err := m.Validate(); err != nil {
		return 0, err
	}
	mean := spec.MeanDemand()
	if mean <= 0 {
		return 0, fmt.Errorf("analytic: non-positive mean demand")
	}
	perCore := m.Speed(budget / float64(cores))
	return float64(cores) * power.Rate(perCore) / mean, nil
}

// Utilization returns offered work divided by capacity at the given rate.
func Utilization(m power.Model, cores int, budget float64, spec workload.Spec, rate float64) (float64, error) {
	cap, err := Capacity(m, cores, budget, spec)
	if err != nil {
		return 0, err
	}
	return rate / cap, nil
}

// paretoExpect integrates g(x) against the bounded Pareto density with the
// spec's parameters using Simpson's rule.
func paretoExpect(alpha, xmin, xmax float64, g func(float64) float64) float64 {
	if xmax <= xmin {
		return g(xmin)
	}
	norm := 1 - math.Pow(xmin/xmax, alpha)
	pdf := func(x float64) float64 {
		return alpha * math.Pow(xmin, alpha) * math.Pow(x, -alpha-1) / norm
	}
	const n = 4000 // even
	h := (xmax - xmin) / n
	sum := g(xmin)*pdf(xmin) + g(xmax)*pdf(xmax)
	for i := 1; i < n; i++ {
		x := xmin + float64(i)*h
		w := 4.0
		if i%2 == 0 {
			w = 2.0
		}
		sum += w * g(x) * pdf(x)
	}
	return sum * h / 3
}

// CutKeepFraction finds the population LF-cut level for target quality qge:
// the level L such that E[f(min(D, L))] = qge · E[f(D)], and returns L
// together with the surviving work fraction E[min(D, L)] / E[D].
// qge >= 1 keeps everything; qge <= 0 keeps nothing.
func CutKeepFraction(f quality.Function, spec workload.Spec, qge float64) (level, kept float64, err error) {
	if err := spec.Validate(); err != nil {
		return 0, 0, err
	}
	if len(spec.Classes) > 0 {
		return 0, 0, fmt.Errorf("analytic: mixtures not supported; analyze classes separately")
	}
	if qge >= 1 {
		return spec.Xmax, 1, nil
	}
	if qge <= 0 {
		return 0, 0, nil
	}
	alpha, xmin, xmax := spec.ParetoAlpha, spec.Xmin, spec.Xmax
	fullQ := paretoExpect(alpha, xmin, xmax, f.Value)
	target := qge * fullQ
	qualityAt := func(l float64) float64 {
		return paretoExpect(alpha, xmin, xmax, func(x float64) float64 {
			return f.Value(math.Min(x, l))
		})
	}
	lo, hi := 0.0, xmax
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if qualityAt(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	level = hi
	keptWork := paretoExpect(alpha, xmin, xmax, func(x float64) float64 {
		return math.Min(x, level)
	})
	meanWork := paretoExpect(alpha, xmin, xmax, func(x float64) float64 { return x })
	return level, keptWork / meanWork, nil
}

// EffectiveCapacity predicts where GE's quality knee sits: the raw
// capacity divided by the surviving work fraction after cutting to qge.
func EffectiveCapacity(m power.Model, cores int, budget float64, spec workload.Spec, f quality.Function, qge float64) (float64, error) {
	cap, err := Capacity(m, cores, budget, spec)
	if err != nil {
		return 0, err
	}
	_, kept, err := CutKeepFraction(f, spec, qge)
	if err != nil {
		return 0, err
	}
	if kept <= 0 {
		return math.Inf(1), nil
	}
	return cap / kept, nil
}

// MonteCarloKeepFraction estimates the surviving work fraction empirically
// by sampling the demand distribution and applying the same level cut —
// used in tests to validate the quadrature.
func MonteCarloKeepFraction(spec workload.Spec, level float64, samples int, seed uint64) float64 {
	src := rng.New(seed)
	kept, total := 0.0, 0.0
	for i := 0; i < samples; i++ {
		d := src.BoundedPareto(spec.ParetoAlpha, spec.Xmin, spec.Xmax)
		total += d
		kept += math.Min(d, level)
	}
	if total == 0 {
		return 0
	}
	return kept / total
}

// FluidLowerBound computes a clairvoyant lower bound on the dynamic energy
// needed to fully process a job set on m cores: run the textbook YDS
// optimum on the aggregate workload, then split each critical group's
// speed evenly across the m cores. Convexity gives the m^{β−1} division;
// ignoring the no-migration and one-core-per-job constraints (and assuming
// full clairvoyance) makes this a true lower bound for any online
// scheduler that completes all the work. Intended for small traces — the
// critical-interval algorithm is O(n³)-ish.
func FluidLowerBound(jobs []*job.Job, m int, model power.Model) (float64, error) {
	if m <= 0 {
		return 0, fmt.Errorf("analytic: need at least one core")
	}
	if err := model.Validate(); err != nil {
		return 0, err
	}
	groups := yds.GroupsGeneral(jobs)
	e := yds.GroupsEnergy(model, jobs, groups)
	return e / math.Pow(float64(m), model.Beta-1), nil
}
