package analytic

import (
	"math"
	"testing"

	"goodenough/internal/core"
	"goodenough/internal/job"
	"goodenough/internal/power"
	"goodenough/internal/quality"
	"goodenough/internal/sched"
	"goodenough/internal/workload"
)

func paperSpec() workload.Spec { return workload.DefaultSpec(154, 1) }

func paperF() quality.Function { return quality.NewExponential(0.003, 1000) }

func TestCapacityMatchesHandCalculation(t *testing.T) {
	// 16 cores × 2 GHz × 1000 u/GHz ÷ 192.1 units ≈ 166.6 req/s — the
	// DESIGN.md §3 number.
	cap, err := Capacity(power.Default(), 16, 320, paperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cap-166.6) > 1 {
		t.Fatalf("capacity = %v, want ~166.6", cap)
	}
}

func TestCapacityScaling(t *testing.T) {
	spec := paperSpec()
	base, _ := Capacity(power.Default(), 16, 320, spec)
	// Doubling the cores at fixed budget: per-core speed drops by √2, so
	// capacity grows by 2/√2 = √2.
	doubled, _ := Capacity(power.Default(), 32, 320, spec)
	if math.Abs(doubled/base-math.Sqrt2) > 1e-6 {
		t.Fatalf("core-doubling ratio = %v, want √2", doubled/base)
	}
	// Doubling the budget at fixed cores: speed grows by √2.
	richer, _ := Capacity(power.Default(), 16, 640, spec)
	if math.Abs(richer/base-math.Sqrt2) > 1e-6 {
		t.Fatalf("budget-doubling ratio = %v, want √2", richer/base)
	}
}

func TestCapacityValidation(t *testing.T) {
	if _, err := Capacity(power.Default(), 0, 320, paperSpec()); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := Capacity(power.Default(), 16, 0, paperSpec()); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := Capacity(power.Model{A: -1, Beta: 2}, 16, 320, paperSpec()); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestUtilization(t *testing.T) {
	u, err := Utilization(power.Default(), 16, 320, paperSpec(), 154)
	if err != nil {
		t.Fatal(err)
	}
	// 154/166.6 ≈ 0.924 — the value DESIGN.md quotes against the paper's
	// claimed 77.8%.
	if math.Abs(u-0.924) > 0.01 {
		t.Fatalf("utilization at 154 = %v, want ~0.924", u)
	}
}

func TestCutKeepFractionEdges(t *testing.T) {
	f := paperF()
	spec := paperSpec()
	level, kept, err := CutKeepFraction(f, spec, 1)
	if err != nil || level != spec.Xmax || kept != 1 {
		t.Fatalf("qge=1: level=%v kept=%v err=%v", level, kept, err)
	}
	level, kept, err = CutKeepFraction(f, spec, 0)
	if err != nil || level != 0 || kept != 0 {
		t.Fatalf("qge=0: level=%v kept=%v err=%v", level, kept, err)
	}
}

func TestCutKeepFractionMonotone(t *testing.T) {
	f := paperF()
	spec := paperSpec()
	prevKept := -1.0
	for _, qge := range []float64{0.5, 0.7, 0.8, 0.9, 0.95, 0.99} {
		_, kept, err := CutKeepFraction(f, spec, qge)
		if err != nil {
			t.Fatal(err)
		}
		if kept <= prevKept {
			t.Fatalf("kept fraction not increasing in qge at %v", qge)
		}
		if kept <= 0 || kept > 1 {
			t.Fatalf("kept fraction out of range: %v", kept)
		}
		prevKept = kept
	}
}

func TestCutKeepFractionConcavityAdvantage(t *testing.T) {
	// At qge=0.9 the concave quality function should let GE discard far
	// more than 10% of the work.
	_, kept, err := CutKeepFraction(paperF(), paperSpec(), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if kept > 0.95 {
		t.Fatalf("kept = %v; concavity should allow real savings", kept)
	}
	if kept < 0.5 {
		t.Fatalf("kept = %v; cutting this deep would break quality", kept)
	}
}

func TestQuadratureMatchesMonteCarlo(t *testing.T) {
	f := paperF()
	spec := paperSpec()
	level, kept, err := CutKeepFraction(f, spec, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	mc := MonteCarloKeepFraction(spec, level, 400000, 7)
	if math.Abs(mc-kept) > 0.01 {
		t.Fatalf("quadrature kept=%v vs Monte Carlo %v", kept, mc)
	}
}

func TestCutKeepFractionRejectsMixtures(t *testing.T) {
	spec := paperSpec()
	spec.Classes = []workload.Class{{Name: "x", Weight: 1, ParetoAlpha: 3,
		Xmin: 130, Xmax: 1000, Window: 0.15}}
	if _, _, err := CutKeepFraction(paperF(), spec, 0.9); err == nil {
		t.Fatal("mixture accepted")
	}
}

func TestEffectiveCapacityPredictsGEKnee(t *testing.T) {
	// The headline theory-vs-simulation check: GE's quality knee should
	// sit near Capacity / keptFraction.
	f := paperF()
	spec := paperSpec()
	eff, err := EffectiveCapacity(power.Default(), 16, 320, spec, f, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if eff < 175 || eff > 215 {
		t.Fatalf("predicted GE knee = %v req/s, outside the plausible band", eff)
	}
	// Locate the simulated knee: the first rate where GE quality drops
	// 0.5% below target.
	knee := 0.0
	for rate := 160.0; rate <= 230; rate += 10 {
		wspec := workload.DefaultSpec(rate, 3)
		wspec.Duration = 25
		r, err := sched.NewRunner(sched.Defaults(), core.NewGE(0.9), wspec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Quality < 0.895 {
			knee = rate
			break
		}
	}
	if knee == 0 {
		t.Fatal("simulated GE never dipped below target up to 230 req/s")
	}
	if math.Abs(knee-eff) > 25 {
		t.Fatalf("simulated knee %v vs predicted %v — theory and simulator disagree", knee, eff)
	}
}

func TestEffectiveCapacityExtremes(t *testing.T) {
	f := paperF()
	spec := paperSpec()
	full, _ := EffectiveCapacity(power.Default(), 16, 320, spec, f, 1)
	raw, _ := Capacity(power.Default(), 16, 320, spec)
	if math.Abs(full-raw) > 1e-6 {
		t.Fatalf("qge=1 effective capacity %v should equal raw %v", full, raw)
	}
	zero, _ := EffectiveCapacity(power.Default(), 16, 320, spec, f, 0)
	if !math.IsInf(zero, 1) {
		t.Fatalf("qge=0 effective capacity = %v, want +Inf", zero)
	}
}

func TestFluidLowerBoundValidation(t *testing.T) {
	if _, err := FluidLowerBound(nil, 0, power.Default()); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := FluidLowerBound(nil, 4, power.Model{A: -1, Beta: 2}); err == nil {
		t.Error("invalid model accepted")
	}
	e, err := FluidLowerBound(nil, 4, power.Default())
	if err != nil || e != 0 {
		t.Fatalf("empty bound = %v, %v", e, err)
	}
}

func TestFluidLowerBoundSingleJob(t *testing.T) {
	// One 2000-unit job over 1 s on 4 cores: fluid optimum runs four cores
	// at 0.5 GHz → power 4·5·0.25 = 5 W → 5 J. The single-core YDS energy
	// is 5·2²·1 = 20 J; dividing by m^{β−1} = 4 gives exactly 5.
	j := job.New(1, 0, 1, 2000)
	e, err := FluidLowerBound([]*job.Job{j}, 4, power.Default())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-5) > 1e-9 {
		t.Fatalf("fluid bound = %v, want 5", e)
	}
}

func TestBEEnergyAboveFluidBound(t *testing.T) {
	// Best Effort completes (nearly) everything; its measured energy must
	// sit above the clairvoyant fluid bound for the same trace.
	spec := workload.DefaultSpec(30, 5) // light load so BE finishes all work
	spec.Duration = 2
	jobs := workload.NewGenerator(spec).All()
	tr := workload.Record(jobs, &spec, "")

	bound, err := FluidLowerBound(jobs, 16, power.Default())
	if err != nil {
		t.Fatal(err)
	}
	if bound <= 0 {
		t.Fatalf("degenerate bound %v", bound)
	}

	src, err := workload.NewReplayer(tr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sched.NewRunnerFromSource(sched.Defaults(), core.NewBE(), src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality < 0.999 {
		t.Fatalf("BE did not complete the light trace: quality %v", res.Quality)
	}
	if res.Energy < bound*(1-1e-9) {
		t.Fatalf("BE energy %v beat the clairvoyant lower bound %v — bound or simulator broken",
			res.Energy, bound)
	}
	// Sanity: BE shouldn't be wildly above the bound at light load either
	// (no-migration + online-ness costs something, not orders of
	// magnitude).
	if res.Energy > bound*25 {
		t.Fatalf("BE energy %v implausibly far above bound %v", res.Energy, bound)
	}
}
