// Package metrics records per-run time series: the online quality, the
// instantaneous power draw, the execution mode, per-core speeds, energy,
// and queueing state sampled at scheduling events. The timeline is what
// turns a single Result number into an explainable trajectory — e.g.
// watching the compensation policy pull quality back up to Q_GE after a
// burst. (Structured per-event observability lives in internal/obs; the
// timeline is the thinned, fixed-cadence view.)
package metrics

import (
	"fmt"
	"io"

	"goodenough/internal/plot"
)

// Sample is one observation of the running system.
type Sample struct {
	// Time is the simulation time in seconds.
	Time float64
	// Quality is the cumulative achieved quality at that instant.
	Quality float64
	// Power is the instantaneous total dynamic power draw in watts.
	Power float64
	// Load is the total remaining target work queued on the cores.
	Load float64
	// Waiting is the number of unassigned jobs.
	Waiting int
	// AES reports the execution mode (true = Aggressive Energy Saving).
	AES bool
	// Speeds holds each core's instantaneous executing speed in GHz
	// (0 = idle). May be nil when the recorder does not track cores.
	Speeds []float64
	// Energy is the cumulative dynamic energy consumed so far in joules.
	Energy float64
}

// Timeline collects samples, thinning to at most one per `interval`
// simulated seconds (0 keeps every sample). The most recent thinned-away
// sample is retained as pending so Flush can preserve the trajectory's
// final point regardless of the interval.
type Timeline struct {
	interval float64
	samples  []Sample
	hasLast  bool
	lastTime float64

	pending    Sample
	hasPending bool
}

// NewTimeline builds a recorder with the given thinning interval.
func NewTimeline(interval float64) *Timeline {
	if interval < 0 {
		interval = 0
	}
	return &Timeline{interval: interval}
}

// Record appends a sample, unless it falls within the thinning interval of
// the previous one. A thinned sample is kept as the pending endpoint so a
// final Flush never loses the end of the run.
func (t *Timeline) Record(s Sample) {
	if t.hasLast && t.interval > 0 && s.Time < t.lastTime+t.interval {
		t.pending = s
		t.hasPending = true
		return
	}
	t.append(s)
}

// Force appends a sample regardless of thinning.
func (t *Timeline) Force(s Sample) { t.append(s) }

// Flush appends the most recent thinned-away sample, if any — call at the
// end of a run so the final state is always retained regardless of the
// thinning interval.
func (t *Timeline) Flush() {
	if t.hasPending {
		t.append(t.pending)
	}
}

func (t *Timeline) append(s Sample) {
	t.samples = append(t.samples, s)
	t.hasLast = true
	t.lastTime = s.Time
	t.hasPending = false
}

// Samples returns the recorded series (not a copy; treat as read-only).
func (t *Timeline) Samples() []Sample { return t.samples }

// Len returns the number of recorded samples.
func (t *Timeline) Len() int { return len(t.samples) }

// Series extracts one named metric as a plot.Series.
// Valid names: "quality", "power", "load", "waiting", "aes", "energy".
func (t *Timeline) Series(name string) (plot.Series, error) {
	xs := make([]float64, len(t.samples))
	ys := make([]float64, len(t.samples))
	for i, s := range t.samples {
		xs[i] = s.Time
		switch name {
		case "quality":
			ys[i] = s.Quality
		case "power":
			ys[i] = s.Power
		case "load":
			ys[i] = s.Load
		case "waiting":
			ys[i] = float64(s.Waiting)
		case "aes":
			if s.AES {
				ys[i] = 1
			}
		case "energy":
			ys[i] = s.Energy
		default:
			return plot.Series{}, fmt.Errorf("metrics: unknown series %q", name)
		}
	}
	return plot.Series{Label: name, X: xs, Y: ys}, nil
}

// WriteCSV emits the full timeline. The fixed columns are
// time_s,quality,power_w,load_units,waiting,aes,energy_j; when the samples
// carry per-core speeds, one speed_cN_ghz column per core follows (the
// width is taken from the first sample).
func (t *Timeline) WriteCSV(w io.Writer) error {
	cores := 0
	if len(t.samples) > 0 {
		cores = len(t.samples[0].Speeds)
	}
	header := "time_s,quality,power_w,load_units,waiting,aes,energy_j"
	for i := 0; i < cores; i++ {
		header += fmt.Sprintf(",speed_c%d_ghz", i)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, s := range t.samples {
		aes := 0
		if s.AES {
			aes = 1
		}
		if _, err := fmt.Fprintf(w, "%.6f,%.6f,%.3f,%.1f,%d,%d,%.3f",
			s.Time, s.Quality, s.Power, s.Load, s.Waiting, aes, s.Energy); err != nil {
			return err
		}
		for i := 0; i < cores; i++ {
			v := 0.0
			if i < len(s.Speeds) {
				v = s.Speeds[i]
			}
			if _, err := fmt.Fprintf(w, ",%.4f", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
