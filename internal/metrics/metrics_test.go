package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestTimelineThinning(t *testing.T) {
	tl := NewTimeline(1.0)
	for i := 0; i < 100; i++ {
		tl.Record(Sample{Time: float64(i) * 0.1, Quality: 0.9})
	}
	// 10 s of samples at 0.1 s spacing thinned to >= 1 s apart → ~10.
	if tl.Len() > 11 || tl.Len() < 9 {
		t.Fatalf("thinned to %d samples, want ~10", tl.Len())
	}
	prev := -10.0
	for _, s := range tl.Samples() {
		if s.Time-prev < 1.0-1e-9 {
			t.Fatalf("samples closer than the interval: %v after %v", s.Time, prev)
		}
		prev = s.Time
	}
}

func TestTimelineNoThinning(t *testing.T) {
	tl := NewTimeline(0)
	for i := 0; i < 50; i++ {
		tl.Record(Sample{Time: float64(i) * 0.001})
	}
	if tl.Len() != 50 {
		t.Fatalf("unthinned timeline dropped samples: %d", tl.Len())
	}
}

func TestTimelineForce(t *testing.T) {
	tl := NewTimeline(10)
	tl.Record(Sample{Time: 0})
	tl.Record(Sample{Time: 1}) // thinned away
	tl.Force(Sample{Time: 1})  // forced in
	if tl.Len() != 2 {
		t.Fatalf("force failed: %d samples", tl.Len())
	}
}

func TestTimelineNegativeIntervalClamped(t *testing.T) {
	tl := NewTimeline(-5)
	tl.Record(Sample{Time: 0})
	tl.Record(Sample{Time: 0})
	if tl.Len() != 2 {
		t.Fatal("negative interval should behave like 0")
	}
}

func TestSeriesExtraction(t *testing.T) {
	tl := NewTimeline(0)
	tl.Record(Sample{Time: 1, Quality: 0.9, Power: 100, Load: 500, Waiting: 3, AES: true})
	tl.Record(Sample{Time: 2, Quality: 0.8, Power: 200, Load: 700, Waiting: 5, AES: false})
	cases := map[string][]float64{
		"quality": {0.9, 0.8},
		"power":   {100, 200},
		"load":    {500, 700},
		"waiting": {3, 5},
		"aes":     {1, 0},
	}
	for name, want := range cases {
		s, err := tl.Series(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Y[0] != want[0] || s.Y[1] != want[1] {
			t.Fatalf("%s series = %v, want %v", name, s.Y, want)
		}
		if s.X[0] != 1 || s.X[1] != 2 {
			t.Fatalf("%s x axis = %v", name, s.X)
		}
	}
	if _, err := tl.Series("nope"); err == nil {
		t.Fatal("unknown series accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	tl := NewTimeline(0)
	tl.Record(Sample{Time: 0.5, Quality: 0.95, Power: 120.5, Load: 800, Waiting: 2, AES: true,
		Energy: 42.125, Speeds: []float64{2.5, 0}})
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time_s,quality,power_w,load_units,waiting,aes,energy_j,speed_c0_ghz,speed_c1_ghz\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "0.500000,0.950000,120.500,800.0,2,1,42.125,2.5000,0.0000") {
		t.Fatalf("row wrong:\n%s", out)
	}
}

func TestWriteCSVNoSpeeds(t *testing.T) {
	tl := NewTimeline(0)
	tl.Record(Sample{Time: 1, Quality: 0.9})
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "time_s,quality,power_w,load_units,waiting,aes,energy_j\n") {
		t.Fatalf("speed-free header wrong:\n%s", buf.String())
	}
}

// TestTimelineFlushKeepsFinalSample is the regression test for the thinning
// bug: with a coarse interval, the last sample of a run used to vanish, so
// trajectories appeared to end early. Flush must retain it.
func TestTimelineFlushKeepsFinalSample(t *testing.T) {
	tl := NewTimeline(10)
	tl.Record(Sample{Time: 0, Quality: 0.5})
	tl.Record(Sample{Time: 1, Quality: 0.6}) // thinned
	tl.Record(Sample{Time: 2, Quality: 0.7}) // thinned; pending endpoint
	tl.Flush()
	if tl.Len() != 2 {
		t.Fatalf("got %d samples, want 2 (first + flushed final)", tl.Len())
	}
	last := tl.Samples()[tl.Len()-1]
	if last.Time != 2 || last.Quality != 0.7 {
		t.Fatalf("final sample lost: got %+v", last)
	}
	// A second Flush must not duplicate it.
	tl.Flush()
	if tl.Len() != 2 {
		t.Fatalf("double Flush duplicated the endpoint: %d samples", tl.Len())
	}
}

func TestTimelineFlushNoPending(t *testing.T) {
	tl := NewTimeline(1)
	tl.Record(Sample{Time: 0})
	tl.Flush() // nothing pending: the only sample was recorded
	if tl.Len() != 1 {
		t.Fatalf("flush with nothing pending appended: %d samples", tl.Len())
	}
}

func TestEnergySeries(t *testing.T) {
	tl := NewTimeline(0)
	tl.Record(Sample{Time: 1, Energy: 10})
	tl.Record(Sample{Time: 2, Energy: 30})
	s, err := tl.Series("energy")
	if err != nil {
		t.Fatal(err)
	}
	if s.Y[0] != 10 || s.Y[1] != 30 {
		t.Fatalf("energy series = %v", s.Y)
	}
}
