package cluster

import (
	"reflect"
	"testing"
)

// fakeView is a scripted fleet state for dispatcher unit tests.
type fakeView struct {
	eligible []bool
	queued   []float64
	idle     []bool
	capacity []float64
}

func (v *fakeView) Machines() int            { return len(v.eligible) }
func (v *fakeView) Eligible(m int) bool      { return v.eligible[m] }
func (v *fakeView) QueuedWork(m int) float64 { return v.queued[m] }
func (v *fakeView) HasIdleCore(m int) bool   { return v.idle[m] }
func (v *fakeView) Capacity(m int) float64   { return v.capacity[m] }

func TestNewDispatcherNames(t *testing.T) {
	for _, name := range Policies() {
		d, err := NewDispatcher(name, 2, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "p2c" {
			if d.Name() != "p2c" {
				t.Fatalf("p2c named %q", d.Name())
			}
		} else if d.Name() != name {
			t.Fatalf("policy %q reports name %q", name, d.Name())
		}
	}
	if _, err := NewDispatcher("oracle", 2, 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if d, _ := NewDispatcher("p2c", 5, 1); d.Name() != "p5c" {
		t.Fatalf("k=5 dispatcher named %q, want p5c", d.Name())
	}
}

func TestRoundRobinSkipsUnreachable(t *testing.T) {
	d, _ := NewDispatcher("rr", 2, 1)
	d.Reset()
	v := &fakeView{
		eligible: []bool{true, false, true},
		queued:   []float64{0, 0, 0},
		idle:     []bool{true, true, true},
		capacity: []float64{1, 1, 1},
	}
	var picks []int
	for i := 0; i < 4; i++ {
		m, _, ok := d.Pick(v)
		if !ok {
			t.Fatal("no pick despite eligible machines")
		}
		picks = append(picks, m)
	}
	if want := []int{0, 2, 0, 2}; !reflect.DeepEqual(picks, want) {
		t.Fatalf("rr picks = %v, want %v", picks, want)
	}
	v.eligible = []bool{false, false, false}
	if _, _, ok := d.Pick(v); ok {
		t.Fatal("picked a machine with none eligible")
	}
}

func TestLeastLoadedPicksMinimum(t *testing.T) {
	d, _ := NewDispatcher("least-loaded", 2, 1)
	v := &fakeView{
		eligible: []bool{true, true, true},
		queued:   []float64{5, 2, 9},
		idle:     []bool{false, false, false},
		capacity: []float64{1, 1, 1},
	}
	m, score, ok := d.Pick(v)
	if !ok || m != 1 || score != 2 {
		t.Fatalf("pick = (%d, %v, %v), want machine 1 at load 2", m, score, ok)
	}
	v.eligible[1] = false
	if m, _, _ := d.Pick(v); m != 0 {
		t.Fatalf("pick = %d with machine 1 unreachable, want 0", m)
	}
}

func TestPowerOfKPrefersIdleAndInvalidatesLazily(t *testing.T) {
	d, _ := NewDispatcher("p2c", 2, 1)
	d.Reset()
	v := &fakeView{
		eligible: []bool{true, true, true},
		queued:   []float64{4, 1, 3},
		idle:     []bool{false, true, false},
		capacity: []float64{1, 1, 1},
	}
	n := d.(idleNotifier)
	n.NoteIdle(1)
	n.NoteIdle(2)
	n.NoteIdle(2) // duplicate must not double-enter the heap

	// Machine 1 is idle and first in the heap.
	if m, _, ok := d.Pick(v); !ok || m != 1 {
		t.Fatalf("pick = %d, want idle machine 1", m)
	}
	// Machine 2's idleness went stale: the pop must re-check the live view
	// and fall through to sampling instead of routing on stale state.
	v.idle[1] = false
	m, _, ok := d.Pick(v)
	if !ok {
		t.Fatal("no pick despite eligible machines")
	}
	if v.idle[m] {
		t.Fatalf("sampled pick %d claims idleness the view does not show", m)
	}
}

func TestPowerOfKDeterministicSampling(t *testing.T) {
	v := &fakeView{
		eligible: []bool{true, true, true, true, true},
		queued:   []float64{5, 4, 3, 2, 1},
		idle:     []bool{false, false, false, false, false},
		capacity: []float64{1, 1, 1, 1, 1},
	}
	run := func() []int {
		d, _ := NewDispatcher("p2c", 2, 77)
		d.Reset()
		var picks []int
		for i := 0; i < 16; i++ {
			m, _, ok := d.Pick(v)
			if !ok {
				t.Fatal("no pick")
			}
			picks = append(picks, m)
		}
		return picks
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed sampled differently:\n%v\n%v", a, b)
	}
}

func TestIdealWeighsDegradedCapacity(t *testing.T) {
	d, _ := NewDispatcher("ideal", 2, 1)
	// Machine 0 has less queued work, but machine 1 drains faster: 4/1 = 4
	// vs 6/3 = 2. Only the omniscient baseline sees the capacities.
	v := &fakeView{
		eligible: []bool{true, true},
		queued:   []float64{4, 6},
		idle:     []bool{false, false},
		capacity: []float64{1, 3},
	}
	if m, _, _ := d.Pick(v); m != 1 {
		t.Fatalf("ideal picked %d, want 1 (shorter drain time)", m)
	}
	// A zero-capacity machine (all cores dead but not crashed) is a last
	// resort, never preferred.
	v.capacity = []float64{0, 3}
	if m, _, _ := d.Pick(v); m != 1 {
		t.Fatalf("ideal picked zero-capacity machine %d", m)
	}
}
