// Shard execution: the fleet's machines are partitioned into K contiguous
// shards, each owning a private sim.Engine that advances its machines
// independently between global barriers.
//
// The run alternates two phases. In the *global phase* (main goroutine) the
// dispatcher processes arrivals, routing decisions, parked-job deadlines,
// quantum ticks, and machine faults in one globally ordered stream. Routing
// a job schedules a push event on the target machine's shard heap. In the
// *shard phase*, every shard drains its heap up to the next barrier instant
// — workers in parallel when K > 1, inline when K == 1 — delivering pushes,
// per-core idle wakeups, and per-job deadline watches to its own machines
// only. Machines in different shards never share mutable state, and only
// machines with due events are touched: a quiescent node costs zero.
//
// Determinism for every K rests on three invariants. (1) The barrier
// instants — quantum ticks, machine faults, end of run — come from the
// global stream alone, so every K advances every machine through the same
// sequence of clock stops. (2) A machine's progression depends only on
// events addressed to it, which are identical for every K; within one shard
// heap, (time, kind-priority, seq) ordering reduces to per-machine delivery
// order because same-instant cross-machine events are independent. (3) All
// cross-machine effects — observer events, decision records, response-time
// samples, quality accumulation, job recycling — are buffered per machine
// and replayed at the barrier flush in machine-index order, so merged
// streams and float accumulation order never depend on the shard layout.
package cluster

import (
	"sync"

	"goodenough/internal/job"
	"goodenough/internal/sched"
	"goodenough/internal/sim"
)

// shard owns a contiguous slice of the fleet's machines and a private event
// heap. During a shard phase exactly one goroutine runs the shard; between
// phases the main goroutine owns everything (the sync.WaitGroup in
// runShards orders the hand-offs).
type shard struct {
	idx    int
	fleet  *Fleet
	engine *sim.Engine
	nodes  []*node
	err    error

	// inbox carries routed jobs from the global phase to this shard's
	// machines. Push events index into it via Ref; head marks the next
	// undelivered slot, and the ring resets whenever it fully drains, so
	// steady state reuses one backing array.
	inbox     []*job.Job
	inboxHead int
}

// push schedules delivery of a routed job to machine n at time now, plus a
// deadline watch at the job's deadline. The watch is scheduled here — not
// only at first dispatch — so a job re-routed across shards still expires
// on time; a stale watch on a machine the job has left is a no-op.
func (s *shard) push(now float64, n *node, j *job.Job) error {
	if s.inboxHead == len(s.inbox) {
		s.inbox = s.inbox[:0]
		s.inboxHead = 0
	}
	s.inbox = append(s.inbox, j)
	if _, err := s.engine.ScheduleCoreRef(now, sim.KindArrival, n.idx, len(s.inbox)-1); err != nil {
		return err
	}
	_, err := s.engine.ScheduleCoreRef(j.Deadline, sim.KindDeadline, -1, n.idx)
	return err
}

// handle is the shard-phase event dispatcher. Everything it touches is
// owned by this shard's machines (or buffered per node for the barrier
// flush), so shards never contend.
func (s *shard) handle(e *sim.Event) error {
	f := s.fleet
	now := e.Time
	switch e.Kind {
	case sim.KindArrival: // routed job delivery; Core = machine, Ref = inbox slot
		j := s.inbox[s.inboxHead]
		s.inbox[s.inboxHead] = nil
		s.inboxHead++
		n := f.nodes[e.Core]
		if err := f.catchUp(n, now); err != nil {
			return err
		}
		n.wait.Push(j)
		n.noteArrival(now, f.nodeCfg.RateWindow)
		n.inflightQW -= j.Remaining()
		if n.inflightJobs--; n.inflightJobs <= 0 {
			n.inflightJobs = 0
			n.inflightQW = 0 // clamp accumulated float error at quiescence
		}
		n.dirty = true
		if !n.up {
			// Routed at the same instant the machine crashed; it waits in
			// queue (expiring on its deadline watch) until recovery.
			return nil
		}
		if n.wait.Len() >= f.nodeCfg.CounterTrigger {
			return f.invoke(n, now, sched.TriggerCounter)
		}
		if n.anyIdleCore() {
			return f.invoke(n, now, sched.TriggerIdleCore)
		}

	case sim.KindCoreIdle: // projected core drain; Core = core, Ref = machine
		n := f.nodes[e.Ref]
		n.idleEvents[e.Core] = 0
		if n.up && n.server.Cores[e.Core].Idle() && n.server.Cores[e.Core].Healthy() {
			if err := f.invoke(n, now, sched.TriggerIdleCore); err != nil {
				return err
			}
			n.idleNote = true
		}

	case sim.KindDeadline: // deadline watch; Ref = machine
		// Catching up runs queue expiry; a watch for a job that already
		// completed or moved elsewhere finds nothing expired.
		return f.catchUp(f.nodes[e.Ref], now)
	}
	return nil
}

// runShards runs fn over every shard — one goroutine per shard when K > 1,
// inline when K == 1 — and returns the first error by shard index.
func (f *Fleet) runShards(fn func(*shard) error) error {
	if len(f.shards) == 1 {
		return fn(f.shards[0])
	}
	var wg sync.WaitGroup
	for _, s := range f.shards {
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			s.err = fn(s)
		}(s)
	}
	wg.Wait()
	for _, s := range f.shards {
		if s.err != nil {
			return s.err
		}
	}
	return nil
}

// shardPhase drains every shard heap up to (strictly before) the barrier
// instant.
func (f *Fleet) shardPhase(until float64) error {
	return f.runShards(func(s *shard) error { return s.engine.RunUntil(until) })
}

// barrier synchronizes the fleet at a global instant: every shard drains to
// it, then buffered cross-machine effects are applied in machine-index
// order, so the caller (quantum tick, machine fault) sees exact,
// merge-ordered state.
func (f *Fleet) barrier(now float64) error {
	if err := f.shardPhase(now); err != nil {
		return err
	}
	f.flush()
	return nil
}

// quantumFanout invokes every up machine's policy at a quantum tick —
// shard-parallel, since invocations only touch node-local state.
func (f *Fleet) quantumFanout(now float64) error {
	return f.runShards(func(s *shard) error {
		for _, n := range s.nodes {
			if n.up {
				if err := f.invoke(n, now, sched.TriggerQuantum); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// flush drains every machine's epoch buffers in machine-index order:
// observer events, decision records, finalization accounting (responses,
// fleet quality, job recycling), idle notes, and cached-view refreshes.
// This is the deterministic merge — the only place shard-phase effects
// become globally visible.
func (f *Fleet) flush() {
	for _, n := range f.nodes {
		if len(n.evbuf) > 0 {
			for i := range n.evbuf {
				f.obs.Observe(n.evbuf[i])
			}
			n.evbuf = n.evbuf[:0]
		}
		if len(n.decbuf) > 0 {
			for i := range n.decbuf {
				f.decisions.ObserveDecision(n.decbuf[i])
			}
			n.decbuf = n.decbuf[:0]
		}
		if len(n.finbuf) > 0 {
			for i := range n.finbuf {
				r := &n.finbuf[i]
				f.acc.Add(r.processed, r.demand)
				f.finalized++
				if r.completed {
					f.responses = append(f.responses, r.response)
				}
				f.recycle(r.j)
				r.j = nil
			}
			n.finbuf = n.finbuf[:0]
		}
		if n.idleNote {
			n.idleNote = false
			f.noteIdleNow(n)
		}
		if n.dirty {
			n.dirty = false
			f.refreshView(n)
		}
	}
}
