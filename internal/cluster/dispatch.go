package cluster

import (
	"fmt"
	"sort"

	"goodenough/internal/machine"
	"goodenough/internal/power"
	"goodenough/internal/rng"
)

// View is the dispatcher's window onto the fleet. Health-aware policies see
// reachability (up and not partitioned) plus cheap load signals; the
// omniscient ideal baseline additionally reads the true instantaneous
// capacity, including degradations a real dispatcher could not observe.
type View interface {
	// Machines returns the fleet size.
	Machines() int
	// Eligible reports whether machine m can receive work: up and
	// reachable from the dispatcher.
	Eligible(m int) bool
	// QueuedWork returns the remaining processing units queued on machine
	// m (waiting plus planned), the load signal health-aware policies key
	// on.
	QueuedWork(m int) float64
	// HasIdleCore reports whether machine m has at least one healthy idle
	// core right now.
	HasIdleCore(m int) bool
	// Capacity returns machine m's sustainable processing rate under its
	// *current* (possibly degraded) power budget — omniscient information
	// reserved for the ideal baseline.
	Capacity(m int) float64
}

// Dispatcher picks the machine a job is routed to. Implementations must be
// deterministic: the same View state and call sequence yields the same
// picks (randomized policies draw from a seeded stream).
type Dispatcher interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick returns the chosen machine index and the score it was chosen
	// on, or ok=false when no machine is eligible (the job parks at the
	// dispatcher until one recovers).
	Pick(v View) (m int, score float64, ok bool)
	// Reset clears cross-run state (cursors, heaps, rng).
	Reset()
}

// idleNotifier is implemented by dispatchers that maintain an idle-machine
// heap; the fleet calls NoteIdle when a machine gains an idle healthy core.
type idleNotifier interface {
	NoteIdle(m int)
}

// eligibleIndex is implemented by Views that maintain the eligible-machine
// set incrementally (updated on fault transitions, not per pick), so
// sampling policies can draw from it in O(1) instead of scanning all N
// machines per dispatch.
type eligibleIndex interface {
	// EligibleCount returns the number of eligible machines.
	EligibleCount() int
	// EligibleAt returns the machine at the given rank in [0,
	// EligibleCount()). Rank order is arbitrary but deterministic.
	EligibleAt(rank int) int
}

// drainIndex is implemented by Views that maintain the queued-work/capacity
// drain scores in an indexed min-heap, keeping the omniscient ideal
// baseline O(log N) per routing change instead of O(N) per pick.
type drainIndex interface {
	// BestDrain returns the eligible machine with the minimum
	// queued-work/capacity score (ties to the lower index), or ok=false
	// when none is eligible.
	BestDrain() (m int, score float64, ok bool)
}

// Policies lists the accepted dispatch policy names.
func Policies() []string { return []string{"rr", "least-loaded", "p2c", "ideal"} }

// NewDispatcher builds the named policy. k parameterizes power-of-k-choices
// (values < 2 default to 2); seed feeds its sampling stream.
func NewDispatcher(name string, k int, seed uint64) (Dispatcher, error) {
	switch name {
	case "rr":
		return &roundRobin{}, nil
	case "least-loaded":
		return &leastLoaded{}, nil
	case "p2c":
		if k < 2 {
			k = 2
		}
		return &powerOfK{k: k, seed: seed}, nil
	case "ideal":
		return &ideal{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown dispatch policy %q (valid: %v)", name, Policies())
	}
}

// roundRobin cycles through the machines, skipping unreachable ones — the
// fleet analogue of the paper's C-RR core assignment.
type roundRobin struct {
	next int
}

func (r *roundRobin) Name() string { return "rr" }
func (r *roundRobin) Reset()       { r.next = 0 }

func (r *roundRobin) Pick(v View) (int, float64, bool) {
	n := v.Machines()
	for i := 0; i < n; i++ {
		m := (r.next + i) % n
		if v.Eligible(m) {
			r.next = (m + 1) % n
			return m, v.QueuedWork(m), true
		}
	}
	return -1, 0, false
}

// leastLoaded routes to the reachable machine with the least queued work,
// breaking ties by index.
type leastLoaded struct{}

func (l *leastLoaded) Name() string { return "least-loaded" }
func (l *leastLoaded) Reset()       {}

func (l *leastLoaded) Pick(v View) (int, float64, bool) {
	best, bestScore := -1, 0.0
	for m := 0; m < v.Machines(); m++ {
		if !v.Eligible(m) {
			continue
		}
		s := v.QueuedWork(m)
		if best < 0 || s < bestScore {
			best, bestScore = m, s
		}
	}
	return best, bestScore, best >= 0
}

// powerOfK is power-of-k-choices over an idle-machine heap: a job goes to
// the lowest-indexed machine known to have an idle core; only when no
// machine is idle does the policy sample k reachable machines from its
// seeded stream and take the least loaded — the classic two-level structure
// of mine-lb-style dispatchers. The heap is lazily invalidated: entries are
// re-checked against the live View on pop, so stale idleness never
// misroutes.
type powerOfK struct {
	k    int
	seed uint64
	src  *rng.Source

	heap   []int
	inHeap []bool

	scratch []int
}

func (p *powerOfK) Name() string { return fmt.Sprintf("p%dc", p.k) }

func (p *powerOfK) Reset() {
	p.src = rng.New(p.seed ^ 0xd15Fa7c4)
	p.heap = p.heap[:0]
	p.inHeap = nil
}

// NoteIdle implements idleNotifier.
func (p *powerOfK) NoteIdle(m int) {
	for len(p.inHeap) <= m {
		p.inHeap = append(p.inHeap, false)
	}
	if p.inHeap[m] {
		return
	}
	p.inHeap[m] = true
	p.heap = append(p.heap, m)
	sort.Ints(p.heap) // tiny; keeps pops deterministic by index
}

func (p *powerOfK) Pick(v View) (int, float64, bool) {
	// Drain the idle heap first, discarding entries that are no longer
	// idle or reachable.
	for len(p.heap) > 0 {
		m := p.heap[0]
		p.heap = p.heap[1:]
		p.inHeap[m] = false
		if v.Eligible(m) && v.HasIdleCore(m) {
			return m, 0, true
		}
	}
	// No idle machine known: sample k distinct reachable machines and take
	// the least loaded. With an eligibility index the sample is drawn by
	// rank in O(k); otherwise fall back to collecting the eligible list.
	if ei, ok := v.(eligibleIndex); ok {
		n := ei.EligibleCount()
		if n == 0 {
			return -1, 0, false
		}
		k := p.k
		if k > n {
			k = n
		}
		p.scratch = p.scratch[:0]
		for len(p.scratch) < k {
			r := p.src.Intn(n)
			dup := false
			for _, seen := range p.scratch {
				if seen == r {
					dup = true
					break
				}
			}
			if !dup {
				p.scratch = append(p.scratch, r)
			}
		}
		best, bestScore := -1, 0.0
		for _, r := range p.scratch {
			m := ei.EligibleAt(r)
			s := v.QueuedWork(m)
			if best < 0 || s < bestScore || (s == bestScore && m < best) {
				best, bestScore = m, s
			}
		}
		return best, bestScore, true
	}
	p.scratch = p.scratch[:0]
	for m := 0; m < v.Machines(); m++ {
		if v.Eligible(m) {
			p.scratch = append(p.scratch, m)
		}
	}
	n := len(p.scratch)
	if n == 0 {
		return -1, 0, false
	}
	k := p.k
	if k > n {
		k = n
	}
	// Partial Fisher–Yates over the eligible list: the first k entries
	// become the sample.
	for i := 0; i < k; i++ {
		j := i + p.src.Intn(n-i)
		p.scratch[i], p.scratch[j] = p.scratch[j], p.scratch[i]
	}
	best, bestScore := -1, 0.0
	for _, m := range p.scratch[:k] {
		s := v.QueuedWork(m)
		if best < 0 || s < bestScore || (s == bestScore && m < best) {
			best, bestScore = m, s
		}
	}
	return best, bestScore, true
}

// ideal is the omniscient baseline: it weighs each reachable machine's
// queued work against its true current capacity — including degradations
// the dispatcher could not actually see — and routes to the machine with
// the shortest expected drain time. No deployable policy has this
// information; the gap to ideal is each policy's routing regret.
type ideal struct{}

func (i *ideal) Name() string { return "ideal" }
func (i *ideal) Reset()       {}

func (i *ideal) Pick(v View) (int, float64, bool) {
	if di, ok := v.(drainIndex); ok {
		return di.BestDrain()
	}
	best, bestScore := -1, 0.0
	for m := 0; m < v.Machines(); m++ {
		if !v.Eligible(m) {
			continue
		}
		cap := v.Capacity(m)
		var s float64
		if cap <= 0 {
			s = inf
		} else {
			s = v.QueuedWork(m) / cap
		}
		if best < 0 || s < bestScore {
			best, bestScore = m, s
		}
	}
	return best, bestScore, best >= 0
}

const inf = 1e300

// drainHeap is an indexed binary min-heap of machines keyed by
// (drain score, machine index): the backing structure for drainIndex.
// Re-keying an entry costs O(log N) and happens only when a machine's
// queued work or capacity actually changes (a routed job, a barrier view
// refresh, a fault transition), replacing the O(N) scoring scan the ideal
// dispatcher ran on every pick.
type drainHeap struct {
	heap  []int     // machine indices, heap-ordered
	pos   []int     // machine -> heap slot, -1 when absent
	score []float64 // machine -> current key
}

func newDrainHeap(n int) *drainHeap {
	d := &drainHeap{
		heap:  make([]int, 0, n),
		pos:   make([]int, n),
		score: make([]float64, n),
	}
	for i := range d.pos {
		d.pos[i] = -1
	}
	return d
}

func (d *drainHeap) less(a, b int) bool {
	ma, mb := d.heap[a], d.heap[b]
	if d.score[ma] != d.score[mb] {
		return d.score[ma] < d.score[mb]
	}
	return ma < mb
}

func (d *drainHeap) swap(a, b int) {
	d.heap[a], d.heap[b] = d.heap[b], d.heap[a]
	d.pos[d.heap[a]] = a
	d.pos[d.heap[b]] = b
}

func (d *drainHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !d.less(i, p) {
			return
		}
		d.swap(i, p)
		i = p
	}
}

func (d *drainHeap) siftDown(i int) {
	for {
		l := 2*i + 1
		if l >= len(d.heap) {
			return
		}
		m := l
		if r := l + 1; r < len(d.heap) && d.less(r, l) {
			m = r
		}
		if !d.less(m, i) {
			return
		}
		d.swap(i, m)
		i = m
	}
}

// update sets machine m's score, inserting m if absent.
func (d *drainHeap) update(m int, score float64) {
	d.score[m] = score
	if i := d.pos[m]; i >= 0 {
		d.siftUp(i)
		d.siftDown(d.pos[m])
		return
	}
	d.heap = append(d.heap, m)
	d.pos[m] = len(d.heap) - 1
	d.siftUp(len(d.heap) - 1)
}

// remove drops machine m if present.
func (d *drainHeap) remove(m int) {
	i := d.pos[m]
	if i < 0 {
		return
	}
	last := len(d.heap) - 1
	d.swap(i, last)
	d.heap = d.heap[:last]
	d.pos[m] = -1
	if i < last {
		moved := d.heap[i]
		d.siftUp(i)
		d.siftDown(d.pos[moved])
	}
}

// capacityAt computes a machine's sustainable aggregate processing rate:
// every healthy core running at its equal share of the current budget.
func capacityAt(s *machine.Server) float64 {
	alive := s.Healthy()
	budget := s.Budget()
	if alive == 0 || budget <= 0 {
		return 0
	}
	share := budget / float64(alive)
	sum := 0.0
	for i, c := range s.Cores {
		if c.Healthy() {
			sum += power.Rate(s.ModelFor(i).Speed(share))
		}
	}
	return sum
}
