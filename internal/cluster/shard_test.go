package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"goodenough/internal/core"
	"goodenough/internal/faults"
	"goodenough/internal/obs"
	"goodenough/internal/sched"
	"goodenough/internal/workload"
)

// shardRun executes one fleet scenario — light load over six machines so
// several sit quiescent between jobs, with a crash, a partition, and a
// slowdown landing mid-run — at the given shard count, and returns the full
// event stream, decision stream, and Result.
func shardRun(t *testing.T, shards int) ([]byte, []byte, Result) {
	t.Helper()
	node := sched.Defaults()
	var events, decisions bytes.Buffer
	ej := obs.NewJSONL(&events)
	dl := obs.NewDecisionLog(&decisions)
	specs := []faults.MachineSpec{
		{At: 1.5, Kind: faults.MachineCrash, Machine: 2, Duration: 2},
		{At: 2.0, Kind: faults.MachinePartition, Machine: 3, Duration: 3},
		{At: 2.5, Kind: faults.MachineSlow, Machine: 4, Duration: 2, Factor: 0.5},
	}
	cs, err := faults.NewCluster(specs, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	disp, err := NewDispatcher("rr", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{
		Machines:  6,
		Node:      node,
		NewPolicy: func() sched.Policy { return core.NewGE(node.QGE) },
		Dispatch:  disp,
		Workload: workload.Spec{
			ArrivalRate: 25,
			ParetoAlpha: 3,
			Xmin:        130,
			Xmax:        1000,
			Window:      0.15,
			Duration:    8,
			Seed:        7,
		},
		Faults:    cs,
		Shards:    shards,
		Observer:  ej,
		Decisions: dl,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := ej.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := dl.Flush(); err != nil {
		t.Fatal(err)
	}
	return events.Bytes(), decisions.Bytes(), res
}

// stripLayout zeroes the fields that describe the execution layout rather
// than the simulation, so Results can be compared across shard counts.
func stripLayout(r Result) Result {
	r.Shards = 0
	r.ShardEvents = nil
	r.ShardMachines = nil
	return r
}

// TestShardDeterminism proves the shard layout is invisible: for every K
// the fleet must produce a byte-identical event stream, byte-identical
// decision stream, and a deeply equal Result versus the sequential (K=1)
// run. This is the regression gate for the barrier protocol — buffered
// shard-phase effects must merge in exactly the order the shared-heap
// implementation produced them.
func TestShardDeterminism(t *testing.T) {
	seqEvents, seqDecisions, seqRes := shardRun(t, 1)
	if len(seqEvents) == 0 {
		t.Fatal("scenario produced no events; the comparison is vacuous")
	}
	if seqRes.Jobs == 0 || seqRes.Crashes == 0 {
		t.Fatalf("scenario too weak: jobs=%d crashes=%d (want both > 0)",
			seqRes.Jobs, seqRes.Crashes)
	}
	if seqRes.Shards != 1 {
		t.Fatalf("Shards = %d, want 1", seqRes.Shards)
	}
	for _, k := range []int{2, 3, 4, 6} {
		events, decisions, res := shardRun(t, k)
		if !bytes.Equal(seqEvents, events) {
			t.Errorf("K=%d: event streams diverge: seq=%d bytes, sharded=%d bytes\nfirst divergence near: %s",
				k, len(seqEvents), len(events), firstDiff(seqEvents, events))
		}
		if !bytes.Equal(seqDecisions, decisions) {
			t.Errorf("K=%d: decision streams diverge: seq=%d bytes, sharded=%d bytes\nfirst divergence near: %s",
				k, len(seqDecisions), len(decisions), firstDiff(seqDecisions, decisions))
		}
		if !reflect.DeepEqual(stripLayout(seqRes), stripLayout(res)) {
			t.Errorf("K=%d: results diverge:\nseq:     %+v\nsharded: %+v", k, seqRes, res)
		}
		want := k
		if want > 6 {
			want = 6
		}
		if res.Shards != want {
			t.Errorf("K=%d: Shards = %d, want %d", k, res.Shards, want)
		}
		var total int64
		machines := 0
		for i := range res.ShardEvents {
			total += res.ShardEvents[i]
			machines += res.ShardMachines[i]
		}
		if machines != 6 {
			t.Errorf("K=%d: ShardMachines sums to %d, want 6", k, machines)
		}
		if total <= 0 {
			t.Errorf("K=%d: shard heaps delivered no events", k)
		}
	}
}

// TestResolveShards pins the auto-sizing rule: min(GOMAXPROCS, N/8),
// floored at one, capped at the machine count.
func TestResolveShards(t *testing.T) {
	cases := []struct {
		requested, machines, want int
	}{
		{1, 10, 1},
		{4, 10, 4},
		{16, 10, 10}, // capped at machine count
		{0, 4, 1},    // auto on a small fleet floors at one
	}
	for _, c := range cases {
		if got := resolveShards(c.requested, c.machines); got != c.want {
			t.Errorf("resolveShards(%d, %d) = %d, want %d",
				c.requested, c.machines, got, c.want)
		}
	}
	if got := resolveShards(0, 100000); got < 1 {
		t.Errorf("auto shards = %d, want >= 1", got)
	}
}

// firstDiff returns a short window around the first differing byte.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			hiA, hiB := i+40, i+40
			if hiA > len(a) {
				hiA = len(a)
			}
			if hiB > len(b) {
				hiB = len(b)
			}
			return "a: " + string(a[lo:hiA]) + "\nb: " + string(b[lo:hiB])
		}
	}
	return "streams are a prefix of each other"
}
