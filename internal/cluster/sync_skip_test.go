package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"goodenough/internal/core"
	"goodenough/internal/faults"
	"goodenough/internal/obs"
	"goodenough/internal/sched"
	"goodenough/internal/workload"
)

// syncSkipRun executes one fleet scenario — light load over six machines so
// several sit idle between jobs, with a crash, a partition, and a slowdown
// landing on machines that may be quiescent when the fault fires — and
// returns the full event stream, decision stream, and Result.
func syncSkipRun(t *testing.T, fullSync bool) ([]byte, []byte, Result) {
	t.Helper()
	node := sched.Defaults()
	var events, decisions bytes.Buffer
	ej := obs.NewJSONL(&events)
	dl := obs.NewDecisionLog(&decisions)
	specs := []faults.MachineSpec{
		{At: 1.5, Kind: faults.MachineCrash, Machine: 2, Duration: 2},
		{At: 2.0, Kind: faults.MachinePartition, Machine: 3, Duration: 3},
		{At: 2.5, Kind: faults.MachineSlow, Machine: 4, Duration: 2, Factor: 0.5},
	}
	cs, err := faults.NewCluster(specs, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	disp, err := NewDispatcher("rr", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{
		Machines:  6,
		Node:      node,
		NewPolicy: func() sched.Policy { return core.NewGE(node.QGE) },
		Dispatch:  disp,
		Workload: workload.Spec{
			ArrivalRate: 25,
			ParetoAlpha: 3,
			Xmin:        130,
			Xmax:        1000,
			Window:      0.15,
			Duration:    8,
			Seed:        7,
		},
		Faults:    cs,
		Observer:  ej,
		Decisions: dl,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.fullSync = fullSync
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !fullSync && f.syncSkips == 0 {
		t.Fatal("quiescent-skip guard never fired; the scenario does not exercise it")
	}
	if err := ej.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := dl.Flush(); err != nil {
		t.Fatal(err)
	}
	return events.Bytes(), decisions.Bytes(), res
}

// TestSyncSkipDeterminism proves the quiescent-machine guard in syncAll is
// invisible: with the skip enabled the fleet must produce a byte-identical
// event stream, byte-identical decision stream, and a deeply equal Result
// versus the exhaustive advance-everyone-every-event path. This is the
// regression gate for the catchUp bookkeeping — a machine advanced late
// must accumulate exactly what it would have accumulated on time.
func TestSyncSkipDeterminism(t *testing.T) {
	fullEvents, fullDecisions, fullRes := syncSkipRun(t, true)
	skipEvents, skipDecisions, skipRes := syncSkipRun(t, false)

	if len(fullEvents) == 0 {
		t.Fatal("scenario produced no events; the comparison is vacuous")
	}
	if !bytes.Equal(fullEvents, skipEvents) {
		t.Errorf("event streams diverge: full=%d bytes, skip=%d bytes\nfirst divergence near: %s",
			len(fullEvents), len(skipEvents), firstDiff(fullEvents, skipEvents))
	}
	if !bytes.Equal(fullDecisions, skipDecisions) {
		t.Errorf("decision streams diverge: full=%d bytes, skip=%d bytes",
			len(fullDecisions), len(skipDecisions))
	}
	if !reflect.DeepEqual(fullRes, skipRes) {
		t.Errorf("results diverge:\nfull: %+v\nskip: %+v", fullRes, skipRes)
	}
	if fullRes.Jobs == 0 || fullRes.Crashes == 0 {
		t.Errorf("scenario too weak: jobs=%d crashes=%d (want both > 0)",
			fullRes.Jobs, fullRes.Crashes)
	}
}

// firstDiff returns a short window around the first differing byte.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			hiA, hiB := i+40, i+40
			if hiA > len(a) {
				hiA = len(a)
			}
			if hiB > len(b) {
				hiB = len(b)
			}
			return "full: " + string(a[lo:hiA]) + "\nskip: " + string(b[lo:hiB])
		}
	}
	return "streams are a prefix of each other"
}
