// Package cluster scales the simulator from one multicore server to a fleet:
// N machines — each a full scheduler/machine/power stack — driven by one
// shared event clock and fronted by a global dispatcher that routes every
// arriving request to a machine.
//
// Failure handling is the point. Machines crash (all cores halt, in-flight
// progress is wiped, queued work is stranded), partition from the dispatcher
// (they keep serving what they hold but receive nothing new), and degrade to
// a fraction of their power budget; each fault kind has a paired recovery.
// The fleet re-dispatches lost and stranded jobs with retry accounting, and
// health-aware dispatch policies route around machines that are down or
// unreachable. A run is deterministic: the same seed and fault schedule
// yield byte-identical event streams and results.
//
// The design deliberately reuses the single-machine building blocks — the
// sim kernel's (time, priority, seq) total order, machine.Server's exact
// energy accounting, sched.Policy for per-node scheduling — so fleet runs
// inherit every invariant the single-machine path already enforces.
package cluster

import (
	"fmt"
	"math"

	"goodenough/internal/faults"
	"goodenough/internal/job"
	"goodenough/internal/machine"
	"goodenough/internal/obs"
	"goodenough/internal/quality"
	"goodenough/internal/sched"
	"goodenough/internal/sim"
	"goodenough/internal/stats"
	"goodenough/internal/workload"
)

// DefaultRedispatchLimit caps how many times one job is re-routed after
// machine faults before the fleet drops it (still finalized and accounted —
// never silently lost).
const DefaultRedispatchLimit = 3

// Config describes a fleet run.
type Config struct {
	// Machines is the fleet size N.
	Machines int
	// Node is the per-machine configuration (cores, budget, quality, QGE,
	// triggers). Every machine runs the same configuration; Node.Faults
	// must be nil — fleet fault injection is machine-scoped (Faults below).
	Node sched.Config
	// NewPolicy builds one scheduling policy instance per machine (policies
	// carry state, so they cannot be shared).
	NewPolicy func() sched.Policy
	// Dispatch is the global routing policy.
	Dispatch Dispatcher
	// Workload is the fleet-wide arrival stream, routed job by job.
	Workload workload.Spec
	// Faults, when non-nil, injects machine-scoped fault events (crash,
	// partition, degrade, and their recoveries).
	Faults *faults.ClusterSchedule
	// RedispatchLimit caps per-job re-dispatches (0 means
	// DefaultRedispatchLimit).
	RedispatchLimit int
	// Observer, when non-nil, receives the structured event stream:
	// fleet-level events (dispatch, re-dispatch, machine health) carry the
	// machine index in Core; per-core events are remapped to globally
	// unique core IDs machine*cores+core.
	Observer obs.Observer
	// Decisions, when non-nil, receives one structured record per routing
	// and health choice (dispatch, re-dispatch, limit drop, degrade
	// replan, per-machine mode switch) with the machine index stamped in.
	Decisions obs.DecisionSink
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.Machines <= 0 {
		return fmt.Errorf("cluster: machines must be positive, got %d", c.Machines)
	}
	if err := c.Node.Validate(); err != nil {
		return fmt.Errorf("cluster: node config: %w", err)
	}
	if c.Node.Faults != nil {
		return fmt.Errorf("cluster: node config carries a per-core fault schedule; fleet faults are machine-scoped (Config.Faults)")
	}
	if c.NewPolicy == nil {
		return fmt.Errorf("cluster: NewPolicy factory required")
	}
	if c.Dispatch == nil {
		return fmt.Errorf("cluster: dispatch policy required")
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(c.Machines); err != nil {
		return fmt.Errorf("cluster: fault schedule: %w", err)
	}
	if c.RedispatchLimit < 0 {
		return fmt.Errorf("cluster: redispatch limit must be non-negative, got %d", c.RedispatchLimit)
	}
	return nil
}

// MachineResult summarizes one machine's run.
type MachineResult struct {
	// Energy is the machine's dynamic energy in joules.
	Energy float64
	// Quality is the batch quality over jobs finalized on this machine.
	Quality float64
	// Completed and Expired count jobs finalized on this machine's cores.
	Completed int64
	Expired   int64
	// Crashes counts machine-level crash events.
	Crashes int64
	// DownTime is the total time the machine spent crashed.
	DownTime float64
	// AESFraction is the fraction of the machine's time in AES mode.
	AESFraction float64
	// Dispatches and Redispatches count jobs routed (and fault re-routed)
	// to this machine — the per-machine decision summary that explains how
	// a dispatch policy spread (or failed to spread) the load.
	Dispatches   int64
	Redispatches int64
}

// Result summarizes a fleet run.
type Result struct {
	// Dispatch and Scheduler name the routing and per-node policies.
	Dispatch  string
	Scheduler string
	// Machines is the fleet size.
	Machines int
	// Jobs is the number of requests generated; every one of them is
	// finalized exactly once (completed, expired, or dropped) — LostForever
	// is the count that escaped accounting and must be zero.
	Jobs        int
	Completed   int64
	Expired     int64
	Dropped     int64
	LostForever int
	// Quality is Σf(processed)/Σf(demand) over every generated job.
	Quality float64
	// Energy totals dynamic energy across the fleet; AESEnergy/BQEnergy
	// split it by the execution mode active while it was consumed.
	Energy    float64
	AESEnergy float64
	BQEnergy  float64
	// AESFraction is the machine-time-weighted AES fraction.
	AESFraction float64
	// MeanResponse, P95Response, P99Response summarize completed jobs'
	// response times in seconds.
	MeanResponse float64
	P95Response  float64
	P99Response  float64
	// Fault accounting. Crashes/Partitions/Degrades count onset events;
	// Redispatches counts re-routes of lost and stranded jobs; LostWork is
	// the in-flight processing (units) wiped by crashes; PendingExpired
	// counts jobs that died parked at the dispatcher with no machine
	// eligible.
	Crashes        int64
	Partitions     int64
	Degrades       int64
	Redispatches   int64
	LostWork       float64
	PendingExpired int64
	// Availability is the time-weighted fraction of machine-time up.
	Availability float64
	// SimTime is the span actually simulated.
	SimTime float64
	// PerMachine holds one entry per machine.
	PerMachine []MachineResult
}

// node is one simulated machine inside the fleet: a server plus the per-node
// slice of the runner state (waiting queue, quality monitor, mode and energy
// accounting, idle events).
type node struct {
	idx    int
	server *machine.Server
	wait   job.FIFO
	policy sched.Policy
	acc    *quality.Accumulator

	// Health. up==false means crashed; partitioned machines keep serving
	// but are unreachable from the dispatcher; slowFactor in (0,1) caps the
	// budget while degraded (0 = nominal).
	up          bool
	partitioned bool
	slowFactor  float64
	downSince   float64
	downTime    float64
	crashes     int64

	arrivalTimes []float64
	idleEvents   []sim.EventID
	queueExpired int64
	dispatches   int64
	redispatches int64

	// Mode accounting (mirrors sched.Runner).
	modeAES      bool
	modeSet      bool
	modeSince    float64
	aesTime      float64
	modeSwitches int64
	lastEnergy   float64
	aesEnergy    float64
	bqEnergy     float64

	pctx       sched.Context
	finalizeFn machine.FinalizeFunc
	obsWrap    obs.Observer

	fleet *Fleet
}

// RecordMode implements sched.ModeSink for this machine.
func (n *node) RecordMode(now float64, aes bool) {
	if n.modeSet {
		if n.modeAES {
			n.aesTime += now - n.modeSince
		}
		if aes != n.modeAES {
			n.modeSwitches++
			obs.Emit(n.obsWrap, obs.Event{Time: now, Type: obs.EventModeSwitch,
				Core: -1, Job: -1, Flag: aes})
			if d := n.fleet.decisions; d != nil {
				action := "bq"
				if aes {
					action = "aes"
				}
				d.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionModeSwitch,
					Machine: n.idx, Job: -1, Score: n.acc.Quality(),
					Budget: n.server.Budget(), Action: action})
			}
		}
	} else {
		obs.Emit(n.obsWrap, obs.Event{Time: now, Type: obs.EventModeSwitch,
			Core: -1, Job: -1, Flag: aes})
	}
	n.modeAES = aes
	n.modeSet = true
	n.modeSince = now
}

// finalize records a job leaving this machine into both the node's quality
// monitor (the policy's compensation signal) and the fleet's global
// accumulator.
func (n *node) finalize(j *job.Job, r machine.Reason) {
	n.acc.Add(j.Processed, j.Demand)
	f := n.fleet
	f.acc.Add(j.Processed, j.Demand)
	f.finalized++
	if r == machine.ReasonCompleted {
		f.responses = append(f.responses, j.Finish-j.Release)
		obs.Emit(n.obsWrap, obs.Event{Time: j.Finish, Type: obs.EventJobComplete,
			Core: j.Core, Job: j.ID, Value: j.Processed, Aux: j.Finish - j.Release})
	} else {
		obs.Emit(n.obsWrap, obs.Event{Time: j.Finish, Type: obs.EventJobExpire,
			Core: j.Core, Job: j.ID, Value: j.Processed, Aux: j.Demand})
	}
}

func (n *node) noteArrival(now float64, window float64) {
	n.arrivalTimes = append(n.arrivalTimes, now)
	cutoff := now - window
	i := 0
	for i < len(n.arrivalTimes) && n.arrivalTimes[i] < cutoff {
		i++
	}
	if i > 0 {
		n.arrivalTimes = append(n.arrivalTimes[:0], n.arrivalTimes[i:]...)
	}
}

func (n *node) estimateRate(now, window float64) float64 {
	cutoff := now - window
	i := 0
	for i < len(n.arrivalTimes) && n.arrivalTimes[i] < cutoff {
		i++
	}
	if i > 0 {
		n.arrivalTimes = append(n.arrivalTimes[:0], n.arrivalTimes[i:]...)
	}
	w := math.Min(window, math.Max(now, 1e-3))
	return float64(len(n.arrivalTimes)) / w
}

func (n *node) anyIdleCore() bool {
	for _, c := range n.server.Cores {
		if c.Idle() && c.Healthy() {
			return true
		}
	}
	return false
}

// coreObserver remaps per-core events onto globally unique core IDs
// (machine*cores + core) so fleet JSONL and Chrome exports keep machines
// apart without changing the obs.Event wire format.
type coreObserver struct {
	sink obs.Observer
	base int
}

// Observe implements obs.Observer.
func (o coreObserver) Observe(e obs.Event) {
	if e.Core >= 0 {
		e.Core += o.base
	}
	o.sink.Observe(e)
}

// Fleet is a runnable fleet simulation. Build with New, execute with Run.
type Fleet struct {
	cfg     Config
	nodeCfg sched.Config
	engine  *sim.Engine
	nodes   []*node
	gen     workload.Source
	pending job.FIFO // jobs parked at the dispatcher: no machine eligible
	acc     *quality.Accumulator
	obs     obs.Observer

	faultEvents []faults.MachineEvent
	nextArrival *job.Job
	genDone     bool

	decisions obs.DecisionSink

	// fullSync disables the quiescent-machine skip in syncAll (every node
	// advances on every event); the determinism regression test runs both
	// ways and demands byte-identical streams. syncErr carries a deferred
	// catch-up failure into handle's error return.
	fullSync  bool
	syncErr   error
	syncSkips int64 // quiescent machines skipped by syncAll (test visibility)

	jobs           int
	finalized      int
	dropped        int64
	redispatches   int64
	lostWork       float64
	pendingExpired int64
	partitions     int64
	degrades       int64
	responses      []float64
	limit          int
}

// New builds a fleet from the configuration.
func New(cfg Config) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:     cfg,
		nodeCfg: cfg.Node,
		gen:     workload.NewGenerator(cfg.Workload),
		acc:     quality.NewAccumulator(cfg.Node.Quality),
		obs:     cfg.Observer,
		limit:   cfg.RedispatchLimit,
	}
	f.decisions = cfg.Decisions
	if f.limit == 0 {
		f.limit = DefaultRedispatchLimit
	}
	f.nodes = make([]*node, cfg.Machines)
	for m := range f.nodes {
		var server *machine.Server
		var err error
		if cfg.Node.Heterogeneous() {
			server, err = machine.NewHeterogeneousServer(cfg.Node.PerCoreModels)
		} else {
			server, err = machine.NewServer(cfg.Node.Cores, cfg.Node.Model)
		}
		if err != nil {
			return nil, err
		}
		server.SetBudget(cfg.Node.PowerBudget)
		n := &node{
			idx:        m,
			server:     server,
			policy:     cfg.NewPolicy(),
			acc:        quality.NewAccumulator(cfg.Node.Quality),
			up:         true,
			idleEvents: make([]sim.EventID, cfg.Node.Cores),
			fleet:      f,
		}
		if n.policy == nil {
			return nil, fmt.Errorf("cluster: NewPolicy returned nil for machine %d", m)
		}
		n.finalizeFn = n.finalize
		if f.obs != nil {
			n.obsWrap = coreObserver{sink: f.obs, base: m * cfg.Node.Cores}
			server.SetObserver(n.obsWrap)
		}
		f.nodes[m] = n
	}
	f.engine = sim.NewEngine(f.handle)
	return f, nil
}

// --- View implementation (the dispatcher's window) ---

// Machines implements View.
func (f *Fleet) Machines() int { return len(f.nodes) }

// Eligible implements View: up and reachable.
func (f *Fleet) Eligible(m int) bool {
	n := f.nodes[m]
	return n.up && !n.partitioned
}

// QueuedWork implements View: remaining work waiting plus planned.
func (f *Fleet) QueuedWork(m int) float64 {
	n := f.nodes[m]
	sum := n.server.TotalLoad()
	for _, j := range n.wait.Peek() {
		sum += j.Remaining()
	}
	return sum
}

// HasIdleCore implements View.
func (f *Fleet) HasIdleCore(m int) bool { return f.nodes[m].anyIdleCore() }

// Capacity implements View: the machine's sustainable processing rate under
// its current (possibly degraded) budget.
func (f *Fleet) Capacity(m int) float64 { return capacityAt(f.nodes[m].server) }

// --- event loop ---

// Run executes the fleet simulation to completion.
func (f *Fleet) Run() (Result, error) {
	f.cfg.Dispatch.Reset()
	for _, n := range f.nodes {
		n.policy.Reset()
	}
	if in, ok := f.cfg.Dispatch.(idleNotifier); ok {
		for m := range f.nodes {
			in.NoteIdle(m)
		}
	}
	if err := f.scheduleNextArrival(); err != nil {
		return Result{}, err
	}
	if _, err := f.engine.Schedule(f.nodeCfg.QuantumSec, sim.KindQuantum); err != nil {
		return Result{}, err
	}
	// Machine fault events get priority -1 so a crash at time t is observed
	// before any arrival or quantum tick at the same instant.
	f.faultEvents = f.cfg.Faults.Events()
	for i, fe := range f.faultEvents {
		if _, err := f.engine.ScheduleWithPriority(fe.At, sim.KindMachineFault, i, -1); err != nil {
			return Result{}, err
		}
	}
	if err := f.engine.Run(); err != nil {
		return Result{}, err
	}
	return f.result(), nil
}

// syncAll brings every machine to the present: advance servers (finalizing
// completions/expiries), split the energy delta by execution mode, and drop
// deadline-passed jobs from node queues and the dispatcher's pending queue.
// Iteration is in machine index order, so the event stream stays
// deterministic.
//
// Machines with nothing to do are skipped: a node whose wait queue is empty
// and whose server is Quiescent would execute no work, finalize nothing, and
// emit no events — its Advance only moves the clock. Skipped nodes carry a
// stale clock until catchUp performs the deferred Advance (one idle span,
// identical accumulation) immediately before any new work or fault can land
// on them. fullSync disables the guard; the determinism regression test
// proves both paths produce byte-identical event streams.
func (f *Fleet) syncAll(now float64) error {
	for _, n := range f.nodes {
		if !f.fullSync && n.wait.Len() == 0 && n.server.Quiescent() {
			f.syncSkips++
			continue
		}
		if err := f.syncNode(n, now); err != nil {
			return err
		}
	}
	f.expirePending(now)
	return nil
}

// syncNode advances one machine to the present and settles its accounting.
func (f *Fleet) syncNode(n *node, now float64) error {
	if err := n.server.Advance(now, n.finalizeFn); err != nil {
		return fmt.Errorf("cluster: machine %d: %w", n.idx, err)
	}
	if delta := n.server.Energy() - n.lastEnergy; delta > 0 {
		if n.modeAES {
			n.aesEnergy += delta
		} else {
			n.bqEnergy += delta
		}
		n.lastEnergy = n.server.Energy()
	}
	f.expireWaiting(n, now)
	return nil
}

// catchUp performs the Advance that syncAll deferred for a quiescent
// machine. Called before anything lands on the node — a policy invocation,
// a dispatched job, a fault transition — so no work ever executes against a
// stale clock. A node already at the present is left alone (syncAll settled
// it this event, including queue expiry).
func (f *Fleet) catchUp(n *node, now float64) {
	if n.server.Now() >= now {
		return
	}
	if err := f.syncNode(n, now); err != nil && f.syncErr == nil {
		// Unreachable in practice (the guard above makes the advance strictly
		// forward); recorded rather than dropped so handle can surface it.
		f.syncErr = err
	}
}

// expireWaiting finalizes a node's queued jobs whose deadlines passed
// unserved.
func (f *Fleet) expireWaiting(n *node, now float64) {
	for {
		j := n.wait.PopExpired(now)
		if j == nil {
			return
		}
		j.State = job.StateFinalized
		j.Finish = j.Deadline
		n.queueExpired++
		n.acc.Add(j.Processed, j.Demand)
		f.acc.Add(j.Processed, j.Demand)
		f.finalized++
		obs.Emit(n.obsWrap, obs.Event{Time: now, Type: obs.EventJobExpire,
			Core: -1, Job: j.ID, Value: j.Processed, Aux: j.Demand})
	}
}

// expirePending finalizes jobs that died parked at the dispatcher — the
// whole fleet was unreachable for their entire remaining window.
func (f *Fleet) expirePending(now float64) {
	for {
		j := f.pending.PopExpired(now)
		if j == nil {
			return
		}
		j.State = job.StateFinalized
		j.Finish = j.Deadline
		f.pendingExpired++
		f.acc.Add(j.Processed, j.Demand)
		f.finalized++
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventJobExpire,
			Core: -1, Job: j.ID, Value: j.Processed, Aux: j.Demand})
	}
}

// handle is the shared-clock event dispatcher.
func (f *Fleet) handle(e *sim.Event) error {
	now := e.Time
	if err := f.syncAll(now); err != nil {
		return err
	}
	if f.syncErr != nil {
		return f.syncErr
	}
	switch e.Kind {
	case sim.KindArrival:
		j := f.nextArrival
		f.nextArrival = nil
		f.jobs++
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventJobArrive,
			Core: -1, Job: j.ID, Value: j.Demand, Aux: j.Deadline})
		// Every job gets a deadline event so expiry is observed promptly
		// wherever the job ends up (a node queue, a core, or pending).
		if _, err := f.engine.Schedule(j.Deadline, sim.KindDeadline); err != nil {
			return err
		}
		if err := f.scheduleNextArrival(); err != nil {
			return err
		}
		f.dispatch(j, now, false)

	case sim.KindQuantum:
		for _, n := range f.nodes {
			if n.up {
				f.invoke(n, now, sched.TriggerQuantum)
			}
		}
		if !f.finished() {
			if _, err := f.engine.Schedule(now+f.nodeCfg.QuantumSec, sim.KindQuantum); err != nil {
				return err
			}
		}

	case sim.KindCoreIdle:
		// Core carries the core index, Ref the machine index.
		n := f.nodes[e.Ref]
		n.idleEvents[e.Core] = 0
		if n.up && n.server.Cores[e.Core].Idle() && n.server.Cores[e.Core].Healthy() {
			f.invoke(n, now, sched.TriggerIdleCore)
			f.noteIdle(n)
		}

	case sim.KindDeadline:
		// syncAll already finalized whatever was due.

	case sim.KindMachineFault:
		f.applyMachineFault(now, f.faultEvents[e.Ref])
	}
	return f.syncErr
}

// invoke runs one machine's scheduling policy and re-arms its idle events.
func (f *Fleet) invoke(n *node, now float64, trig sched.Trigger) {
	f.catchUp(n, now)
	obs.Emit(n.obsWrap, obs.Event{Time: now, Type: obs.EventBatch, Core: -1, Job: -1,
		Value: float64(n.wait.Len()), Aux: float64(trig)})
	n.pctx = sched.Context{
		Now:         now,
		Trigger:     trig,
		Cfg:         &f.nodeCfg,
		Budget:      n.server.Budget(),
		Server:      n.server,
		Waiting:     &n.wait,
		Monitor:     n.acc,
		ArrivalRate: n.estimateRate(now, f.nodeCfg.RateWindow),
		Finalize:    n.finalizeFn,
		Observer:    n.obsWrap,
		Modes:       n,
	}
	n.policy.Schedule(&n.pctx)
	f.refreshIdleEvents(n, now)
}

// refreshIdleEvents re-arms a KindCoreIdle event per busy core at its
// projected drain time, tagged with the machine index in Ref.
func (f *Fleet) refreshIdleEvents(n *node, now float64) {
	for i, c := range n.server.Cores {
		if id := n.idleEvents[i]; id != 0 {
			f.engine.Cancel(id)
			n.idleEvents[i] = 0
		}
		if c.Idle() || !c.Healthy() {
			continue
		}
		at := c.ProjectedIdle(now)
		if at < now {
			at = now
		}
		id, err := f.engine.ScheduleCoreRef(at+1e-9, sim.KindCoreIdle, i, n.idx)
		if err == nil {
			n.idleEvents[i] = id
		}
	}
}

// noteIdle tells heap-keeping dispatchers this machine has spare capacity.
func (f *Fleet) noteIdle(n *node) {
	if !n.up || n.partitioned || !n.anyIdleCore() {
		return
	}
	if in, ok := f.cfg.Dispatch.(idleNotifier); ok {
		in.NoteIdle(n.idx)
	}
}

// dispatch routes one job. With no eligible machine the job parks at the
// dispatcher until a machine recovers or the job's deadline passes.
func (f *Fleet) dispatch(j *job.Job, now float64, redisp bool) {
	m, score, ok := f.cfg.Dispatch.Pick(f)
	if !ok {
		f.pending.Push(j)
		if f.decisions != nil {
			// No eligible machine: the job parks at the dispatcher.
			f.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionDispatch,
				Machine: -1, Job: j.ID, Action: "park"})
		}
		return
	}
	n := f.nodes[m]
	f.catchUp(n, now)
	n.wait.Push(j)
	n.noteArrival(now, f.nodeCfg.RateWindow)
	if redisp {
		f.redispatches++
		n.redispatches++
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventRedispatch,
			Core: m, Job: j.ID, Value: float64(j.Requeues), Aux: j.Remaining()})
		if f.decisions != nil {
			f.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionRedispatch,
				Machine: m, Job: j.ID, Score: score, Alts: j.Requeues,
				Load: j.Remaining(), Budget: n.server.Budget(), Action: "redispatch"})
		}
	} else {
		eligible := 0
		for i := range f.nodes {
			if f.Eligible(i) {
				eligible++
			}
		}
		n.dispatches++
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventDispatch,
			Core: m, Job: j.ID, Value: score, Aux: float64(eligible)})
		if f.decisions != nil {
			f.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionDispatch,
				Machine: m, Job: j.ID, Score: score, Alts: eligible,
				Load: f.QueuedWork(m), Budget: n.server.Budget(), Action: "dispatch"})
		}
	}
	if n.wait.Len() >= f.nodeCfg.CounterTrigger {
		f.invoke(n, now, sched.TriggerCounter)
	} else if n.anyIdleCore() {
		f.invoke(n, now, sched.TriggerIdleCore)
	}
}

// redispatch re-routes a job displaced by a machine fault, enforcing the
// retry cap: beyond the limit the job is dropped — finalized with whatever
// it achieved (nothing, after a crash wipe) so it never escapes accounting.
func (f *Fleet) redispatch(j *job.Job, now float64) {
	if j.Requeues > f.limit {
		j.State = job.StateFinalized
		j.Finish = now
		f.dropped++
		f.acc.Add(j.Processed, j.Demand)
		f.finalized++
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventJobDrop,
			Core: -1, Job: j.ID, Value: j.Processed, Aux: j.Demand})
		if f.decisions != nil {
			f.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionDrop,
				Machine: -1, Job: j.ID, Alts: j.Requeues, Load: j.Remaining(),
				Action: "limit"})
		}
		return
	}
	f.dispatch(j, now, true)
}

// applyMachineFault transitions one machine's health state.
func (f *Fleet) applyMachineFault(now float64, fe faults.MachineEvent) {
	n := f.nodes[fe.Machine]
	f.catchUp(n, now)
	switch fe.Kind {
	case faults.MachineCrash:
		if !n.up {
			return
		}
		n.up = false
		n.downSince = now
		n.crashes++
		// Halt every core; in-flight progress is wiped — this is the
		// difference from a core failure, where partial work survives on
		// the job. The wiped units are the crash's lost work.
		var displaced []*job.Job
		orphans := 0
		wiped := 0.0
		for i, c := range n.server.Cores {
			if id := n.idleEvents[i]; id != 0 {
				f.engine.Cancel(id)
				n.idleEvents[i] = 0
			}
			for _, entry := range c.Fail(now) {
				j := entry.Job
				if j.Done() || j.Expired(now) {
					// Nothing worth re-running elsewhere; finalize in place.
					j.State = job.StateFinalized
					j.Finish = now
					n.queueExpired++
					n.acc.Add(j.Processed, j.Demand)
					f.acc.Add(j.Processed, j.Demand)
					f.finalized++
					obs.Emit(n.obsWrap, obs.Event{Time: now, Type: obs.EventJobExpire,
						Core: i, Job: j.ID, Value: j.Processed, Aux: j.Demand})
					continue
				}
				orphans++
				wiped += j.Processed
				j.Processed = 0
				j.Core = -1
				j.State = job.StateWaiting
				j.Requeues++
				displaced = append(displaced, j)
			}
		}
		// Stranded waiting jobs: never started, but the machine holding
		// them is gone; they re-route with the same retry accounting.
		for _, j := range n.wait.Drain() {
			if j.Expired(now) {
				j.State = job.StateFinalized
				j.Finish = j.Deadline
				n.queueExpired++
				n.acc.Add(j.Processed, j.Demand)
				f.acc.Add(j.Processed, j.Demand)
				f.finalized++
				obs.Emit(n.obsWrap, obs.Event{Time: now, Type: obs.EventJobExpire,
					Core: -1, Job: j.ID, Value: j.Processed, Aux: j.Demand})
				continue
			}
			j.Requeues++
			displaced = append(displaced, j)
		}
		f.lostWork += wiped
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventMachineDown,
			Core: n.idx, Job: -1, Value: float64(orphans), Aux: wiped})
		for _, j := range displaced {
			f.redispatch(j, now)
		}

	case faults.MachineRecover:
		if n.up {
			return
		}
		n.up = true
		n.downTime += now - n.downSince
		for _, c := range n.server.Cores {
			c.Recover(now)
		}
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventMachineUp,
			Core: n.idx, Job: -1})
		f.noteIdle(n)
		f.drainPending(now)

	case faults.MachinePartition:
		if n.partitioned {
			return
		}
		n.partitioned = true
		f.partitions++
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventMachinePartition,
			Core: n.idx, Job: -1, Flag: true})

	case faults.MachineHeal:
		if !n.partitioned {
			return
		}
		n.partitioned = false
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventMachinePartition,
			Core: n.idx, Job: -1, Flag: false})
		f.noteIdle(n)
		f.drainPending(now)

	case faults.MachineSlow:
		n.slowFactor = fe.Factor
		n.server.SetBudget(f.nodeCfg.PowerBudget * fe.Factor)
		f.degrades++
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventMachineDegrade,
			Core: n.idx, Job: -1, Flag: true, Value: fe.Factor})
		if f.decisions != nil {
			f.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionReplan,
				Machine: n.idx, Job: -1, Budget: n.server.Budget(),
				Score: fe.Factor, Action: "slow"})
		}
		if n.up {
			f.invoke(n, now, sched.TriggerFault)
		}

	case faults.MachineRestore:
		n.slowFactor = 0
		n.server.SetBudget(f.nodeCfg.PowerBudget)
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventMachineDegrade,
			Core: n.idx, Job: -1, Flag: false, Value: 1})
		if f.decisions != nil {
			f.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionReplan,
				Machine: n.idx, Job: -1, Budget: n.server.Budget(),
				Score: 1, Action: "restore"})
		}
		if n.up {
			f.invoke(n, now, sched.TriggerFault)
		}
	}
}

// drainPending re-routes jobs parked at the dispatcher once a machine is
// reachable again, oldest first.
func (f *Fleet) drainPending(now float64) {
	for f.pending.Len() > 0 {
		j := f.pending.Peek()[0]
		m, score, ok := f.cfg.Dispatch.Pick(f)
		if !ok {
			return
		}
		f.pending.PopJob(j)
		n := f.nodes[m]
		f.catchUp(n, now)
		n.wait.Push(j)
		n.noteArrival(now, f.nodeCfg.RateWindow)
		n.dispatches++
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventDispatch,
			Core: m, Job: j.ID, Value: score, Aux: 0})
		if f.decisions != nil {
			f.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionDispatch,
				Machine: m, Job: j.ID, Score: score,
				Budget: n.server.Budget(), Action: "drain"})
		}
		if n.wait.Len() >= f.nodeCfg.CounterTrigger {
			f.invoke(n, now, sched.TriggerCounter)
		} else if n.anyIdleCore() {
			f.invoke(n, now, sched.TriggerIdleCore)
		}
	}
}

func (f *Fleet) scheduleNextArrival() error {
	if f.genDone {
		return nil
	}
	j := f.gen.Next()
	if j == nil {
		f.genDone = true
		return nil
	}
	if _, err := f.engine.Schedule(j.Release, sim.KindArrival); err != nil {
		return fmt.Errorf("cluster: job source emitted job %d out of order: %w", j.ID, err)
	}
	f.nextArrival = j
	return nil
}

// finished reports whether quantum ticks can stop: no future arrivals,
// nothing parked or queued anywhere, every core idle.
func (f *Fleet) finished() bool {
	if !f.genDone || f.pending.Len() > 0 {
		return false
	}
	for _, n := range f.nodes {
		if n.wait.Len() > 0 {
			return false
		}
		for _, c := range n.server.Cores {
			if !c.Idle() {
				return false
			}
		}
	}
	return true
}

// result assembles the fleet summary after the event queue drains.
func (f *Fleet) result() Result {
	simTime := f.engine.Now()
	res := Result{
		Dispatch:       f.cfg.Dispatch.Name(),
		Scheduler:      f.nodes[0].policy.Name(),
		Machines:       len(f.nodes),
		Jobs:           f.jobs,
		Dropped:        f.dropped,
		LostForever:    f.jobs - f.finalized,
		Quality:        f.acc.Quality(),
		Redispatches:   f.redispatches,
		LostWork:       f.lostWork,
		PendingExpired: f.pendingExpired,
		Partitions:     f.partitions,
		Degrades:       f.degrades,
		SimTime:        simTime,
		PerMachine:     make([]MachineResult, len(f.nodes)),
	}
	res.MeanResponse = stats.Mean(f.responses)
	res.P95Response = stats.Quantile(f.responses, 0.95)
	res.P99Response = stats.Quantile(f.responses, 0.99)
	downTotal := 0.0
	aesTotal := 0.0
	anyMode := false
	for i, n := range f.nodes {
		// Flush the open mode interval and the machine's down interval.
		if n.modeSet {
			n.RecordMode(simTime, n.modeAES)
			anyMode = true
		}
		down := n.downTime
		if !n.up {
			down += simTime - n.downSince
		}
		downTotal += down
		aesTotal += n.aesTime
		mr := MachineResult{
			Energy:       n.server.Energy(),
			Quality:      n.acc.Quality(),
			Completed:    n.server.Completed(),
			Expired:      n.server.Expired() + n.queueExpired,
			Crashes:      n.crashes,
			DownTime:     down,
			Dispatches:   n.dispatches,
			Redispatches: n.redispatches,
		}
		if simTime > 0 && n.modeSet {
			mr.AESFraction = n.aesTime / simTime
		}
		res.PerMachine[i] = mr
		res.Energy += n.server.Energy()
		res.AESEnergy += n.aesEnergy
		res.BQEnergy += n.bqEnergy
		res.Completed += n.server.Completed()
		res.Expired += n.server.Expired() + n.queueExpired
		res.Crashes += n.crashes
	}
	res.Expired += f.pendingExpired
	if simTime > 0 {
		machineTime := simTime * float64(len(f.nodes))
		res.Availability = 1 - downTotal/machineTime
		if anyMode {
			res.AESFraction = aesTotal / machineTime
		}
	} else {
		res.Availability = 1
	}
	obs.Emit(f.obs, obs.Event{Time: simTime, Type: obs.EventRunEnd,
		Core: -1, Job: -1, Value: simTime})
	return res
}

// EventsProcessed reports how many kernel events the run delivered.
func (f *Fleet) EventsProcessed() int64 { return f.engine.Processed }
