// Package cluster scales the simulator from one multicore server to a fleet:
// N machines — each a full scheduler/machine/power stack — fronted by a
// global dispatcher that routes every arriving request to a machine.
//
// Failure handling is the point. Machines crash (all cores halt, in-flight
// progress is wiped, queued work is stranded), partition from the dispatcher
// (they keep serving what they hold but receive nothing new), and degrade to
// a fraction of their power budget; each fault kind has a paired recovery.
// The fleet re-dispatches lost and stranded jobs with retry accounting, and
// health-aware dispatch policies route around machines that are down or
// unreachable. A run is deterministic: the same seed and fault schedule
// yield byte-identical event streams and results — for any shard count.
//
// Execution is sharded (shard.go): machines are partitioned across K shards,
// each owning a private event heap that advances its machines independently
// between global barriers (quantum ticks, machine faults, run end). Only
// machines with due events are ever touched — a quiescent node costs zero —
// which replaces the old advance-everyone-on-every-event sync scan. Shard
// outputs are buffered per machine and merged in machine-index order at each
// barrier, so the observable streams do not depend on K.
package cluster

import (
	"fmt"
	"math"
	"runtime"

	"goodenough/internal/faults"
	"goodenough/internal/job"
	"goodenough/internal/machine"
	"goodenough/internal/obs"
	"goodenough/internal/quality"
	"goodenough/internal/sched"
	"goodenough/internal/sim"
	"goodenough/internal/stats"
	"goodenough/internal/workload"
)

// DefaultRedispatchLimit caps how many times one job is re-routed after
// machine faults before the fleet drops it (still finalized and accounted —
// never silently lost).
const DefaultRedispatchLimit = 3

// Config describes a fleet run.
type Config struct {
	// Machines is the fleet size N.
	Machines int
	// Node is the per-machine configuration (cores, budget, quality, QGE,
	// triggers). Every machine runs the same configuration; Node.Faults
	// must be nil — fleet fault injection is machine-scoped (Faults below).
	Node sched.Config
	// NewPolicy builds one scheduling policy instance per machine (policies
	// carry state, so they cannot be shared).
	NewPolicy func() sched.Policy
	// Dispatch is the global routing policy.
	Dispatch Dispatcher
	// Workload is the fleet-wide arrival stream, routed job by job.
	Workload workload.Spec
	// Faults, when non-nil, injects machine-scoped fault events (crash,
	// partition, degrade, and their recoveries).
	Faults *faults.ClusterSchedule
	// RedispatchLimit caps per-job re-dispatches (0 means
	// DefaultRedispatchLimit).
	RedispatchLimit int
	// Shards is the worker-shard count K. Machines are partitioned into K
	// contiguous shards, each advanced by its own goroutine between global
	// barriers. 0 resolves to min(GOMAXPROCS, Machines/8) with a floor of
	// one; 1 runs the identical barrier loop inline with no goroutines.
	// Event streams, decisions, and results are byte-identical for every K.
	Shards int
	// Observer, when non-nil, receives the structured event stream:
	// fleet-level events (dispatch, re-dispatch, machine health) carry the
	// machine index in Core; per-core events are remapped to globally
	// unique core IDs machine*cores+core.
	Observer obs.Observer
	// Decisions, when non-nil, receives one structured record per routing
	// and health choice (dispatch, re-dispatch, limit drop, degrade
	// replan, per-machine mode switch) with the machine index stamped in.
	Decisions obs.DecisionSink
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.Machines <= 0 {
		return fmt.Errorf("cluster: machines must be positive, got %d", c.Machines)
	}
	if err := c.Node.Validate(); err != nil {
		return fmt.Errorf("cluster: node config: %w", err)
	}
	if c.Node.Faults != nil {
		return fmt.Errorf("cluster: node config carries a per-core fault schedule; fleet faults are machine-scoped (Config.Faults)")
	}
	if c.NewPolicy == nil {
		return fmt.Errorf("cluster: NewPolicy factory required")
	}
	if c.Dispatch == nil {
		return fmt.Errorf("cluster: dispatch policy required")
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(c.Machines); err != nil {
		return fmt.Errorf("cluster: fault schedule: %w", err)
	}
	if c.RedispatchLimit < 0 {
		return fmt.Errorf("cluster: redispatch limit must be non-negative, got %d", c.RedispatchLimit)
	}
	if c.Shards < 0 {
		return fmt.Errorf("cluster: shard count must be non-negative, got %d", c.Shards)
	}
	return nil
}

// resolveShards turns the configured shard count into the effective K.
func resolveShards(requested, machines int) int {
	k := requested
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
		if cap := machines / 8; k > cap {
			k = cap
		}
	}
	if k < 1 {
		k = 1
	}
	if k > machines {
		k = machines
	}
	return k
}

// MachineResult summarizes one machine's run.
type MachineResult struct {
	// Energy is the machine's dynamic energy in joules.
	Energy float64
	// Quality is the batch quality over jobs finalized on this machine.
	Quality float64
	// Completed and Expired count jobs finalized on this machine's cores.
	Completed int64
	Expired   int64
	// Crashes counts machine-level crash events.
	Crashes int64
	// DownTime is the total time the machine spent crashed.
	DownTime float64
	// AESFraction is the fraction of the machine's time in AES mode.
	AESFraction float64
	// Dispatches and Redispatches count jobs routed (and fault re-routed)
	// to this machine — the per-machine decision summary that explains how
	// a dispatch policy spread (or failed to spread) the load.
	Dispatches   int64
	Redispatches int64
}

// Result summarizes a fleet run.
type Result struct {
	// Dispatch and Scheduler name the routing and per-node policies.
	Dispatch  string
	Scheduler string
	// Machines is the fleet size.
	Machines int
	// Jobs is the number of requests generated; every one of them is
	// finalized exactly once (completed, expired, or dropped) — LostForever
	// is the count that escaped accounting and must be zero.
	Jobs        int
	Completed   int64
	Expired     int64
	Dropped     int64
	LostForever int
	// Quality is Σf(processed)/Σf(demand) over every generated job.
	Quality float64
	// Energy totals dynamic energy across the fleet; AESEnergy/BQEnergy
	// split it by the execution mode active while it was consumed.
	Energy    float64
	AESEnergy float64
	BQEnergy  float64
	// AESFraction is the machine-time-weighted AES fraction.
	AESFraction float64
	// MeanResponse, P95Response, P99Response summarize completed jobs'
	// response times in seconds.
	MeanResponse float64
	P95Response  float64
	P99Response  float64
	// Fault accounting. Crashes/Partitions/Degrades count onset events;
	// Redispatches counts re-routes of lost and stranded jobs; LostWork is
	// the in-flight processing (units) wiped by crashes; PendingExpired
	// counts jobs that died parked at the dispatcher with no machine
	// eligible.
	Crashes        int64
	Partitions     int64
	Degrades       int64
	Redispatches   int64
	LostWork       float64
	PendingExpired int64
	// Availability is the time-weighted fraction of machine-time up.
	Availability float64
	// SimTime is the span actually simulated.
	SimTime float64
	// Shards is the effective worker-shard count; ShardEvents and
	// ShardMachines report, per shard, how many events its private heap
	// delivered and how many machines it owned — the visibility knob for
	// uneven partitions. These describe the execution layout, not the
	// simulation: every other field is identical for every shard count.
	Shards        int
	ShardEvents   []int64
	ShardMachines []int
	// PerMachine holds one entry per machine.
	PerMachine []MachineResult
}

// finRec is one buffered finalization: the global accounting side effects of
// a job leaving a machine, replayed at the next barrier in machine-index
// order so float accumulation order never depends on the shard layout. The
// job pointer rides along for recycling into the arrival pool.
type finRec struct {
	j         *job.Job
	processed float64
	demand    float64
	response  float64
	completed bool
}

// node is one simulated machine inside the fleet: a server plus the per-node
// slice of the runner state (waiting queue, quality monitor, mode and energy
// accounting, idle events) and the epoch buffers its shard writes into.
type node struct {
	idx    int
	base   int // global core-ID base: idx * cores
	shard  *shard
	server *machine.Server
	wait   job.FIFO
	policy sched.Policy
	acc    *quality.Accumulator

	// Health. up==false means crashed; partitioned machines keep serving
	// but are unreachable from the dispatcher; slowFactor in (0,1) caps the
	// budget while degraded (0 = nominal).
	up          bool
	partitioned bool
	slowFactor  float64
	downSince   float64
	downTime    float64
	crashes     int64

	arrivalTimes []float64
	idleEvents   []sim.EventID
	idleAt       []float64 // armed wakeup time per core (valid while idleEvents[i] != 0)
	queueExpired int64
	dispatches   int64
	redispatches int64

	// In-flight dispatch adjustments: work routed to this machine whose
	// push event has not yet been delivered by its shard. The cached view
	// adds these on refresh so barrier-stale reads still see routed load.
	inflightQW   float64
	inflightJobs int

	// Epoch buffers, drained by Fleet.flush in machine-index order.
	evbuf    []obs.Event
	decbuf   []obs.Decision
	finbuf   []finRec
	idleNote bool
	dirty    bool

	// Mode accounting (mirrors sched.Runner).
	modeAES      bool
	modeSet      bool
	modeSince    float64
	aesTime      float64
	modeSwitches int64
	lastEnergy   float64
	aesEnergy    float64
	bqEnergy     float64

	pctx       sched.Context
	finalizeFn machine.FinalizeFunc
	obsWrap    obs.Observer

	fleet *Fleet
}

// RecordMode implements sched.ModeSink for this machine.
func (n *node) RecordMode(now float64, aes bool) {
	if n.modeSet {
		if n.modeAES {
			n.aesTime += now - n.modeSince
		}
		if aes != n.modeAES {
			n.modeSwitches++
			obs.Emit(n.obsWrap, obs.Event{Time: now, Type: obs.EventModeSwitch,
				Core: -1, Job: -1, Flag: aes})
			if n.fleet.decisions != nil {
				action := "bq"
				if aes {
					action = "aes"
				}
				n.decbuf = append(n.decbuf, obs.Decision{Time: now, Kind: obs.DecisionModeSwitch,
					Machine: n.idx, Job: -1, Score: n.acc.Quality(),
					Budget: n.server.Budget(), Action: action})
			}
		}
	} else {
		obs.Emit(n.obsWrap, obs.Event{Time: now, Type: obs.EventModeSwitch,
			Core: -1, Job: -1, Flag: aes})
	}
	n.modeAES = aes
	n.modeSet = true
	n.modeSince = now
}

// finalize records a job leaving this machine into the node's quality
// monitor (the policy's compensation signal) immediately, and buffers the
// fleet-global side — accumulator, response sample, recycling — for the
// next barrier flush.
func (n *node) finalize(j *job.Job, r machine.Reason) {
	n.acc.Add(j.Processed, j.Demand)
	completed := r == machine.ReasonCompleted
	n.finbuf = append(n.finbuf, finRec{j: j, processed: j.Processed,
		demand: j.Demand, response: j.Finish - j.Release, completed: completed})
	if completed {
		obs.Emit(n.obsWrap, obs.Event{Time: j.Finish, Type: obs.EventJobComplete,
			Core: j.Core, Job: j.ID, Value: j.Processed, Aux: j.Finish - j.Release})
	} else {
		obs.Emit(n.obsWrap, obs.Event{Time: j.Finish, Type: obs.EventJobExpire,
			Core: j.Core, Job: j.ID, Value: j.Processed, Aux: j.Demand})
	}
}

// expireLocal finalizes a job that dies on this machine without being served
// (queue expiry, or crash wreckage not worth re-running), buffering the
// global accounting like finalize does.
func (n *node) expireLocal(j *job.Job, finish, at float64, core int) {
	j.State = job.StateFinalized
	j.Finish = finish
	n.queueExpired++
	n.acc.Add(j.Processed, j.Demand)
	n.finbuf = append(n.finbuf, finRec{j: j, processed: j.Processed, demand: j.Demand})
	obs.Emit(n.obsWrap, obs.Event{Time: at, Type: obs.EventJobExpire,
		Core: core, Job: j.ID, Value: j.Processed, Aux: j.Demand})
}

func (n *node) noteArrival(now float64, window float64) {
	n.arrivalTimes = append(n.arrivalTimes, now)
	cutoff := now - window
	i := 0
	for i < len(n.arrivalTimes) && n.arrivalTimes[i] < cutoff {
		i++
	}
	if i > 0 {
		n.arrivalTimes = append(n.arrivalTimes[:0], n.arrivalTimes[i:]...)
	}
}

func (n *node) estimateRate(now, window float64) float64 {
	cutoff := now - window
	i := 0
	for i < len(n.arrivalTimes) && n.arrivalTimes[i] < cutoff {
		i++
	}
	if i > 0 {
		n.arrivalTimes = append(n.arrivalTimes[:0], n.arrivalTimes[i:]...)
	}
	w := math.Min(window, math.Max(now, 1e-3))
	return float64(len(n.arrivalTimes)) / w
}

func (n *node) anyIdleCore() bool {
	for _, c := range n.server.Cores {
		if c.Idle() && c.Healthy() {
			return true
		}
	}
	return false
}

// nodeObserver buffers one machine's event emissions into its epoch buffer,
// remapping per-core events onto globally unique core IDs (machine*cores +
// core) so fleet JSONL and Chrome exports keep machines apart without
// changing the obs.Event wire format. Buffers drain at barriers in
// machine-index order, making the merged stream independent of the shard
// layout.
type nodeObserver struct{ n *node }

// Observe implements obs.Observer.
func (o nodeObserver) Observe(e obs.Event) {
	if e.Core >= 0 {
		e.Core += o.n.base
	}
	o.n.evbuf = append(o.n.evbuf, e)
}

// jobRecycler is implemented by workload sources that can reinitialize a
// finalized job in place (workload.Generator.NextInto), keeping the
// steady-state arrival path allocation-free.
type jobRecycler interface {
	NextInto(*job.Job) *job.Job
}

// Fleet is a runnable fleet simulation. Build with New, execute with Run.
type Fleet struct {
	cfg       Config
	nodeCfg   sched.Config
	global    *sim.Engine // arrivals, quanta, machine faults, parked deadlines
	shards    []*shard
	nodes     []*node
	gen       workload.Source
	recycler  jobRecycler
	jobPool   []*job.Job
	pending   job.FIFO // jobs parked at the dispatcher: no machine eligible
	acc       *quality.Accumulator
	obs       obs.Observer
	decisions obs.DecisionSink
	idleSink  idleNotifier

	faultEvents []faults.MachineEvent
	nextArrival *job.Job
	genDone     bool

	// Cached dispatcher view, one slot per machine: refreshed for touched
	// machines at every barrier flush, adjusted additively when a job is
	// routed. Reads cost O(1) and never advance a machine, which is what
	// makes the full-fleet scans in least-loaded and ideal affordable at
	// large N.
	viewQW   []float64
	viewIdle []int
	viewCap  []float64

	// Eligibility index: the eligible machines in swap-remove order,
	// maintained on fault transitions so sampling dispatchers draw in O(1).
	eligList []int
	eligPos  []int
	// drain orders eligible machines by queued-work/capacity for the ideal
	// dispatcher; nil under every other policy.
	drain *drainHeap

	// Crash-path scratch, reused across faults.
	displaced []*job.Job
	drained   []*job.Job

	jobs           int
	finalized      int
	dropped        int64
	redispatches   int64
	lostWork       float64
	pendingExpired int64
	partitions     int64
	degrades       int64
	responses      []float64
	limit          int
}

// New builds a fleet from the configuration.
func New(cfg Config) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:     cfg,
		nodeCfg: cfg.Node,
		gen:     workload.NewGenerator(cfg.Workload),
		acc:     quality.NewAccumulator(cfg.Node.Quality),
		obs:     cfg.Observer,
		limit:   cfg.RedispatchLimit,
	}
	f.decisions = cfg.Decisions
	if r, ok := f.gen.(jobRecycler); ok {
		f.recycler = r
	}
	if f.limit == 0 {
		f.limit = DefaultRedispatchLimit
	}
	f.nodes = make([]*node, cfg.Machines)
	for m := range f.nodes {
		var server *machine.Server
		var err error
		if cfg.Node.Heterogeneous() {
			server, err = machine.NewHeterogeneousServer(cfg.Node.PerCoreModels)
		} else {
			server, err = machine.NewServer(cfg.Node.Cores, cfg.Node.Model)
		}
		if err != nil {
			return nil, err
		}
		server.SetBudget(cfg.Node.PowerBudget)
		n := &node{
			idx:        m,
			base:       m * cfg.Node.Cores,
			server:     server,
			policy:     cfg.NewPolicy(),
			acc:        quality.NewAccumulator(cfg.Node.Quality),
			up:         true,
			idleEvents: make([]sim.EventID, cfg.Node.Cores),
			idleAt:     make([]float64, cfg.Node.Cores),
			fleet:      f,
		}
		if n.policy == nil {
			return nil, fmt.Errorf("cluster: NewPolicy returned nil for machine %d", m)
		}
		n.finalizeFn = n.finalize
		if f.obs != nil {
			n.obsWrap = nodeObserver{n: n}
			server.SetObserver(n.obsWrap)
		}
		f.nodes[m] = n
	}
	k := resolveShards(cfg.Shards, cfg.Machines)
	f.shards = make([]*shard, k)
	lo, size, rem := 0, cfg.Machines/k, cfg.Machines%k
	for i := range f.shards {
		hi := lo + size
		if i < rem {
			hi++
		}
		s := &shard{idx: i, fleet: f, nodes: f.nodes[lo:hi]}
		s.engine = sim.NewEngine(s.handle)
		for _, n := range s.nodes {
			n.shard = s
		}
		f.shards[i] = s
		lo = hi
	}
	f.viewQW = make([]float64, cfg.Machines)
	f.viewIdle = make([]int, cfg.Machines)
	f.viewCap = make([]float64, cfg.Machines)
	f.eligList = make([]int, 0, cfg.Machines)
	f.eligPos = make([]int, cfg.Machines)
	for m := range f.eligPos {
		f.eligPos[m] = -1
	}
	if _, ok := cfg.Dispatch.(*ideal); ok {
		f.drain = newDrainHeap(cfg.Machines)
	}
	f.global = sim.NewEngine(f.handle)
	return f, nil
}

// --- View implementation (the dispatcher's window) ---
//
// All load signals read the barrier-refreshed cache (plus in-flight
// adjustments applied at routing time); only eligibility is live, because
// fault transitions — the events that change it — are themselves barriers.

// Machines implements View.
func (f *Fleet) Machines() int { return len(f.nodes) }

// Eligible implements View: up and reachable.
func (f *Fleet) Eligible(m int) bool {
	n := f.nodes[m]
	return n.up && !n.partitioned
}

// QueuedWork implements View: remaining work waiting plus planned, as of the
// machine's last barrier refresh plus everything routed to it since.
func (f *Fleet) QueuedWork(m int) float64 { return f.viewQW[m] }

// HasIdleCore implements View.
func (f *Fleet) HasIdleCore(m int) bool { return f.viewIdle[m] > 0 }

// Capacity implements View: the machine's sustainable processing rate under
// its current (possibly degraded) budget.
func (f *Fleet) Capacity(m int) float64 { return f.viewCap[m] }

// refreshView recomputes one machine's cached view slots from live state.
// Called at barrier flushes for touched machines and inline on fault
// recovery (so pending-queue drains route on fresh state).
func (f *Fleet) refreshView(n *node) {
	sum := n.server.TotalLoad()
	for _, j := range n.wait.Peek() {
		sum += j.Remaining()
	}
	f.viewQW[n.idx] = sum + n.inflightQW
	idle := 0
	for _, c := range n.server.Cores {
		if c.Idle() && c.Healthy() {
			idle++
		}
	}
	if idle -= n.inflightJobs; idle < 0 {
		idle = 0
	}
	f.viewIdle[n.idx] = idle
	f.viewCap[n.idx] = capacityAt(n.server)
	f.updateDrain(n.idx)
}

// EligibleCount implements eligibleIndex.
func (f *Fleet) EligibleCount() int { return len(f.eligList) }

// EligibleAt implements eligibleIndex.
func (f *Fleet) EligibleAt(rank int) int { return f.eligList[rank] }

// BestDrain implements drainIndex for the ideal dispatcher.
func (f *Fleet) BestDrain() (int, float64, bool) {
	if f.drain == nil || len(f.drain.heap) == 0 {
		return -1, 0, false
	}
	m := f.drain.heap[0]
	return m, f.drain.score[m], true
}

// setEligible maintains the eligibility index across a machine's fault
// transitions (swap-remove keeps both directions O(1)).
func (f *Fleet) setEligible(m int, ok bool) {
	at := f.eligPos[m]
	if ok {
		if at < 0 {
			f.eligPos[m] = len(f.eligList)
			f.eligList = append(f.eligList, m)
		}
	} else if at >= 0 {
		last := len(f.eligList) - 1
		moved := f.eligList[last]
		f.eligList[at] = moved
		f.eligPos[moved] = at
		f.eligList = f.eligList[:last]
		f.eligPos[m] = -1
	}
	f.updateDrain(m)
}

// updateDrain re-keys one machine in the ideal dispatcher's drain heap.
func (f *Fleet) updateDrain(m int) {
	if f.drain == nil {
		return
	}
	n := f.nodes[m]
	if !n.up || n.partitioned {
		f.drain.remove(m)
		return
	}
	s := inf
	if c := f.viewCap[m]; c > 0 {
		s = f.viewQW[m] / c
	}
	f.drain.update(m, s)
}

// --- event loop (global phase; the shard phase lives in shard.go) ---

// Run executes the fleet simulation to completion.
func (f *Fleet) Run() (Result, error) {
	f.cfg.Dispatch.Reset()
	for _, n := range f.nodes {
		n.policy.Reset()
	}
	if in, ok := f.cfg.Dispatch.(idleNotifier); ok {
		f.idleSink = in
		for m := range f.nodes {
			in.NoteIdle(m)
		}
	}
	for m, n := range f.nodes {
		f.refreshView(n)
		f.setEligible(m, true)
	}
	if err := f.scheduleNextArrival(); err != nil {
		return Result{}, err
	}
	if _, err := f.global.Schedule(f.nodeCfg.QuantumSec, sim.KindQuantum); err != nil {
		return Result{}, err
	}
	// Machine fault events get priority -1 so a crash at time t is observed
	// before any arrival or quantum tick at the same instant.
	f.faultEvents = f.cfg.Faults.Events()
	for i, fe := range f.faultEvents {
		if _, err := f.global.ScheduleWithPriority(fe.At, sim.KindMachineFault, i, -1); err != nil {
			return Result{}, err
		}
	}
	if err := f.global.Run(); err != nil {
		return Result{}, err
	}
	// Trailing shard events: deadlines past the last global event are
	// delivered so expiry accounting and the simulated span match the
	// shared-heap semantics exactly.
	if err := f.shardPhase(math.Inf(1)); err != nil {
		return Result{}, err
	}
	f.flush()
	return f.result(), nil
}

// handle is the global-phase event dispatcher: arrivals and parked-job
// deadlines route on the cached view; quantum ticks and machine faults are
// barriers that first drain every shard up to their instant.
func (f *Fleet) handle(e *sim.Event) error {
	now := e.Time
	switch e.Kind {
	case sim.KindArrival:
		j := f.nextArrival
		f.nextArrival = nil
		f.jobs++
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventJobArrive,
			Core: -1, Job: j.ID, Value: j.Demand, Aux: j.Deadline})
		if err := f.scheduleNextArrival(); err != nil {
			return err
		}
		return f.dispatch(j, now, false)

	case sim.KindDeadline:
		// Parked-job deadline watch; machine-held jobs expire on their
		// shard's deadline events.
		f.expirePending(now)

	case sim.KindQuantum:
		if err := f.barrier(now); err != nil {
			return err
		}
		if err := f.quantumFanout(now); err != nil {
			return err
		}
		f.flush()
		if !f.finished() {
			if _, err := f.global.Schedule(now+f.nodeCfg.QuantumSec, sim.KindQuantum); err != nil {
				return err
			}
		}

	case sim.KindMachineFault:
		if err := f.barrier(now); err != nil {
			return err
		}
		if err := f.applyMachineFault(now, f.faultEvents[e.Ref]); err != nil {
			return err
		}
		f.flush()
	}
	return nil
}

// syncNode advances one machine to the present and settles its accounting.
func (f *Fleet) syncNode(n *node, now float64) error {
	if err := n.server.Advance(now, n.finalizeFn); err != nil {
		return fmt.Errorf("cluster: machine %d: %w", n.idx, err)
	}
	if delta := n.server.Energy() - n.lastEnergy; delta > 0 {
		if n.modeAES {
			n.aesEnergy += delta
		} else {
			n.bqEnergy += delta
		}
		n.lastEnergy = n.server.Energy()
	}
	f.expireWaiting(n, now)
	n.dirty = true
	return nil
}

// catchUp advances a machine to the present before anything lands on it —
// a policy invocation, a pushed job, a fault transition — so no work ever
// executes against a stale clock. Per-machine touch times are
// non-decreasing (shard heaps deliver in time order, and barriers only move
// clocks forward), so a node already at the present was settled at this
// instant, queue expiry included.
func (f *Fleet) catchUp(n *node, now float64) error {
	if n.server.Now() >= now {
		return nil
	}
	return f.syncNode(n, now)
}

// expireWaiting finalizes a node's queued jobs whose deadlines passed
// unserved.
func (f *Fleet) expireWaiting(n *node, now float64) {
	for {
		j := n.wait.PopExpired(now)
		if j == nil {
			return
		}
		n.expireLocal(j, j.Deadline, now, -1)
	}
}

// expirePending finalizes jobs that died parked at the dispatcher — the
// whole fleet was unreachable for their entire remaining window. Runs in the
// global phase, so it settles accounting directly rather than buffering.
func (f *Fleet) expirePending(now float64) {
	for {
		j := f.pending.PopExpired(now)
		if j == nil {
			return
		}
		j.State = job.StateFinalized
		j.Finish = j.Deadline
		f.pendingExpired++
		f.acc.Add(j.Processed, j.Demand)
		f.finalized++
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventJobExpire,
			Core: -1, Job: j.ID, Value: j.Processed, Aux: j.Demand})
		f.recycle(j)
	}
}

// invoke runs one machine's scheduling policy and re-arms its idle events.
// Safe from a shard worker (everything it touches is node-local).
func (f *Fleet) invoke(n *node, now float64, trig sched.Trigger) error {
	if err := f.catchUp(n, now); err != nil {
		return err
	}
	obs.Emit(n.obsWrap, obs.Event{Time: now, Type: obs.EventBatch, Core: -1, Job: -1,
		Value: float64(n.wait.Len()), Aux: float64(trig)})
	n.pctx = sched.Context{
		Now:         now,
		Trigger:     trig,
		Cfg:         &f.nodeCfg,
		Budget:      n.server.Budget(),
		Server:      n.server,
		Waiting:     &n.wait,
		Monitor:     n.acc,
		ArrivalRate: n.estimateRate(now, f.nodeCfg.RateWindow),
		Finalize:    n.finalizeFn,
		Observer:    n.obsWrap,
		Modes:       n,
	}
	n.policy.Schedule(&n.pctx)
	f.refreshIdleEvents(n, now)
	n.dirty = true
	return nil
}

// refreshIdleEvents re-arms a KindCoreIdle event per busy core at its
// projected drain time on the machine's shard heap, tagged with the machine
// index in Ref. A core whose projected time is unchanged keeps its armed
// event — re-planning one core must not churn the heap for the other seven.
func (f *Fleet) refreshIdleEvents(n *node, now float64) {
	eng := n.shard.engine
	for i, c := range n.server.Cores {
		if c.Idle() || !c.Healthy() {
			if id := n.idleEvents[i]; id != 0 {
				eng.Cancel(id)
				n.idleEvents[i] = 0
			}
			continue
		}
		at := c.ProjectedIdle(now)
		if at < now {
			at = now
		}
		at += 1e-9
		if id := n.idleEvents[i]; id != 0 {
			if n.idleAt[i] == at {
				continue
			}
			eng.Cancel(id)
			n.idleEvents[i] = 0
		}
		id, err := eng.ScheduleCoreRef(at, sim.KindCoreIdle, i, n.idx)
		if err == nil {
			n.idleEvents[i] = id
			n.idleAt[i] = at
		}
	}
}

// noteIdleNow tells heap-keeping dispatchers this machine has spare
// capacity, immediately. Global phase only (fault recovery); shard workers
// set node.idleNote instead, applied at the barrier flush.
func (f *Fleet) noteIdleNow(n *node) {
	if f.idleSink == nil || !n.up || n.partitioned || !n.anyIdleCore() {
		return
	}
	f.idleSink.NoteIdle(n.idx)
}

// recycle returns a finalized job to the arrival pool when the workload
// source supports in-place reinitialization.
func (f *Fleet) recycle(j *job.Job) {
	if f.recycler != nil && !f.genDone {
		f.jobPool = append(f.jobPool, j)
	}
}

// dispatch routes one job on the cached view. With no eligible machine the
// job parks at the dispatcher — watched by a global deadline event — until a
// machine recovers or the deadline passes.
func (f *Fleet) dispatch(j *job.Job, now float64, redisp bool) error {
	m, score, ok := f.cfg.Dispatch.Pick(f)
	if !ok {
		f.pending.Push(j)
		if _, err := f.global.Schedule(j.Deadline, sim.KindDeadline); err != nil {
			return err
		}
		if f.decisions != nil {
			// No eligible machine: the job parks at the dispatcher.
			f.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionDispatch,
				Machine: -1, Job: j.ID, Action: "park"})
		}
		return nil
	}
	n := f.nodes[m]
	if err := f.sendJob(n, j, now); err != nil {
		return err
	}
	if redisp {
		f.redispatches++
		n.redispatches++
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventRedispatch,
			Core: m, Job: j.ID, Value: float64(j.Requeues), Aux: j.Remaining()})
		if f.decisions != nil {
			f.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionRedispatch,
				Machine: m, Job: j.ID, Score: score, Alts: j.Requeues,
				Load: j.Remaining(), Budget: n.server.Budget(), Action: "redispatch"})
		}
	} else {
		n.dispatches++
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventDispatch,
			Core: m, Job: j.ID, Value: score, Aux: float64(len(f.eligList))})
		if f.decisions != nil {
			f.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionDispatch,
				Machine: m, Job: j.ID, Score: score, Alts: len(f.eligList),
				Load: f.viewQW[m], Budget: n.server.Budget(), Action: "dispatch"})
		}
	}
	return nil
}

// sendJob hands a routed job to the target machine's shard (push event at
// now, deadline watch at the job's deadline) and adjusts the cached view so
// subsequent picks this epoch see the routed load.
func (f *Fleet) sendJob(n *node, j *job.Job, now float64) error {
	if err := n.shard.push(now, n, j); err != nil {
		return err
	}
	n.inflightQW += j.Remaining()
	n.inflightJobs++
	f.viewQW[n.idx] += j.Remaining()
	if f.viewIdle[n.idx] > 0 {
		f.viewIdle[n.idx]--
	}
	f.updateDrain(n.idx)
	return nil
}

// redispatch re-routes a job displaced by a machine fault, enforcing the
// retry cap: beyond the limit the job is dropped — finalized with whatever
// it achieved (nothing, after a crash wipe) so it never escapes accounting.
func (f *Fleet) redispatch(j *job.Job, now float64) error {
	if j.Requeues > f.limit {
		j.State = job.StateFinalized
		j.Finish = now
		f.dropped++
		f.acc.Add(j.Processed, j.Demand)
		f.finalized++
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventJobDrop,
			Core: -1, Job: j.ID, Value: j.Processed, Aux: j.Demand})
		if f.decisions != nil {
			f.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionDrop,
				Machine: -1, Job: j.ID, Alts: j.Requeues, Load: j.Remaining(),
				Action: "limit"})
		}
		f.recycle(j)
		return nil
	}
	return f.dispatch(j, now, true)
}

// applyMachineFault transitions one machine's health state. Runs at a
// barrier: every shard has drained to now, so the machine's live state is
// exact.
func (f *Fleet) applyMachineFault(now float64, fe faults.MachineEvent) error {
	n := f.nodes[fe.Machine]
	if err := f.catchUp(n, now); err != nil {
		return err
	}
	switch fe.Kind {
	case faults.MachineCrash:
		if !n.up {
			return nil
		}
		n.up = false
		n.downSince = now
		n.crashes++
		f.setEligible(n.idx, false)
		// Halt every core; in-flight progress is wiped — this is the
		// difference from a core failure, where partial work survives on
		// the job. The wiped units are the crash's lost work.
		f.displaced = f.displaced[:0]
		orphans := 0
		wiped := 0.0
		for i, c := range n.server.Cores {
			if id := n.idleEvents[i]; id != 0 {
				n.shard.engine.Cancel(id)
				n.idleEvents[i] = 0
			}
			for _, entry := range c.Fail(now) {
				j := entry.Job
				if j.Done() || j.Expired(now) {
					// Nothing worth re-running elsewhere; finalize in place.
					n.expireLocal(j, now, now, i)
					continue
				}
				orphans++
				wiped += j.Processed
				j.Processed = 0
				j.Core = -1
				j.State = job.StateWaiting
				j.Requeues++
				f.displaced = append(f.displaced, j)
			}
		}
		// Stranded waiting jobs: never started, but the machine holding
		// them is gone; they re-route with the same retry accounting.
		f.drained = n.wait.AppendDrain(f.drained[:0])
		for _, j := range f.drained {
			if j.Expired(now) {
				n.expireLocal(j, j.Deadline, now, -1)
				continue
			}
			j.Requeues++
			f.displaced = append(f.displaced, j)
		}
		f.lostWork += wiped
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventMachineDown,
			Core: n.idx, Job: -1, Value: float64(orphans), Aux: wiped})
		for _, j := range f.displaced {
			if err := f.redispatch(j, now); err != nil {
				return err
			}
		}

	case faults.MachineRecover:
		if n.up {
			return nil
		}
		n.up = true
		n.downTime += now - n.downSince
		for _, c := range n.server.Cores {
			c.Recover(now)
		}
		f.setEligible(n.idx, !n.partitioned)
		f.refreshView(n)
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventMachineUp,
			Core: n.idx, Job: -1})
		f.noteIdleNow(n)
		return f.drainPending(now)

	case faults.MachinePartition:
		if n.partitioned {
			return nil
		}
		n.partitioned = true
		f.partitions++
		f.setEligible(n.idx, false)
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventMachinePartition,
			Core: n.idx, Job: -1, Flag: true})

	case faults.MachineHeal:
		if !n.partitioned {
			return nil
		}
		n.partitioned = false
		f.setEligible(n.idx, n.up)
		f.refreshView(n)
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventMachinePartition,
			Core: n.idx, Job: -1, Flag: false})
		f.noteIdleNow(n)
		return f.drainPending(now)

	case faults.MachineSlow:
		n.slowFactor = fe.Factor
		n.server.SetBudget(f.nodeCfg.PowerBudget * fe.Factor)
		f.degrades++
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventMachineDegrade,
			Core: n.idx, Job: -1, Flag: true, Value: fe.Factor})
		if f.decisions != nil {
			f.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionReplan,
				Machine: n.idx, Job: -1, Budget: n.server.Budget(),
				Score: fe.Factor, Action: "slow"})
		}
		if n.up {
			return f.invoke(n, now, sched.TriggerFault)
		}

	case faults.MachineRestore:
		n.slowFactor = 0
		n.server.SetBudget(f.nodeCfg.PowerBudget)
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventMachineDegrade,
			Core: n.idx, Job: -1, Flag: false, Value: 1})
		if f.decisions != nil {
			f.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionReplan,
				Machine: n.idx, Job: -1, Budget: n.server.Budget(),
				Score: 1, Action: "restore"})
		}
		if n.up {
			return f.invoke(n, now, sched.TriggerFault)
		}
	}
	return nil
}

// drainPending re-routes jobs parked at the dispatcher once a machine is
// reachable again, oldest first.
func (f *Fleet) drainPending(now float64) error {
	for f.pending.Len() > 0 {
		j := f.pending.Peek()[0]
		m, score, ok := f.cfg.Dispatch.Pick(f)
		if !ok {
			return nil
		}
		f.pending.PopJob(j)
		n := f.nodes[m]
		if err := f.sendJob(n, j, now); err != nil {
			return err
		}
		n.dispatches++
		obs.Emit(f.obs, obs.Event{Time: now, Type: obs.EventDispatch,
			Core: m, Job: j.ID, Value: score, Aux: 0})
		if f.decisions != nil {
			f.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionDispatch,
				Machine: m, Job: j.ID, Score: score,
				Budget: n.server.Budget(), Action: "drain"})
		}
	}
	return nil
}

func (f *Fleet) scheduleNextArrival() error {
	if f.genDone {
		return nil
	}
	var j *job.Job
	if n := len(f.jobPool); f.recycler != nil && n > 0 {
		j = f.recycler.NextInto(f.jobPool[n-1])
		f.jobPool = f.jobPool[:n-1]
	} else {
		j = f.gen.Next()
	}
	if j == nil {
		f.genDone = true
		return nil
	}
	if _, err := f.global.Schedule(j.Release, sim.KindArrival); err != nil {
		return fmt.Errorf("cluster: job source emitted job %d out of order: %w", j.ID, err)
	}
	f.nextArrival = j
	return nil
}

// finished reports whether quantum ticks can stop: no future arrivals,
// nothing parked, every generated job finalized (a busy core or queued job
// implies an unfinalized one, so this subsumes the old all-cores-idle scan).
// Exact at quantum barriers, where every finalization buffer has flushed.
func (f *Fleet) finished() bool {
	return f.genDone && f.pending.Len() == 0 && f.finalized == f.jobs
}

// result assembles the fleet summary after the event queues drain.
func (f *Fleet) result() Result {
	simTime := f.global.Now()
	for _, s := range f.shards {
		if t := s.engine.Now(); t > simTime {
			simTime = t
		}
	}
	res := Result{
		Dispatch:       f.cfg.Dispatch.Name(),
		Scheduler:      f.nodes[0].policy.Name(),
		Machines:       len(f.nodes),
		Jobs:           f.jobs,
		Dropped:        f.dropped,
		LostForever:    f.jobs - f.finalized,
		Quality:        f.acc.Quality(),
		Redispatches:   f.redispatches,
		LostWork:       f.lostWork,
		PendingExpired: f.pendingExpired,
		Partitions:     f.partitions,
		Degrades:       f.degrades,
		SimTime:        simTime,
		Shards:         len(f.shards),
		ShardEvents:    make([]int64, len(f.shards)),
		ShardMachines:  make([]int, len(f.shards)),
		PerMachine:     make([]MachineResult, len(f.nodes)),
	}
	for i, s := range f.shards {
		res.ShardEvents[i] = s.engine.Processed
		res.ShardMachines[i] = len(s.nodes)
	}
	res.MeanResponse = stats.Mean(f.responses)
	res.P95Response = stats.Quantile(f.responses, 0.95)
	res.P99Response = stats.Quantile(f.responses, 0.99)
	downTotal := 0.0
	aesTotal := 0.0
	anyMode := false
	for i, n := range f.nodes {
		// Flush the open mode interval and the machine's down interval.
		if n.modeSet {
			n.RecordMode(simTime, n.modeAES)
			anyMode = true
		}
		down := n.downTime
		if !n.up {
			down += simTime - n.downSince
		}
		downTotal += down
		aesTotal += n.aesTime
		mr := MachineResult{
			Energy:       n.server.Energy(),
			Quality:      n.acc.Quality(),
			Completed:    n.server.Completed(),
			Expired:      n.server.Expired() + n.queueExpired,
			Crashes:      n.crashes,
			DownTime:     down,
			Dispatches:   n.dispatches,
			Redispatches: n.redispatches,
		}
		if simTime > 0 && n.modeSet {
			mr.AESFraction = n.aesTime / simTime
		}
		res.PerMachine[i] = mr
		res.Energy += n.server.Energy()
		res.AESEnergy += n.aesEnergy
		res.BQEnergy += n.bqEnergy
		res.Completed += n.server.Completed()
		res.Expired += n.server.Expired() + n.queueExpired
		res.Crashes += n.crashes
	}
	res.Expired += f.pendingExpired
	if simTime > 0 {
		machineTime := simTime * float64(len(f.nodes))
		res.Availability = 1 - downTotal/machineTime
		if anyMode {
			res.AESFraction = aesTotal / machineTime
		}
	} else {
		res.Availability = 1
	}
	obs.Emit(f.obs, obs.Event{Time: simTime, Type: obs.EventRunEnd,
		Core: -1, Job: -1, Value: simTime})
	return res
}

// EventsProcessed reports how many kernel events the run delivered, summed
// over the global heap and every shard heap.
func (f *Fleet) EventsProcessed() int64 {
	total := f.global.Processed
	for _, s := range f.shards {
		total += s.engine.Processed
	}
	return total
}
