package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultMatchesPaper(t *testing.T) {
	m := Default()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper: a=5, β=2, a 2 GHz core draws 20 W, 16 such cores draw the
	// default 320 W budget.
	if got := m.Power(2); math.Abs(got-20) > 1e-12 {
		t.Fatalf("P(2GHz) = %v, want 20 W", got)
	}
	if got := 16 * m.Power(2); math.Abs(got-320) > 1e-12 {
		t.Fatalf("16 cores at 2GHz = %v, want 320 W", got)
	}
}

func TestPowerSpeedRoundTrip(t *testing.T) {
	m := Default()
	for s := 0.1; s <= 4; s += 0.1 {
		p := m.Power(s)
		back := m.Speed(p)
		if math.Abs(back-s) > 1e-9 {
			t.Fatalf("Speed(Power(%v)) = %v", s, back)
		}
	}
}

func TestPowerEdges(t *testing.T) {
	m := Default()
	if m.Power(0) != 0 {
		t.Fatal("P(0) must be 0")
	}
	if m.Power(-1) != 0 {
		t.Fatal("P(negative) must clamp to 0")
	}
	if m.Speed(0) != 0 {
		t.Fatal("Speed(0) must be 0")
	}
	if m.Speed(-5) != 0 {
		t.Fatal("Speed(negative) must clamp to 0")
	}
}

func TestSpeedRespectMaxSpeed(t *testing.T) {
	m := Model{A: 5, Beta: 2, MaxSpeed: 2.5}
	if got := m.Speed(1000); got != 2.5 {
		t.Fatalf("capped speed = %v, want 2.5", got)
	}
	if got := m.Speed(5); got >= 2.5 {
		t.Fatalf("uncapped region affected: %v", got)
	}
}

func TestPowerConvexity(t *testing.T) {
	// The whole thrashing argument rests on convexity: averaging speeds
	// must never cost more than averaging powers.
	m := Default()
	for a := 0.0; a <= 4; a += 0.25 {
		for b := a; b <= 4; b += 0.25 {
			mid := m.Power((a + b) / 2)
			chord := (m.Power(a) + m.Power(b)) / 2
			if mid > chord+1e-9 {
				t.Fatalf("power not convex at (%v,%v)", a, b)
			}
		}
	}
}

func TestThrashingCostsEnergy(t *testing.T) {
	// Running 1s at 1 GHz + 1s at 3 GHz does the same work as 2s at 2 GHz
	// but must consume strictly more energy under a convex power curve.
	m := Default()
	thrash := m.Energy(1, 1) + m.Energy(3, 1)
	steady := m.Energy(2, 2)
	if thrash <= steady {
		t.Fatalf("thrashing energy %v should exceed steady energy %v", thrash, steady)
	}
}

func TestTotalPowerIncludesStatic(t *testing.T) {
	m := Model{A: 5, Beta: 2, Static: 3}
	if got := m.TotalPower(2); math.Abs(got-23) > 1e-12 {
		t.Fatalf("TotalPower = %v, want 23", got)
	}
	if got := m.Power(2); math.Abs(got-20) > 1e-12 {
		t.Fatalf("Power must exclude static, got %v", got)
	}
}

func TestEnergy(t *testing.T) {
	m := Default()
	if got := m.Energy(2, 10); math.Abs(got-200) > 1e-12 {
		t.Fatalf("Energy(2GHz, 10s) = %v, want 200 J", got)
	}
	if m.Energy(2, 0) != 0 || m.Energy(2, -1) != 0 {
		t.Fatal("non-positive duration must give zero energy")
	}
}

func TestRateConversions(t *testing.T) {
	if Rate(2) != 2000 {
		t.Fatalf("Rate(2GHz) = %v, want 2000 units/s (paper definition)", Rate(2))
	}
	if SpeedForRate(2000) != 2 {
		t.Fatalf("SpeedForRate(2000) = %v, want 2", SpeedForRate(2000))
	}
}

func TestEnergyForWork(t *testing.T) {
	m := Default()
	// 2000 units in 1 s needs 2 GHz → 20 W → 20 J.
	if got := m.EnergyForWork(2000, 1); math.Abs(got-20) > 1e-12 {
		t.Fatalf("EnergyForWork = %v, want 20", got)
	}
	if m.EnergyForWork(0, 1) != 0 || m.EnergyForWork(100, 0) != 0 {
		t.Fatal("degenerate EnergyForWork should be 0")
	}
	// Stretching the deadline always saves energy (β > 1).
	tight := m.EnergyForWork(1000, 0.5)
	loose := m.EnergyForWork(1000, 1.0)
	if loose >= tight {
		t.Fatalf("longer window should cost less energy: %v vs %v", loose, tight)
	}
}

func TestValidate(t *testing.T) {
	bad := []Model{
		{A: 0, Beta: 2},
		{A: -1, Beta: 2},
		{A: 5, Beta: 1},
		{A: 5, Beta: 0.5},
		{A: 5, Beta: 2, Static: -1},
		{A: 5, Beta: 2, MaxSpeed: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid model %+v", i, m)
		}
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("default model rejected: %v", err)
	}
}

func TestNewLadder(t *testing.T) {
	l, err := NewLadder([]float64{2.0, 0.5, 1.0, 1.0, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1.0, 1.5, 2.0}
	got := l.Speeds()
	if len(got) != len(want) {
		t.Fatalf("ladder speeds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ladder speeds = %v, want %v", got, want)
		}
	}
	if l.Min() != 0.5 || l.Max() != 2.0 || l.Len() != 4 {
		t.Fatalf("ladder accessors wrong: min=%v max=%v len=%d", l.Min(), l.Max(), l.Len())
	}
}

func TestNewLadderRejectsInvalid(t *testing.T) {
	if _, err := NewLadder(nil); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := NewLadder([]float64{1, 0}); err == nil {
		t.Error("zero speed accepted")
	}
	if _, err := NewLadder([]float64{-1}); err == nil {
		t.Error("negative speed accepted")
	}
	if _, err := NewLadder([]float64{math.NaN()}); err == nil {
		t.Error("NaN speed accepted")
	}
}

func TestUniformLadder(t *testing.T) {
	l, err := UniformLadder(3.2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 16 {
		t.Fatalf("uniform ladder len = %d, want 16", l.Len())
	}
	if math.Abs(l.Min()-0.2) > 1e-12 || math.Abs(l.Max()-3.2) > 1e-12 {
		t.Fatalf("uniform ladder bounds = [%v, %v]", l.Min(), l.Max())
	}
	if _, err := UniformLadder(0, 4); err == nil {
		t.Error("invalid uniform ladder accepted")
	}
	if _, err := UniformLadder(2, 0); err == nil {
		t.Error("zero-step uniform ladder accepted")
	}
}

func TestLadderUpDown(t *testing.T) {
	l, _ := NewLadder([]float64{0.5, 1.0, 1.5, 2.0})
	cases := []struct {
		s       float64
		up      float64
		upOK    bool
		down    float64
		downOK  bool
		nearest float64
	}{
		{0.3, 0.5, true, 0, false, 0.5},
		{0.5, 0.5, true, 0.5, true, 0.5},
		{0.7, 1.0, true, 0.5, true, 0.5},
		{0.8, 1.0, true, 0.5, true, 1.0},
		{0.75, 1.0, true, 0.5, true, 1.0}, // tie rounds up
		{2.0, 2.0, true, 2.0, true, 2.0},
		{2.5, 2.0, false, 2.0, true, 2.0},
	}
	for _, c := range cases {
		up, okUp := l.Up(c.s)
		if up != c.up || okUp != c.upOK {
			t.Errorf("Up(%v) = (%v,%v), want (%v,%v)", c.s, up, okUp, c.up, c.upOK)
		}
		down, okDown := l.Down(c.s)
		if down != c.down || okDown != c.downOK {
			t.Errorf("Down(%v) = (%v,%v), want (%v,%v)", c.s, down, okDown, c.down, c.downOK)
		}
		if n := l.Nearest(c.s); n != c.nearest {
			t.Errorf("Nearest(%v) = %v, want %v", c.s, n, c.nearest)
		}
	}
}

// Property: Up(s) >= s whenever ok, Down(s) <= s whenever ok, and both are
// ladder members.
func TestLadderBracketProperty(t *testing.T) {
	l, _ := UniformLadder(3.2, 16)
	member := func(v float64) bool {
		for _, s := range l.Speeds() {
			if math.Abs(s-v) < 1e-12 {
				return true
			}
		}
		return false
	}
	prop := func(raw uint16) bool {
		s := float64(raw) / 65535 * 4
		if up, ok := l.Up(s); ok && (up < s-1e-12 || !member(up)) {
			return false
		}
		if down, ok := l.Down(s); ok && (down > s+1e-12 || !member(down)) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Speed(p) never draws more than p when fed back through Power.
func TestSpeedPowerSafetyProperty(t *testing.T) {
	m := Default()
	prop := func(raw uint16) bool {
		p := float64(raw) / 65535 * 400
		s := m.Speed(p)
		return m.Power(s) <= p+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPowerSpeed(b *testing.B) {
	m := Default()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.Speed(float64(i%320) + 1)
	}
	_ = sink
}
