// Package power implements the paper's DVFS power model and discrete speed
// ladders.
//
// Each core's dynamic power follows the well-established convex model
// P(s) = a·s^β with a > 0 and β > 1 (Yao-Demers-Shenker; paper defaults
// a = 5, β = 2, speed s in GHz). A core at s GHz processes UnitsPerGHz·s
// processing units per second (paper: 1 GHz ⇒ 1000 units/s). Static power
// is a constant offset common to every scheduling algorithm; the model
// carries an optional static term for ablations, but all paper experiments
// run with it at zero, exactly as the paper does.
package power

import (
	"fmt"
	"math"
	"sort"
)

// UnitsPerGHz is the processing-rate conversion used throughout the paper:
// a core running at 1 GHz completes 1000 processing units per second.
const UnitsPerGHz = 1000.0

// Model is the per-core dynamic power model P(s) = A·s^Beta (+ Static).
type Model struct {
	// A is the scaling factor (paper default 5).
	A float64
	// Beta is the convexity exponent, > 1 (paper default 2).
	Beta float64
	// Static is an optional per-core static power term in watts. The paper
	// excludes static power from all measurements; keep it at 0 to
	// reproduce the paper.
	Static float64
	// MaxSpeed optionally caps the core speed in GHz. Zero means the speed
	// is limited only by the power assigned to the core.
	MaxSpeed float64
}

// Default returns the paper's power model: P = 5·s², no static power, no
// explicit speed cap.
func Default() Model { return Model{A: 5, Beta: 2} }

// Validate reports whether the model parameters are physically meaningful.
func (m Model) Validate() error {
	if m.A <= 0 {
		return fmt.Errorf("power: scaling factor A must be positive, got %v", m.A)
	}
	if m.Beta <= 1 {
		return fmt.Errorf("power: exponent Beta must exceed 1, got %v", m.Beta)
	}
	if m.Static < 0 {
		return fmt.Errorf("power: static power must be non-negative, got %v", m.Static)
	}
	if m.MaxSpeed < 0 {
		return fmt.Errorf("power: MaxSpeed must be non-negative, got %v", m.MaxSpeed)
	}
	return nil
}

// Power returns the dynamic power in watts drawn by a core at speed s GHz.
// The static term is NOT included; use TotalPower for that.
//
// The Beta == 2 fast path is bit-identical to math.Pow: Pow's integer-
// exponent path computes the square with one correctly-rounded
// multiplication, exactly like s*s, so the paper-default quadratic model
// skips the general pow machinery without perturbing a single ULP.
func (m Model) Power(s float64) float64 {
	if s <= 0 {
		return 0
	}
	if m.Beta == 2 {
		return m.A * (s * s)
	}
	return m.A * math.Pow(s, m.Beta)
}

// TotalPower returns dynamic plus static power at speed s.
func (m Model) TotalPower(s float64) float64 { return m.Power(s) + m.Static }

// Speed returns the highest speed in GHz sustainable within a dynamic power
// allowance of p watts, respecting MaxSpeed when set.
//
// The Beta == 2 fast path is bit-identical to the general form because
// math.Pow(x, 0.5) is specified (and implemented) as math.Sqrt(x).
func (m Model) Speed(p float64) float64 {
	if p <= 0 {
		return 0
	}
	var s float64
	if m.Beta == 2 {
		s = math.Sqrt(p / m.A)
	} else {
		s = math.Pow(p/m.A, 1/m.Beta)
	}
	if m.MaxSpeed > 0 && s > m.MaxSpeed {
		s = m.MaxSpeed
	}
	return s
}

// Energy returns the dynamic energy in joules consumed by running at speed
// s for dt seconds.
func (m Model) Energy(s, dt float64) float64 {
	if dt <= 0 {
		return 0
	}
	return m.Power(s) * dt
}

// Rate converts a speed in GHz to a processing rate in units per second.
func Rate(s float64) float64 { return s * UnitsPerGHz }

// SpeedForRate converts a processing rate in units/second to a speed in GHz.
func SpeedForRate(rate float64) float64 { return rate / UnitsPerGHz }

// EnergyForWork returns the minimal dynamic energy to process `work` units
// within `dt` seconds at constant speed, i.e. running exactly at
// work/(dt·UnitsPerGHz) GHz. Running at constant speed is optimal because
// the power curve is convex (the paper's core-speed-thrashing argument).
func (m Model) EnergyForWork(work, dt float64) float64 {
	if work <= 0 || dt <= 0 {
		return 0
	}
	s := SpeedForRate(work / dt)
	return m.Energy(s, dt)
}

// Ladder is a sorted set of discrete speeds (GHz) available to a core under
// discrete DVFS. The empty ladder means continuous scaling.
type Ladder struct {
	speeds []float64 // ascending, deduplicated, positive
}

// NewLadder builds a ladder from the given speeds. Non-positive entries are
// rejected. The speeds are copied, sorted, and deduplicated.
func NewLadder(speeds []float64) (*Ladder, error) {
	if len(speeds) == 0 {
		return nil, fmt.Errorf("power: ladder needs at least one speed")
	}
	cp := make([]float64, 0, len(speeds))
	for _, s := range speeds {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("power: invalid ladder speed %v", s)
		}
		cp = append(cp, s)
	}
	sort.Float64s(cp)
	dedup := cp[:1]
	for _, s := range cp[1:] {
		if s != dedup[len(dedup)-1] {
			dedup = append(dedup, s)
		}
	}
	return &Ladder{speeds: dedup}, nil
}

// UniformLadder builds a ladder with `steps` equally spaced speeds from
// step size up to max (e.g. UniformLadder(3.2, 16) gives 0.2, 0.4, … 3.2).
func UniformLadder(max float64, steps int) (*Ladder, error) {
	if max <= 0 || steps < 1 {
		return nil, fmt.Errorf("power: invalid uniform ladder max=%v steps=%d", max, steps)
	}
	speeds := make([]float64, steps)
	for i := range speeds {
		speeds[i] = max * float64(i+1) / float64(steps)
	}
	return NewLadder(speeds)
}

// Speeds returns a copy of the ladder's speeds in ascending order.
func (l *Ladder) Speeds() []float64 {
	cp := make([]float64, len(l.speeds))
	copy(cp, l.speeds)
	return cp
}

// Max returns the fastest discrete speed.
func (l *Ladder) Max() float64 { return l.speeds[len(l.speeds)-1] }

// Min returns the slowest discrete speed.
func (l *Ladder) Min() float64 { return l.speeds[0] }

// Len returns the number of discrete levels.
func (l *Ladder) Len() int { return len(l.speeds) }

// Up returns the smallest discrete speed >= s. If s exceeds the fastest
// level, the fastest level is returned along with ok=false.
func (l *Ladder) Up(s float64) (speed float64, ok bool) {
	i := sort.SearchFloat64s(l.speeds, s)
	if i == len(l.speeds) {
		return l.Max(), false
	}
	return l.speeds[i], true
}

// Down returns the largest discrete speed <= s. If s is below the slowest
// level, 0 is returned along with ok=false (the core idles — discrete DVFS
// cannot run slower than its lowest active state, so the scheduler must
// either idle the core or use the lowest level).
func (l *Ladder) Down(s float64) (speed float64, ok bool) {
	i := sort.SearchFloat64s(l.speeds, s)
	if i < len(l.speeds) && l.speeds[i] == s {
		return s, true
	}
	if i == 0 {
		return 0, false
	}
	return l.speeds[i-1], true
}

// Nearest returns the discrete speed closest to s (ties round up).
func (l *Ladder) Nearest(s float64) float64 {
	up, okUp := l.Up(s)
	down, okDown := l.Down(s)
	switch {
	case !okDown:
		return l.Min()
	case !okUp:
		return l.Max()
	case up-s < s-down || up-s == s-down:
		return up
	default:
		return down
	}
}
