package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 || r.Min() != 0 || r.Max() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("n = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", r.Mean())
	}
	if math.Abs(r.Variance()-4) > 1e-12 {
		t.Fatalf("variance = %v, want 4", r.Variance())
	}
	if math.Abs(r.Std()-2) > 1e-12 {
		t.Fatalf("std = %v, want 2", r.Std())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(3)
	if r.Variance() != 0 {
		t.Fatal("single observation variance must be 0")
	}
	if r.Min() != 3 || r.Max() != 3 {
		t.Fatal("single observation min/max wrong")
	}
}

func TestTimeWeightedConstant(t *testing.T) {
	var w TimeWeighted
	w.Add(2, 10)
	if math.Abs(w.Mean()-2) > 1e-12 || w.Variance() > 1e-12 {
		t.Fatalf("constant signal: mean=%v var=%v", w.Mean(), w.Variance())
	}
	if w.Duration() != 10 {
		t.Fatalf("duration = %v", w.Duration())
	}
}

func TestTimeWeightedMix(t *testing.T) {
	// 1 s at 1 GHz + 3 s at 3 GHz → mean 2.5, E[v²] = (1+27)/4 = 7,
	// var = 7 − 6.25 = 0.75.
	var w TimeWeighted
	w.Add(1, 1)
	w.Add(3, 3)
	if math.Abs(w.Mean()-2.5) > 1e-12 {
		t.Fatalf("mean = %v", w.Mean())
	}
	if math.Abs(w.Variance()-0.75) > 1e-12 {
		t.Fatalf("variance = %v", w.Variance())
	}
}

func TestTimeWeightedIgnoresBadDurations(t *testing.T) {
	var w TimeWeighted
	w.Add(5, 0)
	w.Add(5, -1)
	if w.Duration() != 0 || w.Mean() != 0 {
		t.Fatal("non-positive durations should be ignored")
	}
}

func TestTimeWeightedMerge(t *testing.T) {
	var a, b TimeWeighted
	a.Add(1, 1)
	b.Add(3, 3)
	a.Merge(b)
	if math.Abs(a.Mean()-2.5) > 1e-12 {
		t.Fatalf("merged mean = %v", a.Mean())
	}
	if a.Duration() != 4 {
		t.Fatalf("merged duration = %v", a.Duration())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatal("extreme quantiles wrong")
	}
	if math.Abs(Quantile(xs, 0.5)-2.5) > 1e-12 {
		t.Fatalf("median = %v, want 2.5", Quantile(xs, 0.5))
	}
	// Input must be untouched.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	if Quantile(xs, -1) != 1 || Quantile(xs, 2) != 4 {
		t.Fatal("out-of-range q should clamp")
	}
}

func TestMeanVariance(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate cases wrong")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if math.Abs(Mean(xs)-5) > 1e-12 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if math.Abs(Variance(xs)-4) > 1e-12 {
		t.Fatalf("variance = %v", Variance(xs))
	}
}

// Property: Running agrees with the direct formulas.
func TestRunningMatchesDirectProperty(t *testing.T) {
	prop := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		var r Running
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			r.Add(xs[i])
		}
		return math.Abs(r.Mean()-Mean(xs)) < 1e-9 &&
			math.Abs(r.Variance()-Variance(xs)) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: time-weighted variance is non-negative and zero for constant
// signals.
func TestTimeWeightedNonNegativeProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		var w TimeWeighted
		for _, v := range raw {
			w.Add(float64(v%7), float64(v%5)+0.1)
		}
		return w.Variance() >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
