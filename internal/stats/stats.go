// Package stats provides the summary statistics used by the metrics and
// experiment layers: streaming (Welford) moments, time-weighted moments for
// speed profiles, and simple quantiles.
package stats

import (
	"math"
	"sort"
)

// Running accumulates count/mean/variance in one pass (Welford's method).
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation in.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the observation count.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the population variance (0 when n < 2).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// Std returns the population standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (0 when empty).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return 0
	}
	return r.min
}

// Max returns the largest observation (0 when empty).
func (r *Running) Max() float64 {
	if r.n == 0 {
		return 0
	}
	return r.max
}

// TimeWeighted accumulates the time-weighted mean and variance of a
// piecewise-constant signal, e.g. a core's speed over the run. Samples are
// (value, duration) pairs.
type TimeWeighted struct {
	total float64 // Σ dt
	sum   float64 // Σ v·dt
	sum2  float64 // Σ v²·dt
}

// Add folds in the signal holding value v for dt seconds. Non-positive
// durations are ignored.
func (w *TimeWeighted) Add(v, dt float64) {
	if dt <= 0 {
		return
	}
	w.total += dt
	w.sum += v * dt
	w.sum2 += v * v * dt
}

// Duration returns the accumulated time.
func (w *TimeWeighted) Duration() float64 { return w.total }

// Mean returns the time-weighted mean (0 when no time accumulated).
func (w *TimeWeighted) Mean() float64 {
	if w.total == 0 {
		return 0
	}
	return w.sum / w.total
}

// Variance returns the time-weighted variance.
func (w *TimeWeighted) Variance() float64 {
	if w.total == 0 {
		return 0
	}
	m := w.Mean()
	v := w.sum2/w.total - m*m
	if v < 0 {
		return 0 // float noise
	}
	return v
}

// Merge folds another accumulator in (e.g. combining per-core profiles).
func (w *TimeWeighted) Merge(other TimeWeighted) {
	w.total += other.total
	w.sum += other.sum
	w.sum2 += other.sum2
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation. It sorts a copy; xs is untouched. Empty input returns 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return s / float64(len(xs))
}
