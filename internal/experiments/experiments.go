// Package experiments reproduces every figure in the paper's evaluation
// (§IV). Each FigN function sweeps the arrival rate (or the figure's own
// axis) for the relevant schedulers and returns plot.Figure series shaped
// like the corresponding paper panel:
//
//	Fig. 1   AES-mode time fraction vs arrival rate
//	Fig. 2   LF job-cutting worked example (four jobs)
//	Fig. 3   quality & energy: GE, OQ, BE, FCFS, LJF, SJF (fixed windows)
//	Fig. 4   quality & energy incl. FDFS (random 150–500 ms windows)
//	Fig. 5   compensation vs no-compensation
//	Fig. 6   average core speed & speed variance: WF vs ES
//	Fig. 7   quality & energy: WF vs ES
//	Fig. 8   quality & energy: GE vs BE-P vs BE-S (calibrated)
//	Fig. 9   quality-function concavity sweep
//	Fig. 10  power-budget sweep (80/160/320/480 W)
//	Fig. 11  core-count sweep (2^0 … 2^6)
//	Fig. 12  continuous vs discrete speed scaling
//
// Sweep points are independent simulations, so they execute on a worker
// pool sized to GOMAXPROCS.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"goodenough/internal/core"
	"goodenough/internal/cut"
	"goodenough/internal/dist"
	"goodenough/internal/job"
	"goodenough/internal/plot"
	"goodenough/internal/quality"
	"goodenough/internal/sched"
	"goodenough/internal/workload"
)

// Settings scope an experiment run.
type Settings struct {
	// Base is the machine/scheduler configuration every point starts from
	// (figures override individual fields).
	Base sched.Config
	// Duration is the simulated seconds per point. The paper uses 600 s;
	// tests and benches use less.
	Duration float64
	// Seed fixes the workload streams.
	Seed uint64
	// Rates is the arrival-rate axis (req/s).
	Rates []float64
	// Workers bounds sweep parallelism; 0 means GOMAXPROCS.
	Workers int
}

// DefaultSettings mirrors the paper: §IV-B configuration, 600 s runs,
// arrival rates 100–250 req/s.
func DefaultSettings() Settings {
	return Settings{
		Base:     sched.Defaults(),
		Duration: 600,
		Seed:     2017,
		Rates:    DefaultRates(),
	}
}

// DefaultRates is the x axis used by most paper figures.
func DefaultRates() []float64 {
	rates := make([]float64, 0, 16)
	for r := 100.0; r <= 250; r += 10 {
		rates = append(rates, r)
	}
	return rates
}

// Validate reports whether the settings are runnable.
func (s Settings) Validate() error {
	if err := s.Base.Validate(); err != nil {
		return err
	}
	if s.Duration <= 0 {
		return fmt.Errorf("experiments: duration must be positive, got %v", s.Duration)
	}
	if len(s.Rates) == 0 {
		return fmt.Errorf("experiments: no arrival rates given")
	}
	for _, r := range s.Rates {
		if r <= 0 {
			return fmt.Errorf("experiments: invalid arrival rate %v", r)
		}
	}
	return nil
}

func (s Settings) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// spec builds the workload for one sweep point. The same seed across rates
// keeps the demand distribution comparable; the rate itself perturbs the
// arrival stream (as it must).
func (s Settings) spec(rate float64, randomWindow bool) workload.Spec {
	spec := workload.DefaultSpec(rate, s.Seed)
	spec.Duration = s.Duration
	spec.RandomWindow = randomWindow
	return spec
}

// point is one simulation in a sweep.
type point struct {
	series string
	x      float64
	cfg    sched.Config
	mk     func() sched.Policy
	spec   workload.Spec
}

// runAll executes points on a worker pool and indexes results by
// (series, x).
func runAll(points []point, workers int) (map[string]map[float64]sched.Result, error) {
	type outcome struct {
		series string
		x      float64
		res    sched.Result
		err    error
	}
	jobs := make(chan point)
	results := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				r, err := sched.NewRunner(p.cfg, p.mk(), p.spec)
				if err != nil {
					results <- outcome{p.series, p.x, sched.Result{}, err}
					continue
				}
				res, err := r.Run()
				results <- outcome{p.series, p.x, res, err}
			}
		}()
	}
	go func() {
		for _, p := range points {
			jobs <- p
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	out := make(map[string]map[float64]sched.Result)
	var firstErr error
	for o := range results {
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		if out[o.series] == nil {
			out[o.series] = make(map[float64]sched.Result)
		}
		out[o.series][o.x] = o.res
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// series converts indexed results into a plot.Series via the extractor.
func series(label string, byX map[float64]sched.Result, f func(sched.Result) float64) plot.Series {
	xs := make([]float64, 0, len(byX))
	for x := range byX {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = f(byX[x])
	}
	return plot.Series{Label: label, X: xs, Y: ys}
}

func qualityOf(r sched.Result) float64 { return r.Quality }
func energyOf(r sched.Result) float64  { return r.Energy }

// Fig1 reproduces Figure 1: the fraction of time GE spends in AES mode as
// the arrival rate grows.
func Fig1(s Settings) (plot.Figure, error) {
	if err := s.Validate(); err != nil {
		return plot.Figure{}, err
	}
	var points []point
	for _, rate := range s.Rates {
		points = append(points, point{
			series: "GE", x: rate, cfg: s.Base,
			mk:   func() sched.Policy { return core.NewGE(s.Base.QGE) },
			spec: s.spec(rate, false),
		})
	}
	res, err := runAll(points, s.workers())
	if err != nil {
		return plot.Figure{}, err
	}
	return plot.Figure{
		Title:  "Fig 1: execution-time percentage of the AES mode",
		XLabel: "arrival rate (req/s)",
		YLabel: "fraction of time in AES mode",
		Series: []plot.Series{series("GE", res["GE"], func(r sched.Result) float64 {
			return r.AESFraction
		})},
	}, nil
}

// Fig2 reproduces the Figure 2 illustration: LF cutting of four jobs
// (longest to shortest) at the given target quality. It returns the cut
// levels as a bar-like figure (x = job index, y = demand and target).
func Fig2(qge float64) (plot.Figure, cut.Result) {
	f := quality.NewExponential(0.003, 1000)
	demands := []float64{1000, 700, 400, 200}
	jobs := make([]*job.Job, len(demands))
	for i, d := range demands {
		jobs[i] = job.New(i, 0, 0.150, d)
	}
	res := cut.LongestFirst(jobs, f, qge)
	idx := []float64{1, 2, 3, 4}
	demandY := make([]float64, len(jobs))
	targetY := make([]float64, len(jobs))
	for i, j := range jobs {
		demandY[i] = j.Demand
		targetY[i] = j.Target
	}
	return plot.Figure{
		Title:  fmt.Sprintf("Fig 2: LF job cutting of four jobs at QGE=%.2f", qge),
		XLabel: "job (longest to shortest)",
		YLabel: "processing units",
		Series: []plot.Series{
			{Label: "demand", X: idx, Y: demandY},
			{Label: "cut target", X: idx, Y: targetY},
		},
	}, res
}

// schedulerSet returns the Fig. 3 policy roster (Fig. 4 adds FDFS).
func schedulerSet(qge float64, withFDFS bool) map[string]func() sched.Policy {
	set := map[string]func() sched.Policy{
		"GE":   func() sched.Policy { return core.NewGE(qge) },
		"OQ":   func() sched.Policy { return core.NewOQ(qge) },
		"BE":   func() sched.Policy { return core.NewBE() },
		"FCFS": func() sched.Policy { return sched.NewFCFS() },
		"LJF":  func() sched.Policy { return sched.NewLJF() },
		"SJF":  func() sched.Policy { return sched.NewSJF() },
	}
	if withFDFS {
		set["FDFS"] = func() sched.Policy { return sched.NewFDFS() }
	}
	return set
}

// schedulerOrder fixes the legend order for reproducible output.
func schedulerOrder(withFDFS bool) []string {
	if withFDFS {
		return []string{"GE", "OQ", "BE", "FCFS", "FDFS", "LJF", "SJF"}
	}
	return []string{"GE", "OQ", "BE", "FCFS", "LJF", "SJF"}
}

// comparison runs a roster sweep and splits it into quality and energy
// panels (the (a)/(b) structure of Figs. 3, 4).
func (s Settings) comparison(title string, randomWindow, withFDFS bool) (qualityFig, energyFig plot.Figure, err error) {
	if err := s.Validate(); err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	set := schedulerSet(s.Base.QGE, withFDFS)
	var points []point
	for name, mk := range set {
		for _, rate := range s.Rates {
			points = append(points, point{
				series: name, x: rate, cfg: s.Base, mk: mk,
				spec: s.spec(rate, randomWindow),
			})
		}
	}
	res, err := runAll(points, s.workers())
	if err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	var qs, es []plot.Series
	for _, name := range schedulerOrder(withFDFS) {
		qs = append(qs, series(name, res[name], qualityOf))
		es = append(es, series(name, res[name], energyOf))
	}
	qualityFig = plot.Figure{Title: title + " (a) service quality",
		XLabel: "arrival rate (req/s)", YLabel: "service quality", Series: qs}
	energyFig = plot.Figure{Title: title + " (b) energy consumption",
		XLabel: "arrival rate (req/s)", YLabel: "energy (J)", Series: es}
	return qualityFig, energyFig, nil
}

// Fig3 reproduces Figure 3: scheduler comparison with fixed 150 ms windows.
func Fig3(s Settings) (qualityFig, energyFig plot.Figure, err error) {
	return s.comparison("Fig 3: scheduler comparison", false, false)
}

// Fig4 reproduces Figure 4: scheduler comparison with random 150–500 ms
// deadline windows, adding FDFS.
func Fig4(s Settings) (qualityFig, energyFig plot.Figure, err error) {
	return s.comparison("Fig 4: random deadline intervals", true, true)
}

// Fig5 reproduces Figure 5: GE with and without the compensation policy.
func Fig5(s Settings) (qualityFig, energyFig plot.Figure, err error) {
	if err := s.Validate(); err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	set := map[string]func() sched.Policy{
		"Compensation":    func() sched.Policy { return core.NewGE(s.Base.QGE) },
		"No-Compensation": func() sched.Policy { return core.NewNoComp(s.Base.QGE) },
	}
	var points []point
	for name, mk := range set {
		for _, rate := range s.Rates {
			points = append(points, point{series: name, x: rate, cfg: s.Base, mk: mk,
				spec: s.spec(rate, false)})
		}
	}
	res, err := runAll(points, s.workers())
	if err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	order := []string{"Compensation", "No-Compensation"}
	var qs, es []plot.Series
	for _, name := range order {
		qs = append(qs, series(name, res[name], qualityOf))
		es = append(es, series(name, res[name], energyOf))
	}
	qualityFig = plot.Figure{Title: "Fig 5: compensation policy (a) quality",
		XLabel: "arrival rate (req/s)", YLabel: "service quality", Series: qs}
	energyFig = plot.Figure{Title: "Fig 5: compensation policy (b) energy",
		XLabel: "arrival rate (req/s)", YLabel: "energy (J)", Series: es}
	return qualityFig, energyFig, nil
}

// fixedDistSweep powers Figs. 6 and 7: GE pinned to WF or ES.
func (s Settings) fixedDistSweep() (map[string]map[float64]sched.Result, error) {
	set := map[string]func() sched.Policy{
		"Water-Filling": func() sched.Policy { return core.NewFixedDist(s.Base.QGE, dist.PolicyWF) },
		"Equal-Sharing": func() sched.Policy { return core.NewFixedDist(s.Base.QGE, dist.PolicyES) },
	}
	var points []point
	for name, mk := range set {
		for _, rate := range s.Rates {
			points = append(points, point{series: name, x: rate, cfg: s.Base, mk: mk,
				spec: s.spec(rate, false)})
		}
	}
	return runAll(points, s.workers())
}

// Fig6 reproduces Figure 6: average core speed and speed variance under WF
// vs ES.
func Fig6(s Settings) (avgFig, varFig plot.Figure, err error) {
	if err := s.Validate(); err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	res, err := s.fixedDistSweep()
	if err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	order := []string{"Water-Filling", "Equal-Sharing"}
	var av, vv []plot.Series
	for _, name := range order {
		av = append(av, series(name, res[name], func(r sched.Result) float64 { return r.AvgSpeed }))
		vv = append(vv, series(name, res[name], func(r sched.Result) float64 { return r.SpeedVariance }))
	}
	avgFig = plot.Figure{Title: "Fig 6: power distribution (a) average speed",
		XLabel: "arrival rate (req/s)", YLabel: "average speed (GHz)", Series: av}
	varFig = plot.Figure{Title: "Fig 6: power distribution (b) speed variance",
		XLabel: "arrival rate (req/s)", YLabel: "speed variance", Series: vv}
	return avgFig, varFig, nil
}

// Fig7 reproduces Figure 7: quality and energy under WF vs ES.
func Fig7(s Settings) (qualityFig, energyFig plot.Figure, err error) {
	if err := s.Validate(); err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	res, err := s.fixedDistSweep()
	if err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	order := []string{"Water-Filling", "Equal-Sharing"}
	var qs, es []plot.Series
	for _, name := range order {
		qs = append(qs, series(name, res[name], qualityOf))
		es = append(es, series(name, res[name], energyOf))
	}
	qualityFig = plot.Figure{Title: "Fig 7: power distribution (a) quality",
		XLabel: "arrival rate (req/s)", YLabel: "service quality", Series: qs}
	energyFig = plot.Figure{Title: "Fig 7: power distribution (b) energy",
		XLabel: "arrival rate (req/s)", YLabel: "energy (J)", Series: es}
	return qualityFig, energyFig, nil
}
