// Degradation: behaviour beyond the paper — quality, energy, and miss rate
// as the machine crumbles under injected core failures.
package experiments

import (
	"fmt"

	"goodenough/internal/core"
	"goodenough/internal/faults"
	"goodenough/internal/plot"
	"goodenough/internal/sched"
)

// DegradationSettings scope the fault-injection sweep.
type DegradationSettings struct {
	// Settings provide the base machine, duration, seed, and worker pool.
	// Rates is ignored: the x axis here is the failure rate.
	Settings
	// Rate is the fixed arrival rate for every point (req/s).
	Rate float64
	// FailureRates is the x axis: per-core failure rates in failures per
	// second (the generator's 1/MTBF). Zero entries mean a fault-free
	// reference point.
	FailureRates []float64
	// MTTRSec is the mean repair time for every point.
	MTTRSec float64
}

// DefaultDegradationSettings sweeps per-core failure rates from fault-free
// to one failure every 20 seconds, repairing in 5 s on average, at the
// paper's critical arrival rate.
func DefaultDegradationSettings() DegradationSettings {
	return DegradationSettings{
		Settings:     DefaultSettings(),
		Rate:         154,
		FailureRates: []float64{0, 0.002, 0.005, 0.01, 0.02, 0.05},
		MTTRSec:      5,
	}
}

// Validate reports whether the degradation settings are runnable.
func (d DegradationSettings) Validate() error {
	if err := d.Base.Validate(); err != nil {
		return err
	}
	if d.Duration <= 0 {
		return fmt.Errorf("experiments: duration must be positive, got %v", d.Duration)
	}
	if d.Rate <= 0 {
		return fmt.Errorf("experiments: invalid arrival rate %v", d.Rate)
	}
	if len(d.FailureRates) == 0 {
		return fmt.Errorf("experiments: no failure rates given")
	}
	for _, fr := range d.FailureRates {
		if fr < 0 {
			return fmt.Errorf("experiments: invalid failure rate %v", fr)
		}
	}
	if d.MTTRSec <= 0 {
		return fmt.Errorf("experiments: MTTR must be positive, got %v", d.MTTRSec)
	}
	return nil
}

// missRateOf is the fraction of jobs that produced no result at all:
// expired at a deadline or shed by the degradation admission control.
func missRateOf(r sched.Result) float64 {
	if r.Jobs == 0 {
		return 0
	}
	return float64(r.Expired+r.DroppedJobs) / float64(r.Jobs)
}

// Degradation sweeps the per-core failure rate and reports quality, energy,
// and miss rate for GE against the BE baseline. Each point draws its fault
// schedule from faults.Generate with the sweep seed, so the whole figure is
// reproducible.
func Degradation(d DegradationSettings) (qualityFig, energyFig, missFig plot.Figure, err error) {
	if err = d.Validate(); err != nil {
		return
	}
	makers := map[string]func() sched.Policy{
		"GE": func() sched.Policy { return core.NewGE(d.Base.QGE) },
		"BE": func() sched.Policy { return core.NewBE() },
	}
	var points []point
	for _, fr := range d.FailureRates {
		cfg := d.Base
		if fr > 0 {
			var fs *faults.Schedule
			fs, err = faults.Generate(d.Seed, cfg.Cores, d.Duration, 1/fr, d.MTTRSec)
			if err != nil {
				return
			}
			cfg.Faults = fs
		}
		for name, mk := range makers {
			points = append(points, point{
				series: name, x: fr, cfg: cfg, mk: mk,
				spec: d.spec(d.Rate, false),
			})
		}
	}
	res, runErr := runAll(points, d.workers())
	if runErr != nil {
		err = runErr
		return
	}
	mkFig := func(title, ylabel string, f func(sched.Result) float64) plot.Figure {
		fig := plot.Figure{
			Title:  title,
			XLabel: "per-core failure rate (1/s)",
			YLabel: ylabel,
		}
		for _, name := range []string{"GE", "BE"} {
			fig.Series = append(fig.Series, series(name, res[name], f))
		}
		return fig
	}
	qualityFig = mkFig("Degradation: service quality vs failure rate",
		"service quality", qualityOf)
	energyFig = mkFig("Degradation: energy vs failure rate",
		"energy (J)", energyOf)
	missFig = mkFig("Degradation: miss rate vs failure rate",
		"missed jobs fraction", missRateOf)
	return
}
