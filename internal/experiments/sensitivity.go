package experiments

import (
	"fmt"
	"math"

	"goodenough/internal/core"
	"goodenough/internal/plot"
	"goodenough/internal/power"
	"goodenough/internal/quality"
	"goodenough/internal/sched"
)

// CalibrationIters is the bisection depth used to find the BE-P budget and
// BE-S speed cap (§IV-F: "the least power budget / minimum speed which can
// complete the quality guarantee").
const CalibrationIters = 7

// calibrate runs a bisection over x in [lo, hi]: predicate(x) reports
// whether quality >= target at parameter x, assumed monotone in x. It
// returns the smallest x (to bisection resolution) satisfying it, or hi if
// even hi fails (overload — use everything available).
func calibrate(lo, hi float64, iters int, meets func(x float64) (bool, error)) (float64, error) {
	okHi, err := meets(hi)
	if err != nil {
		return 0, err
	}
	if !okHi {
		return hi, nil
	}
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		ok, err := meets(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// CalibrateBEP finds the least power budget at which BE meets QGE for the
// given arrival rate.
func CalibrateBEP(s Settings, rate float64) (float64, error) {
	return calibrate(0, s.Base.PowerBudget, CalibrationIters, func(budget float64) (bool, error) {
		if budget <= 0 {
			return false, nil
		}
		r, err := sched.NewRunner(s.Base, core.NewBEP(budget), s.spec(rate, false))
		if err != nil {
			return false, err
		}
		res, err := r.Run()
		if err != nil {
			return false, err
		}
		return res.Quality >= s.Base.QGE, nil
	})
}

// CalibrateBES finds the least per-core speed cap at which BE meets QGE.
func CalibrateBES(s Settings, rate float64) (float64, error) {
	maxSpeed := s.Base.Model.Speed(s.Base.PowerBudget)
	return calibrate(0, maxSpeed, CalibrationIters, func(cap float64) (bool, error) {
		if cap <= 0 {
			return false, nil
		}
		r, err := sched.NewRunner(s.Base, core.NewBES(cap), s.spec(rate, false))
		if err != nil {
			return false, err
		}
		res, err := r.Run()
		if err != nil {
			return false, err
		}
		return res.Quality >= s.Base.QGE, nil
	})
}

// Fig8 reproduces Figure 8: the quality-control policy (GE) against the
// power-control (BE-P) and speed-control (BE-S) policies, each calibrated
// per arrival rate to the least budget/speed meeting QGE.
func Fig8(s Settings) (qualityFig, energyFig plot.Figure, err error) {
	if err := s.Validate(); err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	// Calibration is sequential per rate (bisection), but rates are
	// independent — reuse the pool via runAll on the final points after
	// calibrating in parallel would complicate error handling; rates are
	// few, so calibrate serially and then run the final sweep in parallel.
	bepBudget := make(map[float64]float64, len(s.Rates))
	besCap := make(map[float64]float64, len(s.Rates))
	for _, rate := range s.Rates {
		b, err := CalibrateBEP(s, rate)
		if err != nil {
			return plot.Figure{}, plot.Figure{}, err
		}
		bepBudget[rate] = b
		c, err := CalibrateBES(s, rate)
		if err != nil {
			return plot.Figure{}, plot.Figure{}, err
		}
		besCap[rate] = c
	}
	var points []point
	for _, rate := range s.Rates {
		rate := rate
		points = append(points,
			point{series: "GE", x: rate, cfg: s.Base,
				mk:   func() sched.Policy { return core.NewGE(s.Base.QGE) },
				spec: s.spec(rate, false)},
			point{series: "BE-P", x: rate, cfg: s.Base,
				mk:   func() sched.Policy { return core.NewBEP(bepBudget[rate]) },
				spec: s.spec(rate, false)},
			point{series: "BE-S", x: rate, cfg: s.Base,
				mk:   func() sched.Policy { return core.NewBES(besCap[rate]) },
				spec: s.spec(rate, false)},
		)
	}
	res, err := runAll(points, s.workers())
	if err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	order := []string{"GE", "BE-P", "BE-S"}
	var qs, es []plot.Series
	for _, name := range order {
		qs = append(qs, series(name, res[name], qualityOf))
		es = append(es, series(name, res[name], energyOf))
	}
	qualityFig = plot.Figure{Title: "Fig 8: control policies (a) quality",
		XLabel: "arrival rate (req/s)", YLabel: "service quality", Series: qs}
	energyFig = plot.Figure{Title: "Fig 8: control policies (b) energy",
		XLabel: "arrival rate (req/s)", YLabel: "energy (J)", Series: es}
	return qualityFig, energyFig, nil
}

// Fig9Concavities is the paper's c sweep for Figure 9.
var Fig9Concavities = []float64{0.0005, 0.001, 0.002, 0.003, 0.005, 0.009}

// Fig9 reproduces Figure 9: (a) GE's achieved quality under different
// quality-function concavities, and (b) the quality-function curves
// themselves.
func Fig9(s Settings) (qualityFig, curvesFig plot.Figure, err error) {
	if err := s.Validate(); err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	var points []point
	for _, c := range Fig9Concavities {
		c := c
		cfg := s.Base
		cfg.Quality = quality.NewExponential(c, 1000)
		name := fmt.Sprintf("c = %g", c)
		for _, rate := range s.Rates {
			points = append(points, point{series: name, x: rate, cfg: cfg,
				mk:   func() sched.Policy { return core.NewGE(cfg.QGE) },
				spec: s.spec(rate, false)})
		}
	}
	res, err := runAll(points, s.workers())
	if err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	var qs []plot.Series
	for _, c := range Fig9Concavities {
		name := fmt.Sprintf("c = %g", c)
		qs = append(qs, series(name, res[name], qualityOf))
	}
	qualityFig = plot.Figure{Title: "Fig 9 (a): service quality of GE vs concavity",
		XLabel: "arrival rate (req/s)", YLabel: "service quality", Series: qs}

	// Panel (b): the f(x) curves, no simulation needed.
	var curves []plot.Series
	for _, c := range Fig9Concavities {
		f := quality.NewExponential(c, 1000)
		xs := make([]float64, 0, 61)
		ys := make([]float64, 0, 61)
		for x := 0.0; x <= 3000; x += 50 {
			xs = append(xs, x)
			ys = append(ys, f.Value(x))
		}
		curves = append(curves, plot.Series{Label: fmt.Sprintf("c=%g", c), X: xs, Y: ys})
	}
	curvesFig = plot.Figure{Title: "Fig 9 (b): quality functions",
		XLabel: "processed volume x", YLabel: "quality", Series: curves}
	return qualityFig, curvesFig, nil
}

// Fig10Budgets is the paper's budget sweep for Figure 10.
var Fig10Budgets = []float64{80, 160, 320, 480}

// Fig10 reproduces Figure 10: GE under different total power budgets.
func Fig10(s Settings) (qualityFig, energyFig plot.Figure, err error) {
	if err := s.Validate(); err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	var points []point
	for _, h := range Fig10Budgets {
		cfg := s.Base
		cfg.PowerBudget = h
		name := fmt.Sprintf("budget = %g", h)
		for _, rate := range s.Rates {
			points = append(points, point{series: name, x: rate, cfg: cfg,
				mk:   func() sched.Policy { return core.NewGE(cfg.QGE) },
				spec: s.spec(rate, false)})
		}
	}
	res, err := runAll(points, s.workers())
	if err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	var qs, es []plot.Series
	for _, h := range Fig10Budgets {
		name := fmt.Sprintf("budget = %g", h)
		qs = append(qs, series(name, res[name], qualityOf))
		es = append(es, series(name, res[name], energyOf))
	}
	qualityFig = plot.Figure{Title: "Fig 10: power budget (a) quality",
		XLabel: "arrival rate (req/s)", YLabel: "service quality", Series: qs}
	energyFig = plot.Figure{Title: "Fig 10: power budget (b) energy",
		XLabel: "arrival rate (req/s)", YLabel: "energy (J)", Series: es}
	return qualityFig, energyFig, nil
}

// Fig11 reproduces Figure 11: GE with core counts 2^0 … 2^6 at a fixed
// arrival rate (the first entry of s.Rates).
func Fig11(s Settings) (qualityFig, energyFig plot.Figure, err error) {
	if err := s.Validate(); err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	rate := s.Rates[0]
	var points []point
	for exp := 0; exp <= 6; exp++ {
		cores := 1 << exp
		cfg := s.Base
		cfg.Cores = cores
		points = append(points, point{series: "GE", x: float64(exp), cfg: cfg,
			mk:   func() sched.Policy { return core.NewGE(cfg.QGE) },
			spec: s.spec(rate, false)})
	}
	res, err := runAll(points, s.workers())
	if err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	qualityFig = plot.Figure{
		Title:  fmt.Sprintf("Fig 11: core count (a) quality (rate = %g)", rate),
		XLabel: "number of cores 2^x", YLabel: "service quality",
		Series: []plot.Series{series("GE", res["GE"], qualityOf)},
	}
	energyFig = plot.Figure{
		Title:  fmt.Sprintf("Fig 11: core count (b) energy (rate = %g)", rate),
		XLabel: "number of cores 2^x", YLabel: "energy (J)",
		Series: []plot.Series{series("GE", res["GE"], energyOf)},
	}
	return qualityFig, energyFig, nil
}

// DefaultLadder is the discrete DVFS ladder used by Figure 12: sixteen
// 0.2 GHz steps up to 3.2 GHz.
func DefaultLadder() *power.Ladder {
	l, err := power.UniformLadder(3.2, 16)
	if err != nil {
		panic(err) // parameters are constants; cannot fail
	}
	return l
}

// Fig12 reproduces Figure 12: GE under continuous vs discrete speed
// scaling.
func Fig12(s Settings) (qualityFig, energyFig plot.Figure, err error) {
	if err := s.Validate(); err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	discrete := s.Base
	discrete.Ladder = DefaultLadder()
	configs := map[string]sched.Config{
		"Continuous Speed": s.Base,
		"Discrete Speed":   discrete,
	}
	var points []point
	for name, cfg := range configs {
		cfg := cfg
		for _, rate := range s.Rates {
			points = append(points, point{series: name, x: rate, cfg: cfg,
				mk:   func() sched.Policy { return core.NewGE(cfg.QGE) },
				spec: s.spec(rate, false)})
		}
	}
	res, err := runAll(points, s.workers())
	if err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	order := []string{"Continuous Speed", "Discrete Speed"}
	var qs, es []plot.Series
	for _, name := range order {
		qs = append(qs, series(name, res[name], qualityOf))
		es = append(es, series(name, res[name], energyOf))
	}
	qualityFig = plot.Figure{Title: "Fig 12: speed scaling (a) quality",
		XLabel: "arrival rate (req/s)", YLabel: "service quality", Series: qs}
	energyFig = plot.Figure{Title: "Fig 12: speed scaling (b) energy",
		XLabel: "arrival rate (req/s)", YLabel: "energy (J)", Series: es}
	return qualityFig, energyFig, nil
}

// HeadlineSaving extracts the paper's headline metric from a Fig. 3 sweep:
// the maximum relative energy saving of GE over BE across the rate axis
// (the paper reports up to 23.9%).
func HeadlineSaving(energyFig plot.Figure) (bestSaving float64, atRate float64, err error) {
	var ge, be *plot.Series
	for i := range energyFig.Series {
		switch energyFig.Series[i].Label {
		case "GE":
			ge = &energyFig.Series[i]
		case "BE":
			be = &energyFig.Series[i]
		}
	}
	if ge == nil || be == nil {
		return 0, 0, fmt.Errorf("experiments: energy figure lacks GE or BE series")
	}
	best := math.Inf(-1)
	at := 0.0
	for i := range ge.X {
		for k := range be.X {
			if be.X[k] == ge.X[i] && be.Y[k] > 0 {
				if saving := 1 - ge.Y[i]/be.Y[k]; saving > best {
					best = saving
					at = ge.X[i]
				}
			}
		}
	}
	if math.IsInf(best, -1) {
		return 0, 0, fmt.Errorf("experiments: GE and BE series share no x values")
	}
	return best, at, nil
}
