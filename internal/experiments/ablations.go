package experiments

import (
	"fmt"

	"goodenough/internal/assign"
	"goodenough/internal/core"
	"goodenough/internal/dist"
	"goodenough/internal/plot"
	"goodenough/internal/sched"
)

// This file holds the ablation studies DESIGN.md commits to beyond the
// paper's own figures: each isolates one GE design choice the paper
// motivates but does not sweep.

// AblationAssignment compares the batch job-to-core assignment policies:
// the paper's Cumulative Round-Robin against plain Round-Robin and a
// least-loaded assigner (§III-E argues C-RR balances better long-run).
func AblationAssignment(s Settings) (qualityFig, energyFig plot.Figure, err error) {
	if err := s.Validate(); err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	mkGE := func(name string, a func() assign.Assigner) func() sched.Policy {
		return func() sched.Policy {
			return core.New(name, core.Options{
				Target: s.Base.QGE, Compensation: true,
				Dist: dist.PolicyHybrid, Assigner: a(),
			})
		}
	}
	set := map[string]func() sched.Policy{
		"C-RR":         mkGE("GE/C-RR", func() assign.Assigner { return &assign.CumulativeRR{} }),
		"RR":           mkGE("GE/RR", func() assign.Assigner { return assign.RoundRobin{} }),
		"Least-Loaded": mkGE("GE/LL", func() assign.Assigner { return assign.LeastLoaded{} }),
	}
	res, err := s.sweepSet(set)
	if err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	order := []string{"C-RR", "RR", "Least-Loaded"}
	var qs, es []plot.Series
	for _, name := range order {
		qs = append(qs, series(name, res[name], qualityOf))
		es = append(es, series(name, res[name], energyOf))
	}
	qualityFig = plot.Figure{Title: "Ablation: assignment policy (a) quality",
		XLabel: "arrival rate (req/s)", YLabel: "service quality", Series: qs}
	energyFig = plot.Figure{Title: "Ablation: assignment policy (b) energy",
		XLabel: "arrival rate (req/s)", YLabel: "energy (J)", Series: es}
	return qualityFig, energyFig, nil
}

// AblationHybrid pits the paper's hybrid ES/WF switch against each fixed
// policy, completing the Fig. 6–7 story: the hybrid should match ES's
// energy at light load AND WF's quality at heavy load.
func AblationHybrid(s Settings) (qualityFig, energyFig plot.Figure, err error) {
	if err := s.Validate(); err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	set := map[string]func() sched.Policy{
		"Hybrid":   func() sched.Policy { return core.NewGE(s.Base.QGE) },
		"Fixed-WF": func() sched.Policy { return core.NewFixedDist(s.Base.QGE, dist.PolicyWF) },
		"Fixed-ES": func() sched.Policy { return core.NewFixedDist(s.Base.QGE, dist.PolicyES) },
	}
	res, err := s.sweepSet(set)
	if err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	order := []string{"Hybrid", "Fixed-WF", "Fixed-ES"}
	var qs, es []plot.Series
	for _, name := range order {
		qs = append(qs, series(name, res[name], qualityOf))
		es = append(es, series(name, res[name], energyOf))
	}
	qualityFig = plot.Figure{Title: "Ablation: hybrid distribution (a) quality",
		XLabel: "arrival rate (req/s)", YLabel: "service quality", Series: qs}
	energyFig = plot.Figure{Title: "Ablation: hybrid distribution (b) energy",
		XLabel: "arrival rate (req/s)", YLabel: "energy (J)", Series: es}
	return qualityFig, energyFig, nil
}

// AblationMonitorWindow compares the paper's cumulative quality monitor
// with the windowed-monitor extension (compensation decisions based on the
// last W seconds only). The windowed monitor reacts faster after load
// spikes but switches modes more often.
func AblationMonitorWindow(s Settings, windowSec float64) (qualityFig, switchFig plot.Figure, err error) {
	if err := s.Validate(); err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	if windowSec <= 0 {
		return plot.Figure{}, plot.Figure{}, fmt.Errorf("experiments: window must be positive")
	}
	set := map[string]func() sched.Policy{
		"Cumulative": func() sched.Policy { return core.NewGE(s.Base.QGE) },
		"Windowed": func() sched.Policy {
			return core.New("GE-windowed", core.Options{
				Target: s.Base.QGE, Compensation: true,
				Dist: dist.PolicyHybrid, MonitorWindow: windowSec,
			})
		},
	}
	res, err := s.sweepSet(set)
	if err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	order := []string{"Cumulative", "Windowed"}
	var qs, ms []plot.Series
	for _, name := range order {
		qs = append(qs, series(name, res[name], qualityOf))
		ms = append(ms, series(name, res[name], func(r sched.Result) float64 {
			return float64(r.ModeSwitches)
		}))
	}
	qualityFig = plot.Figure{Title: "Ablation: quality monitor (a) quality",
		XLabel: "arrival rate (req/s)", YLabel: "service quality", Series: qs}
	switchFig = plot.Figure{Title: "Ablation: quality monitor (b) mode switches",
		XLabel: "arrival rate (req/s)", YLabel: "AES/BQ switches", Series: ms}
	return qualityFig, switchFig, nil
}

// AblationStaticPower revisits the Fig. 11 core-count sweep with per-core
// static power added post-hoc (static · cores · simTime). The paper
// excludes static power and concludes "more cores are always better";
// with a realistic static term the energy curve becomes U-shaped and an
// optimal core count appears.
func AblationStaticPower(s Settings, staticWatts float64) (plot.Figure, error) {
	if err := s.Validate(); err != nil {
		return plot.Figure{}, err
	}
	if staticWatts < 0 {
		return plot.Figure{}, fmt.Errorf("experiments: static power must be non-negative")
	}
	rate := s.Rates[0]
	var points []point
	for exp := 0; exp <= 6; exp++ {
		cores := 1 << exp
		cfg := s.Base
		cfg.Cores = cores
		points = append(points, point{series: "GE", x: float64(exp), cfg: cfg,
			mk:   func() sched.Policy { return core.NewGE(cfg.QGE) },
			spec: s.spec(rate, false)})
	}
	res, err := runAll(points, s.workers())
	if err != nil {
		return plot.Figure{}, err
	}
	dynamic := series("dynamic only", res["GE"], energyOf)
	total := series(fmt.Sprintf("with %gW static/core", staticWatts), res["GE"],
		func(r sched.Result) float64 { return r.Energy }) // placeholder, fixed below
	for i, x := range total.X {
		cores := float64(int(1) << int(x))
		r := res["GE"][x]
		total.Y[i] = r.Energy + staticWatts*cores*r.SimTime
	}
	return plot.Figure{
		Title:  fmt.Sprintf("Ablation: static power on the core-count sweep (rate = %g)", rate),
		XLabel: "number of cores 2^x", YLabel: "energy (J)",
		Series: []plot.Series{dynamic, total},
	}, nil
}

// sweepSet runs every (policy, rate) combination of a named policy set.
func (s Settings) sweepSet(set map[string]func() sched.Policy) (map[string]map[float64]sched.Result, error) {
	var points []point
	for name, mk := range set {
		for _, rate := range s.Rates {
			points = append(points, point{series: name, x: rate, cfg: s.Base, mk: mk,
				spec: s.spec(rate, false)})
		}
	}
	return runAll(points, s.workers())
}
