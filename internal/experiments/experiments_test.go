package experiments

import (
	"math"
	"testing"

	"goodenough/internal/plot"
	"goodenough/internal/sched"
)

// quickSettings keeps experiment tests fast: short runs, coarse axis.
func quickSettings(rates ...float64) Settings {
	s := DefaultSettings()
	s.Duration = 10
	s.Rates = rates
	return s
}

func yOf(t *testing.T, s plot.Series, x float64) float64 {
	t.Helper()
	for i := range s.X {
		if s.X[i] == x {
			return s.Y[i]
		}
	}
	t.Fatalf("series %q has no x=%v", s.Label, x)
	return 0
}

func findSeries(t *testing.T, f plot.Figure, label string) plot.Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("figure %q lacks series %q", f.Title, label)
	return plot.Series{}
}

func TestDefaultSettings(t *testing.T) {
	s := DefaultSettings()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Duration != 600 {
		t.Fatalf("paper runs 600 s, got %v", s.Duration)
	}
	rates := DefaultRates()
	if rates[0] != 100 || rates[len(rates)-1] != 250 {
		t.Fatalf("rate axis = %v, want 100..250", rates)
	}
}

func TestSettingsValidation(t *testing.T) {
	s := DefaultSettings()
	s.Duration = 0
	if s.Validate() == nil {
		t.Error("zero duration accepted")
	}
	s = DefaultSettings()
	s.Rates = nil
	if s.Validate() == nil {
		t.Error("empty rates accepted")
	}
	s = DefaultSettings()
	s.Rates = []float64{-5}
	if s.Validate() == nil {
		t.Error("negative rate accepted")
	}
}

func TestFig1Shape(t *testing.T) {
	fig, err := Fig1(quickSettings(100, 230))
	if err != nil {
		t.Fatal(err)
	}
	ge := findSeries(t, fig, "GE")
	light := yOf(t, ge, 100)
	heavy := yOf(t, ge, 230)
	if light <= heavy {
		t.Fatalf("AES fraction should fall with load: %v at 100 vs %v at 230", light, heavy)
	}
	if light < 0.4 {
		t.Fatalf("light-load AES fraction = %v, want majority of time", light)
	}
}

func TestFig2CutsLongestFirst(t *testing.T) {
	fig, res := Fig2(0.9)
	demand := findSeries(t, fig, "demand")
	target := findSeries(t, fig, "cut target")
	if len(demand.Y) != 4 || len(target.Y) != 4 {
		t.Fatalf("Fig 2 should show four jobs")
	}
	if target.Y[0] >= demand.Y[0] {
		t.Fatal("longest job was not cut")
	}
	for i := range target.Y {
		if target.Y[i] > demand.Y[i]+1e-9 {
			t.Fatalf("target exceeds demand at job %d", i)
		}
	}
	if math.Abs(res.Quality-0.9) > 1e-6 {
		t.Fatalf("Fig 2 batch quality = %v, want 0.9", res.Quality)
	}
}

func TestFig3Shape(t *testing.T) {
	q, e, err := Fig3(quickSettings(110, 150))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Series) != 6 || len(e.Series) != 6 {
		t.Fatalf("Fig 3 should have six schedulers, got %d/%d", len(q.Series), len(e.Series))
	}
	geQ := findSeries(t, q, "GE")
	beQ := findSeries(t, q, "BE")
	geE := findSeries(t, e, "GE")
	beE := findSeries(t, e, "BE")
	for _, rate := range []float64{110, 150} {
		if yOf(t, geQ, rate) < 0.85 {
			t.Fatalf("GE quality at %v = %v", rate, yOf(t, geQ, rate))
		}
		if yOf(t, beQ, rate) < yOf(t, geQ, rate)-0.01 {
			t.Fatalf("BE quality below GE at %v", rate)
		}
		if yOf(t, geE, rate) >= yOf(t, beE, rate) {
			t.Fatalf("GE energy not below BE at %v", rate)
		}
	}
	// Headline metric is computable and positive.
	saving, at, err := HeadlineSaving(e)
	if err != nil {
		t.Fatal(err)
	}
	if saving <= 0.05 {
		t.Fatalf("headline saving = %v at %v", saving, at)
	}
}

func TestFig4FDFSPresent(t *testing.T) {
	q, _, err := Fig4(quickSettings(200))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Series) != 7 {
		t.Fatalf("Fig 4 should add FDFS: %d series", len(q.Series))
	}
	fdfs := findSeries(t, q, "FDFS")
	fcfs := findSeries(t, q, "FCFS")
	if yOf(t, fdfs, 200) <= yOf(t, fcfs, 200) {
		t.Fatalf("FDFS should beat FCFS under random deadlines: %v vs %v",
			yOf(t, fdfs, 200), yOf(t, fcfs, 200))
	}
}

func TestFig5Shape(t *testing.T) {
	q, e, err := Fig5(quickSettings(175))
	if err != nil {
		t.Fatal(err)
	}
	comp := findSeries(t, q, "Compensation")
	nocomp := findSeries(t, q, "No-Compensation")
	if yOf(t, comp, 175) <= yOf(t, nocomp, 175) {
		t.Fatal("compensation should lift quality under load")
	}
	ce := findSeries(t, e, "Compensation")
	ne := findSeries(t, e, "No-Compensation")
	if yOf(t, ce, 175) < yOf(t, ne, 175) {
		t.Fatal("compensation should cost some energy")
	}
}

func TestFig6Shape(t *testing.T) {
	_, vf, err := Fig6(quickSettings(110))
	if err != nil {
		t.Fatal(err)
	}
	wf := findSeries(t, vf, "Water-Filling")
	es := findSeries(t, vf, "Equal-Sharing")
	if yOf(t, es, 110) >= yOf(t, wf, 110) {
		t.Fatalf("ES speed variance should undercut WF at light load: %v vs %v",
			yOf(t, es, 110), yOf(t, wf, 110))
	}
}

func TestFig7Shape(t *testing.T) {
	q, e, err := Fig7(quickSettings(110, 185))
	if err != nil {
		t.Fatal(err)
	}
	wfQ := findSeries(t, q, "Water-Filling")
	esQ := findSeries(t, q, "Equal-Sharing")
	esE := findSeries(t, e, "Equal-Sharing")
	wfE := findSeries(t, e, "Water-Filling")
	// Light load: same quality, ES cheaper.
	if math.Abs(yOf(t, wfQ, 110)-yOf(t, esQ, 110)) > 0.03 {
		t.Fatal("light-load quality should match between WF and ES")
	}
	if yOf(t, esE, 110) >= yOf(t, wfE, 110) {
		t.Fatal("ES should save energy at light load")
	}
	// Heavy load: WF should not trail ES.
	if yOf(t, wfQ, 185) < yOf(t, esQ, 185)-0.01 {
		t.Fatal("WF quality should hold up at heavy load")
	}
}

func TestFig8Calibration(t *testing.T) {
	s := quickSettings(120)
	budget, err := CalibrateBEP(s, 120)
	if err != nil {
		t.Fatal(err)
	}
	if budget <= 0 || budget > s.Base.PowerBudget {
		t.Fatalf("calibrated budget = %v out of range", budget)
	}
	if budget > 0.95*s.Base.PowerBudget {
		t.Fatalf("calibrated budget = %v; pre-overload it should be well below H", budget)
	}
	cap, err := CalibrateBES(s, 120)
	if err != nil {
		t.Fatal(err)
	}
	maxSpeed := s.Base.Model.Speed(s.Base.PowerBudget)
	if cap <= 0 || cap > maxSpeed {
		t.Fatalf("calibrated cap = %v out of range", cap)
	}
}

func TestFig8Shape(t *testing.T) {
	q, e, err := Fig8(quickSettings(130))
	if err != nil {
		t.Fatal(err)
	}
	ge := findSeries(t, q, "GE")
	bep := findSeries(t, q, "BE-P")
	bes := findSeries(t, q, "BE-S")
	if yOf(t, ge, 130) < 0.85 {
		t.Fatalf("GE quality = %v", yOf(t, ge, 130))
	}
	// The calibrated baselines hover near QGE by construction.
	for _, s := range []plot.Series{bep, bes} {
		if v := yOf(t, s, 130); v < 0.8 || v > 1.001 {
			t.Fatalf("%s quality = %v, want near QGE", s.Label, v)
		}
	}
	if len(e.Series) != 3 {
		t.Fatalf("Fig 8 energy series = %d", len(e.Series))
	}
}

func TestFig9Shape(t *testing.T) {
	s := quickSettings(210)
	q, curves, err := Fig9(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Series) != len(Fig9Concavities) {
		t.Fatalf("Fig 9a series = %d", len(q.Series))
	}
	lo := findSeries(t, q, "c = 0.0005")
	hi := findSeries(t, q, "c = 0.009")
	if yOf(t, hi, 210) <= yOf(t, lo, 210) {
		t.Fatalf("larger concavity should raise quality under load: %v vs %v",
			yOf(t, hi, 210), yOf(t, lo, 210))
	}
	// Panel (b): curves ordered by concavity at x=500.
	prev := -1.0
	for _, c := range Fig9Concavities {
		s := findSeries(t, curves, sprintC(c))
		v := yOf(t, s, 500)
		if v < prev {
			t.Fatal("quality curves not ordered by c")
		}
		prev = v
	}
}

func sprintC(c float64) string { return "c=" + trim(c) }

func trim(v float64) string {
	switch v {
	case 0.0005:
		return "0.0005"
	case 0.001:
		return "0.001"
	case 0.002:
		return "0.002"
	case 0.003:
		return "0.003"
	case 0.005:
		return "0.005"
	case 0.009:
		return "0.009"
	}
	return ""
}

func TestFig10Shape(t *testing.T) {
	q, e, err := Fig10(quickSettings(200))
	if err != nil {
		t.Fatal(err)
	}
	lo := findSeries(t, q, "budget = 80")
	hi := findSeries(t, q, "budget = 480")
	if yOf(t, hi, 200) <= yOf(t, lo, 200) {
		t.Fatal("bigger budget should raise overloaded quality")
	}
	loE := findSeries(t, e, "budget = 80")
	hiE := findSeries(t, e, "budget = 480")
	if yOf(t, hiE, 200) <= yOf(t, loE, 200) {
		t.Fatal("bigger budget should spend more energy under overload")
	}
}

func TestFig11Shape(t *testing.T) {
	s := quickSettings(150)
	q, e, err := Fig11(s)
	if err != nil {
		t.Fatal(err)
	}
	ge := findSeries(t, q, "GE")
	if len(ge.X) != 7 {
		t.Fatalf("Fig 11 should sweep 2^0..2^6, got %d points", len(ge.X))
	}
	// Quality must improve substantially from 1 core to 64.
	if yOf(t, ge, 6) <= yOf(t, ge, 0) {
		t.Fatal("more cores should raise quality")
	}
	geE := findSeries(t, e, "GE")
	if yOf(t, geE, 6) >= yOf(t, geE, 0) {
		t.Fatal("more cores should lower energy")
	}
}

func TestFig12Shape(t *testing.T) {
	q, e, err := Fig12(quickSettings(150))
	if err != nil {
		t.Fatal(err)
	}
	cont := findSeries(t, q, "Continuous Speed")
	disc := findSeries(t, q, "Discrete Speed")
	if math.Abs(yOf(t, cont, 150)-yOf(t, disc, 150)) > 0.08 {
		t.Fatalf("discrete quality too far from continuous: %v vs %v",
			yOf(t, disc, 150), yOf(t, cont, 150))
	}
	contE := findSeries(t, e, "Continuous Speed")
	discE := findSeries(t, e, "Discrete Speed")
	ratio := yOf(t, discE, 150) / yOf(t, contE, 150)
	if ratio < 0.6 || ratio > 1.5 {
		t.Fatalf("discrete/continuous energy ratio = %v", ratio)
	}
}

func TestHeadlineSavingErrors(t *testing.T) {
	if _, _, err := HeadlineSaving(plot.Figure{}); err == nil {
		t.Error("missing series accepted")
	}
	f := plot.Figure{Series: []plot.Series{
		{Label: "GE", X: []float64{1}, Y: []float64{1}},
		{Label: "BE", X: []float64{2}, Y: []float64{1}},
	}}
	if _, _, err := HeadlineSaving(f); err == nil {
		t.Error("disjoint axes accepted")
	}
}

func TestDefaultLadder(t *testing.T) {
	l := DefaultLadder()
	if l.Len() != 16 || l.Max() != 3.2 {
		t.Fatalf("ladder = %d levels, max %v", l.Len(), l.Max())
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	s := quickSettings(100)
	bad := s.Base
	bad.Cores = 0 // invalid config must surface as an error
	_, err := runAll([]point{{series: "x", x: 1, cfg: bad,
		mk:   func() sched.Policy { return sched.NewFCFS() },
		spec: s.spec(100, false)}}, 1)
	if err == nil {
		t.Fatal("invalid point accepted")
	}
}

func TestParallelSweepMatchesSerial(t *testing.T) {
	// Sweep points are independent simulations; running them on a worker
	// pool must produce bit-identical results to a serial run.
	mk := func(workers int) (plot.Figure, plot.Figure) {
		s := quickSettings(110, 150, 190)
		s.Workers = workers
		q, e, err := Fig3(s)
		if err != nil {
			t.Fatal(err)
		}
		return q, e
	}
	q1, e1 := mk(1)
	q4, e4 := mk(4)
	same := func(a, b plot.Figure) {
		t.Helper()
		if len(a.Series) != len(b.Series) {
			t.Fatalf("series count differs: %d vs %d", len(a.Series), len(b.Series))
		}
		for i := range a.Series {
			for k := range a.Series[i].Y {
				if a.Series[i].Y[k] != b.Series[i].Y[k] {
					t.Fatalf("series %q diverges at point %d: %v vs %v",
						a.Series[i].Label, k, a.Series[i].Y[k], b.Series[i].Y[k])
				}
			}
		}
	}
	same(q1, q4)
	same(e1, e4)
}
