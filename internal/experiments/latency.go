package experiments

import (
	"fmt"

	"goodenough/internal/core"
	"goodenough/internal/plot"
	"goodenough/internal/power"
	"goodenough/internal/sched"
)

// ExtLatency is an extension experiment beyond the paper: response-time
// curves (mean and p95 of finish − release for completed jobs) for GE, BE,
// and FDFS. Because GE cuts jobs short, completed requests return earlier —
// approximate computing buys latency as well as energy, which is the
// argument of the AccuracyTrader/CLAP line of work the paper cites.
func ExtLatency(s Settings) (meanFig, p95Fig plot.Figure, err error) {
	if err := s.Validate(); err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	set := map[string]func() sched.Policy{
		"GE":   func() sched.Policy { return core.NewGE(s.Base.QGE) },
		"BE":   func() sched.Policy { return core.NewBE() },
		"FDFS": func() sched.Policy { return sched.NewFDFS() },
	}
	res, err := s.sweepSet(set)
	if err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	order := []string{"GE", "BE", "FDFS"}
	var ms, ps []plot.Series
	for _, name := range order {
		ms = append(ms, series(name, res[name], func(r sched.Result) float64 {
			return r.MeanResponse * 1000 // ms
		}))
		ps = append(ps, series(name, res[name], func(r sched.Result) float64 {
			return r.P95Response * 1000
		}))
	}
	meanFig = plot.Figure{Title: "Extension: mean response time",
		XLabel: "arrival rate (req/s)", YLabel: "mean response (ms)", Series: ms}
	p95Fig = plot.Figure{Title: "Extension: p95 response time",
		XLabel: "arrival rate (req/s)", YLabel: "p95 response (ms)", Series: ps}
	return meanFig, p95Fig, nil
}

// ExtManyCore is the paper's future-work scenario (§VI: "many-core
// processors"): scale the machine from 16 to 256 cores with the power
// budget and arrival rate scaled proportionally (weak scaling, 20 W and
// ~9.6 req/s per core). A quality-preserving scheduler should hold Q_GE
// flat while per-request energy falls slightly (more cores smooth the
// Poisson bursts). The x axis is log2(cores).
func ExtManyCore(s Settings) (qualityFig, energyFig plot.Figure, err error) {
	if err := s.Validate(); err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	baseRate := s.Rates[0]
	var points []point
	for exp := 4; exp <= 8; exp++ { // 16 .. 256 cores
		cores := 1 << exp
		scale := float64(cores) / 16
		cfg := s.Base
		cfg.Cores = cores
		cfg.PowerBudget = s.Base.PowerBudget * scale
		cfg.CriticalLoad = s.Base.CriticalLoad * scale
		spec := s.spec(baseRate*scale, false)
		points = append(points, point{series: "GE", x: float64(exp), cfg: cfg,
			mk:   func() sched.Policy { return core.NewGE(cfg.QGE) },
			spec: spec})
	}
	res, err := runAll(points, s.workers())
	if err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	qualityFig = plot.Figure{
		Title:  fmt.Sprintf("Extension: weak scaling to many-core (rate = %g/16 cores)", baseRate),
		XLabel: "log2(cores)", YLabel: "service quality",
		Series: []plot.Series{series("GE", res["GE"], qualityOf)},
	}
	// Energy per simulated request keeps the panels comparable across
	// machine sizes.
	perJob := series("GE", res["GE"], func(r sched.Result) float64 {
		if r.Jobs == 0 {
			return 0
		}
		return r.Energy / float64(r.Jobs)
	})
	energyFig = plot.Figure{
		Title:  "Extension: weak scaling, energy per request",
		XLabel: "log2(cores)", YLabel: "energy per request (J)",
		Series: []plot.Series{perJob},
	}
	return qualityFig, energyFig, nil
}

// ExtBigLittle compares a homogeneous 16-core machine against a
// heterogeneous 8 big + 8 little machine under the same total power budget
// (the paper's "different hardware platforms" future work). Little cores
// use half the power coefficient (a = 2.5) but cap at 1.6 GHz.
func ExtBigLittle(s Settings) (qualityFig, energyFig plot.Figure, err error) {
	if err := s.Validate(); err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	hetero := s.Base
	models := make([]power.Model, s.Base.Cores)
	for i := range models {
		if i < len(models)/2 {
			models[i] = s.Base.Model // big
		} else {
			models[i] = power.Model{A: s.Base.Model.A / 2, Beta: s.Base.Model.Beta,
				MaxSpeed: 1.6} // little
		}
	}
	hetero.PerCoreModels = models

	configs := map[string]sched.Config{
		"Homogeneous": s.Base,
		"big.LITTLE":  hetero,
	}
	var points []point
	for name, cfg := range configs {
		cfg := cfg
		for _, rate := range s.Rates {
			points = append(points, point{series: name, x: rate, cfg: cfg,
				mk:   func() sched.Policy { return core.NewGE(cfg.QGE) },
				spec: s.spec(rate, false)})
		}
	}
	res, err := runAll(points, s.workers())
	if err != nil {
		return plot.Figure{}, plot.Figure{}, err
	}
	order := []string{"Homogeneous", "big.LITTLE"}
	var qs, es []plot.Series
	for _, name := range order {
		qs = append(qs, series(name, res[name], qualityOf))
		es = append(es, series(name, res[name], energyOf))
	}
	qualityFig = plot.Figure{Title: "Extension: heterogeneous cores (a) quality",
		XLabel: "arrival rate (req/s)", YLabel: "service quality", Series: qs}
	energyFig = plot.Figure{Title: "Extension: heterogeneous cores (b) energy",
		XLabel: "arrival rate (req/s)", YLabel: "energy (J)", Series: es}
	return qualityFig, energyFig, nil
}
