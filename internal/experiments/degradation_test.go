package experiments

import "testing"

func quickDegradation() DegradationSettings {
	d := DefaultDegradationSettings()
	d.Duration = 10
	d.Rate = 160
	d.FailureRates = []float64{0, 0.05}
	return d
}

func TestDegradationShape(t *testing.T) {
	qf, ef, mf, err := Degradation(quickDegradation())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"GE", "BE"} {
		q := findSeries(t, qf, name)
		if len(q.X) != 2 {
			t.Fatalf("%s quality series has %d points, want 2", name, len(q.X))
		}
		findSeries(t, ef, name)
		m := findSeries(t, mf, name)
		// A heavy failure rate must not *improve* the miss rate.
		if yOf(t, m, 0.05) < yOf(t, m, 0) {
			t.Fatalf("%s miss rate improved under failures: %v < %v",
				name, yOf(t, m, 0.05), yOf(t, m, 0))
		}
	}
	// The fault-free point must match a plain run: quality in (0,1].
	g := findSeries(t, qf, "GE")
	if q0 := yOf(t, g, 0); q0 <= 0 || q0 > 1 {
		t.Fatalf("fault-free GE quality = %v", q0)
	}
}

func TestDegradationDeterministic(t *testing.T) {
	q1, _, m1, err := Degradation(quickDegradation())
	if err != nil {
		t.Fatal(err)
	}
	q2, _, m2, err := Degradation(quickDegradation())
	if err != nil {
		t.Fatal(err)
	}
	for i := range q1.Series {
		for j := range q1.Series[i].Y {
			if q1.Series[i].Y[j] != q2.Series[i].Y[j] || m1.Series[i].Y[j] != m2.Series[i].Y[j] {
				t.Fatal("degradation sweep is not deterministic")
			}
		}
	}
}

func TestDegradationValidation(t *testing.T) {
	for _, mut := range []func(*DegradationSettings){
		func(d *DegradationSettings) { d.Rate = 0 },
		func(d *DegradationSettings) { d.FailureRates = nil },
		func(d *DegradationSettings) { d.FailureRates = []float64{-1} },
		func(d *DegradationSettings) { d.MTTRSec = 0 },
		func(d *DegradationSettings) { d.Duration = 0 },
	} {
		d := quickDegradation()
		mut(&d)
		if _, _, _, err := Degradation(d); err == nil {
			t.Errorf("invalid settings accepted: %+v", d)
		}
	}
}
