package experiments

import (
	"math"
	"testing"
)

func TestAblationAssignment(t *testing.T) {
	q, e, err := AblationAssignment(quickSettings(150))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Series) != 3 || len(e.Series) != 3 {
		t.Fatalf("expected 3 assignment policies, got %d/%d", len(q.Series), len(e.Series))
	}
	for _, name := range []string{"C-RR", "Least-Loaded"} {
		s := findSeries(t, q, name)
		if v := yOf(t, s, 150); v < 0.8 || v > 1 {
			t.Fatalf("%s quality = %v", name, v)
		}
	}
	// The ablation's headline: plain RR restarts at core 0 on every batch,
	// and since most triggers carry tiny batches it starves the other
	// cores — C-RR's cumulative cursor is what makes batch assignment
	// work. The gap is dramatic, not subtle.
	crr := yOf(t, findSeries(t, q, "C-RR"), 150)
	rr := yOf(t, findSeries(t, q, "RR"), 150)
	if rr >= crr-0.05 {
		t.Fatalf("plain RR (%v) should badly trail C-RR (%v)", rr, crr)
	}
}

func TestAblationHybridMatchesBestOfBoth(t *testing.T) {
	s := quickSettings(110, 185)
	q, e, err := AblationHybrid(s)
	if err != nil {
		t.Fatal(err)
	}
	hybridE := findSeries(t, e, "Hybrid")
	wfE := findSeries(t, e, "Fixed-WF")
	hybridQ := findSeries(t, q, "Hybrid")
	esQ := findSeries(t, q, "Fixed-ES")
	// Light load: hybrid uses ES, so it must undercut fixed WF's energy.
	if yOf(t, hybridE, 110) >= yOf(t, wfE, 110) {
		t.Fatalf("hybrid energy %v should undercut fixed WF %v at light load",
			yOf(t, hybridE, 110), yOf(t, wfE, 110))
	}
	// Heavy load: hybrid uses WF, so its quality must not trail fixed ES.
	if yOf(t, hybridQ, 185) < yOf(t, esQ, 185)-0.01 {
		t.Fatalf("hybrid quality %v trails fixed ES %v at heavy load",
			yOf(t, hybridQ, 185), yOf(t, esQ, 185))
	}
}

func TestAblationMonitorWindow(t *testing.T) {
	q, sw, err := AblationMonitorWindow(quickSettings(160), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Cumulative", "Windowed"} {
		if v := yOf(t, findSeries(t, q, name), 160); v < 0.8 {
			t.Fatalf("%s monitor quality = %v", name, v)
		}
		if v := yOf(t, findSeries(t, sw, name), 160); v < 0 {
			t.Fatalf("%s switches = %v", name, v)
		}
	}
	if _, _, err := AblationMonitorWindow(quickSettings(100), 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestAblationStaticPower(t *testing.T) {
	fig, err := AblationStaticPower(quickSettings(150), 10)
	if err != nil {
		t.Fatal(err)
	}
	dyn := findSeries(t, fig, "dynamic only")
	tot := findSeries(t, fig, "with 10W static/core")
	if len(dyn.X) != 7 || len(tot.X) != 7 {
		t.Fatalf("core sweep truncated: %d/%d points", len(dyn.X), len(tot.X))
	}
	// Static power must strictly dominate at the 64-core end...
	if yOf(t, tot, 6) <= yOf(t, dyn, 6) {
		t.Fatal("static term missing at 64 cores")
	}
	// ...and the gap must grow with the core count.
	gapSmall := yOf(t, tot, 0) - yOf(t, dyn, 0)
	gapBig := yOf(t, tot, 6) - yOf(t, dyn, 6)
	if gapBig <= gapSmall {
		t.Fatalf("static gap should grow with cores: %v vs %v", gapSmall, gapBig)
	}
	// With the paper's assumption (no static), energy falls monotonically
	// toward 64 cores; with static it must turn upward somewhere.
	turnedUp := false
	for i := 1; i < len(tot.Y); i++ {
		if tot.Y[i] > tot.Y[i-1] {
			turnedUp = true
			break
		}
	}
	if !turnedUp {
		t.Fatal("static power should create a U-shaped energy curve")
	}
	if _, err := AblationStaticPower(quickSettings(150), -1); err == nil {
		t.Fatal("negative static power accepted")
	}
}

func TestAblationEnergySeriesConsistency(t *testing.T) {
	// The dynamic-only series of the static ablation must agree with a
	// plain Fig-11 energy sweep at the same settings.
	s := quickSettings(150)
	fig, err := AblationStaticPower(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, e11, err := Fig11(s)
	if err != nil {
		t.Fatal(err)
	}
	dyn := findSeries(t, fig, "dynamic only")
	ref := findSeries(t, e11, "GE")
	for i := range dyn.X {
		if math.Abs(dyn.Y[i]-ref.Y[i]) > 1e-6*math.Max(ref.Y[i], 1) {
			t.Fatalf("dynamic series diverges from Fig 11 at x=%v", dyn.X[i])
		}
	}
}

func TestExtLatency(t *testing.T) {
	m, p, err := ExtLatency(quickSettings(130))
	if err != nil {
		t.Fatal(err)
	}
	ge := yOf(t, findSeries(t, m, "GE"), 130)
	be := yOf(t, findSeries(t, m, "BE"), 130)
	if ge <= 0 || be <= 0 {
		t.Fatalf("degenerate latencies: GE %v BE %v", ge, be)
	}
	// GE completes cut jobs early: its mean response must undercut BE's.
	if ge >= be {
		t.Fatalf("GE mean response %v ms should undercut BE %v ms", ge, be)
	}
	// p95 bounded by the 150 ms window.
	for _, name := range []string{"GE", "BE", "FDFS"} {
		if v := yOf(t, findSeries(t, p, name), 130); v > 150+1e-6 {
			t.Fatalf("%s p95 %v ms exceeds the window", name, v)
		}
	}
}

func TestExtManyCore(t *testing.T) {
	s := quickSettings(150)
	q, e, err := ExtManyCore(s)
	if err != nil {
		t.Fatal(err)
	}
	ge := findSeries(t, q, "GE")
	if len(ge.X) != 5 {
		t.Fatalf("many-core sweep has %d points, want 5 (16..256 cores)", len(ge.X))
	}
	// Weak scaling must hold the quality target at every size.
	for i := range ge.X {
		if ge.Y[i] < 0.87 {
			t.Fatalf("quality at 2^%v cores = %v, want ~0.9", ge.X[i], ge.Y[i])
		}
	}
	perJob := findSeries(t, e, "GE")
	for i := range perJob.Y {
		if perJob.Y[i] <= 0 {
			t.Fatalf("per-request energy degenerate at 2^%v cores", perJob.X[i])
		}
	}
}

func TestExtBigLittle(t *testing.T) {
	q, e, err := ExtBigLittle(quickSettings(130))
	if err != nil {
		t.Fatal(err)
	}
	hq := yOf(t, findSeries(t, q, "big.LITTLE"), 130)
	if hq < 0.85 {
		t.Fatalf("big.LITTLE quality = %v", hq)
	}
	he := yOf(t, findSeries(t, e, "big.LITTLE"), 130)
	ho := yOf(t, findSeries(t, e, "Homogeneous"), 130)
	if he >= ho {
		t.Fatalf("efficient little cores should cut energy: %v vs %v", he, ho)
	}
}
