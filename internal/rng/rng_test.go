package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child must not replay the parent stream.
	p := New(7)
	p.Uint64() // Split consumed one draw
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatalf("child stream mirrors parent at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]int)
	for i := 0; i < 60000; i++ {
		v := r.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn(6) out of range: %d", v)
		}
		seen[v]++
	}
	for v := 0; v < 6; v++ {
		if seen[v] < 8000 || seen[v] > 12000 {
			t.Fatalf("Intn(6) skewed: value %d appeared %d/60000 times", v, seen[v])
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(9)
	const rate = 150.0 // paper's default arrival rate regime
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	want := 1 / rate
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("Exp mean = %v, want ~%v", mean, want)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestUniformRange(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(0.15, 0.5)
		if v < 0.15 || v >= 0.5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	r := New(4)
	if v := r.Uniform(2, 2); v != 2 {
		t.Fatalf("Uniform(2,2) = %v, want 2", v)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	r := New(6)
	for i := 0; i < 100000; i++ {
		v := r.BoundedPareto(3, 130, 1000)
		if v < 130 || v > 1000 {
			t.Fatalf("BoundedPareto out of [130,1000]: %v", v)
		}
	}
}

func TestBoundedParetoMeanMatchesPaper(t *testing.T) {
	// The paper states the mean service demand is ~192 processing units for
	// alpha=3, xmin=130, xmax=1000.
	m := BoundedParetoMean(3, 130, 1000)
	if math.Abs(m-192) > 1 {
		t.Fatalf("analytic bounded Pareto mean = %v, paper says ~192", m)
	}
}

func TestBoundedParetoEmpiricalMean(t *testing.T) {
	r := New(8)
	const n = 400000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.BoundedPareto(3, 130, 1000)
	}
	mean := sum / n
	want := BoundedParetoMean(3, 130, 1000)
	if math.Abs(mean-want)/want > 0.01 {
		t.Fatalf("empirical mean %v differs from analytic %v", mean, want)
	}
}

func TestBoundedParetoDegenerate(t *testing.T) {
	r := New(1)
	if v := r.BoundedPareto(3, 100, 100); v != 100 {
		t.Fatalf("degenerate bounded Pareto = %v, want 100", v)
	}
}

func TestBoundedParetoSkew(t *testing.T) {
	// Pareto with alpha=3 is right-skewed: the median must sit below the
	// mean.
	r := New(10)
	const n = 100001
	vals := make([]float64, n)
	sum := 0.0
	for i := range vals {
		vals[i] = r.BoundedPareto(3, 130, 1000)
		sum += vals[i]
	}
	mean := sum / n
	below := 0
	for _, v := range vals {
		if v < mean {
			below++
		}
	}
	if float64(below)/n < 0.55 {
		t.Fatalf("expected right-skewed distribution, only %d/%d below mean", below, n)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(12)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(13)
	for _, mean := range []float64{0.5, 4, 77, 900} {
		const n = 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean)/math.Max(mean, 1) > 0.05 {
			t.Fatalf("Poisson(%v) empirical mean = %v", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	if v := New(1).Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", v)
	}
	if v := New(1).Poisson(-3); v != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", v)
	}
}

func TestShufflePermutation(t *testing.T) {
	r := New(14)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("shuffle duplicated element %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

// Property: BoundedPareto stays within its bounds for arbitrary valid
// parameterizations.
func TestBoundedParetoBoundsProperty(t *testing.T) {
	r := New(15)
	f := func(a, lo, span uint8) bool {
		alpha := 0.5 + float64(a%40)/10 // 0.5 .. 4.4
		xmin := 1 + float64(lo)
		xmax := xmin + float64(span)
		v := r.BoundedPareto(alpha, xmin, xmax)
		return v >= xmin && v <= xmax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Exp is non-negative for arbitrary positive rates.
func TestExpNonNegativeProperty(t *testing.T) {
	r := New(16)
	f := func(k uint16) bool {
		rate := 0.001 + float64(k)/100
		return r.Exp(rate) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkBoundedPareto(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.BoundedPareto(3, 130, 1000)
	}
	_ = sink
}

func TestUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(hi<lo) did not panic")
		}
	}()
	New(1).Uniform(5, 2)
}

func TestBoundedParetoPanics(t *testing.T) {
	cases := [][3]float64{{0, 1, 2}, {1, 0, 2}, {1, 5, 2}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BoundedPareto(%v) did not panic", c)
				}
			}()
			New(1).BoundedPareto(c[0], c[1], c[2])
		}()
	}
}

func TestBoundedParetoMeanAlphaOne(t *testing.T) {
	// The α=1 branch has its own closed form; validate by Monte Carlo.
	want := BoundedParetoMean(1, 100, 1000)
	r := New(20)
	const n = 400000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.BoundedPareto(1, 100, 1000)
	}
	got := sum / n
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("alpha=1 mean: analytic %v vs empirical %v", want, got)
	}
}
