// Package rng provides a small, deterministic pseudo-random number
// generator and the random distributions used by the simulator.
//
// The simulator must be reproducible: the same seed has to yield the same
// workload and therefore the same scheduling decisions on every run and on
// every platform. We therefore implement the generator ourselves (SplitMix64
// for seeding, xoshiro256** for the stream) instead of depending on
// math/rand, whose stream is not guaranteed stable across Go releases.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic 64-bit pseudo-random source based on
// xoshiro256**. The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed. Distinct seeds produce
// uncorrelated streams (the state is expanded with SplitMix64, as
// recommended by the xoshiro authors).
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		src.s[i] = z
	}
	// The all-zero state is invalid for xoshiro; SplitMix64 cannot produce
	// four zero outputs in a row, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
	return &src
}

// Split derives an independent child source from the current state. It is
// used to give each workload stream (arrivals, demands, deadlines) its own
// generator so that changing one sweep parameter does not perturb the
// others.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method gives an unbiased result.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	// Inverse CDF. 1-Float64() is in (0, 1], so Log never sees zero.
	return -math.Log(1-r.Float64()) / rate
}

// Uniform returns a uniform value in [lo, hi). It panics if hi < lo.
func (r *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Uniform with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// BoundedPareto samples the bounded Pareto distribution with shape alpha on
// [xmin, xmax] by inverse-CDF. This is the service-demand distribution used
// throughout the paper (alpha=3, xmin=130, xmax=1000).
func (r *Source) BoundedPareto(alpha, xmin, xmax float64) float64 {
	if alpha <= 0 || xmin <= 0 || xmax < xmin {
		panic("rng: invalid bounded Pareto parameters")
	}
	if xmax == xmin {
		return xmin
	}
	u := r.Float64()
	la := math.Pow(xmin, alpha)
	ha := math.Pow(xmax, alpha)
	// Inverse of F(x) = (1 - (xmin/x)^alpha) / (1 - (xmin/xmax)^alpha).
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < xmin {
		x = xmin
	}
	if x > xmax {
		x = xmax
	}
	return x
}

// BoundedParetoMean returns the analytic mean of the bounded Pareto
// distribution, used by load calculations and verified in tests against the
// paper's quoted mean of ~192 processing units.
func BoundedParetoMean(alpha, xmin, xmax float64) float64 {
	if alpha == 1 {
		return xmin * math.Log(xmax/xmin) / (1 - xmin/xmax)
	}
	num := math.Pow(xmin, alpha) * alpha / (alpha - 1) *
		(math.Pow(xmin, 1-alpha) - math.Pow(xmax, 1-alpha))
	den := 1 - math.Pow(xmin/xmax, alpha)
	return num / den
}

// Poisson returns a Poisson-distributed integer with the given mean using
// Knuth's method for small means and normal approximation fallback for very
// large means. It is used by workload tests, not the arrival process itself
// (arrivals use Exp inter-arrival gaps).
func (r *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		// Normal approximation with continuity correction.
		v := r.Normal()*math.Sqrt(mean) + mean + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Normal returns a standard normal variate (Box-Muller).
func (r *Source) Normal() float64 {
	u1 := 1 - r.Float64() // (0, 1]
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Shuffle permutes the first n elements using the Fisher-Yates algorithm,
// calling swap(i, j) for each exchange.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
