package obs

import (
	"io"
	"sync"
)

// SyncRegistry wraps a Registry for concurrent use. The plain Registry is
// single-threaded by design — one registry per simulation run — but the
// serving layers (internal/server, internal/gateway) multiplex many
// goroutines onto one registry, so every touch goes through a mutex.
//
// Counters and gauges are created on first use, exactly like the underlying
// Registry. Histograms must be created up front with NewHistogram; Observe
// on an unknown histogram is a silent no-op so hot paths never have to
// carry bucket bounds around.
type SyncRegistry struct {
	mu  sync.Mutex
	reg *Registry
}

// NewSyncRegistry returns an empty concurrent registry.
func NewSyncRegistry() *SyncRegistry {
	return &SyncRegistry{reg: NewRegistry()}
}

// Inc adds one to the named counter.
func (r *SyncRegistry) Inc(name string) {
	r.mu.Lock()
	r.reg.Counter(name).Inc()
	r.mu.Unlock()
}

// AddCounter adds n to the named counter (negative deltas are ignored).
func (r *SyncRegistry) AddCounter(name string, n int64) {
	r.mu.Lock()
	r.reg.Counter(name).Add(n)
	r.mu.Unlock()
}

// CounterValue reads the named counter (zero if it was never touched).
func (r *SyncRegistry) CounterValue(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reg.Counter(name).Value()
}

// GaugeSet replaces the named gauge's value.
func (r *SyncRegistry) GaugeSet(name string, v float64) {
	r.mu.Lock()
	r.reg.Gauge(name).Set(v)
	r.mu.Unlock()
}

// GaugeAdd shifts the named gauge by d.
func (r *SyncRegistry) GaugeAdd(name string, d float64) {
	r.mu.Lock()
	r.reg.Gauge(name).Add(d)
	r.mu.Unlock()
}

// GaugeValue reads the named gauge.
func (r *SyncRegistry) GaugeValue(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reg.Gauge(name).Value()
}

// Preset creates the named counters and gauges at zero so text renders show
// zeros instead of absences.
func (r *SyncRegistry) Preset(counters, gauges []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range counters {
		r.reg.Counter(name)
	}
	for _, name := range gauges {
		r.reg.Gauge(name)
	}
}

// NewHistogram creates the named histogram over the given strictly
// increasing bucket bounds. Later Observe calls refer to it by name only.
func (r *SyncRegistry) NewHistogram(name string, bounds []float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := r.reg.Histogram(name, bounds)
	return err
}

// Observe records one value into the named histogram; unknown names are
// dropped silently (histograms are declared up front via NewHistogram).
func (r *SyncRegistry) Observe(name string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.reg.hists[name]; ok {
		h.Observe(v)
	}
}

// HistogramCount reads the observation count of the named histogram (zero
// when absent).
func (r *SyncRegistry) HistogramCount(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.reg.hists[name]; ok {
		return h.Count()
	}
	return 0
}

// WriteText renders the registry snapshot to w under the lock.
func (r *SyncRegistry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reg.WriteText(w)
}

// WritePrometheus renders the registry snapshot in the Prometheus text
// exposition format under the lock.
func (r *SyncRegistry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reg.WritePrometheus(w)
}
