package obs

import "context"

// Context plumbing for span propagation across API boundaries whose
// signatures predate tracing (the server's injectable Run function takes
// only a context.Context and a Config). The allocation happens once per
// traced request, never on an untraced path.

type spanCtxKey struct{}

type spanCtxVal struct {
	bus    *SpanBus
	parent SpanContext
}

// ContextWithSpan returns ctx carrying the bus and the parent context
// under which downstream work should start its spans. A nil bus returns
// ctx unchanged.
func ContextWithSpan(ctx context.Context, bus *SpanBus, parent SpanContext) context.Context {
	if bus == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, spanCtxVal{bus: bus, parent: parent})
}

// SpanFromContext extracts the bus and parent span context installed by
// ContextWithSpan, or (nil, zero, false).
func SpanFromContext(ctx context.Context) (*SpanBus, SpanContext, bool) {
	v, ok := ctx.Value(spanCtxKey{}).(spanCtxVal)
	if !ok {
		return nil, SpanContext{}, false
	}
	return v.bus, v.parent, true
}
