package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestDecisionKindStrings(t *testing.T) {
	want := map[DecisionKind]string{
		DecisionAdmit:      "admit",
		DecisionShed:       "shed",
		DecisionModeSwitch: "mode-switch",
		DecisionReplan:     "replan",
		DecisionDispatch:   "dispatch",
		DecisionRedispatch: "redispatch",
		DecisionDrop:       "drop",
		DecisionCut:        "cut",
		DecisionCompensate: "compensate",
	}
	if len(want) != numDecisionKinds {
		t.Fatalf("test covers %d kinds, code has %d", len(want), numDecisionKinds)
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if DecisionKind(200).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
}

// recordSink keeps every decision it sees.
type recordSink struct{ ds []Decision }

func (r *recordSink) ObserveDecision(d Decision) { r.ds = append(r.ds, d) }

func TestEmitDecisionNilSafe(t *testing.T) {
	EmitDecision(nil, Decision{Kind: DecisionShed}) // must not panic
	r := &recordSink{}
	EmitDecision(r, Decision{Kind: DecisionAdmit, Job: 7})
	if len(r.ds) != 1 || r.ds[0].Job != 7 {
		t.Fatalf("sink saw %+v", r.ds)
	}
}

func TestDecisionSinks(t *testing.T) {
	if DecisionSinks() != nil {
		t.Error("no sinks should combine to nil")
	}
	if DecisionSinks(nil, nil) != nil {
		t.Error("all-nil sinks should combine to nil")
	}
	r := &recordSink{}
	if got := DecisionSinks(nil, r, nil); got != DecisionSink(r) {
		t.Error("single sink should pass through unchanged")
	}
	r2 := &recordSink{}
	multi := DecisionSinks(r, r2)
	multi.ObserveDecision(Decision{Kind: DecisionDrop})
	if len(r.ds) != 1 || len(r2.ds) != 1 {
		t.Errorf("fan-out missed a sink: %d, %d", len(r.ds), len(r2.ds))
	}
}

func TestDecisionLogFormat(t *testing.T) {
	var buf bytes.Buffer
	log := NewDecisionLog(&buf)
	log.ObserveDecision(Decision{
		Time: 1.5, Kind: DecisionShed, Machine: -1, Job: 42,
		Load: 200, Capacity: 150.5, Marginal: 0.003, Budget: 80,
		Alts: 3, Action: "shed",
	})
	log.ObserveDecision(Decision{
		Time: 2, Kind: DecisionModeSwitch, Machine: 1, Job: -1,
		Score: 0.91, Action: "aes",
	})
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	want0 := `{"t":1.5,"decision":"shed","job":42,"load":200,"cap":150.5,"marginal":0.003,"budget":80,"alts":3,"action":"shed"}`
	if lines[0] != want0 {
		t.Errorf("line 0:\n got %s\nwant %s", lines[0], want0)
	}
	// Machine present, job omitted (-1), zero floats omitted.
	want1 := `{"t":2,"decision":"mode-switch","machine":1,"score":0.91,"action":"aes"}`
	if lines[1] != want1 {
		t.Errorf("line 1:\n got %s\nwant %s", lines[1], want1)
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Errorf("line %q is not valid JSON: %v", line, err)
		}
	}
}

func TestDecisionLogDeterministic(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		log := NewDecisionLog(&buf)
		for i := 0; i < 50; i++ {
			log.ObserveDecision(Decision{
				Time: float64(i) * 0.1, Kind: DecisionKind(i % numDecisionKinds),
				Machine: i%4 - 1, Job: i - 1, Load: float64(i) * 1.7,
				Budget: 320, Alts: i % 5, Action: "x",
			})
		}
		if err := log.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Error("decision log not byte-deterministic")
	}
}

func TestCollectorDecisionSummary(t *testing.T) {
	col := NewCollector()
	col.ObserveDecision(Decision{Kind: DecisionAdmit, Job: 1})
	col.ObserveDecision(Decision{Kind: DecisionShed, Job: 2, Marginal: 0.01, Load: 300, Capacity: 150})
	col.ObserveDecision(Decision{Kind: DecisionShed, Job: 3, Marginal: 0.03, Load: 450, Capacity: 150})
	col.ObserveDecision(Decision{Kind: DecisionDispatch, Job: 4, Machine: 0, Score: 2, Alts: 4})
	var rep bytes.Buffer
	if err := col.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{
		"decisions_total",
		"--- decision summary ---",
		"decide  admit",
		"decide  shed",
		"mean_marginal=0.02",
		"mean_overload=2.5",
		"decide  dispatch",
		"mean_score=2",
		"mean_alts=4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// A collector that never saw a decision renders no summary section.
	var rep2 bytes.Buffer
	if err := NewCollector().WriteReport(&rep2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rep2.String(), "decision summary") {
		t.Error("decision summary rendered with no decisions observed")
	}
}

// BenchmarkDecisionDisabled pins the nil-sink fast path: instrumented code
// paths pay one branch and zero allocations when recording is off.
func BenchmarkDecisionDisabled(b *testing.B) {
	var sink DecisionSink
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sink != nil {
			sink.ObserveDecision(Decision{Kind: DecisionAdmit, Job: i})
		}
	}
}

// BenchmarkDecisionCollector bounds the live recording cost per decision.
func BenchmarkDecisionCollector(b *testing.B) {
	col := NewCollector()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		col.ObserveDecision(Decision{Kind: DecisionShed, Job: i, Marginal: 0.01, Load: 2, Capacity: 1})
	}
}
