package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Tracer exports the event stream in the Chrome trace-event JSON format
// (the "JSON Array Format" with a traceEvents wrapper), viewable in
// Perfetto or chrome://tracing. The layout is one thread track per core
// carrying job execution spans and fault markers, a counter track per core
// for its DVFS speed, plus machine-wide counter tracks for the execution
// mode (AES=1), the live power budget, and the waiting-queue depth.
//
// Like JSONL, the encoding is deterministic byte-for-byte for a seeded run.
type Tracer struct {
	w     *bufio.Writer
	first bool
	err   error
}

// NewTracer starts a trace over a machine with the given core count and
// writes the header plus per-core track metadata. Call Flush when the run
// completes to terminate the JSON document.
func NewTracer(w io.Writer, cores int) *Tracer {
	t := &Tracer{w: bufio.NewWriter(w), first: true}
	t.raw(`{"displayTimeUnit":"ms","traceEvents":[`)
	t.event(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"goodenough sim"}}`)
	for i := 0; i < cores; i++ {
		t.event(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":"core %d"}}`, i, i))
		t.event(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, i, i))
	}
	return t
}

func (t *Tracer) raw(s string) {
	if t.err != nil {
		return
	}
	if _, err := t.w.WriteString(s); err != nil {
		t.err = err
	}
}

func (t *Tracer) event(s string) {
	if !t.first {
		t.raw(",\n")
	}
	t.first = false
	t.raw(s)
}

// us renders a simulation time (seconds) as trace microseconds.
func us(sec float64) string { return strconv.FormatFloat(sec*1e6, 'g', -1, 64) }

func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func b01(f bool) string {
	if f {
		return "1"
	}
	return "0"
}

// Observe implements Observer.
func (t *Tracer) Observe(e Event) {
	switch e.Type {
	case EventExec:
		// A complete ("X") span on the core's thread: one contiguous run
		// of one job at one speed.
		t.event(fmt.Sprintf(`{"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"name":"J%d","args":{"ghz":%s,"energy_j":%s}}`,
			e.Core, us(e.Time), us(e.Aux), e.Job, g(e.Value), g(e.Extra)))
	case EventCoreSpeed:
		// Speed counters render as their own named tracks, so the core
		// index lives in the counter name rather than a tid.
		t.event(fmt.Sprintf(`{"ph":"C","pid":1,"ts":%s,"name":"speed core %d","args":{"ghz":%s}}`,
			us(e.Time), e.Core, g(e.Value)))
	case EventModeSwitch:
		t.event(fmt.Sprintf(`{"ph":"C","pid":1,"ts":%s,"name":"mode (AES=1)","args":{"aes":%s}}`,
			us(e.Time), b01(e.Flag)))
	case EventDistSwitch:
		t.event(fmt.Sprintf(`{"ph":"C","pid":1,"ts":%s,"name":"dist (WF=1)","args":{"wf":%s}}`,
			us(e.Time), b01(e.Flag)))
	case EventBudgetCap, EventBudgetRestore:
		t.event(fmt.Sprintf(`{"ph":"C","pid":1,"ts":%s,"name":"budget_w","args":{"w":%s}}`,
			us(e.Time), g(e.Value)))
	case EventBatch:
		t.event(fmt.Sprintf(`{"ph":"C","pid":1,"ts":%s,"name":"waiting","args":{"jobs":%s}}`,
			us(e.Time), g(e.Value)))
	case EventCoreFail, EventCoreRecover, EventSpeedStuck, EventSpeedFree:
		// Thread-scoped instant markers on the affected core's track.
		t.event(fmt.Sprintf(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":"%s"}`,
			e.Core, us(e.Time), e.Type))
	case EventJobRequeue:
		t.event(fmt.Sprintf(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":"requeue J%d"}`,
			e.Core, us(e.Time), e.Job))
	case EventJobDrop:
		t.event(fmt.Sprintf(`{"ph":"i","pid":1,"tid":0,"ts":%s,"s":"p","name":"drop J%d"}`,
			us(e.Time), e.Job))
	case EventMachineDown, EventMachineUp, EventMachinePartition, EventMachineDegrade:
		// Process-scoped instant markers plus a per-machine health counter
		// track so fleet chaos timelines read at a glance: 1 up, 0 down,
		// 0.5 partitioned, the budget factor while degraded.
		t.event(fmt.Sprintf(`{"ph":"i","pid":1,"tid":0,"ts":%s,"s":"p","name":"%s m%d"}`,
			us(e.Time), e.Type, e.Core))
		health := 1.0
		switch {
		case e.Type == EventMachineDown:
			health = 0
		case e.Type == EventMachinePartition && e.Flag:
			health = 0.5
		case e.Type == EventMachineDegrade && e.Flag:
			health = e.Value
		}
		t.event(fmt.Sprintf(`{"ph":"C","pid":1,"ts":%s,"name":"machine %d health","args":{"h":%s}}`,
			us(e.Time), e.Core, g(health)))
	case EventRedispatch:
		t.event(fmt.Sprintf(`{"ph":"i","pid":1,"tid":0,"ts":%s,"s":"p","name":"redispatch J%d -> m%d"}`,
			us(e.Time), e.Job, e.Core))
	}
}

// Flush terminates the JSON document and drains the buffer.
func (t *Tracer) Flush() error {
	t.raw("\n]}\n")
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Span rendering: WriteSpanTrace turns a merged set of request spans —
// typically the concatenated SpanLogs of geload, gegate, and every
// geserve replica — into a Chrome trace-event document. Each SpanKind
// gets a thread-track tier (client on top, scheduler at the bottom);
// overlapping spans within a tier (hedge attempts, concurrent requests)
// spread across lanes, and flow arrows (ph "s"/"f") bind every child
// span back to its parent so one request reads as one causal tree in
// Perfetto.

// spanLanes greedily packs spans of one tier into non-overlapping lanes
// and returns each span's lane index. Spans must be sorted by Start.
func spanLanes(spans []Span) []int {
	lanes := []int64{} // end time per lane
	out := make([]int, len(spans))
	for i, s := range spans {
		placed := -1
		for l, end := range lanes {
			if end <= s.Start {
				placed = l
				break
			}
		}
		if placed < 0 {
			placed = len(lanes)
			lanes = append(lanes, 0)
		}
		lanes[placed] = s.End
		out[i] = placed
	}
	return out
}

// maxSpanLanes caps lanes per tier so tids stay disjoint across tiers.
const maxSpanLanes = 64

// WriteSpanTrace renders spans as a Chrome trace-event JSON document.
// The output is deterministic for a fixed input: spans are ordered by
// (start, span ID) and IDs render as fixed-width hex.
func WriteSpanTrace(w io.Writer, spans []Span) error {
	ordered := append([]Span(nil), spans...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Start != ordered[j].Start {
			return ordered[i].Start < ordered[j].Start
		}
		return ordered[i].ID < ordered[j].ID
	})

	t := &Tracer{w: bufio.NewWriter(w), first: true}
	t.raw(`{"displayTimeUnit":"ms","traceEvents":[`)
	t.event(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"goodenough request traces"}}`)

	// Partition by tier, keeping the global order within each tier, and
	// pack each tier into lanes: tid = kind*maxSpanLanes + lane.
	byKind := map[SpanKind][]int{}
	for i, s := range ordered {
		byKind[s.Kind] = append(byKind[s.Kind], i)
	}
	lane := make([]int, len(ordered))
	kinds := []SpanKind{SpanClient, SpanGateway, SpanAttempt, SpanServer, SpanRun, SpanSched}
	for _, k := range kinds {
		idx := byKind[k]
		if len(idx) == 0 {
			continue
		}
		tier := make([]Span, len(idx))
		for j, i := range idx {
			tier[j] = ordered[i]
		}
		nLanes := 0
		for j, l := range spanLanes(tier) {
			if l >= maxSpanLanes {
				l = maxSpanLanes - 1
			}
			lane[idx[j]] = l
			if l+1 > nLanes {
				nLanes = l + 1
			}
		}
		for l := 0; l < nLanes; l++ {
			name := k.String()
			if l > 0 {
				name = fmt.Sprintf("%s %d", k.String(), l+1)
			}
			tid := int(k)*maxSpanLanes + l
			t.event(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				tid, strconv.Quote(name)))
			t.event(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`,
				tid, tid))
		}
	}

	// Zero the timeline at the earliest span so timestamps stay small.
	var base int64
	if len(ordered) > 0 {
		base = ordered[0].Start
	}
	usAt := func(nanos int64) string {
		return strconv.FormatFloat(float64(nanos-base)/1e3, 'g', -1, 64)
	}
	have := map[uint64]int{}
	for i, s := range ordered {
		have[s.ID] = i
	}
	for i, s := range ordered {
		tid := int(s.Kind)*maxSpanLanes + lane[i]
		dur := float64(s.End-s.Start) / 1e3
		if dur < 0 {
			dur = 0
		}
		extra := ""
		if s.Note != "" {
			extra += `,"note":` + strconv.Quote(s.Note)
		}
		if s.Value != 0 {
			extra += `,"v":` + g(s.Value)
		}
		if s.Aux != 0 {
			extra += `,"aux":` + g(s.Aux)
		}
		if s.Flag {
			extra += `,"flag":true`
		}
		t.event(fmt.Sprintf(`{"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"name":%s,"args":{"trace":"%s","span":"%s","parent":"%s"%s}}`,
			tid, usAt(s.Start), strconv.FormatFloat(dur, 'g', -1, 64),
			strconv.Quote(s.Name), formatID(s.Trace), formatID(s.ID), formatID(s.Parent), extra))
		// Flow arrow binding this span to its parent, when present.
		if p, ok := have[s.Parent]; ok && s.Parent != 0 {
			ps := ordered[p]
			ptid := int(ps.Kind)*maxSpanLanes + lane[p]
			t.event(fmt.Sprintf(`{"ph":"s","pid":1,"tid":%d,"ts":%s,"id":"%s","cat":"span","name":"child"}`,
				ptid, usAt(ps.Start), formatID(s.ID)))
			t.event(fmt.Sprintf(`{"ph":"f","bp":"e","pid":1,"tid":%d,"ts":%s,"id":"%s","cat":"span","name":"child"}`,
				tid, usAt(s.Start), formatID(s.ID)))
		}
	}
	return t.Flush()
}
