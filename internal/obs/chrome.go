package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Tracer exports the event stream in the Chrome trace-event JSON format
// (the "JSON Array Format" with a traceEvents wrapper), viewable in
// Perfetto or chrome://tracing. The layout is one thread track per core
// carrying job execution spans and fault markers, a counter track per core
// for its DVFS speed, plus machine-wide counter tracks for the execution
// mode (AES=1), the live power budget, and the waiting-queue depth.
//
// Like JSONL, the encoding is deterministic byte-for-byte for a seeded run.
type Tracer struct {
	w     *bufio.Writer
	first bool
	err   error
}

// NewTracer starts a trace over a machine with the given core count and
// writes the header plus per-core track metadata. Call Flush when the run
// completes to terminate the JSON document.
func NewTracer(w io.Writer, cores int) *Tracer {
	t := &Tracer{w: bufio.NewWriter(w), first: true}
	t.raw(`{"displayTimeUnit":"ms","traceEvents":[`)
	t.event(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"goodenough sim"}}`)
	for i := 0; i < cores; i++ {
		t.event(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":"core %d"}}`, i, i))
		t.event(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, i, i))
	}
	return t
}

func (t *Tracer) raw(s string) {
	if t.err != nil {
		return
	}
	if _, err := t.w.WriteString(s); err != nil {
		t.err = err
	}
}

func (t *Tracer) event(s string) {
	if !t.first {
		t.raw(",\n")
	}
	t.first = false
	t.raw(s)
}

// us renders a simulation time (seconds) as trace microseconds.
func us(sec float64) string { return strconv.FormatFloat(sec*1e6, 'g', -1, 64) }

func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func b01(f bool) string {
	if f {
		return "1"
	}
	return "0"
}

// Observe implements Observer.
func (t *Tracer) Observe(e Event) {
	switch e.Type {
	case EventExec:
		// A complete ("X") span on the core's thread: one contiguous run
		// of one job at one speed.
		t.event(fmt.Sprintf(`{"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"name":"J%d","args":{"ghz":%s,"energy_j":%s}}`,
			e.Core, us(e.Time), us(e.Aux), e.Job, g(e.Value), g(e.Extra)))
	case EventCoreSpeed:
		// Speed counters render as their own named tracks, so the core
		// index lives in the counter name rather than a tid.
		t.event(fmt.Sprintf(`{"ph":"C","pid":1,"ts":%s,"name":"speed core %d","args":{"ghz":%s}}`,
			us(e.Time), e.Core, g(e.Value)))
	case EventModeSwitch:
		t.event(fmt.Sprintf(`{"ph":"C","pid":1,"ts":%s,"name":"mode (AES=1)","args":{"aes":%s}}`,
			us(e.Time), b01(e.Flag)))
	case EventDistSwitch:
		t.event(fmt.Sprintf(`{"ph":"C","pid":1,"ts":%s,"name":"dist (WF=1)","args":{"wf":%s}}`,
			us(e.Time), b01(e.Flag)))
	case EventBudgetCap, EventBudgetRestore:
		t.event(fmt.Sprintf(`{"ph":"C","pid":1,"ts":%s,"name":"budget_w","args":{"w":%s}}`,
			us(e.Time), g(e.Value)))
	case EventBatch:
		t.event(fmt.Sprintf(`{"ph":"C","pid":1,"ts":%s,"name":"waiting","args":{"jobs":%s}}`,
			us(e.Time), g(e.Value)))
	case EventCoreFail, EventCoreRecover, EventSpeedStuck, EventSpeedFree:
		// Thread-scoped instant markers on the affected core's track.
		t.event(fmt.Sprintf(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":"%s"}`,
			e.Core, us(e.Time), e.Type))
	case EventJobRequeue:
		t.event(fmt.Sprintf(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":"requeue J%d"}`,
			e.Core, us(e.Time), e.Job))
	case EventJobDrop:
		t.event(fmt.Sprintf(`{"ph":"i","pid":1,"tid":0,"ts":%s,"s":"p","name":"drop J%d"}`,
			us(e.Time), e.Job))
	case EventMachineDown, EventMachineUp, EventMachinePartition, EventMachineDegrade:
		// Process-scoped instant markers plus a per-machine health counter
		// track so fleet chaos timelines read at a glance: 1 up, 0 down,
		// 0.5 partitioned, the budget factor while degraded.
		t.event(fmt.Sprintf(`{"ph":"i","pid":1,"tid":0,"ts":%s,"s":"p","name":"%s m%d"}`,
			us(e.Time), e.Type, e.Core))
		health := 1.0
		switch {
		case e.Type == EventMachineDown:
			health = 0
		case e.Type == EventMachinePartition && e.Flag:
			health = 0.5
		case e.Type == EventMachineDegrade && e.Flag:
			health = e.Value
		}
		t.event(fmt.Sprintf(`{"ph":"C","pid":1,"ts":%s,"name":"machine %d health","args":{"h":%s}}`,
			us(e.Time), e.Core, g(health)))
	case EventRedispatch:
		t.event(fmt.Sprintf(`{"ph":"i","pid":1,"tid":0,"ts":%s,"s":"p","name":"redispatch J%d -> m%d"}`,
			us(e.Time), e.Job, e.Core))
	}
}

// Flush terminates the JSON document and drains the buffer.
func (t *Tracer) Flush() error {
	t.raw("\n]}\n")
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}
