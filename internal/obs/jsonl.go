package obs

import (
	"bufio"
	"io"
	"strconv"
)

// JSONL streams each event as one JSON object per line. The encoding is
// hand-rolled (fixed key order, %g float formatting, fields omitted only by
// fixed per-field rules), so a seeded run produces a byte-identical log on
// every execution — the golden-file test relies on this.
type JSONL struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewJSONL wraps w in a buffered JSONL event sink. Call Flush when the run
// completes.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w), buf: make([]byte, 0, 256)}
}

// Observe implements Observer.
func (j *JSONL) Observe(e Event) {
	if j.err != nil {
		return
	}
	b := j.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, e.Time, 'g', -1, 64)
	b = append(b, `,"type":"`...)
	b = append(b, e.Type.String()...)
	b = append(b, '"')
	if e.Core >= 0 {
		b = append(b, `,"core":`...)
		b = strconv.AppendInt(b, int64(e.Core), 10)
	}
	if e.Job >= 0 {
		b = append(b, `,"job":`...)
		b = strconv.AppendInt(b, int64(e.Job), 10)
	}
	if e.Value != 0 {
		b = append(b, `,"v":`...)
		b = strconv.AppendFloat(b, e.Value, 'g', -1, 64)
	}
	if e.Aux != 0 {
		b = append(b, `,"aux":`...)
		b = strconv.AppendFloat(b, e.Aux, 'g', -1, 64)
	}
	if e.Extra != 0 {
		b = append(b, `,"extra":`...)
		b = strconv.AppendFloat(b, e.Extra, 'g', -1, 64)
	}
	if e.Flag {
		b = append(b, `,"flag":true`...)
	}
	b = append(b, '}', '\n')
	j.buf = b
	if _, err := j.w.Write(b); err != nil {
		j.err = err
	}
}

// Flush drains the buffer and returns the first write error, if any.
func (j *JSONL) Flush() error {
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}
