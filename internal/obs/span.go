package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Request tracing. A Span is one timed operation in a request's causal
// tree: the client send, the gateway's handling of it, each upstream
// attempt (hedges and retries are sibling spans under the same gateway
// span), the server's admission+run, and the scheduler's execution.
// Trace and span IDs propagate across process boundaries as the
// X-GE-Trace-Id / X-GE-Span-Id headers, so the logs of geload, gegate,
// and every geserve replica stitch back into one tree.
//
// The whole API is nil-safe: with a nil *SpanBus every call — Start,
// annotation setters, Finish — is a no-op costing zero allocations, so
// the serving and scheduler hot paths carry the instrumentation
// unconditionally and pay only a nil check when tracing is off.

// Trace-propagation headers. Values are 16 lower-case hex digits.
const (
	HeaderTraceID = "X-GE-Trace-Id"
	HeaderSpanID  = "X-GE-Span-Id"
)

// SpanKind labels which tier of the stack a span belongs to.
type SpanKind uint8

const (
	SpanClient  SpanKind = iota // load generator / caller
	SpanGateway                 // gegate request handling
	SpanAttempt                 // one upstream attempt (first, retry, or hedge)
	SpanServer                  // geserve request handling
	SpanRun                     // one simulation run inside the server
	SpanSched                   // scheduler-internal work
)

// String returns the stable wire name of the kind.
func (k SpanKind) String() string {
	switch k {
	case SpanClient:
		return "client"
	case SpanGateway:
		return "gateway"
	case SpanAttempt:
		return "attempt"
	case SpanServer:
		return "server"
	case SpanRun:
		return "run"
	case SpanSched:
		return "sched"
	default:
		return "unknown"
	}
}

// spanKindFromString inverts String; unknown names map to SpanClient.
func spanKindFromString(s string) SpanKind {
	switch s {
	case "gateway":
		return SpanGateway
	case "attempt":
		return SpanAttempt
	case "server":
		return SpanServer
	case "run":
		return SpanRun
	case "sched":
		return SpanSched
	default:
		return SpanClient
	}
}

// SpanContext identifies a position in a trace: the trace itself and the
// span that new children should claim as parent. The zero value is "no
// trace"; Start treats it as a request to begin a new trace.
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context carries a trace.
func (c SpanContext) Valid() bool { return c.Trace != 0 }

// Inject writes the context into HTTP headers. No-op when invalid.
func (c SpanContext) Inject(h http.Header) {
	if !c.Valid() {
		return
	}
	h.Set(HeaderTraceID, formatID(c.Trace))
	h.Set(HeaderSpanID, formatID(c.Span))
}

// ParseSpanContext reads a context from HTTP headers. Returns the zero
// context when the headers are absent or malformed.
func ParseSpanContext(h http.Header) SpanContext {
	tr, err := strconv.ParseUint(h.Get(HeaderTraceID), 16, 64)
	if err != nil || tr == 0 {
		return SpanContext{}
	}
	sp, err := strconv.ParseUint(h.Get(HeaderSpanID), 16, 64)
	if err != nil {
		sp = 0
	}
	return SpanContext{Trace: tr, Span: sp}
}

// formatID renders an ID as 16 lower-case hex digits.
func formatID(id uint64) string {
	var b [16]byte
	appendID(b[:0], id)
	return string(b[:])
}

// appendID appends an ID as exactly 16 lower-case hex digits.
func appendID(b []byte, id uint64) []byte {
	const hexdigits = "0123456789abcdef"
	for shift := 60; shift >= 0; shift -= 4 {
		b = append(b, hexdigits[(id>>uint(shift))&0xf])
	}
	return b
}

// Span is one timed, annotated operation. Spans are pooled: a *Span
// returned by SpanBus.Start is owned by the caller until Finish, after
// which it must not be touched. All fields are flat values so a pooled
// span is reused without allocation; Note must be a static or otherwise
// long-lived string (it is retained only until the sink runs).
type Span struct {
	Name   string
	Kind   SpanKind
	Trace  uint64
	ID     uint64
	Parent uint64 // 0 for a root span
	Start  int64  // wall-clock unix nanoseconds
	End    int64
	Value  float64 // kind-specific annotation (e.g. attempt number)
	Aux    float64 // kind-specific annotation (e.g. events processed)
	Flag   bool    // kind-specific marker (e.g. hedge attempt)
	Note   string  // static-string outcome ("won", "lost", "shed", ...)
}

// Context returns the SpanContext under which children of s start.
// Nil-safe: a nil span yields the zero context.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.Trace, Span: s.ID}
}

// SetValue sets the Value annotation. Nil-safe.
func (s *Span) SetValue(v float64) {
	if s != nil {
		s.Value = v
	}
}

// SetAux sets the Aux annotation. Nil-safe.
func (s *Span) SetAux(v float64) {
	if s != nil {
		s.Aux = v
	}
}

// SetFlag sets the Flag marker. Nil-safe.
func (s *Span) SetFlag(f bool) {
	if s != nil {
		s.Flag = f
	}
}

// SetNote sets the Note annotation (static strings only). Nil-safe.
func (s *Span) SetNote(n string) {
	if s != nil {
		s.Note = n
	}
}

// SpanSink receives finished spans. The *Span is only valid for the
// duration of the call — it returns to the pool immediately after — so
// sinks must copy anything they keep.
type SpanSink interface {
	ObserveSpan(s *Span)
}

// SpanBus issues trace/span IDs and recycles Span values through a pool.
// A nil *SpanBus is valid and inert: Start returns nil and Finish of nil
// is a no-op, both allocation-free. Safe for concurrent use.
type SpanBus struct {
	ctr  atomic.Uint64
	seed uint64
	sink SpanSink // may be nil: spans are timed and discarded
	now  func() int64
	pool sync.Pool
}

// NewSpanBus returns a bus seeded from the wall clock and process ID so
// concurrent processes mint disjoint ID streams.
func NewSpanBus(sink SpanSink) *SpanBus {
	return NewSpanBusSeeded(uint64(time.Now().UnixNano())^uint64(os.Getpid())<<32, sink)
}

// NewSpanBusSeeded returns a bus with a fixed ID seed — byte-identical
// ID sequences for deterministic tests.
func NewSpanBusSeeded(seed uint64, sink SpanSink) *SpanBus {
	b := &SpanBus{seed: seed, sink: sink, now: func() int64 { return time.Now().UnixNano() }}
	b.pool.New = func() any { return new(Span) }
	return b
}

// SetClock replaces the wall clock (tests).
func (b *SpanBus) SetClock(now func() int64) {
	if b != nil {
		b.now = now
	}
}

// newID mints a non-zero ID: a splitmix64 hash of the seeded counter, so
// IDs look random, never repeat within a bus, and differ across buses.
func (b *SpanBus) newID() uint64 {
	z := b.seed + b.ctr.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Start begins a span. With an invalid parent context a fresh trace is
// minted; otherwise the span joins parent's trace as a child. Returns
// nil (and does nothing) on a nil bus.
func (b *SpanBus) Start(name string, kind SpanKind, parent SpanContext) *Span {
	if b == nil {
		return nil
	}
	s := b.pool.Get().(*Span)
	s.Name = name
	s.Kind = kind
	if parent.Valid() {
		s.Trace = parent.Trace
		s.Parent = parent.Span
	} else {
		s.Trace = b.newID()
		s.Parent = 0
	}
	s.ID = b.newID()
	s.Start = b.now()
	s.End = 0
	s.Value = 0
	s.Aux = 0
	s.Flag = false
	s.Note = ""
	return s
}

// Finish stamps the end time, hands the span to the sink, and returns it
// to the pool. Nil-safe on both the bus and the span.
func (b *SpanBus) Finish(s *Span) {
	if b == nil || s == nil {
		return
	}
	if s.End == 0 {
		s.End = b.now()
	}
	if b.sink != nil {
		b.sink.ObserveSpan(s)
	}
	b.pool.Put(s)
}

// SpanLog streams finished spans as one JSON object per line, in the
// same hand-rolled deterministic style as the event JSONL exporter.
// Safe for concurrent use (spans finish on many goroutines).
type SpanLog struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte
	err error
}

// NewSpanLog wraps w in a buffered span sink. Call Flush when done.
func NewSpanLog(w io.Writer) *SpanLog {
	return &SpanLog{w: bufio.NewWriter(w), buf: make([]byte, 0, 256)}
}

// ObserveSpan implements SpanSink.
func (l *SpanLog) ObserveSpan(s *Span) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	b := l.buf[:0]
	b = append(b, `{"trace":"`...)
	b = appendID(b, s.Trace)
	b = append(b, `","span":"`...)
	b = appendID(b, s.ID)
	b = append(b, '"')
	if s.Parent != 0 {
		b = append(b, `,"parent":"`...)
		b = appendID(b, s.Parent)
		b = append(b, '"')
	}
	b = append(b, `,"name":`...)
	b = strconv.AppendQuote(b, s.Name)
	b = append(b, `,"kind":"`...)
	b = append(b, s.Kind.String()...)
	b = append(b, `","start":`...)
	b = strconv.AppendInt(b, s.Start, 10)
	b = append(b, `,"end":`...)
	b = strconv.AppendInt(b, s.End, 10)
	if s.Value != 0 {
		b = append(b, `,"v":`...)
		b = strconv.AppendFloat(b, s.Value, 'g', -1, 64)
	}
	if s.Aux != 0 {
		b = append(b, `,"aux":`...)
		b = strconv.AppendFloat(b, s.Aux, 'g', -1, 64)
	}
	if s.Flag {
		b = append(b, `,"flag":true`...)
	}
	if s.Note != "" {
		b = append(b, `,"note":`...)
		b = strconv.AppendQuote(b, s.Note)
	}
	b = append(b, '}', '\n')
	l.buf = b
	if _, err := l.w.Write(b); err != nil {
		l.err = err
	}
}

// Flush drains the buffer and returns the first write error, if any.
func (l *SpanLog) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	return l.w.Flush()
}

// wireSpan is the decoded form of one SpanLog line.
type wireSpan struct {
	Trace  string  `json:"trace"`
	Span   string  `json:"span"`
	Parent string  `json:"parent"`
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Start  int64   `json:"start"`
	End    int64   `json:"end"`
	V      float64 `json:"v"`
	Aux    float64 `json:"aux"`
	Flag   bool    `json:"flag"`
	Note   string  `json:"note"`
}

// ReadSpans parses a SpanLog stream back into spans (for merging the
// per-process logs of a fleet into one trace). Blank lines are skipped.
func ReadSpans(r io.Reader) ([]Span, error) {
	var spans []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var w wireSpan
		if err := json.Unmarshal(raw, &w); err != nil {
			return nil, fmt.Errorf("obs: span log line %d: %w", line, err)
		}
		tr, err := strconv.ParseUint(w.Trace, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: span log line %d: bad trace id %q", line, w.Trace)
		}
		id, err := strconv.ParseUint(w.Span, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: span log line %d: bad span id %q", line, w.Span)
		}
		var parent uint64
		if w.Parent != "" {
			parent, err = strconv.ParseUint(w.Parent, 16, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: span log line %d: bad parent id %q", line, w.Parent)
			}
		}
		spans = append(spans, Span{
			Name: w.Name, Kind: spanKindFromString(w.Kind),
			Trace: tr, ID: id, Parent: parent,
			Start: w.Start, End: w.End,
			Value: w.V, Aux: w.Aux, Flag: w.Flag, Note: w.Note,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading span log: %w", err)
	}
	return spans, nil
}
