package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v += n
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a metric that can move in both directions.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the value by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Max keeps the maximum of the current value and v.
func (g *Gauge) Max(v float64) {
	if v > g.v {
		g.v = v
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram counts observations into fixed buckets with upper bounds; an
// implicit +Inf bucket catches the overflow. Sum and count make the mean
// exact even though the buckets are coarse.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds
	counts []int64   // len(bounds)+1; last is +Inf
	sum    float64
	n      int64
}

// NewHistogram builds a histogram over the given strictly increasing
// bucket upper bounds. Bounds must be finite, NaN-free, and strictly
// increasing — a NaN or +Inf bound would silently misbin every
// observation after it (NaN compares false against everything, and the
// +Inf bucket is already implicit), so each defect is rejected with a
// field-level error naming the offending index.
func NewHistogram(bounds []float64) (*Histogram, error) {
	for i, b := range bounds {
		switch {
		case math.IsNaN(b):
			return nil, fmt.Errorf("obs: histogram bounds[%d] is NaN", i)
		case math.IsInf(b, 0):
			return nil, fmt.Errorf("obs: histogram bounds[%d] is %v (the +Inf bucket is implicit)", i, b)
		case i > 0 && b == bounds[i-1]:
			return nil, fmt.Errorf("obs: histogram bounds[%d] duplicates bounds[%d] (%g)", i, i-1, b)
		case i > 0 && b < bounds[i-1]:
			return nil, fmt.Errorf("obs: histogram bounds[%d] (%g) below bounds[%d] (%g): bounds must be strictly increasing", i, b, i-1, bounds[i-1])
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}, nil
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns the upper bound of the bucket containing quantile q in
// [0,1] — an upper estimate quantized to the bucket grid. The overflow
// bucket reports +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Buckets returns the (upperBound, cumulativeCount) pairs, ending with the
// +Inf bucket.
func (h *Histogram) Buckets() ([]float64, []int64) {
	bounds := append(append([]float64(nil), h.bounds...), math.Inf(1))
	cum := make([]int64, len(h.counts))
	var run int64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return bounds, cum
}

// Registry is a named collection of counters, gauges, and histograms. It is
// not safe for concurrent use; one registry belongs to one simulation run
// (the simulator is single-threaded per run).
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) (*Histogram, error) {
	h, ok := r.hists[name]
	if !ok {
		var err error
		h, err = NewHistogram(bounds)
		if err != nil {
			return nil, err
		}
		r.hists[name] = h
	}
	return h, nil
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText renders every metric, sorted by name within each section, as a
// deterministic plain-text report.
func (r *Registry) WriteText(w io.Writer) error {
	for _, name := range sortedKeys(r.counters) {
		if _, err := fmt.Fprintf(w, "counter %-28s %d\n", name, r.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		if _, err := fmt.Fprintf(w, "gauge   %-28s %g\n", name, r.gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		if _, err := fmt.Fprintf(w, "histo   %-28s n=%d mean=%.6g p50<=%.4g p95<=%.4g p99<=%.4g\n",
			name, h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)); err != nil {
			return err
		}
	}
	return nil
}
