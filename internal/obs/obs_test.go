package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestEmitNilZeroAlloc pins the acceptance criterion: with no observer
// attached, emission is allocation-free — the Event is a stack value and
// Emit is a nil check.
func TestEmitNilZeroAlloc(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		Emit(nil, Event{Time: 1.5, Type: EventExec, Core: 3, Job: 42, Value: 2.5, Aux: 0.01, Extra: 0.3})
		Emit(nil, Event{Time: 1.6, Type: EventModeSwitch, Core: -1, Job: -1, Flag: true})
	})
	if allocs != 0 {
		t.Fatalf("nil-observer emission allocates: %v allocs/op, want 0", allocs)
	}
}

func BenchmarkEmitNil(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Emit(nil, Event{Time: float64(i), Type: EventExec, Core: 1, Job: i, Value: 2, Aux: 0.01})
	}
}

func BenchmarkEmitCollector(b *testing.B) {
	c := NewCollector()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Emit(c, Event{Time: float64(i), Type: EventExec, Core: 1, Job: i, Value: 2, Aux: 0.01, Extra: 0.02})
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil) != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of nothing must collapse to nil")
	}
	var n1, n2 int
	o1 := Func(func(Event) { n1++ })
	o2 := Func(func(Event) { n2++ })
	m := Multi(o1, nil, o2)
	m.Observe(Event{})
	m.Observe(Event{})
	if n1 != 2 || n2 != 2 {
		t.Fatalf("fan-out broken: %d, %d", n1, n2)
	}
	// A single observer comes back unwrapped.
	if _, ok := Multi(o1).(Func); !ok {
		t.Fatal("Multi(o) should return o itself")
	}
}

func TestEventTypeStrings(t *testing.T) {
	seen := map[string]bool{}
	for ty := EventType(0); ty < numEventTypes; ty++ {
		s := ty.String()
		if strings.HasPrefix(s, "event(") {
			t.Fatalf("EventType %d has no name", ty)
		}
		if seen[s] {
			t.Fatalf("duplicate event name %q", s)
		}
		seen[s] = true
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Add(2)
	r.Counter("a").Add(-5) // ignored
	if got := r.Counter("a").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	r.Gauge("g").Set(1.5)
	r.Gauge("g").Add(0.5)
	r.Gauge("g").Max(1.0) // no-op, below current
	if got := r.Gauge("g").Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	h, err := r.Histogram("h", []float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	if h.Count() != 5 {
		t.Fatalf("histogram count = %d, want 5", h.Count())
	}
	if got := h.Mean(); math.Abs(got-(0.5+1.5+1.7+3+100)/5) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %v, want bucket bound 2", q)
	}
	if q := h.Quantile(1); !math.IsInf(q, 1) {
		t.Fatalf("p100 should land in +Inf bucket, got %v", q)
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Fatal("non-increasing bounds accepted")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"counter a", "gauge   g", "histo   h"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	evs := []Event{
		{Time: 0.0, Type: EventJobArrive, Job: 1, Core: -1, Value: 500, Aux: 0.15},
		{Time: 0.1, Type: EventJobAssign, Job: 1, Core: 2, Value: 500, Aux: 0.15},
		{Time: 0.1, Type: EventJobCut, Job: 1, Core: 2, Value: 400, Aux: 500},
		{Time: 0.1, Type: EventExec, Job: 1, Core: 2, Value: 2.0, Aux: 0.2, Extra: 4},
		{Time: 0.3, Type: EventJobComplete, Job: 1, Core: 2, Value: 400, Aux: 0.3},
		{Time: 0.3, Type: EventModeSwitch, Core: -1, Job: -1, Flag: false},
		{Time: 0.4, Type: EventRunEnd, Core: -1, Job: -1, Value: 0.4},
	}
	for _, e := range evs {
		c.Observe(e)
	}
	reg := c.Registry
	for name, want := range map[string]int64{
		"jobs_arrived": 1, "jobs_assigned": 1, "cuts": 1,
		"jobs_completed": 1, "mode_switches": 1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := c.queueLatency.Mean(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("queue latency mean = %v, want 0.1", got)
	}
	var buf bytes.Buffer
	if err := c.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "core") || !strings.Contains(out, "busy_s") {
		t.Fatalf("report lacks per-core table:\n%s", out)
	}
	// core 2 was busy 0.2 s of a 0.4 s run → util 0.5
	if !strings.Contains(out, "0.5000") {
		t.Fatalf("per-core utilization wrong:\n%s", out)
	}
}

func TestJSONLValidAndDeterministic(t *testing.T) {
	emit := func() string {
		var buf bytes.Buffer
		j := NewJSONL(&buf)
		j.Observe(Event{Time: 0.125, Type: EventJobArrive, Job: 7, Core: -1, Value: 321.5, Aux: 0.15})
		j.Observe(Event{Time: 0.25, Type: EventModeSwitch, Job: -1, Core: -1, Flag: true})
		j.Observe(Event{Time: 0.5, Type: EventExec, Job: 7, Core: 3, Value: 2.25, Aux: 0.01, Extra: 0.253125})
		if err := j.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := emit(), emit()
	if a != b {
		t.Fatalf("JSONL not deterministic:\n%s\nvs\n%s", a, b)
	}
	for _, line := range strings.Split(strings.TrimSpace(a), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
		if _, ok := m["t"]; !ok {
			t.Fatalf("line lacks timestamp: %q", line)
		}
	}
	if !strings.Contains(a, `"type":"mode-switch"`) || !strings.Contains(a, `"flag":true`) {
		t.Fatalf("mode switch encoded wrong:\n%s", a)
	}
}

func TestTracerValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, 2)
	tr.Observe(Event{Time: 0.1, Type: EventCoreSpeed, Core: 1, Job: -1, Value: 2.5})
	tr.Observe(Event{Time: 0.1, Type: EventExec, Core: 1, Job: 9, Value: 2.5, Aux: 0.05, Extra: 1.5})
	tr.Observe(Event{Time: 0.2, Type: EventCoreFail, Core: 0, Job: -1})
	tr.Observe(Event{Time: 0.2, Type: EventJobRequeue, Core: 0, Job: 9})
	tr.Observe(Event{Time: 0.3, Type: EventBudgetCap, Core: -1, Job: -1, Value: 160})
	tr.Observe(Event{Time: 0.4, Type: EventModeSwitch, Core: -1, Job: -1, Flag: true})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 1 process_name + 2×(thread_name+sort) metadata + 6 events
	if len(doc.TraceEvents) != 5+6 {
		t.Fatalf("got %d trace events, want 11", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	if phases["M"] != 5 || phases["X"] != 1 || phases["C"] != 3 || phases["i"] != 2 {
		t.Fatalf("phase mix wrong: %v", phases)
	}
}
