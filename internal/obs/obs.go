// Package obs is the observability layer of the simulator: a low-overhead
// structured event bus, a metrics registry, and pluggable exporters.
//
// Every layer of the scheduling stack (sim kernel, machine, runner, and the
// policies themselves) emits typed Events through a nil-safe Observer hook.
// When no observer is attached — the default — emission is a nil check on a
// stack-allocated value and adds zero allocations to the scheduling hot
// path (obs_test.go verifies this with testing.AllocsPerRun).
//
// Three exporters consume the bus:
//
//   - JSONL (NewJSONL): one JSON object per event, for grep/jq analysis
//     and for replaying a run's decision history;
//   - Chrome trace-event format (NewTracer): loads in Perfetto or
//     chrome://tracing with one track per core showing job execution
//     spans, per-core speed counters, and fault markers;
//   - a plain-text run report (Collector.WriteReport): counters, gauges,
//     histograms, and a per-core utilization/energy table.
//
// Custom observers are one function away (Func); Multi fans one stream out
// to several observers.
package obs

import "fmt"

// EventType labels a structured event. The taxonomy mirrors the paper's
// mechanisms: job lifecycle (arrive → assign → cut → complete/expire, plus
// the fault-path requeue/drop), core execution (exec segments and DVFS
// speed changes), policy decisions (AES↔BQ mode and ES↔WF distribution
// switches, batch boundaries), and injected faults.
type EventType uint8

const (
	// EventJobArrive: a job entered the waiting queue.
	// Job=id, Value=demand (units), Aux=deadline (s).
	EventJobArrive EventType = iota
	// EventJobAssign: a policy bound a waiting job to a core.
	// Job=id, Core=target core, Value=remaining work, Aux=deadline (s).
	EventJobAssign
	// EventJobCut: a cutting pass reduced a job's target.
	// Job=id, Core=core, Value=new target, Aux=full demand.
	EventJobCut
	// EventJobComplete: a job reached its (possibly cut) target.
	// Job=id, Core=core, Value=processed units, Aux=response time (s).
	EventJobComplete
	// EventJobExpire: a job's deadline passed with work outstanding.
	// Job=id, Core=core (-1 when it expired in the waiting queue),
	// Value=processed units, Aux=full demand.
	EventJobExpire
	// EventJobRequeue: a core failure orphaned an assigned job and the
	// runner returned it to the waiting queue (the audited no-migration
	// exception). Job=id, Core=the failed core.
	EventJobRequeue
	// EventJobDrop: degradation admission control shed a waiting job.
	// Job=id, Value=processed units, Aux=full demand.
	EventJobDrop
	// EventExec: a core executed one plan segment.
	// Core=core, Job=id, Value=speed (GHz), Aux=duration (s),
	// Extra=dynamic energy consumed (J).
	EventExec
	// EventCoreSpeed: a core's executing speed changed (DVFS transition;
	// 0 = idle). Core=core, Value=new speed (GHz).
	EventCoreSpeed
	// EventModeSwitch: the compensation policy switched execution mode.
	// Flag=true entering AES, false entering BQ.
	EventModeSwitch
	// EventDistSwitch: the hybrid power distribution crossed the critical
	// load. Flag=true switching to Water-Filling (heavy), false to
	// Equal-Sharing (light). Value=observed arrival rate (req/s).
	EventDistSwitch
	// EventBatch: a scheduling trigger fired and the policy ran.
	// Value=waiting-queue length at the trigger, Aux=trigger ordinal
	// (sched.Trigger).
	EventBatch
	// EventCoreFail: an injected fault halted a core. Core=core.
	EventCoreFail
	// EventCoreRecover: a failed core returned to service. Core=core.
	EventCoreRecover
	// EventBudgetCap: facility power capping lowered the total budget.
	// Value=new cap (W).
	EventBudgetCap
	// EventBudgetRestore: the budget returned to nominal. Value=budget (W).
	EventBudgetRestore
	// EventSpeedStuck: a core's DVFS wedged. Core=core, Value=speed (GHz).
	EventSpeedStuck
	// EventSpeedFree: a stuck core's DVFS was released. Core=core.
	EventSpeedFree
	// EventKernel: the sim kernel delivered one raw event (low-level
	// debugging). Value=sim.Kind ordinal, Aux=pending-queue length after
	// the pop.
	EventKernel
	// EventRunEnd: the simulation finished. Value=simulated span (s).
	EventRunEnd
	// EventMachineDown: a fleet machine crashed, losing its in-flight work.
	// Core=machine index, Value=jobs orphaned by the crash, Aux=processing
	// units of progress wiped.
	EventMachineDown
	// EventMachineUp: a crashed machine returned to service (empty,
	// healthy). Core=machine index.
	EventMachineUp
	// EventMachinePartition: a machine's dispatcher link changed. Core=
	// machine index, Flag=true partitioned (unreachable from the
	// dispatcher), false healed.
	EventMachinePartition
	// EventMachineDegrade: a machine's effective capacity changed. Core=
	// machine index, Flag=true degraded with Value=the budget factor in
	// (0,1), false restored to nominal (Value=1).
	EventMachineDegrade
	// EventDispatch: the global dispatcher routed a job to a machine.
	// Job=id, Core=machine index, Value=the policy's score for the chosen
	// machine (policy-specific; queued work for load-based policies),
	// Aux=number of machines eligible at the decision.
	EventDispatch
	// EventRedispatch: a job lost or stranded by a machine fault was routed
	// again. Job=id, Core=destination machine index, Value=the job's
	// re-dispatch count so far, Aux=remaining work being moved.
	EventRedispatch

	numEventTypes // sentinel; keep last
)

// String implements fmt.Stringer; the names are the stable wire format of
// the JSONL exporter.
func (t EventType) String() string {
	switch t {
	case EventJobArrive:
		return "job-arrive"
	case EventJobAssign:
		return "job-assign"
	case EventJobCut:
		return "job-cut"
	case EventJobComplete:
		return "job-complete"
	case EventJobExpire:
		return "job-expire"
	case EventJobRequeue:
		return "job-requeue"
	case EventJobDrop:
		return "job-drop"
	case EventExec:
		return "exec"
	case EventCoreSpeed:
		return "core-speed"
	case EventModeSwitch:
		return "mode-switch"
	case EventDistSwitch:
		return "dist-switch"
	case EventBatch:
		return "batch"
	case EventCoreFail:
		return "core-fail"
	case EventCoreRecover:
		return "core-recover"
	case EventBudgetCap:
		return "budget-cap"
	case EventBudgetRestore:
		return "budget-restore"
	case EventSpeedStuck:
		return "speed-stuck"
	case EventSpeedFree:
		return "speed-free"
	case EventKernel:
		return "kernel"
	case EventRunEnd:
		return "run-end"
	case EventMachineDown:
		return "machine-down"
	case EventMachineUp:
		return "machine-up"
	case EventMachinePartition:
		return "machine-partition"
	case EventMachineDegrade:
		return "machine-degrade"
	case EventDispatch:
		return "dispatch"
	case EventRedispatch:
		return "redispatch"
	default:
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// Event is one structured observation. It is a flat value type so that
// emitting one costs no heap allocation; the meaning of Value, Aux, Extra,
// and Flag is fixed per EventType (documented on the constants).
type Event struct {
	// Time is the simulation time in seconds.
	Time float64
	// Type selects the event semantics.
	Type EventType
	// Core is the core index, or -1 when the event is not core-scoped.
	Core int
	// Job is the job ID, or -1 when the event is not job-scoped.
	Job int
	// Value, Aux, Extra are type-specific numeric payloads.
	Value float64
	Aux   float64
	Extra float64
	// Flag is a type-specific boolean payload (AES mode, WF heavy).
	Flag bool
}

// Observer consumes the event stream. Implementations must be cheap: they
// run inline on the scheduling path. Observe is called in strictly
// non-decreasing Time order within one run.
type Observer interface {
	Observe(e Event)
}

// Emit is the nil-safe emission helper every instrumented layer uses:
// Emit(nil, ev) is a no-op costing only the branch. Callers must pass a
// true nil interface (not a typed nil pointer) to get the fast path.
func Emit(o Observer, e Event) {
	if o != nil {
		o.Observe(e)
	}
}

// Func adapts a plain function to an Observer.
type Func func(e Event)

// Observe implements Observer.
func (f Func) Observe(e Event) { f(e) }

// multi fans events out to several observers in order.
type multi []Observer

// Observe implements Observer.
func (m multi) Observe(e Event) {
	for _, o := range m {
		o.Observe(e)
	}
}

// Multi combines observers into one. Nil entries are dropped; Multi()
// and Multi(nil) return nil so the zero-cost fast path is preserved, and
// Multi(o) returns o unwrapped.
func Multi(os ...Observer) Observer {
	kept := make(multi, 0, len(os))
	for _, o := range os {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	default:
		return kept
	}
}
