package obs_test

import (
	"fmt"

	"goodenough/internal/obs"
)

// ExampleFunc shows the smallest possible custom observer: a function that
// counts AES↔BQ mode switches and remembers the last mode. Attach any
// Observer to a run with sched.Runner.SetObserver (or combine several with
// obs.Multi); here the events are fed directly for a deterministic example.
func ExampleFunc() {
	var switches int
	var lastAES bool
	counter := obs.Func(func(e obs.Event) {
		if e.Type == obs.EventModeSwitch {
			switches++
			lastAES = e.Flag
		}
	})

	// What a runner would emit as the compensation policy toggles modes.
	stream := []obs.Event{
		{Time: 0.5, Type: obs.EventModeSwitch, Core: -1, Job: -1, Flag: false}, // quality dipped: BQ
		{Time: 2.0, Type: obs.EventModeSwitch, Core: -1, Job: -1, Flag: true},  // recovered: AES
		{Time: 3.5, Type: obs.EventJobArrive, Core: -1, Job: 17, Value: 400},   // ignored by this observer
		{Time: 4.0, Type: obs.EventModeSwitch, Core: -1, Job: -1, Flag: false},
	}
	for _, e := range stream {
		obs.Emit(counter, e)
	}

	fmt.Printf("mode switches: %d, in AES: %v\n", switches, lastAES)
	// Output:
	// mode switches: 3, in AES: false
}
