package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// Decision records. Every consequential scheduling choice — admitting or
// shedding a job, switching degrade mode, replanning DVFS after a budget
// change, (re)dispatching across a fleet — emits one flat Decision
// carrying the inputs the policy saw (load, capacity, marginal quality
// f'(c), budget), the action taken, and how many alternatives were
// weighed. The stream is the substrate for counterfactual replay: it
// answers "why did the scheduler do that?" without re-running the sim.
//
// Decisions ride a separate sink from the event bus so the byte-pinned
// event goldens stay untouched and the hot path pays nothing when no
// sink is installed (EmitDecision is nil-safe, like Emit).

// DecisionKind classifies the choice being made.
type DecisionKind uint8

const (
	DecisionAdmit      DecisionKind = iota // job accepted for service
	DecisionShed                           // job dropped by marginal-quality load shedding
	DecisionModeSwitch                     // AES <-> BQ degrade-mode transition
	DecisionReplan                         // DVFS replan after a power-budget change
	DecisionDispatch                       // fleet dispatcher routed a job to a machine
	DecisionRedispatch                     // displaced job re-routed after a machine fault
	DecisionDrop                           // job dropped at the re-dispatch limit
	DecisionCut                            // live governor cut an in-flight request's demand
	DecisionCompensate                     // live governor skipped cutting to rebuild quality (BQ)
)

const numDecisionKinds = int(DecisionCompensate) + 1

// String returns the stable wire name of the kind (the JSONL exporter
// depends on these not changing).
func (k DecisionKind) String() string {
	switch k {
	case DecisionAdmit:
		return "admit"
	case DecisionShed:
		return "shed"
	case DecisionModeSwitch:
		return "mode-switch"
	case DecisionReplan:
		return "replan"
	case DecisionDispatch:
		return "dispatch"
	case DecisionRedispatch:
		return "redispatch"
	case DecisionDrop:
		return "drop"
	case DecisionCut:
		return "cut"
	case DecisionCompensate:
		return "compensate"
	default:
		return "unknown"
	}
}

// Decision is one structured scheduling choice. Flat values only, so
// emission never allocates. Fields that do not apply stay at their zero
// (or -1 for IDs) and are omitted from the JSONL encoding.
type Decision struct {
	Time     float64      // simulation seconds
	Kind     DecisionKind //
	Machine  int          // fleet machine index, -1 when single-machine
	Job      int          // job ID, -1 when the decision is not per-job
	Load     float64      // demanded service rate seen by the policy
	Capacity float64      // serviceable rate under the current budget
	Marginal float64      // marginal quality f'(c) of the job acted on
	Budget   float64      // power budget in force (W)
	Score    float64      // policy score (dispatch) or mode value
	Alts     int          // alternatives considered (candidates, eligible machines)
	Action   string       // static-string action ("shed", "aes", "bq", ...)
}

// DecisionSink receives decisions. Implementations must not retain
// references into the Decision (it is a value; copies are fine).
type DecisionSink interface {
	ObserveDecision(d Decision)
}

// EmitDecision delivers d to s when s is non-nil. The nil fast path is
// what keeps instrumented hot paths allocation-free with recording off.
func EmitDecision(s DecisionSink, d Decision) {
	if s != nil {
		s.ObserveDecision(d)
	}
}

// multiDecision fans one decision out to several sinks.
type multiDecision struct{ sinks []DecisionSink }

func (m multiDecision) ObserveDecision(d Decision) {
	for _, s := range m.sinks {
		s.ObserveDecision(d)
	}
}

// DecisionSinks combines sinks, dropping nils. Returns nil for none and
// the sink itself for exactly one, so the nil-check fast path survives.
func DecisionSinks(sinks ...DecisionSink) DecisionSink {
	kept := make([]DecisionSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return multiDecision{sinks: kept}
}

// DecisionLog streams each decision as one JSON object per line in the
// same deterministic hand-rolled style as the event JSONL exporter, so a
// seeded run produces a byte-identical decision log every time (the
// golden-file test relies on this).
type DecisionLog struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewDecisionLog wraps w in a buffered decision sink. Call Flush when
// the run completes.
func NewDecisionLog(w io.Writer) *DecisionLog {
	return &DecisionLog{w: bufio.NewWriter(w), buf: make([]byte, 0, 256)}
}

// ObserveDecision implements DecisionSink.
func (l *DecisionLog) ObserveDecision(d Decision) {
	if l.err != nil {
		return
	}
	b := l.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, d.Time, 'g', -1, 64)
	b = append(b, `,"decision":"`...)
	b = append(b, d.Kind.String()...)
	b = append(b, '"')
	if d.Machine >= 0 {
		b = append(b, `,"machine":`...)
		b = strconv.AppendInt(b, int64(d.Machine), 10)
	}
	if d.Job >= 0 {
		b = append(b, `,"job":`...)
		b = strconv.AppendInt(b, int64(d.Job), 10)
	}
	if d.Load != 0 {
		b = append(b, `,"load":`...)
		b = strconv.AppendFloat(b, d.Load, 'g', -1, 64)
	}
	if d.Capacity != 0 {
		b = append(b, `,"cap":`...)
		b = strconv.AppendFloat(b, d.Capacity, 'g', -1, 64)
	}
	if d.Marginal != 0 {
		b = append(b, `,"marginal":`...)
		b = strconv.AppendFloat(b, d.Marginal, 'g', -1, 64)
	}
	if d.Budget != 0 {
		b = append(b, `,"budget":`...)
		b = strconv.AppendFloat(b, d.Budget, 'g', -1, 64)
	}
	if d.Score != 0 {
		b = append(b, `,"score":`...)
		b = strconv.AppendFloat(b, d.Score, 'g', -1, 64)
	}
	if d.Alts != 0 {
		b = append(b, `,"alts":`...)
		b = strconv.AppendInt(b, int64(d.Alts), 10)
	}
	if d.Action != "" {
		b = append(b, `,"action":"`...)
		b = append(b, d.Action...)
		b = append(b, '"')
	}
	b = append(b, '}', '\n')
	l.buf = b
	if _, err := l.w.Write(b); err != nil {
		l.err = err
	}
}

// Flush drains the buffer and returns the first write error, if any.
func (l *DecisionLog) Flush() error {
	if l.err != nil {
		return l.err
	}
	return l.w.Flush()
}

// SyncDecision serializes concurrent producers onto one sink. The
// simulator is single-threaded and never needs it; the live governor's
// admission path and control loop emit from different goroutines, so
// geserve wraps its decision log in one of these.
type SyncDecision struct {
	mu   sync.Mutex
	sink DecisionSink
}

// NewSyncDecision wraps a non-nil sink. Callers with no sink should keep
// passing nil DecisionSinks around instead of wrapping one.
func NewSyncDecision(sink DecisionSink) *SyncDecision {
	return &SyncDecision{sink: sink}
}

// ObserveDecision implements DecisionSink.
func (s *SyncDecision) ObserveDecision(d Decision) {
	s.mu.Lock()
	s.sink.ObserveDecision(d)
	s.mu.Unlock()
}
