package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestSamplerSampleAndWriteJSON(t *testing.T) {
	s := NewSampler(time.Second, 4)
	now := int64(0)
	s.SetClock(func() int64 { now += 1000; return now })
	v := 0.0
	s.Track("load", func() float64 { v++; return v })
	s.Track("flat", func() float64 { return 7 })

	for i := 0; i < 6; i++ { // overflows the 4-slot ring
		s.Sample()
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		IntervalMS int64 `json:"interval_ms"`
		Series     map[string]struct {
			T []int64   `json:"t"`
			V []float64 `json:"v"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.Bytes())
	}
	if doc.IntervalMS != 1000 {
		t.Errorf("interval_ms = %d", doc.IntervalMS)
	}
	load, ok := doc.Series["load"]
	if !ok {
		t.Fatalf("series missing: %v", doc.Series)
	}
	// Ring keeps the last 4 of 6 samples, oldest first.
	if len(load.V) != 4 || load.V[0] != 3 || load.V[3] != 6 {
		t.Errorf("load samples = %v, want [3 4 5 6]", load.V)
	}
	if load.T[0] >= load.T[3] {
		t.Errorf("timestamps not increasing: %v", load.T)
	}
	if flat := doc.Series["flat"]; len(flat.V) != 4 || flat.V[0] != 7 {
		t.Errorf("flat samples = %v", flat.V)
	}
}

func TestSamplerRetrackKeepsHistory(t *testing.T) {
	s := NewSampler(time.Second, 8)
	s.Track("x", func() float64 { return 1 })
	s.Sample()
	s.Track("x", func() float64 { return 2 }) // replace callback
	s.Sample()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Series map[string]struct {
			V []float64 `json:"v"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if got := doc.Series["x"].V; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("retrack lost history: %v", got)
	}
}

func TestSamplerNilAndLifecycle(t *testing.T) {
	var nilS *Sampler
	nilS.Track("x", func() float64 { return 0 })
	nilS.Sample()
	nilS.Start()
	nilS.Stop()
	var buf bytes.Buffer
	if err := nilS.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil sampler wrote invalid JSON: %s", buf.Bytes())
	}

	s := NewSampler(time.Millisecond, 4)
	s.Track("x", func() float64 { return 1 })
	s.Start()
	s.Start() // idempotent
	time.Sleep(5 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent
	// Start again after stop works too.
	s.Start()
	s.Stop()
}

// BenchmarkSamplerSample bounds the per-tick cost with a realistic series
// count — this runs once per second off the hot path, but must stay cheap
// enough to never matter.
func BenchmarkSamplerSample(b *testing.B) {
	s := NewSampler(time.Second, 300)
	for _, name := range []string{"a", "b", "c", "d", "e", "f"} {
		s.Track(name, func() float64 { return 1 })
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Sample()
	}
}
