package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(42)
	r.Gauge("inflight").Set(3.5)
	h, err := r.Histogram("latency_seconds", []float64{0.1, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(0.3)
	h.Observe(2) // overflow bucket

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		"# HELP requests_total requests_total",
		"requests_total 42",
		"# TYPE inflight gauge",
		"inflight 3.5",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="0.5"} 3`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		"latency_seconds_sum 2.65",
		"latency_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line is "name value" or "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestPromNameSanitized(t *testing.T) {
	r := NewRegistry()
	r.Counter("replica-0.errs").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "replica_0_errs 1") {
		t.Errorf("name not sanitized:\n%s", buf.String())
	}
	// The HELP line keeps the original spelling for traceability.
	if !strings.Contains(buf.String(), "# HELP replica_0_errs replica-0.errs") {
		t.Errorf("HELP lost the original name:\n%s", buf.String())
	}
}

func TestPromFloat(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.25:         "0.25",
	}
	for v, want := range cases {
		if got := promFloat(v); got != want {
			t.Errorf("promFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

// TestHistogramBoundsValidation pins the field-level errors NewHistogram
// reports for defective bucket bounds.
func TestHistogramBoundsValidation(t *testing.T) {
	cases := []struct {
		name    string
		bounds  []float64
		wantErr string // substring; "" = must succeed
	}{
		{"valid", []float64{0.1, 0.5, 1}, ""},
		{"empty", nil, ""},
		{"single", []float64{5}, ""},
		{"negative ascending", []float64{-3, -1, 0, 2}, ""},
		{"nan first", []float64{math.NaN(), 1}, "bounds[0] is NaN"},
		{"nan middle", []float64{1, math.NaN(), 3}, "bounds[1] is NaN"},
		{"plus inf", []float64{1, math.Inf(1)}, "bounds[1] is +Inf"},
		{"minus inf", []float64{math.Inf(-1), 1}, "bounds[0] is -Inf"},
		{"duplicate", []float64{1, 2, 2, 3}, "bounds[2] duplicates bounds[1] (2)"},
		{"descending", []float64{1, 3, 2}, "bounds[2] (2) below bounds[1] (3)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := NewHistogram(tc.bounds)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if h == nil {
					t.Fatal("no histogram returned")
				}
				return
			}
			if err == nil {
				t.Fatalf("bounds %v accepted, want error containing %q", tc.bounds, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}

	// The registry and the sync wrapper surface the same errors.
	r := NewRegistry()
	if _, err := r.Histogram("bad", []float64{2, 1}); err == nil {
		t.Error("Registry.Histogram accepted unsorted bounds")
	}
	sr := NewSyncRegistry()
	if err := sr.NewHistogram("bad", []float64{math.NaN()}); err == nil {
		t.Error("SyncRegistry.NewHistogram accepted NaN bound")
	}
}
