package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// testClock returns a deterministic nanosecond clock advancing by step per
// call.
func testClock(start, step int64) func() int64 {
	t := start - step
	return func() int64 {
		t += step
		return t
	}
}

func TestSpanContextHeaderRoundTrip(t *testing.T) {
	c := SpanContext{Trace: 0xdeadbeef01020304, Span: 0x1122334455667788}
	h := http.Header{}
	c.Inject(h)
	if got := h.Get(HeaderTraceID); got != "deadbeef01020304" {
		t.Errorf("trace header = %q", got)
	}
	if got := ParseSpanContext(h); got != c {
		t.Errorf("round trip: got %+v, want %+v", got, c)
	}

	// Invalid context injects nothing.
	h2 := http.Header{}
	SpanContext{}.Inject(h2)
	if len(h2) != 0 {
		t.Errorf("zero context injected headers: %v", h2)
	}
	// Absent and malformed headers parse to the zero context.
	if got := ParseSpanContext(http.Header{}); got.Valid() {
		t.Errorf("empty headers parsed to %+v", got)
	}
	h3 := http.Header{}
	h3.Set(HeaderTraceID, "not-hex")
	if got := ParseSpanContext(h3); got.Valid() {
		t.Errorf("malformed trace id parsed to %+v", got)
	}
	// A bad span ID still joins the trace (children root under the trace).
	h4 := http.Header{}
	h4.Set(HeaderTraceID, "00000000000000aa")
	h4.Set(HeaderSpanID, "xyz")
	if got := ParseSpanContext(h4); got.Trace != 0xaa || got.Span != 0 {
		t.Errorf("partial headers parsed to %+v", got)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var bus *SpanBus
	s := bus.Start("x", SpanServer, SpanContext{})
	if s != nil {
		t.Fatal("nil bus returned a span")
	}
	// All of these must be no-ops, not panics.
	s.SetValue(1)
	s.SetAux(2)
	s.SetFlag(true)
	s.SetNote("n")
	if s.Context().Valid() {
		t.Error("nil span context is valid")
	}
	bus.Finish(s)
	bus.SetClock(func() int64 { return 0 })
}

func TestSpanParenting(t *testing.T) {
	bus := NewSpanBusSeeded(1, nil)
	root := bus.Start("root", SpanClient, SpanContext{})
	if root.Trace == 0 || root.Parent != 0 {
		t.Fatalf("root span: %+v", *root)
	}
	child := bus.Start("child", SpanServer, root.Context())
	if child.Trace != root.Trace {
		t.Errorf("child trace %x != root trace %x", child.Trace, root.Trace)
	}
	if child.Parent != root.ID {
		t.Errorf("child parent %x != root id %x", child.Parent, root.ID)
	}
	if child.ID == root.ID {
		t.Error("child reused root's span ID")
	}
	bus.Finish(child)
	bus.Finish(root)
}

func TestSpanLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	log := NewSpanLog(&buf)
	bus := NewSpanBusSeeded(42, log)
	bus.SetClock(testClock(1000, 500))

	root := bus.Start("client./v1/run", SpanClient, SpanContext{})
	child := bus.Start("attempt.replica0", SpanAttempt, root.Context())
	child.SetValue(0.25)
	child.SetAux(3)
	child.SetFlag(true)
	child.SetNote("won")
	rootCtx, childID := root.Context(), child.ID
	bus.Finish(child)
	bus.Finish(root)
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}

	// Every line must be standalone valid JSON.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
	}

	spans, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("read %d spans, want 2", len(spans))
	}
	// Finish order: child first.
	got := spans[0]
	if got.Name != "attempt.replica0" || got.Kind != SpanAttempt {
		t.Errorf("child identity: %+v", got)
	}
	if got.Trace != rootCtx.Trace || got.Parent != rootCtx.Span || got.ID != childID {
		t.Errorf("child ids: %+v (root ctx %+v)", got, rootCtx)
	}
	if got.Value != 0.25 || got.Aux != 3 || !got.Flag || got.Note != "won" {
		t.Errorf("child annotations lost: %+v", got)
	}
	if got.Start != 1500 || got.End != 2000 {
		t.Errorf("child times: start=%d end=%d", got.Start, got.End)
	}
	if spans[1].Parent != 0 || spans[1].Trace != rootCtx.Trace {
		t.Errorf("root ids: %+v", spans[1])
	}
}

func TestSpanLogDeterministic(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		log := NewSpanLog(&buf)
		bus := NewSpanBusSeeded(7, log)
		bus.SetClock(testClock(0, 250))
		root := bus.Start("r", SpanGateway, SpanContext{})
		for i := 0; i < 3; i++ {
			c := bus.Start("a", SpanAttempt, root.Context())
			c.SetFlag(i > 0)
			bus.Finish(c)
		}
		bus.Finish(root)
		if err := log.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Error("span log not byte-deterministic for a seeded bus")
	}
}

func TestReadSpansRejectsGarbage(t *testing.T) {
	if _, err := ReadSpans(strings.NewReader("{not json}\n")); err == nil {
		t.Error("garbage line accepted")
	}
	if _, err := ReadSpans(strings.NewReader(`{"trace":"zz","span":"01"}` + "\n")); err == nil {
		t.Error("bad trace id accepted")
	}
	spans, err := ReadSpans(strings.NewReader("\n\n"))
	if err != nil || len(spans) != 0 {
		t.Errorf("blank input: %v, %d spans", err, len(spans))
	}
}

func TestWriteSpanTraceConnectedTree(t *testing.T) {
	var logBuf bytes.Buffer
	log := NewSpanLog(&logBuf)
	bus := NewSpanBusSeeded(3, log)
	bus.SetClock(testClock(10_000, 1_000))

	client := bus.Start("client./v1/run", SpanClient, SpanContext{})
	gw := bus.Start("/v1/run", SpanGateway, client.Context())
	a0 := bus.Start("attempt.replica0", SpanAttempt, gw.Context())
	a1 := bus.Start("attempt.replica1", SpanAttempt, gw.Context())
	a1.SetFlag(true)
	a1.SetNote("won")
	srv := bus.Start("/v1/run", SpanServer, a1.Context())
	sched := bus.Start("sched.run", SpanSched, srv.Context())
	for _, s := range []*Span{sched, srv, a1, a0, gw, client} {
		bus.Finish(s)
	}
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(&logBuf)
	if err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := WriteSpanTrace(&out, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("span trace is not valid JSON: %v\n%s", err, out.Bytes())
	}
	var slices, flowStarts, flowEnds int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			slices++
		case "s":
			flowStarts++
		case "f":
			flowEnds++
		}
	}
	if slices != 6 {
		t.Errorf("%d slices, want 6", slices)
	}
	// Five child spans → five flow arrows binding the tree together.
	if flowStarts != 5 || flowEnds != 5 {
		t.Errorf("flow events: %d starts, %d ends, want 5 each", flowStarts, flowEnds)
	}

	// Determinism: same spans, same bytes.
	var out2 bytes.Buffer
	if err := WriteSpanTrace(&out2, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Error("WriteSpanTrace not deterministic")
	}
}

// countSink counts spans delivered to it.
type countSink struct{ n int }

func (c *countSink) ObserveSpan(*Span) { c.n++ }

func TestSpanBusPoolDelivers(t *testing.T) {
	sink := &countSink{}
	bus := NewSpanBusSeeded(1, sink)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		s := bus.Start("s", SpanRun, SpanContext{})
		if seen[s.ID] {
			t.Fatalf("span ID %x repeated", s.ID)
		}
		seen[s.ID] = true
		bus.Finish(s)
	}
	if sink.n != 100 {
		t.Errorf("sink saw %d spans, want 100", sink.n)
	}
}

// BenchmarkSpanDisabled is the contract the scheduler hot path relies on:
// with tracing off (nil bus) a start/annotate/finish cycle is free.
func BenchmarkSpanDisabled(b *testing.B) {
	var bus *SpanBus
	parent := SpanContext{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := bus.Start("sched.invoke", SpanSched, parent)
		s.SetValue(1)
		bus.Finish(s)
	}
}

// BenchmarkSpanPooled bounds the live-tracing cost: spans recycle through
// the pool, so steady state allocates nothing.
func BenchmarkSpanPooled(b *testing.B) {
	bus := NewSpanBusSeeded(1, nil)
	parent := SpanContext{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := bus.Start("sched.invoke", SpanSched, parent)
		s.SetValue(1)
		bus.Finish(s)
	}
}
