package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Live telemetry. A Sampler polls registered callbacks on a fixed tick
// and keeps the last N samples of each series in a fixed-capacity ring,
// rendered as JSON behind the /timeseriez endpoints. The request hot
// path is never touched: callbacks read values that the serving layer
// already maintains (gauges, counters, queue lengths), and the only lock
// is taken once per tick and once per scrape.

// ring is a fixed-capacity circular buffer of (time, value) samples.
type ring struct {
	at   []int64 // unix milliseconds
	vals []float64
	head int // next write position
	n    int // samples stored, <= cap
}

func newRing(capacity int) *ring {
	return &ring{at: make([]int64, capacity), vals: make([]float64, capacity)}
}

func (r *ring) push(at int64, v float64) {
	r.at[r.head] = at
	r.vals[r.head] = v
	r.head = (r.head + 1) % len(r.vals)
	if r.n < len(r.vals) {
		r.n++
	}
}

// each calls fn over the stored samples, oldest first.
func (r *ring) each(fn func(at int64, v float64)) {
	start := r.head - r.n
	if start < 0 {
		start += len(r.vals)
	}
	for i := 0; i < r.n; i++ {
		j := (start + i) % len(r.vals)
		fn(r.at[j], r.vals[j])
	}
}

// Sampler polls named float64 callbacks at a fixed interval into
// per-series rings. Safe for concurrent use.
type Sampler struct {
	mu       sync.Mutex
	names    []string // insertion order; WriteJSON sorts a copy
	series   map[string]*seriesEntry
	capacity int
	interval time.Duration
	now      func() int64 // unix milliseconds
	stop     chan struct{}
	done     chan struct{}
}

type seriesEntry struct {
	fn func() float64
	r  *ring
}

// NewSampler returns a sampler that, once started, polls every interval
// and retains the last capacity samples per series.
func NewSampler(interval time.Duration, capacity int) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	if capacity <= 0 {
		capacity = 300
	}
	return &Sampler{
		series:   map[string]*seriesEntry{},
		capacity: capacity,
		interval: interval,
		now:      func() int64 { return time.Now().UnixMilli() },
	}
}

// SetClock replaces the millisecond wall clock (tests).
func (s *Sampler) SetClock(now func() int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// Track registers a series. The callback runs on the sampler goroutine
// once per tick; it must be cheap and concurrency-safe. Re-tracking an
// existing name replaces its callback and keeps its history. Nil-safe.
func (s *Sampler) Track(name string, fn func() float64) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.series[name]; ok {
		e.fn = fn
		return
	}
	s.series[name] = &seriesEntry{fn: fn, r: newRing(s.capacity)}
	s.names = append(s.names, name)
}

// Sample takes one sample of every series immediately (also the tick
// body). Nil-safe.
func (s *Sampler) Sample() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	at := s.now()
	for _, name := range s.names {
		e := s.series[name]
		e.r.push(at, e.fn())
	}
}

// Start launches the tick goroutine. Calling Start twice, or on a nil
// sampler, is a no-op.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()

	go func() {
		defer close(done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Sample()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the tick goroutine and waits for it to exit. Nil-safe and
// idempotent.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// WriteJSON renders every series — names sorted, samples oldest first —
// as {"interval_ms":…,"series":{name:{"t":[…],"v":[…]}}}.
func (s *Sampler) WriteJSON(w io.Writer) error {
	if s == nil {
		_, err := io.WriteString(w, `{"interval_ms":0,"series":{}}`+"\n")
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"interval_ms":`)
	bw.WriteString(strconv.FormatInt(s.interval.Milliseconds(), 10))
	bw.WriteString(`,"series":{`)
	names := append([]string(nil), s.names...)
	sort.Strings(names)
	for i, name := range names {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(strconv.Quote(name))
		bw.WriteString(`:{"t":[`)
		first := true
		s.series[name].r.each(func(at int64, _ float64) {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteString(strconv.FormatInt(at, 10))
		})
		bw.WriteString(`],"v":[`)
		first = true
		var buf [32]byte
		s.series[name].r.each(func(_ int64, v float64) {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.Write(strconv.AppendFloat(buf[:0], v, 'g', -1, 64))
		})
		bw.WriteString(`]}`)
	}
	bw.WriteString("}}\n")
	return bw.Flush()
}
