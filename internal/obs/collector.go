package obs

import (
	"fmt"
	"io"
	"sort"
)

// Collector is an Observer that folds the event stream into a metrics
// Registry plus per-core utilization/energy accounting, and renders it all
// as a plain-text run report. It is the default sink behind the -report
// flag of the commands.
type Collector struct {
	// Registry holds the folded counters/gauges/histograms; callers may
	// read individual metrics from it after (or during) a run.
	Registry *Registry

	queueLatency *Histogram // arrival → assignment (s)
	response     *Histogram // release → completion (s)
	cutRatio     *Histogram // target/demand at each cut

	arrivals map[int]float64 // job ID → arrival time, until assigned

	// per-core accumulation, grown on demand
	busy    []float64 // seconds executing
	energy  []float64 // joules
	work    []float64 // processing units executed (speed·dt·UnitsPerGHz is the machine's business; we store GHz·s)
	endTime float64
}

// NewCollector returns a collector with the standard metric set.
func NewCollector() *Collector {
	reg := NewRegistry()
	ql, _ := reg.Histogram("queue_latency_s",
		[]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.15, 0.25, 0.5, 1})
	rs, _ := reg.Histogram("response_s",
		[]float64{0.01, 0.025, 0.05, 0.1, 0.15, 0.25, 0.5, 1, 2})
	cr, _ := reg.Histogram("cut_ratio",
		[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1})
	return &Collector{
		Registry:     reg,
		queueLatency: ql,
		response:     rs,
		cutRatio:     cr,
		arrivals:     map[int]float64{},
	}
}

func (c *Collector) core(i int) int {
	for len(c.busy) <= i {
		c.busy = append(c.busy, 0)
		c.energy = append(c.energy, 0)
		c.work = append(c.work, 0)
	}
	return i
}

// Observe implements Observer.
func (c *Collector) Observe(e Event) {
	if e.Time > c.endTime {
		c.endTime = e.Time
	}
	reg := c.Registry
	switch e.Type {
	case EventJobArrive:
		reg.Counter("jobs_arrived").Inc()
		c.arrivals[e.Job] = e.Time
	case EventJobAssign:
		reg.Counter("jobs_assigned").Inc()
		if t0, ok := c.arrivals[e.Job]; ok {
			c.queueLatency.Observe(e.Time - t0)
			delete(c.arrivals, e.Job)
		}
	case EventJobCut:
		reg.Counter("cuts").Inc()
		if e.Aux > 0 {
			c.cutRatio.Observe(e.Value / e.Aux)
		}
	case EventJobComplete:
		reg.Counter("jobs_completed").Inc()
		c.response.Observe(e.Aux)
		delete(c.arrivals, e.Job)
	case EventJobExpire:
		reg.Counter("jobs_expired").Inc()
		if e.Core < 0 {
			reg.Counter("jobs_expired_in_queue").Inc()
		}
		delete(c.arrivals, e.Job)
	case EventJobRequeue:
		reg.Counter("jobs_requeued").Inc()
	case EventJobDrop:
		reg.Counter("jobs_dropped").Inc()
		delete(c.arrivals, e.Job)
	case EventExec:
		if i := c.core(e.Core); i >= 0 {
			c.busy[i] += e.Aux
			c.energy[i] += e.Extra
			c.work[i] += e.Value * e.Aux
		}
	case EventCoreSpeed:
		reg.Counter("dvfs_transitions").Inc()
	case EventModeSwitch:
		reg.Counter("mode_switches").Inc()
	case EventDistSwitch:
		reg.Counter("dist_switches").Inc()
	case EventBatch:
		reg.Counter("batches").Inc()
		reg.Gauge("max_waiting").Max(e.Value)
	case EventCoreFail:
		reg.Counter("core_failures").Inc()
	case EventCoreRecover:
		reg.Counter("core_recoveries").Inc()
	case EventBudgetCap:
		reg.Counter("budget_caps").Inc()
	case EventSpeedStuck:
		reg.Counter("dvfs_stuck").Inc()
	case EventKernel:
		reg.Counter("sim_events").Inc()
	case EventRunEnd:
		reg.Gauge("sim_time_s").Set(e.Value)
	case EventMachineDown:
		reg.Counter("machine_crashes").Inc()
	case EventMachineUp:
		reg.Counter("machine_recoveries").Inc()
	case EventMachinePartition:
		if e.Flag {
			reg.Counter("machine_partitions").Inc()
		} else {
			reg.Counter("machine_heals").Inc()
		}
	case EventMachineDegrade:
		if e.Flag {
			reg.Counter("machine_degrades").Inc()
		}
	case EventDispatch:
		reg.Counter("dispatches").Inc()
	case EventRedispatch:
		reg.Counter("redispatches").Inc()
	}
}

// WriteReport renders the folded metrics and the per-core table. The output
// is deterministic for a deterministic event stream.
func (c *Collector) WriteReport(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "--- run report (internal/obs) ---"); err != nil {
		return err
	}
	if err := c.Registry.WriteText(w); err != nil {
		return err
	}
	if len(c.busy) == 0 {
		return nil
	}
	span := c.endTime
	if _, err := fmt.Fprintf(w, "%-6s %12s %9s %12s %14s\n",
		"core", "busy_s", "util", "energy_j", "ghz_seconds"); err != nil {
		return err
	}
	order := make([]int, len(c.busy))
	for i := range order {
		order[i] = i
	}
	sort.Ints(order)
	for _, i := range order {
		util := 0.0
		if span > 0 {
			util = c.busy[i] / span
		}
		if _, err := fmt.Fprintf(w, "%-6d %12.4f %9.4f %12.2f %14.3f\n",
			i, c.busy[i], util, c.energy[i], c.work[i]); err != nil {
			return err
		}
	}
	return nil
}
