package obs

import (
	"fmt"
	"io"
	"sort"
)

// Collector is an Observer that folds the event stream into a metrics
// Registry plus per-core utilization/energy accounting, and renders it all
// as a plain-text run report. It is the default sink behind the -report
// flag of the commands.
type Collector struct {
	// Registry holds the folded counters/gauges/histograms; callers may
	// read individual metrics from it after (or during) a run.
	Registry *Registry

	queueLatency *Histogram // arrival → assignment (s)
	response     *Histogram // release → completion (s)
	cutRatio     *Histogram // target/demand at each cut

	arrivals map[int]float64 // job ID → arrival time, until assigned

	// per-core accumulation, grown on demand
	busy    []float64 // seconds executing
	energy  []float64 // joules
	work    []float64 // processing units executed (speed·dt·UnitsPerGHz is the machine's business; we store GHz·s)
	endTime float64

	// decision-stream accumulation (ObserveDecision)
	decisions    [numDecisionKinds]int64
	shedMarginal float64 // Σ marginal quality of shed jobs
	shedOverload float64 // Σ load/capacity at shed time
	dispScore    float64 // Σ dispatch score
	dispAlts     int64   // Σ alternatives weighed at dispatch
}

// NewCollector returns a collector with the standard metric set.
func NewCollector() *Collector {
	reg := NewRegistry()
	ql, _ := reg.Histogram("queue_latency_s",
		[]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.15, 0.25, 0.5, 1})
	rs, _ := reg.Histogram("response_s",
		[]float64{0.01, 0.025, 0.05, 0.1, 0.15, 0.25, 0.5, 1, 2})
	cr, _ := reg.Histogram("cut_ratio",
		[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1})
	return &Collector{
		Registry:     reg,
		queueLatency: ql,
		response:     rs,
		cutRatio:     cr,
		arrivals:     map[int]float64{},
	}
}

func (c *Collector) core(i int) int {
	for len(c.busy) <= i {
		c.busy = append(c.busy, 0)
		c.energy = append(c.energy, 0)
		c.work = append(c.work, 0)
	}
	return i
}

// Observe implements Observer.
func (c *Collector) Observe(e Event) {
	if e.Time > c.endTime {
		c.endTime = e.Time
	}
	reg := c.Registry
	switch e.Type {
	case EventJobArrive:
		reg.Counter("jobs_arrived").Inc()
		c.arrivals[e.Job] = e.Time
	case EventJobAssign:
		reg.Counter("jobs_assigned").Inc()
		if t0, ok := c.arrivals[e.Job]; ok {
			c.queueLatency.Observe(e.Time - t0)
			delete(c.arrivals, e.Job)
		}
	case EventJobCut:
		reg.Counter("cuts").Inc()
		if e.Aux > 0 {
			c.cutRatio.Observe(e.Value / e.Aux)
		}
	case EventJobComplete:
		reg.Counter("jobs_completed").Inc()
		c.response.Observe(e.Aux)
		delete(c.arrivals, e.Job)
	case EventJobExpire:
		reg.Counter("jobs_expired").Inc()
		if e.Core < 0 {
			reg.Counter("jobs_expired_in_queue").Inc()
		}
		delete(c.arrivals, e.Job)
	case EventJobRequeue:
		reg.Counter("jobs_requeued").Inc()
	case EventJobDrop:
		reg.Counter("jobs_dropped").Inc()
		delete(c.arrivals, e.Job)
	case EventExec:
		if i := c.core(e.Core); i >= 0 {
			c.busy[i] += e.Aux
			c.energy[i] += e.Extra
			c.work[i] += e.Value * e.Aux
		}
	case EventCoreSpeed:
		reg.Counter("dvfs_transitions").Inc()
	case EventModeSwitch:
		reg.Counter("mode_switches").Inc()
	case EventDistSwitch:
		reg.Counter("dist_switches").Inc()
	case EventBatch:
		reg.Counter("batches").Inc()
		reg.Gauge("max_waiting").Max(e.Value)
	case EventCoreFail:
		reg.Counter("core_failures").Inc()
	case EventCoreRecover:
		reg.Counter("core_recoveries").Inc()
	case EventBudgetCap:
		reg.Counter("budget_caps").Inc()
	case EventSpeedStuck:
		reg.Counter("dvfs_stuck").Inc()
	case EventKernel:
		reg.Counter("sim_events").Inc()
	case EventRunEnd:
		reg.Gauge("sim_time_s").Set(e.Value)
	case EventMachineDown:
		reg.Counter("machine_crashes").Inc()
	case EventMachineUp:
		reg.Counter("machine_recoveries").Inc()
	case EventMachinePartition:
		if e.Flag {
			reg.Counter("machine_partitions").Inc()
		} else {
			reg.Counter("machine_heals").Inc()
		}
	case EventMachineDegrade:
		if e.Flag {
			reg.Counter("machine_degrades").Inc()
		}
	case EventDispatch:
		reg.Counter("dispatches").Inc()
	case EventRedispatch:
		reg.Counter("redispatches").Inc()
	}
}

// ObserveDecision implements DecisionSink: decisions fold into per-kind
// counters plus small accumulators that feed the report's decision
// summary (mean marginal quality shed, mean dispatch score, how many
// alternatives the dispatcher weighed).
func (c *Collector) ObserveDecision(d Decision) {
	if int(d.Kind) < numDecisionKinds {
		c.decisions[d.Kind]++
	}
	c.Registry.Counter("decisions_total").Inc()
	switch d.Kind {
	case DecisionShed:
		c.shedMarginal += d.Marginal
		if d.Capacity > 0 {
			c.shedOverload += d.Load / d.Capacity
		}
	case DecisionDispatch:
		c.dispScore += d.Score
		c.dispAlts += int64(d.Alts)
	}
}

// writeDecisionSummary renders the decision-stream digest, when any
// decisions were observed.
func (c *Collector) writeDecisionSummary(w io.Writer) error {
	var total int64
	for _, n := range c.decisions {
		total += n
	}
	if total == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w, "--- decision summary ---"); err != nil {
		return err
	}
	for k := 0; k < numDecisionKinds; k++ {
		n := c.decisions[k]
		if n == 0 {
			continue
		}
		line := fmt.Sprintf("decide  %-28s %d", DecisionKind(k).String(), n)
		switch DecisionKind(k) {
		case DecisionShed:
			line += fmt.Sprintf("  mean_marginal=%.4g mean_overload=%.4g",
				c.shedMarginal/float64(n), c.shedOverload/float64(n))
		case DecisionDispatch:
			line += fmt.Sprintf("  mean_score=%.4g mean_alts=%.3g",
				c.dispScore/float64(n), float64(c.dispAlts)/float64(n))
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// WriteReport renders the folded metrics and the per-core table. The output
// is deterministic for a deterministic event stream.
func (c *Collector) WriteReport(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "--- run report (internal/obs) ---"); err != nil {
		return err
	}
	if err := c.Registry.WriteText(w); err != nil {
		return err
	}
	if err := c.writeDecisionSummary(w); err != nil {
		return err
	}
	if len(c.busy) == 0 {
		return nil
	}
	span := c.endTime
	if _, err := fmt.Fprintf(w, "%-6s %12s %9s %12s %14s\n",
		"core", "busy_s", "util", "energy_j", "ghz_seconds"); err != nil {
		return err
	}
	order := make([]int, len(c.busy))
	for i := range order {
		order[i] = i
	}
	sort.Ints(order)
	for _, i := range order {
		util := 0.0
		if span > 0 {
			util = c.busy[i] / span
		}
		if _, err := fmt.Fprintf(w, "%-6d %12.4f %9.4f %12.2f %14.3f\n",
			i, c.busy[i], util, c.energy[i], c.work[i]); err != nil {
			return err
		}
	}
	return nil
}
