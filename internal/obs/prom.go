package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PrometheusContentType is the content type of the text exposition
// format rendered by WritePrometheus.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a metric name to [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		valid := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !valid {
			ok = false
			break
		}
	}
	if ok && len(name) > 0 {
		return name
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '_' || c == ':',
			c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects, including the
// "+Inf" spelling for the overflow bucket bound.
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE comments, counters and
// gauges as single samples, histograms as cumulative _bucket series plus
// _sum and _count. Names are sorted within each section, so the output
// is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(r.counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			pn, name, pn, pn, r.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			pn, name, pn, pn, promFloat(r.gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.hists) {
		pn := promName(name)
		h := r.hists[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", pn, name, pn); err != nil {
			return err
		}
		bounds, cum := h.Buckets()
		for i, le := range bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(le), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
			pn, promFloat(h.Sum()), pn, h.Count()); err != nil {
			return err
		}
	}
	return nil
}
