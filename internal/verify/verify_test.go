package verify

import (
	"strings"
	"testing"

	"goodenough/internal/core"
	"goodenough/internal/dist"
	"goodenough/internal/machine"
	"goodenough/internal/power"
	"goodenough/internal/sched"
	"goodenough/internal/workload"
)

func shortSpec(rate float64, seed uint64) workload.Spec {
	s := workload.DefaultSpec(rate, seed)
	s.Duration = 15
	return s
}

// runChecked executes a full simulation under the invariant checker.
func runChecked(t *testing.T, cfg sched.Config, p sched.Policy, spec workload.Spec) *Checker {
	t.Helper()
	ck := Wrap(p)
	r, err := sched.NewRunner(cfg, ck, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	return ck
}

func TestGEUpholdsAllInvariants(t *testing.T) {
	for _, rate := range []float64{100, 154, 210} {
		ck := runChecked(t, sched.Defaults(), core.NewGE(0.9), shortSpec(rate, 1))
		if !ck.Ok() {
			t.Fatalf("rate %v: GE violated invariants:\n%v", rate, ck.Violations()[0])
		}
	}
}

func TestEveryPolicyUpholdsInvariants(t *testing.T) {
	policies := []func() sched.Policy{
		func() sched.Policy { return core.NewBE() },
		func() sched.Policy { return core.NewOQ(0.9) },
		func() sched.Policy { return core.NewNoComp(0.9) },
		func() sched.Policy { return core.NewFixedDist(0.9, dist.PolicyES) },
		func() sched.Policy { return core.NewFixedDist(0.9, dist.PolicyWF) },
		func() sched.Policy { return core.NewBEP(200) },
		func() sched.Policy { return core.NewBES(1.8) },
		func() sched.Policy { return sched.NewFCFS() },
		func() sched.Policy { return sched.NewFDFS() },
		func() sched.Policy { return sched.NewLJF() },
		func() sched.Policy { return sched.NewSJF() },
	}
	for _, mk := range policies {
		p := mk()
		ck := runChecked(t, sched.Defaults(), p, shortSpec(180, 2))
		if !ck.Ok() {
			t.Fatalf("%s violated invariants:\n%v", p.Name(), ck.Violations()[0])
		}
	}
}

func TestDiscreteModeUpholdsInvariants(t *testing.T) {
	cfg := sched.Defaults()
	ladder, err := power.UniformLadder(3.2, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Ladder = ladder
	ck := runChecked(t, cfg, core.NewGE(0.9), shortSpec(170, 3))
	if !ck.Ok() {
		t.Fatalf("discrete GE violated invariants:\n%v", ck.Violations()[0])
	}
}

func TestTinyBudgetUpholdsInvariants(t *testing.T) {
	cfg := sched.Defaults()
	cfg.PowerBudget = 40 // starved machine
	ck := runChecked(t, cfg, core.NewGE(0.9), shortSpec(150, 4))
	if !ck.Ok() {
		t.Fatalf("starved GE violated invariants:\n%v", ck.Violations()[0])
	}
}

// rogueMigrator deliberately re-binds a queued job to another core to prove
// the checker catches migration.
type rogueMigrator struct {
	inner sched.Policy
	done  bool
}

func (r *rogueMigrator) Name() string { return "rogue" }
func (r *rogueMigrator) Reset()       { r.inner.Reset() }
func (r *rogueMigrator) Schedule(ctx *sched.Context) {
	r.inner.Schedule(ctx)
	if r.done {
		return
	}
	// Move the first planned job we find onto the next core.
	for _, c := range ctx.Server.Cores {
		q := c.Queue()
		if len(q) == 0 {
			continue
		}
		j := q[0]
		next := (c.Index + 1) % len(ctx.Server.Cores)
		j.Core = next
		ctx.Server.Cores[next].SetPlan([]machine.Entry{{Job: j, Speed: 1}})
		r.done = true
		return
	}
}

func TestCheckerCatchesMigration(t *testing.T) {
	ck := Wrap(&rogueMigrator{inner: core.NewGE(0.9)})
	r, err := sched.NewRunner(sched.Defaults(), ck, shortSpec(150, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if ck.Ok() {
		t.Fatal("checker missed a deliberate migration")
	}
	found := false
	for _, v := range ck.Violations() {
		if v.Rule == "no-migration" || v.Rule == "binding" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations lack migration rule: %v", ck.Violations())
	}
}

// rogueSpeeder plans a speed beyond the whole-budget cap.
type rogueSpeeder struct{ inner sched.Policy }

func (r *rogueSpeeder) Name() string { return "speeder" }
func (r *rogueSpeeder) Reset()       { r.inner.Reset() }
func (r *rogueSpeeder) Schedule(ctx *sched.Context) {
	r.inner.Schedule(ctx)
	for _, c := range ctx.Server.Cores {
		q := c.Queue()
		if len(q) > 0 {
			entries := make([]machine.Entry, len(q))
			for i, j := range q {
				entries[i] = machine.Entry{Job: j, Speed: 100} // absurd
			}
			c.SetPlan(entries)
			return
		}
	}
}

func TestCheckerCatchesOverspeed(t *testing.T) {
	ck := Wrap(&rogueSpeeder{inner: core.NewBE()})
	r, _ := sched.NewRunner(sched.Defaults(), ck, shortSpec(120, 6))
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	rules := map[string]bool{}
	for _, v := range ck.Violations() {
		rules[v.Rule] = true
	}
	if !rules["speed-cap"] && !rules["power-budget"] {
		t.Fatalf("checker missed overspeed: %v", ck.Violations())
	}
}

func TestViolationLimit(t *testing.T) {
	ck := Wrap(&rogueSpeeder{inner: core.NewBE()})
	ck.Limit = 5
	r, _ := sched.NewRunner(sched.Defaults(), ck, shortSpec(200, 7))
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ck.Violations()) > 5 {
		t.Fatalf("limit ignored: %d violations recorded", len(ck.Violations()))
	}
}

func TestCheckerResetClearsState(t *testing.T) {
	ck := Wrap(&rogueSpeeder{inner: core.NewBE()})
	r, _ := sched.NewRunner(sched.Defaults(), ck, shortSpec(120, 8))
	r.Run()
	if ck.Ok() {
		t.Fatal("expected violations before reset")
	}
	ck.Reset()
	if !ck.Ok() {
		t.Fatal("reset did not clear violations")
	}
}

func TestCheckerNamePassthrough(t *testing.T) {
	ck := Wrap(core.NewGE(0.9))
	if ck.Name() != "GE" {
		t.Fatalf("name = %q", ck.Name())
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Time: 1.5, Rule: "edf-order", Detail: "x"}
	s := v.String()
	if !strings.Contains(s, "edf-order") || !strings.Contains(s, "1.5") {
		t.Fatalf("violation string = %q", s)
	}
}

// targetTamperer sets an out-of-range target to prove target-range fires.
type targetTamperer struct{ inner sched.Policy }

func (r *targetTamperer) Name() string { return "tamper" }
func (r *targetTamperer) Reset()       { r.inner.Reset() }
func (r *targetTamperer) Schedule(ctx *sched.Context) {
	r.inner.Schedule(ctx)
	for _, c := range ctx.Server.Cores {
		for _, j := range c.Queue() {
			j.Target = j.Demand + 500 // bypass SetTarget clamps
			return
		}
	}
}

func TestCheckerCatchesBadTargets(t *testing.T) {
	ck := Wrap(&targetTamperer{inner: core.NewGE(0.9)})
	r, _ := sched.NewRunner(sched.Defaults(), ck, shortSpec(150, 9))
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range ck.Violations() {
		if v.Rule == "target-range" {
			found = true
		}
	}
	if !found {
		t.Fatalf("checker missed the tampered target: %v", ck.Violations())
	}
}

func TestHeterogeneousMachineUpholdsInvariants(t *testing.T) {
	cfg := sched.Defaults()
	models := make([]power.Model, cfg.Cores)
	for i := range models {
		if i < cfg.Cores/2 {
			models[i] = power.Model{A: 5, Beta: 2} // big
		} else {
			models[i] = power.Model{A: 2, Beta: 2, MaxSpeed: 1.6} // little
		}
	}
	cfg.PerCoreModels = models
	ck := runChecked(t, cfg, core.NewGE(0.9), shortSpec(160, 10))
	if !ck.Ok() {
		t.Fatalf("heterogeneous GE violated invariants:\n%v", ck.Violations()[0])
	}
}
