package verify

import (
	"strings"
	"testing"

	"goodenough/internal/core"
	"goodenough/internal/dist"
	"goodenough/internal/faults"
	"goodenough/internal/machine"
	"goodenough/internal/power"
	"goodenough/internal/sched"
	"goodenough/internal/workload"
)

func shortSpec(rate float64, seed uint64) workload.Spec {
	s := workload.DefaultSpec(rate, seed)
	s.Duration = 15
	return s
}

// runChecked executes a full simulation under the invariant checker.
func runChecked(t *testing.T, cfg sched.Config, p sched.Policy, spec workload.Spec) *Checker {
	t.Helper()
	ck := Wrap(p)
	r, err := sched.NewRunner(cfg, ck, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	return ck
}

func TestGEUpholdsAllInvariants(t *testing.T) {
	for _, rate := range []float64{100, 154, 210} {
		ck := runChecked(t, sched.Defaults(), core.NewGE(0.9), shortSpec(rate, 1))
		if !ck.Ok() {
			t.Fatalf("rate %v: GE violated invariants:\n%v", rate, ck.Violations()[0])
		}
	}
}

func TestEveryPolicyUpholdsInvariants(t *testing.T) {
	policies := []func() sched.Policy{
		func() sched.Policy { return core.NewBE() },
		func() sched.Policy { return core.NewOQ(0.9) },
		func() sched.Policy { return core.NewNoComp(0.9) },
		func() sched.Policy { return core.NewFixedDist(0.9, dist.PolicyES) },
		func() sched.Policy { return core.NewFixedDist(0.9, dist.PolicyWF) },
		func() sched.Policy { return core.NewBEP(200) },
		func() sched.Policy { return core.NewBES(1.8) },
		func() sched.Policy { return sched.NewFCFS() },
		func() sched.Policy { return sched.NewFDFS() },
		func() sched.Policy { return sched.NewLJF() },
		func() sched.Policy { return sched.NewSJF() },
	}
	for _, mk := range policies {
		p := mk()
		ck := runChecked(t, sched.Defaults(), p, shortSpec(180, 2))
		if !ck.Ok() {
			t.Fatalf("%s violated invariants:\n%v", p.Name(), ck.Violations()[0])
		}
	}
}

func TestDiscreteModeUpholdsInvariants(t *testing.T) {
	cfg := sched.Defaults()
	ladder, err := power.UniformLadder(3.2, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Ladder = ladder
	ck := runChecked(t, cfg, core.NewGE(0.9), shortSpec(170, 3))
	if !ck.Ok() {
		t.Fatalf("discrete GE violated invariants:\n%v", ck.Violations()[0])
	}
}

func TestTinyBudgetUpholdsInvariants(t *testing.T) {
	cfg := sched.Defaults()
	cfg.PowerBudget = 40 // starved machine
	ck := runChecked(t, cfg, core.NewGE(0.9), shortSpec(150, 4))
	if !ck.Ok() {
		t.Fatalf("starved GE violated invariants:\n%v", ck.Violations()[0])
	}
}

// rogueMigrator deliberately re-binds a queued job to another core to prove
// the checker catches migration.
type rogueMigrator struct {
	inner sched.Policy
	done  bool
}

func (r *rogueMigrator) Name() string { return "rogue" }
func (r *rogueMigrator) Reset()       { r.inner.Reset() }
func (r *rogueMigrator) Schedule(ctx *sched.Context) {
	r.inner.Schedule(ctx)
	if r.done {
		return
	}
	// Move the first planned job we find onto the next core.
	for _, c := range ctx.Server.Cores {
		q := c.Queue()
		if len(q) == 0 {
			continue
		}
		j := q[0]
		next := (c.Index + 1) % len(ctx.Server.Cores)
		j.Core = next
		ctx.Server.Cores[next].SetPlan([]machine.Entry{{Job: j, Speed: 1}})
		r.done = true
		return
	}
}

func TestCheckerCatchesMigration(t *testing.T) {
	ck := Wrap(&rogueMigrator{inner: core.NewGE(0.9)})
	r, err := sched.NewRunner(sched.Defaults(), ck, shortSpec(150, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if ck.Ok() {
		t.Fatal("checker missed a deliberate migration")
	}
	found := false
	for _, v := range ck.Violations() {
		if v.Rule == "no-migration" || v.Rule == "binding" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations lack migration rule: %v", ck.Violations())
	}
}

// rogueSpeeder plans a speed beyond the whole-budget cap.
type rogueSpeeder struct{ inner sched.Policy }

func (r *rogueSpeeder) Name() string { return "speeder" }
func (r *rogueSpeeder) Reset()       { r.inner.Reset() }
func (r *rogueSpeeder) Schedule(ctx *sched.Context) {
	r.inner.Schedule(ctx)
	for _, c := range ctx.Server.Cores {
		q := c.Queue()
		if len(q) > 0 {
			entries := make([]machine.Entry, len(q))
			for i, j := range q {
				entries[i] = machine.Entry{Job: j, Speed: 100} // absurd
			}
			c.SetPlan(entries)
			return
		}
	}
}

func TestCheckerCatchesOverspeed(t *testing.T) {
	ck := Wrap(&rogueSpeeder{inner: core.NewBE()})
	r, _ := sched.NewRunner(sched.Defaults(), ck, shortSpec(120, 6))
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	rules := map[string]bool{}
	for _, v := range ck.Violations() {
		rules[v.Rule] = true
	}
	if !rules["speed-cap"] && !rules["power-budget"] {
		t.Fatalf("checker missed overspeed: %v", ck.Violations())
	}
}

func TestViolationLimit(t *testing.T) {
	ck := Wrap(&rogueSpeeder{inner: core.NewBE()})
	ck.Limit = 5
	r, _ := sched.NewRunner(sched.Defaults(), ck, shortSpec(200, 7))
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ck.Violations()) > 5 {
		t.Fatalf("limit ignored: %d violations recorded", len(ck.Violations()))
	}
}

func TestCheckerResetClearsState(t *testing.T) {
	ck := Wrap(&rogueSpeeder{inner: core.NewBE()})
	r, _ := sched.NewRunner(sched.Defaults(), ck, shortSpec(120, 8))
	r.Run()
	if ck.Ok() {
		t.Fatal("expected violations before reset")
	}
	ck.Reset()
	if !ck.Ok() {
		t.Fatal("reset did not clear violations")
	}
}

func TestCheckerNamePassthrough(t *testing.T) {
	ck := Wrap(core.NewGE(0.9))
	if ck.Name() != "GE" {
		t.Fatalf("name = %q", ck.Name())
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Time: 1.5, Rule: "edf-order", Detail: "x"}
	s := v.String()
	if !strings.Contains(s, "edf-order") || !strings.Contains(s, "1.5") {
		t.Fatalf("violation string = %q", s)
	}
}

// targetTamperer sets an out-of-range target to prove target-range fires.
type targetTamperer struct{ inner sched.Policy }

func (r *targetTamperer) Name() string { return "tamper" }
func (r *targetTamperer) Reset()       { r.inner.Reset() }
func (r *targetTamperer) Schedule(ctx *sched.Context) {
	r.inner.Schedule(ctx)
	for _, c := range ctx.Server.Cores {
		for _, j := range c.Queue() {
			j.Target = j.Demand + 500 // bypass SetTarget clamps
			return
		}
	}
}

func TestCheckerCatchesBadTargets(t *testing.T) {
	ck := Wrap(&targetTamperer{inner: core.NewGE(0.9)})
	r, _ := sched.NewRunner(sched.Defaults(), ck, shortSpec(150, 9))
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range ck.Violations() {
		if v.Rule == "target-range" {
			found = true
		}
	}
	if !found {
		t.Fatalf("checker missed the tampered target: %v", ck.Violations())
	}
}

func TestHeterogeneousMachineUpholdsInvariants(t *testing.T) {
	cfg := sched.Defaults()
	models := make([]power.Model, cfg.Cores)
	for i := range models {
		if i < cfg.Cores/2 {
			models[i] = power.Model{A: 5, Beta: 2} // big
		} else {
			models[i] = power.Model{A: 2, Beta: 2, MaxSpeed: 1.6} // little
		}
	}
	cfg.PerCoreModels = models
	ck := runChecked(t, cfg, core.NewGE(0.9), shortSpec(160, 10))
	if !ck.Ok() {
		t.Fatalf("heterogeneous GE violated invariants:\n%v", ck.Violations()[0])
	}
}

// faultyConfig builds a Defaults config with a representative mixed fault
// schedule: two mid-run core failures (one transient), a facility budget
// cap window, and a stuck-DVFS window.
func faultyConfig(t *testing.T) sched.Config {
	t.Helper()
	cfg := sched.Defaults()
	fs, err := faults.New([]faults.Spec{
		{At: 3, Kind: faults.CoreFail, Core: 2},
		{At: 4, Kind: faults.CoreFail, Core: 5, Duration: 5},
		{At: 6, Kind: faults.BudgetCap, Watts: 160, Duration: 4},
		{At: 2, Kind: faults.SpeedStuck, Core: 9, Speed: 1.0, Duration: 6},
	}, cfg.Cores)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fs
	return cfg
}

func TestGEUpholdsInvariantsUnderFaults(t *testing.T) {
	for _, rate := range []float64{120, 180} {
		ck := runChecked(t, faultyConfig(t), core.NewGE(0.9), shortSpec(rate, 11))
		if !ck.Ok() {
			t.Fatalf("rate %v: GE under faults violated invariants:\n%v",
				rate, ck.Violations()[0])
		}
	}
}

func TestBaselinesUpholdInvariantsUnderFaults(t *testing.T) {
	for _, mk := range []func() sched.Policy{
		func() sched.Policy { return sched.NewFCFS() },
		func() sched.Policy { return core.NewBE() },
	} {
		p := mk()
		ck := runChecked(t, faultyConfig(t), p, shortSpec(150, 12))
		if !ck.Ok() {
			t.Fatalf("%s under faults violated invariants:\n%v", p.Name(), ck.Violations()[0])
		}
	}
}

// deadCorePlanner plans a waiting job onto a core it knows is failed.
type deadCorePlanner struct{ inner sched.Policy }

func (r *deadCorePlanner) Name() string { return "dead-core-planner" }
func (r *deadCorePlanner) Reset()       { r.inner.Reset() }
func (r *deadCorePlanner) Schedule(ctx *sched.Context) {
	r.inner.Schedule(ctx)
	var dead *machine.Core
	for _, c := range ctx.Server.Cores {
		if !c.Healthy() {
			dead = c
			break
		}
	}
	if dead == nil {
		return
	}
	// Steal a planned job from a healthy core and re-bind it to the dead
	// one (with the requeue counter bumped so only dead-core can fire).
	for _, c := range ctx.Server.Cores {
		q := c.Queue()
		if !c.Healthy() || len(q) == 0 {
			continue
		}
		j := q[len(q)-1]
		rest := make([]machine.Entry, 0, len(q)-1)
		for _, jj := range q[:len(q)-1] {
			rest = append(rest, machine.Entry{Job: jj, Speed: 1})
		}
		c.SetPlan(rest)
		j.Core = dead.Index
		j.Requeues++
		dead.SetPlan([]machine.Entry{{Job: j, Speed: 1}})
		return
	}
}

func TestCheckerCatchesDeadCorePlan(t *testing.T) {
	ck := Wrap(&deadCorePlanner{inner: core.NewGE(0.9)})
	r, err := sched.NewRunner(faultyConfig(t), ck, shortSpec(150, 13))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range ck.Violations() {
		if v.Rule == "dead-core" {
			found = true
		}
	}
	if !found {
		t.Fatalf("checker missed the dead-core plan: %v", ck.Violations())
	}
}

// sanctionedMover migrates one job but increments its requeue counter, as
// the runner's failure path would — the checker must accept the re-binding.
type sanctionedMover struct {
	inner sched.Policy
	done  bool
}

func (r *sanctionedMover) Name() string { return "sanctioned-mover" }
func (r *sanctionedMover) Reset()       { r.inner.Reset() }
func (r *sanctionedMover) Schedule(ctx *sched.Context) {
	r.inner.Schedule(ctx)
	if r.done || ctx.Now < 1 {
		return // let the checker learn some bindings first
	}
	for _, c := range ctx.Server.Cores {
		q := c.Queue()
		if len(q) == 0 {
			continue
		}
		j := q[0]
		rest := make([]machine.Entry, 0, len(q)-1)
		for _, jj := range q[1:] {
			rest = append(rest, machine.Entry{Job: jj, Speed: 1})
		}
		c.SetPlan(rest)
		next := (c.Index + 1) % len(ctx.Server.Cores)
		j.Core = next
		j.Requeues++ // the audit trail a core failure would have written
		nq := ctx.Server.Cores[next].Queue()
		entries := make([]machine.Entry, 0, len(nq)+1)
		for _, jj := range nq {
			entries = append(entries, machine.Entry{Job: jj, Speed: 1})
		}
		entries = append(entries, machine.Entry{Job: j, Speed: 1})
		ctx.Server.Cores[next].SetPlan(entries)
		r.done = true
		return
	}
}

func TestCheckerAcceptsRequeueSanctionedMove(t *testing.T) {
	ck := Wrap(&sanctionedMover{inner: core.NewGE(0.9)})
	r, err := sched.NewRunner(sched.Defaults(), ck, shortSpec(150, 14))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	for _, v := range ck.Violations() {
		if v.Rule == "no-migration" {
			t.Fatalf("requeue-sanctioned move flagged as migration: %v", v)
		}
	}
}

// capIgnorer sizes speeds off the nominal budget even while a facility cap
// is active, so the checker's power-budget rule (against the *current* cap)
// must fire.
type capIgnorer struct{ inner sched.Policy }

func (r *capIgnorer) Name() string { return "cap-ignorer" }
func (r *capIgnorer) Reset()       { r.inner.Reset() }
func (r *capIgnorer) Schedule(ctx *sched.Context) {
	r.inner.Schedule(ctx)
	if ctx.Budget >= ctx.Cfg.PowerBudget {
		return // no cap active; behave
	}
	share := ctx.Cfg.PowerBudget / float64(len(ctx.Server.Cores))
	for _, c := range ctx.Server.Cores {
		q := c.Queue()
		if !c.Healthy() || len(q) == 0 {
			continue
		}
		speed := ctx.Cfg.ModelFor(c.Index).Speed(share)
		entries := make([]machine.Entry, len(q))
		for i, j := range q {
			entries[i] = machine.Entry{Job: j, Speed: speed}
		}
		c.SetPlan(entries)
	}
}

func TestCheckerEnforcesCurrentCap(t *testing.T) {
	cfg := sched.Defaults()
	fs, err := faults.New([]faults.Spec{
		{At: 2, Kind: faults.BudgetCap, Watts: 40},
	}, cfg.Cores)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fs
	ck := Wrap(&capIgnorer{inner: core.NewBE()})
	r, err := sched.NewRunner(cfg, ck, shortSpec(200, 15))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	rules := map[string]bool{}
	for _, v := range ck.Violations() {
		rules[v.Rule] = true
	}
	if !rules["power-budget"] && !rules["speed-cap"] {
		t.Fatalf("checker missed the ignored cap: %v", ck.Violations())
	}
}
