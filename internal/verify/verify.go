// Package verify provides a runtime invariant checker for scheduling
// policies: a Policy decorator that, after every scheduling decision,
// asserts the structural properties the model guarantees on paper —
//
//   - no migration: a job bound to a core never moves (paper §II-B);
//   - EDF order: every core's plan is sorted by deadline;
//   - power budget: the instantaneous dynamic power implied by the
//     cores' current speeds never exceeds the total budget H;
//   - target sanity: Processed ≤ Target ≤ Demand for every planned job;
//   - speed sanity: no negative speeds, and no speed above what burning
//     the entire budget on one core could sustain;
//   - monotone time: scheduling triggers arrive in time order.
//
// Integration tests wrap each policy in a Checker and run full
// simulations; any violation is recorded with a description. The checker
// is also useful when developing new policies against the sched.Policy
// interface.
package verify

import (
	"fmt"

	"goodenough/internal/sched"
)

// Violation is one observed invariant breach.
type Violation struct {
	// Time is the simulation time of the offending trigger.
	Time float64
	// Rule names the violated invariant.
	Rule string
	// Detail describes the breach.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("t=%.6f %s: %s", v.Time, v.Rule, v.Detail)
}

// Checker wraps a sched.Policy and audits every scheduling decision.
type Checker struct {
	inner sched.Policy

	violations []Violation
	// jobCore remembers each job's first core binding.
	jobCore  map[int]int
	lastTime float64
	timeSet  bool
	// Limit caps the number of recorded violations (0 = default 100) so a
	// systematic breach does not balloon memory.
	Limit int
}

// Wrap decorates a policy with invariant checking.
func Wrap(p sched.Policy) *Checker {
	return &Checker{inner: p, jobCore: make(map[int]int)}
}

// Name implements sched.Policy.
func (c *Checker) Name() string { return c.inner.Name() }

// Reset implements sched.Policy.
func (c *Checker) Reset() {
	c.inner.Reset()
	c.violations = nil
	c.jobCore = make(map[int]int)
	c.timeSet = false
}

// Violations returns everything observed so far.
func (c *Checker) Violations() []Violation { return c.violations }

// Ok reports whether no invariant was breached.
func (c *Checker) Ok() bool { return len(c.violations) == 0 }

func (c *Checker) report(t float64, rule, format string, args ...any) {
	limit := c.Limit
	if limit == 0 {
		limit = 100
	}
	if len(c.violations) >= limit {
		return
	}
	c.violations = append(c.violations, Violation{
		Time: t, Rule: rule, Detail: fmt.Sprintf(format, args...),
	})
}

// Schedule implements sched.Policy: delegate, then audit.
func (c *Checker) Schedule(ctx *sched.Context) {
	if c.timeSet && ctx.Now < c.lastTime-1e-12 {
		c.report(ctx.Now, "monotone-time", "trigger at %v after %v", ctx.Now, c.lastTime)
	}
	c.lastTime = ctx.Now
	c.timeSet = true

	c.inner.Schedule(ctx)

	cfg := ctx.Cfg
	instPower := 0.0
	for _, core := range ctx.Server.Cores {
		maxSpeed := cfg.ModelFor(core.Index).Speed(cfg.PowerBudget)
		queue := core.Queue()
		prevDeadline := -1.0
		for _, j := range queue {
			// No migration.
			if first, seen := c.jobCore[j.ID]; seen {
				if first != j.Core {
					c.report(ctx.Now, "no-migration",
						"job %d moved from core %d to core %d", j.ID, first, j.Core)
				}
			} else {
				c.jobCore[j.ID] = j.Core
			}
			if j.Core != core.Index {
				c.report(ctx.Now, "binding",
					"job %d bound to core %d but planned on core %d", j.ID, j.Core, core.Index)
			}
			// EDF order within the plan.
			if j.Deadline < prevDeadline-1e-12 {
				c.report(ctx.Now, "edf-order",
					"core %d plans deadline %v after %v", core.Index, j.Deadline, prevDeadline)
			}
			prevDeadline = j.Deadline
			// Target sanity.
			if j.Target < j.Processed-1e-9 || j.Target > j.Demand+1e-9 {
				c.report(ctx.Now, "target-range",
					"job %d target %v outside [processed %v, demand %v]",
					j.ID, j.Target, j.Processed, j.Demand)
			}
		}
		// Speed sanity and instantaneous power.
		s := core.CurrentSpeed()
		if s < 0 {
			c.report(ctx.Now, "speed-negative", "core %d speed %v", core.Index, s)
		}
		if s > maxSpeed*(1+1e-9) {
			c.report(ctx.Now, "speed-cap",
				"core %d speed %v exceeds whole-budget speed %v", core.Index, s, maxSpeed)
		}
		instPower += cfg.ModelFor(core.Index).Power(s)
	}
	if instPower > cfg.PowerBudget*(1+1e-6) {
		c.report(ctx.Now, "power-budget",
			"instantaneous power %v W exceeds budget %v W", instPower, cfg.PowerBudget)
	}
}
