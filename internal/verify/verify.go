// Package verify provides a runtime invariant checker for scheduling
// policies: a Policy decorator that, after every scheduling decision,
// asserts the structural properties the model guarantees on paper —
//
//   - no migration: a job bound to a core never moves (paper §II-B) —
//     with one audited exception: a job orphaned by a core failure may be
//     re-bound exactly once per recorded requeue (job.Requeues is the
//     audit trail written by the runner at failure instants);
//   - EDF order: every core's plan is sorted by deadline;
//   - power budget: the instantaneous dynamic power implied by the
//     cores' current speeds never exceeds the *current* cap (the nominal
//     budget H, or the injected facility-level cap while one is active);
//   - dead core: no job is ever planned on a failed core;
//   - target sanity: Processed ≤ Target ≤ Demand for every planned job;
//   - speed sanity: no negative speeds, and no speed above what burning
//     the entire current budget on one core could sustain (stuck-DVFS
//     cores are exempt from the cap — the hardware, not the scheduler,
//     pinned them);
//   - monotone time: scheduling triggers arrive in time order.
//
// Integration tests wrap each policy in a Checker and run full
// simulations; any violation is recorded with a description. The checker
// is also useful when developing new policies against the sched.Policy
// interface.
package verify

import (
	"fmt"

	"goodenough/internal/sched"
)

// Violation is one observed invariant breach.
type Violation struct {
	// Time is the simulation time of the offending trigger.
	Time float64
	// Rule names the violated invariant.
	Rule string
	// Detail describes the breach.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("t=%.6f %s: %s", v.Time, v.Rule, v.Detail)
}

// Checker wraps a sched.Policy and audits every scheduling decision.
type Checker struct {
	inner sched.Policy

	violations []Violation
	// jobCore remembers each job's latest sanctioned binding together
	// with the requeue count at which it was learned, so failure-driven
	// re-bindings can be distinguished from illegal migrations.
	jobCore  map[int]binding
	lastTime float64
	timeSet  bool
	// Limit caps the number of recorded violations (0 = default 100) so a
	// systematic breach does not balloon memory.
	Limit int
}

// binding is one sanctioned job-to-core assignment: the core, and the
// job's requeue count when the binding was observed. A later binding to a
// different core is legal only if the requeue count has grown since —
// i.e. a core failure orphaned the job in between.
type binding struct {
	core     int
	requeues int
}

// Wrap decorates a policy with invariant checking.
func Wrap(p sched.Policy) *Checker {
	return &Checker{inner: p, jobCore: make(map[int]binding)}
}

// Name implements sched.Policy.
func (c *Checker) Name() string { return c.inner.Name() }

// Reset implements sched.Policy.
func (c *Checker) Reset() {
	c.inner.Reset()
	c.violations = nil
	c.jobCore = make(map[int]binding)
	c.timeSet = false
}

// Violations returns everything observed so far.
func (c *Checker) Violations() []Violation { return c.violations }

// Ok reports whether no invariant was breached.
func (c *Checker) Ok() bool { return len(c.violations) == 0 }

func (c *Checker) report(t float64, rule, format string, args ...any) {
	limit := c.Limit
	if limit == 0 {
		limit = 100
	}
	if len(c.violations) >= limit {
		return
	}
	c.violations = append(c.violations, Violation{
		Time: t, Rule: rule, Detail: fmt.Sprintf(format, args...),
	})
}

// Schedule implements sched.Policy: delegate, then audit.
func (c *Checker) Schedule(ctx *sched.Context) {
	if c.timeSet && ctx.Now < c.lastTime-1e-12 {
		c.report(ctx.Now, "monotone-time", "trigger at %v after %v", ctx.Now, c.lastTime)
	}
	c.lastTime = ctx.Now
	c.timeSet = true

	c.inner.Schedule(ctx)

	cfg := ctx.Cfg
	// The budget to audit against is the machine's current cap — a
	// facility-level capping fault may have shrunk it below the nominal
	// configuration value.
	budget := ctx.Budget
	if budget <= 0 {
		budget = cfg.PowerBudget
	}
	instPower := 0.0
	for _, core := range ctx.Server.Cores {
		maxSpeed := cfg.ModelFor(core.Index).Speed(budget)
		queue := core.Queue()
		// No job may be planned on a dead core.
		if !core.Healthy() && len(queue) > 0 {
			c.report(ctx.Now, "dead-core",
				"core %d is failed but plans %d jobs", core.Index, len(queue))
		}
		prevDeadline := -1.0
		for _, j := range queue {
			// No migration — except the audited failure-requeue path: a
			// re-binding is sanctioned only when the job's requeue
			// counter advanced since the previous binding was learned.
			if prev, seen := c.jobCore[j.ID]; seen && prev.core != j.Core {
				if j.Requeues > prev.requeues {
					c.jobCore[j.ID] = binding{core: j.Core, requeues: j.Requeues}
				} else {
					c.report(ctx.Now, "no-migration",
						"job %d moved from core %d to core %d without an intervening core failure",
						j.ID, prev.core, j.Core)
				}
			} else if !seen {
				c.jobCore[j.ID] = binding{core: j.Core, requeues: j.Requeues}
			}
			if j.Core != core.Index {
				c.report(ctx.Now, "binding",
					"job %d bound to core %d but planned on core %d", j.ID, j.Core, core.Index)
			}
			// EDF order within the plan.
			if j.Deadline < prevDeadline-1e-12 {
				c.report(ctx.Now, "edf-order",
					"core %d plans deadline %v after %v", core.Index, j.Deadline, prevDeadline)
			}
			prevDeadline = j.Deadline
			// Target sanity.
			if j.Target < j.Processed-1e-9 || j.Target > j.Demand+1e-9 {
				c.report(ctx.Now, "target-range",
					"job %d target %v outside [processed %v, demand %v]",
					j.ID, j.Target, j.Processed, j.Demand)
			}
		}
		// Speed sanity and instantaneous power. A stuck-DVFS core is
		// exempt from the budget-implied speed cap (the hardware pinned
		// it), but its draw still counts toward the budget check.
		s := core.CurrentSpeed()
		if s < 0 {
			c.report(ctx.Now, "speed-negative", "core %d speed %v", core.Index, s)
		}
		if s > maxSpeed*(1+1e-9) && core.StuckSpeed() <= 0 {
			c.report(ctx.Now, "speed-cap",
				"core %d speed %v exceeds whole-budget speed %v", core.Index, s, maxSpeed)
		}
		instPower += cfg.ModelFor(core.Index).Power(s)
	}
	if instPower > budget*(1+1e-6) {
		c.report(ctx.Now, "power-budget",
			"instantaneous power %v W exceeds current cap %v W", instPower, budget)
	}
}
