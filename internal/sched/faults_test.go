package sched

import (
	"fmt"
	"testing"

	"goodenough/internal/faults"
)

// faultCfg injects the given specs into a Defaults config.
func faultCfg(t *testing.T, specs ...faults.Spec) Config {
	t.Helper()
	cfg := Defaults()
	fs, err := faults.New(specs, cfg.Cores)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fs
	return cfg
}

func runFaulty(t *testing.T, cfg Config, rate float64, seed uint64) Result {
	t.Helper()
	r, err := NewRunner(cfg, NewFCFS(), shortSpec(rate, seed))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCoreFailureRequeuesAndAccounts(t *testing.T) {
	cfg := faultCfg(t,
		faults.Spec{At: 4, Kind: faults.CoreFail, Core: 0},
		faults.Spec{At: 4, Kind: faults.CoreFail, Core: 1},
		faults.Spec{At: 5, Kind: faults.CoreFail, Core: 2, Duration: 8},
	)
	res := runFaulty(t, cfg, 200, 21)
	if res.CoreFailures != 3 {
		t.Fatalf("core failures = %d, want 3", res.CoreFailures)
	}
	if res.RequeuedJobs == 0 {
		t.Fatal("killing loaded cores at 200 req/s requeued nothing")
	}
	if res.SurvivingCapacity >= 1 || res.SurvivingCapacity <= 0 {
		t.Fatalf("surviving capacity = %v, want in (0,1)", res.SurvivingCapacity)
	}
	// Every job still ends exactly one way.
	if int64(res.Jobs) != res.Completed+res.Expired+res.DroppedJobs {
		t.Fatalf("%d jobs but %d completed + %d expired + %d dropped",
			res.Jobs, res.Completed, res.Expired, res.DroppedJobs)
	}
}

func TestTransientFailureRecoversCapacity(t *testing.T) {
	permanent := runFaulty(t, faultCfg(t,
		faults.Spec{At: 2, Kind: faults.CoreFail, Core: 3},
	), 150, 22)
	transient := runFaulty(t, faultCfg(t,
		faults.Spec{At: 2, Kind: faults.CoreFail, Core: 3, Duration: 3},
	), 150, 22)
	if transient.SurvivingCapacity <= permanent.SurvivingCapacity {
		t.Fatalf("transient capacity %v not above permanent %v",
			transient.SurvivingCapacity, permanent.SurvivingCapacity)
	}
}

func TestBudgetCapShedsUnderOverload(t *testing.T) {
	// Starve the machine to an unsustainable cap mid-run: the admission
	// control must shed rather than let everything expire unplanned.
	cfg := faultCfg(t,
		faults.Spec{At: 3, Kind: faults.BudgetCap, Watts: 10, Duration: 10},
	)
	res := runFaulty(t, cfg, 250, 23)
	if res.DroppedJobs == 0 {
		t.Fatal("a 10 W cap at 250 req/s shed nothing")
	}
	if int64(res.Jobs) != res.Completed+res.Expired+res.DroppedJobs {
		t.Fatalf("accounting broken: %d != %d+%d+%d",
			res.Jobs, res.Completed, res.Expired, res.DroppedJobs)
	}
}

func TestStuckSpeedRunCompletes(t *testing.T) {
	cfg := faultCfg(t,
		faults.Spec{At: 1, Kind: faults.SpeedStuck, Core: 4, Speed: 0.8, Duration: 10},
		faults.Spec{At: 2, Kind: faults.SpeedStuck, Core: 5, Speed: 2.5},
	)
	res := runFaulty(t, cfg, 160, 24)
	if res.Jobs == 0 || res.SimTime <= 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	if int64(res.Jobs) != res.Completed+res.Expired+res.DroppedJobs {
		t.Fatal("accounting broken under stuck DVFS")
	}
}

func TestFaultRunsAreDeterministic(t *testing.T) {
	mk := func() Result {
		cfg := faultCfg(t,
			faults.Spec{At: 2, Kind: faults.CoreFail, Core: 1, Duration: 4},
			faults.Spec{At: 3, Kind: faults.BudgetCap, Watts: 120, Duration: 5},
			faults.Spec{At: 4, Kind: faults.SpeedStuck, Core: 7, Speed: 1.2, Duration: 3},
		)
		return runFaulty(t, cfg, 180, 25)
	}
	a, b := mk(), mk()
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("same seed and fault schedule diverged:\n%+v\n%+v", a, b)
	}
}

func TestGeneratedFaultScheduleRuns(t *testing.T) {
	cfg := Defaults()
	fs, err := faults.Generate(9, cfg.Cores, 20, 15, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fs
	res := runFaulty(t, cfg, 150, 26)
	if int64(res.Jobs) != res.Completed+res.Expired+res.DroppedJobs {
		t.Fatal("accounting broken under generated faults")
	}
}

func TestFaultFreeRunUnchangedByFaultsNil(t *testing.T) {
	plain := runFaulty(t, Defaults(), 170, 27)
	empty, err := faults.New(nil, Defaults().Cores)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Defaults()
	cfg.Faults = empty
	withEmpty := runFaulty(t, cfg, 170, 27)
	if fmt.Sprintf("%+v", plain) != fmt.Sprintf("%+v", withEmpty) {
		t.Fatalf("an empty fault schedule changed the run:\n%+v\n%+v", plain, withEmpty)
	}
	if plain.SurvivingCapacity != 1 {
		t.Fatalf("fault-free surviving capacity = %v, want 1", plain.SurvivingCapacity)
	}
}

func TestConfigValidationTable(t *testing.T) {
	badFaults := func(c *Config) {
		fs, err := faults.New([]faults.Spec{{At: 1, Kind: faults.CoreFail, Core: 20}}, 32)
		if err != nil {
			t.Fatal(err)
		}
		c.Faults = fs // built for 32 cores, config has 16
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }, "cores must be positive"},
		{"negative budget", func(c *Config) { c.PowerBudget = -5 }, "power budget must be positive"},
		{"bad QGE", func(c *Config) { c.QGE = 1.5 }, "QGE must lie in [0,1]"},
		{"zero quantum", func(c *Config) { c.QuantumSec = 0 }, "quantum must be positive"},
		{"zero counter", func(c *Config) { c.CounterTrigger = 0 }, "counter trigger must be positive"},
		{"core mismatch faults", badFaults, "fault schedule"},
	}
	for _, tc := range cases {
		cfg := Defaults()
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !containsStr(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
