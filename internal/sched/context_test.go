package sched

import (
	"context"
	"testing"
	"time"
)

// TestRunnerContextCancelPartialResult verifies that cancelling a run
// mid-simulation returns promptly with a partial Result flagged Cancelled,
// instead of spinning the event loop to completion.
func TestRunnerContextCancelPartialResult(t *testing.T) {
	cfg := Defaults()
	spec := shortSpec(200, 7)
	spec.Duration = 1e6 // effectively unbounded; only cancellation ends it
	r, err := NewRunner(cfg, NewFCFS(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	r.SetContext(ctx)
	start := time.Now()
	res, err := r.Run()
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cancelled run must not error, got %v", err)
	}
	if !res.Cancelled {
		t.Fatal("Result.Cancelled not set")
	}
	if res.CancelReason != context.Canceled.Error() {
		t.Fatalf("CancelReason = %q, want %q", res.CancelReason, context.Canceled.Error())
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; must stop within a bounded number of events", elapsed)
	}
	if res.SimTime <= 0 || res.SimTime >= 1e6 {
		t.Fatalf("partial SimTime = %v, want a mid-run value", res.SimTime)
	}
	if res.Jobs == 0 {
		t.Fatal("partial result carries no jobs; accounting lost")
	}
}

// TestRunnerDeadlinePartialResult verifies deadline-bounded runs report the
// deadline as the cancel reason.
func TestRunnerDeadlinePartialResult(t *testing.T) {
	cfg := Defaults()
	spec := shortSpec(200, 8)
	spec.Duration = 1e6
	r, err := NewRunner(cfg, NewFCFS(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	r.SetContext(ctx)
	res, err := r.Run()
	if err != nil {
		t.Fatalf("deadline-bounded run must not error, got %v", err)
	}
	if !res.Cancelled || res.CancelReason != context.DeadlineExceeded.Error() {
		t.Fatalf("got Cancelled=%v reason=%q, want deadline exceeded",
			res.Cancelled, res.CancelReason)
	}
}

// TestRunnerNoContextCompletes pins the default: no context, no Cancelled.
func TestRunnerNoContextCompletes(t *testing.T) {
	r, err := NewRunner(Defaults(), NewFCFS(), shortSpec(100, 9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cancelled || res.CancelReason != "" {
		t.Fatalf("uncancelled run reports Cancelled=%v reason=%q", res.Cancelled, res.CancelReason)
	}
}
