package sched

import (
	"math"

	"goodenough/internal/quality"
)

// Marginal-quality shed helpers, exported for live use. The simulator's
// shedLoad and the serving tier's overload governor (internal/governor)
// must rank victims the same way — quality mass per unit of scarce
// capacity, cheapest first — so the ordering and its tie-breaks live here
// rather than inline in either caller.

// RequiredRate returns the processing rate a job needs to finish its
// remaining work inside the time window left to its deadline. A closed or
// negative window returns +Inf: the job cannot be saved at any rate.
func RequiredRate(remaining, window float64) float64 {
	if window <= 0 {
		return math.Inf(1)
	}
	return remaining / window
}

// MarginalPerRate returns the quality mass a job would contribute if served
// to target, per unit of required processing rate — the "profit density"
// the shed ordering maximizes by dropping the lowest first. Jobs whose
// required rate is infinite or non-positive score zero: they yield nothing
// per unit of capacity and are shed before anything that can still pay.
func MarginalPerRate(f quality.Function, target, remaining, window float64) float64 {
	req := RequiredRate(remaining, window)
	if math.IsInf(req, 1) || req <= 0 {
		return 0
	}
	return f.Value(target) / req
}

// CompareShed is the total order over shed/cut candidates: ascending
// marginal quality (cheapest victim first), ties broken by ascending ID so
// equal runs shed identically. NaN marginals sort below every real value
// (an undefined quality yield is the cheapest possible victim), keeping
// the order lexicographic on (isNaN, marginal, ID) — total and transitive
// for any float input, which the fuzz harness verifies. The simulator
// never produces NaN here (invalid rates map to marginal 0), so this
// classing changes no golden.
func CompareShed(aMarginal float64, aID int, bMarginal float64, bID int) int {
	aNaN, bNaN := math.IsNaN(aMarginal), math.IsNaN(bMarginal)
	switch {
	case aNaN && !bNaN:
		return -1
	case bNaN && !aNaN:
		return 1
	}
	switch {
	case aMarginal < bMarginal:
		return -1
	case aMarginal > bMarginal:
		return 1
	case aID < bID:
		return -1
	case aID > bID:
		return 1
	default:
		return 0
	}
}
