package sched

import (
	"math"
	"testing"

	"goodenough/internal/job"
	"goodenough/internal/machine"
	"goodenough/internal/power"
	"goodenough/internal/workload"
)

func shortSpec(rate float64, seed uint64) workload.Spec {
	s := workload.DefaultSpec(rate, seed)
	s.Duration = 20
	return s
}

func TestDefaultsMatchPaper(t *testing.T) {
	c := Defaults()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Cores != 16 || c.PowerBudget != 320 || c.QGE != 0.9 ||
		c.CriticalLoad != 154 || c.QuantumSec != 0.5 || c.CounterTrigger != 8 {
		t.Fatalf("defaults differ from §IV-B: %+v", c)
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.PowerBudget = 0 },
		func(c *Config) { c.Model.A = -1 },
		func(c *Config) { c.Quality = nil },
		func(c *Config) { c.QGE = 1.5 },
		func(c *Config) { c.QGE = -0.1 },
		func(c *Config) { c.QuantumSec = 0 },
		func(c *Config) { c.CounterTrigger = 0 },
		func(c *Config) { c.RateWindow = 0 },
	}
	for i, mut := range mutations {
		c := Defaults()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewRunnerValidation(t *testing.T) {
	spec := shortSpec(100, 1)
	if _, err := NewRunner(Config{}, NewFCFS(), spec); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewRunner(Defaults(), nil, spec); err == nil {
		t.Error("nil policy accepted")
	}
	bad := spec
	bad.ArrivalRate = 0
	if _, err := NewRunner(Defaults(), NewFCFS(), bad); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() Result {
		r, err := NewRunner(Defaults(), NewFCFS(), shortSpec(150, 7))
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Quality != b.Quality || a.Energy != b.Energy || a.Completed != b.Completed {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
}

func TestEveryJobAccounted(t *testing.T) {
	for _, mk := range []func() Policy{
		func() Policy { return NewFCFS() },
		func() Policy { return NewFDFS() },
		func() Policy { return NewLJF() },
		func() Policy { return NewSJF() },
	} {
		p := mk()
		r, err := NewRunner(Defaults(), p, shortSpec(180, 3))
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Jobs == 0 {
			t.Fatalf("%s: no jobs generated", p.Name())
		}
		if int64(res.Jobs) != res.Completed+res.Expired {
			t.Fatalf("%s: %d jobs but %d completed + %d expired",
				p.Name(), res.Jobs, res.Completed, res.Expired)
		}
		if r.Monitor().Jobs() != res.Jobs {
			t.Fatalf("%s: monitor saw %d of %d jobs", p.Name(), r.Monitor().Jobs(), res.Jobs)
		}
	}
}

func TestQualityWithinBounds(t *testing.T) {
	for _, rate := range []float64{80, 150, 220} {
		r, _ := NewRunner(Defaults(), NewFDFS(), shortSpec(rate, 5))
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Quality < 0 || res.Quality > 1 {
			t.Fatalf("rate %v: quality %v out of range", rate, res.Quality)
		}
		if res.Energy < 0 {
			t.Fatalf("rate %v: negative energy", rate)
		}
	}
}

func TestEnergyNeverExceedsBudgetEnvelope(t *testing.T) {
	// Dynamic power is capped at H, so energy <= H · simTime.
	cfg := Defaults()
	r, _ := NewRunner(cfg, NewFCFS(), shortSpec(250, 9))
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy > cfg.PowerBudget*res.SimTime*(1+1e-9) {
		t.Fatalf("energy %v exceeds budget envelope %v", res.Energy, cfg.PowerBudget*res.SimTime)
	}
}

func TestLightLoadHighQuality(t *testing.T) {
	// At λ=50 a 16-core/320 W server is far under capacity; FDFS should
	// complete essentially everything.
	r, _ := NewRunner(Defaults(), NewFDFS(), shortSpec(50, 11))
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Runs-at-slowest-speed stretches each job over its whole window, so
	// Poisson bursts still queue briefly; ~0.98 is the expected level.
	if res.Quality < 0.95 {
		t.Fatalf("light-load FDFS quality = %v, want >= 0.95", res.Quality)
	}
}

func TestOverloadDegradesQuality(t *testing.T) {
	light, _ := NewRunner(Defaults(), NewFDFS(), shortSpec(100, 13))
	heavy, _ := NewRunner(Defaults(), NewFDFS(), shortSpec(260, 13))
	lr, err := light.Run()
	if err != nil {
		t.Fatal(err)
	}
	hr, err := heavy.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hr.Quality >= lr.Quality {
		t.Fatalf("overload did not degrade quality: %v vs %v", hr.Quality, lr.Quality)
	}
}

func TestSJFWorstLJFBad(t *testing.T) {
	// Fig. 3a: LJF and SJF have the worst quality under load because they
	// perturb the deadline order.
	runPolicy := func(p Policy) float64 {
		r, _ := NewRunner(Defaults(), p, shortSpec(200, 17))
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Quality
	}
	fdfs := runPolicy(NewFDFS())
	sjf := runPolicy(NewSJF())
	ljf := runPolicy(NewLJF())
	if sjf >= fdfs || ljf >= fdfs {
		t.Fatalf("demand-ordered baselines should underperform FDFS: fdfs=%v ljf=%v sjf=%v",
			fdfs, ljf, sjf)
	}
}

func TestFDFSBeatsFCFSUnderRandomDeadlines(t *testing.T) {
	// Fig. 4: with random service intervals FCFS degrades badly while FDFS
	// respects deadline order.
	spec := shortSpec(200, 19)
	spec.RandomWindow = true
	rFCFS, _ := NewRunner(Defaults(), NewFCFS(), spec)
	a, err := rFCFS.Run()
	if err != nil {
		t.Fatal(err)
	}
	rFDFS, _ := NewRunner(Defaults(), NewFDFS(), spec)
	b, err := rFDFS.Run()
	if err != nil {
		t.Fatal(err)
	}
	if b.Quality <= a.Quality {
		t.Fatalf("FDFS (%v) should beat FCFS (%v) with random deadlines", b.Quality, a.Quality)
	}
}

func TestDiscreteLadderRespected(t *testing.T) {
	cfg := Defaults()
	ladder, err := power.UniformLadder(3.2, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Ladder = ladder
	r, _ := NewRunner(cfg, NewFCFS(), shortSpec(150, 23))
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality <= 0 || res.Energy <= 0 {
		t.Fatalf("discrete run degenerate: %+v", res)
	}
}

func TestTriggerString(t *testing.T) {
	if TriggerQuantum.String() != "quantum" || TriggerIdleCore.String() != "idle-core" ||
		TriggerCounter.String() != "counter" {
		t.Fatal("trigger strings wrong")
	}
	if Trigger(9).String() != "trigger(9)" {
		t.Fatal("unknown trigger string wrong")
	}
}

func TestOrderString(t *testing.T) {
	names := map[Order]string{OrderFCFS: "FCFS", OrderFDFS: "FDFS", OrderLJF: "LJF",
		OrderSJF: "SJF", Order(9): "order(9)"}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d.String() = %q", int(o), o.String())
		}
	}
}

func TestSimTimeCoversAllDeadlines(t *testing.T) {
	spec := shortSpec(100, 29)
	r, _ := NewRunner(Defaults(), NewFCFS(), spec)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The run must last at least until the final deadline window.
	if res.SimTime < spec.Duration-1 {
		t.Fatalf("simulation ended early at %v", res.SimTime)
	}
}

// modePolicyProbe verifies the runner's mode accounting plumbing.
type modePolicyProbe struct {
	flip bool
}

func (m *modePolicyProbe) Name() string { return "probe" }
func (m *modePolicyProbe) Reset()       {}
func (m *modePolicyProbe) Schedule(ctx *Context) {
	// Alternate modes every call; drop all waiting jobs on the floor by
	// assigning nothing (they expire).
	m.flip = !m.flip
	ctx.SetMode(m.flip)
}

func TestModeAccounting(t *testing.T) {
	r, err := NewRunner(Defaults(), &modePolicyProbe{}, shortSpec(100, 31))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ModeSwitches == 0 {
		t.Fatal("alternating policy recorded no mode switches")
	}
	if res.AESFraction <= 0 || res.AESFraction >= 1 {
		t.Fatalf("AES fraction = %v, want interior value", res.AESFraction)
	}
	// Probe never schedules anything: every job must expire with quality 0.
	if res.Completed != 0 {
		t.Fatalf("probe completed %d jobs", res.Completed)
	}
	if res.Quality != 0 {
		t.Fatalf("probe quality = %v, want 0", res.Quality)
	}
}

func TestWaitingJobsExpireWithZeroQuality(t *testing.T) {
	// Covered by the probe above, but check the monitor arithmetic too.
	r, _ := NewRunner(Defaults(), &modePolicyProbe{}, shortSpec(100, 37))
	res, _ := r.Run()
	if int64(res.Jobs) != res.Expired {
		t.Fatalf("jobs=%d expired=%d", res.Jobs, res.Expired)
	}
}

func TestSpeedStatisticsPopulated(t *testing.T) {
	r, _ := NewRunner(Defaults(), NewFCFS(), shortSpec(150, 41))
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgSpeed <= 0 {
		t.Fatalf("avg speed = %v", res.AvgSpeed)
	}
	if res.SpeedVariance < 0 {
		t.Fatalf("speed variance = %v", res.SpeedVariance)
	}
	if math.IsNaN(res.AvgSpeed) || math.IsNaN(res.SpeedVariance) {
		t.Fatal("NaN speed statistics")
	}
}

func TestSingleJobBaselineSpeedSelection(t *testing.T) {
	// Direct unit test of speedFor: a 300-unit job with a 0.15 s window
	// needs exactly 2 GHz; the default share (20 W) supports exactly 2 GHz.
	cfg := Defaults()
	p := NewFCFS()
	ctx := &Context{Now: 0, Cfg: &cfg}
	j := job.New(1, 0, 0.15, 300)
	if got := p.speedFor(ctx, j, 2.0); math.Abs(got-2) > 1e-9 {
		t.Fatalf("speedFor = %v, want 2", got)
	}
	// A 900-unit job in the same window needs 6 GHz but is capped at 2.
	heavy := job.New(2, 0, 0.15, 900)
	if got := p.speedFor(ctx, heavy, 2.0); math.Abs(got-2) > 1e-9 {
		t.Fatalf("capped speedFor = %v, want 2", got)
	}
	// Expired job: runs at the cap (and will truncate immediately).
	late := job.New(3, 0, 0.15, 100)
	ctx.Now = 0.2
	if got := p.speedFor(ctx, late, 2.0); got != 2.0 {
		t.Fatalf("expired speedFor = %v, want cap", got)
	}
}

func TestSingleJobDiscreteSpeedSelection(t *testing.T) {
	cfg := Defaults()
	ladder, _ := power.NewLadder([]float64{1, 2, 3})
	cfg.Ladder = ladder
	p := NewFCFS()
	ctx := &Context{Now: 0, Cfg: &cfg}
	// Needs 1.4 GHz → rounds up to 2 within the 2.5 cap.
	j := job.New(1, 0, 0.15, 210)
	if got := p.speedFor(ctx, j, 2.5); got != 2 {
		t.Fatalf("discrete speedFor = %v, want 2", got)
	}
	// Needs 2.8 GHz → up is 3 > cap 2.5 → falls to Down(2.5) = 2.
	h := job.New(2, 0, 0.15, 420)
	if got := p.speedFor(ctx, h, 2.5); got != 2 {
		t.Fatalf("discrete capped speedFor = %v, want 2", got)
	}
}

func TestResultExposesScheduler(t *testing.T) {
	r, _ := NewRunner(Defaults(), NewLJF(), shortSpec(100, 43))
	res, _ := r.Run()
	if res.Scheduler != "LJF" {
		t.Fatalf("scheduler name = %q", res.Scheduler)
	}
}

func TestRunnerAccessors(t *testing.T) {
	r, _ := NewRunner(Defaults(), NewFCFS(), shortSpec(100, 47))
	if r.Server() == nil || r.Monitor() == nil {
		t.Fatal("accessors returned nil")
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	prof := r.SpeedVarianceOverall()
	if prof.Duration() <= 0 {
		t.Fatal("overall speed profile empty")
	}
}

var _ = machine.ReasonCompleted // keep the import for FinalizeFunc docs

func TestNewRunnerFromSource(t *testing.T) {
	spec := shortSpec(150, 51)
	jobs := workload.NewGenerator(spec).All()
	tr := workload.Record(jobs, &spec, "")
	src, err := workload.NewReplayer(tr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunnerFromSource(Defaults(), NewFDFS(), src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != len(jobs) {
		t.Fatalf("replayed %d of %d jobs", res.Jobs, len(jobs))
	}
	// Must match the generator-driven run exactly.
	r2, _ := NewRunner(Defaults(), NewFDFS(), spec)
	direct, err := r2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality != direct.Quality || res.Energy != direct.Energy {
		t.Fatalf("trace run diverged from generator run")
	}
}

func TestNewRunnerFromSourceValidation(t *testing.T) {
	if _, err := NewRunnerFromSource(Defaults(), NewFCFS(), nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewRunnerFromSource(Defaults(), nil, &workload.Replayer{}); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := NewRunnerFromSource(Config{}, NewFCFS(), &workload.Replayer{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestResponseTimeMetrics(t *testing.T) {
	r, _ := NewRunner(Defaults(), NewFDFS(), shortSpec(120, 61))
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanResponse <= 0 {
		t.Fatalf("mean response = %v", res.MeanResponse)
	}
	// Responses cannot exceed the 150 ms window (completed jobs finish by
	// their deadlines).
	if res.P95Response > 0.150+1e-9 {
		t.Fatalf("p95 response %v exceeds the window", res.P95Response)
	}
	if res.MeanResponse > res.P95Response {
		t.Fatal("mean above p95")
	}
}

func TestFinishTimesStamped(t *testing.T) {
	spec := shortSpec(100, 63)
	jobs := workload.NewGenerator(spec).All()
	tr := workload.Record(jobs, &spec, "")
	src, _ := workload.NewReplayer(tr)
	r, _ := NewRunnerFromSource(Defaults(), NewFDFS(), src)
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	// Source jobs were re-minted; verify through a fresh replay instead:
	// the property is already asserted via MeanResponse > 0 above, so here
	// just assert determinism of response metrics.
	src2, _ := workload.NewReplayer(tr)
	r2, _ := NewRunnerFromSource(Defaults(), NewFDFS(), src2)
	res2, _ := r2.Run()
	if res2.MeanResponse <= 0 || res2.P95Response < res2.MeanResponse-1e-9 {
		t.Fatalf("response metrics inconsistent: %+v", res2)
	}
}

func TestEnergyMatchesSpeedMoments(t *testing.T) {
	// With P = a·s^2, total energy must equal a·∫s²dt summed over cores,
	// and ∫s²dt = (variance + mean²)·duration of the busy profile. This
	// pins the energy integrator to the speed statistics exactly.
	for _, mk := range []func() Policy{
		func() Policy { return NewFCFS() },
		func() Policy { return NewFDFS() },
	} {
		r, _ := NewRunner(Defaults(), mk(), shortSpec(170, 71))
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		busy := r.Server().BusySpeedProfile()
		integral := (busy.Variance() + busy.Mean()*busy.Mean()) * busy.Duration()
		want := Defaults().Model.A * integral
		if math.Abs(res.Energy-want) > 1e-6*math.Max(want, 1) {
			t.Fatalf("%s: energy %v != a·∫s²dt = %v", res.Scheduler, res.Energy, want)
		}
	}
}

func TestStressHighRate(t *testing.T) {
	// λ = 1000 req/s on the default machine: deep overload, but the run
	// must terminate with consistent accounting.
	spec := workload.DefaultSpec(1000, 73)
	spec.Duration = 3
	r, _ := NewRunner(Defaults(), NewFDFS(), spec)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Jobs) != res.Completed+res.Expired {
		t.Fatalf("accounting broken under stress: %+v", res)
	}
	if res.Quality < 0 || res.Quality > 1 {
		t.Fatalf("quality out of range: %v", res.Quality)
	}
}

func TestStressManyCores(t *testing.T) {
	cfg := Defaults()
	cfg.Cores = 256
	cfg.PowerBudget = 5120 // keep 20 W/core
	spec := workload.DefaultSpec(2000, 79)
	spec.Duration = 2
	r, err := NewRunner(cfg, NewFDFS(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality < 0.9 {
		t.Fatalf("256 cores at proportional budget should cope: quality %v", res.Quality)
	}
}

func TestStressTinyWindows(t *testing.T) {
	spec := workload.DefaultSpec(100, 83)
	spec.Duration = 3
	spec.Window = 0.005 // 5 ms: nearly impossible deadlines
	r, _ := NewRunner(Defaults(), NewFDFS(), spec)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Jobs) != res.Completed+res.Expired {
		t.Fatal("accounting broken with tiny windows")
	}
}

func TestRateEstimator(t *testing.T) {
	r, _ := NewRunner(Defaults(), NewFCFS(), shortSpec(100, 87))
	// Empty window.
	if got := r.estimateRate(0.5); got != 0 {
		t.Fatalf("empty estimator = %v", got)
	}
	// Feed arrivals at a known rate: 20 arrivals over 2 s → 10/s.
	for i := 0; i < 20; i++ {
		r.noteArrival(float64(i) * 0.1)
	}
	got := r.estimateRate(2.0)
	if math.Abs(got-10) > 1.5 {
		t.Fatalf("estimated rate = %v, want ~10", got)
	}
	// Old arrivals age out of the window.
	got = r.estimateRate(100)
	if got != 0 {
		t.Fatalf("stale arrivals not trimmed: %v", got)
	}
}

// triggerProbe records which trigger kinds reach the policy.
type triggerProbe struct {
	inner Policy
	seen  map[Trigger]int
}

func (p *triggerProbe) Name() string { return "trigger-probe" }
func (p *triggerProbe) Reset()       { p.inner.Reset() }
func (p *triggerProbe) Schedule(ctx *Context) {
	p.seen[ctx.Trigger]++
	p.inner.Schedule(ctx)
}

func TestAllTriggerKindsFire(t *testing.T) {
	probe := &triggerProbe{inner: NewFDFS(), seen: map[Trigger]int{}}
	r, _ := NewRunner(Defaults(), probe, shortSpec(150, 91))
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	for _, trig := range []Trigger{TriggerQuantum, TriggerIdleCore, TriggerCounter} {
		if probe.seen[trig] == 0 {
			t.Fatalf("trigger %v never fired (saw %v)", trig, probe.seen)
		}
	}
	// Quantum ticks: roughly duration/0.5.
	if probe.seen[TriggerQuantum] < 30 {
		t.Fatalf("only %d quantum ticks in a 20 s run", probe.seen[TriggerQuantum])
	}
}

func TestModeEnergySplit(t *testing.T) {
	// The probe alternates AES/BQ but schedules nothing: zero energy, but
	// the split must still sum to the total for a real policy.
	r, _ := NewRunner(Defaults(), NewFDFS(), shortSpec(150, 95))
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AESEnergy+res.BQEnergy-res.Energy) > 1e-6*math.Max(res.Energy, 1) {
		t.Fatalf("mode energies %v + %v != total %v", res.AESEnergy, res.BQEnergy, res.Energy)
	}
	// FDFS reports BQ always: all energy lands there.
	if res.AESEnergy != 0 {
		t.Fatalf("always-BQ policy recorded AES energy %v", res.AESEnergy)
	}
}
