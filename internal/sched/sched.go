// Package sched wires the simulation together: it owns the event loop, the
// waiting queue, the quality monitor, and the machine, and delegates every
// scheduling decision to a pluggable Policy.
//
// The paper's three triggering events (§III-E) drive the loop:
//
//   - quantum triggering: a periodic tick (default 500 ms);
//   - idle-core triggering: a core drains its plan (we also treat an
//     arrival into a machine with idle cores as an idle-core trigger, since
//     the core *is* idle when the job arrives — without this, a lightly
//     loaded system would sit on fresh jobs until the next quantum, long
//     past their 150 ms deadlines);
//   - counter triggering: the waiting queue reaches a threshold (default 8).
//
// On every trigger the runner advances the machine to the current time
// (finalizing completed and expired jobs into the quality monitor), drops
// expired jobs from the waiting queue, and invokes the policy.
package sched

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"

	"goodenough/internal/faults"
	"goodenough/internal/job"
	"goodenough/internal/machine"
	"goodenough/internal/metrics"
	"goodenough/internal/obs"
	"goodenough/internal/power"
	"goodenough/internal/quality"
	"goodenough/internal/sim"
	"goodenough/internal/stats"
	"goodenough/internal/workload"
)

// Config carries every knob of a simulation run. Zero values are filled by
// Defaults.
type Config struct {
	// Cores is the number of DVFS cores (paper default 16).
	Cores int
	// PowerBudget is H, the total dynamic power budget in watts (320).
	PowerBudget float64
	// Model is the per-core power curve (P = 5·s²).
	Model power.Model
	// Quality is the concave quality function (Eq. 1, c = 0.003).
	Quality quality.Function
	// QGE is the user-specified good-enough quality (0.9).
	QGE float64
	// CriticalLoad is the arrival rate (req/s) separating light from heavy
	// load for the hybrid power distribution (paper: 154).
	CriticalLoad float64
	// QuantumSec is the quantum trigger period (0.5 s).
	QuantumSec float64
	// CounterTrigger is the waiting-queue length trigger (8).
	CounterTrigger int
	// RateWindow is the sliding window (seconds) for the online arrival-
	// rate estimate used by the hybrid policy (2 s).
	RateWindow float64
	// Ladder, when non-nil, enables discrete speed scaling.
	Ladder *power.Ladder
	// PerCoreModels, when non-empty, makes the machine heterogeneous: one
	// power model per core (big.LITTLE platforms). Length must equal
	// Cores; Model is then ignored except as a fallback. Discrete ladders
	// are not supported together with heterogeneity.
	PerCoreModels []power.Model
	// Faults, when non-nil, injects the schedule's timed fault events
	// (core failure/recovery, budget cap/restore, stuck DVFS) into the
	// run. The runner degrades gracefully: orphaned jobs are requeued
	// (the audited exception to the no-migration rule), the power
	// distribution recomputes over surviving cores, and admission control
	// sheds the lowest-marginal-quality waiting jobs when the surviving
	// capacity cannot carry the offered load.
	Faults *faults.Schedule
}

// ModelFor returns the power model governing core i.
func (c *Config) ModelFor(i int) power.Model {
	if len(c.PerCoreModels) == c.Cores && i >= 0 && i < len(c.PerCoreModels) {
		return c.PerCoreModels[i]
	}
	return c.Model
}

// Heterogeneous reports whether per-core models are in effect.
func (c *Config) Heterogeneous() bool { return len(c.PerCoreModels) == c.Cores && c.Cores > 0 }

// Defaults returns the paper's simulation setup (§IV-B).
func Defaults() Config {
	return Config{
		Cores:          16,
		PowerBudget:    320,
		Model:          power.Default(),
		Quality:        quality.NewExponential(0.003, 1000),
		QGE:            0.9,
		CriticalLoad:   154,
		QuantumSec:     0.5,
		CounterTrigger: 8,
		RateWindow:     2,
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("sched: cores must be positive, got %d", c.Cores)
	}
	if c.PowerBudget <= 0 {
		return fmt.Errorf("sched: power budget must be positive, got %v", c.PowerBudget)
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.Quality == nil {
		return fmt.Errorf("sched: quality function required")
	}
	if c.QGE < 0 || c.QGE > 1 {
		return fmt.Errorf("sched: QGE must lie in [0,1], got %v", c.QGE)
	}
	if c.QuantumSec <= 0 {
		return fmt.Errorf("sched: quantum must be positive, got %v", c.QuantumSec)
	}
	if c.CounterTrigger <= 0 {
		return fmt.Errorf("sched: counter trigger must be positive, got %d", c.CounterTrigger)
	}
	if c.RateWindow <= 0 {
		return fmt.Errorf("sched: rate window must be positive, got %v", c.RateWindow)
	}
	if len(c.PerCoreModels) > 0 {
		if len(c.PerCoreModels) != c.Cores {
			return fmt.Errorf("sched: %d per-core models for %d cores",
				len(c.PerCoreModels), c.Cores)
		}
		for i, m := range c.PerCoreModels {
			if err := m.Validate(); err != nil {
				return fmt.Errorf("sched: core %d model: %w", i, err)
			}
		}
		if c.Ladder != nil {
			return fmt.Errorf("sched: discrete ladders are not supported with heterogeneous cores")
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(c.Cores); err != nil {
			return fmt.Errorf("sched: fault schedule: %w", err)
		}
	}
	return nil
}

// Trigger tells the policy why it is being invoked.
type Trigger int

const (
	// TriggerQuantum is the periodic tick.
	TriggerQuantum Trigger = iota
	// TriggerIdleCore fires when a core drains (or a job arrives while a
	// core is idle).
	TriggerIdleCore
	// TriggerCounter fires when the waiting queue reaches the threshold.
	TriggerCounter
	// TriggerFault fires after a fault event (core failure/recovery,
	// budget change, stuck DVFS) so the policy can recompute the
	// distribution over the surviving machine immediately.
	TriggerFault
)

// String implements fmt.Stringer.
func (t Trigger) String() string {
	switch t {
	case TriggerQuantum:
		return "quantum"
	case TriggerIdleCore:
		return "idle-core"
	case TriggerCounter:
		return "counter"
	case TriggerFault:
		return "fault"
	default:
		return fmt.Sprintf("trigger(%d)", int(t))
	}
}

// Context is the view a policy gets at each trigger.
type Context struct {
	// Now is the simulation time in seconds.
	Now float64
	// Trigger says why the policy is running.
	Trigger Trigger
	// Cfg is the run configuration.
	Cfg *Config
	// Budget is the machine's *current* total power cap in watts. It
	// equals Cfg.PowerBudget on a fault-free run and drops below it while
	// a facility-level budget cap is active; policies must size their
	// distributions against this, not the nominal budget.
	Budget float64
	// Server is the machine; the policy replans core queues through it.
	Server *machine.Server
	// Waiting is the queue of arrived, unassigned jobs. The policy pops
	// the jobs it wants to place; whatever remains waits for the next
	// trigger (and is finalized with zero quality if it expires).
	Waiting *job.FIFO
	// Monitor is the cumulative achieved-quality accumulator over all
	// finalized jobs — the paper's online quality monitoring.
	Monitor *quality.Accumulator
	// ArrivalRate is the sliding-window estimate of the current request
	// rate in req/s, used by the hybrid power distribution.
	ArrivalRate float64
	// Finalize records a job the policy drops (e.g. sweeping expired jobs
	// out of core queues) into the quality monitor.
	Finalize machine.FinalizeFunc
	// Observer is the run's observability sink (nil when none attached).
	// Policies emit their decision events — job assignment, cutting,
	// distribution switches — through obs.Emit(ctx.Observer, ...).
	Observer obs.Observer

	// Modes receives the policy's AES/BQ mode reports (SetMode). The
	// single-machine Runner implements it; fleet simulations plug one sink
	// per machine so per-node AES time is accounted independently.
	Modes ModeSink
}

// ModeSink accounts execution-mode reports from mode-switching policies:
// the AES-time fraction (Fig. 1) and the AES↔BQ switch count.
type ModeSink interface {
	RecordMode(now float64, aes bool)
}

// SetMode lets mode-switching policies (GE) report whether they are in AES
// mode so the run can account the AES-time fraction (Fig. 1) and count
// mode switches.
func (c *Context) SetMode(aes bool) {
	if c.Modes != nil {
		c.Modes.RecordMode(c.Now, aes)
	}
}

// Policy makes all scheduling decisions.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Schedule reacts to a trigger: assign waiting jobs, set core plans.
	Schedule(ctx *Context)
	// Reset clears cross-run state (assignment cursors, mode latches).
	Reset()
}

// Result summarizes one simulation run.
type Result struct {
	Scheduler   string
	ArrivalRate float64
	// Quality is Σf(processed)/Σf(demand) over every generated job.
	Quality float64
	// Energy is the total dynamic energy in joules.
	Energy float64
	// AESFraction is the fraction of simulated time spent in AES mode
	// (meaningful for GE-family policies; 0 for always-BQ policies).
	AESFraction float64
	// AvgSpeed and SpeedVariance are busy-time-weighted core-speed moments
	// (Fig. 6).
	AvgSpeed      float64
	SpeedVariance float64
	// Jobs is the number of requests generated; Completed reached their
	// targets, Expired were dropped at deadlines (on core or in queue).
	Jobs      int
	Completed int64
	Expired   int64
	// CutJobs counts jobs finalized with a target below their demand.
	CutJobs int64
	// ModeSwitches counts AES↔BQ transitions.
	ModeSwitches int64
	// SimTime is the span actually simulated.
	SimTime float64
	// MeanResponse and P95Response summarize the response times (finish −
	// release, seconds) of completed jobs — an extension metric; the paper
	// fixes the window at 150 ms and reports only quality/energy.
	MeanResponse float64
	P95Response  float64
	// AESEnergy and BQEnergy split the total energy by the execution mode
	// active while it was consumed — the cost of the compensation policy
	// made visible. They sum to Energy (for policies that report a mode).
	AESEnergy float64
	BQEnergy  float64
	// Fault-injection outcomes (zero on fault-free runs). CoreFailures
	// counts injected core failures; RequeuedJobs counts jobs orphaned by
	// a failure and returned to the waiting queue (the audited migration
	// exception); DroppedJobs counts jobs shed by admission control when
	// the surviving capacity could not carry the offered load.
	CoreFailures int64
	RequeuedJobs int64
	DroppedJobs  int64
	// SurvivingCapacity is the time-weighted fraction of core-time that
	// was healthy: 1.0 on a fault-free run, lower while cores are down.
	SurvivingCapacity float64
	// Cancelled reports that the run was interrupted by its context
	// (SetContext) before the event queue drained. Every other field then
	// describes the partial run up to the interruption point — jobs still
	// in flight are simply absent from the counts.
	Cancelled bool
	// CancelReason says why a cancelled run stopped: "context canceled"
	// for an explicit cancellation, "context deadline exceeded" for a
	// deadline. Empty when Cancelled is false.
	CancelReason string
}

// Runner executes one workload against one policy.
type Runner struct {
	cfg    Config
	policy Policy
	gen    workload.Source
	engine *sim.Engine
	server *machine.Server
	wait   job.FIFO
	acc    *quality.Accumulator

	arrivalTimes []float64 // ring of recent arrivals for rate estimation
	genDone      bool
	jobs         int
	cutJobs      int64
	queueExpired int64
	responses    []float64 // completed jobs' response times

	// nextArrival is the one job whose KindArrival event is outstanding —
	// the kernel carries no payloads, so the runner holds the pointer.
	nextArrival *job.Job
	// faultEvents is the materialized fault schedule; KindCoreFail etc.
	// events carry an index (sim.Event.Ref) into this table.
	faultEvents []faults.Event

	// Fault accounting.
	requeued int64
	shed     int64

	// Mode accounting.
	modeAES      bool
	modeSet      bool
	modeSince    float64
	aesTime      float64
	modeSwitches int64
	lastEnergy   float64
	aesEnergy    float64
	bqEnergy     float64

	// Per-core pending idle events (cancel-on-replan); 0 means none.
	idleEvents []sim.EventID

	// pctx is the Context handed to the policy, reused across triggers so
	// the per-quantum path allocates nothing; shedCands is the shedLoad
	// scratch. Policies must not retain the Context past Schedule.
	pctx      Context
	shedCands []shedCandidate
	// finalizeFn is the bound finalize method, captured once — taking
	// r.finalize as a value allocates a closure every time otherwise.
	finalizeFn machine.FinalizeFunc

	lastEventTime float64

	timeline *metrics.Timeline
	obs      obs.Observer

	// decisions receives one structured record per consequential choice
	// (admission, shed, mode switch, replan); nil costs one branch.
	decisions obs.DecisionSink
	// spans wraps the run and each policy invocation in wall-clock trace
	// spans; nil costs one branch. spanParent is the caller's span (e.g.
	// the serving tier's request span) so the scheduler's work attaches
	// to the request's trace tree.
	spans      *obs.SpanBus
	spanParent obs.SpanContext
	runSpanCtx obs.SpanContext
}

// SetObserver attaches a structured-event sink to every layer of the run:
// the sim kernel, the machine's cores, and the runner itself (which also
// hands it to the policy through Context.Observer). Call before Run; pass
// nil to detach. With no observer the emission paths cost one branch and
// zero allocations.
func (r *Runner) SetObserver(o obs.Observer) {
	r.obs = o
	r.engine.SetObserver(o)
	r.server.SetObserver(o)
}

// SetTimeline attaches a recorder that samples quality, power, load, and
// mode at every delivered event (thinned by the timeline's own interval).
// Call before Run.
func (r *Runner) SetTimeline(t *metrics.Timeline) { r.timeline = t }

// SetDecisionSink attaches a sink for structured decision records —
// admissions, sheds, mode switches, DVFS replans — emitted alongside
// (not instead of) the event stream. Call before Run; pass nil to
// detach. With no sink the decision paths cost one branch and zero
// allocations.
func (r *Runner) SetDecisionSink(s obs.DecisionSink) { r.decisions = s }

// SetSpans attaches a span bus so the run and every policy invocation
// are timed as wall-clock trace spans under parent (typically the
// serving tier's request span; pass the zero SpanContext to root a new
// trace). Call before Run; a nil bus costs one branch per invocation.
func (r *Runner) SetSpans(bus *obs.SpanBus, parent obs.SpanContext) {
	r.spans = bus
	r.spanParent = parent
}

// SetContext attaches a cancellation context to the run: when ctx is
// cancelled or its deadline passes, Run stops within a bounded number of
// events and returns a *partial* Result with Cancelled set — not an error —
// so callers always get the metrics accumulated up to the interruption.
// Call before Run; pass nil to detach.
func (r *Runner) SetContext(ctx context.Context) { r.engine.SetContext(ctx) }

// recordSample feeds the attached timeline, if any.
func (r *Runner) recordSample(now float64) {
	if r.timeline == nil {
		return
	}
	power := 0.0
	speeds := make([]float64, len(r.server.Cores))
	for i, c := range r.server.Cores {
		speeds[i] = c.CurrentSpeed()
		power += r.cfg.ModelFor(c.Index).Power(speeds[i])
	}
	r.timeline.Record(metrics.Sample{
		Time:    now,
		Quality: r.acc.Quality(),
		Power:   power,
		Load:    r.server.TotalLoad(),
		Waiting: r.wait.Len(),
		AES:     r.modeAES,
		Speeds:  speeds,
		Energy:  r.server.Energy(),
	})
}

// NewRunner builds a runner; cfg and the policy are validated eagerly.
func NewRunner(cfg Config, policy Policy, spec workload.Spec) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("sched: policy required")
	}
	return newRunner(cfg, policy, workload.NewGenerator(spec))
}

// NewRunnerFromSource builds a runner over an arbitrary job source — e.g. a
// workload.Replayer over a recorded or imported trace.
func NewRunnerFromSource(cfg Config, policy Policy, src workload.Source) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("sched: policy required")
	}
	if src == nil {
		return nil, fmt.Errorf("sched: job source required")
	}
	return newRunner(cfg, policy, src)
}

func newRunner(cfg Config, policy Policy, src workload.Source) (*Runner, error) {
	var server *machine.Server
	var err error
	if cfg.Heterogeneous() {
		server, err = machine.NewHeterogeneousServer(cfg.PerCoreModels)
	} else {
		server, err = machine.NewServer(cfg.Cores, cfg.Model)
	}
	if err != nil {
		return nil, err
	}
	r := &Runner{
		cfg:        cfg,
		policy:     policy,
		gen:        src,
		server:     server,
		acc:        quality.NewAccumulator(cfg.Quality),
		idleEvents: make([]sim.EventID, cfg.Cores),
	}
	server.SetBudget(cfg.PowerBudget)
	r.finalizeFn = r.finalize
	r.engine = sim.NewEngine(r.handle)
	return r, nil
}

// Run executes the simulation to completion and returns the result.
func (r *Runner) Run() (Result, error) {
	r.policy.Reset()
	// Prime the pump: first arrival, first quantum tick, and the full
	// fault schedule. Fault events get priority -1 so a failure at time t
	// is observed before any arrival or quantum tick at the same instant.
	if err := r.scheduleNextArrival(); err != nil {
		return Result{}, err
	}
	if _, err := r.engine.Schedule(r.cfg.QuantumSec, sim.KindQuantum); err != nil {
		return Result{}, err
	}
	r.faultEvents = r.cfg.Faults.Events()
	for i, fe := range r.faultEvents {
		kind, ok := simFaultKind(fe.Kind)
		if !ok {
			return Result{}, fmt.Errorf("sched: fault schedule has unmapped kind %v", fe.Kind)
		}
		if _, err := r.engine.ScheduleWithPriority(fe.At, kind, i, -1); err != nil {
			return Result{}, err
		}
	}
	runSpan := r.spans.Start("sched.run", obs.SpanSched, r.spanParent)
	r.runSpanCtx = runSpan.Context()
	var cancelReason string
	if err := r.engine.Run(); err != nil {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			runSpan.SetNote("error")
			r.spans.Finish(runSpan)
			return Result{}, err
		}
		// Context interruption is a normal outcome for an online service:
		// report the partial run rather than discarding it.
		cancelReason = err.Error()
	}
	// Close out mode accounting.
	r.setMode(r.engine.Now(), r.modeAES) // flush the open interval
	obs.Emit(r.obs, obs.Event{Time: r.engine.Now(), Type: obs.EventRunEnd,
		Core: -1, Job: -1, Value: r.engine.Now()})
	if r.timeline != nil {
		// Make sure the trajectory's endpoint survives thinning.
		r.timeline.Flush()
	}
	busy := r.server.BusySpeedProfile()
	simTime := r.engine.Now()
	res := Result{
		Scheduler:     r.policy.Name(),
		Quality:       r.acc.Quality(),
		Energy:        r.server.Energy(),
		AvgSpeed:      busy.Mean(),
		SpeedVariance: busy.Variance(),
		Jobs:          r.jobs,
		Completed:     r.server.Completed(),
		Expired:       r.server.Expired() + r.queueExpired,
		CutJobs:       r.cutJobs,
		ModeSwitches:  r.modeSwitches,
		SimTime:       simTime,
	}
	if simTime > 0 && r.modeSet {
		res.AESFraction = r.aesTime / simTime
	}
	res.MeanResponse = stats.Mean(r.responses)
	res.P95Response = stats.Quantile(r.responses, 0.95)
	res.AESEnergy = r.aesEnergy
	res.BQEnergy = r.bqEnergy
	res.CoreFailures = r.server.Failures()
	res.RequeuedJobs = r.requeued
	res.DroppedJobs = r.shed
	res.SurvivingCapacity = r.server.SurvivingCapacity()
	if cancelReason != "" {
		res.Cancelled = true
		res.CancelReason = cancelReason
	}
	runSpan.SetValue(res.Quality)
	runSpan.SetAux(float64(r.engine.Processed))
	if cancelReason != "" {
		runSpan.SetNote("cancelled")
	}
	r.spans.Finish(runSpan)
	return res, nil
}

// simFaultKind maps a fault event kind onto its sim queue kind.
func simFaultKind(k faults.Kind) (sim.Kind, bool) {
	switch k {
	case faults.CoreFail:
		return sim.KindCoreFail, true
	case faults.CoreRecover:
		return sim.KindCoreRecover, true
	case faults.BudgetCap, faults.BudgetRestore:
		return sim.KindBudgetChange, true
	case faults.SpeedStuck:
		return sim.KindSpeedStuck, true
	case faults.SpeedFree:
		return sim.KindSpeedFree, true
	default:
		return 0, false
	}
}

// handle is the event dispatcher.
func (r *Runner) handle(e *sim.Event) error {
	now := e.Time
	r.lastEventTime = now
	// Bring the machine to the present; completions/expiries feed the
	// quality monitor. Energy consumed over the advanced interval belongs
	// to the mode that was active while it ran.
	if err := r.server.Advance(now, r.finalizeFn); err != nil {
		return err
	}
	if delta := r.server.Energy() - r.lastEnergy; delta > 0 {
		if r.modeAES {
			r.aesEnergy += delta
		} else {
			r.bqEnergy += delta
		}
		r.lastEnergy = r.server.Energy()
	}
	// Expire waiting jobs whose deadlines have passed unserved.
	r.expireWaiting(now)

	switch e.Kind {
	case sim.KindArrival:
		j := r.nextArrival
		r.nextArrival = nil
		r.wait.Push(j)
		r.jobs++
		r.noteArrival(now)
		obs.Emit(r.obs, obs.Event{Time: now, Type: obs.EventJobArrive,
			Core: -1, Job: j.ID, Value: j.Demand, Aux: j.Deadline})
		if r.decisions != nil {
			// Every arrival is an (implicit) admission: shedLoad may revoke
			// it later, but the record of what the policy saw at admit time
			// is what counterfactual replay needs.
			r.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionAdmit,
				Machine: -1, Job: j.ID, Load: r.estimateRate(now),
				Budget: r.server.Budget(), Alts: r.wait.Len(), Action: "queue"})
		}
		// Every job gets a deadline event so expiry is observed promptly.
		if _, err := r.engine.Schedule(j.Deadline, sim.KindDeadline); err != nil {
			return err
		}
		if err := r.scheduleNextArrival(); err != nil {
			return err
		}
		if r.wait.Len() >= r.cfg.CounterTrigger {
			r.invoke(now, TriggerCounter)
		} else if r.anyIdleCore() {
			r.invoke(now, TriggerIdleCore)
		}

	case sim.KindQuantum:
		r.invoke(now, TriggerQuantum)
		if !r.finished() {
			if _, err := r.engine.Schedule(now+r.cfg.QuantumSec, sim.KindQuantum); err != nil {
				return err
			}
		}

	case sim.KindCoreIdle:
		core := e.Core
		r.idleEvents[core] = 0
		if r.server.Cores[core].Idle() && r.server.Cores[core].Healthy() {
			r.invoke(now, TriggerIdleCore)
		}

	case sim.KindDeadline:
		// Machine advance + expireWaiting already finalized whatever was
		// due; nothing further. The event exists to make expiry timely.

	case sim.KindCoreFail:
		fe := r.faultEvents[e.Ref]
		obs.Emit(r.obs, fe.Obs())
		r.failCore(now, fe.Core)
		r.invoke(now, TriggerFault)

	case sim.KindCoreRecover:
		fe := r.faultEvents[e.Ref]
		obs.Emit(r.obs, fe.Obs())
		if fe.Core >= 0 && fe.Core < len(r.server.Cores) {
			r.server.Cores[fe.Core].Recover(now)
		}
		r.invoke(now, TriggerFault)

	case sim.KindBudgetChange:
		fe := r.faultEvents[e.Ref]
		fev := fe.Obs()
		if fe.Kind == faults.BudgetCap {
			r.server.SetBudget(fe.Watts)
		} else {
			r.server.SetBudget(r.cfg.PowerBudget)
			fev.Value = r.cfg.PowerBudget
		}
		obs.Emit(r.obs, fev)
		r.invoke(now, TriggerFault)

	case sim.KindSpeedStuck:
		fe := r.faultEvents[e.Ref]
		obs.Emit(r.obs, fe.Obs())
		if fe.Core >= 0 && fe.Core < len(r.server.Cores) {
			r.server.Cores[fe.Core].SetStuck(fe.Speed)
		}
		r.invoke(now, TriggerFault)

	case sim.KindSpeedFree:
		fe := r.faultEvents[e.Ref]
		obs.Emit(r.obs, fe.Obs())
		if fe.Core >= 0 && fe.Core < len(r.server.Cores) {
			r.server.Cores[fe.Core].SetStuck(0)
		}
		r.invoke(now, TriggerFault)
	}
	r.recordSample(now)
	return nil
}

// failCore halts a core and requeues its orphaned jobs — the one audited
// exception to the no-migration rule. Each orphan's Requeues counter is
// bumped so the invariant checker can verify that re-bindings happen only
// at failure instants; orphans already past their deadline are finalized
// instead of requeued.
func (r *Runner) failCore(now float64, core int) {
	if core < 0 || core >= len(r.server.Cores) {
		return
	}
	c := r.server.Cores[core]
	if !c.Healthy() {
		return
	}
	orphans := c.Fail(now)
	if id := r.idleEvents[core]; id != 0 {
		r.engine.Cancel(id)
		r.idleEvents[core] = 0
	}
	for _, e := range orphans {
		j := e.Job
		if j.Done() || j.Expired(now) {
			// Nothing left to run elsewhere; finalize in place.
			j.State = job.StateFinalized
			j.Finish = now
			r.queueExpired++
			r.acc.Add(j.Processed, j.Demand)
			obs.Emit(r.obs, obs.Event{Time: now, Type: obs.EventJobExpire,
				Core: core, Job: j.ID, Value: j.Processed, Aux: j.Demand})
			continue
		}
		j.Core = -1
		j.State = job.StateWaiting
		j.Requeues++
		r.requeued++
		r.wait.Push(j)
		obs.Emit(r.obs, obs.Event{Time: now, Type: obs.EventJobRequeue,
			Core: core, Job: j.ID, Value: j.Remaining()})
	}
}

// invoke runs the policy and refreshes per-core idle events. While the
// machine is degraded (failed cores or a capped budget), admission control
// sheds unservable waiting jobs first so the policy plans a feasible load.
func (r *Runner) invoke(now float64, trig Trigger) {
	if r.cfg.Faults != nil && r.degraded() {
		r.shedLoad(now)
	}
	obs.Emit(r.obs, obs.Event{Time: now, Type: obs.EventBatch, Core: -1, Job: -1,
		Value: float64(r.wait.Len()), Aux: float64(trig)})
	if trig == TriggerFault && r.decisions != nil {
		// Every fault-triggered invocation replans DVFS under the new
		// capacity (fewer cores, capped budget, or a stuck speed).
		r.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionReplan,
			Machine: -1, Job: -1, Load: float64(r.wait.Len()),
			Budget: r.server.Budget(), Action: "fault"})
	}
	sp := r.spans.Start("sched.invoke", obs.SpanSched, r.runSpanCtx)
	sp.SetValue(float64(r.wait.Len()))
	r.pctx = Context{
		Now:         now,
		Trigger:     trig,
		Cfg:         &r.cfg,
		Budget:      r.server.Budget(),
		Server:      r.server,
		Waiting:     &r.wait,
		Monitor:     r.acc,
		ArrivalRate: r.estimateRate(now),
		Finalize:    r.finalizeFn,
		Observer:    r.obs,
		Modes:       r,
	}
	r.policy.Schedule(&r.pctx)
	r.spans.Finish(sp)
	r.refreshIdleEvents(now)
}

// degraded reports whether the machine is currently below its nominal
// capacity: any core down or the budget capped.
func (r *Runner) degraded() bool {
	if r.server.Budget() < r.cfg.PowerBudget {
		return true
	}
	return r.server.Healthy() < len(r.server.Cores)
}

// shedCandidate pairs a waiting job with its marginal quality for the
// shedLoad ordering.
type shedCandidate struct {
	j        *job.Job
	marginal float64
}

// shedLoad is the graceful-degradation admission control: when the
// surviving cores under the current budget cannot sustain the aggregate
// required processing rate, waiting jobs are dropped lowest marginal
// quality first (quality mass gained per unit of processing rate consumed)
// until the residual load fits. Only unassigned jobs are shed — work
// already planned on a core is never revoked, preserving no-migration.
func (r *Runner) shedLoad(now float64) {
	waiting := r.wait.Peek()
	if len(waiting) == 0 {
		return
	}
	// Capacity: every healthy core running at its equal share of the
	// current cap. This is the sustainable aggregate rate; WF can shift
	// power between cores but not create more of it.
	alive := r.server.Healthy()
	capacity := 0.0
	if alive > 0 {
		share := r.server.Budget() / float64(alive)
		for _, c := range r.server.Cores {
			if c.Healthy() {
				capacity += power.Rate(r.cfg.ModelFor(c.Index).Speed(share))
			}
		}
	}
	// Demand: the required rate of everything planned plus everything
	// waiting, each job needing Remaining/Window units per second.
	need := 0.0
	rate := func(j *job.Job) float64 {
		return RequiredRate(j.Remaining(), j.Deadline-now)
	}
	for _, c := range r.server.Cores {
		for _, j := range c.Queue() {
			need += rate(j)
		}
	}
	for _, j := range waiting {
		need += rate(j)
	}
	if need <= capacity {
		return
	}
	// Shed lowest marginal quality first: the quality the job would add if
	// fully served, per unit of required rate. Ties break by ID so equal
	// runs shed identically. The candidate buffer is Runner-owned scratch
	// so repeated degraded-mode triggers don't allocate.
	cands := r.shedCands[:0]
	for _, j := range waiting {
		m := MarginalPerRate(r.cfg.Quality, j.Target, j.Remaining(), j.Deadline-now)
		cands = append(cands, shedCandidate{j: j, marginal: m})
	}
	r.shedCands = cands
	slices.SortStableFunc(cands, func(a, b shedCandidate) int {
		return CompareShed(a.marginal, a.j.ID, b.marginal, b.j.ID)
	})
	for _, c := range cands {
		if need <= capacity {
			break
		}
		j := r.wait.PopJob(c.j)
		if j == nil {
			continue
		}
		if r.decisions != nil {
			// Record the inputs the shed was decided on: aggregate demand
			// vs. surviving capacity, this job's marginal quality, and how
			// many candidates were in the running.
			r.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionShed,
				Machine: -1, Job: j.ID, Load: need, Capacity: capacity,
				Marginal: c.marginal, Budget: r.server.Budget(),
				Alts: len(cands), Action: "shed"})
		}
		need -= rate(j)
		j.State = job.StateFinalized
		j.Finish = now
		r.shed++
		r.acc.Add(j.Processed, j.Demand)
		obs.Emit(r.obs, obs.Event{Time: now, Type: obs.EventJobDrop,
			Core: -1, Job: j.ID, Value: j.Processed, Aux: j.Demand})
	}
}

// finalize records a finished or dropped job into the quality monitor.
// CutJobs counts only deliberate cuts (target below demand, set by LF
// cutting or Quality-OPT), not deadline truncation.
func (r *Runner) finalize(j *job.Job, reason machine.Reason) {
	r.acc.Add(j.Processed, j.Demand)
	if j.Target < j.Demand-1e-9 {
		r.cutJobs++
	}
	if reason == machine.ReasonCompleted {
		r.responses = append(r.responses, j.Finish-j.Release)
		obs.Emit(r.obs, obs.Event{Time: j.Finish, Type: obs.EventJobComplete,
			Core: j.Core, Job: j.ID, Value: j.Processed, Aux: j.Finish - j.Release})
	} else {
		obs.Emit(r.obs, obs.Event{Time: j.Finish, Type: obs.EventJobExpire,
			Core: j.Core, Job: j.ID, Value: j.Processed, Aux: j.Demand})
	}
}

// expireWaiting finalizes queued jobs whose deadline has passed without
// ever being assigned — pure quality loss.
func (r *Runner) expireWaiting(now float64) {
	for {
		j := r.wait.PopExpired(now)
		if j == nil {
			return
		}
		j.State = job.StateFinalized
		j.Finish = j.Deadline
		r.queueExpired++
		r.acc.Add(j.Processed, j.Demand)
		obs.Emit(r.obs, obs.Event{Time: now, Type: obs.EventJobExpire,
			Core: -1, Job: j.ID, Value: j.Processed, Aux: j.Demand})
	}
}

func (r *Runner) scheduleNextArrival() error {
	if r.genDone {
		return nil
	}
	j := r.gen.Next()
	if j == nil {
		r.genDone = true
		return nil
	}
	if _, err := r.engine.Schedule(j.Release, sim.KindArrival); err != nil {
		// A malformed source emitted an out-of-order release; surface it
		// as a diagnosable error instead of crashing the process.
		return fmt.Errorf("sched: job source emitted job %d out of order: %w", j.ID, err)
	}
	// At most one arrival event is ever outstanding, so the runner holds
	// the job itself; the handler picks it up when the event fires.
	r.nextArrival = j
	return nil
}

// finished reports whether the run can stop scheduling quantum ticks: no
// future arrivals, nothing waiting, every core idle.
func (r *Runner) finished() bool {
	if !r.genDone || r.wait.Len() > 0 {
		return false
	}
	for _, c := range r.server.Cores {
		if !c.Idle() {
			return false
		}
	}
	return true
}

func (r *Runner) anyIdleCore() bool {
	for _, c := range r.server.Cores {
		if c.Idle() && c.Healthy() {
			return true
		}
	}
	return false
}

// refreshIdleEvents re-arms a KindCoreIdle event per busy core at its
// projected drain time. Failed cores have no plan and get no events.
func (r *Runner) refreshIdleEvents(now float64) {
	for i, c := range r.server.Cores {
		if id := r.idleEvents[i]; id != 0 {
			r.engine.Cancel(id)
			r.idleEvents[i] = 0
		}
		if c.Idle() || !c.Healthy() {
			continue
		}
		at := c.ProjectedIdle(now)
		if at < now {
			at = now
		}
		// Tiny epsilon so the advance at the event time crosses the
		// completion boundary.
		id, err := r.engine.ScheduleCore(at+1e-9, sim.KindCoreIdle, i)
		if err == nil {
			r.idleEvents[i] = id
		}
	}
}

// noteArrival and estimateRate implement the sliding-window arrival-rate
// estimator for the hybrid distribution's light/heavy decision.
func (r *Runner) noteArrival(now float64) {
	r.arrivalTimes = append(r.arrivalTimes, now)
	r.trimWindow(now)
}

func (r *Runner) trimWindow(now float64) {
	cutoff := now - r.cfg.RateWindow
	i := 0
	for i < len(r.arrivalTimes) && r.arrivalTimes[i] < cutoff {
		i++
	}
	if i > 0 {
		r.arrivalTimes = append(r.arrivalTimes[:0], r.arrivalTimes[i:]...)
	}
}

func (r *Runner) estimateRate(now float64) float64 {
	r.trimWindow(now)
	window := math.Min(r.cfg.RateWindow, math.Max(now, 1e-3))
	return float64(len(r.arrivalTimes)) / window
}

// RecordMode implements ModeSink.
func (r *Runner) RecordMode(now float64, aes bool) { r.setMode(now, aes) }

// setMode accumulates AES time and counts switches.
func (r *Runner) setMode(now float64, aes bool) {
	if r.modeSet {
		if r.modeAES {
			r.aesTime += now - r.modeSince
		}
		if aes != r.modeAES {
			r.modeSwitches++
			obs.Emit(r.obs, obs.Event{Time: now, Type: obs.EventModeSwitch,
				Core: -1, Job: -1, Flag: aes})
			if r.decisions != nil {
				action := "bq"
				if aes {
					action = "aes"
				}
				r.decisions.ObserveDecision(obs.Decision{Time: now, Kind: obs.DecisionModeSwitch,
					Machine: -1, Job: -1, Score: r.acc.Quality(),
					Budget: r.server.Budget(), Action: action})
			}
		}
	} else {
		// Declare the initial mode so exporters can anchor their tracks.
		obs.Emit(r.obs, obs.Event{Time: now, Type: obs.EventModeSwitch,
			Core: -1, Job: -1, Flag: aes})
	}
	r.modeAES = aes
	r.modeSet = true
	r.modeSince = now
}

// Monitor exposes the quality accumulator for tests.
func (r *Runner) Monitor() *quality.Accumulator { return r.acc }

// EventsProcessed reports how many kernel events the run delivered —
// the numerator of the events/sec throughput metric in the benchmark
// suite (scripts/bench_baseline.sh).
func (r *Runner) EventsProcessed() int64 { return r.engine.Processed }

// Server exposes the machine for tests.
func (r *Runner) Server() *machine.Server { return r.server }

// SpeedVarianceOverall returns the total (incl. idle) speed variance —
// used by the Fig. 6 ablation alongside the busy-only variance.
func (r *Runner) SpeedVarianceOverall() stats.TimeWeighted {
	return r.server.TotalSpeedProfile()
}
