package sched

import (
	"fmt"

	"goodenough/internal/job"
	"goodenough/internal/machine"
	"goodenough/internal/obs"
	"goodenough/internal/power"
)

// Order selects which waiting job a single-job baseline hands to an idle
// core (§IV-A1).
type Order int

const (
	// OrderFCFS picks the earliest release time.
	OrderFCFS Order = iota
	// OrderFDFS picks the earliest deadline (First-Deadline First-Served).
	OrderFDFS
	// OrderLJF picks the largest service demand.
	OrderLJF
	// OrderSJF picks the smallest service demand.
	OrderSJF
)

// String implements fmt.Stringer.
func (o Order) String() string {
	switch o {
	case OrderFCFS:
		return "FCFS"
	case OrderFDFS:
		return "FDFS"
	case OrderLJF:
		return "LJF"
	case OrderSJF:
		return "SJF"
	default:
		return fmt.Sprintf("order(%d)", int(o))
	}
}

// SingleJob is the family of classic baselines: whenever a core is idle,
// hand it one job from the waiting queue (chosen by Order), power it from
// an equal share of the budget, and run it at the slowest speed that
// finishes by the deadline — or at the share's maximum speed if that is
// not enough (the job is then truncated at its deadline).
type SingleJob struct {
	order Order
}

// NewSingleJob builds a baseline with the given queue order.
func NewSingleJob(order Order) *SingleJob { return &SingleJob{order: order} }

// NewFCFS is First-Come First-Served.
func NewFCFS() *SingleJob { return NewSingleJob(OrderFCFS) }

// NewFDFS is First-Deadline First-Served.
func NewFDFS() *SingleJob { return NewSingleJob(OrderFDFS) }

// NewLJF is Longest-Job First.
func NewLJF() *SingleJob { return NewSingleJob(OrderLJF) }

// NewSJF is Shortest-Job First.
func NewSJF() *SingleJob { return NewSingleJob(OrderSJF) }

// Name implements Policy.
func (s *SingleJob) Name() string { return s.order.String() }

// Reset implements Policy.
func (s *SingleJob) Reset() {}

// Schedule implements Policy.
func (s *SingleJob) Schedule(ctx *Context) {
	cfg := ctx.Cfg
	ctx.SetMode(false) // these baselines never approximate

	// Equal-Sharing of the *current* budget over the surviving cores.
	budget := ctx.Budget
	if budget <= 0 {
		budget = cfg.PowerBudget
	}
	alive := 0
	for _, c := range ctx.Server.Cores {
		if c.Healthy() {
			alive++
		}
	}
	if alive == 0 {
		return
	}
	share := budget / float64(alive)

	for _, c := range ctx.Server.Cores {
		c.DropExpired(ctx.Now, ctx.Finalize)
		if !c.Healthy() || !c.Idle() {
			continue
		}
		j := s.pop(ctx.Waiting)
		if j == nil {
			return // queue empty; later cores have nothing to take either
		}
		j.Core = c.Index
		j.State = job.StateAssigned
		obs.Emit(ctx.Observer, obs.Event{Time: ctx.Now, Type: obs.EventJobAssign,
			Core: c.Index, Job: j.ID, Value: j.Remaining(), Aux: j.Deadline})
		maxSpeed := cfg.ModelFor(c.Index).Speed(share)
		speed := s.speedFor(ctx, j, maxSpeed)
		c.SetPlan([]machine.Entry{{Job: j, Speed: speed}})
	}
}

// speedFor picks the slowest speed finishing j by its deadline, clamped to
// the core's power share; with a ladder, the discrete level just above the
// needed speed (or the highest affordable level below it).
func (s *SingleJob) speedFor(ctx *Context, j *job.Job, maxSpeed float64) float64 {
	window := j.Deadline - ctx.Now
	if window <= 0 {
		return maxSpeed // hopeless; truncates immediately
	}
	needed := power.SpeedForRate(j.Remaining() / window)
	speed := needed
	if speed > maxSpeed {
		speed = maxSpeed
	}
	if ctx.Cfg.Ladder != nil {
		if up, ok := ctx.Cfg.Ladder.Up(needed); ok && up <= maxSpeed {
			return up
		}
		if down, ok := ctx.Cfg.Ladder.Down(maxSpeed); ok {
			return down
		}
		return 0
	}
	return speed
}

// pop removes the queue's best job under the configured order.
func (s *SingleJob) pop(q *job.FIFO) *job.Job {
	switch s.order {
	case OrderFCFS:
		return q.PopBest(func(j *job.Job) float64 { return j.Release })
	case OrderFDFS:
		return q.PopBest(func(j *job.Job) float64 { return j.Deadline })
	case OrderLJF:
		return q.PopBest(func(j *job.Job) float64 { return -j.Demand })
	case OrderSJF:
		return q.PopBest(func(j *job.Job) float64 { return j.Demand })
	default:
		return q.PopBest(func(j *job.Job) float64 { return j.Release })
	}
}
