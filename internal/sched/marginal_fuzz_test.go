package sched

import (
	"math"
	"testing"
)

// FuzzCompareShed checks the exported shed comparator — shared by the
// simulator's shedLoad and the live governor's cut ordering — is a total
// order over arbitrary float marginals, including NaN and ±Inf: it never
// panics, is antisymmetric, agrees with the ID tie-break on equal or
// incomparable marginals, and is transitive on every sampled triple.
func FuzzCompareShed(f *testing.F) {
	f.Add(0.5, 1, 0.7, 2, 0.9, 3)
	f.Add(math.NaN(), 1, 0.0, 2, math.Inf(1), 3)
	f.Add(0.0, 5, 0.0, 5, 0.0, 5)
	f.Fuzz(func(t *testing.T, m1 float64, id1 int, m2 float64, id2 int, m3 float64, id3 int) {
		c12 := CompareShed(m1, id1, m2, id2)
		c21 := CompareShed(m2, id2, m1, id1)
		if c12 != -c21 {
			t.Fatalf("not antisymmetric: cmp(a,b)=%d cmp(b,a)=%d (m1=%v id1=%d m2=%v id2=%d)",
				c12, c21, m1, id1, m2, id2)
		}
		if CompareShed(m1, id1, m1, id1) != 0 {
			t.Fatalf("not reflexive for m=%v id=%d", m1, id1)
		}
		// Identical IDs with incomparable marginals (NaN) must still
		// resolve to 0 — total, not partial.
		if c12 == 0 && id1 != id2 {
			t.Fatalf("distinct IDs compared equal: (m=%v id=%d) vs (m=%v id=%d)",
				m1, id1, m2, id2)
		}
		// Transitivity over the sampled triple.
		c23 := CompareShed(m2, id2, m3, id3)
		c13 := CompareShed(m1, id1, m3, id3)
		if c12 < 0 && c23 < 0 && c13 >= 0 {
			t.Fatalf("not transitive: a<b, b<c, but cmp(a,c)=%d", c13)
		}
		if c12 > 0 && c23 > 0 && c13 <= 0 {
			t.Fatalf("not transitive: a>b, b>c, but cmp(a,c)=%d", c13)
		}
	})
}
