package sim

import "testing"

// The BenchmarkKernel* suite pins the event-kernel hot path: scheduling,
// delivery, and cancellation, in steady state. Each benchmark warms the
// engine up before ResetTimer so slab/heap growth is excluded and the
// measured region is the true steady state — the acceptance bar is
// 0 allocs/op. scripts/bench_baseline.sh turns the output into
// BENCH_BASELINE.json; `make bench-check` gates CI against it.

// BenchmarkKernelScheduleDeliver measures the fundamental cycle: one
// Schedule immediately followed by one delivery, on a queue kept at a
// realistic standing depth (64 pending events, the order of one server's
// deadline+idle backlog).
func BenchmarkKernelScheduleDeliver(b *testing.B) {
	eng := NewEngine(func(*Event) error { return nil })
	const depth = 64
	t := 1.0
	for i := 0; i < depth; i++ {
		t += 0.25
		if _, err := eng.Schedule(t, KindUser); err != nil {
			b.Fatal(err)
		}
	}
	// Warm one full cycle so free-list/slab growth is outside the timer.
	for i := 0; i < depth; i++ {
		t += 0.25
		eng.Schedule(t, KindUser)
		if _, err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := eng.Processed
	for i := 0; i < b.N; i++ {
		t += 0.25
		eng.Schedule(t, KindUser)
		if _, err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(eng.Processed-start)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkKernelChurn measures a burst pattern: schedule a batch of 128
// events at jittered future times, then drain it — the shape of an
// arrival burst followed by a quantum of deliveries.
func BenchmarkKernelChurn(b *testing.B) {
	eng := NewEngine(func(*Event) error { return nil })
	const batch = 128
	t := 1.0
	churn := func() {
		for i := 0; i < batch; i++ {
			// Deterministic jitter so heap paths vary but runs compare.
			t += float64((i*37)%11) * 0.01
			if _, err := eng.Schedule(t+float64((i*53)%17)*0.1, KindUser); err != nil {
				b.Fatal(err)
			}
		}
		for eng.Pending() > 0 {
			if _, err := eng.Step(); err != nil {
				b.Fatal(err)
			}
		}
		if eng.Now() > t {
			t = eng.Now()
		}
	}
	churn() // warm the slab
	b.ReportAllocs()
	b.ResetTimer()
	start := eng.Processed
	for i := 0; i < b.N; i++ {
		churn()
	}
	b.ReportMetric(float64(eng.Processed-start)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkKernelCancel measures the cancel-heavy pattern the scheduler
// actually exhibits: per-core idle events are re-armed (cancel + schedule)
// at every trigger, so most scheduled events die before delivery.
func BenchmarkKernelCancel(b *testing.B) {
	eng := NewEngine(func(*Event) error { return nil })
	const cores = 16
	t := 1.0
	pending := make([]EventID, cores)
	rearm := func() {
		for c := 0; c < cores; c++ {
			if pending[c] != 0 {
				eng.Cancel(pending[c])
			}
			id, err := eng.ScheduleCore(t+1+float64(c)*0.01, KindCoreIdle, c)
			if err != nil {
				b.Fatal(err)
			}
			pending[c] = id
		}
		t += 0.5
		eng.Schedule(t, KindQuantum)
		if _, err := eng.Step(); err != nil { // deliver the quantum tick
			b.Fatal(err)
		}
	}
	rearm() // warm
	b.ReportAllocs()
	b.ResetTimer()
	start := eng.Processed
	for i := 0; i < b.N; i++ {
		rearm()
	}
	b.ReportMetric(float64(eng.Processed-start)/b.Elapsed().Seconds(), "events/sec")
}
