package sim

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	var got []float64
	var eng *Engine
	eng = NewEngine(func(e *Event) error {
		got = append(got, e.Time)
		return nil
	})
	times := []float64{0.5, 0.1, 0.9, 0.3, 0.3, 0.0}
	for _, tm := range times {
		if _, err := eng.Schedule(tm, KindUser); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events delivered out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Fatalf("delivered %d events, want %d", len(got), len(times))
	}
	if eng.Processed != int64(len(times)) {
		t.Fatalf("Processed = %d", eng.Processed)
	}
}

func TestSimultaneousPriority(t *testing.T) {
	// At the same timestamp, arrivals (kind 0) must precede quantum ticks
	// (kind 1) which precede end (kind 4).
	var got []Kind
	eng := NewEngine(func(e *Event) error {
		got = append(got, e.Kind)
		return nil
	})
	eng.Schedule(1.0, KindEnd)
	eng.Schedule(1.0, KindQuantum)
	eng.Schedule(1.0, KindArrival)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Kind{KindArrival, KindQuantum, KindEnd}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", got, want)
		}
	}
}

func TestSimultaneousSeqStable(t *testing.T) {
	// Equal time and priority: insertion order wins. The core payload
	// carries the insertion index through delivery.
	var got []int
	eng := NewEngine(func(e *Event) error {
		got = append(got, e.Core)
		return nil
	})
	for i := 0; i < 10; i++ {
		eng.ScheduleCore(2.0, KindUser, i)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO tie-break violated: %v", got)
		}
	}
}

func TestScheduleInPastRejected(t *testing.T) {
	var eng *Engine
	eng = NewEngine(func(e *Event) error {
		if _, err := eng.Schedule(e.Time-0.5, KindUser); err == nil {
			return errors.New("past event accepted")
		}
		return nil
	})
	eng.Schedule(1.0, KindUser)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NaN time did not panic")
		}
	}()
	NewEngine(func(*Event) error { return nil }).Schedule(math.NaN(), KindUser)
}

func TestEndStopsRun(t *testing.T) {
	delivered := 0
	eng := NewEngine(func(e *Event) error {
		delivered++
		return nil
	})
	eng.Schedule(1.0, KindEnd)
	eng.Schedule(2.0, KindUser) // must never be delivered
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d events after end, want 1", delivered)
	}
	if eng.Now() != 1.0 {
		t.Fatalf("clock = %v, want 1.0", eng.Now())
	}
}

func TestHorizonStopsRun(t *testing.T) {
	delivered := 0
	eng := NewEngine(func(e *Event) error {
		delivered++
		return nil
	})
	eng.Horizon = 5
	eng.Schedule(1, KindUser)
	eng.Schedule(10, KindUser)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1 (horizon)", delivered)
	}
	if eng.Now() != 5 {
		t.Fatalf("clock = %v, want horizon 5", eng.Now())
	}
}

func TestHandlerErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	eng := NewEngine(func(e *Event) error { return boom })
	eng.Schedule(1, KindUser)
	eng.Schedule(2, KindUser)
	if err := eng.Run(); !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want boom", err)
	}
	if eng.Pending() != 1 {
		t.Fatalf("pending = %d after abort, want 1", eng.Pending())
	}
}

func TestCancel(t *testing.T) {
	var got []int
	eng := NewEngine(func(e *Event) error {
		got = append(got, e.Core)
		return nil
	})
	ev1, _ := eng.ScheduleCore(1, KindUser, 1)
	eng.ScheduleCore(2, KindUser, 2)
	ev3, _ := eng.ScheduleCore(3, KindUser, 3)
	if !eng.Cancel(ev1) {
		t.Fatal("cancel of pending event failed")
	}
	if eng.Cancel(ev1) {
		t.Fatal("double cancel should report false")
	}
	if eng.Cancel(0) {
		t.Fatal("cancel of the zero handle should report false")
	}
	if !eng.Cancel(ev3) {
		t.Fatal("cancel of last event failed")
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("delivered %v, want [2]", got)
	}
}

func TestCancelAfterDelivery(t *testing.T) {
	eng := NewEngine(func(e *Event) error { return nil })
	id, _ := eng.Schedule(1, KindUser)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Cancel(id) {
		t.Fatal("cancelling a delivered event should be a no-op")
	}
}

func TestCancelStaleHandleAfterSlotReuse(t *testing.T) {
	// A handle must stay dead even after its slab slot is recycled for a
	// new event — the generation counter is what prevents the ABA cancel.
	eng := NewEngine(func(e *Event) error { return nil })
	old, _ := eng.Schedule(1, KindUser)
	if err := eng.Run(); err != nil { // delivers and frees the slot
		t.Fatal(err)
	}
	fresh, _ := eng.Schedule(2, KindUser) // reuses the freed slot
	if eng.Cancel(old) {
		t.Fatal("stale handle cancelled a recycled slot")
	}
	if eng.Pending() != 1 {
		t.Fatalf("pending = %d, the fresh event must survive", eng.Pending())
	}
	if !eng.Cancel(fresh) {
		t.Fatal("fresh handle should cancel")
	}
}

func TestStep(t *testing.T) {
	count := 0
	eng := NewEngine(func(e *Event) error {
		count++
		return nil
	})
	eng.Schedule(1, KindUser)
	eng.Schedule(2, KindUser)
	ok, err := eng.Step()
	if err != nil || !ok {
		t.Fatalf("step 1: ok=%v err=%v", ok, err)
	}
	if count != 1 || eng.Now() != 1 {
		t.Fatalf("after step 1: count=%d now=%v", count, eng.Now())
	}
	if eng.PeekTime() != 2 {
		t.Fatalf("peek = %v, want 2", eng.PeekTime())
	}
	eng.Step()
	ok, err = eng.Step()
	if err != nil || ok {
		t.Fatalf("step on empty queue: ok=%v err=%v", ok, err)
	}
	if !math.IsInf(eng.PeekTime(), 1) {
		t.Fatal("peek on empty queue should be +Inf")
	}
}

func TestReentrantScheduling(t *testing.T) {
	// Handlers scheduling new events mid-run is the normal mode of
	// operation (arrival schedules next arrival).
	var got []float64
	var eng *Engine
	eng = NewEngine(func(e *Event) error {
		got = append(got, e.Time)
		if e.Time < 0.5 {
			if _, err := eng.Schedule(e.Time+0.1, KindUser); err != nil {
				return err
			}
		}
		return nil
	})
	eng.Schedule(0.1, KindUser)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) < 5 {
		t.Fatalf("chained arrivals truncated: %v", got)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("chained arrivals out of order: %v", got)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindArrival: "arrival", KindQuantum: "quantum", KindCoreIdle: "core-idle",
		KindDeadline: "deadline", KindEnd: "end", KindUser: "user", Kind(99): "kind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

// Property: any multiset of event times is delivered in sorted order.
func TestOrderingProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		var got []float64
		eng := NewEngine(func(e *Event) error {
			got = append(got, e.Time)
			return nil
		})
		for _, r := range raw {
			eng.Schedule(float64(r)/100, KindUser)
		}
		if err := eng.Run(); err != nil {
			return false
		}
		return sort.Float64sAreSorted(got) && len(got) == len(raw)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := NewEngine(func(e *Event) error { return nil })
		for k := 0; k < 1000; k++ {
			eng.Schedule(float64(k%97), KindUser)
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStepTimeBackwardsGuard(t *testing.T) {
	// Manually corrupting the queue ordering is not possible through the
	// public API, so exercise Step's normal paths instead: deliver two
	// events stepwise and confirm clock monotonicity.
	eng := NewEngine(func(e *Event) error { return nil })
	eng.Schedule(1, KindUser)
	eng.Schedule(2, KindUser)
	t1 := 0.0
	for {
		ok, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if eng.Now() < t1 {
			t.Fatal("clock went backwards")
		}
		t1 = eng.Now()
	}
}

func TestStepHandlerError(t *testing.T) {
	boom := errors.New("boom")
	eng := NewEngine(func(e *Event) error { return boom })
	eng.Schedule(1, KindUser)
	if _, err := eng.Step(); !errors.Is(err, boom) {
		t.Fatalf("Step error = %v", err)
	}
}

func TestPendingCount(t *testing.T) {
	eng := NewEngine(func(e *Event) error { return nil })
	if eng.Pending() != 0 {
		t.Fatal("fresh engine pending != 0")
	}
	eng.Schedule(1, KindUser)
	eng.Schedule(2, KindUser)
	if eng.Pending() != 2 {
		t.Fatalf("pending = %d", eng.Pending())
	}
	eng.Run()
	if eng.Pending() != 0 {
		t.Fatalf("pending after run = %d", eng.Pending())
	}
}
