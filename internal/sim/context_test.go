package sim

import (
	"context"
	"errors"
	"testing"
)

// TestContextCancelStopsRun verifies that cancelling the attached context
// stops delivery within the polling stride and surfaces ctx.Err().
func TestContextCancelStopsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	delivered := 0
	var e *Engine
	e = NewEngine(func(ev *Event) error {
		delivered++
		if delivered == 10 {
			cancel()
		}
		// Keep the queue alive forever: self-perpetuating ticks.
		_, err := e.Schedule(ev.Time+1, KindQuantum)
		return err
	})
	e.SetContext(ctx)
	for i := 0; i < 4; i++ {
		if _, err := e.Schedule(float64(i), KindQuantum); err != nil {
			t.Fatal(err)
		}
	}
	err := e.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if delivered < 10 || delivered > 10+ctxStride {
		t.Fatalf("delivered %d events; cancellation should stop within %d of the cancel",
			delivered, ctxStride)
	}
}

// TestContextPreCancelled verifies an already-dead context stops the run
// before any event is delivered.
func TestContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := NewEngine(func(ev *Event) error {
		t.Fatal("handler ran despite pre-cancelled context")
		return nil
	})
	e.SetContext(ctx)
	if _, err := e.Schedule(0, KindQuantum); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if e.Processed != 0 {
		t.Fatalf("processed %d events before noticing cancellation", e.Processed)
	}
}

// TestNilContextUnchanged verifies the default path (no context) drains the
// queue exactly as before.
func TestNilContextUnchanged(t *testing.T) {
	n := 0
	e := NewEngine(func(ev *Event) error { n++; return nil })
	for i := 0; i < 5; i++ {
		if _, err := e.Schedule(float64(i), KindQuantum); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("delivered %d events, want 5", n)
	}
}
