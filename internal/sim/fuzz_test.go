package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// This file checks the index-addressable 4-ary heap against an independent
// reference model built on container/heap — the implementation the kernel
// replaced. Both sides receive the identical operation stream (schedule,
// cancel, deliver) and must produce the identical delivery sequence under
// the (time, priority, seq) total order. The fuzz target explores
// cancel-heavy interleavings; TestKernelVsReferenceRandom replays fixed
// pseudorandom streams on every plain `go test` run.

// refEvent mirrors one scheduled event in the reference model.
type refEvent struct {
	time      float64
	priority  int
	seq       uint64
	kind      Kind
	core      int
	cancelled bool
}

// refHeap is a container/heap min-heap over (time, priority, seq).
type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// kernelHarness drives an Engine and the reference model in lockstep.
type kernelHarness struct {
	t    *testing.T
	eng  *Engine
	ref  refHeap
	live []struct {
		id EventID
		ev *refEvent
	}
	seq       uint64
	delivered Event // engine handler output, consumed by step()
	gotEvent  bool
}

func newKernelHarness(t *testing.T) *kernelHarness {
	h := &kernelHarness{t: t}
	h.eng = NewEngine(func(e *Event) error {
		h.delivered = *e
		h.gotEvent = true
		return nil
	})
	return h
}

// schedule adds one event to both sides. A negative priority argument means
// "use the kind default", matching Schedule/ScheduleCore.
func (h *kernelHarness) schedule(dt float64, kind Kind, core, priority int) {
	t := h.eng.Now() + dt
	var id EventID
	var err error
	prio := priority
	if priority < 0 {
		prio = int(kind)
		if core >= 0 {
			id, err = h.eng.ScheduleCore(t, kind, core)
		} else {
			core = -1 // plain Schedule carries no core payload
			id, err = h.eng.Schedule(t, kind)
		}
	} else {
		core = -1 // ScheduleWithPriority carries a ref, not a core
		id, err = h.eng.ScheduleWithPriority(t, kind, -1, priority)
	}
	if err != nil {
		h.t.Fatalf("schedule(%v, %v): %v", t, kind, err)
	}
	ev := &refEvent{time: t, priority: prio, seq: h.seq, kind: kind, core: core}
	h.seq++
	heap.Push(&h.ref, ev)
	h.live = append(h.live, struct {
		id EventID
		ev *refEvent
	}{id, ev})
}

// cancel removes live entry k from both sides.
func (h *kernelHarness) cancel(k int) {
	entry := h.live[k]
	if !h.eng.Cancel(entry.id) {
		h.t.Fatalf("Cancel(%v) of a live event returned false", entry.id)
	}
	if h.eng.Cancel(entry.id) {
		h.t.Fatalf("double Cancel(%v) returned true", entry.id)
	}
	entry.ev.cancelled = true
	h.live = append(h.live[:k], h.live[k+1:]...)
}

// step delivers one event on both sides and compares them.
func (h *kernelHarness) step() {
	// Drop lazily-deleted reference events.
	for len(h.ref) > 0 && h.ref[0].cancelled {
		heap.Pop(&h.ref)
	}
	if len(h.ref) == 0 {
		if h.eng.Pending() != 0 {
			h.t.Fatalf("reference empty but engine has %d pending", h.eng.Pending())
		}
		return
	}
	want := heap.Pop(&h.ref).(*refEvent)
	h.gotEvent = false
	more, err := h.eng.Step()
	if err != nil {
		h.t.Fatalf("Step: %v", err)
	}
	_ = more
	if !h.gotEvent {
		h.t.Fatalf("reference delivers (t=%v kind=%v) but engine delivered nothing", want.time, want.kind)
	}
	got := h.delivered
	if got.Time != want.time || got.Kind != want.kind || got.Core != want.core {
		h.t.Fatalf("delivery mismatch: engine (t=%v kind=%v core=%d), reference (t=%v kind=%v core=%d, seq=%d)",
			got.Time, got.Kind, got.Core, want.time, want.kind, want.core, want.seq)
	}
	// Retire the delivered event from the live set; its handle must now be
	// stale on the engine side too.
	for k, entry := range h.live {
		if entry.ev == want {
			if h.eng.Cancel(entry.id) {
				h.t.Fatalf("Cancel of already-delivered event %v returned true", entry.id)
			}
			h.live = append(h.live[:k], h.live[k+1:]...)
			break
		}
	}
}

func (h *kernelHarness) liveCount() int {
	return len(h.live)
}

// run interprets a byte stream as an operation program. The op mix is
// deliberately cancel-heavy (2 schedule : 2 cancel : 2 step in expectation,
// with cancel falling through to step when nothing is live) because
// cancellation is where slot reuse, swap-removal, and generation tagging
// can go wrong.
func runKernelProgram(t *testing.T, data []byte) {
	h := newKernelHarness(t)
	kinds := []Kind{KindArrival, KindDeadline, KindCoreIdle, KindQuantum, KindUser}
	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return b
	}
	for i < len(data) {
		op := next() % 6
		switch {
		case op < 2: // schedule
			dt := float64(next()%64) * 0.125
			kind := kinds[int(next())%len(kinds)]
			core := int(next()%8) - 1 // -1 means plain Schedule
			priority := -1
			if next()%4 == 0 {
				priority = int(next()%16) - 8
			}
			h.schedule(dt, kind, core, priority)
		case op < 4: // cancel a live event, else fall through to step
			if n := h.liveCount(); n > 0 {
				h.cancel(int(next()) % n)
			} else {
				h.step()
			}
		default:
			h.step()
		}
	}
	// Drain: every remaining event must come out in the reference order.
	for h.liveCount() > 0 {
		h.step()
	}
	if h.eng.Pending() != 0 {
		t.Fatalf("drained reference but engine still has %d pending", h.eng.Pending())
	}
}

// FuzzKernelVsReference is the fuzz entry point: any byte string is a valid
// program, and the engine must agree with container/heap on all of them.
func FuzzKernelVsReference(f *testing.F) {
	f.Add([]byte{0, 8, 1, 2, 4, 0, 16, 3, 0, 2, 5, 5})
	f.Add([]byte{0, 0, 0, 0, 0, 1, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5})
	f.Add([]byte{1, 63, 4, 7, 0, 12, 2, 0, 1, 1, 2, 0, 1, 200, 3, 3, 2, 1, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		runKernelProgram(t, data)
	})
}

// TestKernelVsReferenceRandom replays fixed pseudorandom programs on every
// test run, so the model check does not depend on anyone invoking -fuzz.
func TestKernelVsReferenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 8192)
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		runKernelProgram(t, data)
	}
}
