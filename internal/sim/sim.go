// Package sim provides the discrete-event simulation kernel: a time-ordered
// event queue, a monotonic clock, and a run loop.
//
// The kernel is deliberately minimal — events carry a kind, a timestamp, and
// two small typed payload fields (a core index and an opaque reference); the
// scheduler under test registers a handler and drives the machine model from
// it. Determinism is guaranteed by a total order on events: (time, priority,
// sequence).
//
// The queue is engineered for zero steady-state allocations: events live in
// a value-typed slab indexed by a 4-ary min-heap of slot numbers, and a
// free-list recycles slots so Schedule/Cancel never touch the garbage
// collector once the slab has grown to the run's high-water mark. Handles
// (EventID) carry a generation counter so a stale Cancel of an already
// delivered — and possibly reused — slot is a harmless no-op.
package sim

import (
	"context"
	"fmt"
	"math"

	"goodenough/internal/obs"
)

// Kind labels an event for dispatch.
type Kind int

const (
	// KindArrival fires when a new job arrives.
	KindArrival Kind = iota
	// KindQuantum fires on the periodic scheduling quantum.
	KindQuantum
	// KindCoreIdle fires when a core drains its local plan.
	KindCoreIdle
	// KindDeadline fires at a job's deadline so it can be finalized.
	KindDeadline
	// KindEnd terminates the simulation.
	KindEnd
	// KindUser is available for scheduler-specific events.
	KindUser
	// KindCoreFail fires when a core halts (fault injection).
	KindCoreFail
	// KindCoreRecover fires when a failed core returns to service.
	KindCoreRecover
	// KindBudgetChange fires when the total power budget is capped or
	// restored mid-run.
	KindBudgetChange
	// KindSpeedStuck fires when a core's DVFS wedges at a fixed speed.
	KindSpeedStuck
	// KindSpeedFree fires when a stuck core's DVFS is released.
	KindSpeedFree
	// KindMachineFault fires on a machine-scoped fault transition in a
	// fleet simulation (crash, partition, degrade, and their recoveries).
	// Ref indexes the cluster's fault table.
	KindMachineFault
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindArrival:
		return "arrival"
	case KindQuantum:
		return "quantum"
	case KindCoreIdle:
		return "core-idle"
	case KindDeadline:
		return "deadline"
	case KindEnd:
		return "end"
	case KindUser:
		return "user"
	case KindCoreFail:
		return "core-fail"
	case KindCoreRecover:
		return "core-recover"
	case KindBudgetChange:
		return "budget-change"
	case KindSpeedStuck:
		return "speed-stuck"
	case KindSpeedFree:
		return "speed-free"
	case KindMachineFault:
		return "machine-fault"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is a delivered occurrence as seen by the handler. Core and Ref are
// the typed payload fields: Core is a core index (KindCoreIdle and the
// kernel tests), Ref an opaque reference the scheduler resolves against its
// own tables (fault-schedule indices). Both are -1 when unused. The pointer
// passed to the handler aliases engine-owned scratch — copy the value if it
// must outlive the handler call.
type Event struct {
	Time float64
	Kind Kind
	Core int
	Ref  int
}

// EventID is a cancellation handle: slot number in the low 32 bits, slot
// generation in the high 32. The zero value is never issued, so a zeroed
// field safely means "no pending event".
type EventID uint64

const noEvent = -1

// node is one slab entry. pos is the slot's position in the heap order, or
// -1 while the slot is free. gen increments every time the slot is released
// (delivered or cancelled), invalidating outstanding EventIDs; it starts at
// 1 so EventID 0 stays invalid forever.
type node struct {
	time     float64
	seq      uint64
	gen      uint32
	pos      int32
	priority int32
	kind     Kind
	core     int32
	ref      int32
}

// Handler processes one event. It may schedule further events on the
// engine. Returning an error aborts the run.
type Handler func(e *Event) error

// Engine owns the clock and the pending-event queue.
type Engine struct {
	now float64

	// nodes is the event slab; heap holds slot numbers in 4-ary min-heap
	// order (children of i at 4i+1..4i+4); free lists recyclable slots.
	nodes []node
	heap  []int32
	free  []int32

	seq     uint64
	handler Handler
	// cur is the handler's view of the event being delivered — engine-owned
	// scratch so delivery never allocates.
	cur Event

	// Processed counts delivered events (diagnostics).
	Processed int64
	// Horizon, when positive, hard-stops the run at that time even if
	// events remain (safety net against runaway schedules).
	Horizon float64

	// obs, when set, receives one EventKernel per delivered event —
	// the lowest layer of the observability bus. Nil costs one branch.
	obs obs.Observer

	// ctx, when set, lets the run be cancelled or deadline-bounded from
	// outside. The loop polls it every ctxStride deliveries (and once on
	// entry), so cancellation latency is bounded by the cost of ctxStride
	// handler invocations — microseconds, not simulated time.
	ctx context.Context
}

// ctxStride is how many deliveries pass between context polls. Polling is
// one non-blocking channel select; a small power of two keeps cancellation
// prompt while staying invisible in the hot loop.
const ctxStride = 64

// SetObserver attaches an observability sink to the kernel: every delivered
// event is mirrored as an obs.EventKernel carrying the sim Kind ordinal and
// the pending-queue depth. Pass nil to detach.
func (e *Engine) SetObserver(o obs.Observer) { e.obs = o }

// SetContext attaches a cancellation context to the run loop. When ctx is
// cancelled (or its deadline passes), Run and Step stop delivering events
// and return ctx.Err(); the clock stays at the last delivered event, so the
// caller can still read a consistent partial state. Pass nil to detach.
// Call before Run.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// interrupted polls the attached context; it reports a non-nil error when
// the run should stop.
func (e *Engine) interrupted() error {
	if e.ctx == nil {
		return nil
	}
	select {
	case <-e.ctx.Done():
		return e.ctx.Err()
	default:
		return nil
	}
}

// observe mirrors one delivery onto the bus.
func (e *Engine) observe(t float64, kind Kind) {
	if e.obs != nil {
		e.obs.Observe(obs.Event{
			Time: t, Type: obs.EventKernel, Core: -1, Job: -1,
			Value: float64(kind), Aux: float64(len(e.heap)),
		})
	}
}

// NewEngine returns an engine at time zero with the given handler.
func NewEngine(handler Handler) *Engine {
	return &Engine{handler: handler}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of events not yet delivered.
func (e *Engine) Pending() int { return len(e.heap) }

// less orders two slab slots by the kernel's total order.
func (e *Engine) less(a, b int32) bool {
	na, nb := &e.nodes[a], &e.nodes[b]
	if na.time != nb.time {
		return na.time < nb.time
	}
	if na.priority != nb.priority {
		return na.priority < nb.priority
	}
	return na.seq < nb.seq
}

// siftUp restores heap order after inserting at position i.
func (e *Engine) siftUp(i int32) {
	slot := e.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(slot, e.heap[parent]) {
			break
		}
		e.heap[i] = e.heap[parent]
		e.nodes[e.heap[i]].pos = i
		i = parent
	}
	e.heap[i] = slot
	e.nodes[slot].pos = i
}

// siftDown restores heap order after replacing position i with a larger
// element.
func (e *Engine) siftDown(i int32) {
	n := int32(len(e.heap))
	slot := e.heap[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !e.less(e.heap[best], slot) {
			break
		}
		e.heap[i] = e.heap[best]
		e.nodes[e.heap[i]].pos = i
		i = best
	}
	e.heap[i] = slot
	e.nodes[slot].pos = i
}

// alloc takes a slot from the free-list (or grows the slab) and fills it.
func (e *Engine) alloc(t float64, kind Kind, core, ref, priority int) int32 {
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.nodes = append(e.nodes, node{gen: 1})
		slot = int32(len(e.nodes) - 1)
	}
	nd := &e.nodes[slot]
	nd.time = t
	nd.seq = e.seq
	nd.priority = int32(priority)
	nd.kind = kind
	nd.core = int32(core)
	nd.ref = int32(ref)
	e.seq++
	return slot
}

// release invalidates a slot's outstanding handles and recycles it.
func (e *Engine) release(slot int32) {
	e.nodes[slot].pos = noEvent
	e.nodes[slot].gen++
	e.free = append(e.free, slot)
}

// push inserts a filled slot into the heap.
func (e *Engine) push(slot int32) {
	e.heap = append(e.heap, slot)
	e.siftUp(int32(len(e.heap) - 1))
}

// pop removes and returns the minimum slot. The caller must release it.
func (e *Engine) pop() int32 {
	slot := e.heap[0]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.heap[0] = last
		e.nodes[last].pos = 0
		e.siftDown(0)
	}
	return slot
}

// Schedule enqueues a payload-free event at time t with the default
// priority (the Kind's ordinal). It panics on NaN times and rejects events
// scheduled in the past, which would silently corrupt causality.
func (e *Engine) Schedule(t float64, kind Kind) (EventID, error) {
	return e.schedule(t, kind, noEvent, noEvent, int(kind))
}

// ScheduleCore is Schedule carrying a core index payload (KindCoreIdle).
func (e *Engine) ScheduleCore(t float64, kind Kind, core int) (EventID, error) {
	return e.schedule(t, kind, core, noEvent, int(kind))
}

// ScheduleCoreRef is Schedule carrying both payload fields: a core index and
// an opaque reference. Fleet simulations use the reference for the machine
// index so one shared engine can drive N machines (KindCoreIdle on machine
// ref, core core).
func (e *Engine) ScheduleCoreRef(t float64, kind Kind, core, ref int) (EventID, error) {
	return e.schedule(t, kind, core, ref, int(kind))
}

// ScheduleWithPriority is Schedule with an explicit tie-break priority and
// an opaque reference payload the handler resolves against its own tables
// (pass -1 when unused).
func (e *Engine) ScheduleWithPriority(t float64, kind Kind, ref, priority int) (EventID, error) {
	return e.schedule(t, kind, noEvent, ref, priority)
}

func (e *Engine) schedule(t float64, kind Kind, core, ref, priority int) (EventID, error) {
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN time")
	}
	if t < e.now {
		return 0, fmt.Errorf("sim: event %v scheduled at %v, before now %v", kind, t, e.now)
	}
	slot := e.alloc(t, kind, core, ref, priority)
	e.push(slot)
	return EventID(uint64(e.nodes[slot].gen)<<32 | uint64(uint32(slot))), nil
}

// Cancel removes a pending event. Cancelling an already-delivered,
// already-cancelled, or zero handle is a harmless no-op (returns false).
func (e *Engine) Cancel(id EventID) bool {
	slot := int32(uint32(id))
	gen := uint32(id >> 32)
	if gen == 0 || int(slot) >= len(e.nodes) {
		return false
	}
	nd := &e.nodes[slot]
	if nd.gen != gen || nd.pos < 0 {
		return false
	}
	// Remove from the middle of the heap: swap the last element in, then
	// restore order in whichever direction it violates.
	i := nd.pos
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if int(i) < n {
		e.heap[i] = last
		e.nodes[last].pos = i
		e.siftDown(i)
		e.siftUp(e.nodes[last].pos)
	}
	e.release(slot)
	return true
}

// deliver pops the minimum event into e.cur, releases its slot, and hands
// it to the handler. Returns (stop, err).
func (e *Engine) deliver() (bool, error) {
	slot := e.pop()
	nd := &e.nodes[slot]
	e.cur = Event{Time: nd.time, Kind: nd.kind, Core: int(nd.core), Ref: int(nd.ref)}
	e.release(slot)
	ev := &e.cur
	if ev.Time < e.now {
		return true, fmt.Errorf("sim: time went backwards: %v -> %v", e.now, ev.Time)
	}
	e.now = ev.Time
	e.Processed++
	e.observe(ev.Time, ev.Kind)
	if err := e.handler(ev); err != nil {
		return true, err
	}
	return ev.Kind == KindEnd, nil
}

// Run delivers events in order until the queue empties, a KindEnd event is
// delivered, the optional horizon passes, the handler errors, or the
// attached context (SetContext) is cancelled — the last case returns
// ctx.Err() so callers can distinguish cancellation from simulation faults.
func (e *Engine) Run() error {
	if err := e.interrupted(); err != nil {
		return err
	}
	for len(e.heap) > 0 {
		if e.Processed%ctxStride == 0 {
			if err := e.interrupted(); err != nil {
				return err
			}
		}
		if e.Horizon > 0 && e.nodes[e.heap[0]].time > e.Horizon {
			e.release(e.pop())
			e.now = e.Horizon
			return nil
		}
		stop, err := e.deliver()
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// RunUntil delivers pending events with time strictly below limit, leaving
// later events queued for a future call. The clock advances only to the last
// delivered event — never to limit itself — so a subsequent Schedule at
// exactly limit remains legal. Sharded simulations use this as the barrier
// primitive: each shard's private engine drains up to the barrier time chosen
// by a global coordinator, then parks. Horizon and the attached context are
// not consulted (shard engines are bounded by their callers, not by
// wall-clock safety nets); KindEnd stops delivery as in Run.
func (e *Engine) RunUntil(limit float64) error {
	for len(e.heap) > 0 && e.nodes[e.heap[0]].time < limit {
		stop, err := e.deliver()
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// Step delivers exactly one event, returning false when the queue is empty.
// Used by tests that need to observe intermediate state.
func (e *Engine) Step() (bool, error) {
	if err := e.interrupted(); err != nil {
		return false, err
	}
	if len(e.heap) == 0 {
		return false, nil
	}
	if _, err := e.deliver(); err != nil {
		return false, err
	}
	return true, nil
}

// PeekTime returns the timestamp of the next pending event, or +Inf when
// the queue is empty.
func (e *Engine) PeekTime() float64 {
	if len(e.heap) == 0 {
		return math.Inf(1)
	}
	return e.nodes[e.heap[0]].time
}
