// Package sim provides the discrete-event simulation kernel: a time-ordered
// event queue, a monotonic clock, and a run loop.
//
// The kernel is deliberately minimal — events carry a kind, a timestamp, and
// an opaque payload; the scheduler under test registers a handler and drives
// the machine model from it. Determinism is guaranteed by a total order on
// events: (time, priority, sequence).
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"goodenough/internal/obs"
)

// Kind labels an event for dispatch.
type Kind int

const (
	// KindArrival fires when a new job arrives.
	KindArrival Kind = iota
	// KindQuantum fires on the periodic scheduling quantum.
	KindQuantum
	// KindCoreIdle fires when a core drains its local plan.
	KindCoreIdle
	// KindDeadline fires at a job's deadline so it can be finalized.
	KindDeadline
	// KindEnd terminates the simulation.
	KindEnd
	// KindUser is available for scheduler-specific events.
	KindUser
	// KindCoreFail fires when a core halts (fault injection).
	KindCoreFail
	// KindCoreRecover fires when a failed core returns to service.
	KindCoreRecover
	// KindBudgetChange fires when the total power budget is capped or
	// restored mid-run.
	KindBudgetChange
	// KindSpeedStuck fires when a core's DVFS wedges at a fixed speed.
	KindSpeedStuck
	// KindSpeedFree fires when a stuck core's DVFS is released.
	KindSpeedFree
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindArrival:
		return "arrival"
	case KindQuantum:
		return "quantum"
	case KindCoreIdle:
		return "core-idle"
	case KindDeadline:
		return "deadline"
	case KindEnd:
		return "end"
	case KindUser:
		return "user"
	case KindCoreFail:
		return "core-fail"
	case KindCoreRecover:
		return "core-recover"
	case KindBudgetChange:
		return "budget-change"
	case KindSpeedStuck:
		return "speed-stuck"
	case KindSpeedFree:
		return "speed-free"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is a scheduled occurrence. Payload is interpreted by the handler.
type Event struct {
	Time    float64
	Kind    Kind
	Payload any

	// priority breaks simultaneous-event ties deterministically: lower
	// runs first. Defaults to the Kind's ordinal so that, at equal times,
	// arrivals are observed before quantum ticks, and KindEnd runs last.
	priority int
	seq      uint64
	index    int // heap index, -1 once popped or removed
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(a, b int) bool {
	if h[a].Time != h[b].Time {
		return h[a].Time < h[b].Time
	}
	if h[a].priority != h[b].priority {
		return h[a].priority < h[b].priority
	}
	return h[a].seq < h[b].seq
}

func (h eventHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].index = a
	h[b].index = b
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Handler processes one event. It may schedule further events on the
// engine. Returning an error aborts the run.
type Handler func(e *Event) error

// Engine owns the clock and the pending-event heap.
type Engine struct {
	now     float64
	queue   eventHeap
	seq     uint64
	handler Handler
	// Processed counts delivered events (diagnostics).
	Processed int64
	// Horizon, when positive, hard-stops the run at that time even if
	// events remain (safety net against runaway schedules).
	Horizon float64

	// obs, when set, receives one EventKernel per delivered event —
	// the lowest layer of the observability bus. Nil costs one branch.
	obs obs.Observer

	// ctx, when set, lets the run be cancelled or deadline-bounded from
	// outside. The loop polls it every ctxStride deliveries (and once on
	// entry), so cancellation latency is bounded by the cost of ctxStride
	// handler invocations — microseconds, not simulated time.
	ctx context.Context
}

// ctxStride is how many deliveries pass between context polls. Polling is
// one non-blocking channel select; a small power of two keeps cancellation
// prompt while staying invisible in the hot loop.
const ctxStride = 64

// SetObserver attaches an observability sink to the kernel: every delivered
// event is mirrored as an obs.EventKernel carrying the sim Kind ordinal and
// the pending-queue depth. Pass nil to detach.
func (e *Engine) SetObserver(o obs.Observer) { e.obs = o }

// SetContext attaches a cancellation context to the run loop. When ctx is
// cancelled (or its deadline passes), Run and Step stop delivering events
// and return ctx.Err(); the clock stays at the last delivered event, so the
// caller can still read a consistent partial state. Pass nil to detach.
// Call before Run.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// interrupted polls the attached context; it reports a non-nil error when
// the run should stop.
func (e *Engine) interrupted() error {
	if e.ctx == nil {
		return nil
	}
	select {
	case <-e.ctx.Done():
		return e.ctx.Err()
	default:
		return nil
	}
}

// observe mirrors one delivery onto the bus.
func (e *Engine) observe(ev *Event) {
	if e.obs != nil {
		e.obs.Observe(obs.Event{
			Time: ev.Time, Type: obs.EventKernel, Core: -1, Job: -1,
			Value: float64(ev.Kind), Aux: float64(len(e.queue)),
		})
	}
}

// NewEngine returns an engine at time zero with the given handler.
func NewEngine(handler Handler) *Engine {
	return &Engine{handler: handler}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of events not yet delivered.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues an event at time t with the default priority (the
// Kind's ordinal). It panics on NaN times and rejects events scheduled in
// the past, which would silently corrupt causality.
func (e *Engine) Schedule(t float64, kind Kind, payload any) (*Event, error) {
	return e.ScheduleWithPriority(t, kind, payload, int(kind))
}

// ScheduleWithPriority is Schedule with an explicit tie-break priority.
func (e *Engine) ScheduleWithPriority(t float64, kind Kind, payload any, priority int) (*Event, error) {
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN time")
	}
	if t < e.now {
		return nil, fmt.Errorf("sim: event %v scheduled at %v, before now %v", kind, t, e.now)
	}
	ev := &Event{Time: t, Kind: kind, Payload: payload, priority: priority, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev, nil
}

// Cancel removes a pending event. Cancelling an already-delivered or
// already-cancelled event is a harmless no-op (returns false).
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 || ev.index >= len(e.queue) || e.queue[ev.index] != ev {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	return true
}

// Run delivers events in order until the queue empties, a KindEnd event is
// delivered, the optional horizon passes, the handler errors, or the
// attached context (SetContext) is cancelled — the last case returns
// ctx.Err() so callers can distinguish cancellation from simulation faults.
func (e *Engine) Run() error {
	if err := e.interrupted(); err != nil {
		return err
	}
	for len(e.queue) > 0 {
		if e.Processed%ctxStride == 0 {
			if err := e.interrupted(); err != nil {
				return err
			}
		}
		ev := heap.Pop(&e.queue).(*Event)
		if e.Horizon > 0 && ev.Time > e.Horizon {
			e.now = e.Horizon
			return nil
		}
		if ev.Time < e.now {
			return fmt.Errorf("sim: time went backwards: %v -> %v", e.now, ev.Time)
		}
		e.now = ev.Time
		e.Processed++
		e.observe(ev)
		if err := e.handler(ev); err != nil {
			return err
		}
		if ev.Kind == KindEnd {
			return nil
		}
	}
	return nil
}

// Step delivers exactly one event, returning false when the queue is empty.
// Used by tests that need to observe intermediate state.
func (e *Engine) Step() (bool, error) {
	if err := e.interrupted(); err != nil {
		return false, err
	}
	if len(e.queue) == 0 {
		return false, nil
	}
	ev := heap.Pop(&e.queue).(*Event)
	if ev.Time < e.now {
		return false, fmt.Errorf("sim: time went backwards: %v -> %v", e.now, ev.Time)
	}
	e.now = ev.Time
	e.Processed++
	e.observe(ev)
	if err := e.handler(ev); err != nil {
		return false, err
	}
	return true, nil
}

// PeekTime returns the timestamp of the next pending event, or +Inf when
// the queue is empty.
func (e *Engine) PeekTime() float64 {
	if len(e.queue) == 0 {
		return math.Inf(1)
	}
	return e.queue[0].Time
}
