// Package drill is the process-level crash-recovery harness: it boots a
// real gegate + geserve fleet as child processes, drives seeded traffic
// through the front door, executes a deterministic fault schedule against
// the replica processes — SIGKILL with delayed restart, SIGSTOP/SIGCONT
// pauses, rolling graceful restarts — and then audits the wreckage against
// the invariants a resilient serving tier must hold:
//
//   - No acknowledged-then-lost work: every request the client saw a 200
//     for has a matching "done" record in some replica's crash journal.
//   - Bounded rejoin: every killed replica is back in rotation (gateway
//     probe verdict up) within the configured bound.
//   - Goodput recovery: the post-fault window's goodput reaches the
//     configured fraction of the pre-fault baseline.
//   - Degradation, not collapse: achieved batch quality of acknowledged
//     requests stays at or above the Q_GE floor minus epsilon.
//
// Where internal/faults and internal/chaos inject failures into the
// simulated cluster and the network layer respectively, this package
// injects them into the actual operating-system processes — the layer
// where restarts lose memory, journals tear mid-line, and slow-start
// actually matters.
package drill

import (
	"fmt"
	"sort"
	"time"

	"goodenough/internal/rng"
)

// Kind labels one fault event against the fleet.
type Kind int

const (
	// Kill SIGKILLs the target replica — no drain, no flush — and restarts
	// it with the same arguments after the event's Dur.
	Kill Kind = iota
	// Pause SIGSTOPs the target replica for Dur, then SIGCONTs it: the
	// stalled-but-alive failure mode (GC pause, VM migration, noisy
	// neighbor) that probes see as timeouts rather than refusals.
	Pause
	// Rolling gracefully restarts every replica in index order: SIGTERM,
	// wait for exit, relaunch, wait ready, then the next — the planned
	// maintenance the fleet must absorb without client-visible damage.
	Rolling
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Kill:
		return "kill"
	case Pause:
		return "pause"
	case Rolling:
		return "rolling"
	default:
		return fmt.Sprintf("drill(%d)", int(k))
	}
}

// ParseKind maps schedule-file names to Kinds.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "kill":
		return Kill, nil
	case "pause", "stop":
		return Pause, nil
	case "rolling", "roll":
		return Rolling, nil
	default:
		return 0, fmt.Errorf("drill: unknown kind %q (kill|pause|rolling)", s)
	}
}

// Event is one scheduled fault.
type Event struct {
	// At is the onset, measured from the moment traffic starts.
	At time.Duration `json:"at"`
	// Kind is the fault mode.
	Kind Kind `json:"kind"`
	// Target is the replica index (ignored by Rolling).
	Target int `json:"target"`
	// Dur is the outage length: the down time before restart (Kill), the
	// stop time before SIGCONT (Pause). Rolling ignores it.
	Dur time.Duration `json:"dur"`
}

// Validate checks one event against the fleet size.
func (e Event) Validate(replicas int) error {
	if e.At < 0 {
		return fmt.Errorf("drill: event onset %v is negative", e.At)
	}
	switch e.Kind {
	case Kill, Pause:
		if e.Target < 0 || e.Target >= replicas {
			return fmt.Errorf("drill: %s target %d out of range [0, %d)", e.Kind, e.Target, replicas)
		}
		if e.Dur <= 0 {
			return fmt.Errorf("drill: %s needs a positive duration, got %v", e.Kind, e.Dur)
		}
	case Rolling:
		// Fleet-wide; no payload to validate.
	default:
		return fmt.Errorf("drill: unknown kind %d", int(e.Kind))
	}
	return nil
}

// Validate orders and checks a whole schedule.
func Validate(events []Event, replicas int) ([]Event, error) {
	out := append([]Event(nil), events...)
	for i, e := range out {
		if err := e.Validate(replicas); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out, nil
}

// Generate draws a deterministic fault schedule for the given seed: one
// kill of a random replica early in the horizon, a pause of a different
// replica mid-horizon, and — when the horizon leaves room to recover — a
// rolling restart in the final third. Onsets and durations jitter with the
// seed, but the same (seed, replicas, horizon) tuple yields the same
// schedule on every run and platform; the fleet rng stream is the same
// xoshiro construction the simulator's workloads use.
//
// The shape guarantees every generated drill exercises all three fault
// modes while always leaving a quiet tail of at least a third of the
// horizon, so the goodput-recovery invariant has a window to measure.
func Generate(seed uint64, replicas int, horizon time.Duration) ([]Event, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("drill: need at least one replica")
	}
	if horizon < 4*time.Second {
		return nil, fmt.Errorf("drill: horizon %v too short to fault and recover (need >= 4s)", horizon)
	}
	src := rng.New(seed ^ 0xd811de5eed)
	h := horizon.Seconds()

	jitter := func(lo, hi float64) time.Duration {
		return time.Duration(src.Uniform(lo, hi) * float64(time.Second))
	}
	killTarget := src.Intn(replicas)
	pauseTarget := killTarget
	if replicas > 1 {
		pauseTarget = (killTarget + 1 + src.Intn(replicas-1)) % replicas
	}

	events := []Event{
		{At: jitter(0.10*h, 0.18*h), Kind: Kill, Target: killTarget, Dur: jitter(0.5, 1.5)},
		{At: jitter(0.30*h, 0.40*h), Kind: Pause, Target: pauseTarget, Dur: jitter(0.4, 1.0)},
	}
	if horizon >= 12*time.Second {
		events = append(events, Event{At: jitter(0.50*h, 0.60*h), Kind: Rolling})
	}
	return Validate(events, replicas)
}
