package drill

import (
	"fmt"
	"time"

	"goodenough/internal/server"
)

// RequestRecord is the client-side view of one drill request: what the
// traffic driver can swear to without trusting the fleet.
type RequestRecord struct {
	// Offset is when the request fired, measured from traffic start.
	Offset time.Duration `json:"offset"`
	// TraceID is the X-GE-Trace-Id the driver stamped (16 hex digits); the
	// replicas key their journal records by it.
	TraceID string `json:"trace_id"`
	// Status is the HTTP status the client saw; 0 = transport error.
	Status int `json:"status"`
	// Quality is the X-GE-Quality of an acknowledged governed response;
	// valid only when HasQuality.
	Quality    float64 `json:"quality,omitempty"`
	HasQuality bool    `json:"has_quality,omitempty"`
}

// Rejoin is one observed replica recovery: how long the gateway's probe
// verdict held the replica out of rotation.
type Rejoin struct {
	Replica int           `json:"replica"`
	Down    time.Duration `json:"down"`
}

// Thresholds are the invariant knobs Evaluate judges against.
type Thresholds struct {
	// RejoinBound caps how long any faulted replica may stay out of
	// rotation.
	RejoinBound time.Duration
	// GoodputFrac is the fraction of baseline goodput the recovery window
	// must reach.
	GoodputFrac float64
	// QualityFloor is the minimum mean achieved quality of acknowledged
	// requests (Q_GE − ε); <= 0 skips the check (ungoverned fleets).
	QualityFloor float64
	// BaselineEnd closes the pre-fault measurement window [0, BaselineEnd).
	BaselineEnd time.Duration
	// RecoveryStart opens the post-fault window [RecoveryStart, End).
	RecoveryStart time.Duration
	// End is the traffic horizon.
	End time.Duration
	// Kills is how many Kill events ran — each one must produce a
	// slow-start entry at the gateway.
	Kills int
}

// Report is the drill verdict: the audited numbers and the invariant
// failures, if any. Pass means every invariant held.
type Report struct {
	Seed   uint64  `json:"seed"`
	Events []Event `json:"events"`

	Requests int `json:"requests"`
	Acked    int `json:"acked"`
	Shed     int `json:"shed"`
	Errors   int `json:"errors"`

	// AckedLost lists acknowledged trace IDs missing from every journal —
	// the invariant that must be empty.
	AckedLost []string `json:"acked_lost"`
	// Orphans are accepted-never-finished requests across all journals and
	// incarnations; OrphanBudget is the gateway-side accounting (retries +
	// hedges + upstream errors) that must explain them.
	Orphans      []server.Orphan `json:"orphans"`
	OrphanBudget int64           `json:"orphan_budget"`

	BaselineGoodput  float64 `json:"baseline_goodput_rps"`
	RecoveredGoodput float64 `json:"recovered_goodput_rps"`

	Rejoins   []Rejoin      `json:"rejoins"`
	RejoinMax time.Duration `json:"rejoin_max"`

	SlowStartEnters int64 `json:"slowstart_enters"`

	QualityMean float64 `json:"quality_mean,omitempty"`

	Failures []string `json:"failures"`
	Pass     bool     `json:"pass"`
}

// Evaluate audits one drill run. It is a pure function of its inputs —
// client records, the replicas' journals, the gateway's final counters,
// and the observed rejoin times — so the invariant logic is testable
// without booting a single process.
func Evaluate(records []RequestRecord, journals [][]server.JournalRecord,
	counters map[string]int64, rejoins []Rejoin, th Thresholds) *Report {
	rep := &Report{
		AckedLost: []string{},
		Orphans:   []server.Orphan{},
		Rejoins:   append([]Rejoin{}, rejoins...),
		Failures:  []string{},
	}

	// The fleet-wide "done" ledger: a request acknowledged to the client
	// must appear here, whichever replica (and whichever incarnation of it)
	// served the winning attempt.
	done := make(map[string]bool)
	for _, j := range journals {
		for _, r := range j {
			if r.T == "done" {
				done[r.ID] = true
			}
		}
	}
	// Orphans: per journal, accepts that never resolved — in any later
	// incarnation either — are work the fleet acknowledged taking and lost.
	for _, j := range journals {
		open := make(map[string]server.Orphan)
		for _, r := range j {
			switch r.T {
			case "accept":
				open[r.ID] = server.Orphan{Inc: r.Inc, ID: r.ID, Path: r.Path, TS: r.TS}
			case "done":
				delete(open, r.ID)
			}
		}
		for _, o := range open {
			rep.Orphans = append(rep.Orphans, o)
		}
	}

	var qSum float64
	var qN int
	var baseOK, recovOK int
	for _, rec := range records {
		rep.Requests++
		switch {
		case rec.Status == 200:
			rep.Acked++
			if rec.TraceID != "" && !done[rec.TraceID] {
				rep.AckedLost = append(rep.AckedLost, rec.TraceID)
			}
			if rec.HasQuality {
				qSum += rec.Quality
				qN++
			}
			if rec.Offset < th.BaselineEnd {
				baseOK++
			}
			if rec.Offset >= th.RecoveryStart && rec.Offset < th.End {
				recovOK++
			}
		case rec.Status == 429 || rec.Status == 503:
			rep.Shed++
		default:
			rep.Errors++
		}
	}
	if qN > 0 {
		rep.QualityMean = qSum / float64(qN)
	}
	if th.BaselineEnd > 0 {
		rep.BaselineGoodput = float64(baseOK) / th.BaselineEnd.Seconds()
	}
	if w := th.End - th.RecoveryStart; w > 0 {
		rep.RecoveredGoodput = float64(recovOK) / w.Seconds()
	}
	rep.OrphanBudget = counters["retries_total"] + counters["hedges_fired_total"]
	for name, v := range counters {
		if len(name) > len("_errs_total") && name[len(name)-len("_errs_total"):] == "_errs_total" {
			rep.OrphanBudget += v
		}
	}
	rep.SlowStartEnters = counters["slowstart_enter_total"]
	for _, r := range rejoins {
		if r.Down > rep.RejoinMax {
			rep.RejoinMax = r.Down
		}
	}

	// The invariants.
	if n := len(rep.AckedLost); n > 0 {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("acknowledged-then-lost: %d acked requests missing from every journal", n))
	}
	if int64(len(rep.Orphans)) > rep.OrphanBudget {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("orphan accounting: %d orphans exceed the gateway's %d retried/hedged/errored attempts",
				len(rep.Orphans), rep.OrphanBudget))
	}
	if th.RejoinBound > 0 {
		if len(rejoins) < th.Kills {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("rejoin: %d kills but only %d observed recoveries", th.Kills, len(rejoins)))
		}
		if rep.RejoinMax > th.RejoinBound {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("rejoin: slowest recovery %v exceeds bound %v", rep.RejoinMax, th.RejoinBound))
		}
	}
	if th.GoodputFrac > 0 && th.BaselineEnd > 0 && rep.BaselineGoodput > 0 {
		if rep.RecoveredGoodput < th.GoodputFrac*rep.BaselineGoodput {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("goodput: recovery window %.1f rps is below %.0f%% of the %.1f rps baseline",
					rep.RecoveredGoodput, th.GoodputFrac*100, rep.BaselineGoodput))
		}
	}
	if th.Kills > 0 && rep.SlowStartEnters < int64(th.Kills) {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("slow-start: %d kills but only %d ramp entries at the gateway",
				th.Kills, rep.SlowStartEnters))
	}
	if th.QualityFloor > 0 && qN > 0 && rep.QualityMean < th.QualityFloor {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("quality: mean %.3f of acked requests is below the %.3f floor",
				rep.QualityMean, th.QualityFloor))
	}
	rep.Pass = len(rep.Failures) == 0
	return rep
}
