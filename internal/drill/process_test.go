package drill

import (
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestDrillEndToEnd boots a real 3-replica governed fleet behind gegate,
// runs a seeded kill + pause schedule against the live processes, and
// requires every invariant to hold. This is the full harness exercised the
// way CI's drill-smoke job runs it, minus the shell.
func TestDrillEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level drill skipped in -short mode")
	}
	bindir := t.TempDir()
	geserve := filepath.Join(bindir, "geserve")
	gegate := filepath.Join(bindir, "gegate")
	for _, b := range []struct{ out, pkg string }{
		{geserve, "goodenough/cmd/geserve"},
		{gegate, "goodenough/cmd/gegate"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", b.pkg, err, out)
		}
	}

	report, err := Run(Config{
		Seed:        7,
		Replicas:    3,
		Rate:        30,
		Duration:    8 * time.Second, // kill + pause; no rolling below 12s
		Governed:    true,
		GeservePath: geserve,
		GegatePath:  gegate,
		WorkDir:     t.TempDir(),
		RejoinBound: 5 * time.Second,
		GoodputFrac: 0.9,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Pass {
		t.Fatalf("drill invariants failed: %v\nreport: %+v", report.Failures, report)
	}
	if report.Requests < 100 {
		t.Fatalf("only %d requests offered; the driver is not keeping rate", report.Requests)
	}
	if report.Acked == 0 {
		t.Fatal("no acknowledged requests")
	}
	// The kill must actually have been observed end to end.
	if report.SlowStartEnters < 1 {
		t.Fatalf("slow-start never entered (enters=%d)", report.SlowStartEnters)
	}
	if len(report.Rejoins) < 1 {
		t.Fatal("no rejoin measured for the killed replica")
	}
	t.Logf("drill: %d req, %d acked, %d shed, %d errors, rejoin max %v, orphans %d (budget %d)",
		report.Requests, report.Acked, report.Shed, report.Errors,
		report.RejoinMax, len(report.Orphans), report.OrphanBudget)
}
