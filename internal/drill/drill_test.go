package drill

import (
	"reflect"
	"testing"
	"time"

	"goodenough/internal/server"
)

// TestGenerateDeterministic: the same (seed, replicas, horizon) tuple
// yields byte-identical schedules; different seeds diverge.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(7, 3, 12*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(7, 3, 12*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c, err := Generate(8, 3, 12*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestGenerateShape: every generated drill kills, pauses, and (with room)
// rolls — and leaves the final third of the horizon quiet so recovery is
// measurable.
func TestGenerateShape(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		events, err := Generate(seed, 3, 12*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		kinds := map[Kind]int{}
		for i, e := range events {
			kinds[e.Kind]++
			if i > 0 && e.At < events[i-1].At {
				t.Fatalf("seed %d: events out of order", seed)
			}
			if end := e.At + e.Dur; end > 8*time.Second {
				t.Fatalf("seed %d: fault %v runs to %v, into the recovery window", seed, e, end)
			}
		}
		if kinds[Kill] != 1 || kinds[Pause] != 1 || kinds[Rolling] != 1 {
			t.Fatalf("seed %d: kinds %v, want one of each", seed, kinds)
		}
	}

	// A short horizon drops the rolling restart but keeps kill + pause.
	events, err := Generate(3, 2, 6*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Kind == Rolling {
			t.Fatal("6s horizon generated a rolling restart")
		}
	}
}

// TestGenerateTargets: with more than one replica, the kill and the pause
// never hit the same one (a single fault domain would mask gaps in
// failover).
func TestGenerateTargets(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		events, err := Generate(seed, 3, 12*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		var kill, pause = -1, -1
		for _, e := range events {
			switch e.Kind {
			case Kill:
				kill = e.Target
			case Pause:
				pause = e.Target
			}
		}
		if kill == pause {
			t.Fatalf("seed %d: kill and pause both target replica %d", seed, kill)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Event{
		{At: -time.Second, Kind: Kill, Target: 0, Dur: time.Second},
		{At: time.Second, Kind: Kill, Target: 3, Dur: time.Second},
		{At: time.Second, Kind: Kill, Target: 0},
		{At: time.Second, Kind: Pause, Target: -1, Dur: time.Second},
		{At: time.Second, Kind: Kind(42)},
	}
	for i, e := range cases {
		if _, err := Validate([]Event{e}, 3); err == nil {
			t.Fatalf("case %d (%+v): no error", i, e)
		}
	}
	out, err := Validate([]Event{
		{At: 2 * time.Second, Kind: Pause, Target: 1, Dur: time.Second},
		{At: time.Second, Kind: Kill, Target: 0, Dur: time.Second},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Kind != Kill {
		t.Fatal("Validate did not sort by onset")
	}
}

// evalInputs builds a healthy synthetic drill: 40 requests over 10s, all
// acked, every ack journaled, one clean kill recovery.
func evalInputs() ([]RequestRecord, [][]server.JournalRecord, map[string]int64, []Rejoin, Thresholds) {
	var records []RequestRecord
	var journal []server.JournalRecord
	for i := 0; i < 40; i++ {
		id := string(rune('a'+i%26)) + string(rune('0'+i/26))
		records = append(records, RequestRecord{
			Offset:  time.Duration(i) * 250 * time.Millisecond,
			TraceID: id,
			Status:  200,
			Quality: 0.95, HasQuality: true,
		})
		journal = append(journal,
			server.JournalRecord{T: "accept", Inc: 1, ID: id, Path: "/v1/run"},
			server.JournalRecord{T: "done", Inc: 1, ID: id, Status: 200},
		)
	}
	counters := map[string]int64{
		"retries_total":         3,
		"hedges_fired_total":    1,
		"replica0_errs_total":   2,
		"slowstart_enter_total": 1,
	}
	rejoins := []Rejoin{{Replica: 0, Down: 800 * time.Millisecond}}
	th := Thresholds{
		RejoinBound:   5 * time.Second,
		GoodputFrac:   0.95,
		QualityFloor:  0.85,
		BaselineEnd:   2 * time.Second,
		RecoveryStart: 7500 * time.Millisecond,
		End:           10 * time.Second,
		Kills:         1,
	}
	return records, [][]server.JournalRecord{journal}, counters, rejoins, th
}

func TestEvaluatePass(t *testing.T) {
	records, journals, counters, rejoins, th := evalInputs()
	rep := Evaluate(records, journals, counters, rejoins, th)
	if !rep.Pass {
		t.Fatalf("healthy drill failed: %v", rep.Failures)
	}
	if rep.Acked != 40 || len(rep.AckedLost) != 0 || len(rep.Orphans) != 0 {
		t.Fatalf("tally wrong: %+v", rep)
	}
	if rep.BaselineGoodput != 4.0 {
		t.Fatalf("baseline goodput = %v, want 4 rps (8 acks in 2s)", rep.BaselineGoodput)
	}
	if rep.QualityMean < 0.949 || rep.QualityMean > 0.951 {
		t.Fatalf("quality mean = %v", rep.QualityMean)
	}
}

func TestEvaluateCatchesAckedLost(t *testing.T) {
	records, journals, counters, rejoins, th := evalInputs()
	// One acked request vanishes from the journal: the cardinal sin.
	journals[0] = journals[0][:len(journals[0])-1] // drop the last done
	rep := Evaluate(records, journals, counters, rejoins, th)
	if rep.Pass {
		t.Fatal("acked-then-lost not caught")
	}
	if len(rep.AckedLost) != 1 {
		t.Fatalf("AckedLost = %v", rep.AckedLost)
	}
	// The same dropped record is also an orphan — but within budget, so
	// only the acked-lost invariant fires.
	if len(rep.Orphans) != 1 {
		t.Fatalf("Orphans = %v", rep.Orphans)
	}
}

func TestEvaluateCatchesOrphanOverrun(t *testing.T) {
	records, journals, counters, rejoins, th := evalInputs()
	counters["retries_total"] = 0
	counters["hedges_fired_total"] = 0
	counters["replica0_errs_total"] = 0
	// 3 accepts the fleet never finished and the gateway never accounted.
	for _, id := range []string{"x1", "x2", "x3"} {
		journals[0] = append(journals[0], server.JournalRecord{T: "accept", Inc: 1, ID: id, Path: "/v1/run"})
	}
	rep := Evaluate(records, journals, counters, rejoins, th)
	if rep.Pass {
		t.Fatal("orphan overrun not caught")
	}
	if len(rep.Orphans) != 3 || rep.OrphanBudget != 0 {
		t.Fatalf("orphans=%d budget=%d", len(rep.Orphans), rep.OrphanBudget)
	}
}

func TestEvaluateCatchesSlowRejoin(t *testing.T) {
	records, journals, counters, _, th := evalInputs()
	rejoins := []Rejoin{{Replica: 0, Down: 9 * time.Second}}
	rep := Evaluate(records, journals, counters, rejoins, th)
	if rep.Pass {
		t.Fatal("rejoin past the bound not caught")
	}
	if rep.RejoinMax != 9*time.Second {
		t.Fatalf("RejoinMax = %v", rep.RejoinMax)
	}
}

func TestEvaluateCatchesMissingRejoin(t *testing.T) {
	records, journals, counters, _, th := evalInputs()
	rep := Evaluate(records, journals, counters, nil, th)
	if rep.Pass {
		t.Fatal("kill without an observed recovery not caught")
	}
}

func TestEvaluateCatchesGoodputCollapse(t *testing.T) {
	records, journals, counters, rejoins, th := evalInputs()
	// Every request after the recovery start fails: the fleet never came
	// back even though the processes did.
	for i := range records {
		if records[i].Offset >= th.RecoveryStart {
			records[i].Status = 503
		}
	}
	rep := Evaluate(records, journals, counters, rejoins, th)
	if rep.Pass {
		t.Fatal("goodput collapse not caught")
	}
	if rep.RecoveredGoodput != 0 {
		t.Fatalf("RecoveredGoodput = %v", rep.RecoveredGoodput)
	}
}

func TestEvaluateCatchesMissingSlowStart(t *testing.T) {
	records, journals, counters, rejoins, th := evalInputs()
	counters["slowstart_enter_total"] = 0
	rep := Evaluate(records, journals, counters, rejoins, th)
	if rep.Pass {
		t.Fatal("kill without a slow-start entry not caught")
	}
}

func TestEvaluateCatchesQualityFloor(t *testing.T) {
	records, journals, counters, rejoins, th := evalInputs()
	for i := range records {
		records[i].Quality = 0.5
	}
	rep := Evaluate(records, journals, counters, rejoins, th)
	if rep.Pass {
		t.Fatal("quality below the floor not caught")
	}
	// Ungoverned fleets (floor 0) skip the check.
	th.QualityFloor = 0
	if rep := Evaluate(records, journals, counters, rejoins, th); !rep.Pass {
		t.Fatalf("floor 0 still failed: %v", rep.Failures)
	}
}

// TestEvaluateOrphanAcrossIncarnations: an accept from incarnation 1
// resolved by nobody stays an orphan even when incarnation 2 wrote other
// records; a done in a later incarnation would clear it (same journal
// file, same ledger).
func TestEvaluateOrphanAcrossIncarnations(t *testing.T) {
	journal := []server.JournalRecord{
		{T: "boot", Inc: 1},
		{T: "accept", Inc: 1, ID: "lost", Path: "/v1/run"},
		{T: "boot", Inc: 2},
		{T: "accept", Inc: 2, ID: "fine", Path: "/v1/run"},
		{T: "done", Inc: 2, ID: "fine", Status: 200},
	}
	counters := map[string]int64{"replica0_errs_total": 1}
	rep := Evaluate(nil, [][]server.JournalRecord{journal}, counters, nil, Thresholds{})
	if len(rep.Orphans) != 1 || rep.Orphans[0].ID != "lost" {
		t.Fatalf("orphans = %+v", rep.Orphans)
	}
	if !rep.Pass {
		t.Fatalf("budgeted orphan failed the audit: %v", rep.Failures)
	}
}

func TestParseMetricz(t *testing.T) {
	text := "counter gw_ok_total 1234\ngauge replica0_probe_ok 1\ncounter retries_total 7\nnot a metric line\nhistogram gw_request_seconds_count 50\n"
	m := parseMetricz(text)
	if m["gw_ok_total"] != 1234 || m["replica0_probe_ok"] != 1 || m["retries_total"] != 7 {
		t.Fatalf("parsed %v", m)
	}
}

func TestBaselineEnd(t *testing.T) {
	if got := baselineEnd(nil, 8*time.Second); got != 2*time.Second {
		t.Fatalf("empty schedule baseline = %v", got)
	}
	events := []Event{{At: 3 * time.Second, Kind: Kill, Target: 0, Dur: time.Second}}
	if got := baselineEnd(events, 8*time.Second); got != 3*time.Second {
		t.Fatalf("baseline = %v, want first onset", got)
	}
}
