package drill

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"goodenough/internal/obs"
	"goodenough/internal/rng"
	"goodenough/internal/server"
)

// Config parameterizes one drill run. Zero values select the defaults in
// withDefaults; GeservePath and GegatePath are required (cmd/gedrill
// builds them on demand when not supplied).
type Config struct {
	// Seed drives the fault schedule and the trace-ID stream.
	Seed uint64
	// Replicas is the fleet size (default 3).
	Replicas int
	// Rate is the offered open-loop request rate in req/s (default 40).
	Rate float64
	// Duration is the traffic horizon (default 12s).
	Duration time.Duration
	// Events is the fault schedule; empty generates one from Seed.
	Events []Event
	// GeservePath / GegatePath locate the binaries to boot.
	GeservePath string
	GegatePath  string
	// WorkDir holds journals and process logs (default: a temp dir).
	WorkDir string
	// Governed runs the replicas under the GE overload governor.
	Governed bool
	// Concurrency is each replica's worker count (default 2).
	Concurrency int

	// RejoinBound caps how long a restarted replica may take to re-enter
	// rotation, measured from its relaunch (default 5s).
	RejoinBound time.Duration
	// GoodputFrac is the recovery-window goodput floor as a fraction of
	// baseline (default 0.95).
	GoodputFrac float64
	// QualityFloor is the mean-quality floor for acknowledged requests;
	// defaults to 0.85 (Q_GE 0.9 − ε 0.05) when Governed, else disabled.
	QualityFloor float64

	// RampSteps / RampStep configure the gateway's rejoin slow-start
	// (defaults 3 × 300ms).
	RampSteps int
	RampStep  time.Duration

	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Rate <= 0 {
		c.Rate = 40
	}
	if c.Duration <= 0 {
		c.Duration = 12 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 2
	}
	if c.RejoinBound <= 0 {
		c.RejoinBound = 5 * time.Second
	}
	if c.GoodputFrac <= 0 {
		c.GoodputFrac = 0.95
	}
	if c.QualityFloor == 0 && c.Governed {
		c.QualityFloor = 0.85
	}
	if c.RampSteps <= 0 {
		c.RampSteps = 3
	}
	if c.RampStep <= 0 {
		c.RampStep = 300 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// fleet is the running processes of one drill.
type fleet struct {
	cfg      Config
	client   *http.Client
	gate     *proc
	gateURL  string
	replicas []*proc
	repAddrs []string
	journals []string
}

// Run executes one full drill: boot, baseline, faults, recovery, audit.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.GeservePath == "" || cfg.GegatePath == "" {
		return nil, fmt.Errorf("drill: GeservePath and GegatePath are required")
	}
	if cfg.WorkDir == "" {
		dir, err := os.MkdirTemp("", "gedrill-*")
		if err != nil {
			return nil, err
		}
		cfg.WorkDir = dir
	}
	events := cfg.Events
	var err error
	if len(events) == 0 {
		events, err = Generate(cfg.Seed, cfg.Replicas, cfg.Duration)
	} else {
		events, err = Validate(events, cfg.Replicas)
	}
	if err != nil {
		return nil, err
	}

	f := &fleet{cfg: cfg, client: &http.Client{Timeout: 5 * time.Second}}
	defer f.teardown()
	if err := f.boot(); err != nil {
		return nil, err
	}
	cfg.Logf("drill: fleet up — gate %s, %d replicas, seed %d, %d faults",
		f.gateURL, cfg.Replicas, cfg.Seed, len(events))

	// Traffic and faults share one clock: offsets are measured from start.
	start := time.Now()
	var (
		recMu   sync.Mutex
		records []RequestRecord
	)
	trafficDone := make(chan struct{})
	go f.drive(start, func(r RequestRecord) {
		recMu.Lock()
		records = append(records, r)
		recMu.Unlock()
	}, trafficDone)

	rejoins, kills, faultErr := f.execute(start, events)
	<-trafficDone
	if faultErr != nil {
		return nil, faultErr
	}

	counters, err := f.scrapeMetrics()
	if err != nil {
		return nil, err
	}
	f.teardown() // graceful stop before reading journals

	journals := make([][]server.JournalRecord, 0, len(f.journals))
	for _, path := range f.journals {
		recs, corrupt, err := server.ReadJournal(path)
		if err != nil {
			return nil, fmt.Errorf("drill: reading %s: %w", path, err)
		}
		if corrupt > 0 {
			cfg.Logf("drill: %s: %d torn line(s) — expected wreckage from SIGKILL", path, corrupt)
		}
		journals = append(journals, recs)
	}

	th := Thresholds{
		RejoinBound:   cfg.RejoinBound,
		GoodputFrac:   cfg.GoodputFrac,
		QualityFloor:  cfg.QualityFloor,
		BaselineEnd:   baselineEnd(events, cfg.Duration),
		RecoveryStart: cfg.Duration * 3 / 4,
		End:           cfg.Duration,
		Kills:         kills,
	}
	recMu.Lock()
	defer recMu.Unlock()
	rep := Evaluate(records, journals, counters, rejoins, th)
	rep.Seed = cfg.Seed
	rep.Events = events
	return rep, nil
}

// baselineEnd closes the pre-fault measurement window: the first fault's
// onset, or a quarter of the horizon if the schedule is empty.
func baselineEnd(events []Event, horizon time.Duration) time.Duration {
	if len(events) == 0 {
		return horizon / 4
	}
	return events[0].At
}

// boot launches the replicas and the gateway and waits for health.
func (f *fleet) boot() error {
	cfg := f.cfg
	ports, err := freePorts(cfg.Replicas + 1)
	if err != nil {
		return err
	}
	for i := 0; i < cfg.Replicas; i++ {
		addr := fmt.Sprintf("127.0.0.1:%d", ports[i])
		journal := filepath.Join(cfg.WorkDir, fmt.Sprintf("replica%d.journal", i))
		args := []string{
			"-addr", addr,
			"-concurrency", strconv.Itoa(cfg.Concurrency),
			"-timeout", "5s",
			"-drain-timeout", "2s",
			"-journal", journal,
		}
		if cfg.Governed {
			args = append(args, "-governor")
		}
		p, err := newProc(fmt.Sprintf("replica%d", i), cfg.GeservePath, args,
			filepath.Join(cfg.WorkDir, fmt.Sprintf("replica%d.log", i)))
		if err != nil {
			return err
		}
		if err := p.start(); err != nil {
			return err
		}
		f.replicas = append(f.replicas, p)
		f.repAddrs = append(f.repAddrs, "http://"+addr)
		f.journals = append(f.journals, journal)
	}
	for _, addr := range f.repAddrs {
		if err := waitHealthy(f.client, addr+"/healthz", 10*time.Second); err != nil {
			return err
		}
	}

	gateAddr := fmt.Sprintf("127.0.0.1:%d", ports[cfg.Replicas])
	f.gateURL = "http://" + gateAddr
	gate, err := newProc("gegate", cfg.GegatePath, []string{
		"-addr", gateAddr,
		"-replicas", strings.Join(f.repAddrs, ","),
		"-probe-interval", "100ms",
		"-probe-timeout", "500ms",
		"-breaker-failures", "3",
		"-breaker-open", "500ms",
		"-rejoin-ramp-steps", strconv.Itoa(cfg.RampSteps),
		"-rejoin-ramp-step", cfg.RampStep.String(),
		"-retry-burst", "64",
		"-timeout", "10s",
	}, filepath.Join(cfg.WorkDir, "gegate.log"))
	if err != nil {
		return err
	}
	if err := gate.start(); err != nil {
		return err
	}
	f.gate = gate
	return waitHealthy(f.client, f.gateURL+"/healthz", 10*time.Second)
}

// drive offers open-loop traffic at cfg.Rate until the horizon, stamping
// each request with a seeded trace ID and recording the client-visible
// outcome.
func (f *fleet) drive(start time.Time, record func(RequestRecord), done chan<- struct{}) {
	defer close(done)
	src := rng.New(f.cfg.Seed ^ 0x7ea11ced)
	interval := time.Duration(float64(time.Second) / f.cfg.Rate)
	body := []byte(`{"DurationSec":0.05,"ArrivalRate":40,"Cores":2}`)
	var wg sync.WaitGroup
	for fire := interval; fire < f.cfg.Duration; fire += interval {
		id := src.Uint64() | 1 // the zero trace ID means "no trace"
		if d := time.Until(start.Add(fire)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(offset time.Duration, trace uint64) {
			defer wg.Done()
			record(f.oneRequest(offset, trace, body))
		}(fire, id)
	}
	wg.Wait()
}

func (f *fleet) oneRequest(offset time.Duration, trace uint64, body []byte) RequestRecord {
	rec := RequestRecord{Offset: offset, TraceID: fmt.Sprintf("%016x", trace)}
	req, err := http.NewRequest(http.MethodPost, f.gateURL+"/v1/run", strings.NewReader(string(body)))
	if err != nil {
		return rec
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.HeaderTraceID, rec.TraceID)
	resp, err := f.client.Do(req)
	if err != nil {
		return rec // Status 0: transport error
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	rec.Status = resp.StatusCode
	if q := resp.Header.Get("X-GE-Quality"); q != "" {
		if v, err := strconv.ParseFloat(q, 64); err == nil {
			rec.Quality, rec.HasQuality = v, true
		}
	}
	return rec
}

// execute runs the fault schedule against the fleet, measuring each
// faulted replica's rejoin (relaunch/resume → gateway probe verdict up).
func (f *fleet) execute(start time.Time, events []Event) (rejoins []Rejoin, kills int, err error) {
	logf := f.cfg.Logf
	for _, e := range events {
		if d := time.Until(start.Add(e.At)); d > 0 {
			time.Sleep(d)
		}
		switch e.Kind {
		case Kill:
			kills++
			p := f.replicas[e.Target]
			logf("drill: %v kill replica%d (pid %d), down for %v", e.At, e.Target, p.pid(), e.Dur)
			if err := p.kill(); err != nil {
				return rejoins, kills, err
			}
			time.Sleep(e.Dur)
			if err := p.start(); err != nil {
				return rejoins, kills, err
			}
			relaunch := time.Now()
			if err := waitHealthy(f.client, f.repAddrs[e.Target]+"/healthz", 10*time.Second); err != nil {
				return rejoins, kills, err
			}
			down, werr := f.waitProbeUp(e.Target, relaunch)
			if werr != nil {
				return rejoins, kills, werr
			}
			rejoins = append(rejoins, Rejoin{Replica: e.Target, Down: down})
			logf("drill: replica%d rejoined %v after relaunch (incarnation %d)",
				e.Target, down.Round(time.Millisecond), p.incarnations)
		case Pause:
			p := f.replicas[e.Target]
			logf("drill: %v pause replica%d for %v", e.At, e.Target, e.Dur)
			if err := p.pause(); err != nil {
				return rejoins, kills, err
			}
			time.Sleep(e.Dur)
			if err := p.resume(); err != nil {
				return rejoins, kills, err
			}
			// A pause long enough for the probe to notice produces a rejoin
			// too; a short one the gateway never saw is not an error.
			if up, _ := f.probeUp(e.Target); !up {
				resumed := time.Now()
				down, werr := f.waitProbeUp(e.Target, resumed)
				if werr != nil {
					return rejoins, kills, werr
				}
				rejoins = append(rejoins, Rejoin{Replica: e.Target, Down: down})
			}
		case Rolling:
			logf("drill: %v rolling restart of %d replicas", e.At, len(f.replicas))
			for i, p := range f.replicas {
				if serr := p.stop(5 * time.Second); serr != nil {
					logf("drill: %v", serr)
				}
				if err := p.start(); err != nil {
					return rejoins, kills, err
				}
				relaunch := time.Now()
				if err := waitHealthy(f.client, f.repAddrs[i]+"/healthz", 10*time.Second); err != nil {
					return rejoins, kills, err
				}
				down, werr := f.waitProbeUp(i, relaunch)
				if werr != nil {
					return rejoins, kills, werr
				}
				rejoins = append(rejoins, Rejoin{Replica: i, Down: down})
			}
		}
	}
	return rejoins, kills, nil
}

// probeUp reads the gateway's probe verdict for one replica.
func (f *fleet) probeUp(idx int) (bool, error) {
	counters, err := f.scrapeMetrics()
	if err != nil {
		return false, err
	}
	return counters[fmt.Sprintf("replica%d_probe_ok", idx)] == 1, nil
}

// waitProbeUp polls until the gateway's probe verdict for the replica
// flips up, returning how long it took from since.
func (f *fleet) waitProbeUp(idx int, since time.Time) (time.Duration, error) {
	deadline := since.Add(f.cfg.RejoinBound + 5*time.Second)
	for time.Now().Before(deadline) {
		up, err := f.probeUp(idx)
		if err == nil && up {
			return time.Since(since), nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	// Out of patience: report the elapsed time and let the rejoin-bound
	// invariant fail loudly rather than erroring the whole drill.
	return time.Since(since), nil
}

// scrapeMetrics parses the gateway's plain-text metric registry into a
// counter/gauge map (gauges are truncated to int64).
func (f *fleet) scrapeMetrics() (map[string]int64, error) {
	resp, err := f.client.Get(f.gateURL + "/metricz?format=plain")
	if err != nil {
		return nil, fmt.Errorf("drill: scraping gateway metrics: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return parseMetricz(string(raw)), nil
}

// parseMetricz reads the obs WriteText format: "kind name value" lines.
func parseMetricz(text string) map[string]int64 {
	out := make(map[string]int64)
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 3 {
			continue
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		out[fields[1]] = int64(v)
	}
	return out
}

// teardown stops the fleet gracefully; idempotent.
func (f *fleet) teardown() {
	if f.gate != nil {
		_ = f.gate.stop(5 * time.Second)
		f.gate.close()
		f.gate = nil
	}
	for _, p := range f.replicas {
		_ = p.stop(5 * time.Second)
		p.close()
	}
	f.replicas = nil
}

// freePorts reserves n distinct localhost ports by binding and releasing
// them. A race against other processes is possible but the window is
// microseconds, and a boot failure surfaces immediately.
func freePorts(n int) ([]int, error) {
	ports := make([]int, 0, n)
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, l)
		ports = append(ports, l.Addr().(*net.TCPAddr).Port)
	}
	return ports, nil
}
