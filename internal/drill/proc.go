package drill

import (
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"syscall"
	"time"
)

// proc is one managed child process (a geserve replica or the gegate
// front), restartable with identical arguments so an incarnation after a
// SIGKILL is a faithful replacement of the one that died.
type proc struct {
	name   string
	path   string // binary
	args   []string
	stderr *os.File // appended across incarnations

	cmd          *exec.Cmd
	waitCh       chan error // closed by the reaper with the exit status
	incarnations int
}

func newProc(name, path string, args []string, logPath string) (*proc, error) {
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("drill: %s log: %w", name, err)
	}
	return &proc{name: name, path: path, args: args, stderr: f}, nil
}

// start launches (or relaunches) the process. Each start is a new
// incarnation; a reaper goroutine collects the exit status so kills never
// leave zombies.
func (p *proc) start() error {
	cmd := exec.Command(p.path, p.args...)
	cmd.Stdout = p.stderr
	cmd.Stderr = p.stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("drill: starting %s: %w", p.name, err)
	}
	p.cmd = cmd
	p.incarnations++
	ch := make(chan error, 1)
	p.waitCh = ch
	go func() { ch <- cmd.Wait() }()
	return nil
}

func (p *proc) pid() int {
	if p.cmd == nil || p.cmd.Process == nil {
		return 0
	}
	return p.cmd.Process.Pid
}

// kill SIGKILLs the process and waits for the kernel to reap it: no drain,
// no journal flush — the crash the harness exists to inject.
func (p *proc) kill() error {
	if p.cmd == nil || p.cmd.Process == nil {
		return fmt.Errorf("drill: %s not running", p.name)
	}
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		return fmt.Errorf("drill: kill %s: %w", p.name, err)
	}
	<-p.waitCh // exit status is the signal; the death itself is the point
	return nil
}

// pause SIGSTOPs the process: alive but frozen, the failure mode that
// looks like an infinite GC pause from the outside.
func (p *proc) pause() error {
	if err := p.cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		return fmt.Errorf("drill: pause %s: %w", p.name, err)
	}
	return nil
}

// resume SIGCONTs a paused process.
func (p *proc) resume() error {
	if err := p.cmd.Process.Signal(syscall.SIGCONT); err != nil {
		return fmt.Errorf("drill: resume %s: %w", p.name, err)
	}
	return nil
}

// stop asks the process to drain with SIGTERM and escalates to SIGKILL if
// it has not exited within grace.
func (p *proc) stop(grace time.Duration) error {
	if p.cmd == nil || p.cmd.Process == nil {
		return nil
	}
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		// Already gone is fine; anything else still falls through to the
		// bounded wait so we never hang.
		if !isProcessDone(err) {
			return fmt.Errorf("drill: term %s: %w", p.name, err)
		}
	}
	select {
	case <-p.waitCh:
		return nil
	case <-time.After(grace):
		_ = p.cmd.Process.Signal(syscall.SIGKILL)
		<-p.waitCh
		return fmt.Errorf("drill: %s ignored SIGTERM for %v; killed", p.name, grace)
	}
}

func (p *proc) close() {
	if p.stderr != nil {
		p.stderr.Close()
	}
}

func isProcessDone(err error) bool {
	return err == os.ErrProcessDone
}

// waitHealthy polls url until it answers 200 or the deadline passes.
func waitHealthy(client *http.Client, url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := client.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("status %d", resp.StatusCode)
		} else {
			lastErr = err
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("drill: %s not healthy after %v: %v", url, timeout, lastErr)
}
