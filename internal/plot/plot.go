// Package plot renders experiment results as aligned text tables, CSV, and
// ASCII line charts — the reproduction's stand-in for the paper's MATLAB
// figures. Numbers, not pictures, are the artifact: every figure runner
// emits a Series set that can be compared row-by-row with the paper.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one labeled curve: y = f(x) over a shared x axis.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Validate reports whether the series is well-formed.
func (s Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q has %d x values and %d y values",
			s.Label, len(s.X), len(s.Y))
	}
	return nil
}

// Figure is a set of curves with axis labels, mirroring one paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// WriteCSV emits the figure in tidy CSV: x,label,y — one row per point.
func (f Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n%s,series,%s\n", f.Title, csvSafe(f.XLabel), csvSafe(f.YLabel)); err != nil {
		return err
	}
	for _, s := range f.Series {
		if err := s.Validate(); err != nil {
			return err
		}
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%g,%s,%g\n", s.X[i], csvSafe(s.Label), s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvSafe(s string) string {
	s = strings.ReplaceAll(s, ",", ";")
	s = strings.ReplaceAll(s, "\n", " ")
	if s == "" {
		return "value"
	}
	return s
}

// WriteTable emits the figure as an aligned text table with one column per
// series, one row per distinct x.
func (f Figure) WriteTable(w io.Writer) error {
	for _, s := range f.Series {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	// Collect the x axis (union, sorted).
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)

	headers := make([]string, 0, len(f.Series)+1)
	headers = append(headers, f.XLabel)
	for _, s := range f.Series {
		headers = append(headers, s.Label)
	}
	rows := make([][]string, 0, len(xs))
	for _, x := range xs {
		row := make([]string, 0, len(headers))
		row = append(row, trimFloat(x))
		for _, s := range f.Series {
			cell := ""
			for i := range s.X {
				if s.X[i] == x {
					cell = trimFloat(s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s ==\n", f.Title); err != nil {
		return err
	}
	printRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, "  "))
		return err
	}
	if err := printRow(headers); err != nil {
		return err
	}
	for _, row := range rows {
		if err := printRow(row); err != nil {
			return err
		}
	}
	return nil
}

// trimFloat renders a float compactly (up to 5 significant decimals).
func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	s := fmt.Sprintf("%.5g", v)
	return s
}

// WriteASCII renders the figure as a fixed-size character plot. Distinct
// series use distinct glyphs; overlapping points show the later series.
func (f Figure) WriteASCII(w io.Writer, width, height int) error {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '~', '^'}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	empty := true
	for _, s := range f.Series {
		if err := s.Validate(); err != nil {
			return err
		}
		for i := range s.X {
			empty = false
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if empty {
		_, err := fmt.Fprintf(w, "== %s == (no data)\n", f.Title)
		return err
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := int(math.Round((s.Y[i] - ymin) / (ymax - ymin) * float64(height-1)))
			grid[height-1-row][col] = g
		}
	}

	if _, err := fmt.Fprintf(w, "== %s ==\n", f.Title); err != nil {
		return err
	}
	for r, line := range grid {
		label := strings.Repeat(" ", 12)
		switch r {
		case 0:
			label = fmt.Sprintf("%12s", trimFloat(ymax))
		case height - 1:
			label = fmt.Sprintf("%12s", trimFloat(ymin))
		}
		if _, err := fmt.Fprintf(w, "%s |%s|\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%12s  %-*s%s\n", trimFloat(xmin), width-len(trimFloat(xmax)), "", trimFloat(xmax)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%12s  x: %s   y: %s\n", "", f.XLabel, f.YLabel); err != nil {
		return err
	}
	for si, s := range f.Series {
		if _, err := fmt.Fprintf(w, "%12s  %c %s\n", "", glyphs[si%len(glyphs)], s.Label); err != nil {
			return err
		}
	}
	return nil
}
