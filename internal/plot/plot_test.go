package plot

import (
	"bytes"
	"strings"
	"testing"
)

func sample() Figure {
	return Figure{
		Title:  "Fig test",
		XLabel: "arrival rate",
		YLabel: "quality",
		Series: []Series{
			{Label: "GE", X: []float64{100, 150, 200}, Y: []float64{0.9, 0.9, 0.87}},
			{Label: "BE", X: []float64{100, 150, 200}, Y: []float64{1.0, 0.97, 0.87}},
		},
	}
}

func TestSeriesValidate(t *testing.T) {
	bad := Series{Label: "x", X: []float64{1}, Y: []float64{1, 2}}
	if bad.Validate() == nil {
		t.Fatal("mismatched series accepted")
	}
	if (Series{}).Validate() != nil {
		t.Fatal("empty series rejected")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# Fig test") {
		t.Fatalf("missing title comment:\n%s", out)
	}
	if !strings.Contains(out, "arrival rate,series,quality") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "100,GE,0.9") || !strings.Contains(out, "200,BE,0.87") {
		t.Fatalf("missing rows:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 2+6 {
		t.Fatalf("expected 8 lines, got %d:\n%s", lines, out)
	}
}

func TestWriteCSVRejectsBadSeries(t *testing.T) {
	f := Figure{Series: []Series{{Label: "x", X: []float64{1}, Y: nil}}}
	if err := f.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("bad series accepted")
	}
}

func TestCSVEscapesCommas(t *testing.T) {
	f := Figure{Title: "t", XLabel: "a,b", YLabel: "",
		Series: []Series{{Label: "s,1", X: []float64{1}, Y: []float64{2}}}}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "a,b") || strings.Contains(out, "s,1") {
		t.Fatalf("commas not escaped:\n%s", out)
	}
	if !strings.Contains(out, "a;b,series,value") {
		t.Fatalf("header wrong:\n%s", out)
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"GE", "BE", "arrival rate", "0.9", "150", "== Fig test =="} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// Three data rows + header + title.
	if got := strings.Count(out, "\n"); got != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", got, out)
	}
}

func TestWriteTableDisjointX(t *testing.T) {
	f := Figure{Title: "t", XLabel: "x", YLabel: "y", Series: []Series{
		{Label: "a", X: []float64{1}, Y: []float64{10}},
		{Label: "b", X: []float64{2}, Y: []float64{20}},
	}}
	var buf bytes.Buffer
	if err := f.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	// Union of x values → two rows with blanks.
	if strings.Count(buf.String(), "\n") != 4 {
		t.Fatalf("unexpected table:\n%s", buf.String())
	}
}

func TestWriteASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteASCII(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("plot glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "* GE") || !strings.Contains(out, "o BE") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "x: arrival rate") {
		t.Fatalf("axis label missing:\n%s", out)
	}
}

func TestWriteASCIIEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (Figure{Title: "empty"}).WriteASCII(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(no data)") {
		t.Fatalf("empty figure output wrong: %s", buf.String())
	}
}

func TestWriteASCIIDegenerateRanges(t *testing.T) {
	f := Figure{Title: "flat", Series: []Series{
		{Label: "a", X: []float64{5, 5}, Y: []float64{1, 1}},
	}}
	var buf bytes.Buffer
	if err := f.WriteASCII(&buf, 20, 6); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output for flat series")
	}
}

func TestWriteASCIIClampsTinySizes(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteASCII(&buf, 1, 1); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output at tiny size")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		100:    "100",
		0.9:    "0.9",
		0.8765: "0.8765",
	}
	for v, want := range cases {
		if got := trimFloat(v); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
