package quality

import (
	"math"
	"testing"
	"testing/quick"
)

// allFamilies returns one instance of each quality family with the paper's
// saturation volume.
func allFamilies() []Function {
	return []Function{
		NewExponential(0.003, 1000),
		NewExponential(0.0005, 1000),
		NewExponential(0.009, 1000),
		NewLogarithmic(0.01, 1000),
		NewPowerLaw(0.5, 1000),
		NewLinear(1000),
	}
}

func TestValueBounds(t *testing.T) {
	for _, f := range allFamilies() {
		if got := f.Value(0); got != 0 {
			t.Errorf("%s: Value(0) = %v, want 0", f.Name(), got)
		}
		if got := f.Value(-5); got != 0 {
			t.Errorf("%s: Value(-5) = %v, want 0", f.Name(), got)
		}
		if got := f.Value(f.Xmax()); math.Abs(got-1) > 1e-12 {
			t.Errorf("%s: Value(xmax) = %v, want 1", f.Name(), got)
		}
		if got := f.Value(f.Xmax() * 10); got != 1 {
			t.Errorf("%s: Value(10*xmax) = %v, want 1 (clamp)", f.Name(), got)
		}
	}
}

func TestValueMonotone(t *testing.T) {
	for _, f := range allFamilies() {
		prev := -1.0
		for x := 0.0; x <= f.Xmax(); x += f.Xmax() / 500 {
			v := f.Value(x)
			if v < prev-1e-12 {
				t.Fatalf("%s: not monotone at x=%v: %v < %v", f.Name(), x, v, prev)
			}
			prev = v
		}
	}
}

func TestValueConcave(t *testing.T) {
	// Midpoint concavity: f((a+b)/2) >= (f(a)+f(b))/2.
	for _, f := range allFamilies() {
		for a := 0.0; a < f.Xmax(); a += f.Xmax() / 20 {
			for b := a; b <= f.Xmax(); b += f.Xmax() / 20 {
				mid := f.Value((a + b) / 2)
				chord := (f.Value(a) + f.Value(b)) / 2
				if mid < chord-1e-9 {
					t.Fatalf("%s: not concave at a=%v b=%v: f(mid)=%v < chord=%v",
						f.Name(), a, b, mid, chord)
				}
			}
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, f := range allFamilies() {
		for q := 0.0; q <= 1.0; q += 0.01 {
			x := f.Inverse(q)
			if x < 0 || x > f.Xmax() {
				t.Fatalf("%s: Inverse(%v) = %v out of range", f.Name(), q, x)
			}
			got := f.Value(x)
			if math.Abs(got-q) > 1e-6 {
				t.Fatalf("%s: Value(Inverse(%v)) = %v", f.Name(), q, got)
			}
		}
	}
}

func TestInverseEdges(t *testing.T) {
	for _, f := range allFamilies() {
		if got := f.Inverse(0); got != 0 {
			t.Errorf("%s: Inverse(0) = %v, want 0", f.Name(), got)
		}
		if got := f.Inverse(-1); got != 0 {
			t.Errorf("%s: Inverse(-1) = %v, want 0", f.Name(), got)
		}
		if got := f.Inverse(1); got != f.Xmax() {
			t.Errorf("%s: Inverse(1) = %v, want xmax", f.Name(), got)
		}
		if got := f.Inverse(2); got != f.Xmax() {
			t.Errorf("%s: Inverse(2) = %v, want xmax (clamp)", f.Name(), got)
		}
	}
}

func TestInverseNumericMatchesClosedForm(t *testing.T) {
	for _, f := range allFamilies() {
		for q := 0.05; q < 1.0; q += 0.05 {
			closed := f.Inverse(q)
			numeric := InverseNumeric(f, q)
			if math.Abs(closed-numeric) > 1e-4*f.Xmax() {
				t.Fatalf("%s: inverse mismatch at q=%v: closed=%v numeric=%v",
					f.Name(), q, closed, numeric)
			}
		}
	}
}

func TestExponentialHalfDemandQuality(t *testing.T) {
	// With c=0.003, xmax=1000: f(500) = (1-e^{-1.5})/(1-e^{-3}) ≈ 0.8187.
	// This is the quantitative heart of the paper: half the work yields
	// ~82% of the quality.
	f := NewExponential(0.003, 1000)
	got := f.Value(500)
	want := (1 - math.Exp(-1.5)) / (1 - math.Exp(-3))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("f(500) = %v, want %v", got, want)
	}
	if got < 0.8 {
		t.Fatalf("f(500) = %v; expected diminishing returns to push it above 0.8", got)
	}
}

func TestConcavityOrdering(t *testing.T) {
	// Fig. 9b: larger c means higher quality for the same volume.
	cs := []float64{0.0005, 0.001, 0.002, 0.003, 0.005, 0.009}
	for x := 100.0; x < 1000; x += 100 {
		prev := -1.0
		for _, c := range cs {
			v := NewExponential(c, 1000).Value(x)
			if v < prev {
				t.Fatalf("quality not increasing in c at x=%v: c=%v gives %v < %v", x, c, v, prev)
			}
			prev = v
		}
	}
}

func TestExponentialMarginalDecreasing(t *testing.T) {
	f := NewExponential(0.003, 1000)
	prev := math.Inf(1)
	for x := 0.0; x <= 1000; x += 50 {
		m := f.Marginal(x)
		if m > prev {
			t.Fatalf("marginal not decreasing at x=%v", x)
		}
		if m < 0 {
			t.Fatalf("negative marginal at x=%v", x)
		}
		prev = m
	}
	if f.Marginal(2000) != 0 {
		t.Fatal("marginal beyond xmax should be 0")
	}
}

func TestExponentialMarginalMatchesDerivative(t *testing.T) {
	f := NewExponential(0.003, 1000)
	for x := 10.0; x < 990; x += 37 {
		h := 1e-4
		numeric := (f.Value(x+h) - f.Value(x-h)) / (2 * h)
		if math.Abs(numeric-f.Marginal(x)) > 1e-6 {
			t.Fatalf("marginal mismatch at x=%v: analytic=%v numeric=%v",
				x, f.Marginal(x), numeric)
		}
	}
}

func TestBatch(t *testing.T) {
	f := NewExponential(0.003, 1000)
	demand := []float64{400, 600, 1000}
	full := Batch(f, demand, demand)
	if math.Abs(full-1) > 1e-12 {
		t.Fatalf("fully processed batch quality = %v, want 1", full)
	}
	zero := Batch(f, []float64{0, 0, 0}, demand)
	if zero != 0 {
		t.Fatalf("unprocessed batch quality = %v, want 0", zero)
	}
	half := Batch(f, []float64{200, 300, 500}, demand)
	if half <= zero || half >= full {
		t.Fatalf("half-processed batch quality = %v, want in (0,1)", half)
	}
	// Concavity: halving every job keeps well over half the quality.
	if half < 0.6 {
		t.Fatalf("diminishing returns should keep half-batch quality high, got %v", half)
	}
}

func TestBatchEdgeCases(t *testing.T) {
	f := NewExponential(0.003, 1000)
	if q := Batch(f, nil, nil); q != 1 {
		t.Fatalf("empty batch quality = %v, want 1", q)
	}
	if q := Batch(f, []float64{5}, []float64{0}); q != 1 {
		t.Fatalf("zero-demand batch quality = %v, want 1", q)
	}
	// Overshoot clamps to demand.
	if q := Batch(f, []float64{900}, []float64{400}); math.Abs(q-1) > 1e-12 {
		t.Fatalf("overshoot batch quality = %v, want 1", q)
	}
}

func TestBatchMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Batch with mismatched slices did not panic")
		}
	}()
	Batch(NewLinear(10), []float64{1}, []float64{1, 2})
}

func TestAccumulator(t *testing.T) {
	f := NewExponential(0.003, 1000)
	acc := NewAccumulator(f)
	if acc.Quality() != 1 {
		t.Fatalf("empty accumulator quality = %v, want 1", acc.Quality())
	}
	acc.Add(400, 400)
	if math.Abs(acc.Quality()-1) > 1e-12 {
		t.Fatalf("fully-served job should keep quality 1, got %v", acc.Quality())
	}
	acc.Add(0, 600)
	q := acc.Quality()
	want := f.Value(400) / (f.Value(400) + f.Value(600))
	if math.Abs(q-want) > 1e-12 {
		t.Fatalf("accumulator quality = %v, want %v", q, want)
	}
	if acc.Jobs() != 2 {
		t.Fatalf("accumulator jobs = %d, want 2", acc.Jobs())
	}
}

func TestAccumulatorClamps(t *testing.T) {
	f := NewLinear(100)
	acc := NewAccumulator(f)
	acc.Add(500, 100) // processed beyond demand clamps
	if acc.Quality() != 1 {
		t.Fatalf("clamped overshoot quality = %v, want 1", acc.Quality())
	}
	acc.Add(-5, 100) // negative processed clamps to 0
	if math.Abs(acc.Quality()-0.5) > 1e-12 {
		t.Fatalf("quality = %v, want 0.5", acc.Quality())
	}
	acc.Add(50, 0) // zero demand ignored
	if acc.Jobs() != 2 {
		t.Fatalf("zero-demand job should be ignored, jobs = %d", acc.Jobs())
	}
}

func TestAccumulatorClone(t *testing.T) {
	f := NewLinear(100)
	acc := NewAccumulator(f)
	acc.Add(50, 100)
	cp := acc.Clone()
	cp.Add(0, 100)
	if acc.Quality() == cp.Quality() {
		t.Fatal("clone should be independent of original")
	}
	if math.Abs(acc.Quality()-0.5) > 1e-12 {
		t.Fatalf("original perturbed by clone: %v", acc.Quality())
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	f := NewExponential(0.003, 1000)
	demand := []float64{130, 220, 480, 750, 1000}
	processed := []float64{130, 110, 300, 200, 900}
	acc := NewAccumulator(f)
	for i := range demand {
		acc.Add(processed[i], demand[i])
	}
	if math.Abs(acc.Quality()-Batch(f, processed, demand)) > 1e-12 {
		t.Fatal("accumulator disagrees with Batch")
	}
}

// Property: for any valid (c, x) pair, quality stays in [0, 1].
func TestQualityRangeProperty(t *testing.T) {
	f := func(cRaw, xRaw uint16) bool {
		c := 0.0001 + float64(cRaw)/65535*0.01
		x := float64(xRaw) / 65535 * 2000
		q := NewExponential(c, 1000).Value(x)
		return q >= 0 && q <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Inverse is the lower inverse: Value(Inverse(q)) ~= q and
// Inverse(Value(x)) <= x (+tolerance) for all x in range.
func TestInverseLowerBoundProperty(t *testing.T) {
	f := NewExponential(0.003, 1000)
	prop := func(xRaw uint16) bool {
		x := float64(xRaw) / 65535 * 1000
		inv := f.Inverse(f.Value(x))
		return inv <= x+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: batch quality always lies in [0, 1] and is monotone in each
// processed volume.
func TestBatchMonotoneProperty(t *testing.T) {
	f := NewExponential(0.003, 1000)
	prop := func(p1, p2, c1, c2 uint16, bump uint8) bool {
		demand := []float64{130 + float64(p1)/75, 130 + float64(p2)/75}
		proc := []float64{
			math.Min(float64(c1)/65, demand[0]),
			math.Min(float64(c2)/65, demand[1]),
		}
		q := Batch(f, proc, demand)
		if q < 0 || q > 1 {
			return false
		}
		more := []float64{math.Min(proc[0]+float64(bump), demand[0]), proc[1]}
		return Batch(f, more, demand) >= q-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidConstructorsPanic(t *testing.T) {
	cases := []func(){
		func() { NewExponential(0, 1000) },
		func() { NewExponential(0.003, 0) },
		func() { NewLogarithmic(0, 1000) },
		func() { NewPowerLaw(0, 1000) },
		func() { NewPowerLaw(1.5, 1000) },
		func() { NewLinear(0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: constructor did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkExponentialValue(b *testing.B) {
	f := NewExponential(0.003, 1000)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += f.Value(float64(i % 1000))
	}
	_ = sink
}

func BenchmarkExponentialInverse(b *testing.B) {
	f := NewExponential(0.003, 1000)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += f.Inverse(float64(i%1000) / 1000)
	}
	_ = sink
}
