// Package quality implements the service-quality model of the paper.
//
// A "good enough" service returns partial results: processing c of a job's
// total demand p yields perceived quality f(c), where f is a concave,
// increasing function capturing diminishing returns. The paper's reference
// family (Eq. 1) is
//
//	f(x) = (1 - e^{-c·x}) / (1 - e^{-c·xmax})
//
// normalized so that f(xmax) = 1. The batch quality of a job set is
// Q = Σ f(c_j) / Σ f(p_j).
//
// Besides the exponential family the package provides logarithmic,
// power-law, and linear families used by the sensitivity study, and a
// numeric inverse used by the LF job-cutting algorithm.
package quality

import (
	"fmt"
	"math"
)

// Function maps a processed volume (in processing units) to a perceived
// quality value. Implementations must be non-decreasing and concave on
// [0, Xmax], with Value(0) == 0.
type Function interface {
	// Value returns the quality of processing x units. Inputs below zero
	// clamp to zero; inputs above Xmax clamp to Value(Xmax).
	Value(x float64) float64
	// Inverse returns the smallest volume x with Value(x) >= q. q above
	// the maximum attainable quality returns Xmax; q <= 0 returns 0.
	Inverse(q float64) float64
	// Xmax is the volume at which quality saturates (the largest possible
	// job demand).
	Xmax() float64
	// Name identifies the family for reports.
	Name() string
}

// Exponential is the paper's Eq. 1 quality function.
//
// Performance contract: Value/Inverse sit on the scheduler's per-trigger
// hot path (one evaluation per job per cutting pass), so the normalizer
// 1 − e^{−C·XMax} is computed once at construction and cached in norm —
// every Value call costs a single exp. The other per-trigger invariant,
// the batch denominator Σf(p_j), is memoized one level up by cut.Cutter,
// which evaluates f once per job and reuses the values across the level
// walk, the uncut tail, and the achieved-quality sum.
type Exponential struct {
	// C is the concavity multiplier (paper default 0.003). Larger C makes
	// early units of work more valuable.
	C float64
	// XMax is the saturation volume (paper default 1000).
	XMax float64
	// norm caches 1 - e^{-C·XMax}.
	norm float64
}

// NewExponential builds the paper's concave quality function with
// concavity c and saturation volume xmax. It panics on non-positive
// parameters.
func NewExponential(c, xmax float64) *Exponential {
	if c <= 0 || xmax <= 0 {
		panic(fmt.Sprintf("quality: invalid exponential parameters c=%v xmax=%v", c, xmax))
	}
	return &Exponential{C: c, XMax: xmax, norm: 1 - math.Exp(-c*xmax)}
}

// Value implements Function.
func (e *Exponential) Value(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= e.XMax {
		return 1
	}
	return (1 - math.Exp(-e.C*x)) / e.norm
}

// Inverse implements Function with the closed-form inverse of Eq. 1.
func (e *Exponential) Inverse(q float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return e.XMax
	}
	x := -math.Log(1-q*e.norm) / e.C
	if x > e.XMax {
		return e.XMax
	}
	if x < 0 {
		return 0
	}
	return x
}

// Xmax implements Function.
func (e *Exponential) Xmax() float64 { return e.XMax }

// Name implements Function.
func (e *Exponential) Name() string { return fmt.Sprintf("exp(c=%g)", e.C) }

// Marginal returns f'(x), the marginal quality of the next unit of work at
// volume x. Used by Quality-OPT's equal-marginal allocation.
func (e *Exponential) Marginal(x float64) float64 {
	if x < 0 {
		x = 0
	}
	if x > e.XMax {
		return 0
	}
	return e.C * math.Exp(-e.C*x) / e.norm
}

// Logarithmic is f(x) = ln(1+k·x)/ln(1+k·xmax), an alternative concave
// family for sensitivity studies.
type Logarithmic struct {
	K    float64
	XMax float64
	norm float64
}

// NewLogarithmic builds a logarithmic quality function.
func NewLogarithmic(k, xmax float64) *Logarithmic {
	if k <= 0 || xmax <= 0 {
		panic(fmt.Sprintf("quality: invalid logarithmic parameters k=%v xmax=%v", k, xmax))
	}
	return &Logarithmic{K: k, XMax: xmax, norm: math.Log1p(k * xmax)}
}

// Value implements Function.
func (l *Logarithmic) Value(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= l.XMax {
		return 1
	}
	return math.Log1p(l.K*x) / l.norm
}

// Inverse implements Function.
func (l *Logarithmic) Inverse(q float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return l.XMax
	}
	return math.Expm1(q*l.norm) / l.K
}

// Xmax implements Function.
func (l *Logarithmic) Xmax() float64 { return l.XMax }

// Name implements Function.
func (l *Logarithmic) Name() string { return fmt.Sprintf("log(k=%g)", l.K) }

// PowerLaw is f(x) = (x/xmax)^gamma with 0 < gamma <= 1 (concave).
type PowerLaw struct {
	Gamma float64
	XMax  float64
}

// NewPowerLaw builds a power-law quality function; gamma must lie in (0, 1]
// for concavity.
func NewPowerLaw(gamma, xmax float64) *PowerLaw {
	if gamma <= 0 || gamma > 1 || xmax <= 0 {
		panic(fmt.Sprintf("quality: invalid power-law parameters gamma=%v xmax=%v", gamma, xmax))
	}
	return &PowerLaw{Gamma: gamma, XMax: xmax}
}

// Value implements Function.
func (p *PowerLaw) Value(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= p.XMax {
		return 1
	}
	return math.Pow(x/p.XMax, p.Gamma)
}

// Inverse implements Function.
func (p *PowerLaw) Inverse(q float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return p.XMax
	}
	return p.XMax * math.Pow(q, 1/p.Gamma)
}

// Xmax implements Function.
func (p *PowerLaw) Xmax() float64 { return p.XMax }

// Name implements Function.
func (p *PowerLaw) Name() string { return fmt.Sprintf("pow(g=%g)", p.Gamma) }

// Linear is f(x) = x/xmax — the degenerate "no diminishing returns" case.
// With a linear function LF cutting has no quality-efficient head to keep,
// so GE degenerates toward proportional cutting; it is included to show the
// concavity requirement matters.
type Linear struct {
	XMax float64
}

// NewLinear builds a linear quality function.
func NewLinear(xmax float64) *Linear {
	if xmax <= 0 {
		panic("quality: invalid linear xmax")
	}
	return &Linear{XMax: xmax}
}

// Value implements Function.
func (l *Linear) Value(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= l.XMax {
		return 1
	}
	return x / l.XMax
}

// Inverse implements Function.
func (l *Linear) Inverse(q float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return l.XMax
	}
	return q * l.XMax
}

// Xmax implements Function.
func (l *Linear) Xmax() float64 { return l.XMax }

// Name implements Function.
func (l *Linear) Name() string { return "linear" }

// InverseNumeric computes Function.Inverse by bisection for families
// without a closed form. It is exported so external quality functions can
// reuse it, and it backs the paper's "binary search on the concave quality
// function" step of LF cutting.
func InverseNumeric(f Function, q float64) float64 {
	if q <= 0 {
		return 0
	}
	xmax := f.Xmax()
	if q >= f.Value(xmax) {
		return xmax
	}
	lo, hi := 0.0, xmax
	for i := 0; i < 64 && hi-lo > 1e-9*xmax; i++ {
		mid := (lo + hi) / 2
		if f.Value(mid) < q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// Marginaler is implemented by quality families with a closed-form
// derivative (Exponential has one; see Exponential.Marginal).
type Marginaler interface {
	Marginal(x float64) float64
}

// Marginal returns f'(x), the quality gained by the next unit of work at
// volume x. Families that implement Marginaler answer in closed form; the
// rest get a central finite difference over a step scaled to Xmax, which
// is accurate enough for the governor's cut ordering (only the relative
// order of marginals matters there, and concavity makes the difference
// quotient monotone too).
func Marginal(f Function, x float64) float64 {
	if m, ok := f.(Marginaler); ok {
		return m.Marginal(x)
	}
	xmax := f.Xmax()
	if x < 0 {
		x = 0
	}
	if x >= xmax {
		return 0
	}
	h := 1e-6 * xmax
	lo, hi := x-h, x+h
	if lo < 0 {
		lo = 0
	}
	if hi > xmax {
		hi = xmax
	}
	if hi <= lo {
		return 0
	}
	return (f.Value(hi) - f.Value(lo)) / (hi - lo)
}

// Batch computes the paper's average quality Q = Σ f(c_j) / Σ f(p_j) over
// parallel slices of processed volumes and total demands. Jobs with zero
// demand contribute nothing. An empty or all-zero-demand batch has quality
// 1 by convention (there is nothing to miss).
func Batch(f Function, processed, demand []float64) float64 {
	if len(processed) != len(demand) {
		panic("quality: Batch slice length mismatch")
	}
	num, den := 0.0, 0.0
	for i := range demand {
		if demand[i] <= 0 {
			continue
		}
		c := processed[i]
		if c > demand[i] {
			c = demand[i]
		}
		num += f.Value(c)
		den += f.Value(demand[i])
	}
	if den == 0 {
		return 1
	}
	return num / den
}

// Accumulator tracks batch quality incrementally as jobs finalize, which is
// how the GE scheduler's online quality monitor observes the achieved
// service quality.
type Accumulator struct {
	f        Function
	achieved float64 // Σ f(c_j)
	possible float64 // Σ f(p_j)
	jobs     int
}

// NewAccumulator returns an empty accumulator over quality function f.
func NewAccumulator(f Function) *Accumulator {
	return &Accumulator{f: f}
}

// Add records a finalized job with demand p of which c units were processed.
func (a *Accumulator) Add(c, p float64) {
	if p <= 0 {
		return
	}
	if c > p {
		c = p
	}
	if c < 0 {
		c = 0
	}
	a.achieved += a.f.Value(c)
	a.possible += a.f.Value(p)
	a.jobs++
}

// Quality returns the cumulative quality. An empty accumulator reports 1.
func (a *Accumulator) Quality() float64 {
	if a.possible == 0 {
		return 1
	}
	return a.achieved / a.possible
}

// Jobs returns how many jobs have been finalized.
func (a *Accumulator) Jobs() int { return a.jobs }

// Achieved returns Σ f(c_j) so far.
func (a *Accumulator) Achieved() float64 { return a.achieved }

// Possible returns Σ f(p_j) so far.
func (a *Accumulator) Possible() float64 { return a.possible }

// Clone returns an independent copy, used to evaluate hypothetical
// scheduling decisions without disturbing the live monitor.
func (a *Accumulator) Clone() *Accumulator {
	cp := *a
	return &cp
}
