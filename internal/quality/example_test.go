package quality_test

import (
	"fmt"

	"goodenough/internal/quality"
)

// ExampleExponential shows the paper's diminishing-returns curve: half the
// work already yields ~82% of the quality, which is what makes cutting
// job tails nearly free.
func ExampleExponential() {
	f := quality.NewExponential(0.003, 1000)
	fmt.Printf("f(250)  = %.3f\n", f.Value(250))
	fmt.Printf("f(500)  = %.3f\n", f.Value(500))
	fmt.Printf("f(1000) = %.3f\n", f.Value(1000))
	fmt.Printf("volume for 0.9 quality: %.0f units\n", f.Inverse(0.9))
	// Output:
	// f(250)  = 0.555
	// f(500)  = 0.818
	// f(1000) = 1.000
	// volume for 0.9 quality: 644 units
}
