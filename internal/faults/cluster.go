package faults

import (
	"fmt"
	"math"
	"sort"

	"goodenough/internal/rng"
)

// Machine-scoped fault kinds extend the per-core taxonomy to fleet
// simulations (internal/cluster): whole machines crash, partition from the
// global dispatcher, or degrade, and later recover. They live in the same
// Kind space so schedules and exporters share one vocabulary.
const (
	// MachineCrash halts machine Machine: every core fails at once, all
	// in-flight progress is wiped, and waiting jobs are stranded for the
	// dispatcher to re-route.
	MachineCrash Kind = iota + 100
	// MachineRecover returns a crashed machine to service (empty, healthy).
	MachineRecover
	// MachinePartition cuts the machine off from the global dispatcher: it
	// keeps serving what it has, but receives no new work until the
	// partition heals.
	MachinePartition
	// MachineHeal reconnects a partitioned machine to the dispatcher.
	MachineHeal
	// MachineSlow degrades the machine to Factor of its nominal power
	// budget (a slow or thermally-throttled box).
	MachineSlow
	// MachineRestore lifts a MachineSlow degradation.
	MachineRestore
)

// machineKindString covers the machine-scoped kinds for Kind.String.
func machineKindString(k Kind) (string, bool) {
	switch k {
	case MachineCrash:
		return "machine-crash", true
	case MachineRecover:
		return "machine-recover", true
	case MachinePartition:
		return "machine-partition", true
	case MachineHeal:
		return "machine-heal", true
	case MachineSlow:
		return "machine-slow", true
	case MachineRestore:
		return "machine-restore", true
	default:
		return "", false
	}
}

// ParseMachineKind maps the string names accepted in fleet configs to the
// onset Kind.
func ParseMachineKind(s string) (Kind, error) {
	switch s {
	case "crash", "machine-crash":
		return MachineCrash, nil
	case "partition", "machine-partition":
		return MachinePartition, nil
	case "slow", "degrade", "machine-slow":
		return MachineSlow, nil
	default:
		return 0, fmt.Errorf("faults: unknown machine fault kind %q (crash|partition|slow)", s)
	}
}

// machineRecovery returns the Kind that undoes a machine-scoped onset.
func machineRecovery(k Kind) Kind {
	switch k {
	case MachineCrash:
		return MachineRecover
	case MachinePartition:
		return MachineHeal
	default:
		return MachineRestore
	}
}

// MachineSpec is the user-level description of one machine fault window: an
// onset and an optional duration after which the paired recovery fires.
// Duration 0 means the fault is permanent.
type MachineSpec struct {
	// At is the onset time in seconds.
	At float64
	// Kind must be an onset kind: MachineCrash, MachinePartition, or
	// MachineSlow.
	Kind Kind
	// Machine is the target machine index.
	Machine int
	// Duration, when positive, schedules the paired recovery at
	// At+Duration; zero makes the fault permanent.
	Duration float64
	// Factor is the budget multiplier in (0,1) for MachineSlow.
	Factor float64
}

// Validate reports whether the spec is well-formed for a fleet of the given
// size and horizon (horizon <= 0 disables the horizon check). Errors name
// the offending field so config files diagnose precisely.
func (s MachineSpec) Validate(machines int, horizon float64) error {
	if math.IsNaN(s.At) || math.IsInf(s.At, 0) || s.At < 0 {
		return fmt.Errorf("faults: machine fault At %v must be finite and non-negative", s.At)
	}
	if horizon > 0 && s.At >= horizon {
		return fmt.Errorf("faults: machine fault At %v outside the run horizon [0,%v)", s.At, horizon)
	}
	if math.IsNaN(s.Duration) || math.IsInf(s.Duration, 0) || s.Duration < 0 {
		return fmt.Errorf("faults: machine fault Duration %v must be finite and non-negative", s.Duration)
	}
	if s.Machine < 0 || s.Machine >= machines {
		return fmt.Errorf("faults: Machine %d outside fleet [0,%d)", s.Machine, machines)
	}
	switch s.Kind {
	case MachineCrash, MachinePartition:
		// No payload.
	case MachineSlow:
		if math.IsNaN(s.Factor) || s.Factor <= 0 || s.Factor >= 1 {
			return fmt.Errorf("faults: MachineSlow Factor %v must lie in (0,1)", s.Factor)
		}
	case MachineRecover, MachineHeal, MachineRestore:
		return fmt.Errorf("faults: %v is a recovery kind; specs carry the onset plus a Duration", s.Kind)
	default:
		return fmt.Errorf("faults: Kind %d is not a machine fault kind", int(s.Kind))
	}
	return nil
}

// end returns the exclusive end of the spec's fault window (+Inf when
// permanent).
func (s MachineSpec) end() float64 {
	if s.Duration == 0 {
		return math.Inf(1)
	}
	return s.At + s.Duration
}

// MachineEvent is one timed machine-fault occurrence, ready for the fleet
// event queue.
type MachineEvent struct {
	// At is the simulation time in seconds.
	At float64
	// Kind says what happens.
	Kind Kind
	// Machine is the target machine index.
	Machine int
	// Factor is the budget multiplier for MachineSlow.
	Factor float64
}

// ClusterSchedule is a validated, time-ordered machine-fault event stream.
type ClusterSchedule struct {
	events []MachineEvent
}

// NewCluster expands specs into a time-ordered ClusterSchedule, pairing each
// bounded fault with its recovery. Beyond per-spec validation, windows on
// the same machine must not overlap — a machine cannot crash while it is
// already partitioned — mirroring how the per-core path rejects malformed
// schedules instead of silently reordering them.
func NewCluster(specs []MachineSpec, machines int, horizon float64) (*ClusterSchedule, error) {
	if machines <= 0 {
		return nil, fmt.Errorf("faults: cluster schedule needs a positive machine count, got %d", machines)
	}
	for i, s := range specs {
		if err := s.Validate(machines, horizon); err != nil {
			return nil, fmt.Errorf("faults: machine spec %d: %w", i, err)
		}
		for k := 0; k < i; k++ {
			p := specs[k]
			if p.Machine != s.Machine {
				continue
			}
			if s.At < p.end() && p.At < s.end() {
				return nil, fmt.Errorf(
					"faults: machine spec %d (%v at %v) overlaps spec %d (%v at %v) on machine %d",
					i, s.Kind, s.At, k, p.Kind, p.At, s.Machine)
			}
		}
	}
	events := make([]MachineEvent, 0, 2*len(specs))
	for _, s := range specs {
		events = append(events, MachineEvent{At: s.At, Kind: s.Kind, Machine: s.Machine, Factor: s.Factor})
		if s.Duration > 0 {
			events = append(events, MachineEvent{
				At: s.At + s.Duration, Kind: machineRecovery(s.Kind), Machine: s.Machine})
		}
	}
	sortMachineEvents(events)
	return &ClusterSchedule{events: events}, nil
}

// sortMachineEvents orders by time, breaking ties by (kind, machine) so
// equal-time streams are deterministic regardless of spec order.
func sortMachineEvents(events []MachineEvent) {
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].At != events[b].At {
			return events[a].At < events[b].At
		}
		if events[a].Kind != events[b].Kind {
			return events[a].Kind < events[b].Kind
		}
		return events[a].Machine < events[b].Machine
	})
}

// GenerateCluster draws a per-machine alternating crash/repair renewal
// process: each machine stays up for an Exp(1/mtbf) time, down for an
// Exp(1/mttr) time, repeating until the horizon. Like Generate, the stream
// is deterministic for a fixed (seed, machines, horizon, mtbf, mttr) tuple
// and every crash inside the horizon gets its paired recovery.
func GenerateCluster(seed uint64, machines int, horizon, mtbf, mttr float64) (*ClusterSchedule, error) {
	if machines <= 0 {
		return nil, fmt.Errorf("faults: cluster generator needs a positive machine count, got %d", machines)
	}
	if math.IsNaN(horizon) || math.IsInf(horizon, 0) || horizon <= 0 {
		return nil, fmt.Errorf("faults: cluster generator horizon %v must be finite and positive", horizon)
	}
	if math.IsNaN(mtbf) || mtbf <= 0 {
		return nil, fmt.Errorf("faults: machine MTBF %v must be positive", mtbf)
	}
	if math.IsNaN(mttr) || mttr <= 0 {
		return nil, fmt.Errorf("faults: machine MTTR %v must be positive", mttr)
	}
	var events []MachineEvent
	// A different mix constant than the per-core generator, so a fleet that
	// layers both never sees correlated streams from one seed.
	root := rng.New(seed ^ 0xc105e4FA175)
	for m := 0; m < machines; m++ {
		src := root.Split()
		t := 0.0
		for {
			t += src.Exp(1 / mtbf)
			if t >= horizon {
				break
			}
			down := src.Exp(1 / mttr)
			events = append(events, MachineEvent{At: t, Kind: MachineCrash, Machine: m})
			events = append(events, MachineEvent{At: t + down, Kind: MachineRecover, Machine: m})
			t += down
		}
	}
	sortMachineEvents(events)
	return &ClusterSchedule{events: events}, nil
}

// Events returns a copy of the ordered event stream.
func (s *ClusterSchedule) Events() []MachineEvent {
	if s == nil {
		return nil
	}
	return append([]MachineEvent(nil), s.events...)
}

// Len returns the number of events.
func (s *ClusterSchedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

// Validate re-checks the event stream against a fleet size, guarding
// hand-built schedules and machine-count mismatches.
func (s *ClusterSchedule) Validate(machines int) error {
	if s == nil {
		return nil
	}
	last := 0.0
	for i, e := range s.events {
		if math.IsNaN(e.At) || math.IsInf(e.At, 0) || e.At < 0 {
			return fmt.Errorf("faults: machine event %d time %v must be finite and non-negative", i, e.At)
		}
		if e.At < last {
			return fmt.Errorf("faults: machine event %d at %v before predecessor at %v", i, e.At, last)
		}
		last = e.At
		if e.Machine < 0 || e.Machine >= machines {
			return fmt.Errorf("faults: machine event %d machine %d outside fleet [0,%d)", i, e.Machine, machines)
		}
		switch e.Kind {
		case MachineCrash, MachinePartition, MachineRecover, MachineHeal, MachineRestore:
			// No payload.
		case MachineSlow:
			if math.IsNaN(e.Factor) || e.Factor <= 0 || e.Factor >= 1 {
				return fmt.Errorf("faults: machine event %d slow factor %v must lie in (0,1)", i, e.Factor)
			}
		default:
			return fmt.Errorf("faults: machine event %d has non-machine kind %d", i, int(e.Kind))
		}
	}
	return nil
}
