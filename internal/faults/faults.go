// Package faults provides a deterministic fault-injection layer for the
// simulator: a seeded, reproducible Schedule of timed fault events that the
// scheduler runner delivers through the sim event queue.
//
// Four fault families are modeled, chosen because they are exactly where
// energy-aware schedulers break (budget and topology changes):
//
//   - core failure / recovery: a core halts instantly, losing its planned
//     queue (the runner requeues orphaned jobs — the one documented,
//     audited exception to the paper's no-migration rule);
//   - power-budget cap / restore: facility-level power capping shrinks the
//     total budget H mid-run and later restores it;
//   - stuck DVFS: a core's frequency governor wedges at a fixed speed — the
//     degenerate form of DVFS transition latency, where the transition
//     never completes — until it is freed.
//
// A Schedule is either written explicitly from Specs or drawn from an
// MTBF/MTTR generator. Both paths are deterministic: the same specs or the
// same (seed, cores, horizon, mtbf, mttr) tuple yield byte-identical event
// streams on every run and platform (the generator uses the repo's stable
// rng package, not math/rand).
package faults

import (
	"fmt"
	"math"
	"sort"

	"goodenough/internal/obs"
	"goodenough/internal/rng"
)

// Kind labels a fault event.
type Kind int

const (
	// CoreFail halts core Core: its plan is lost and it executes nothing.
	CoreFail Kind = iota
	// CoreRecover returns core Core to service (empty, healthy).
	CoreRecover
	// BudgetCap lowers the total power budget to Watts.
	BudgetCap
	// BudgetRestore returns the budget to its nominal value.
	BudgetRestore
	// SpeedStuck wedges core Core's DVFS at Speed GHz: every plan on the
	// core executes at that speed until SpeedFree.
	SpeedStuck
	// SpeedFree releases a stuck core's DVFS.
	SpeedFree
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CoreFail:
		return "core-fail"
	case CoreRecover:
		return "core-recover"
	case BudgetCap:
		return "budget-cap"
	case BudgetRestore:
		return "budget-restore"
	case SpeedStuck:
		return "speed-stuck"
	case SpeedFree:
		return "speed-free"
	default:
		if s, ok := machineKindString(k); ok {
			return s
		}
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// ParseKind maps the string names accepted in configs ("core-fail",
// "budget-cap", "speed-stuck") to the onset Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "core-fail", "fail":
		return CoreFail, nil
	case "budget-cap", "cap":
		return BudgetCap, nil
	case "speed-stuck", "stuck":
		return SpeedStuck, nil
	default:
		return 0, fmt.Errorf("faults: unknown fault kind %q (core-fail|budget-cap|speed-stuck)", s)
	}
}

// Event is one timed fault occurrence, ready for the sim queue.
type Event struct {
	// At is the simulation time in seconds.
	At float64
	// Kind says what happens.
	Kind Kind
	// Core is the target core for core and DVFS faults.
	Core int
	// Watts is the new total budget for BudgetCap.
	Watts float64
	// Speed is the wedged speed in GHz for SpeedStuck.
	Speed float64
}

// Obs renders the fault as a structured event for the observability bus
// (internal/obs). BudgetRestore carries Value 0 here — the nominal budget
// lives in the runner's config, which fills it in on emission.
func (e Event) Obs() obs.Event {
	ev := obs.Event{Time: e.At, Core: -1, Job: -1}
	switch e.Kind {
	case CoreFail:
		ev.Type, ev.Core = obs.EventCoreFail, e.Core
	case CoreRecover:
		ev.Type, ev.Core = obs.EventCoreRecover, e.Core
	case BudgetCap:
		ev.Type, ev.Value = obs.EventBudgetCap, e.Watts
	case BudgetRestore:
		ev.Type = obs.EventBudgetRestore
	case SpeedStuck:
		ev.Type, ev.Core, ev.Value = obs.EventSpeedStuck, e.Core, e.Speed
	case SpeedFree:
		ev.Type, ev.Core = obs.EventSpeedFree, e.Core
	}
	return ev
}

// Spec is the user-level description of one fault: an onset and an optional
// duration after which the matching recovery event fires automatically.
// Duration 0 means the fault is permanent.
type Spec struct {
	// At is the onset time in seconds.
	At float64
	// Kind must be an onset kind: CoreFail, BudgetCap, or SpeedStuck.
	Kind Kind
	// Core is the target core for CoreFail and SpeedStuck.
	Core int
	// Duration, when positive, schedules the paired recovery at
	// At+Duration; zero makes the fault permanent.
	Duration float64
	// Watts is the capped budget for BudgetCap.
	Watts float64
	// Speed is the wedged speed for SpeedStuck.
	Speed float64
}

// Validate reports whether the spec is well-formed for a machine with the
// given core count.
func (s Spec) Validate(cores int) error {
	if math.IsNaN(s.At) || math.IsInf(s.At, 0) || s.At < 0 {
		return fmt.Errorf("faults: onset time %v must be finite and non-negative", s.At)
	}
	if math.IsNaN(s.Duration) || math.IsInf(s.Duration, 0) || s.Duration < 0 {
		return fmt.Errorf("faults: duration %v must be finite and non-negative", s.Duration)
	}
	switch s.Kind {
	case CoreFail:
		if s.Core < 0 || s.Core >= cores {
			return fmt.Errorf("faults: core %d outside machine [0,%d)", s.Core, cores)
		}
	case BudgetCap:
		if math.IsNaN(s.Watts) || math.IsInf(s.Watts, 0) || s.Watts <= 0 {
			return fmt.Errorf("faults: budget cap %v W must be finite and positive", s.Watts)
		}
	case SpeedStuck:
		if s.Core < 0 || s.Core >= cores {
			return fmt.Errorf("faults: core %d outside machine [0,%d)", s.Core, cores)
		}
		if math.IsNaN(s.Speed) || math.IsInf(s.Speed, 0) || s.Speed <= 0 {
			return fmt.Errorf("faults: stuck speed %v GHz must be finite and positive", s.Speed)
		}
	case CoreRecover, BudgetRestore, SpeedFree:
		return fmt.Errorf("faults: %v is a recovery kind; specs carry the onset plus a Duration", s.Kind)
	default:
		return fmt.Errorf("faults: unknown fault kind %d", int(s.Kind))
	}
	return nil
}

// recovery returns the Kind that undoes an onset.
func recovery(k Kind) Kind {
	switch k {
	case CoreFail:
		return CoreRecover
	case BudgetCap:
		return BudgetRestore
	default:
		return SpeedFree
	}
}

// Schedule is a validated, time-ordered fault event stream.
type Schedule struct {
	events []Event
}

// New expands specs into a time-ordered Schedule, pairing each bounded
// fault with its recovery. Specs are validated against the core count.
func New(specs []Spec, cores int) (*Schedule, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("faults: schedule needs a positive core count, got %d", cores)
	}
	events := make([]Event, 0, 2*len(specs))
	for i, s := range specs {
		if err := s.Validate(cores); err != nil {
			return nil, fmt.Errorf("faults: spec %d: %w", i, err)
		}
		events = append(events, Event{At: s.At, Kind: s.Kind, Core: s.Core, Watts: s.Watts, Speed: s.Speed})
		if s.Duration > 0 {
			events = append(events, Event{At: s.At + s.Duration, Kind: recovery(s.Kind), Core: s.Core})
		}
	}
	sortEvents(events)
	return &Schedule{events: events}, nil
}

// sortEvents orders by time, breaking ties by (kind, core) so equal-time
// streams are deterministic regardless of spec order.
func sortEvents(events []Event) {
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].At != events[b].At {
			return events[a].At < events[b].At
		}
		if events[a].Kind != events[b].Kind {
			return events[a].Kind < events[b].Kind
		}
		return events[a].Core < events[b].Core
	})
}

// Generate draws a per-core alternating failure/repair renewal process:
// each core stays up for an Exp(1/mtbf) time, down for an Exp(1/mttr)
// time, repeating until the horizon. The stream is deterministic for a
// fixed (seed, cores, horizon, mtbf, mttr) tuple, and every failure inside
// the horizon gets its paired recovery (possibly beyond the horizon, so a
// fail is never left dangling).
func Generate(seed uint64, cores int, horizon, mtbf, mttr float64) (*Schedule, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("faults: generator needs a positive core count, got %d", cores)
	}
	if math.IsNaN(horizon) || math.IsInf(horizon, 0) || horizon <= 0 {
		return nil, fmt.Errorf("faults: generator horizon %v must be finite and positive", horizon)
	}
	if math.IsNaN(mtbf) || mtbf <= 0 {
		return nil, fmt.Errorf("faults: MTBF %v must be positive", mtbf)
	}
	if math.IsNaN(mttr) || mttr <= 0 {
		return nil, fmt.Errorf("faults: MTTR %v must be positive", mttr)
	}
	var events []Event
	root := rng.New(seed ^ 0xfa017faBAD5EED)
	for core := 0; core < cores; core++ {
		src := root.Split()
		t := 0.0
		for {
			t += src.Exp(1 / mtbf)
			if t >= horizon {
				break
			}
			down := src.Exp(1 / mttr)
			events = append(events, Event{At: t, Kind: CoreFail, Core: core})
			events = append(events, Event{At: t + down, Kind: CoreRecover, Core: core})
			t += down
		}
	}
	sortEvents(events)
	return &Schedule{events: events}, nil
}

// Events returns a copy of the ordered event stream.
func (s *Schedule) Events() []Event {
	if s == nil {
		return nil
	}
	return append([]Event(nil), s.events...)
}

// Len returns the number of events.
func (s *Schedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

// Validate re-checks the event stream against a machine size. New and
// Generate produce valid schedules; this guards hand-built ones and
// core-count mismatches (a schedule generated for 16 cores applied to 8).
func (s *Schedule) Validate(cores int) error {
	if s == nil {
		return nil
	}
	last := 0.0
	for i, e := range s.events {
		if math.IsNaN(e.At) || math.IsInf(e.At, 0) || e.At < 0 {
			return fmt.Errorf("faults: event %d time %v must be finite and non-negative", i, e.At)
		}
		if e.At < last {
			return fmt.Errorf("faults: event %d at %v before predecessor at %v", i, e.At, last)
		}
		last = e.At
		switch e.Kind {
		case CoreFail, CoreRecover, SpeedStuck, SpeedFree:
			if e.Core < 0 || e.Core >= cores {
				return fmt.Errorf("faults: event %d core %d outside machine [0,%d)", i, e.Core, cores)
			}
			if e.Kind == SpeedStuck && (math.IsNaN(e.Speed) || math.IsInf(e.Speed, 0) || e.Speed <= 0) {
				return fmt.Errorf("faults: event %d stuck speed %v must be finite and positive", i, e.Speed)
			}
		case BudgetCap:
			if math.IsNaN(e.Watts) || math.IsInf(e.Watts, 0) || e.Watts <= 0 {
				return fmt.Errorf("faults: event %d budget cap %v W must be finite and positive", i, e.Watts)
			}
		case BudgetRestore:
			// No payload.
		default:
			return fmt.Errorf("faults: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}
