package faults

import (
	"reflect"
	"strings"
	"testing"
)

func TestNewPairsAndOrders(t *testing.T) {
	specs := []Spec{
		{At: 20, Kind: BudgetCap, Watts: 160, Duration: 30},
		{At: 10, Kind: CoreFail, Core: 3, Duration: 5},
		{At: 10, Kind: CoreFail, Core: 1}, // permanent
		{At: 40, Kind: SpeedStuck, Core: 0, Speed: 1.5, Duration: 2},
	}
	sch, err := New(specs, 16)
	if err != nil {
		t.Fatal(err)
	}
	ev := sch.Events()
	want := []Event{
		{At: 10, Kind: CoreFail, Core: 1},
		{At: 10, Kind: CoreFail, Core: 3},
		{At: 15, Kind: CoreRecover, Core: 3},
		{At: 20, Kind: BudgetCap, Watts: 160},
		{At: 40, Kind: SpeedStuck, Core: 0, Speed: 1.5},
		{At: 42, Kind: SpeedFree, Core: 0},
		{At: 50, Kind: BudgetRestore},
	}
	if !reflect.DeepEqual(ev, want) {
		t.Fatalf("events:\n got %+v\nwant %+v", ev, want)
	}
	if err := sch.Validate(16); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	nan := func() float64 { var z float64; return z / z }()
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"negative-time", Spec{At: -1, Kind: CoreFail}, "finite and non-negative"},
		{"nan-time", Spec{At: nan, Kind: CoreFail}, "finite and non-negative"},
		{"core-out-of-range", Spec{At: 1, Kind: CoreFail, Core: 16}, "outside machine"},
		{"negative-core", Spec{At: 1, Kind: CoreFail, Core: -1}, "outside machine"},
		{"zero-watts", Spec{At: 1, Kind: BudgetCap, Watts: 0}, "finite and positive"},
		{"nan-watts", Spec{At: 1, Kind: BudgetCap, Watts: nan}, "finite and positive"},
		{"zero-speed", Spec{At: 1, Kind: SpeedStuck, Core: 0}, "finite and positive"},
		{"recovery-kind", Spec{At: 1, Kind: CoreRecover}, "recovery kind"},
		{"negative-duration", Spec{At: 1, Kind: CoreFail, Duration: -2}, "finite and non-negative"},
		{"unknown-kind", Spec{At: 1, Kind: Kind(99)}, "unknown fault kind"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate(16)
			if err == nil {
				t.Fatalf("spec %+v accepted", c.spec)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(42, 16, 600, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(42, 16, 600, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same seed produced different schedules")
	}
	c, err := Generate(43, 16, 600, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() > 0 && reflect.DeepEqual(a.Events(), c.Events()) {
		t.Fatal("different seeds produced identical non-empty schedules")
	}
}

func TestGeneratePairsFailures(t *testing.T) {
	sch, err := Generate(7, 8, 1000, 50, 20)
	if err != nil {
		t.Fatal(err)
	}
	if sch.Len() == 0 {
		t.Fatal("expected some failures at MTBF 50 over 1000 s")
	}
	down := make(map[int]bool)
	for _, e := range sch.Events() {
		switch e.Kind {
		case CoreFail:
			if down[e.Core] {
				t.Fatalf("core %d failed twice without recovering", e.Core)
			}
			down[e.Core] = true
		case CoreRecover:
			if !down[e.Core] {
				t.Fatalf("core %d recovered without failing", e.Core)
			}
			down[e.Core] = false
		default:
			t.Fatalf("generator emitted unexpected kind %v", e.Kind)
		}
	}
	for core, d := range down {
		if d {
			t.Fatalf("core %d left failed with no paired recovery", core)
		}
	}
	if err := sch.Validate(8); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	cases := []struct {
		cores               int
		horizon, mtbf, mttr float64
		want                string
	}{
		{0, 100, 10, 1, "positive core count"},
		{4, 0, 10, 1, "horizon"},
		{4, 100, 0, 1, "MTBF"},
		{4, 100, 10, -1, "MTTR"},
	}
	for _, c := range cases {
		_, err := Generate(1, c.cores, c.horizon, c.mtbf, c.mttr)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("Generate(%d,%v,%v,%v) error %v, want mention of %q",
				c.cores, c.horizon, c.mtbf, c.mttr, err, c.want)
		}
	}
}

func TestScheduleValidateCoreMismatch(t *testing.T) {
	sch, err := New([]Spec{{At: 5, Kind: CoreFail, Core: 10, Duration: 1}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(8); err == nil {
		t.Fatal("schedule for 16 cores accepted on an 8-core machine")
	}
}

func TestNilScheduleIsEmpty(t *testing.T) {
	var s *Schedule
	if s.Len() != 0 || s.Events() != nil || s.Validate(4) != nil {
		t.Fatal("nil schedule should behave as empty")
	}
}

func TestParseKind(t *testing.T) {
	for name, want := range map[string]Kind{
		"core-fail": CoreFail, "fail": CoreFail,
		"budget-cap": BudgetCap, "cap": BudgetCap,
		"speed-stuck": SpeedStuck, "stuck": SpeedStuck,
	} {
		got, err := ParseKind(name)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseKind("meteor"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		CoreFail: "core-fail", CoreRecover: "core-recover",
		BudgetCap: "budget-cap", BudgetRestore: "budget-restore",
		SpeedStuck: "speed-stuck", SpeedFree: "speed-free",
		Kind(42): "fault(42)",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
