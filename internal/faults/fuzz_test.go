package faults

import (
	"reflect"
	"testing"
)

// FuzzGenerate asserts the three structural guarantees of the MTBF/MTTR
// generator over arbitrary parameters: events are time-ordered, every
// failure is paired with a later recovery of the same core, and a fixed
// seed reproduces the stream exactly.
func FuzzGenerate(f *testing.F) {
	f.Add(uint64(2017), 16, 600.0, 100.0, 10.0)
	f.Add(uint64(0), 1, 1.0, 0.001, 0.001)
	f.Add(uint64(42), 64, 50.0, 5.0, 500.0)
	f.Fuzz(func(t *testing.T, seed uint64, cores int, horizon, mtbf, mttr float64) {
		if cores > 256 {
			cores %= 256
		}
		sch, err := Generate(seed, cores, horizon, mtbf, mttr)
		if err != nil {
			return // invalid parameters are rejected, not generated around
		}
		events := sch.Events()
		last := 0.0
		down := make(map[int]bool)
		for i, e := range events {
			if e.At < last {
				t.Fatalf("event %d at %v before predecessor at %v", i, e.At, last)
			}
			last = e.At
			switch e.Kind {
			case CoreFail:
				if down[e.Core] {
					t.Fatalf("core %d failed while already down", e.Core)
				}
				down[e.Core] = true
			case CoreRecover:
				if !down[e.Core] {
					t.Fatalf("core %d recovered while up", e.Core)
				}
				down[e.Core] = false
			default:
				t.Fatalf("generator emitted kind %v", e.Kind)
			}
		}
		for core, d := range down {
			if d {
				t.Fatalf("core %d left failed without a paired recovery", core)
			}
		}
		if err := sch.Validate(cores); err != nil {
			t.Fatalf("generated schedule fails validation: %v", err)
		}
		again, err := Generate(seed, cores, horizon, mtbf, mttr)
		if err != nil {
			t.Fatalf("second generation errored: %v", err)
		}
		if !reflect.DeepEqual(events, again.Events()) {
			t.Fatal("same parameters produced different schedules")
		}
	})
}

// FuzzGenerateCluster asserts the same structural guarantees for the
// machine-level MTBF/MTTR generator: time-ordered events, every crash paired
// with a later recovery of the same machine, validation-clean output, and a
// fixed seed reproducing the stream exactly.
func FuzzGenerateCluster(f *testing.F) {
	f.Add(uint64(2017), 10, 60.0, 30.0, 5.0)
	f.Add(uint64(0), 1, 1.0, 0.001, 0.001)
	f.Add(uint64(42), 64, 50.0, 5.0, 500.0)
	f.Fuzz(func(t *testing.T, seed uint64, machines int, horizon, mtbf, mttr float64) {
		if machines > 256 {
			machines %= 256
		}
		sch, err := GenerateCluster(seed, machines, horizon, mtbf, mttr)
		if err != nil {
			return // invalid parameters are rejected, not generated around
		}
		events := sch.Events()
		last := 0.0
		down := make(map[int]bool)
		for i, e := range events {
			if e.At < last {
				t.Fatalf("event %d at %v before predecessor at %v", i, e.At, last)
			}
			last = e.At
			switch e.Kind {
			case MachineCrash:
				if down[e.Machine] {
					t.Fatalf("machine %d crashed while already down", e.Machine)
				}
				down[e.Machine] = true
			case MachineRecover:
				if !down[e.Machine] {
					t.Fatalf("machine %d recovered while up", e.Machine)
				}
				down[e.Machine] = false
			default:
				t.Fatalf("cluster generator emitted kind %v", e.Kind)
			}
		}
		for m, d := range down {
			if d {
				t.Fatalf("machine %d left crashed without a paired recovery", m)
			}
		}
		if err := sch.Validate(machines); err != nil {
			t.Fatalf("generated cluster schedule fails validation: %v", err)
		}
		again, err := GenerateCluster(seed, machines, horizon, mtbf, mttr)
		if err != nil {
			t.Fatalf("second generation errored: %v", err)
		}
		if !reflect.DeepEqual(events, again.Events()) {
			t.Fatal("same parameters produced different cluster schedules")
		}
	})
}
