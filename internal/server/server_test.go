package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"goodenough"
)

// tinyBody is a config overlay that finishes in well under a second.
const tinyBody = `{"DurationSec":0.2,"ArrivalRate":80,"Cores":4}`

// runResult mirrors the /v1/run response shape for decoding.
type runResult struct {
	Result goodenough.Result `json:"result"`
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, client *http.Client, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// blockUntilCancelled is a RunFunc that parks until its context dies, then
// reports the partial-result shape goodenough.RunContext would produce. A
// non-nil started receives one token per invocation.
func blockUntilCancelled(started chan struct{}) RunFunc {
	return func(ctx context.Context, _ goodenough.Config) (goodenough.Result, error) {
		if started != nil {
			started <- struct{}{}
		}
		<-ctx.Done()
		return goodenough.Result{Cancelled: true, CancelReason: ctx.Err().Error()}, nil
	}
}

// counterValue extracts one counter from a /metricz snapshot.
func counterValue(t *testing.T, metricz []byte, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(string(metricz), "\n") {
		f := strings.Fields(line)
		if len(f) == 3 && f[0] == "counter" && f[1] == name {
			v, err := strconv.ParseInt(f[2], 10, 64)
			if err != nil {
				t.Fatalf("counter %s: bad value %q", name, f[2])
			}
			return v
		}
	}
	t.Fatalf("counter %s missing from metricz:\n%s", name, metricz)
	return 0
}

func getBody(t *testing.T, client *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func TestRunEndpointOK(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _, body := postJSON(t, ts.Client(), ts.URL+"/v1/run", tinyBody)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var rr runResult
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Result.Cancelled || rr.Result.Jobs == 0 || rr.Result.SimTime <= 0 {
		t.Fatalf("implausible result: %+v", rr.Result)
	}
}

func TestRunEndpointRejectsBadConfig(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, want string
	}{
		{"invalid field value", `{"Scheduler":"nope"}`, "unknown scheduler"},
		{"unknown json field", `{"Schedular":"ge"}`, "unknown field"},
		{"malformed json", `{"DurationSec":`, "bad config"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, body := postJSON(t, ts.Client(), ts.URL+"/v1/run", tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", code, body)
			}
			if !strings.Contains(string(body), tc.want) {
				t.Fatalf("error %s does not mention %q", body, tc.want)
			}
		})
	}
}

// TestShedQueueFull saturates one worker slot and a one-deep queue, then
// verifies the next request is shed with 429 + Retry-After while the admitted
// ones finish (as partials) once the server drains.
func TestShedQueueFull(t *testing.T) {
	started := make(chan struct{}, 8)
	s, ts := newTestServer(t, Config{
		MaxConcurrent:  1,
		QueueDepth:     1,
		RequestTimeout: time.Minute,
		DrainTimeout:   50 * time.Millisecond,
		RetryAfter:     2 * time.Second,
		Run:            blockUntilCancelled(started),
	})

	type reply struct {
		code int
		body []byte
	}
	replies := make(chan reply, 2)
	fire := func() {
		go func() {
			code, _, body := postJSON(t, ts.Client(), ts.URL+"/v1/run", tinyBody)
			replies <- reply{code, body}
		}()
	}

	fire() // occupies the only slot
	<-started
	fire() // sits in the queue
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queued == 1
	}, "second request never queued")

	// Queue full: this one must be shed immediately with the backoff hint.
	code, hdr, body := postJSON(t, ts.Client(), ts.URL+"/v1/run", tinyBody)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", code, body)
	}
	if ra := hdr.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	var eb struct {
		RetryAfterMS int64 `json:"retry_after_ms"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.RetryAfterMS != 2000 {
		t.Fatalf("shed body %s (err %v), want retry_after_ms 2000", body, err)
	}

	// Drain: the running request is force-cancelled after DrainTimeout and
	// answers 200/partial; the queued one is woken and shed as draining.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	sawPartial := false
	for i := 0; i < 2; i++ {
		r := <-replies
		switch r.code {
		case http.StatusOK:
			var rr runResult
			if err := json.Unmarshal(r.body, &rr); err != nil || !rr.Result.Cancelled {
				t.Fatalf("drained run not partial: %s", r.body)
			}
			sawPartial = true
		case http.StatusServiceUnavailable:
			// the queued waiter, shed by the drain
		default:
			t.Fatalf("unexpected status %d: %s", r.code, r.body)
		}
	}
	if !sawPartial {
		t.Fatal("force-cancelled in-flight run never returned its partial result")
	}
}

// TestDrainGraceful verifies the full drain contract: in-flight runs finish
// (force-cancelled at the deadline), Drain blocks until they do, readiness
// flips to 503, and later submissions are rejected as draining.
func TestDrainGraceful(t *testing.T) {
	started := make(chan struct{}, 2)
	s, ts := newTestServer(t, Config{
		MaxConcurrent: 2,
		DrainTimeout:  50 * time.Millisecond,
		Run:           blockUntilCancelled(started),
	})

	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, _, _ := postJSON(t, ts.Client(), ts.URL+"/v1/run", tinyBody)
			codes <- code
		}()
	}
	<-started
	<-started

	if code, body := getBody(t, ts.Client(), ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d %s", code, body)
	}

	drainStart := time.Now()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(drainStart); d > 5*time.Second {
		t.Fatalf("drain took %v; force-cancel did not bound it", d)
	}
	if s.InFlight() != 0 {
		t.Fatalf("%d runs still in flight after Drain returned", s.InFlight())
	}
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("in-flight run answered %d after drain, want 200/partial", code)
		}
	}

	if code, body := getBody(t, ts.Client(), ts.URL+"/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(string(body), "draining") {
		t.Fatalf("readyz during drain: %d %s", code, body)
	}
	code, _, body := postJSON(t, ts.Client(), ts.URL+"/v1/run", tinyBody)
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("post-drain submission: %d %s", code, body)
	}
	// Idempotent: a second Drain returns immediately.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPanicRecovered verifies the middleware converts a panicking run into a
// structured 500, counts it, and leaves the server serving.
func TestPanicRecovered(t *testing.T) {
	old := debugWriter
	debugWriter = io.Discard // keep the expected stack dump out of test output
	defer func() { debugWriter = old }()

	_, ts := newTestServer(t, Config{
		Run: func(ctx context.Context, cfg goodenough.Config) (goodenough.Result, error) {
			panic("sim state corrupted")
		},
	})
	code, _, body := postJSON(t, ts.Client(), ts.URL+"/v1/run", tinyBody)
	if code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", code, body)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error, "sim state corrupted") {
		t.Fatalf("500 body not structured: %s (err %v)", body, err)
	}

	// The process survived: liveness still answers and the panic is counted.
	if code, _ := getBody(t, ts.Client(), ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after panic: %d", code)
	}
	_, metricz := getBody(t, ts.Client(), ts.URL+"/metricz?format=plain")
	if n := counterValue(t, metricz, "panics_total"); n != 1 {
		t.Fatalf("panics_total = %d, want 1", n)
	}
	// A slot must not have leaked: the next (panicking) request is admitted,
	// not shed.
	code, _, _ = postJSON(t, ts.Client(), ts.URL+"/v1/run", tinyBody)
	if code != http.StatusInternalServerError {
		t.Fatalf("second request after panic: %d, want 500 (admitted)", code)
	}
}

// TestRequestTimeoutReturnsPartial runs a real (unbounded) simulation under a
// tiny request timeout and expects a 200 whose Result is flagged Cancelled —
// the good-enough contract end to end.
func TestRequestTimeoutReturnsPartial(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: 60 * time.Millisecond})
	code, _, body := postJSON(t, ts.Client(), ts.URL+"/v1/run",
		`{"DurationSec":1e6,"ArrivalRate":200,"Cores":4}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var rr runResult
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Result.Cancelled || rr.Result.CancelReason != context.DeadlineExceeded.Error() {
		t.Fatalf("timed-out run not partial: %+v", rr.Result)
	}
	_, metricz := getBody(t, ts.Client(), ts.URL+"/metricz?format=plain")
	if n := counterValue(t, metricz, "run_cancelled_total"); n != 1 {
		t.Fatalf("run_cancelled_total = %d, want 1", n)
	}
}

// TestClientGoneWhileQueued cancels a request stuck in the admission queue
// and verifies the waiter is released and counted.
func TestClientGoneWhileQueued(t *testing.T) {
	started := make(chan struct{}, 1)
	s, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    2,
		DrainTimeout:  50 * time.Millisecond,
		Run:           blockUntilCancelled(started),
	})
	go func() {
		postJSON(t, ts.Client(), ts.URL+"/v1/run", tinyBody)
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run", strings.NewReader(tinyBody))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queued == 1
	}, "second request never queued")
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("cancelled client got a response")
	}
	waitFor(t, func() bool {
		_, metricz := getBody(t, ts.Client(), ts.URL+"/metricz?format=plain")
		for _, line := range strings.Split(string(metricz), "\n") {
			f := strings.Fields(line)
			if len(f) == 3 && f[1] == "client_gone_total" {
				return f[2] == "1"
			}
		}
		return false
	}, "client_gone_total never incremented")
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSweepPoints: 4})
	body := `{"config":{"DurationSec":0.2,"Cores":4},"rates":[80,120],"seeds":[1,2]}`
	code, _, raw := postJSON(t, ts.Client(), ts.URL+"/v1/sweep", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	var sr sweepResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cancelled || len(sr.Points) != 4 {
		t.Fatalf("sweep returned %d points (cancelled=%v), want 4", len(sr.Points), sr.Cancelled)
	}
	for _, p := range sr.Points {
		if p.Result.Jobs == 0 {
			t.Fatalf("empty point %+v", p)
		}
	}

	// One over the fan-out cap is a 400, not a half-run.
	big := `{"config":{},"rates":[1,2,3],"seeds":[1,2]}`
	if code, _, raw := postJSON(t, ts.Client(), ts.URL+"/v1/sweep", big); code != http.StatusBadRequest {
		t.Fatalf("oversized sweep: %d %s", code, raw)
	}
}

func TestTraceEndpoint(t *testing.T) {
	cfg := goodenough.DefaultConfig()
	cfg.DurationSec = 0.2
	cfg.Cores = 4
	var trace strings.Builder
	if err := goodenough.ExportTrace(cfg, &trace); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"config":{"DurationSec":0.2,"Cores":4},"trace":%s}`, trace.String())
	code, _, raw := postJSON(t, ts.Client(), ts.URL+"/v1/trace", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	var rr runResult
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Result.Jobs == 0 {
		t.Fatalf("trace replay processed no jobs: %+v", rr.Result)
	}

	if code, _, raw := postJSON(t, ts.Client(), ts.URL+"/v1/trace", `{"config":{}}`); code != http.StatusBadRequest ||
		!strings.Contains(string(raw), "missing trace") {
		t.Fatalf("traceless request: %d %s", code, raw)
	}
}

// TestConcurrentHammer is the race-focused test: many clients pound one
// server with real (tiny) simulations while others read the health and
// metrics endpoints. Run under -race in CI; correctness assertions are that
// every response is 200 or 429 and that the books balance afterwards.
func TestConcurrentHammer(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxConcurrent:  4,
		QueueDepth:     4,
		RequestTimeout: 30 * time.Second,
	})
	const (
		clients    = 12
		perClient  = 3
		metricGets = 40
	)
	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := map[int]int{}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				code, _, body := postJSON(t, ts.Client(), ts.URL+"/v1/run", tinyBody)
				if code != http.StatusOK && code != http.StatusTooManyRequests {
					t.Errorf("hammer got %d: %s", code, body)
				}
				mu.Lock()
				statuses[code]++
				mu.Unlock()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < metricGets; i++ {
			getBody(t, ts.Client(), ts.URL+"/metricz?format=plain")
			getBody(t, ts.Client(), ts.URL+"/readyz")
		}
	}()
	wg.Wait()

	if statuses[http.StatusOK] == 0 {
		t.Fatalf("no request succeeded: %v", statuses)
	}
	if s.InFlight() != 0 {
		t.Fatalf("%d runs still in flight after hammer", s.InFlight())
	}
	_, metricz := getBody(t, ts.Client(), ts.URL+"/metricz?format=plain")
	okN := counterValue(t, metricz, "run_ok_total")
	shedN := counterValue(t, metricz, "shed_total")
	if int(okN) != statuses[http.StatusOK] || int(shedN) != statuses[http.StatusTooManyRequests] {
		t.Fatalf("metrics disagree with observed statuses: ok %d/%d shed %d/%d",
			okN, statuses[http.StatusOK], shedN, statuses[http.StatusTooManyRequests])
	}
}

// waitFor polls cond with a deadline; cheap substitute for sleeps in tests
// that need the server to reach an internal state.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
