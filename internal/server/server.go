// Package server runs the goodenough simulator as a hardened, long-lived
// HTTP/JSON service — the repo's online serving layer.
//
// The paper's GE scheduler is an online algorithm for interactive services
// under bursty load; this package gives the reproduction the matching
// operational envelope. Admission is a first-class decision, exactly as in
// profit-oriented online scheduling: at most MaxConcurrent simulations run
// at once, at most QueueDepth requests wait behind them, and everything
// beyond that is shed immediately with 429 + Retry-After so clients back
// off instead of piling on. Every run is bounded by a per-request timeout
// and by the client connection: either one cancels the simulation
// mid-flight through the context plumbing in goodenough.RunContext, and the
// partial Result (Cancelled=true) is still returned. Worker panics are
// converted into structured 500s by a recovery middleware instead of
// killing the process. SIGTERM (via Drain) stops admission, lets in-flight
// runs finish inside a drain deadline, then cancels the stragglers.
//
// Endpoints:
//
//	POST /v1/run     one simulation; body is a goodenough.Config overlay
//	POST /v1/trace   replay a recorded workload trace
//	POST /v1/sweep   a batch of runs over rates × seeds (one admission slot)
//	GET  /healthz    liveness (always 200 while the process serves)
//	GET  /readyz     readiness (503 once draining), with metrics snapshot
//	GET  /metricz    the obs registry (Prometheus text; ?format=plain for legacy)
//	GET  /timeseriez recent per-second samples of load metrics, as JSON
package server

import (
	"context"
	"net/http"
	"sync"
	"time"

	"goodenough"
	"goodenough/internal/governor"
	"goodenough/internal/obs"
)

// RunFunc executes one simulation. It exists so tests can substitute
// blocking, panicking, or instant runners; production use keeps the
// default, goodenough.RunContext.
type RunFunc func(ctx context.Context, cfg goodenough.Config) (goodenough.Result, error)

// Config parameterizes the serving layer. The zero value is usable:
// withDefaults fills every field.
type Config struct {
	// MaxConcurrent is the number of simulations allowed to execute
	// simultaneously (default: GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth is how many admitted requests may wait for a worker slot
	// beyond the ones executing; anything past it is shed with 429
	// (default: 2×MaxConcurrent).
	QueueDepth int
	// RequestTimeout bounds each run; expiry cancels the simulation and
	// returns the partial result (default: 30s).
	RequestTimeout time.Duration
	// DrainTimeout is how long Drain waits for in-flight runs before
	// cancelling them (default: 10s).
	DrainTimeout time.Duration
	// RetryAfter is the backoff hint attached to shed responses
	// (default: 1s).
	RetryAfter time.Duration
	// MaxBodyBytes caps request bodies (default: 8 MiB).
	MaxBodyBytes int64
	// MaxSweepPoints bounds the rates×seeds fan-out a single sweep request
	// may ask for (default: 64).
	MaxSweepPoints int
	// Run substitutes the simulation entry point (tests only; default
	// goodenough.RunContext).
	Run RunFunc
	// Spans, when non-nil, traces every request: incoming X-GE-Trace-Id /
	// X-GE-Span-Id headers are joined (or a fresh trace rooted), the
	// request and the scheduler's work become spans on this bus, and the
	// trace ID is echoed on the response. Nil disables tracing at zero
	// hot-path cost.
	Spans *obs.SpanBus
	// Governor, when non-nil, runs the live GE overload control loop over
	// this server's worker pool: requests register with it for budget
	// metering and marginal-quality cutting, admission consults its
	// brownout ladder (shedding → 429 with a drain-derived Retry-After),
	// and /readyz plus the X-GE-Brownout / X-GE-Headroom headers expose
	// its state. New starts the loop (binding the admission-queue probe)
	// and Drain stops it. Nil keeps the pre-governor behavior exactly.
	Governor *governor.Governor
	// SampleInterval is the /timeseriez sampling period (default: 1s).
	SampleInterval time.Duration
	// Journal, when non-nil, is the crash-safe request ledger: every
	// admitted request appends an accept record before work starts and a
	// done record before its response is written, so a crash (SIGKILL, OOM)
	// leaves orphans the next incarnation reports at startup and on
	// /recoveryz. Nil disables journaling; /recoveryz then answers
	// {"enabled": false}. The server does not close the journal — the owner
	// that opened it does, after Drain.
	Journal *Journal
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = defaultConcurrency()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxConcurrent
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 64
	}
	if c.Run == nil {
		c.Run = goodenough.RunContext
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = time.Second
	}
	return c
}

// Server is the admission-controlled simulation service. Create with New,
// expose via Handler, and shut down with Drain.
type Server struct {
	cfg Config
	mux *http.ServeMux

	slots chan struct{} // worker tokens; len == in-flight runs

	mu       sync.Mutex
	queued   int  // admitted requests waiting for a slot
	draining bool // no new admissions once set
	drainCh  chan struct{}
	inflight sync.WaitGroup

	// runCtx is the ancestor of every simulation context; cancelRuns
	// force-cancels whatever is still executing when the drain deadline
	// passes. Cancelled runs return partial results within microseconds
	// (the sim kernel polls its context every few events).
	runCtx     context.Context
	cancelRuns context.CancelFunc

	metrics *obs.SyncRegistry
	spans   *obs.SpanBus
	sampler *obs.Sampler
	started time.Time
}

// New builds a Server; see Config for the knobs.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		slots:      make(chan struct{}, cfg.MaxConcurrent),
		drainCh:    make(chan struct{}),
		runCtx:     ctx,
		cancelRuns: cancel,
		metrics:    newMetrics(),
		spans:      cfg.Spans,
		started:    time.Now(),
	}
	// Live telemetry: the sampler polls values the serving path already
	// maintains, so /timeseriez never touches the request hot path.
	s.sampler = obs.NewSampler(cfg.SampleInterval, 300)
	s.sampler.Track("inflight", func() float64 { return float64(s.InFlight()) })
	s.sampler.Track("queue_depth", func() float64 { return float64(s.QueueDepth()) })
	for _, name := range []string{"requests_total", "run_ok_total", "shed_total", "run_err_total"} {
		name := name
		s.sampler.Track(name, func() float64 { return float64(s.metrics.CounterValue(name)) })
	}
	if cfg.Governor != nil {
		s.sampler.Track("brownout_state", func() float64 { return float64(cfg.Governor.State()) })
		s.sampler.Track("governor_headroom", cfg.Governor.Headroom)
		s.sampler.Track("governor_cut_total", func() float64 { return float64(cfg.Governor.Cuts()) })
		cfg.Governor.BindQueue(s.QueueDepth)
		cfg.Governor.Start()
	}
	s.sampler.Start()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /recoveryz", s.handleRecoveryz)
	s.mux.HandleFunc("GET /metricz", s.handleMetricz)
	s.mux.HandleFunc("GET /timeseriez", s.handleTimeseriez)
	s.mux.Handle("POST /v1/run", s.instrument(http.HandlerFunc(s.handleRun)))
	s.mux.Handle("POST /v1/trace", s.instrument(http.HandlerFunc(s.handleTrace)))
	s.mux.Handle("POST /v1/sweep", s.instrument(http.HandlerFunc(s.handleSweep)))
	return s
}

// Handler returns the full middleware stack: panic recovery wrapping the
// routing mux. Safe for concurrent use.
func (s *Server) Handler() http.Handler {
	return s.recoverPanics(s.mux)
}

// admission is the outcome of one acquire attempt.
type admission int

const (
	admitted admission = iota
	shedQueueFull
	shedDraining
	shedClientGone
	// shedBrownout: the governor's ladder sits at shedding — even cutting
	// every in-flight request to the Q_GE floor cannot fit the budget, so
	// new work is refused before it touches the queue.
	shedBrownout
)

// acquire claims a worker slot, waiting in the bounded admission queue if
// none is free. On success the caller owns one slot and one inflight
// reservation; it must call the returned release exactly once.
func (s *Server) acquire(ctx context.Context) (release func(), verdict admission) {
	// The governor's verdict comes first: a browned-out server sheds before
	// the request can occupy queue space, and the 429 carries the
	// drain-derived Retry-After instead of the static hint.
	if s.cfg.Governor != nil && !s.cfg.Governor.Admit() {
		return nil, shedBrownout
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, shedDraining
	}
	select {
	case s.slots <- struct{}{}: // free worker, no queueing
		s.inflight.Add(1)
		s.mu.Unlock()
		return s.release, admitted
	default:
	}
	if s.queued >= s.cfg.QueueDepth {
		s.mu.Unlock()
		return nil, shedQueueFull
	}
	s.queued++
	s.metrics.GaugeSet("queue_depth", float64(s.queued))
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		s.queued--
		s.metrics.GaugeSet("queue_depth", float64(s.queued))
		s.mu.Unlock()
	}()
	select {
	case s.slots <- struct{}{}:
		s.mu.Lock()
		if s.draining {
			// Drain began while we waited; hand the slot back untouched.
			s.mu.Unlock()
			<-s.slots
			return nil, shedDraining
		}
		s.inflight.Add(1)
		s.mu.Unlock()
		return s.release, admitted
	case <-ctx.Done():
		return nil, shedClientGone
	case <-s.drainCh:
		return nil, shedDraining
	}
}

func (s *Server) release() {
	<-s.slots
	s.inflight.Done()
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// InFlight returns the number of simulations currently executing.
func (s *Server) InFlight() int { return len(s.slots) }

// QueueDepth returns the number of admitted requests waiting for a worker
// slot — the passive-health signal exported as X-GE-Queue-Depth.
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// Drain gracefully shuts the serving layer down: admission stops
// immediately (new requests get 503, queued waiters are woken and shed),
// in-flight runs get DrainTimeout to finish, and whatever is still running
// after that — or after ctx is cancelled, whichever comes first — has its
// simulation context cancelled and completes with a partial result. Drain
// returns once every in-flight request has finished; it is idempotent, and
// concurrent calls all block until the drain completes.
func (s *Server) Drain(ctx context.Context) error {
	defer s.sampler.Stop()
	if s.cfg.Governor != nil {
		// Stop the control loop once nothing is left in flight; tickets
		// settling during the drain still Finish safely after Stop.
		defer s.cfg.Governor.Stop()
	}
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-done:
		s.cancelRuns() // nothing left to cancel; releases the context
		return nil
	case <-ctx.Done():
		s.cancelRuns()
		<-done
		return ctx.Err()
	case <-timer.C:
		// Deadline passed: force-cancel the stragglers. They return
		// partial results promptly, so this wait is short.
		s.cancelRuns()
		<-done
		return nil
	}
}

// runContext derives the context governing one simulation: bounded by the
// per-request timeout, the client connection, and the server-wide
// force-cancel used at the drain deadline.
func (s *Server) runContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	stop := context.AfterFunc(s.runCtx, cancel)
	return ctx, func() { stop(); cancel() }
}
