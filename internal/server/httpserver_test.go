package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestStalledHeaderCannotPinDrain: a slowloris-style connection that opens
// TCP and never finishes its request headers must neither hold the server
// hostage nor delay Shutdown past ReadHeaderTimeout. Before IdleTimeout /
// ReadHeaderTimeout hardening, Shutdown would wait on such a connection
// indefinitely.
func TestStalledHeaderCannotPinDrain(t *testing.T) {
	hs := NewHTTPServer("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}), 150*time.Millisecond, 200*time.Millisecond)

	ln, err := net.Listen("tcp", hs.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	addr := ln.Addr().String()

	// The attacker: connect and dribble half a request line, then stall.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("POST /v1/run HT")); err != nil {
		t.Fatal(err)
	}

	// A well-behaved request still succeeds alongside the stalled one.
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// ReadHeaderTimeout reaps the stalled connection on its own: the server
	// answers 408 (or just closes) and ReadAll sees EOF. If the connection
	// were still alive this read would block to its deadline instead.
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatalf("stalled connection not reaped by ReadHeaderTimeout: %v", err)
	}

	// …and a drain completes promptly even with a fresh staller attached.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.Write([]byte("GET /read"))

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not complete under a stalled-header connection: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("shutdown took %v with a stalled connection; timeouts are not bounding it", d)
	}
}

// TestNewHTTPServerDefaults: zero timeouts select the hardened defaults
// rather than Go's unlimited zero values.
func TestNewHTTPServerDefaults(t *testing.T) {
	hs := NewHTTPServer(":0", nil, 0, 0)
	if hs.ReadHeaderTimeout != 10*time.Second {
		t.Fatalf("ReadHeaderTimeout default = %v", hs.ReadHeaderTimeout)
	}
	if hs.IdleTimeout != 120*time.Second {
		t.Fatalf("IdleTimeout default = %v", hs.IdleTimeout)
	}
	if hs.ReadTimeout != 0 || hs.WriteTimeout != 0 {
		t.Fatal("blanket read/write timeouts set; they would cut long runs")
	}
}
