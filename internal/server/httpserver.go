package server

import (
	"net/http"
	"time"
)

// NewHTTPServer builds the hardened http.Server both geserve and gegate
// listen with. The two timeouts close the slow-client holes that would
// otherwise let a single stalled TCP connection pin a graceful drain:
//
//   - ReadHeaderTimeout bounds how long a connection may dribble (or never
//     send) its request headers. Without it a slowloris-style client holds
//     a connection in the pre-request state forever, and http.Server
//     Shutdown waits for it.
//   - IdleTimeout bounds how long a keep-alive connection may sit between
//     requests, so drains are not hostage to clients that keep sockets
//     open and silent.
//
// Per-request work is already bounded by the application layer (the run
// timeout in geserve, the attempt timeout in gegate), so no blanket
// ReadTimeout/WriteTimeout is set — those would cut off legitimately long
// simulation responses.
//
// Zero timeouts select the defaults (10s header, 120s idle).
func NewHTTPServer(addr string, handler http.Handler, readHeaderTimeout, idleTimeout time.Duration) *http.Server {
	if readHeaderTimeout <= 0 {
		readHeaderTimeout = 10 * time.Second
	}
	if idleTimeout <= 0 {
		idleTimeout = 120 * time.Second
	}
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: readHeaderTimeout,
		IdleTimeout:       idleTimeout,
	}
}
