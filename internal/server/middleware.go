package server

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"goodenough/internal/obs"
)

func defaultConcurrency() int { return runtime.GOMAXPROCS(0) }

// latencyBounds are the request-latency histogram buckets in seconds.
var latencyBounds = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// metrics wraps the simulator's obs.Registry for concurrent use. The
// registry itself is single-threaded by design (one registry per simulation
// run); the serving layer multiplexes many requests onto one registry, so
// every touch goes through the mutex.
type metrics struct {
	mu      sync.Mutex
	reg     *obs.Registry
	latency *obs.Histogram
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	// Pre-create everything so /metricz shows zeros instead of absences.
	for _, name := range []string{
		"requests_total",
		"admitted_total",
		"shed_total",
		"rejected_draining_total",
		"client_gone_total",
		"run_ok_total",
		"run_err_total",
		"run_cancelled_total",
		"panics_total",
	} {
		reg.Counter(name)
	}
	reg.Gauge("queue_depth")
	reg.Gauge("inflight")
	latency, err := reg.Histogram("request_seconds", latencyBounds)
	if err != nil {
		// Static bounds; unreachable unless latencyBounds is edited badly.
		panic(err)
	}
	return &metrics{reg: reg, latency: latency}
}

func (m *metrics) inc(name string) {
	m.mu.Lock()
	m.reg.Counter(name).Inc()
	m.mu.Unlock()
}

func (m *metrics) gaugeSet(name string, v float64) {
	m.mu.Lock()
	m.reg.Gauge(name).Set(v)
	m.mu.Unlock()
}

func (m *metrics) observeLatency(d time.Duration) {
	m.mu.Lock()
	m.latency.Observe(d.Seconds())
	m.mu.Unlock()
}

// writeText renders the registry snapshot to w under the lock.
func (m *metrics) writeText(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.WriteText(w)
}

// recoverPanics converts a panicking handler — most importantly a panic
// inside a simulation run — into a structured 500 instead of a killed
// connection, and counts it. The process keeps serving.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					// The net/http contract for aborted responses.
					panic(p)
				}
				s.metrics.inc("panics_total")
				// Best effort: if the handler already wrote a partial
				// body, the client sees a truncated response; for
				// simulation panics nothing has been written yet, so this
				// is a clean structured error.
				writeJSON(w, http.StatusInternalServerError, errorBody{
					Error: fmt.Sprintf("internal: run panicked: %v", p),
				})
				// The stack goes to stderr, not the client.
				fmt.Fprintf(debugWriter, "geserve: recovered panic: %v\n%s\n", p, debug.Stack())
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// debugWriter receives recovered panic stacks; tests may silence it.
var debugWriter io.Writer = os.Stderr

// instrument counts requests and records end-to-end latency plus the
// in-flight gauge around the run endpoints.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.inc("requests_total")
		start := time.Now()
		next.ServeHTTP(w, r)
		s.metrics.observeLatency(time.Since(start))
	})
}
