package server

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"goodenough/internal/obs"
)

func defaultConcurrency() int { return runtime.GOMAXPROCS(0) }

// latencyBounds are the request-latency histogram buckets in seconds.
var latencyBounds = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// newMetrics builds the server's concurrent registry with every metric
// pre-created so /metricz shows zeros instead of absences.
func newMetrics() *obs.SyncRegistry {
	m := obs.NewSyncRegistry()
	m.Preset([]string{
		"requests_total",
		"admitted_total",
		"shed_total",
		"brownout_shed_total",
		"governor_cut_total",
		"rejected_draining_total",
		"client_gone_total",
		"run_ok_total",
		"run_err_total",
		"run_cancelled_total",
		"panics_total",
	}, []string{
		"queue_depth",
		"inflight",
		"brownout_state",
		"governor_headroom",
	})
	if err := m.NewHistogram("request_seconds", latencyBounds); err != nil {
		// Static bounds; unreachable unless latencyBounds is edited badly.
		panic(err)
	}
	return m
}

// recoverPanics converts a panicking handler — most importantly a panic
// inside a simulation run — into a structured 500 instead of a killed
// connection, and counts it. The process keeps serving.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					// The net/http contract for aborted responses.
					panic(p)
				}
				s.metrics.Inc("panics_total")
				// Best effort: if the handler already wrote a partial
				// body, the client sees a truncated response; for
				// simulation panics nothing has been written yet, so this
				// is a clean structured error.
				writeJSON(w, http.StatusInternalServerError, errorBody{
					Error: fmt.Sprintf("internal: run panicked: %v", p),
				})
				// The stack goes to stderr, not the client.
				fmt.Fprintf(debugWriter, "geserve: recovered panic: %v\n%s\n", p, debug.Stack())
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// debugWriter receives recovered panic stacks; tests may silence it.
var debugWriter io.Writer = os.Stderr

// instrument counts requests, records end-to-end latency, and stamps the
// passive-health headers on every /v1/* reply: X-GE-Inflight and
// X-GE-Queue-Depth report the load observed at admission time — plus, on a
// governed server, X-GE-Brownout and X-GE-Headroom from the control loop —
// so a gateway in front can read replica pressure from ordinary responses
// without scraping /metricz.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.Inc("requests_total")
		w.Header().Set("X-GE-Inflight", strconv.Itoa(s.InFlight()))
		w.Header().Set("X-GE-Queue-Depth", strconv.Itoa(s.QueueDepth()))
		if g := s.cfg.Governor; g != nil {
			state, headroom := g.State(), g.Headroom()
			w.Header().Set("X-GE-Brownout", state.String())
			w.Header().Set("X-GE-Headroom", strconv.FormatFloat(headroom, 'f', 3, 64))
			s.metrics.GaugeSet("brownout_state", float64(state))
			s.metrics.GaugeSet("governor_headroom", headroom)
		}
		start := time.Now()
		next.ServeHTTP(w, r)
		s.metrics.Observe("request_seconds", time.Since(start).Seconds())
	})
}
