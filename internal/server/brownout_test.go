package server

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"goodenough"
	"goodenough/internal/governor"
)

// blockOnRelease is a RunFunc that parks until release is closed,
// regardless of its context — it models a worker that cannot observe
// cancellation promptly, so a governor cut does not immediately empty the
// in-flight set. started (if non-nil) receives one token per invocation.
func blockOnRelease(release, started chan struct{}) RunFunc {
	return func(ctx context.Context, _ goodenough.Config) (goodenough.Result, error) {
		if started != nil {
			started <- struct{}{}
		}
		<-release
		res := goodenough.Result{}
		if ctx.Err() != nil {
			res.Cancelled = true
			res.CancelReason = ctx.Err().Error()
		}
		return res, nil
	}
}

// newGovernor builds a test governor or fails the test.
func newGovernor(t *testing.T, cfg governor.Config) *governor.Governor {
	t.Helper()
	g, err := governor.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGovernedHappyPath: with ample budget the ladder stays at ok, replies
// carry quality 1 and the brownout headers, and /readyz reports the state
// while keeping its "ready" first-line contract.
func TestGovernedHappyPath(t *testing.T) {
	g := newGovernor(t, governor.Config{
		Budget:  1000,
		Quantum: time.Millisecond,
	})
	s, ts := newTestServer(t, Config{MaxConcurrent: 2, Governor: g})
	defer s.Drain(context.Background())

	code, hdr, _ := postJSON(t, ts.Client(), ts.URL+"/v1/run", tinyBody)
	if code != http.StatusOK {
		t.Fatalf("run status = %d, want 200", code)
	}
	if got := hdr.Get("X-GE-Quality"); got == "" {
		t.Fatal("missing X-GE-Quality on governed reply")
	} else if q, err := strconv.ParseFloat(got, 64); err != nil || q != 1 {
		t.Fatalf("X-GE-Quality = %q, want 1.0000 for an uncut run", got)
	}
	if got := hdr.Get("X-GE-Brownout"); got != "ok" {
		t.Fatalf("X-GE-Brownout = %q, want ok", got)
	}
	if got := hdr.Get("X-GE-Headroom"); got == "" {
		t.Fatal("missing X-GE-Headroom on governed reply")
	} else if h, err := strconv.ParseFloat(got, 64); err != nil || h < 0 || h > 1 {
		t.Fatalf("X-GE-Headroom = %q, want a fraction in [0,1]", got)
	}

	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-GE-Brownout"); got != "ok" {
		t.Fatalf("readyz X-GE-Brownout = %q, want ok", got)
	}
	body := readAll(t, resp)
	if !strings.HasPrefix(body, "ready") {
		t.Fatalf("readyz body does not start with ready: %q", firstLine(body))
	}
	if !strings.Contains(firstLine(body), "state=ok") {
		t.Fatalf("readyz first line missing state: %q", firstLine(body))
	}
}

// TestBrownoutShedsWithDrainHint drives a governed server into shedding —
// a starvation budget against a genuinely occupied worker — and checks the
// full brownout surface: 429 + Retry-After on new work, X-GE-Brownout:
// shedding, a 503 "shedding" readyz, and a cut partial result (quality < 1)
// once the occupied worker returns.
func TestBrownoutShedsWithDrainHint(t *testing.T) {
	g := newGovernor(t, governor.Config{
		Budget:       0.05, // one running request is 20x over budget
		Quantum:      time.Millisecond,
		RecoverTicks: 1 << 30, // never recover during the test
	})
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	s, ts := newTestServer(t, Config{
		MaxConcurrent: 2,
		QueueDepth:    2,
		Governor:      g,
		Run:           blockOnRelease(release, started),
	})
	defer s.Drain(context.Background())

	type reply struct {
		code int
		hdr  http.Header
	}
	occupied := make(chan reply, 1)
	go func() {
		code, hdr, _ := postJSON(t, ts.Client(), ts.URL+"/v1/run", tinyBody)
		occupied <- reply{code, hdr}
	}()
	<-started

	deadline := time.Now().Add(5 * time.Second)
	for g.State() != governor.StateShedding {
		if time.Now().After(deadline) {
			t.Fatalf("governor never reached shedding; state=%v", g.State())
		}
		time.Sleep(time.Millisecond)
	}

	// New work is refused with the drain-derived hint.
	code, hdr, body := postJSON(t, ts.Client(), ts.URL+"/v1/run", tinyBody)
	if code != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429 (body %s)", code, body)
	}
	if got := hdr.Get("X-GE-Brownout"); got != "shedding" {
		t.Fatalf("shed X-GE-Brownout = %q, want shedding", got)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("shed Retry-After = %q, want an integer >= 1", hdr.Get("Retry-After"))
	}
	if !strings.Contains(string(body), "brownout") {
		t.Fatalf("shed body does not mention brownout: %s", body)
	}
	if n := s.metrics.CounterValue("brownout_shed_total"); n < 1 {
		t.Fatalf("brownout_shed_total = %d, want >= 1", n)
	}

	// readyz flips to 503 shedding so balancers stop routing here.
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rbody := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz status = %d, want 503 while shedding", resp.StatusCode)
	}
	if !strings.HasPrefix(rbody, "shedding") {
		t.Fatalf("readyz body = %q, want shedding", firstLine(rbody))
	}

	// The occupied worker was cut (its context cancelled by the governor);
	// when it finally returns, the reply is a 200 partial with quality < 1.
	close(release)
	rep := <-occupied
	if rep.code != http.StatusOK {
		t.Fatalf("cut run status = %d, want 200 partial", rep.code)
	}
	q, err := strconv.ParseFloat(rep.hdr.Get("X-GE-Quality"), 64)
	if err != nil || q < 0 || q >= 1 {
		t.Fatalf("cut run X-GE-Quality = %q, want a fraction < 1", rep.hdr.Get("X-GE-Quality"))
	}
	if n := s.metrics.CounterValue("governor_cut_total"); n < 1 {
		t.Fatalf("governor_cut_total = %d, want >= 1", n)
	}
}

// TestReadyzSaturatedWithoutGovernor: an ungoverned server whose admission
// queue is full reports 503 saturated — the passive signal satellite for
// balancers that only probe readiness.
func TestReadyzSaturatedWithoutGovernor(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	s, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    1,
		Run:           blockOnRelease(release, started),
	})
	defer func() {
		close(release)
		s.Drain(context.Background())
	}()

	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ { // one running, one queued
		go func() {
			postJSON(t, ts.Client(), ts.URL+"/v1/run", tinyBody)
			done <- struct{}{}
		}()
	}
	<-started
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled; depth=%d", s.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz status = %d, want 503 when saturated", resp.StatusCode)
	}
	if !strings.HasPrefix(body, "saturated") {
		t.Fatalf("readyz body = %q, want saturated", firstLine(body))
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
