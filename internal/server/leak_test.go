package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"goodenough"
)

// checkNoLeaks polls the goroutine count back down to the recorded baseline
// (plus slack for runtime helpers net/http may have started lazily).
// Scheduling is asynchronous, so a single instantaneous read would flake;
// failing means some goroutine is parked forever, and the dump shows where.
func checkNoLeaks(t *testing.T, baseline int) {
	t.Helper()
	const slack = 3
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestNoGoroutineLeaks drives the three paths most likely to strand a
// goroutine — drain with blocked runs, per-request timeout cancellation, and
// a recovered panic — then verifies the process returns to its baseline
// goroutine count once each test server is torn down.
func TestNoGoroutineLeaks(t *testing.T) {
	old := debugWriter
	debugWriter = io.Discard
	defer func() { debugWriter = old }()
	baseline := runtime.NumGoroutine()

	// Path 1: drain while a run is blocked and a waiter sits in the queue.
	func() {
		started := make(chan struct{}, 2)
		s := New(Config{
			MaxConcurrent: 1,
			QueueDepth:    1,
			DrainTimeout:  30 * time.Millisecond,
			Run:           blockUntilCancelled(started),
		})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		done := make(chan struct{}, 2)
		for i := 0; i < 2; i++ {
			go func() {
				defer func() { done <- struct{}{} }()
				postJSON(t, ts.Client(), ts.URL+"/v1/run", tinyBody)
			}()
		}
		<-started
		waitFor(t, func() bool {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.queued == 1
		}, "waiter never queued")
		if err := s.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		<-done
		<-done
	}()
	checkNoLeaks(t, baseline)

	// Path 2: request-timeout cancellation of a real simulation.
	func() {
		s := New(Config{RequestTimeout: 40 * time.Millisecond})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		code, _, body := postJSON(t, ts.Client(), ts.URL+"/v1/run",
			`{"DurationSec":1e6,"ArrivalRate":200,"Cores":4}`)
		if code != http.StatusOK {
			t.Fatalf("timeout path: %d %s", code, body)
		}
		if err := s.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	checkNoLeaks(t, baseline)

	// Path 3: a recovered panic must not strand the slot bookkeeping or any
	// helper goroutine.
	func() {
		s := New(Config{
			Run: func(ctx context.Context, cfg goodenough.Config) (goodenough.Result, error) {
				panic("leak-test panic")
			},
		})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		if code, _, _ := postJSON(t, ts.Client(), ts.URL+"/v1/run", tinyBody); code != http.StatusInternalServerError {
			t.Fatalf("panic path answered %d, want 500", code)
		}
		if err := s.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	checkNoLeaks(t, baseline)
}
