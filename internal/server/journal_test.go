package server

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func openTestJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// TestJournalLifecycle: a clean accept/done pair leaves no orphans; an
// accept with no done surfaces as one in the next incarnation's recovery.
func TestJournalLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")

	j1 := openTestJournal(t, path)
	if j1.Incarnation() != 1 {
		t.Fatalf("first incarnation = %d, want 1", j1.Incarnation())
	}
	if rec := j1.Recovery(); rec.PriorRecords != 0 || len(rec.Orphans) != 0 {
		t.Fatalf("fresh journal recovery = %+v, want empty", rec)
	}
	j1.Accept("req-clean", "/v1/run")
	j1.Done("req-clean", 200)
	j1.Accept("req-lost", "/v1/run") // crash before done
	j1.Close()

	j2 := openTestJournal(t, path)
	rec := j2.Recovery()
	if j2.Incarnation() != 2 {
		t.Fatalf("second incarnation = %d, want 2", j2.Incarnation())
	}
	if rec.Corrupt != 0 {
		t.Fatalf("corrupt = %d on a cleanly written journal", rec.Corrupt)
	}
	if len(rec.Orphans) != 1 || rec.Orphans[0].ID != "req-lost" || rec.Orphans[0].Inc != 1 {
		t.Fatalf("orphans = %+v, want exactly req-lost from incarnation 1", rec.Orphans)
	}

	// A request finished by incarnation 2 does not re-orphan; the old
	// orphan stays open forever (it can never be finished) but is reported
	// only once per record set, which a third boot still sees.
	j2.Accept("req-fine", "/v1/sweep")
	j2.Done("req-fine", 200)
	j2.Close()
	j3 := openTestJournal(t, path)
	if got := len(j3.Recovery().Orphans); got != 1 {
		t.Fatalf("third boot sees %d orphans, want 1 (the permanent one)", got)
	}
}

// TestJournalTornLine: a crash mid-append tears the final line; the next
// boot counts it corrupt and keeps every whole record.
func TestJournalTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j := openTestJournal(t, path)
	j.Accept("whole", "/v1/run")
	j.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"done","inc":1,"id":"who`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := openTestJournal(t, path)
	rec := j2.Recovery()
	if rec.Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1 torn line", rec.Corrupt)
	}
	if len(rec.Orphans) != 1 || rec.Orphans[0].ID != "whole" {
		t.Fatalf("orphans = %+v, want the whole accept to survive the tear", rec.Orphans)
	}
}

// TestJournalConcurrentAppend hammers Accept/Done from many goroutines and
// checks every line survives whole (the single-Write O_APPEND guarantee).
func TestJournalConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j := openTestJournal(t, path)
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := j.NextID()
				j.Accept(id, "/v1/run")
				j.Done(id, 200)
			}
		}()
	}
	wg.Wait()
	j.Close()
	if errs := j.Errs(); errs != 0 {
		t.Fatalf("journal write errors: %d", errs)
	}

	recs, corrupt, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 0 {
		t.Fatalf("%d corrupt lines from concurrent appends", corrupt)
	}
	want := 1 + writers*per*2 // boot + accept/done pairs
	if len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
	j2 := openTestJournal(t, path)
	if got := len(j2.Recovery().Orphans); got != 0 {
		t.Fatalf("%d orphans after fully paired appends", got)
	}
}

// TestJournaledServer: requests through a journaled server record
// accept/done pairs keyed by the caller's trace ID, and /recoveryz reports
// the prior incarnation's orphans.
func TestJournaledServer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")

	// Incarnation 1 "crashes" with a request mid-flight: simulate by
	// accepting via a blocked run, then abandoning the journal file without
	// a done (close the server without letting the run finish — simplest is
	// to journal the orphan directly, which is exactly what a SIGKILL
	// leaves behind).
	j1 := openTestJournal(t, path)
	j1.Accept("00000000deadbeef", "/v1/run")
	j1.Close()

	j2 := openTestJournal(t, path)
	_, ts := newTestServer(t, Config{Journal: j2})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", strings.NewReader(tinyBody))
	req.Header.Set("X-GE-Trace-Id", "00000000cafef00d")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", resp.StatusCode)
	}

	code, body := getBody(t, http.DefaultClient, ts.URL+"/recoveryz")
	if code != http.StatusOK {
		t.Fatalf("recoveryz status = %d", code)
	}
	var rec recoveryzBody
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatalf("recoveryz body %s: %v", body, err)
	}
	if !rec.Enabled || rec.Incarnation != 2 {
		t.Fatalf("recoveryz = %+v, want enabled incarnation 2", rec)
	}
	if len(rec.Orphans) != 1 || rec.Orphans[0].ID != "00000000deadbeef" {
		t.Fatalf("recoveryz orphans = %+v", rec.Orphans)
	}

	recs, _, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var gotAccept, gotDone bool
	for _, r := range recs {
		if r.Inc != 2 || r.ID != "00000000cafef00d" {
			continue
		}
		switch r.T {
		case "accept":
			gotAccept = true
			if r.Path != "/v1/run" {
				t.Fatalf("accept path = %q", r.Path)
			}
		case "done":
			gotDone = true
			if r.Status != http.StatusOK {
				t.Fatalf("done status = %d", r.Status)
			}
		}
	}
	if !gotAccept || !gotDone {
		t.Fatalf("trace-keyed records missing: accept=%v done=%v in %+v", gotAccept, gotDone, recs)
	}
}

// TestRecoveryzDisabled: without a journal the endpoint stays up and says
// so, so probes and the drill harness can always GET it.
func TestRecoveryzDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := getBody(t, http.DefaultClient, ts.URL+"/recoveryz")
	if code != http.StatusOK {
		t.Fatalf("recoveryz status = %d", code)
	}
	var rec recoveryzBody
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Enabled {
		t.Fatal("recoveryz claims enabled without a journal")
	}
}

// TestJournalShedNotAccepted: a shed request must NOT hit the journal —
// the ledger tracks acknowledged work only, which is what makes orphan
// counts meaningful.
func TestJournalShedNotAccepted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j := openTestJournal(t, path)
	started := make(chan struct{}, 4)
	s, ts := newTestServer(t, Config{
		Journal:       j,
		MaxConcurrent: 1,
		QueueDepth:    1,
		Run:           blockUntilCancelled(started),
	})

	// Fill the worker and the queue, then overflow.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(tinyBody))
			errs <- err
		}()
	}
	<-started // the worker slot is occupied
	waitForQueued(t, s, 1)
	code, _, _ := postJSON(t, http.DefaultClient, ts.URL+"/v1/run", tinyBody)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Drain(ctx)
	for i := 0; i < 2; i++ {
		<-errs
	}

	recs, _, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	accepts := 0
	for _, r := range recs {
		if r.T == "accept" {
			accepts++
		}
	}
	// Only the request that actually ran was journaled: the overflow was
	// shed with 429, and the queued waiter was shed by the drain before
	// admission — neither may appear as accepted work.
	if accepts != 1 {
		t.Fatalf("journal has %d accepts, want 1 (shed requests must not appear)", accepts)
	}
}

// waitForQueued polls until the admission queue holds n waiters.
func waitForQueued(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", n, s.QueueDepth())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
