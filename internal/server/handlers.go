package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"goodenough"
	"goodenough/internal/governor"
	"goodenough/internal/obs"
)

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
	// RetryAfterMS accompanies 429s: the client should back off at least
	// this long (the Retry-After header carries the same hint in whole
	// seconds).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// runResponse wraps one simulation result.
type runResponse struct {
	Result goodenough.Result `json:"result"`
}

// sweepPoint is one entry of a sweep response.
type sweepPoint struct {
	Rate   float64           `json:"rate"`
	Seed   uint64            `json:"seed"`
	Result goodenough.Result `json:"result"`
}

// sweepResponse carries the completed points of a sweep. Cancelled reports
// that the request's deadline (or a drain) interrupted the batch; Points
// then holds the prefix that finished.
type sweepResponse struct {
	Points    []sweepPoint `json:"points"`
	Cancelled bool         `json:"cancelled,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "")
	_ = enc.Encode(v) // the client hanging up is not our error
}

// retryHint is the backoff attached to shed responses: the governor's
// drain-rate-derived estimate when one is running, the static config knob
// otherwise.
func (s *Server) retryHint() time.Duration {
	if s.cfg.Governor != nil {
		return s.cfg.Governor.RetryAfter()
	}
	return s.cfg.RetryAfter
}

// shedResponse emits the load-shedding reply for a verdict other than
// admitted.
func (s *Server) shedResponse(w http.ResponseWriter, verdict admission) {
	switch verdict {
	case shedQueueFull, shedBrownout:
		retry := s.retryHint()
		secs := int64(retry / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		msg := "admission queue full"
		if verdict == shedBrownout {
			s.metrics.Inc("brownout_shed_total")
			w.Header().Set("X-GE-Brownout", s.cfg.Governor.State().String())
			msg = "brownout: shedding to hold quality floor"
		} else {
			s.metrics.Inc("shed_total")
		}
		writeJSON(w, http.StatusTooManyRequests, errorBody{
			Error:        msg,
			RetryAfterMS: retry.Milliseconds(),
		})
	case shedDraining:
		s.metrics.Inc("rejected_draining_total")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server draining"})
	case shedClientGone:
		s.metrics.Inc("client_gone_total")
		// 499-style: the client is gone, but write something valid anyway.
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "client cancelled while queued"})
	}
}

// decodeConfig reads a goodenough.Config overlay: the body's fields are
// applied on top of DefaultConfig, so `{"DurationSec": 2}` is a complete
// request. Unknown fields are rejected — they are almost always typos.
func (s *Server) decodeConfig(w http.ResponseWriter, r *http.Request, raw []byte) (goodenough.Config, bool) {
	cfg := goodenough.DefaultConfig()
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad config: %v", err)})
		return goodenough.Config{}, false
	}
	return cfg, true
}

// readBody slurps the (size-capped) request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(body); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("reading body: %v", err)})
		return nil, false
	}
	return buf.Bytes(), true
}

// execute admits, runs, and accounts one simulation closure. The closure
// receives the bounded run context and returns the response payload.
func (s *Server) execute(w http.ResponseWriter, r *http.Request,
	run func(ctx context.Context) (any, error)) {
	// Tracing: join the caller's trace (or root a fresh one), echo the IDs
	// so the client can stitch, and finish the span exactly once on every
	// exit path. With a nil bus all of this is nil-receiver no-ops.
	span := s.spans.Start(r.URL.Path, obs.SpanServer, obs.ParseSpanContext(r.Header))
	span.Context().Inject(w.Header())
	defer s.spans.Finish(span)

	release, verdict := s.acquire(r.Context())
	if verdict != admitted {
		span.SetNote("shed")
		s.shedResponse(w, verdict)
		return
	}
	defer release()
	s.metrics.Inc("admitted_total")
	s.metrics.GaugeSet("inflight", float64(s.InFlight()))
	defer func() { s.metrics.GaugeSet("inflight", float64(s.InFlight()-1)) }()

	// Journal the acceptance before any work runs, and the outcome before
	// the response goes out; see the ordering argument in journal.go. The
	// request identity is the caller's trace ID when one arrived, so the
	// drill harness can reconcile client-side acknowledgements against this
	// ledger.
	jdone := func(status int) {}
	if j := s.cfg.Journal; j != nil {
		id := j.NextID()
		if sc := obs.ParseSpanContext(r.Header); sc.Valid() {
			id = fmt.Sprintf("%016x", sc.Trace)
		}
		j.Accept(id, r.URL.Path)
		jdone = func(status int) { j.Done(id, status) }
	}

	ctx, cancel := s.runContext(r)
	defer cancel()
	// Enroll with the governor: the ticket meters this request against the
	// power budget every quantum, and a cut fires cancel — the same context
	// plumbing the timeout uses — so the run returns a partial Result.
	var ticket *governor.Ticket
	if g := s.cfg.Governor; g != nil {
		ticket = g.Register(0, cancel, span.Context())
		// Idempotent backstop: a panicking run must still settle its ticket
		// or the governor meters a ghost forever.
		defer ticket.Finish()
	}
	if s.spans != nil {
		ctx = obs.ContextWithSpan(ctx, s.spans, span.Context())
	}
	payload, err := run(ctx)
	if ticket != nil {
		q, cut := ticket.Finish()
		if cut {
			s.metrics.Inc("governor_cut_total")
		}
		// Achieved quality rides every governed reply; geload aggregates it
		// into the batch-quality distribution.
		w.Header().Set("X-GE-Quality", strconv.FormatFloat(q, 'f', 4, 64))
	}
	if err != nil {
		span.SetNote("error")
		s.metrics.Inc("run_err_total")
		// goodenough.RunContext reports cancellation as a partial result,
		// not an error, so an error here is a config/trace problem — except
		// with substituted RunFuncs, which may surface the context error
		// directly.
		if errIsCancel(err) {
			jdone(http.StatusServiceUnavailable)
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
			return
		}
		jdone(http.StatusBadRequest)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	s.metrics.Inc("run_ok_total")
	jdone(http.StatusOK)
	writeJSON(w, http.StatusOK, payload)
}

// handleRun executes one simulation. Body: a goodenough.Config overlay.
// A run that hits the request timeout (or a drain force-cancel) still
// answers 200 with Result.Cancelled=true — partial results are the point
// of a good-enough service.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	cfg, ok := s.decodeConfig(w, r, raw)
	if !ok {
		return
	}
	if err := cfg.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	s.execute(w, r, func(ctx context.Context) (any, error) {
		res, err := s.cfg.Run(ctx, cfg)
		if err != nil {
			return nil, err
		}
		if res.Cancelled {
			s.metrics.Inc("run_cancelled_total")
		}
		return runResponse{Result: res}, nil
	})
}

// traceRequest is the /v1/trace body: a config overlay plus the recorded
// trace JSON (as produced by goodenough.ExportTrace or cmd/getrace).
type traceRequest struct {
	Config json.RawMessage `json:"config"`
	Trace  json.RawMessage `json:"trace"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req traceRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	if len(req.Trace) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing trace"})
		return
	}
	cfgRaw := req.Config
	if len(cfgRaw) == 0 {
		cfgRaw = []byte("{}")
	}
	cfg, ok := s.decodeConfig(w, r, cfgRaw)
	if !ok {
		return
	}
	s.execute(w, r, func(ctx context.Context) (any, error) {
		res, err := goodenough.RunTraceContext(ctx, cfg, bytes.NewReader(req.Trace))
		if err != nil {
			return nil, err
		}
		if res.Cancelled {
			s.metrics.Inc("run_cancelled_total")
		}
		return runResponse{Result: res}, nil
	})
}

// sweepRequest is the /v1/sweep body: one config overlay fanned out over
// arrival rates and/or seeds. Empty lists fall back to the config's own
// rate/seed, so {"config":{}, "rates":[100,200]} is two points.
type sweepRequest struct {
	Config json.RawMessage `json:"config"`
	Rates  []float64       `json:"rates"`
	Seeds  []uint64        `json:"seeds"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req sweepRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	cfgRaw := req.Config
	if len(cfgRaw) == 0 {
		cfgRaw = []byte("{}")
	}
	base, ok := s.decodeConfig(w, r, cfgRaw)
	if !ok {
		return
	}
	rates := req.Rates
	if len(rates) == 0 {
		rates = []float64{base.ArrivalRate}
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{base.Seed}
	}
	points := len(rates) * len(seeds)
	if points > s.cfg.MaxSweepPoints {
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error: fmt.Sprintf("sweep asks for %d points, limit is %d", points, s.cfg.MaxSweepPoints),
		})
		return
	}
	// Validate every point before admitting, so a sweep never half-runs on
	// a config error.
	for _, rate := range rates {
		cfg := base
		cfg.ArrivalRate = rate
		if err := cfg.Validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
	}
	s.execute(w, r, func(ctx context.Context) (any, error) {
		resp := sweepResponse{Points: make([]sweepPoint, 0, points)}
		for _, rate := range rates {
			for _, seed := range seeds {
				if ctx.Err() != nil {
					resp.Cancelled = true
					return resp, nil
				}
				cfg := base
				cfg.ArrivalRate = rate
				cfg.Seed = seed
				res, err := s.cfg.Run(ctx, cfg)
				if err != nil {
					return nil, err
				}
				if res.Cancelled {
					s.metrics.Inc("run_cancelled_total")
					resp.Cancelled = true
					resp.Points = append(resp.Points, sweepPoint{Rate: rate, Seed: seed, Result: res})
					return resp, nil
				}
				resp.Points = append(resp.Points, sweepPoint{Rate: rate, Seed: seed, Result: res})
			}
		}
		return resp, nil
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok uptime=%s\n", time.Since(s.started).Round(time.Second))
}

// handleReadyz answers 200 with a metrics snapshot while the server admits
// work, 503 once it cannot — draining, a governor ladder at shedding, or
// (ungoverned) a saturated admission queue — the signal load balancers and
// gegate probes use to stop routing. The 200 body's first line always
// starts with "ready" (scripts grep for it); governed servers append the
// ladder state and headroom, and stamp X-GE-Brownout on every answer.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	if g := s.cfg.Governor; g != nil {
		state := g.State()
		w.Header().Set("X-GE-Brownout", state.String())
		w.Header().Set("X-GE-Headroom", strconv.FormatFloat(g.Headroom(), 'f', 3, 64))
		if state == governor.StateShedding {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "shedding retry_after=%s\n", g.RetryAfter())
			return
		}
		fmt.Fprintf(w, "ready state=%s headroom=%.3f\n", state, g.Headroom())
		_ = s.metrics.WriteText(w)
		return
	}
	if s.QueueDepth() >= s.cfg.QueueDepth {
		// Ungoverned saturation: every queue slot is taken, so the next
		// request would be shed — tell the balancer before it sends one.
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "saturated")
		return
	}
	fmt.Fprintln(w, "ready")
	_ = s.metrics.WriteText(w)
}

// recoveryzBody is the /recoveryz response: the startup reconciliation of
// the crash journal, plus the live journal-write error count.
type recoveryzBody struct {
	Enabled  bool  `json:"enabled"`
	Errs     int64 `json:"journal_errs,omitempty"`
	Recovery       // inlined: incarnation, prior_records, corrupt, orphans
}

// handleRecoveryz reports what this incarnation found in the crash journal
// at startup: its boot count and the requests a predecessor accepted but
// never finished. The drill harness audits these orphans against the
// gateway's retry accounting.
func (s *Server) handleRecoveryz(w http.ResponseWriter, r *http.Request) {
	j := s.cfg.Journal
	if j == nil {
		writeJSON(w, http.StatusOK, recoveryzBody{Enabled: false})
		return
	}
	rec := j.Recovery()
	if rec.Orphans == nil {
		rec.Orphans = []Orphan{} // JSON [] beats null for consumers
	}
	writeJSON(w, http.StatusOK, recoveryzBody{Enabled: true, Errs: j.Errs(), Recovery: rec})
}

// handleMetricz renders the registry in the Prometheus text exposition
// format by default; ?format=plain keeps the legacy `kind name value`
// lines for scripts and humans.
func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "plain" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = s.metrics.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	_ = s.metrics.WritePrometheus(w)
}

// handleTimeseriez dumps the sampler rings as JSON: the last ~5 minutes
// of inflight, queue depth, and counter series at SampleInterval
// resolution. cmd/gestat polls this to draw live sparklines.
func (s *Server) handleTimeseriez(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.sampler.WriteJSON(w)
}

// errIsCancel reports whether err is a context cancellation.
func errIsCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
