package server

import (
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// requireLoadHeaders parses the passive-health headers a gateway reads off
// every /v1/* reply, failing if either is missing or malformed.
func requireLoadHeaders(t *testing.T, h http.Header) (inflight, queued int) {
	t.Helper()
	for _, name := range []string{"X-GE-Inflight", "X-GE-Queue-Depth"} {
		if h.Get(name) == "" {
			t.Fatalf("reply missing %s header", name)
		}
	}
	inflight, err := strconv.Atoi(h.Get("X-GE-Inflight"))
	if err != nil {
		t.Fatalf("X-GE-Inflight %q not an integer", h.Get("X-GE-Inflight"))
	}
	queued, err = strconv.Atoi(h.Get("X-GE-Queue-Depth"))
	if err != nil {
		t.Fatalf("X-GE-Queue-Depth %q not an integer", h.Get("X-GE-Queue-Depth"))
	}
	if inflight < 0 || queued < 0 {
		t.Fatalf("negative load headers: inflight=%d queued=%d", inflight, queued)
	}
	return inflight, queued
}

// TestPassiveHealthHeaders: every /v1/* reply — success, config error, and
// shed alike — carries X-GE-Inflight / X-GE-Queue-Depth so the gateway's
// picker can weigh replicas without scraping metricz.
func TestPassiveHealthHeaders(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, header, body := postJSON(t, ts.Client(), ts.URL+"/v1/run", tinyBody)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	requireLoadHeaders(t, header)

	// Config errors are instrumented too.
	code, header, _ = postJSON(t, ts.Client(), ts.URL+"/v1/run", `{"Cores":-1}`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad config: status %d", code)
	}
	requireLoadHeaders(t, header)
}

// TestPassiveHealthHeadersUnderLoad: with the worker slot pinned, shed
// replies report the true queue pressure the admission layer saw.
func TestPassiveHealthHeadersUnderLoad(t *testing.T) {
	started := make(chan struct{}, 8)
	s, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    1,
		Run:           blockUntilCancelled(started),
	})

	// Pin the only worker slot, then fill the one queue seat.
	errc := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", strings.NewReader(tinyBody))
			errc <- err
		}()
	}
	<-started // the first request is executing; the second is queued
	waitFor(t, func() bool { return s.QueueDepth() == 1 }, "second request never queued")

	// The third request is shed — and its 429 still reports load honestly.
	code, header, _ := postJSON(t, ts.Client(), ts.URL+"/v1/run", tinyBody)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 with a full queue", code)
	}
	inflight, queued := requireLoadHeaders(t, header)
	if inflight != 1 || queued != 1 {
		t.Fatalf("shed reply reports inflight=%d queued=%d, want 1/1", inflight, queued)
	}

	// Unblock: cancel the pinned runs by draining the server.
	s.cancelRuns()
	for i := 0; i < 2; i++ {
		<-errc
	}
}
