package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// The request journal is geserve's crash-safety ledger: an append-only
// JSONL file recording every boot, every admitted request, and every
// completion. The ordering discipline carries the correctness argument:
//
//   - "accept" is written after admission but BEFORE any work runs, so a
//     SIGKILL mid-run leaves an accept with no matching done — an orphan
//     the next incarnation reports on startup and via /recoveryz.
//   - "done" is written BEFORE the response bytes go out, so a crash
//     between the two yields a false "done" for a request the client never
//     saw acknowledged. That is the safe direction: the client (or the
//     gateway's retry) treats the silence as failure and resends; the
//     invariant the drill harness checks — no request both acknowledged to
//     the client and absent from the journal — still holds.
//
// Records are written with a single Write syscall on an O_APPEND
// descriptor, so concurrent request goroutines interleave whole lines, and
// a torn final line from a crash mid-write is detected (not fatal) on the
// next open.

// JournalRecord is one line of the journal file.
type JournalRecord struct {
	// T is the record type: "boot", "accept", or "done".
	T string `json:"t"`
	// Inc is the incarnation (boot count) that wrote the record.
	Inc int64 `json:"inc"`
	// TS is the wall-clock time of the record in unix nanoseconds.
	TS int64 `json:"ts"`
	// ID identifies the request on accept/done records: the 16-hex-digit
	// trace ID when the caller sent one (X-GE-Trace-Id), else a local
	// "inc-seq" identity. Empty on boot records.
	ID string `json:"id,omitempty"`
	// Path is the endpoint on accept records.
	Path string `json:"path,omitempty"`
	// Status is the HTTP status on done records.
	Status int `json:"status,omitempty"`
	// PID is the process ID on boot records.
	PID int `json:"pid,omitempty"`
}

// Orphan is an accepted request from a previous incarnation that never
// recorded a done: work the process acknowledged taking and then lost to a
// crash.
type Orphan struct {
	Inc  int64  `json:"inc"`
	ID   string `json:"id"`
	Path string `json:"path"`
	TS   int64  `json:"ts"`
}

// Recovery is the startup reconciliation report: what this incarnation
// found in the journal left by its predecessors. Served by /recoveryz.
type Recovery struct {
	Incarnation  int64 `json:"incarnation"`
	PriorRecords int   `json:"prior_records"`
	// Corrupt counts unparseable lines — almost always exactly one, the
	// line a crash tore mid-write.
	Corrupt int      `json:"corrupt"`
	Orphans []Orphan `json:"orphans"`
}

// Journal is the open, writable journal held by a running server.
type Journal struct {
	f    *os.File
	path string
	inc  int64
	seq  atomic.Uint64
	errs atomic.Int64
	rec  Recovery
}

// OpenJournal opens (creating if needed) the journal at path, reconciles
// every record left by previous incarnations into a Recovery report, and
// appends this incarnation's boot record.
func OpenJournal(path string) (*Journal, error) {
	prior, corrupt, err := ReadJournal(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	var lastInc int64
	open := make(map[string]Orphan, 8)
	for _, r := range prior {
		if r.Inc > lastInc {
			lastInc = r.Inc
		}
		switch r.T {
		case "accept":
			open[r.ID] = Orphan{Inc: r.Inc, ID: r.ID, Path: r.Path, TS: r.TS}
		case "done":
			delete(open, r.ID)
		}
	}
	orphans := make([]Orphan, 0, len(open))
	for _, o := range open {
		orphans = append(orphans, o)
	}
	// Deterministic order for logs and tests: journal position.
	for i := 1; i < len(orphans); i++ {
		for j := i; j > 0 && orphans[j].TS < orphans[j-1].TS; j-- {
			orphans[j], orphans[j-1] = orphans[j-1], orphans[j]
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{
		f:    f,
		path: path,
		inc:  lastInc + 1,
		rec: Recovery{
			Incarnation:  lastInc + 1,
			PriorRecords: len(prior),
			Corrupt:      corrupt,
			Orphans:      orphans,
		},
	}
	j.append(JournalRecord{T: "boot", Inc: j.inc, TS: time.Now().UnixNano(), PID: os.Getpid()})
	return j, nil
}

// Recovery returns the startup reconciliation report (immutable after
// OpenJournal).
func (j *Journal) Recovery() Recovery { return j.rec }

// Incarnation returns this process's boot count in the journal.
func (j *Journal) Incarnation() int64 { return j.inc }

// Errs returns the number of journal writes that failed. A failing journal
// never fails requests — durability of the ledger degrades, serving does
// not — but the count is exported so operators notice.
func (j *Journal) Errs() int64 { return j.errs.Load() }

// NextID mints a local request identity for callers that sent no trace ID.
func (j *Journal) NextID() string {
	return fmt.Sprintf("%d-%d", j.inc, j.seq.Add(1))
}

// Accept records that the request was admitted and is about to run. Must
// be called before any work happens on the request's behalf.
func (j *Journal) Accept(id, path string) {
	j.append(JournalRecord{T: "accept", Inc: j.inc, TS: time.Now().UnixNano(), ID: id, Path: path})
}

// Done records the request's outcome. Must be called before the response
// is written to the client.
func (j *Journal) Done(id string, status int) {
	j.append(JournalRecord{T: "done", Inc: j.inc, TS: time.Now().UnixNano(), ID: id, Status: status})
}

func (j *Journal) append(r JournalRecord) {
	line, err := json.Marshal(r)
	if err != nil {
		j.errs.Add(1)
		return
	}
	line = append(line, '\n')
	// One Write on an O_APPEND fd: concurrent appenders cannot tear each
	// other's lines, and a crash tears at most the final line.
	if _, err := j.f.Write(line); err != nil {
		j.errs.Add(1)
	}
}

// Close closes the journal file. No final record is written — a clean
// shutdown is visible as "no orphans", not as a marker that a crash could
// forge by its absence.
func (j *Journal) Close() error { return j.f.Close() }

// ReadJournal parses every well-formed record in the journal at path and
// counts the malformed lines. Used by OpenJournal's reconciliation and by
// the drill harness's acknowledged-vs-journal audit.
func ReadJournal(path string) (records []JournalRecord, corrupt int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r JournalRecord
		if json.Unmarshal(line, &r) != nil || r.T == "" {
			corrupt++
			continue
		}
		records = append(records, r)
	}
	if err := sc.Err(); err != nil {
		return records, corrupt, err
	}
	return records, corrupt, nil
}
