package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newPoolGateway builds a gateway over the given backends with fast test
// timings; probes stay off unless the test calls Start.
func newPoolGateway(t *testing.T, cfg Config, backends ...*httptest.Server) (*Gateway, *httptest.Server) {
	t.Helper()
	for _, b := range backends {
		cfg.Replicas = append(cfg.Replicas, b.URL)
	}
	if cfg.BreakerOpenFor == 0 {
		cfg.BreakerOpenFor = 100 * time.Millisecond
	}
	if cfg.HedgeMinDelay == 0 {
		cfg.HedgeMinDelay = 20 * time.Millisecond
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	front := httptest.NewServer(g.Handler())
	t.Cleanup(front.Close)
	return g, front
}

// okBackend answers 200 with a tiny JSON body and counts requests.
func okBackend(t *testing.T, hits *atomic.Int64, delay time.Duration) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		if delay > 0 {
			// Drain the body first: net/http only watches for client
			// disconnects (cancelling r.Context) once the request body has
			// been consumed.
			_, _ = io.Copy(io.Discard, r.Body)
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-GE-Queue-Depth", "0")
		fmt.Fprint(w, `{"result":{"Jobs":1}}`)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// failBackend answers 500 and counts requests.
func failBackend(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func postRun(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

// TestFailoverAroundDeadReplica: one replica serves 500s, the other is
// healthy; every client request must succeed, the dead replica's breaker
// must open, and the breaker metrics must show up in metricz.
func TestFailoverAroundDeadReplica(t *testing.T) {
	var badHits atomic.Int64
	bad := failBackend(t, &badHits)
	good := okBackend(t, nil, 0)
	g, front := newPoolGateway(t, Config{BreakerFailures: 2, RetryBudgetBurst: 100}, bad, good)

	for i := 0; i < 10; i++ {
		resp, body := postRun(t, front.URL)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, resp.StatusCode, body)
		}
		if rep := resp.Header.Get("X-GE-Replica"); rep != "replica1" {
			t.Fatalf("request %d served by %q, want replica1", i, rep)
		}
	}
	if n := g.Metrics().CounterValue("breaker_open_total"); n < 1 {
		t.Fatalf("breaker_open_total = %d, want >= 1", n)
	}
	// Once open, the breaker stops the hammering: the bad replica saw at
	// most its threshold plus a half-open trial or two.
	if n := badHits.Load(); n > 5 {
		t.Fatalf("dead replica hit %d times despite an open breaker", n)
	}
	resp, err := http.Get(front.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metricz, _ := io.ReadAll(resp.Body)
	for _, name := range []string{"breaker_open_total", "hedges_fired_total", "hedges_won_total", "replica0_inflight", "retries_total"} {
		if !strings.Contains(string(metricz), name) {
			t.Fatalf("metricz missing %s:\n%s", name, metricz)
		}
	}
}

// TestBreakerRecoversThroughHalfOpen: a replica fails, its breaker opens,
// the replica heals, and after the open window a half-open trial closes
// the breaker again.
func TestBreakerRecoversThroughHalfOpen(t *testing.T) {
	var healthy atomic.Bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if healthy.Load() {
			fmt.Fprint(w, `{"result":{}}`)
			return
		}
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	t.Cleanup(flaky.Close)
	g, front := newPoolGateway(t, Config{
		BreakerFailures:  1,
		BreakerOpenFor:   50 * time.Millisecond,
		RetryBudgetBurst: 100,
		MaxAttempts:      1, // isolate the breaker: no retries, no second replica
		DisableHedging:   true,
	}, flaky)

	if resp, _ := postRun(t, front.URL); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing replica passed through %d, want 500", resp.StatusCode)
	}
	// Breaker open: the gateway sheds instead of trying the replica.
	if resp, body := postRun(t, front.URL); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d body %s, want 503", resp.StatusCode, body)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Fatal("gateway shed without a Retry-After hint")
	}

	healthy.Store(true)
	time.Sleep(60 * time.Millisecond) // let the open window lapse
	if resp, body := postRun(t, front.URL); resp.StatusCode != http.StatusOK {
		t.Fatalf("half-open trial: status %d body %s, want 200", resp.StatusCode, body)
	}
	if g.replicas[0].br.State() != breakerClosed {
		t.Fatalf("breaker %v after successful trial, want closed", g.replicas[0].br.State())
	}
	if n := g.Metrics().CounterValue("breaker_close_total"); n != 1 {
		t.Fatalf("breaker_close_total = %d, want 1", n)
	}
}

// TestHalfOpenTrialSurvives429: a replica that recovers from an outage into
// overload answers its half-open trial with 429. That must resolve the trial
// (cooldown, no strike) so a later trial can close the breaker — not wedge
// the replica out of the pool until gateway restart.
func TestHalfOpenTrialSurvives429(t *testing.T) {
	var mode atomic.Int32 // 0: 500s, 1: 429s, 2: healthy
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode.Load() {
		case 0:
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
		case 1:
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
		default:
			fmt.Fprint(w, `{"result":{}}`)
		}
	}))
	t.Cleanup(flaky.Close)
	g, front := newPoolGateway(t, Config{
		BreakerFailures:  1,
		BreakerOpenFor:   50 * time.Millisecond,
		RetryBudgetBurst: 100,
		MaxAttempts:      1,
		DisableHedging:   true,
	}, flaky)

	postRun(t, front.URL) // 500 trips the breaker open
	mode.Store(1)
	time.Sleep(60 * time.Millisecond) // open window lapses
	if resp, body := postRun(t, front.URL); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("half-open trial: status %d body %s, want 429 passthrough", resp.StatusCode, body)
	}
	mode.Store(2)
	// The 429 trial must have released the probe slot: the next request is
	// admitted as a fresh trial and closes the breaker.
	if resp, body := postRun(t, front.URL); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-429 trial: status %d body %s, want 200", resp.StatusCode, body)
	}
	if st := g.replicas[0].br.State(); st != breakerClosed {
		t.Fatalf("breaker %v after recovery, want closed", st)
	}
}

// TestHedgeWinsOverSlowReplica: the primary stalls, the hedge goes to the
// fast replica and wins, and the slow attempt is cancelled.
func TestHedgeWinsOverSlowReplica(t *testing.T) {
	slowCancelled := make(chan struct{}, 16)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's background read can observe the
		// gateway abandoning this connection and cancel r.Context —
		// exactly what geserve's JSON decode does before simulating.
		_, _ = io.Copy(io.Discard, r.Body)
		select {
		case <-time.After(5 * time.Second):
			fmt.Fprint(w, `{"result":{}}`)
		case <-r.Context().Done():
			slowCancelled <- struct{}{}
		}
	}))
	t.Cleanup(slow.Close)
	fast := okBackend(t, nil, 0)
	g, front := newPoolGateway(t, Config{
		HedgeMinDelay:    10 * time.Millisecond,
		RetryBudgetBurst: 100,
	}, slow, fast)

	hedgeWins := 0
	for i := 0; i < 6; i++ {
		resp, body := postRun(t, front.URL)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, resp.StatusCode, body)
		}
		if resp.Header.Get("X-GE-Hedged") != "" {
			hedgeWins++
			if rep := resp.Header.Get("X-GE-Replica"); rep != "replica1" {
				t.Fatalf("hedge won on %q, want the fast replica1", rep)
			}
		}
	}
	// The round-robin tiebreak sends roughly half the primaries to the slow
	// replica; each of those must be rescued by a hedge.
	if hedgeWins == 0 {
		t.Fatal("no request was rescued by a hedge")
	}
	if n := g.Metrics().CounterValue("hedges_won_total"); int(n) != hedgeWins {
		t.Fatalf("hedges_won_total = %d, client saw %d hedged responses", n, hedgeWins)
	}
	if n := g.Metrics().CounterValue("hedges_fired_total"); n < int64(hedgeWins) {
		t.Fatalf("hedges_fired_total = %d < won %d", n, hedgeWins)
	}
	// The abandoned slow attempts must have been cancelled, not leaked.
	select {
	case <-slowCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("slow attempt was never cancelled after losing the hedge race")
	}
}

// TestHedgeLoserCancelDoesNotTripBreaker: a healthy-but-slower replica that
// keeps losing hedge races gets its attempts cancelled by the gateway; those
// self-inflicted cancellations must not feed its breaker or error metrics.
func TestHedgeLoserCancelDoesNotTripBreaker(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		select {
		case <-time.After(5 * time.Second):
			fmt.Fprint(w, `{"result":{}}`)
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(slow.Close)
	fast := okBackend(t, nil, 0)
	g, front := newPoolGateway(t, Config{
		HedgeMinDelay:    10 * time.Millisecond,
		BreakerFailures:  2,
		RetryBudgetBurst: 100,
	}, slow, fast)

	for i := 0; i < 8; i++ {
		resp, body := postRun(t, front.URL)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, resp.StatusCode, body)
		}
	}
	// Let the last losing attempt observe its cancellation before asserting.
	waitFor(t, func() bool { return g.replicas[0].inflight.Load() == 0 },
		"slow replica attempt never unwound")
	if st := g.replicas[0].br.State(); st != breakerClosed {
		t.Fatalf("hedge-loser cancellations tripped the slow replica's breaker (state %v)", st)
	}
	if n := g.Metrics().CounterValue("replica0_errs_total"); n != 0 {
		t.Fatalf("replica0_errs_total = %d: gateway-cancelled attempts counted as replica errors", n)
	}
}

// TestOversizeResponseFailsOver: a response larger than the relay cap must
// fail the attempt (and fail over to a replica whose answer fits), never be
// silently truncated and relayed with a 200.
func TestOversizeResponseFailsOver(t *testing.T) {
	big := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		chunk := make([]byte, 1<<20)
		for written := int64(0); written <= maxRelayBytes; written += int64(len(chunk)) {
			if _, err := w.Write(chunk); err != nil {
				return
			}
		}
	}))
	t.Cleanup(big.Close)
	good := okBackend(t, nil, 0)
	g, front := newPoolGateway(t, Config{
		RetryBudgetBurst: 100,
		DisableHedging:   true,
	}, big, good)

	for i := 0; i < 3; i++ {
		resp, body := postRun(t, front.URL)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want failover to 200", i, resp.StatusCode)
		}
		if rep := resp.Header.Get("X-GE-Replica"); rep != "replica1" {
			t.Fatalf("request %d: a %d-byte truncated body was relayed from %s", i, len(body), rep)
		}
	}
	if n := g.Metrics().CounterValue("replica0_errs_total"); n < 1 {
		t.Fatal("oversize responses were never counted as attempt errors")
	}
	// Oversize is a relay-policy failure, not replica sickness.
	if st := g.replicas[0].br.State(); st != breakerClosed {
		t.Fatalf("oversize responses tripped the breaker (state %v)", st)
	}
}

// TestRetryBudgetExhaustionUnderTotalOutage: with a 100%-failing pool and
// breakers pinned closed, the retry budget is what bounds amplification —
// upstream attempts stay near N(1+ratio)+burst instead of N×MaxAttempts.
func TestRetryBudgetExhaustionUnderTotalOutage(t *testing.T) {
	var hits atomic.Int64
	bad1 := failBackend(t, &hits)
	bad2 := failBackend(t, &hits)
	const (
		n     = 20
		ratio = 0.2
		burst = 2
	)
	g, front := newPoolGateway(t, Config{
		BreakerFailures:  1 << 30, // keep breakers closed: isolate the budget
		RetryBudgetRatio: ratio,
		RetryBudgetBurst: burst,
		DisableHedging:   true,
	}, bad1, bad2)

	for i := 0; i < n; i++ {
		resp, body := postRun(t, front.URL)
		// Every response is the passed-through 500 (never a hang, never a
		// gateway-manufactured error).
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d body %s, want 500 passthrough", i, resp.StatusCode, body)
		}
	}
	if n := g.Metrics().CounterValue("retry_budget_exhausted_total"); n == 0 {
		t.Fatal("retry_budget_exhausted_total = 0: the budget never bit")
	}
	maxAttempts := int64(n + burst + int(float64(n)*ratio) + 1)
	if got := hits.Load(); got > maxAttempts {
		t.Fatalf("upstream attempts %d exceed the budget bound %d", got, maxAttempts)
	}
	if retries := g.Metrics().CounterValue("retries_total"); retries >= n {
		t.Fatalf("retries_total = %d for %d requests: retry amplification unbounded", retries, n)
	}
}

// TestAllBreakersOpenSheds: once every replica's breaker is open the
// gateway sheds instantly with 503 + Retry-After instead of queueing or
// hammering dead backends.
func TestAllBreakersOpenSheds(t *testing.T) {
	var hits atomic.Int64
	bad := failBackend(t, &hits)
	g, front := newPoolGateway(t, Config{
		BreakerFailures:  1,
		BreakerOpenFor:   time.Minute,
		MaxAttempts:      1,
		DisableHedging:   true,
		RetryBudgetBurst: 100,
	}, bad)

	postRun(t, front.URL) // trips the breaker
	before := hits.Load()
	for i := 0; i < 5; i++ {
		resp, body := postRun(t, front.URL)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("shed %d: status %d body %s", i, resp.StatusCode, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error, "no healthy replica") {
			t.Fatalf("shed body %s (err %v)", body, err)
		}
	}
	if hits.Load() != before {
		t.Fatalf("dead replica reached %d more times behind an open breaker", hits.Load()-before)
	}
	if n := g.Metrics().CounterValue("gw_no_replica_total"); n != 5 {
		t.Fatalf("gw_no_replica_total = %d, want 5", n)
	}
}

// TestCooldownAfterShed: a replica answering 429 + Retry-After is parked
// (cooldown), not breaker-tripped, and traffic flows to its peer.
func TestCooldownAfterShed(t *testing.T) {
	var shedHits atomic.Int64
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		shedHits.Add(1)
		w.Header().Set("Retry-After", "5")
		http.Error(w, `{"error":"admission queue full"}`, http.StatusTooManyRequests)
	}))
	t.Cleanup(shedding.Close)
	good := okBackend(t, nil, 0)
	g, front := newPoolGateway(t, Config{RetryBudgetBurst: 100}, shedding, good)

	for i := 0; i < 8; i++ {
		resp, body := postRun(t, front.URL)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, resp.StatusCode, body)
		}
	}
	// First touch sheds, then the cooldown steers everything to the peer.
	if n := shedHits.Load(); n > 2 {
		t.Fatalf("shedding replica hit %d times despite its Retry-After cooldown", n)
	}
	if st := g.replicas[0].br.State(); st != breakerClosed {
		t.Fatalf("429s tripped the breaker (state %v); they are load, not sickness", st)
	}
}

// TestProbeMarksReplicaUnready: with active probes running, a replica whose
// readyz fails stops receiving traffic even though its data path still
// answers, and readyz on the gateway reflects pool health.
func TestProbeMarksReplicaUnready(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	probed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			if !ready.Load() {
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ready")
			return
		}
		fmt.Fprint(w, `{"result":{}}`)
	}))
	t.Cleanup(probed.Close)
	good := okBackend(t, nil, 0)
	g, front := newPoolGateway(t, Config{
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
		RetryBudgetBurst: 100,
	}, probed, good)
	g.Start()

	ready.Store(false)
	waitFor(t, func() bool { return !g.replicas[0].probeOK.Load() }, "probe never marked replica0 unready")
	for i := 0; i < 6; i++ {
		resp, _ := postRun(t, front.URL)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d failed with %d", i, resp.StatusCode)
		}
		if rep := resp.Header.Get("X-GE-Replica"); rep != "replica1" {
			t.Fatalf("request %d routed to unready %s", i, rep)
		}
	}
	ready.Store(true)
	waitFor(t, func() bool { return g.replicas[0].probeOK.Load() }, "probe never marked replica0 ready again")

	resp, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway readyz %d with a healthy pool", resp.StatusCode)
	}
}

// TestReplicazAndAttribution: the replicaz page lists every replica and
// responses carry attribution headers.
func TestReplicazAndAttribution(t *testing.T) {
	good := okBackend(t, nil, 0)
	_, front := newPoolGateway(t, Config{}, good)
	resp, body := postRun(t, front.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-GE-Replica") != "replica0" || resp.Header.Get("X-GE-Attempts") != "1" {
		t.Fatalf("attribution headers missing: %+v", resp.Header)
	}
	_ = body
	rz, err := http.Get(front.URL + "/replicaz")
	if err != nil {
		t.Fatal(err)
	}
	defer rz.Body.Close()
	page, _ := io.ReadAll(rz.Body)
	if !strings.Contains(string(page), "replica0") || !strings.Contains(string(page), "breaker=closed") {
		t.Fatalf("replicaz page incomplete:\n%s", page)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty replica pool")
	}
	if _, err := New(Config{Replicas: []string{"not a url"}}); err == nil {
		t.Fatal("New accepted a relative replica URL")
	}
}

// pickScratchFor returns a fresh, reset pick scratch for direct pick calls
// in tests and benchmarks.
func pickScratchFor(g *Gateway) *pickScratch {
	sc := g.scratch.Get().(*pickScratch)
	sc.reset()
	return sc
}

// waitFor polls cond with a deadline.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
