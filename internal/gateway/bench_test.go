package gateway

import (
	"fmt"
	"testing"
	"time"
)

// benchGateway builds a gateway over n fake replica URLs. pick never dials,
// so the addresses only need to parse.
func benchGateway(b *testing.B, n int, cfg Config) *Gateway {
	b.Helper()
	for i := 0; i < n; i++ {
		cfg.Replicas = append(cfg.Replicas, fmt.Sprintf("http://10.0.0.%d:8080", i+1))
	}
	g, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(g.Close)
	// Spread some load state so the sort has real work to do.
	for i, rep := range g.replicas {
		rep.inflight.Store(int64(i % 4))
		rep.queueDepth.Store(int64((i * 3) % 7))
	}
	return g
}

func benchPick(b *testing.B, g *Gateway) {
	b.Helper()
	// Warm the scratch pool outside the measured region.
	sc := g.scratch.Get().(*pickScratch)
	sc.reset()
	if g.pick(sc) == nil {
		b.Fatal("pick returned nil on a healthy pool")
	}
	g.scratch.Put(sc)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := g.scratch.Get().(*pickScratch)
		sc.reset()
		rep := g.pick(sc)
		rep.inflight.Add(1)
		rep.inflight.Add(-1)
		g.scratch.Put(sc)
	}
}

// BenchmarkGatewayPick is the per-request replica-selection path: scratch
// checkout, two-pass partition, weighted least-loaded sort, breaker
// admission. Gated at 0 allocs/op in BENCH_BASELINE.json.
func BenchmarkGatewayPick(b *testing.B) {
	g := benchGateway(b, 8, Config{})
	benchPick(b, g)
}

// BenchmarkGatewayPickSlowStart is the same path with two replicas held
// mid-ramp, so the weight math and in-flight caps are live. Must stay
// 0 allocs/op too.
func BenchmarkGatewayPickSlowStart(b *testing.B) {
	g := benchGateway(b, 8, Config{
		RejoinRampSteps: 3,
		RejoinRampStep:  time.Hour, // hold step 0 for the whole run
	})
	for _, rep := range g.replicas[:2] {
		rep.markDown(time.Now().Add(-time.Second))
		g.noteRejoin(rep)
	}
	benchPick(b, g)
}
