package gateway

import (
	"testing"
	"time"
)

// fakeClock drives the breaker's timed transitions without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(threshold int, openFor time.Duration) (*breaker, *fakeClock, *[]string) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	var transitions []string
	b := newBreaker(threshold, openFor, func(from, to breakerState) {
		transitions = append(transitions, from.String()+">"+to.String())
	})
	b.now = clk.now
	return b, clk, &transitions
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _, trans := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.Failure()
	}
	if b.State() != breakerClosed {
		t.Fatalf("state %v after 2/3 failures, want closed", b.State())
	}
	b.Failure()
	if b.State() != breakerOpen {
		t.Fatalf("state %v after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted an attempt")
	}
	if len(*trans) != 1 || (*trans)[0] != "closed>open" {
		t.Fatalf("transitions %v, want [closed>open]", *trans)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b, _, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success() // streak broken
	b.Failure()
	b.Failure()
	if b.State() != breakerClosed {
		t.Fatalf("state %v, want closed: the streak was interrupted", b.State())
	}
	b.Failure()
	if b.State() != breakerOpen {
		t.Fatalf("state %v, want open after 3 consecutive failures", b.State())
	}
}

// TestBreakerHalfOpenRecovery walks the full recovery path: open → timed
// half-open with single-probe admission → success closes it.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	b, clk, trans := newTestBreaker(1, time.Second)
	b.Failure() // opens immediately at threshold 1
	if b.Allow() {
		t.Fatal("open breaker admitted before openFor elapsed")
	}
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open trial after openFor")
	}
	if b.State() != breakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	// Single-probe admission: a second concurrent attempt is refused.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second trial")
	}
	b.Success()
	if b.State() != breakerClosed {
		t.Fatalf("state %v after trial success, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("recovered breaker refused traffic")
	}
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(*trans) != len(want) {
		t.Fatalf("transitions %v, want %v", *trans, want)
	}
	for i := range want {
		if (*trans)[i] != want[i] {
			t.Fatalf("transitions %v, want %v", *trans, want)
		}
	}
}

// TestBreakerHalfOpenFailureReopens is the re-trip path: a failed half-open
// probe re-opens the breaker for another full window.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk, _ := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no half-open trial admitted")
	}
	b.Failure() // trial failed
	if b.State() != breakerOpen {
		t.Fatalf("state %v after failed trial, want open", b.State())
	}
	// The new open window starts at the re-trip, not the original trip.
	clk.advance(900 * time.Millisecond)
	if b.Allow() {
		t.Fatal("re-opened breaker admitted before its fresh window elapsed")
	}
	clk.advance(200 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("re-opened breaker never re-admitted a trial")
	}
	b.Success()
	if b.State() != breakerClosed {
		t.Fatalf("state %v, want closed after second trial success", b.State())
	}
}

// TestBreakerNeutralReleasesHalfOpenTrial: a half-open trial that resolves
// neutrally (429 shedding, or an attempt the gateway cancelled itself) must
// release the single-probe slot so a later trial can be admitted — without
// closing the breaker or re-opening the window. Regression: a 429'd trial
// used to leave probing set forever, permanently refusing the replica.
func TestBreakerNeutralReleasesHalfOpenTrial(t *testing.T) {
	b, clk, _ := newTestBreaker(2, time.Second)
	b.Failure()
	b.Neutral() // closed: no-op, must not reset the failure streak
	b.Failure()
	if b.State() != breakerOpen {
		t.Fatalf("state %v, want open: Neutral must not interrupt the streak", b.State())
	}
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no half-open trial admitted after openFor")
	}
	b.Neutral() // the trial came back 429 or was cancelled by the gateway
	if b.State() != breakerHalfOpen {
		t.Fatalf("state %v after neutral trial, want still half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("breaker refused a fresh trial after the previous one resolved neutrally")
	}
	b.Success()
	if b.State() != breakerClosed {
		t.Fatalf("state %v, want closed after the second trial succeeded", b.State())
	}
}

// TestBreakerStragglerOutcomesWhileOpen verifies late results from attempts
// admitted before the trip do not corrupt the open state.
func TestBreakerStragglerOutcomesWhileOpen(t *testing.T) {
	b, _, _ := newTestBreaker(1, time.Second)
	b.Failure()
	b.Success() // straggler
	if b.State() != breakerOpen {
		t.Fatalf("straggler success closed an open breaker (state %v)", b.State())
	}
	b.Failure() // straggler
	if b.State() != breakerOpen {
		t.Fatalf("state %v, want open", b.State())
	}
}

func TestBudgetBoundsAndRefund(t *testing.T) {
	b := newBudget(0.5, 2)
	if !b.withdraw() || !b.withdraw() {
		t.Fatal("full bucket refused its burst")
	}
	if b.withdraw() {
		t.Fatal("empty bucket granted a token")
	}
	// Four deposits at ratio 0.5 earn two tokens.
	for i := 0; i < 4; i++ {
		b.deposit()
	}
	if got := b.level(); got != 2 {
		t.Fatalf("level %v after 4 deposits, want 2", got)
	}
	// Deposits never exceed the burst cap.
	b.deposit()
	if got := b.level(); got != 2 {
		t.Fatalf("level %v, want capped at burst 2", got)
	}
	if !b.withdraw() {
		t.Fatal("replenished bucket refused")
	}
	b.refund()
	if got := b.level(); got != 2 {
		t.Fatalf("level %v after refund, want 2", got)
	}
}

func TestDelayTrackerWarmupAndQuantile(t *testing.T) {
	tr := newDelayTracker(0.95, 10*time.Millisecond, time.Second, 64)
	if d := tr.delay(); d != 10*time.Millisecond {
		t.Fatalf("cold tracker delay %v, want the 10ms floor", d)
	}
	for i := 0; i < 100; i++ {
		tr.observe(100 * time.Millisecond)
	}
	if d := tr.delay(); d != 100*time.Millisecond {
		t.Fatalf("delay %v with uniform 100ms samples, want 100ms", d)
	}
	// The ceiling clamps pathological tails.
	for i := 0; i < 200; i++ {
		tr.observe(10 * time.Second)
	}
	if d := tr.delay(); d != time.Second {
		t.Fatalf("delay %v, want clamped to the 1s ceiling", d)
	}
}
