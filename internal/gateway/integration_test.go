package gateway

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"goodenough/internal/chaos"
	"goodenough/internal/server"
)

// TestChaosFailoverIntegration is the PR's acceptance scenario end to end:
// three real geserve replicas, one of them behind a chaos proxy that
// black-holes the connection 0.3s into the run for 3s. A steady stream of
// /v1/run requests (plus a sweep) flows through the gateway for ~1.1s —
// spanning the outage onset — and every single one must succeed: stalled
// attempts are rescued by hedges, the sick replica's breaker opens, and the
// metrics page shows all of it.
func TestChaosFailoverIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}

	newReplicaServer := func() *httptest.Server {
		srv := server.New(server.Config{
			MaxConcurrent:  4,
			RequestTimeout: 10 * time.Second,
		})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	victim := newReplicaServer()
	healthy1 := newReplicaServer()
	healthy2 := newReplicaServer()

	// The victim sits behind a chaos proxy that goes dark at t=0.3s.
	sched, err := chaos.New([]chaos.Spec{{At: 0.3, Kind: chaos.Blackhole, Duration: 3}})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := chaos.NewProxy("127.0.0.1:0",
		strings.TrimPrefix(victim.URL, "http://"), sched, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = proxy.Close() })
	proxy.Start()

	g, err := New(Config{
		Replicas:         []string{"http://" + proxy.Addr(), healthy1.URL, healthy2.URL},
		ProbeInterval:    300 * time.Millisecond,
		ProbeTimeout:     250 * time.Millisecond,
		BreakerFailures:  2,
		BreakerOpenFor:   2 * time.Second,
		HedgeMinDelay:    25 * time.Millisecond,
		MaxAttempts:      3,
		RetryBudgetBurst: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	g.Start()
	front := httptest.NewServer(g.Handler())
	t.Cleanup(front.Close)

	client := &http.Client{Timeout: 15 * time.Second}
	runBody := `{"Scheduler":"ge","ArrivalRate":80,"DurationSec":0.05,"Cores":4}`
	requests, failures := 0, 0
	start := time.Now()
	for time.Since(start) < 1100*time.Millisecond {
		resp, err := client.Post(front.URL+"/v1/run", "application/json", strings.NewReader(runBody))
		requests++
		if err != nil {
			failures++
			t.Errorf("request %d: %v", requests, err)
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			failures++
			t.Errorf("request %d: status %d body %s", requests, resp.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// One sweep mid-outage rides the same failover machinery.
	sweepBody := `{"config":{"Scheduler":"ge","DurationSec":0.05,"Cores":4},"rates":[60,90]}`
	resp, err := client.Post(front.URL+"/v1/sweep", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	sweepOut, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d body %s", resp.StatusCode, sweepOut)
	}

	if failures > 0 {
		t.Fatalf("%d/%d client requests failed across the outage; failover must hide the blackhole", failures, requests)
	}
	if requests < 20 {
		t.Fatalf("only %d requests offered; the run did not span the outage", requests)
	}
	if won := g.Metrics().CounterValue("hedges_won_total"); won < 1 {
		t.Fatalf("hedges_won_total = %d; stalled attempts were not rescued by hedges", won)
	}
	if fails := g.Metrics().CounterValue("probe_fail_total"); fails < 1 {
		t.Fatalf("probe_fail_total = %d; active probes never noticed the blackhole", fails)
	}

	mresp, err := http.Get(front.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	metricz, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, name := range []string{
		"breaker_open_total", "breaker_halfopen_total",
		"hedges_fired_total", "hedges_won_total",
		"retry_budget_tokens", "replica0_probe_ok", "gw_request_seconds",
	} {
		if !strings.Contains(string(metricz), name) {
			t.Errorf("metricz missing %s", name)
		}
	}
	t.Logf("offered %d requests across the outage: 0 failures, hedges won %d, sweep ok (%d bytes)",
		requests, g.Metrics().CounterValue("hedges_won_total"), len(sweepOut))
}
