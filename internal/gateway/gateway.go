// Package gateway is the resilient replica front tier for geserve fleets:
// an HTTP gateway that load-balances /v1/run, /v1/trace, and /v1/sweep
// across a pool of replicas and keeps answering when individual replicas
// stall or die.
//
// Per replica it runs a state machine driven by two signal paths:
//
//   - active probes: a background loop GETs each replica's /readyz on a
//     fixed interval; failures mark the replica not-ready so the picker
//     avoids it before a single client request has to pay for discovery;
//   - passive signals: every proxied response updates the replica's state —
//     5xx, connection errors, and timeouts feed its circuit breaker;
//     429 + Retry-After parks it in a cooldown (overloaded, not sick);
//     X-GE-Queue-Depth becomes the picker's load tiebreak.
//
// The circuit breaker is the classic closed → open → half-open automaton
// with single-probe admission in half-open. Hedged requests cover the
// latency tail: when the primary attempt has been in flight longer than a
// quantile of recent upstream latencies (clamped to [HedgeMinDelay,
// HedgeMaxDelay]), one duplicate attempt is sent to a different replica;
// the first response wins and the loser's context is cancelled, which the
// replica's PR-3 plumbing turns into an abandoned partial run within
// microseconds. A global retry budget (token bucket refilled by client
// traffic) bounds retries + hedges so they cannot amplify a pool-wide
// outage into a self-inflicted storm.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"goodenough/internal/obs"
)

// Config parameterizes the gateway. Zero values get defaults; only
// Replicas is required.
type Config struct {
	// Replicas are the geserve base URLs to balance across (required).
	Replicas []string
	// ProbeInterval is the active /readyz probe period (default 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe (default 2s).
	ProbeTimeout time.Duration
	// BreakerFailures is the consecutive-failure count that opens a
	// replica's breaker (default 3).
	BreakerFailures int
	// BreakerOpenFor is how long an open breaker refuses traffic before
	// admitting a half-open trial (default 2s).
	BreakerOpenFor time.Duration
	// RejoinRampSteps is the number of reduced-weight steps a recovered
	// replica climbs before taking full traffic again (default 3: weights
	// 1/8, 1/4, 1/2 with concurrent-in-flight caps 1, 2, 4, then full).
	// The breaker's half-open state admits one probe; this extends that
	// into a multi-step ramp so a replica restarted under overload is not
	// instantly handed a full share of a thundering herd.
	RejoinRampSteps int
	// RejoinRampStep is how long each slow-start step lasts (default 500ms).
	RejoinRampStep time.Duration
	// DisableSlowStart turns the rejoin ramp off (A/B runs); outages are
	// still tracked in the rejoin_seconds histogram.
	DisableSlowStart bool
	// DisableHedging turns tail-latency hedging off (for A/B runs).
	DisableHedging bool
	// QualityAware makes the picker sort replicas by their governor
	// signals first — brownout ladder position ascending, then budget
	// headroom descending — before the in-flight/queue-depth load order.
	// With ungoverned replicas (no X-GE-Brownout headers) every replica
	// reports ok/full-headroom and the ordering degenerates to the
	// classic one, so the flag is safe to leave on in mixed pools.
	QualityAware bool
	// HedgeQuantile is the latency quantile that sets the hedge delay
	// (default 0.95).
	HedgeQuantile float64
	// HedgeMinDelay floors the hedge delay and is used while the latency
	// tracker warms up (default 50ms).
	HedgeMinDelay time.Duration
	// HedgeMaxDelay caps the hedge delay (default 2s).
	HedgeMaxDelay time.Duration
	// MaxAttempts caps upstream attempts per client request, hedges
	// included (default 3).
	MaxAttempts int
	// RetryBudgetRatio is the retry/hedge tokens earned per client request
	// (default 0.2 — extra attempts bounded at 20% of traffic).
	RetryBudgetRatio float64
	// RetryBudgetBurst is the bucket cap and initial fill (default 16).
	RetryBudgetBurst float64
	// RequestTimeout bounds one whole client request through the gateway,
	// all attempts included (default 90s).
	RequestTimeout time.Duration
	// RetryAfter is the hint attached when the gateway itself sheds
	// (no eligible replica; default 1s).
	RetryAfter time.Duration
	// CooldownCap clamps replica Retry-After hints (default 15s).
	CooldownCap time.Duration
	// MaxBodyBytes caps client request bodies (default 8 MiB).
	MaxBodyBytes int64
	// Transport overrides the upstream round tripper (tests).
	Transport http.RoundTripper
	// Spans, when non-nil, traces every proxied request: the client's
	// X-GE-Trace-Id / X-GE-Span-Id headers are joined (or a fresh trace
	// rooted), each upstream attempt becomes a sibling span annotated
	// won/lost, and the trace context is forwarded to the replica. Nil
	// disables tracing at zero hot-path cost.
	Spans *obs.SpanBus
	// SampleInterval is the /timeseriez sampling period (default: 1s).
	SampleInterval time.Duration
	// Logf, when set, receives one line per noteworthy transition
	// (breaker flips, probe state changes).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerOpenFor <= 0 {
		c.BreakerOpenFor = 2 * time.Second
	}
	if c.RejoinRampSteps <= 0 {
		c.RejoinRampSteps = 3
	}
	if c.RejoinRampStep <= 0 {
		c.RejoinRampStep = 500 * time.Millisecond
	}
	if c.DisableSlowStart {
		c.RejoinRampSteps = 0
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = 50 * time.Millisecond
	}
	if c.HedgeMaxDelay <= 0 {
		c.HedgeMaxDelay = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBudgetRatio <= 0 {
		c.RetryBudgetRatio = 0.2
	}
	if c.RetryBudgetBurst <= 0 {
		c.RetryBudgetBurst = 16
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 90 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CooldownCap <= 0 {
		c.CooldownCap = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Gateway fronts a pool of geserve replicas. Create with New, start the
// probe loops with Start, serve Handler, stop with Close.
type Gateway struct {
	cfg      Config
	replicas []*replica
	mux      *http.ServeMux
	client   *http.Client
	metrics  *obs.SyncRegistry
	spans    *obs.SpanBus
	sampler  *obs.Sampler
	budget   *budget
	hedge    *delayTracker

	rr      atomic.Uint64 // round-robin tiebreak cursor
	scratch sync.Pool     // *pickScratch, reused across serveProxy calls

	probeCtx    context.Context
	probeCancel context.CancelFunc
	probeWG     sync.WaitGroup
	startOnce   sync.Once

	started time.Time
}

// errorBody mirrors the replica-side JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// maxRelayBytes caps how much of an upstream response body the gateway will
// buffer and relay. Responses over the cap fail the attempt rather than being
// silently truncated.
const maxRelayBytes = 64 << 20

// latencyBounds are the request-latency histogram buckets in seconds.
var latencyBounds = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// rejoinBounds bucket replica recovery times (down → back in the pool) in
// seconds: sub-second for in-process restarts through minutes for a crash
// loop fighting its backoff.
var rejoinBounds = []float64{
	0.1, 0.25, 0.5, 1, 2, 5, 10, 30, 60, 120, 300,
}

// New builds a Gateway over the configured replica pool.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("gateway: at least one replica URL is required")
	}
	m := obs.NewSyncRegistry()
	probeCtx, probeCancel := context.WithCancel(context.Background())
	g := &Gateway{
		cfg:         cfg,
		client:      &http.Client{Transport: cfg.Transport},
		metrics:     m,
		spans:       cfg.Spans,
		budget:      newBudget(cfg.RetryBudgetRatio, cfg.RetryBudgetBurst),
		hedge:       newDelayTracker(cfg.HedgeQuantile, cfg.HedgeMinDelay, cfg.HedgeMaxDelay, 128),
		probeCtx:    probeCtx,
		probeCancel: probeCancel,
		started:     time.Now(),
	}
	for i, base := range cfg.Replicas {
		i := i
		rep, err := newReplica(i, base, cfg.BreakerFailures, cfg.BreakerOpenFor,
			cfg.RejoinRampSteps, cfg.RejoinRampStep,
			func(from, to breakerState) { g.onBreakerTransition(i, from, to) })
		if err != nil {
			probeCancel()
			return nil, err
		}
		g.replicas = append(g.replicas, rep)
	}
	g.scratch.New = func() any {
		return &pickScratch{tried: make([]bool, len(g.replicas))}
	}

	counters := []string{
		"gw_requests_total", "gw_ok_total", "gw_err_total", "gw_no_replica_total",
		"hedges_fired_total", "hedges_won_total",
		"retries_total", "retry_budget_exhausted_total",
		"breaker_open_total", "breaker_halfopen_total", "breaker_close_total",
		"probe_fail_total", "refused_total",
		"slowstart_enter_total", "slowstart_done_total",
	}
	gauges := []string{"retry_budget_tokens", "hedge_delay_seconds"}
	for _, r := range g.replicas {
		counters = append(counters, r.name+"_attempts_total", r.name+"_errs_total")
		gauges = append(gauges, r.name+"_inflight", r.name+"_probe_ok")
		m.GaugeSet(r.name+"_probe_ok", 1)
	}
	m.Preset(counters, gauges)
	if err := m.NewHistogram("gw_request_seconds", latencyBounds); err != nil {
		panic(err) // static bounds
	}
	if err := m.NewHistogram("upstream_seconds", latencyBounds); err != nil {
		panic(err)
	}
	if err := m.NewHistogram("rejoin_seconds", rejoinBounds); err != nil {
		panic(err)
	}

	// Live telemetry: sampler callbacks read the registry, never the
	// request path.
	g.sampler = obs.NewSampler(cfg.SampleInterval, 300)
	for _, name := range []string{
		"gw_requests_total", "gw_ok_total", "gw_err_total",
		"hedges_fired_total", "hedges_won_total", "retries_total",
	} {
		name := name
		g.sampler.Track(name, func() float64 { return float64(m.CounterValue(name)) })
	}
	for _, name := range []string{"retry_budget_tokens", "hedge_delay_seconds"} {
		name := name
		g.sampler.Track(name, func() float64 { return m.GaugeValue(name) })
	}
	for _, r := range g.replicas {
		r := r
		g.sampler.Track(r.name+"_inflight", func() float64 { return float64(r.inflight.Load()) })
	}
	g.sampler.Start()

	g.mux = http.NewServeMux()
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /readyz", g.handleReadyz)
	g.mux.HandleFunc("GET /metricz", g.handleMetricz)
	g.mux.HandleFunc("GET /replicaz", g.handleReplicaz)
	g.mux.HandleFunc("GET /timeseriez", g.handleTimeseriez)
	for _, path := range []string{"/v1/run", "/v1/trace", "/v1/sweep"} {
		path := path
		g.mux.HandleFunc("POST "+path, func(w http.ResponseWriter, r *http.Request) {
			g.serveProxy(w, r, path)
		})
	}
	return g, nil
}

// onBreakerTransition feeds breaker flips into metrics, the log, and the
// replica's outage clock: open starts an outage, closed (the half-open
// trial succeeded) ends it and begins the rejoin slow-start ramp.
func (g *Gateway) onBreakerTransition(idx int, from, to breakerState) {
	switch to {
	case breakerOpen:
		g.metrics.Inc("breaker_open_total")
		g.replicas[idx].markDown(time.Now())
	case breakerHalfOpen:
		g.metrics.Inc("breaker_halfopen_total")
	case breakerClosed:
		g.metrics.Inc("breaker_close_total")
		g.noteRejoin(g.replicas[idx])
	}
	g.cfg.Logf("gegate: replica%d breaker %s -> %s", idx, from, to)
}

// noteRejoin records the end of a replica outage exactly once: the
// recovery-time histogram sample, the slow-start event, and the log line.
func (g *Gateway) noteRejoin(rep *replica) {
	down, ok := rep.rejoin(time.Now())
	if !ok {
		return
	}
	g.metrics.Observe("rejoin_seconds", down.Seconds())
	g.metrics.Inc("slowstart_enter_total")
	g.cfg.Logf("gegate: %s rejoined after %s down; slow-start ramp begins",
		rep.name, down.Round(time.Millisecond))
}

// Start launches the active health-probe loops; idempotent.
func (g *Gateway) Start() {
	g.startOnce.Do(func() {
		for _, rep := range g.replicas {
			rep := rep
			g.probeWG.Add(1)
			go func() {
				defer g.probeWG.Done()
				ticker := time.NewTicker(g.cfg.ProbeInterval)
				defer ticker.Stop()
				for {
					ok := rep.probe(g.probeCtx, g.client, g.cfg.ProbeTimeout)
					was := rep.probeOK.Swap(ok)
					if ok != was {
						g.cfg.Logf("gegate: %s probe %v -> %v", rep.name, was, ok)
						if ok {
							// The process answered readyz again: a restarted
							// replica rejoins through slow-start even before
							// its breaker walks half-open -> closed.
							g.noteRejoin(rep)
						} else {
							rep.markDown(time.Now())
						}
					}
					if ok {
						g.metrics.GaugeSet(rep.name+"_probe_ok", 1)
					} else {
						g.metrics.GaugeSet(rep.name+"_probe_ok", 0)
						g.metrics.Inc("probe_fail_total")
					}
					select {
					case <-g.probeCtx.Done():
						return
					case <-ticker.C:
					}
				}
			}()
		}
	})
}

// Close stops the probe loops and waits for them. In-flight proxied
// requests are governed by their own contexts (and http.Server.Shutdown at
// the binary level), not by Close.
func (g *Gateway) Close() {
	g.probeCancel()
	g.probeWG.Wait()
	g.sampler.Stop()
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Metrics exposes the gateway registry (tests, replicaz).
func (g *Gateway) Metrics() *obs.SyncRegistry { return g.metrics }

// pickCand is one pick candidate with its slow-start weight captured at
// partition time, so the sort sees a consistent snapshot.
type pickCand struct {
	rep    *replica
	weight float64
}

// pickOrder sorts candidates by (governor signals if quality-aware,
// weight-scaled in-flight, reported queue depth, rotating round-robin).
// It lives inside pickScratch and is fed through sort.Stable via a pointer,
// so ordering allocates nothing.
type pickOrder struct {
	cands   []pickCand
	offset  uint64
	n       uint64
	quality bool
}

func (o *pickOrder) Len() int      { return len(o.cands) }
func (o *pickOrder) Swap(i, j int) { o.cands[i], o.cands[j] = o.cands[j], o.cands[i] }
func (o *pickOrder) Less(i, j int) bool {
	a, b := o.cands[i], o.cands[j]
	ia, ib := a.rep, b.rep
	if o.quality {
		// Governor signals outrank raw load: an ok replica beats a
		// degraded one regardless of in-flight counts, and among
		// equals the one with the most unclaimed budget wins.
		if ba, bb := ia.brownout.Load(), ib.brownout.Load(); ba != bb {
			return ba < bb
		}
		if ha, hb := ia.headroomFrac(), ib.headroomFrac(); ha != hb {
			return ha > hb
		}
	}
	// In-flight counts are scaled by the slow-start weight (compared
	// cross-multiplied to stay in one branch): a replica ramping at 1/4
	// weight looks 4x as loaded, so it receives a proportional trickle
	// instead of an equal share. At full weight this is the plain
	// least-inflight order.
	fa := float64(ia.inflight.Load()) * b.weight
	fb := float64(ib.inflight.Load()) * a.weight
	if fa != fb {
		return fa < fb
	}
	if qa, qb := ia.queueDepth.Load(), ib.queueDepth.Load(); qa != qb {
		return qa < qb
	}
	return (uint64(ia.idx)+o.n-o.offset%o.n)%o.n < (uint64(ib.idx)+o.n-o.offset%o.n)%o.n
}

// pickScratch is the reusable per-request state of the pick path: the
// tried set and the candidate partitions. Pooled on Gateway.scratch so the
// pick path performs no allocations.
type pickScratch struct {
	tried      []bool
	pref, desp []pickCand
	order      pickOrder
}

func (sc *pickScratch) reset() {
	for i := range sc.tried {
		sc.tried[i] = false
	}
}

// pick chooses the next replica for an attempt, preferring actively
// healthy, non-cooling replicas with slow-start headroom, ordered by
// (weight-scaled in-flight, reported queue depth) with a rotating
// tiebreak; a desperation pass ignores probe, cooldown, and ramp caps so a
// pool that looks entirely unhealthy still gets a last try. Breaker
// admission is checked per candidate because Allow has half-open side
// effects. Returns nil when every untried replica's breaker refuses.
func (g *Gateway) pick(sc *pickScratch) *replica {
	now := time.Now()
	offset := g.rr.Add(1) - 1

	sc.pref, sc.desp = sc.pref[:0], sc.desp[:0]
	for _, rep := range g.replicas {
		if sc.tried[rep.idx] {
			continue
		}
		w, limit, done := rep.slowStart(now)
		if done {
			g.metrics.Inc("slowstart_done_total")
			g.cfg.Logf("gegate: %s slow-start ramp complete, back at full weight", rep.name)
		}
		// The ramp cap is a hard bound in the preferred pass: step k admits
		// at most 2^k concurrent requests, so a freshly-restarted replica
		// cannot be handed the whole herd no matter how empty it looks.
		if rep.eligible(now) && rep.inflight.Load() < limit {
			sc.pref = append(sc.pref, pickCand{rep, w})
		} else {
			sc.desp = append(sc.desp, pickCand{rep, w})
		}
	}

	sc.order.offset = offset
	sc.order.n = uint64(len(g.replicas))
	sc.order.quality = g.cfg.QualityAware
	for _, pass := range [2][]pickCand{sc.pref, sc.desp} {
		sc.order.cands = pass
		sort.Stable(&sc.order)
		for _, c := range sc.order.cands {
			if c.rep.br.Allow() {
				return c.rep
			}
		}
	}
	return nil
}

// attemptResult is the outcome of one upstream attempt.
type attemptResult struct {
	rep     *replica
	span    *obs.Span // nil when tracing is off
	hedged  bool
	status  int         // 0 on transport error
	header  http.Header // nil on transport error
	body    []byte
	err     error
	latency time.Duration
}

// retryable reports whether the attempt indicts the replica or the moment,
// making another replica worth trying: transport errors, timeouts, 5xx,
// and 429 shedding. 2xx and other 4xx pass through to the client.
func (a attemptResult) retryable() bool {
	if a.err != nil {
		return true
	}
	return a.status >= 500 || a.status == http.StatusTooManyRequests
}

// selfInflicted reports whether an attempt error was caused by the gateway
// cancelling the attempt itself (hedge loser, client disconnect, request
// deadline) rather than by the replica. Such errors must not feed the
// breaker: a healthy-but-slower replica that keeps losing hedge races would
// otherwise accumulate spurious strikes until its breaker opened.
func (g *Gateway) selfInflicted(ctx context.Context, err error) bool {
	return ctx.Err() != nil || errors.Is(err, context.Canceled)
}

// doAttempt executes one upstream POST and classifies the outcome, feeding
// the replica's breaker and passive signals. The attempt span sp (nil when
// tracing is off) has its context forwarded to the replica and rides the
// result; the caller finishes it once the attempt's fate is known. With
// tracing off, the client's own trace context (if any) is forwarded
// verbatim instead, so request identity survives the hop — the crash drill
// reconciles client acks against replica journals by trace ID.
func (g *Gateway) doAttempt(ctx context.Context, rep *replica, path string, body []byte, hedged bool, sp *obs.Span, clientCtx obs.SpanContext) attemptResult {
	g.metrics.Inc(rep.name + "_attempts_total")
	n := rep.inflight.Add(1)
	g.metrics.GaugeSet(rep.name+"_inflight", float64(n))
	defer func() {
		g.metrics.GaugeSet(rep.name+"_inflight", float64(rep.inflight.Add(-1)))
	}()

	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.base+path, bytes.NewReader(body))
	if err != nil {
		return attemptResult{rep: rep, span: sp, hedged: hedged, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if sp != nil {
		sp.Context().Inject(req.Header)
	} else {
		clientCtx.Inject(req.Header)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		if g.selfInflicted(ctx, err) {
			// A hedge loser's cancel or a client disconnect, not a replica
			// verdict: no breaker strike, no error metric, but release any
			// half-open trial slot this attempt was holding.
			rep.br.Neutral()
			return attemptResult{rep: rep, span: sp, hedged: hedged, err: err, latency: time.Since(start)}
		}
		if errors.Is(err, syscall.ECONNREFUSED) {
			// Connection refused is an unambiguous down-signal — the process
			// is gone, not slow. Trip the breaker and drop the probe verdict
			// immediately so a killed replica leaves the pick order within
			// one request instead of waiting out two more strikes and the
			// next probe interval.
			g.metrics.Inc("refused_total")
			g.metrics.Inc(rep.name + "_errs_total")
			rep.br.Trip() // opening the breaker marks the outage start
			if rep.probeOK.Swap(false) {
				g.metrics.GaugeSet(rep.name+"_probe_ok", 0)
				g.cfg.Logf("gegate: %s connection refused; marked down", rep.name)
			}
			return attemptResult{rep: rep, span: sp, hedged: hedged, err: err, latency: time.Since(start)}
		}
		rep.br.Failure()
		g.metrics.Inc(rep.name + "_errs_total")
		g.cfg.Logf("gegate: %s attempt: %v", rep.name, err)
		return attemptResult{rep: rep, span: sp, hedged: hedged, err: err, latency: time.Since(start)}
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxRelayBytes+1))
	if err != nil {
		if g.selfInflicted(ctx, err) {
			rep.br.Neutral()
			return attemptResult{rep: rep, span: sp, hedged: hedged, err: err, latency: time.Since(start)}
		}
		rep.br.Failure()
		g.metrics.Inc(rep.name + "_errs_total")
		return attemptResult{rep: rep, span: sp, hedged: hedged, err: err, latency: time.Since(start)}
	}
	if int64(len(respBody)) > maxRelayBytes {
		// The replica answered but the body exceeds what the gateway will
		// buffer; relaying a truncated body with the original status would
		// corrupt the response, so fail the attempt instead. The replica
		// isn't sick — no breaker strike — but any half-open trial resolves.
		rep.br.Neutral()
		g.metrics.Inc(rep.name + "_errs_total")
		g.cfg.Logf("gegate: %s response exceeds %d-byte relay cap", rep.name, int64(maxRelayBytes))
		return attemptResult{
			rep: rep, span: sp, hedged: hedged,
			err:     fmt.Errorf("%s response exceeds %d-byte relay cap", rep.name, int64(maxRelayBytes)),
			latency: time.Since(start),
		}
	}
	res := attemptResult{
		rep: rep, span: sp, hedged: hedged,
		status: resp.StatusCode, header: resp.Header, body: respBody,
		latency: time.Since(start),
	}
	rep.notePassive(resp.Header)
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		// Overloaded, not sick: cooldown instead of a breaker strike. Still
		// resolve any half-open trial, or the probing flag would stay set and
		// Allow would refuse this replica forever.
		rep.br.Neutral()
		rep.setCooldown(resp.Header.Get("Retry-After"), time.Now(), g.cfg.CooldownCap)
	case resp.StatusCode >= 500:
		rep.br.Failure()
		g.metrics.Inc(rep.name + "_errs_total")
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Draining replicas also send no Retry-After; park briefly so
			// the picker stops hammering them while probes catch up.
			rep.setCooldown(resp.Header.Get("Retry-After"), time.Now(), g.cfg.RetryAfter)
		}
	default:
		rep.br.Success()
		g.hedge.observe(res.latency)
		g.metrics.Observe("upstream_seconds", res.latency.Seconds())
	}
	return res
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// shedNoReplica answers a request the gateway cannot place anywhere.
func (g *Gateway) shedNoReplica(w http.ResponseWriter) {
	g.metrics.Inc("gw_no_replica_total")
	g.metrics.Inc("gw_err_total")
	secs := int64(g.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no healthy replica"})
}

// relay writes the winning attempt to the client with attribution headers.
func (g *Gateway) relay(w http.ResponseWriter, res attemptResult, attempts int) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	for _, h := range []string{
		"Retry-After", "X-GE-Inflight", "X-GE-Queue-Depth",
		"X-GE-Brownout", "X-GE-Headroom", "X-GE-Quality",
	} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-GE-Replica", res.rep.name)
	w.Header().Set("X-GE-Attempts", strconv.Itoa(attempts))
	if res.hedged {
		w.Header().Set("X-GE-Hedged", "1")
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// finishAttempt annotates and finishes one attempt span once its fate is
// known: won means the client received this attempt's response. Nil-safe.
func (g *Gateway) finishAttempt(res attemptResult, won bool) {
	if res.span == nil {
		return
	}
	res.span.SetValue(res.latency.Seconds())
	res.span.SetAux(float64(res.status))
	switch {
	case won:
		res.span.SetNote("won")
	case res.err != nil && !errors.Is(res.err, context.Canceled):
		res.span.SetNote("error")
	default:
		// Includes hedge losers whose attempt we cancelled ourselves.
		res.span.SetNote("lost")
	}
	g.spans.Finish(res.span)
}

// serveProxy is the heart of the gateway: admit, pick, attempt, hedge,
// retry within budget, relay the first terminal answer.
func (g *Gateway) serveProxy(w http.ResponseWriter, r *http.Request, path string) {
	g.metrics.Inc("gw_requests_total")
	g.budget.deposit()
	g.metrics.GaugeSet("retry_budget_tokens", g.budget.level())

	// Tracing: join the client's trace (or root a fresh one), echo the IDs,
	// and hang one child span off this request per upstream attempt.
	clientCtx := obs.ParseSpanContext(r.Header)
	span := g.spans.Start(path, obs.SpanGateway, clientCtx)
	span.Context().Inject(w.Header())
	defer g.spans.Finish(span)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		g.metrics.Inc("gw_err_total")
		span.SetNote("error")
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("reading body: %v", err)})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()

	start := time.Now()
	results := make(chan attemptResult, g.cfg.MaxAttempts)
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	sc := g.scratch.Get().(*pickScratch)
	sc.reset()
	defer g.scratch.Put(sc)
	launched, consumed := 0, 0
	// Every launched attempt writes exactly one buffered result. Whatever
	// serveProxy has not consumed when it returns is drained off-path so
	// loser spans still finish (and return to the pool).
	defer func() {
		if n := launched - consumed; n > 0 {
			go func() {
				for i := 0; i < n; i++ {
					g.finishAttempt(<-results, false)
				}
			}()
		}
	}()

	// launch starts one attempt on a not-yet-tried replica; false when no
	// replica's breaker admits or the attempt cap is reached.
	launch := func(hedged bool) bool {
		if launched >= g.cfg.MaxAttempts {
			return false
		}
		rep := g.pick(sc)
		if rep == nil {
			return false
		}
		sc.tried[rep.idx] = true
		launched++
		asp := g.spans.Start("attempt."+rep.name, obs.SpanAttempt, span.Context())
		asp.SetFlag(hedged)
		actx, acancel := context.WithCancel(ctx)
		cancels = append(cancels, acancel)
		go func() {
			results <- g.doAttempt(actx, rep, path, body, hedged, asp, clientCtx)
		}()
		return true
	}

	if !launch(false) {
		span.SetNote("no-replica")
		g.shedNoReplica(w)
		return
	}

	var hedgeCh <-chan time.Time
	if !g.cfg.DisableHedging && g.cfg.MaxAttempts > 1 {
		d := g.hedge.delay()
		g.metrics.GaugeSet("hedge_delay_seconds", d.Seconds())
		timer := time.NewTimer(d)
		defer timer.Stop()
		hedgeCh = timer.C
	}

	outstanding := 1
	var lastFail attemptResult
	for {
		select {
		case res := <-results:
			outstanding--
			consumed++
			if !res.retryable() {
				// Terminal: success or a client error worth passing through.
				if res.hedged {
					g.metrics.Inc("hedges_won_total")
				}
				if res.status < 400 {
					g.metrics.Inc("gw_ok_total")
				} else {
					g.metrics.Inc("gw_err_total")
				}
				g.metrics.Observe("gw_request_seconds", time.Since(start).Seconds())
				g.finishAttempt(res, true)
				span.SetAux(float64(launched))
				g.relay(w, res, launched)
				return
			}
			g.finishAttempt(res, false)
			lastFail = res
			// Retry on a different replica if the budget and pool allow.
			if g.budget.withdraw() {
				if launch(false) {
					g.metrics.Inc("retries_total")
					outstanding++
				} else {
					g.budget.refund()
				}
			} else {
				g.metrics.Inc("retry_budget_exhausted_total")
			}
			if outstanding == 0 {
				g.metrics.Inc("gw_err_total")
				g.metrics.Observe("gw_request_seconds", time.Since(start).Seconds())
				span.SetNote("failed")
				span.SetAux(float64(launched))
				if lastFail.err != nil || lastFail.status == 0 {
					writeJSON(w, http.StatusBadGateway, errorBody{
						Error: fmt.Sprintf("all %d attempts failed: %v", launched, lastFail.err),
					})
					return
				}
				g.relay(w, lastFail, launched)
				return
			}
		case <-hedgeCh:
			hedgeCh = nil // at most one hedge per request
			if g.budget.withdraw() {
				if launch(true) {
					g.metrics.Inc("hedges_fired_total")
					outstanding++
				} else {
					g.budget.refund()
				}
			} else {
				g.metrics.Inc("retry_budget_exhausted_total")
			}
		case <-ctx.Done():
			// Client gone or gateway deadline: abandon the attempts (their
			// contexts are children of ctx) and answer best effort.
			g.metrics.Inc("gw_err_total")
			span.SetNote("timeout")
			writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "gateway timeout: " + ctx.Err().Error()})
			return
		}
	}
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok uptime=%s replicas=%d\n", time.Since(g.started).Round(time.Second), len(g.replicas))
}

// handleReadyz answers 200 while at least one replica could take traffic.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	now := time.Now()
	for _, rep := range g.replicas {
		if rep.eligible(now) && rep.br.State() != breakerOpen {
			fmt.Fprintln(w, "ready")
			return
		}
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, "no healthy replica")
}

// handleMetricz renders the registry in the Prometheus text exposition
// format by default; ?format=plain keeps the legacy `kind name value`
// lines for scripts and humans.
func (g *Gateway) handleMetricz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "plain" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = g.metrics.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	_ = g.metrics.WritePrometheus(w)
}

// handleTimeseriez dumps the sampler rings as JSON for cmd/gestat.
func (g *Gateway) handleTimeseriez(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = g.sampler.WriteJSON(w)
}

// handleReplicaz renders the live replica table: one line per replica with
// its breaker state, probe verdict, in-flight count, and passive signals.
func (g *Gateway) handleReplicaz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	now := time.Now()
	for _, rep := range g.replicas {
		cooling := ""
		if rep.coolingDown(now) {
			cooling = " cooling"
		}
		slowstart := ""
		if w := rep.weightNow(now); w < 1 {
			slowstart = " slow-start"
		}
		fmt.Fprintf(w, "%-10s %-28s breaker=%-9s probe_ok=%-5v inflight=%d queue_depth=%d brownout=%s headroom=%.3f weight=%.3f%s%s\n",
			rep.name, rep.base, rep.br.State(), rep.probeOK.Load(),
			rep.inflight.Load(), rep.queueDepth.Load(),
			rep.brownoutState(), rep.headroomFrac(), rep.weightNow(now), cooling, slowstart)
	}
}
