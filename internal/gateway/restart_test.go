package gateway

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// restartableReplica is an in-process geserve stand-in on a real listener
// whose address survives a stop/start cycle — the unit-test analogue of a
// process restart on the same port.
type restartableReplica struct {
	t    *testing.T
	addr string
	mu   sync.Mutex
	srv  *http.Server
	ln   net.Listener
	hits atomic.Int64
}

func newRestartableReplica(t *testing.T) *restartableReplica {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := &restartableReplica{t: t, addr: ln.Addr().String()}
	r.serveOn(ln)
	t.Cleanup(r.stop)
	return r
}

func (r *restartableReplica) serveOn(ln net.Listener) {
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r.hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"result":{"Jobs":1}}`)
	})}
	r.mu.Lock()
	r.srv, r.ln = srv, ln
	r.mu.Unlock()
	go srv.Serve(ln)
}

// stop tears the replica down abruptly: listener and server close, new
// connections are refused — the client-visible shape of a killed process.
func (r *restartableReplica) stop() {
	r.mu.Lock()
	srv := r.srv
	r.srv = nil
	r.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// restart rebinds the same address.
func (r *restartableReplica) restart() {
	ln, err := net.Listen("tcp", r.addr)
	if err != nil {
		r.t.Errorf("rebinding %s: %v", r.addr, err)
		return
	}
	r.serveOn(ln)
}

// TestKillAndRestartMidRun drives steady client load through the gateway
// while one of two replicas is torn down and later restarted on the same
// address. The pool must absorb the outage with zero client-visible
// failures, and the restarted replica must re-enter rotation through the
// slow-start ramp (observed on /replicaz and in the metrics).
func TestKillAndRestartMidRun(t *testing.T) {
	victim := newRestartableReplica(t)
	stable := newRestartableReplica(t)
	g, front := newPoolGateway(t, Config{
		Replicas:         []string{"http://" + victim.addr, "http://" + stable.addr},
		BreakerOpenFor:   150 * time.Millisecond,
		RetryBudgetBurst: 200,
		ProbeInterval:    25 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
		RejoinRampSteps:  3,
		RejoinRampStep:   200 * time.Millisecond,
	})
	g.Start()

	var failures atomic.Int64
	var requests atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(front.URL+"/v1/run", "application/json", strings.NewReader(`{}`))
				requests.Add(1)
				if err != nil {
					failures.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	time.Sleep(150 * time.Millisecond) // steady state on both replicas
	victim.stop()
	time.Sleep(400 * time.Millisecond) // outage: breaker opens, probes fail
	victim.restart()

	// The restarted replica must rejoin and climb the ramp while load keeps
	// flowing.
	waitFor(t, func() bool {
		return g.Metrics().CounterValue("slowstart_enter_total") >= 1
	}, "restarted replica never re-entered rotation")

	// Mid-ramp, replicaz shows the reduced weight.
	resp, err := http.Get(front.URL + "/replicaz")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(page), "slow-start") {
		// The ramp may already have completed if the scheduler starved this
		// goroutine; the metrics then prove it ran.
		if g.Metrics().CounterValue("slowstart_done_total") < 1 {
			t.Fatalf("no slow-start visible on replicaz and no completed ramp:\n%s", page)
		}
	}

	// Let the ramp finish under load, then verify the victim serves again.
	waitFor(t, func() bool {
		return g.Metrics().CounterValue("slowstart_done_total") >= 1
	}, "slow-start ramp never completed")
	before := victim.hits.Load()
	waitFor(t, func() bool { return victim.hits.Load() > before }, "restarted replica serves no traffic")

	close(stop)
	wg.Wait()

	if f := failures.Load(); f != 0 {
		t.Fatalf("%d client-visible failures out of %d requests across the restart", f, requests.Load())
	}
	if n := g.Metrics().HistogramCount("rejoin_seconds"); n < 1 {
		t.Fatalf("rejoin_seconds histogram empty (count=%d)", n)
	}
	t.Logf("restart absorbed: %d requests, 0 failures, slowstart enters=%d done=%d",
		requests.Load(),
		g.Metrics().CounterValue("slowstart_enter_total"),
		g.Metrics().CounterValue("slowstart_done_total"))
}
