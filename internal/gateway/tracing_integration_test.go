package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"goodenough"
	"goodenough/internal/obs"
	"goodenough/internal/server"
)

// lockedBuf is an io.Writer safe to snapshot while a SpanLog is still
// writing to it from other goroutines.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) snapshot() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.b.Bytes()...)
}

// TestTracingEndToEnd is the observability acceptance scenario: one client
// request carrying a client span flows through a real gateway (forced to
// hedge) into real geserve replicas, each process appending to its own span
// log — exactly how geload, gegate, and geserve run with -span-log. Merging
// the three logs must yield one connected trace tree: a single trace ID,
// two sibling attempt spans annotated won/lost under the gateway span, and
// server + scheduler spans hanging off the attempts.
func TestTracingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}

	var clientBuf, gwBuf, srvBuf lockedBuf
	clientLog := obs.NewSpanLog(&clientBuf)
	gwLog := obs.NewSpanLog(&gwBuf)
	srvLog := obs.NewSpanLog(&srvBuf)
	clientBus := obs.NewSpanBusSeeded(11, clientLog)
	gwBus := obs.NewSpanBusSeeded(22, gwLog)
	srvBus := obs.NewSpanBusSeeded(33, srvLog)

	// Both replicas stall 150ms before simulating so the 25ms hedge always
	// fires and two attempts race to completion.
	slowRun := func(ctx context.Context, cfg goodenough.Config) (goodenough.Result, error) {
		select {
		case <-time.After(150 * time.Millisecond):
		case <-ctx.Done():
		}
		return goodenough.RunContext(ctx, cfg)
	}
	newReplica := func() *httptest.Server {
		srv := server.New(server.Config{
			MaxConcurrent:  4,
			RequestTimeout: 10 * time.Second,
			Run:            slowRun,
			Spans:          srvBus,
		})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	r0, r1 := newReplica(), newReplica()

	g, err := New(Config{
		Replicas:         []string{r0.URL, r1.URL},
		HedgeMinDelay:    25 * time.Millisecond,
		MaxAttempts:      2,
		RetryBudgetBurst: 100,
		Spans:            gwBus,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	g.Start()
	front := httptest.NewServer(g.Handler())
	t.Cleanup(front.Close)

	// The client leg: root a trace, inject it, send one request — what
	// geload -span-log does per request.
	span := clientBus.Start("client./v1/run", obs.SpanClient, obs.SpanContext{})
	body := `{"Scheduler":"ge","ArrivalRate":80,"DurationSec":0.05,"Cores":4}`
	req, err := http.NewRequest(http.MethodPost, front.URL+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	span.Context().Inject(req.Header)
	resp, err := (&http.Client{Timeout: 15 * time.Second}).Do(req)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, out)
	}
	// The gateway echoes the trace it joined.
	wantTrace := span.Context()
	if got := obs.ParseSpanContext(resp.Header); got.Trace != wantTrace.Trace {
		t.Fatalf("response trace header %x, want %x", got.Trace, wantTrace.Trace)
	}
	clientBus.Finish(span)
	if err := clientLog.Flush(); err != nil {
		t.Fatal(err)
	}

	// The hedge loser finishes asynchronously after the winner is relayed;
	// wait until both attempt spans and both server spans hit the logs.
	readLog := func(log *obs.SpanLog, buf *lockedBuf) []obs.Span {
		if err := log.Flush(); err != nil {
			t.Fatal(err)
		}
		spans, err := obs.ReadSpans(bytes.NewReader(buf.snapshot()))
		if err != nil {
			t.Fatalf("span log unreadable: %v", err)
		}
		return spans
	}
	count := func(spans []obs.Span, kind obs.SpanKind) int {
		n := 0
		for _, s := range spans {
			if s.Kind == kind {
				n++
			}
		}
		return n
	}
	var gwSpans, srvSpans []obs.Span
	deadline := time.Now().Add(5 * time.Second)
	for {
		gwSpans = readLog(gwLog, &gwBuf)
		srvSpans = readLog(srvLog, &srvBuf)
		if count(gwSpans, obs.SpanAttempt) >= 2 && count(srvSpans, obs.SpanServer) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spans never completed: %d attempts, %d server spans (hedge may not have fired)",
				count(gwSpans, obs.SpanAttempt), count(srvSpans, obs.SpanServer))
		}
		time.Sleep(20 * time.Millisecond)
	}
	clientSpans := readLog(clientLog, &clientBuf)

	merged := append(append(clientSpans, gwSpans...), srvSpans...)

	// One request, one trace: every span from all three logs shares it.
	for _, s := range merged {
		if s.Trace != wantTrace.Trace {
			t.Fatalf("span %q in trace %x, want %x", s.Name, s.Trace, wantTrace.Trace)
		}
	}

	// The tree is connected: the client span is the only root, and every
	// other span's parent is present in the merged set.
	ids := map[uint64]obs.Span{}
	for _, s := range merged {
		ids[s.ID] = s
	}
	roots := 0
	for _, s := range merged {
		if s.Parent == 0 {
			roots++
			if s.Kind != obs.SpanClient {
				t.Errorf("unexpected root span %q (kind %v)", s.Name, s.Kind)
			}
			continue
		}
		if _, ok := ids[s.Parent]; !ok {
			t.Errorf("span %q (kind %v) orphaned: parent %x not in merged logs", s.Name, s.Kind, s.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("%d roots, want exactly 1 (the client span)", roots)
	}

	// Causality layer by layer: client → gateway → two sibling attempts
	// (one hedged, one winner, one loser) → servers → scheduler.
	var gwSpan obs.Span
	var attempts []obs.Span
	for _, s := range gwSpans {
		switch s.Kind {
		case obs.SpanGateway:
			gwSpan = s
		case obs.SpanAttempt:
			attempts = append(attempts, s)
		}
	}
	if gwSpan.Parent != span.Context().Span {
		t.Errorf("gateway span parent %x, want client span %x", gwSpan.Parent, span.Context().Span)
	}
	if len(attempts) != 2 {
		t.Fatalf("%d attempt spans, want 2 (one primary + one hedge)", len(attempts))
	}
	won, lost, hedged := 0, 0, 0
	for _, a := range attempts {
		if a.Parent != gwSpan.ID {
			t.Errorf("attempt %q parent %x, want gateway span %x", a.Name, a.Parent, gwSpan.ID)
		}
		switch a.Note {
		case "won":
			won++
		case "lost":
			lost++
		default:
			t.Errorf("attempt %q has note %q, want won or lost", a.Name, a.Note)
		}
		if a.Flag {
			hedged++
		}
	}
	if won != 1 || lost != 1 {
		t.Errorf("attempt outcomes: %d won, %d lost, want 1 each", won, lost)
	}
	if hedged != 1 {
		t.Errorf("%d attempts flagged hedged, want exactly 1", hedged)
	}
	attemptIDs := map[uint64]bool{attempts[0].ID: true, attempts[1].ID: true}
	schedSeen := 0
	for _, s := range srvSpans {
		switch s.Kind {
		case obs.SpanServer:
			if !attemptIDs[s.Parent] {
				t.Errorf("server span parent %x is not an attempt span", s.Parent)
			}
		case obs.SpanSched:
			schedSeen++
		}
	}
	if schedSeen == 0 {
		t.Error("no scheduler spans: the trace did not reach the scheduler")
	}

	// The merged logs render as one Perfetto-loadable trace with flow
	// arrows binding every child to its parent.
	var trace bytes.Buffer
	if err := obs.WriteSpanTrace(&trace, merged); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	slices, flows := 0, 0
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			slices++
		case "s":
			flows++
		}
	}
	if slices != len(merged) {
		t.Errorf("%d slices for %d spans", slices, len(merged))
	}
	if flows != len(merged)-1 {
		t.Errorf("%d flow arrows, want %d (every span but the root)", flows, len(merged)-1)
	}
	t.Logf("trace %016x: %d spans across 3 logs render as one connected tree", wantTrace.Trace, len(merged))
}
