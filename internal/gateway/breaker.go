package gateway

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int

const (
	// breakerClosed: requests flow; consecutive failures are counted.
	breakerClosed breakerState = iota
	// breakerOpen: requests are refused until openFor has elapsed.
	breakerOpen
	// breakerHalfOpen: exactly one trial request is admitted; its outcome
	// decides between closing and re-opening.
	breakerHalfOpen
)

// String implements fmt.Stringer for replicaz and logs.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is a per-replica circuit breaker. Closed counts consecutive
// failures; at threshold it opens. Open refuses everything until openFor
// has elapsed, then the next Allow transitions to half-open and admits a
// single trial (probe admission). The trial's Success closes the breaker;
// its Failure re-opens it for another full openFor.
//
// The clock is injectable so state transitions are testable without
// sleeping.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	failures  int // consecutive failures while closed
	threshold int
	openFor   time.Duration
	openedAt  time.Time
	probing   bool // half-open: the single trial is in flight
	now       func() time.Time
	// onTransition observes every state change (metrics, logs). Called
	// outside the lock is unsafe for ordering, so it is invoked while held;
	// keep it cheap and never call back into the breaker.
	onTransition func(from, to breakerState)
}

func newBreaker(threshold int, openFor time.Duration, onTransition func(from, to breakerState)) *breaker {
	return &breaker{
		threshold:    threshold,
		openFor:      openFor,
		now:          time.Now,
		onTransition: onTransition,
	}
}

func (b *breaker) transition(to breakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// Allow reports whether an attempt may be sent through this breaker right
// now. In the open state it also performs the timed open→half-open
// transition; in half-open it admits exactly one trial until the outcome
// arrives.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.openFor {
			return false
		}
		b.transition(breakerHalfOpen)
		b.probing = true
		return true
	case breakerHalfOpen:
		if b.probing {
			return false // one trial at a time
		}
		b.probing = true
		return true
	}
	return false
}

// Success records a completed attempt that went well.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.failures = 0
	case breakerHalfOpen:
		b.probing = false
		b.failures = 0
		b.transition(breakerClosed)
	case breakerOpen:
		// A straggler attempt admitted before the trip finished late and
		// happy; the breaker stays open until its own timer expires.
	}
}

// Neutral records a completed attempt whose outcome neither vouches for nor
// indicts the replica: 429 shedding (overloaded, not sick) and attempts the
// gateway cancelled itself (hedge losers, client disconnects). Its only job
// is to release a half-open trial slot — without it a 429'd or cancelled
// trial would leave probing set forever and Allow would refuse the replica
// until restart.
func (b *breaker) Neutral() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// Trip forces the breaker open immediately, regardless of the failure
// count — the path for unambiguous down-signals. A connection refused means
// the process is gone; counting two more strikes against a corpse just
// burns client requests on attempts that cannot succeed. A half-open trial
// that trips releases its probe slot the same way Failure does; an
// already-open breaker keeps its original timer (a straggler refusal
// teaches nothing new and must not push the half-open probe further out).
func (b *breaker) Trip() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.failures = 0
		b.openedAt = b.now()
		b.transition(breakerOpen)
	case breakerHalfOpen:
		b.probing = false
		b.openedAt = b.now()
		b.transition(breakerOpen)
	case breakerOpen:
	}
}

// Failure records a completed attempt that failed in a way that indicts the
// replica (5xx, connection error, timeout — not 429 shedding).
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.openedAt = b.now()
			b.transition(breakerOpen)
		}
	case breakerHalfOpen:
		// The trial failed: re-open for another full window.
		b.probing = false
		b.openedAt = b.now()
		b.transition(breakerOpen)
	case breakerOpen:
		// Straggler failure while already open; nothing new learned.
	}
}

// State returns the current state without side effects (no timed
// transition), for readiness checks and the replicaz page.
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
