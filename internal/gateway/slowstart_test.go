package gateway

import (
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestSlowStartRampSchedule walks a 3-step ramp through its weight/cap
// schedule directly on the replica state machine.
func TestSlowStartRampSchedule(t *testing.T) {
	r, err := newReplica(0, "http://127.0.0.1:1", 3, time.Second, 3, 100*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(100, 0)

	// Up replica: full weight, no cap.
	if w, limit, done := r.slowStart(t0); w != 1 || limit != math.MaxInt64 || done {
		t.Fatalf("idle slowStart = (%v, %d, %v), want (1, MaxInt64, false)", w, limit, done)
	}

	r.markDown(t0)
	if _, ok := r.rejoin(t0.Add(2 * time.Second)); !ok {
		t.Fatal("rejoin after markDown reported no outage")
	}
	if d, ok := r.rejoin(t0.Add(3 * time.Second)); ok {
		t.Fatalf("second rejoin double-counted the outage (%v)", d)
	}

	rejoined := t0.Add(2 * time.Second)
	steps := []struct {
		after  time.Duration
		weight float64
		limit  int64
	}{
		{0, 1.0 / 8, 1},
		{50 * time.Millisecond, 1.0 / 8, 1},
		{100 * time.Millisecond, 1.0 / 4, 2},
		{250 * time.Millisecond, 1.0 / 2, 4},
	}
	for _, st := range steps {
		now := rejoined.Add(st.after)
		w, limit, done := r.slowStart(now)
		if w != st.weight || limit != st.limit || done {
			t.Fatalf("slowStart(+%v) = (%v, %d, %v), want (%v, %d, false)",
				st.after, w, limit, done, st.weight, st.limit)
		}
		if got := r.weightNow(now); got != st.weight {
			t.Fatalf("weightNow(+%v) = %v, want %v", st.after, got, st.weight)
		}
	}

	// Past the last step the ramp completes exactly once.
	end := rejoined.Add(301 * time.Millisecond)
	if w, _, done := r.slowStart(end); w != 1 || !done {
		t.Fatalf("slowStart past ramp = (%v, done=%v), want (1, true)", w, done)
	}
	if _, _, done := r.slowStart(end); done {
		t.Fatal("ramp completion reported twice")
	}

	// A relapse mid-ramp cancels the ramp and restarts the outage clock.
	r.markDown(end)
	r.rejoin(end.Add(time.Second))
	mid := end.Add(time.Second + 150*time.Millisecond)
	if w, _, _ := r.slowStart(mid); w != 1.0/4 {
		t.Fatalf("restarted ramp weight = %v, want 1/4", w)
	}
	r.markDown(mid)
	if w := r.weightNow(mid); w != 1 {
		t.Fatalf("weight after relapse = %v, want 1 (ramp cancelled, replica is down)", w)
	}
}

// TestSlowStartDisabled: rampSteps == 0 tracks outages (for the histogram)
// but never reduces weight.
func TestSlowStartDisabled(t *testing.T) {
	r, err := newReplica(0, "http://127.0.0.1:1", 3, time.Second, 0, 100*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(100, 0)
	r.markDown(t0)
	if d, ok := r.rejoin(t0.Add(time.Second)); !ok || d != time.Second {
		t.Fatalf("rejoin = (%v, %v), want (1s, true)", d, ok)
	}
	if w, limit, _ := r.slowStart(t0.Add(time.Second)); w != 1 || limit != math.MaxInt64 {
		t.Fatalf("disabled slow-start = (%v, %d), want full weight", w, limit)
	}
}

// TestBreakerTrip: Trip opens immediately from closed (no threshold wait),
// re-opens from half-open releasing the trial slot, and leaves an already
// open breaker's timer alone.
func TestBreakerTrip(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, time.Second, nil)
	b.now = func() time.Time { return now }

	b.Trip()
	if st := b.State(); st != breakerOpen {
		t.Fatalf("state after Trip = %v, want open", st)
	}
	openedAt := b.openedAt

	// A straggler Trip while open must not extend the window.
	now = now.Add(500 * time.Millisecond)
	b.Trip()
	if !b.openedAt.Equal(openedAt) {
		t.Fatal("Trip on an open breaker refreshed openedAt")
	}

	// Half-open admits a trial; a refused trial trips back open.
	now = now.Add(600 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open trial refused after the open window lapsed")
	}
	b.Trip()
	if st := b.State(); st != breakerOpen {
		t.Fatalf("state after half-open Trip = %v, want open", st)
	}
	now = now.Add(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("trial slot not released by the half-open Trip")
	}
	b.Success()
	if st := b.State(); st != breakerClosed {
		t.Fatalf("state after trial success = %v, want closed", st)
	}
}

// TestRefusedTripsBreakerImmediately: a connection-refused attempt — the
// signature of a SIGKILLed replica — must open the breaker and clear the
// probe verdict on the very first request, not after BreakerFailures
// strikes; after the open window a half-open trial walks the usual
// refused -> open -> half-open -> closed recovery.
func TestRefusedTripsBreakerImmediately(t *testing.T) {
	// Reserve an address with a real listener, then close it so connections
	// are refused while the "replica" is down.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	good := okBackend(t, nil, 0)
	g, front := newPoolGateway(t, Config{
		Replicas:         []string{"http://" + addr},
		BreakerFailures:  3, // must NOT take 3 strikes
		BreakerOpenFor:   100 * time.Millisecond,
		RetryBudgetBurst: 100,
		DisableHedging:   true,
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
	}, good)
	// Probes stay off for now so the refused *request* path, not the probe
	// loop, is what marks the replica down.

	// The rotating cursor decides which replica the first request tries, so
	// two requests guarantee the dead one is attempted exactly once — and
	// one refused attempt must be enough to open the breaker.
	for i := 0; i < 2; i++ {
		resp, body := postRun(t, front.URL)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d not rescued by retry: %d %s", i, resp.StatusCode, body)
		}
	}
	if st := g.replicas[0].br.State(); st != breakerOpen {
		t.Fatalf("breaker %v after a refused attempt, want open", st)
	}
	if g.replicas[0].probeOK.Load() {
		t.Fatal("refused attempt left probeOK true")
	}
	if n := g.Metrics().CounterValue("refused_total"); n != 1 {
		t.Fatalf("refused_total = %d, want 1", n)
	}

	// While the breaker is open the dead replica is out of the pick order:
	// no attempt is even made against it.
	for i := 0; i < 3; i++ {
		resp, _ := postRun(t, front.URL)
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-GE-Replica") != "replica1" {
			t.Fatalf("request %d: status %d replica %s", i, resp.StatusCode, resp.Header.Get("X-GE-Replica"))
		}
	}

	// The replica restarts on the same address; the half-open trial closes
	// the breaker and the rejoin begins slow-start.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"result":{}}`)
	})}
	go hs.Serve(l2)
	t.Cleanup(func() { hs.Close() })

	// In production the active probe loop is what flips probeOK back after a
	// restart; start it now for the recovery half of the test.
	g.Start()
	time.Sleep(120 * time.Millisecond) // open window lapses
	deadline := time.Now().Add(5 * time.Second)
	for g.replicas[0].br.State() != breakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after restart (state %v)", g.replicas[0].br.State())
		}
		postRun(t, front.URL)
		time.Sleep(10 * time.Millisecond)
	}
	if n := g.Metrics().CounterValue("slowstart_enter_total"); n < 1 {
		t.Fatalf("slowstart_enter_total = %d after a rejoin, want >= 1", n)
	}
	if w := g.replicas[0].weightNow(time.Now()); w >= 1 {
		t.Fatalf("rejoined replica weight = %v, want < 1 (ramping)", w)
	}
	if n := g.Metrics().HistogramCount("rejoin_seconds"); n < 1 {
		t.Fatalf("rejoin_seconds observations = %d, want >= 1", n)
	}
}

// TestSlowStartCapLimitsConcurrency: a replica at ramp step 0 (cap 1) must
// not be handed a second concurrent request in the preferred pass even
// when it looks idle; the spill goes to its peer.
func TestSlowStartCapLimitsConcurrency(t *testing.T) {
	b0 := okBackend(t, nil, 0)
	b1 := okBackend(t, nil, 0)
	g, _ := newPoolGateway(t, Config{
		RejoinRampSteps: 3,
		RejoinRampStep:  time.Minute, // hold step 0 for the whole test
	}, b0, b1)

	// replica0 just rejoined: step 0, weight 1/8, cap 1 — and one request
	// is already in flight on it.
	g.replicas[0].markDown(time.Now().Add(-time.Second))
	g.noteRejoin(g.replicas[0])
	g.replicas[0].inflight.Store(1)
	g.replicas[1].inflight.Store(3)

	for i := 0; i < 4; i++ {
		rep := g.pick(pickScratchFor(g))
		if rep != g.replicas[1] {
			t.Fatalf("pick %d chose ramping %s at its cap, want replica1", i, rep.name)
		}
	}

	// With the in-flight slot free, the ramping replica is preferred again
	// (weight-scaled load 0 beats the busy peer).
	g.replicas[0].inflight.Store(0)
	if rep := g.pick(pickScratchFor(g)); rep != g.replicas[0] {
		t.Fatalf("pick with free cap chose %s, want ramping replica0", rep.name)
	}
}

// TestSlowStartWeightBiasesLoad: mid-ramp, the weight-scaled in-flight
// order sends the recovering replica proportionally less traffic: at
// weight 1/2 and equal in-flight counts the full-weight peer wins.
func TestSlowStartWeightBiasesLoad(t *testing.T) {
	b0 := okBackend(t, nil, 0)
	b1 := okBackend(t, nil, 0)
	g, _ := newPoolGateway(t, Config{
		RejoinRampSteps: 1, // single step: weight 1/2, cap 1... then full
		RejoinRampStep:  time.Minute,
	}, b0, b1)

	g.replicas[0].markDown(time.Now().Add(-time.Second))
	g.noteRejoin(g.replicas[0])
	g.replicas[0].inflight.Store(0) // under its cap of 1
	g.replicas[1].inflight.Store(1)

	// replica0 scaled load: 0/0.5 = 0 < 1 -> still preferred when empty.
	if rep := g.pick(pickScratchFor(g)); rep != g.replicas[0] {
		t.Fatalf("pick chose %s, want empty ramping replica0", rep.name)
	}

	// Equal raw in-flight: ramping replica's scaled load (1/0.5 = 2) loses
	// to the full-weight peer (1/1 = 1)... but its cap (1) already removes
	// it from the preferred pass, which is the same outcome.
	g.replicas[0].inflight.Store(1)
	if rep := g.pick(pickScratchFor(g)); rep != g.replicas[1] {
		t.Fatalf("pick chose %s, want full-weight replica1", rep.name)
	}
}

// TestReplicazShowsSlowStart: the live table carries the ramp weight.
func TestReplicazShowsSlowStart(t *testing.T) {
	b0 := okBackend(t, nil, 0)
	g, front := newPoolGateway(t, Config{
		RejoinRampSteps: 3,
		RejoinRampStep:  time.Minute,
	}, b0)
	g.replicas[0].markDown(time.Now().Add(-time.Second))
	g.noteRejoin(g.replicas[0])

	resp, err := http.Get(front.URL + "/replicaz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(raw)
	if !strings.Contains(page, "weight=0.125") || !strings.Contains(page, "slow-start") {
		t.Fatalf("replicaz missing slow-start weight:\n%s", page)
	}
}

// TestPickConcurrentScratch hammers pick from many goroutines to shake out
// races in the pooled scratch (run with -race).
func TestPickConcurrentScratch(t *testing.T) {
	b0 := okBackend(t, nil, 0)
	b1 := okBackend(t, nil, 0)
	b2 := okBackend(t, nil, 0)
	g, _ := newPoolGateway(t, Config{}, b0, b1, b2)

	var stop atomic.Bool
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for !stop.Load() {
				sc := g.scratch.Get().(*pickScratch)
				sc.reset()
				if rep := g.pick(sc); rep == nil {
					t.Error("pick returned nil with a healthy pool")
					return
				}
				g.scratch.Put(sc)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	for w := 0; w < 4; w++ {
		<-done
	}
}
