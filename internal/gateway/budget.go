package gateway

import "sync"

// budget is the gateway-wide retry/hedge token bucket. Every incoming
// client request deposits ratio tokens (capped at burst); every retry or
// hedge withdraws one whole token. With ratio 0.2 the gateway's extra
// upstream attempts are bounded by 20% of client traffic plus the burst
// allowance — so retries and hedges cannot amplify a pool-wide outage into
// a self-inflicted storm. The bucket starts full so a cold gateway can
// still hedge its first requests.
type budget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64 // cap and initial fill
	ratio  float64 // tokens earned per client request
}

func newBudget(ratio, burst float64) *budget {
	return &budget{tokens: burst, burst: burst, ratio: ratio}
}

// deposit credits one client request's worth of retry allowance.
func (b *budget) deposit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// withdraw takes one token; false means the budget is exhausted and the
// caller must not launch the extra attempt.
func (b *budget) withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// refund returns a token withdrawn for an attempt that was never launched
// (for example, no eligible replica remained).
func (b *budget) refund() {
	b.mu.Lock()
	b.tokens++
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// level reports the current token count (metrics/tests).
func (b *budget) level() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
