package gateway

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// replica is one geserve backend with everything the gateway knows about
// it: a circuit breaker fed by passive signals (response classes, timeouts),
// an active probe verdict, a shed cooldown parsed from Retry-After, and the
// live in-flight count used for least-loaded picking.
type replica struct {
	idx  int
	name string // "replica0", used in metrics names and X-GE-Replica
	base string // normalized base URL, no trailing slash

	br *breaker

	inflight atomic.Int64
	// probeOK is the latest active-health verdict (GET /readyz). Replicas
	// start optimistic so the gateway serves before the first probe lands.
	probeOK atomic.Bool
	// cooldownUntil (unix nanos) deprioritizes a replica that shed with
	// 429/Retry-After: it is overloaded, not sick, so the breaker is left
	// alone but the picker avoids it until the hint expires.
	cooldownUntil atomic.Int64
	// queueDepth is the last X-GE-Queue-Depth seen from the replica — the
	// passive load signal used as the picker's tiebreak.
	queueDepth atomic.Int64
}

func newReplica(idx int, base string, breakerFailures int, breakerOpenFor time.Duration, onTransition func(from, to breakerState)) (*replica, error) {
	base = strings.TrimRight(base, "/")
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("gateway: replica %d: %q is not an absolute URL", idx, base)
	}
	r := &replica{
		idx:  idx,
		name: fmt.Sprintf("replica%d", idx),
		base: base,
		br:   newBreaker(breakerFailures, breakerOpenFor, onTransition),
	}
	r.probeOK.Store(true)
	return r, nil
}

// coolingDown reports whether the replica is inside a Retry-After window.
func (r *replica) coolingDown(now time.Time) bool {
	return now.UnixNano() < r.cooldownUntil.Load()
}

// setCooldown parses a Retry-After header value (whole seconds) and parks
// the replica for that long, clamped to maxCooldown so an absurd or
// malicious header cannot black-hole a healthy replica.
func (r *replica) setCooldown(header string, now time.Time, maxCooldown time.Duration) {
	d := maxCooldown
	if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
		if d > maxCooldown {
			d = maxCooldown
		}
	}
	r.cooldownUntil.Store(now.Add(d).UnixNano())
}

// notePassive records the passive-health headers of any replica response.
func (r *replica) notePassive(h http.Header) {
	if v := h.Get("X-GE-Queue-Depth"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n >= 0 {
			r.queueDepth.Store(n)
		}
	}
}

// eligible reports whether the picker should consider this replica in the
// preferred pass: actively healthy, not cooling down. Breaker admission is
// checked separately because Allow has side effects (half-open probes).
func (r *replica) eligible(now time.Time) bool {
	return r.probeOK.Load() && !r.coolingDown(now)
}

// probe runs one active health check against /readyz.
func (r *replica) probe(ctx context.Context, client *http.Client, timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
