package gateway

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"goodenough/internal/governor"
)

// replica is one geserve backend with everything the gateway knows about
// it: a circuit breaker fed by passive signals (response classes, timeouts),
// an active probe verdict, a shed cooldown parsed from Retry-After, and the
// live in-flight count used for least-loaded picking.
type replica struct {
	idx  int
	name string // "replica0", used in metrics names and X-GE-Replica
	base string // normalized base URL, no trailing slash

	br *breaker

	inflight atomic.Int64
	// probeOK is the latest active-health verdict (GET /readyz). Replicas
	// start optimistic so the gateway serves before the first probe lands.
	probeOK atomic.Bool
	// cooldownUntil (unix nanos) deprioritizes a replica that shed with
	// 429/Retry-After: it is overloaded, not sick, so the breaker is left
	// alone but the picker avoids it until the hint expires.
	cooldownUntil atomic.Int64
	// queueDepth is the last X-GE-Queue-Depth seen from the replica — the
	// passive load signal used as the picker's tiebreak.
	queueDepth atomic.Int64
	// brownout is the last X-GE-Brownout ladder position reported by a
	// governed replica (governor.State ordinal; 0 = ok for ungoverned
	// replicas that never send the header). The quality-aware picker
	// prefers lower values.
	brownout atomic.Int32
	// headroom is the last X-GE-Headroom fraction (Float64bits). Replicas
	// start at 1 — full headroom — so ungoverned pools sort as before.
	headroom atomic.Uint64

	// Rejoin slow-start: a replica that comes back from an outage re-enters
	// the pick order at a ramped admission weight instead of full strength,
	// so a restart under overload cannot trigger a thundering herd onto a
	// cold process. rampSteps/rampStep are fixed at construction.
	//
	// downSince is the unix-nano time the replica was first observed down
	// (breaker opened or an active probe failed); 0 = up. rampStart is the
	// unix-nano time slow-start began; 0 = at full weight.
	rampSteps int
	rampStep  time.Duration
	downSince atomic.Int64
	rampStart atomic.Int64
}

func newReplica(idx int, base string, breakerFailures int, breakerOpenFor time.Duration,
	rampSteps int, rampStep time.Duration, onTransition func(from, to breakerState)) (*replica, error) {
	base = strings.TrimRight(base, "/")
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("gateway: replica %d: %q is not an absolute URL", idx, base)
	}
	r := &replica{
		idx:       idx,
		name:      fmt.Sprintf("replica%d", idx),
		base:      base,
		br:        newBreaker(breakerFailures, breakerOpenFor, onTransition),
		rampSteps: rampSteps,
		rampStep:  rampStep,
	}
	r.probeOK.Store(true)
	r.headroom.Store(math.Float64bits(1))
	return r, nil
}

// markDown notes that the replica went down (breaker opened or a probe
// failed). The first observation starts the outage clock; a relapse in the
// middle of a slow-start ramp also cancels the ramp, so the next rejoin
// starts from the bottom again.
func (r *replica) markDown(now time.Time) {
	r.rampStart.Store(0)
	r.downSince.CompareAndSwap(0, now.UnixNano())
}

// rejoin ends an outage: the replica is back (breaker closed through its
// half-open trial, or an active probe succeeded again). Returns the outage
// duration and true exactly once per outage, so callers can emit the
// rejoin event and recovery-time histogram sample without double counting.
// With rampSteps > 0 the slow-start ramp begins here.
func (r *replica) rejoin(now time.Time) (time.Duration, bool) {
	down := r.downSince.Swap(0)
	if down == 0 {
		return 0, false
	}
	if r.rampSteps > 0 {
		r.rampStart.Store(now.UnixNano())
	}
	return time.Duration(now.UnixNano() - down), true
}

// slowStart returns the replica's current admission weight in (0, 1] and
// the concurrent in-flight cap the picker enforces while the ramp runs.
// Step k of an n-step ramp carries weight 2^(k-n) and cap 2^k: a 3-step
// ramp admits 1, then 2, then 4 concurrent requests at weights 1/8, 1/4,
// 1/2 before returning to full strength. Completing the ramp clears the
// state; that final transition is reported once via done so the caller can
// count it.
func (r *replica) slowStart(now time.Time) (weight float64, limit int64, done bool) {
	start := r.rampStart.Load()
	if start == 0 {
		return 1, math.MaxInt64, false
	}
	var step int64
	if r.rampStep > 0 {
		step = int64(now.UnixNano()-start) / int64(r.rampStep)
	}
	if step >= int64(r.rampSteps) {
		// Ramp complete; the CAS loses harmlessly if markDown reset it.
		return 1, math.MaxInt64, r.rampStart.CompareAndSwap(start, 0)
	}
	return math.Ldexp(1, int(step)-r.rampSteps), 1 << step, false
}

// weightNow is the read-only view of the slow-start weight for replicaz
// and tests: no completion side effects, so it cannot swallow the
// slowstart_done event the pick path emits.
func (r *replica) weightNow(now time.Time) float64 {
	start := r.rampStart.Load()
	if start == 0 {
		return 1
	}
	var step int64
	if r.rampStep > 0 {
		step = int64(now.UnixNano()-start) / int64(r.rampStep)
	}
	if step >= int64(r.rampSteps) {
		return 1
	}
	return math.Ldexp(1, int(step)-r.rampSteps)
}

// coolingDown reports whether the replica is inside a Retry-After window.
func (r *replica) coolingDown(now time.Time) bool {
	return now.UnixNano() < r.cooldownUntil.Load()
}

// setCooldown parses a Retry-After header value (whole seconds) and parks
// the replica for that long, clamped to maxCooldown so an absurd or
// malicious header cannot black-hole a healthy replica.
func (r *replica) setCooldown(header string, now time.Time, maxCooldown time.Duration) {
	d := maxCooldown
	if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
		if d > maxCooldown {
			d = maxCooldown
		}
	}
	r.cooldownUntil.Store(now.Add(d).UnixNano())
}

// notePassive records the passive-health headers of any replica response:
// queue depth, and — from governed replicas — the brownout ladder position
// and budget headroom the quality-aware picker sorts on.
func (r *replica) notePassive(h http.Header) {
	if v := h.Get("X-GE-Queue-Depth"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n >= 0 {
			r.queueDepth.Store(n)
		}
	}
	if v := h.Get("X-GE-Brownout"); v != "" {
		if st, ok := governor.ParseState(v); ok {
			r.brownout.Store(int32(st))
		}
	}
	if v := h.Get("X-GE-Headroom"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f >= 0 && f <= 1 {
			r.headroom.Store(math.Float64bits(f))
		}
	}
}

// brownoutState returns the last reported ladder position.
func (r *replica) brownoutState() governor.State {
	return governor.State(r.brownout.Load())
}

// headroomFrac returns the last reported budget headroom in [0, 1].
func (r *replica) headroomFrac() float64 {
	return math.Float64frombits(r.headroom.Load())
}

// eligible reports whether the picker should consider this replica in the
// preferred pass: actively healthy, not cooling down. Breaker admission is
// checked separately because Allow has side effects (half-open probes).
func (r *replica) eligible(now time.Time) bool {
	return r.probeOK.Load() && !r.coolingDown(now)
}

// probe runs one active health check against /readyz. Governed replicas
// stamp X-GE-Brownout / X-GE-Headroom on every readyz answer — including
// the 503 a shedding replica returns — so the probe feeds the passive
// signals even when the verdict is not-ready.
func (r *replica) probe(ctx context.Context, client *http.Client, timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	r.notePassive(resp.Header)
	return resp.StatusCode == http.StatusOK
}
