package gateway

import (
	"sort"
	"sync"
	"time"
)

// hedgeWarmup is how many latency samples the tracker wants before trusting
// its quantile estimate; below it the configured minimum delay is used, so
// a cold gateway hedges eagerly rather than not at all.
const hedgeWarmup = 8

// delayTracker chooses the hedge delay: a quantile of recently observed
// upstream success latencies, clamped to [min, max]. Hedging at the p95
// means roughly 5% of requests fire a second attempt — the classic
// tail-at-scale trade: a bounded amount of duplicate work buys a p99 that
// tracks the healthy replicas instead of the slowest one.
type delayTracker struct {
	mu   sync.Mutex
	buf  []float64 // ring buffer of latencies in seconds
	next int
	n    int // total observations (saturates at len(buf))
	q    float64
	min  time.Duration
	max  time.Duration
}

func newDelayTracker(q float64, min, max time.Duration, window int) *delayTracker {
	if window <= 0 {
		window = 128
	}
	return &delayTracker{buf: make([]float64, window), q: q, min: min, max: max}
}

// observe records one successful upstream latency.
func (t *delayTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.buf[t.next] = d.Seconds()
	t.next = (t.next + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	}
	t.mu.Unlock()
}

// delay returns the current hedge delay.
func (t *delayTracker) delay() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < hedgeWarmup {
		return t.min
	}
	sorted := make([]float64, t.n)
	copy(sorted, t.buf[:t.n])
	sort.Float64s(sorted)
	i := int(t.q * float64(t.n-1))
	d := time.Duration(sorted[i] * float64(time.Second))
	if d < t.min {
		d = t.min
	}
	if d > t.max {
		d = t.max
	}
	return d
}
