package gateway

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"goodenough/internal/governor"
)

// TestQualityAwarePickPrefersOkReplica: with QualityAware on, a replica
// reporting brownout=ok must beat a degraded one even when the degraded
// replica carries less in-flight load — and with the flag off, the classic
// least-loaded order must win unchanged.
func TestQualityAwarePickPrefersOkReplica(t *testing.T) {
	b0 := okBackend(t, nil, 0)
	b1 := okBackend(t, nil, 0)
	g, _ := newPoolGateway(t, Config{QualityAware: true}, b0, b1)

	// replica0: degraded but idle. replica1: ok but visibly busier.
	g.replicas[0].brownout.Store(int32(governor.StateDegraded))
	g.replicas[0].headroom.Store(math.Float64bits(0.1))
	g.replicas[1].brownout.Store(int32(governor.StateOK))
	g.replicas[1].headroom.Store(math.Float64bits(0.9))
	g.replicas[1].inflight.Store(5)

	for i := 0; i < 4; i++ { // across rr offsets
		if rep := g.pick(pickScratchFor(g)); rep != g.replicas[1] {
			t.Fatalf("quality-aware pick chose %s, want the ok replica1", rep.name)
		}
	}

	// Flag off: same signals, but least-inflight (the degraded replica0)
	// wins like before the governor existed.
	g.cfg.QualityAware = false
	if rep := g.pick(pickScratchFor(g)); rep != g.replicas[0] {
		t.Fatalf("classic pick chose %s, want least-loaded replica0", rep.name)
	}
}

// TestQualityAwarePickHeadroomTiebreak: equal ladder positions fall through
// to headroom, descending.
func TestQualityAwarePickHeadroomTiebreak(t *testing.T) {
	b0 := okBackend(t, nil, 0)
	b1 := okBackend(t, nil, 0)
	g, _ := newPoolGateway(t, Config{QualityAware: true}, b0, b1)

	g.replicas[0].headroom.Store(math.Float64bits(0.2))
	g.replicas[1].headroom.Store(math.Float64bits(0.8))
	for i := 0; i < 4; i++ {
		if rep := g.pick(pickScratchFor(g)); rep != g.replicas[1] {
			t.Fatalf("pick chose %s, want replica1 with more headroom", rep.name)
		}
	}
}

// TestGovernorHeadersFlowThroughGateway: the passive signals are parsed off
// proxied responses and the brownout/quality headers are relayed to the
// client.
func TestGovernorHeadersFlowThroughGateway(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-GE-Queue-Depth", "2")
		w.Header().Set("X-GE-Brownout", "degraded")
		w.Header().Set("X-GE-Headroom", "0.250")
		w.Header().Set("X-GE-Quality", "0.9731")
		fmt.Fprint(w, `{"result":{"Jobs":1}}`)
	}))
	t.Cleanup(backend.Close)
	g, front := newPoolGateway(t, Config{QualityAware: true}, backend)

	resp, _ := postRun(t, front.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-GE-Brownout"); got != "degraded" {
		t.Fatalf("relayed X-GE-Brownout = %q, want degraded", got)
	}
	if got := resp.Header.Get("X-GE-Quality"); got != "0.9731" {
		t.Fatalf("relayed X-GE-Quality = %q, want 0.9731", got)
	}
	rep := g.replicas[0]
	if st := rep.brownoutState(); st != governor.StateDegraded {
		t.Fatalf("replica brownout = %v, want degraded", st)
	}
	if h := rep.headroomFrac(); math.Abs(h-0.25) > 1e-9 {
		t.Fatalf("replica headroom = %v, want 0.25", h)
	}
	if q := rep.queueDepth.Load(); q != 2 {
		t.Fatalf("replica queueDepth = %d, want 2", q)
	}
}
