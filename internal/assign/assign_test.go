package assign

import (
	"testing"

	"goodenough/internal/job"
)

func batch(n int) []*job.Job {
	jobs := make([]*job.Job, n)
	for i := range jobs {
		jobs[i] = job.New(i, 0, 0.15, 100+float64(i))
	}
	return jobs
}

func TestRoundRobin(t *testing.T) {
	jobs := batch(5)
	RoundRobin{}.Assign(jobs, AllCores(3), nil)
	want := []int{0, 1, 2, 0, 1}
	for i, j := range jobs {
		if j.Core != want[i] {
			t.Fatalf("job %d on core %d, want %d", i, j.Core, want[i])
		}
		if j.State != job.StateAssigned {
			t.Fatalf("job %d state %v", i, j.State)
		}
	}
	// RR restarts every batch.
	jobs2 := batch(2)
	RoundRobin{}.Assign(jobs2, AllCores(3), nil)
	if jobs2[0].Core != 0 {
		t.Fatalf("plain RR should restart at core 0, got %d", jobs2[0].Core)
	}
}

func TestCumulativeRRPersistsCursor(t *testing.T) {
	c := &CumulativeRR{}
	a := batch(5)
	c.Assign(a, AllCores(3), nil)
	b := batch(2)
	c.Assign(b, AllCores(3), nil)
	// First batch ended at cursor 5%3=2, so the next batch starts there.
	if b[0].Core != 2 || b[1].Core != 0 {
		t.Fatalf("C-RR cursor not cumulative: got %d,%d want 2,0", b[0].Core, b[1].Core)
	}
	c.Reset()
	d := batch(1)
	c.Assign(d, AllCores(3), nil)
	if d[0].Core != 0 {
		t.Fatalf("reset cursor should restart at 0, got %d", d[0].Core)
	}
}

func TestCumulativeRRCoreShrink(t *testing.T) {
	c := &CumulativeRR{}
	c.Assign(batch(7), AllCores(8), nil) // cursor = 7
	j := batch(1)
	c.Assign(j, AllCores(4), nil) // cursor wraps into [0,4)
	if j[0].Core < 0 || j[0].Core >= 4 {
		t.Fatalf("core out of range after shrink: %d", j[0].Core)
	}
}

func TestCumulativeRRBalance(t *testing.T) {
	// Over many odd-sized batches C-RR stays balanced while RR skews.
	c := &CumulativeRR{}
	countsCRR := make([]int, 3)
	countsRR := make([]int, 3)
	for round := 0; round < 30; round++ {
		bc := batch(2)
		c.Assign(bc, AllCores(3), nil)
		for _, j := range bc {
			countsCRR[j.Core]++
		}
		br := batch(2)
		RoundRobin{}.Assign(br, AllCores(3), nil)
		for _, j := range br {
			countsRR[j.Core]++
		}
	}
	if countsCRR[0] != 20 || countsCRR[1] != 20 || countsCRR[2] != 20 {
		t.Fatalf("C-RR imbalance: %v", countsCRR)
	}
	if countsRR[2] != 0 {
		t.Fatalf("plain RR with 2-job batches should starve core 2, got %v", countsRR)
	}
}

func TestLeastLoaded(t *testing.T) {
	jobs := batch(2)
	LeastLoaded{}.Assign(jobs, AllCores(3), []float64{500, 10, 300})
	if jobs[0].Core != 1 {
		t.Fatalf("first job should go to the idlest core 1, got %d", jobs[0].Core)
	}
	// After the first assignment core 1 has 10+100=110, still the least.
	if jobs[1].Core != 1 {
		t.Fatalf("second job should still pick core 1 (110 < 300), got %d", jobs[1].Core)
	}
}

func TestLeastLoadedUpdatesDuringBatch(t *testing.T) {
	jobs := batch(3)
	LeastLoaded{}.Assign(jobs, AllCores(2), []float64{0, 150})
	// Job demands are 100,101,102: job0→core0 (0), now core0=100;
	// job1→core0 (100<150), now core0=201; job2→core1 (150<201).
	if jobs[0].Core != 0 || jobs[1].Core != 0 || jobs[2].Core != 1 {
		t.Fatalf("cores = %d,%d,%d want 0,0,1", jobs[0].Core, jobs[1].Core, jobs[2].Core)
	}
}

func TestEligibleSubsetRoutesAroundFailedCores(t *testing.T) {
	// Core 1 of 3 is failed: the eligible list is [0, 2] and no policy may
	// ever bind a job to core 1.
	eligible := []int{0, 2}
	for _, a := range []Assigner{RoundRobin{}, &CumulativeRR{}, LeastLoaded{}} {
		jobs := batch(6)
		a.Assign(jobs, eligible, []float64{100, 0, 100})
		for i, j := range jobs {
			if j.Core == 1 {
				t.Fatalf("%s bound job %d to failed core 1", a.Name(), i)
			}
			if j.Core != 0 && j.Core != 2 {
				t.Fatalf("%s bound job %d to core %d outside eligible set", a.Name(), i, j.Core)
			}
		}
	}
}

func TestZeroCoresPanics(t *testing.T) {
	for _, a := range []Assigner{RoundRobin{}, &CumulativeRR{}, LeastLoaded{}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: zero cores did not panic", a.Name())
				}
			}()
			a.Assign(batch(1), nil, nil)
		}()
	}
}

func TestNew(t *testing.T) {
	for _, name := range []string{"rr", "c-rr", "crr", "least-loaded", "ll"} {
		a, err := New(name)
		if err != nil || a == nil {
			t.Errorf("New(%q) failed: %v", name, err)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("unknown assigner accepted")
	}
}

func TestNames(t *testing.T) {
	if (RoundRobin{}).Name() != "rr" {
		t.Error("rr name")
	}
	if (&CumulativeRR{}).Name() != "c-rr" {
		t.Error("c-rr name")
	}
	if (LeastLoaded{}).Name() != "least-loaded" {
		t.Error("least-loaded name")
	}
}
