// Package assign implements the batch job-to-core assignment policies.
//
// The paper uses Cumulative Round-Robin (C-RR): plain round-robin, except
// the distribution cursor persists across scheduling cycles, so job k of
// the next batch continues from where the previous batch stopped. Over the
// long run this spreads jobs more evenly than restarting at core 0 every
// cycle. Plain RR and a least-loaded policy are provided for ablations.
//
// Assignment is expressed over an eligible-core list rather than a bare
// core count so the scheduler can route new work around failed cores: on a
// fault-free machine the list is simply [0, 1, …, m−1].
package assign

import (
	"fmt"

	"goodenough/internal/job"
)

// Assigner maps a batch of waiting jobs onto cores. Implementations set
// each job's Core field and State; they must never move an already
// assigned job (no migration, paper §II-B).
type Assigner interface {
	// Assign binds each job to one of the eligible core indices. loads
	// gives the current remaining work per core (indexed by core index,
	// spanning the whole machine) for load-aware policies.
	Assign(jobs []*job.Job, eligible []int, loads []float64)
	// Name identifies the policy.
	Name() string
	// Reset clears any cross-cycle state (new simulation run).
	Reset()
}

// AllCores returns the eligible list for a fault-free m-core machine.
func AllCores(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}

// RoundRobin restarts at the first eligible core on every batch.
type RoundRobin struct{}

// Assign implements Assigner.
func (RoundRobin) Assign(jobs []*job.Job, eligible []int, _ []float64) {
	if len(eligible) == 0 {
		panic("assign: no eligible cores")
	}
	for i, j := range jobs {
		bind(j, eligible[i%len(eligible)])
	}
}

// Name implements Assigner.
func (RoundRobin) Name() string { return "rr" }

// Reset implements Assigner.
func (RoundRobin) Reset() {}

// CumulativeRR is the paper's C-RR policy: the cursor persists across
// batches. The cursor walks the eligible list by position, so when a core
// fails mid-run the rotation simply continues over the survivors.
type CumulativeRR struct {
	cursor int
}

// Assign implements Assigner.
func (c *CumulativeRR) Assign(jobs []*job.Job, eligible []int, _ []float64) {
	if len(eligible) == 0 {
		panic("assign: no eligible cores")
	}
	if c.cursor >= len(eligible) {
		// The eligible set shrank (core failure or fewer cores); wrap.
		c.cursor %= len(eligible)
	}
	for _, j := range jobs {
		bind(j, eligible[c.cursor])
		c.cursor = (c.cursor + 1) % len(eligible)
	}
}

// Name implements Assigner.
func (c *CumulativeRR) Name() string { return "c-rr" }

// Reset implements Assigner.
func (c *CumulativeRR) Reset() { c.cursor = 0 }

// LeastLoaded binds each job to the eligible core with the least remaining
// work, updating the load estimate as it assigns (ablation policy).
type LeastLoaded struct{}

// Assign implements Assigner.
func (LeastLoaded) Assign(jobs []*job.Job, eligible []int, loads []float64) {
	if len(eligible) == 0 {
		panic("assign: no eligible cores")
	}
	local := make(map[int]float64, len(eligible))
	for _, c := range eligible {
		if c >= 0 && c < len(loads) {
			local[c] = loads[c]
		}
	}
	for _, j := range jobs {
		best := eligible[0]
		for _, c := range eligible[1:] {
			if local[c] < local[best] {
				best = c
			}
		}
		bind(j, best)
		local[best] += j.Remaining()
	}
}

// Name implements Assigner.
func (LeastLoaded) Name() string { return "least-loaded" }

// Reset implements Assigner.
func (LeastLoaded) Reset() {}

func bind(j *job.Job, core int) {
	j.Core = core
	j.State = job.StateAssigned
}

// New returns an assigner by name: "rr", "c-rr", or "least-loaded".
func New(name string) (Assigner, error) {
	switch name {
	case "rr":
		return RoundRobin{}, nil
	case "c-rr", "crr":
		return &CumulativeRR{}, nil
	case "least-loaded", "ll":
		return LeastLoaded{}, nil
	default:
		return nil, fmt.Errorf("assign: unknown policy %q", name)
	}
}
