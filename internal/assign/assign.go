// Package assign implements the batch job-to-core assignment policies.
//
// The paper uses Cumulative Round-Robin (C-RR): plain round-robin, except
// the distribution cursor persists across scheduling cycles, so job k of
// the next batch continues from where the previous batch stopped. Over the
// long run this spreads jobs more evenly than restarting at core 0 every
// cycle. Plain RR and a least-loaded policy are provided for ablations.
package assign

import (
	"fmt"

	"goodenough/internal/job"
)

// Assigner maps a batch of waiting jobs onto cores. Implementations set
// each job's Core field and State; they must never move an already
// assigned job (no migration, paper §II-B).
type Assigner interface {
	// Assign binds each job to a core index in [0, cores). loads gives the
	// current remaining work per core for load-aware policies.
	Assign(jobs []*job.Job, cores int, loads []float64)
	// Name identifies the policy.
	Name() string
	// Reset clears any cross-cycle state (new simulation run).
	Reset()
}

// RoundRobin restarts at core 0 on every batch.
type RoundRobin struct{}

// Assign implements Assigner.
func (RoundRobin) Assign(jobs []*job.Job, cores int, _ []float64) {
	if cores <= 0 {
		panic("assign: no cores")
	}
	for i, j := range jobs {
		bind(j, i%cores)
	}
}

// Name implements Assigner.
func (RoundRobin) Name() string { return "rr" }

// Reset implements Assigner.
func (RoundRobin) Reset() {}

// CumulativeRR is the paper's C-RR policy: the cursor persists across
// batches.
type CumulativeRR struct {
	cursor int
}

// Assign implements Assigner.
func (c *CumulativeRR) Assign(jobs []*job.Job, cores int, _ []float64) {
	if cores <= 0 {
		panic("assign: no cores")
	}
	if c.cursor >= cores {
		// The core count shrank between runs; wrap.
		c.cursor %= cores
	}
	for _, j := range jobs {
		bind(j, c.cursor)
		c.cursor = (c.cursor + 1) % cores
	}
}

// Name implements Assigner.
func (c *CumulativeRR) Name() string { return "c-rr" }

// Reset implements Assigner.
func (c *CumulativeRR) Reset() { c.cursor = 0 }

// LeastLoaded binds each job to the core with the least remaining work,
// updating the load estimate as it assigns (ablation policy).
type LeastLoaded struct{}

// Assign implements Assigner.
func (LeastLoaded) Assign(jobs []*job.Job, cores int, loads []float64) {
	if cores <= 0 {
		panic("assign: no cores")
	}
	local := make([]float64, cores)
	copy(local, loads)
	for _, j := range jobs {
		best := 0
		for i := 1; i < cores; i++ {
			if local[i] < local[best] {
				best = i
			}
		}
		bind(j, best)
		local[best] += j.Remaining()
	}
}

// Name implements Assigner.
func (LeastLoaded) Name() string { return "least-loaded" }

// Reset implements Assigner.
func (LeastLoaded) Reset() {}

func bind(j *job.Job, core int) {
	j.Core = core
	j.State = job.StateAssigned
}

// New returns an assigner by name: "rr", "c-rr", or "least-loaded".
func New(name string) (Assigner, error) {
	switch name {
	case "rr":
		return RoundRobin{}, nil
	case "c-rr", "crr":
		return &CumulativeRR{}, nil
	case "least-loaded", "ll":
		return LeastLoaded{}, nil
	default:
		return nil, fmt.Errorf("assign: unknown policy %q", name)
	}
}
